//===- tests/threadsafety_misuse.cpp - Thread-safety negcompile -----------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Positive/negative control for the Clang -Wthread-safety analysis over
// support/ThreadSafety.h. Compiled macro-free into thread_safety_test it
// must build warning-free: every access below follows the lock
// discipline the annotations declare. The negcompile_threadsafety_*
// ctest entries (Clang only) rebuild this file with one TS_* macro
// defined, enabling a single discipline violation that
// -Werror=thread-safety must reject — proving the annotations are live,
// not decorative.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadSafety.h"

namespace {

/// The canonical annotated shape used across src/: a mutex plus the
/// state it guards, with every access under RCS_GUARDED_BY discipline.
class GuardedTally {
public:
  void bump() {
    rcs::LockGuard Lock(Mutex);
    ++Value;
  }

  int read() const {
    rcs::LockGuard Lock(Mutex);
    return Value;
  }

  /// Callers must already hold the lock; read() shows the conforming
  /// call pattern.
  int readLocked() const RCS_REQUIRES(Mutex) { return Value; }

#ifdef TS_READ_WITHOUT_LOCK
  // VIOLATION: reads guarded state with no lock held. Clang:
  // "reading variable 'Value' requires holding mutex 'Mutex'".
  int racyRead() const { return Value; }
#endif

#ifdef TS_REQUIRES_NOT_HELD
  // VIOLATION: calls a RCS_REQUIRES member without acquiring the lock.
  // Clang: "calling function 'readLocked' requires holding mutex".
  int skipLock() const { return readLocked(); }
#endif

private:
  mutable rcs::Mutex Mutex;
  int Value RCS_GUARDED_BY(Mutex) = 0;
};

} // namespace

namespace rcs {

/// Anchors the control class so the object file exercises the
/// conforming paths; referenced from thread_safety_test to keep the
/// linker honest.
int threadSafetyMisuseAnchor() {
  GuardedTally Tally;
  Tally.bump();
  Tally.bump();
  return Tally.read();
}

} // namespace rcs
