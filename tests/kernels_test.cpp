//===- tests/kernels_test.cpp - Reference kernel tests -----------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/Kernels.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace rcs;
using namespace rcs::workload;

//===----------------------------------------------------------------------===//
// Ising kernel
//===----------------------------------------------------------------------===//

TEST(IsingTest, Deterministic) {
  IsingKernel A(32, 0.5, 7);
  IsingKernel B(32, 0.5, 7);
  auto RA = A.run(50);
  auto RB = B.run(50);
  EXPECT_DOUBLE_EQ(RA.Checksum, RB.Checksum);
  EXPECT_DOUBLE_EQ(RA.OpCount, 50.0 * 32 * 32);
}

TEST(IsingTest, ObservablesInPhysicalRange) {
  IsingKernel Kernel(32, 0.44, 3);
  Kernel.run(200);
  EXPECT_GE(Kernel.magnetizationPerSpin(), -1.0);
  EXPECT_LE(Kernel.magnetizationPerSpin(), 1.0);
  EXPECT_GE(Kernel.energyPerSpin(), -2.0);
  EXPECT_LE(Kernel.energyPerSpin(), 2.0);
}

TEST(IsingTest, ColdSystemOrders) {
  // Far below the critical temperature (betaJ = 0.44 crit for 2D), spins
  // align: |m| -> 1.
  IsingKernel Kernel(24, 1.0, 11);
  Kernel.run(600);
  EXPECT_GT(std::fabs(Kernel.magnetizationPerSpin()), 0.9);
  EXPECT_LT(Kernel.energyPerSpin(), -1.7);
}

TEST(IsingTest, HotSystemDisorders) {
  // Far above critical temperature, magnetization stays near zero.
  IsingKernel Kernel(48, 0.1, 13);
  Kernel.run(300);
  EXPECT_LT(std::fabs(Kernel.magnetizationPerSpin()), 0.2);
  EXPECT_GT(Kernel.energyPerSpin(), -0.8);
}

TEST(IsingTest, MappingNearlyFillsFabric) {
  IsingKernel Kernel(1024, 0.44, 1);
  FpgaMapping Mapping =
      Kernel.mapTo(fpga::getFpgaSpec(fpga::FpgaModel::XCKU095));
  // Spin machines are the paper's ~95% utilization bound.
  EXPECT_GE(Mapping.Utilization, 0.85);
  EXPECT_LE(Mapping.Utilization, 0.95);
  EXPECT_GT(Mapping.PipelinesFitted, 100);
  EXPECT_GT(Mapping.SustainedGflops, 100.0);
}

//===----------------------------------------------------------------------===//
// GEMM kernel
//===----------------------------------------------------------------------===//

TEST(GemmTest, MatchesNaiveReference) {
  const int N = 24;
  GemmKernel Kernel(N);
  Kernel.run();
  // Recompute one row with an independent loop nest.
  for (int Col = 0; Col != N; ++Col) {
    double Ref = 0.0;
    for (int K = 0; K != N; ++K) {
      double Aval = (3 + 2.0 * K) / static_cast<double>(N);
      double Bval = (K == Col) ? 1.0 : 0.5 / N;
      Ref += static_cast<float>(Aval) * static_cast<float>(Bval);
    }
    EXPECT_NEAR(Kernel.elementAt(3, Col), Ref, 1e-4) << "col " << Col;
  }
}

TEST(GemmTest, OpCount) {
  GemmKernel Kernel(32);
  auto Result = Kernel.run();
  EXPECT_DOUBLE_EQ(Result.OpCount, 2.0 * 32 * 32 * 32);
  EXPECT_TRUE(std::isfinite(Result.Checksum));
}

TEST(GemmTest, MappingIsDspBound) {
  GemmKernel Kernel(512);
  const auto &V7 = fpga::getFpgaSpec(fpga::FpgaModel::XC7VX485T);
  const auto &Ku = fpga::getFpgaSpec(fpga::FpgaModel::XCKU095);
  FpgaMapping OnV7 = Kernel.mapTo(V7);
  FpgaMapping OnKu = Kernel.mapTo(Ku);
  // Virtex-7 has far more DSPs than the KU095: more MACs fit.
  EXPECT_GT(OnV7.PipelinesFitted, OnKu.PipelinesFitted);
  EXPECT_GT(OnV7.SustainedGflops, 0.0);
  EXPECT_LE(OnV7.Utilization, 0.92);
}

//===----------------------------------------------------------------------===//
// FIR kernel
//===----------------------------------------------------------------------===//

TEST(FirTest, MatchesDirectConvolution) {
  const int Taps = 15, Samples = 200;
  FirKernel Kernel(Taps, Samples);
  Kernel.run();
  // Independent reference at a few output positions.
  auto input = [](int I) {
    return std::sin(0.05 * I) + 0.5 * std::sin(0.8 * I + 1.0);
  };
  auto rawTap = [](int I) {
    double X = I - 0.5 * (Taps - 1);
    double Sinc =
        X == 0.0 ? 1.0 : std::sin(0.2 * M_PI * X) / (0.2 * M_PI * X);
    double Window = 0.54 - 0.46 * std::cos(2.0 * M_PI * I / (Taps - 1));
    return Sinc * Window;
  };
  double Norm = 0.0;
  for (int T = 0; T != Taps; ++T)
    Norm += rawTap(T);
  for (int Out : {20, 77, 150}) {
    double Ref = 0.0;
    for (int T = 0; T != Taps; ++T)
      Ref += rawTap(T) / Norm * input(Out - T);
    EXPECT_NEAR(Kernel.outputAt(Out), Ref, 1e-12);
  }
}

TEST(FirTest, LowPassAttenuatesHighBand) {
  // The filtered signal should keep the slow component and shrink the
  // fast one: output variance < input variance.
  const int Taps = 31, Samples = 2000;
  FirKernel Kernel(Taps, Samples);
  Kernel.run();
  double InVar = 0.0, OutVar = 0.0;
  for (int I = Taps; I < Samples; ++I) {
    double In = std::sin(0.05 * I) + 0.5 * std::sin(0.8 * I + 1.0);
    InVar += In * In;
    OutVar += Kernel.outputAt(I) * Kernel.outputAt(I);
  }
  EXPECT_LT(OutVar, InVar);
}

TEST(FirTest, MappingModerateUtilization) {
  FirKernel Kernel(64, 10000);
  FpgaMapping Mapping =
      Kernel.mapTo(fpga::getFpgaSpec(fpga::FpgaModel::XCKU095));
  EXPECT_GT(Mapping.Utilization, 0.2);
  EXPECT_LE(Mapping.Utilization, 0.75);
  EXPECT_GE(Mapping.PipelinesFitted, 1);
}

//===----------------------------------------------------------------------===//
// Kernel -> power model integration
//===----------------------------------------------------------------------===//

TEST(KernelIntegrationTest, MappingDrivesPowerModel) {
  const auto &Spec = fpga::getFpgaSpec(fpga::FpgaModel::XCKU095);
  fpga::FpgaPowerModel Power(Spec);

  IsingKernel Spin(1024, 0.44, 1);
  FirKernel Fir(64, 10000);
  double SpinPower =
      Power.solvePowerW(Spin.mapTo(Spec).toWorkloadPoint(), 0.18, 28.0);
  double FirPower =
      Power.solvePowerW(Fir.mapTo(Spec).toWorkloadPoint(), 0.18, 28.0);
  // The near-full spin machine draws close to the paper's 91 W; the
  // streaming filter draws meaningfully less.
  EXPECT_GT(SpinPower, 85.0);
  EXPECT_LT(FirPower, 0.9 * SpinPower);
}
