//===- tests/properties_test.cpp - Cross-cutting property tests --------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Property-style tests over randomized inputs and the whole design
/// catalog: energy conservation, monotonicity, and solver invariants that
/// must hold for any configuration, not just the calibrated ones.
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "fluids/Fluid.h"
#include "hydraulics/FlowNetwork.h"
#include "support/Interp.h"
#include "support/Numerics.h"
#include "support/Random.h"
#include "thermal/Network.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

using namespace rcs;

//===----------------------------------------------------------------------===//
// Whole-catalog module properties
//===----------------------------------------------------------------------===//

namespace {

struct DesignCase {
  const char *Label;
  rcsystem::ModuleConfig (*Make)();
};

class AllDesignsTest : public testing::TestWithParam<DesignCase> {};

} // namespace

TEST_P(AllDesignsTest, SolvesAndConservesEnergy) {
  rcsystem::ComputationalModule Module(GetParam().Make());
  auto Report = Module.solveSteadyState(core::makeNominalConditions());
  ASSERT_TRUE(Report.hasValue()) << Report.message();
  // Bookkeeping: total heat covers IT + PSU loss (pumps/fans may add).
  EXPECT_GE(Report->TotalHeatW + 1e-6,
            Report->ItPowerW + Report->PsuLossW);
  EXPECT_NEAR(Report->ItPowerW, Report->FpgaHeatW + Report->MiscHeatW,
              1e-6);
  EXPECT_GE(Report->MaxJunctionTempC, Report->MeanJunctionTempC - 1e-9);
  EXPECT_FALSE(Report->Fpgas.empty());
  EXPECT_EQ(Report->Fpgas.size(),
            static_cast<size_t>(Module.computeFpgaCount()));
}

TEST_P(AllDesignsTest, PowerAndHeatRiseWithUtilization) {
  rcsystem::ComputationalModule Module(GetParam().Make());
  auto Conditions = core::makeNominalConditions();
  auto Low =
      Module.solveSteadyState(Conditions, fpga::WorkloadPoint{0.4, 1.0});
  auto High =
      Module.solveSteadyState(Conditions, fpga::WorkloadPoint{0.95, 1.0});
  ASSERT_TRUE(Low.hasValue());
  ASSERT_TRUE(High.hasValue());
  EXPECT_GT(High->ItPowerW, Low->ItPowerW);
  EXPECT_GT(High->MaxJunctionTempC, Low->MaxJunctionTempC);
}

TEST_P(AllDesignsTest, IdleRunsCold) {
  rcsystem::ComputationalModule Module(GetParam().Make());
  auto Report = Module.solveSteadyState(core::makeNominalConditions(),
                                        fpga::WorkloadPoint{0.02, 0.5});
  ASSERT_TRUE(Report.hasValue());
  EXPECT_LT(Report->MaxJunctionTempC, 55.0);
  EXPECT_TRUE(Report->WithinAbsoluteLimit);
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, AllDesignsTest,
    testing::Values(DesignCase{"rigel2", core::makeRigel2Module},
                    DesignCase{"taygeta", core::makeTaygetaModule},
                    DesignCase{"ultrascale_air",
                               core::makeUltraScaleAirModule},
                    DesignCase{"skat", core::makeSkatModule},
                    DesignCase{"skat_plus", core::makeSkatPlusModule},
                    DesignCase{"skat_plus_naive",
                               core::makeSkatPlusNaiveModule}),
    [](const testing::TestParamInfo<DesignCase> &Info) {
      return Info.param.Label;
    });

//===----------------------------------------------------------------------===//
// Randomized thermal networks
//===----------------------------------------------------------------------===//

TEST(ThermalPropertyTest, RandomLaddersConserveEnergy) {
  RandomEngine Rng(101);
  for (int Trial = 0; Trial != 20; ++Trial) {
    thermal::ThermalNetwork Net;
    thermal::NodeId Boundary = Net.addBoundaryNode("sink", 20.0);
    int Nodes = 3 + static_cast<int>(Rng.uniformInt(20));
    double TotalPower = 0.0;
    std::vector<thermal::NodeId> Internal;
    for (int I = 0; I != Nodes; ++I) {
      thermal::NodeId Node = Net.addNode("n");
      // Connect to the boundary or to a random earlier node, always
      // keeping the graph connected to the sink.
      if (Internal.empty() || Rng.bernoulli(0.4))
        Net.addConductance(Node, Boundary, Rng.uniform(0.5, 5.0));
      else
        Net.addConductance(
            Node, Internal[Rng.uniformInt(Internal.size())],
            Rng.uniform(0.5, 5.0));
      double Power = Rng.uniform(1.0, 100.0);
      Net.addHeatSource(Node, Power);
      TotalPower += Power;
      Internal.push_back(Node);
    }
    auto Temps = Net.solveSteadyState();
    ASSERT_TRUE(Temps.hasValue()) << "trial " << Trial;
    EXPECT_NEAR(Net.boundaryHeatFlowW(Boundary, *Temps), TotalPower,
                1e-6 * TotalPower)
        << "trial " << Trial;
    EXPECT_LT(Net.steadyStateResidualW(*Temps), 1e-6 * TotalPower);
    // Every internal node must sit above the sink (heat flows downhill).
    for (thermal::NodeId Node : Internal)
      EXPECT_GT((*Temps)[Node], 20.0);
  }
}

TEST(ThermalPropertyTest, SuperpositionHolds) {
  // Linear networks obey superposition: solution(Q1+Q2) =
  // solution(Q1) + solution(Q2) - solution(0).
  thermal::ThermalNetwork Net;
  thermal::NodeId A = Net.addNode("a");
  thermal::NodeId B = Net.addNode("b");
  thermal::NodeId Sink = Net.addBoundaryNode("sink", 0.0);
  Net.addConductance(A, B, 2.0);
  Net.addConductance(B, Sink, 1.0);
  Net.addConductance(A, Sink, 0.5);

  auto solveWith = [&](double Qa, double Qb) {
    Net.setHeatSource(A, Qa);
    Net.setHeatSource(B, Qb);
    auto Temps = Net.solveSteadyState();
    EXPECT_TRUE(Temps.hasValue());
    return *Temps;
  };
  auto T1 = solveWith(10.0, 0.0);
  auto T2 = solveWith(0.0, 7.0);
  auto T12 = solveWith(10.0, 7.0);
  EXPECT_NEAR(T12[A], T1[A] + T2[A], 1e-9);
  EXPECT_NEAR(T12[B], T1[B] + T2[B], 1e-9);
}

//===----------------------------------------------------------------------===//
// Randomized hydraulic networks
//===----------------------------------------------------------------------===//

TEST(HydraulicPropertyTest, RandomParallelLaddersConserveMass) {
  RandomEngine Rng(202);
  auto Water = fluids::makeWater();
  for (int Trial = 0; Trial != 8; ++Trial) {
    hydraulics::FlowNetwork Net;
    hydraulics::JunctionId A = Net.addJunction("a");
    hydraulics::JunctionId B = Net.addJunction("b");
    std::vector<std::unique_ptr<hydraulics::FlowElement>> PumpSide;
    PumpSide.push_back(
        std::make_unique<hydraulics::Pump>(
            hydraulics::Pump::makeOilCirculationPump(
                "p", 2e-3, Rng.uniform(3e4, 8e4))));
    hydraulics::EdgeId PumpEdge =
        Net.addEdge("pump", A, B, std::move(PumpSide));

    int Branches = 2 + static_cast<int>(Rng.uniformInt(5));
    std::vector<hydraulics::EdgeId> BranchEdges;
    for (int I = 0; I != Branches; ++I) {
      std::vector<std::unique_ptr<hydraulics::FlowElement>> Elements;
      Elements.push_back(std::make_unique<hydraulics::Fitting>(
          Rng.uniform(5.0, 60.0), 0.02));
      Elements.push_back(std::make_unique<hydraulics::PipeSegment>(
          Rng.uniform(0.5, 4.0), 0.02));
      BranchEdges.push_back(
          Net.addEdge("branch", B, A, std::move(Elements)));
    }
    auto Solution = Net.solve(*Water, 20.0, 1e-3);
    ASSERT_TRUE(Solution.hasValue())
        << "trial " << Trial << ": " << Solution.message();
    double PumpFlow = Solution->EdgeFlowsM3PerS[PumpEdge];
    double BranchSum = 0.0;
    for (hydraulics::EdgeId E : BranchEdges) {
      double Q = Solution->EdgeFlowsM3PerS[E];
      EXPECT_GE(Q, -1e-12) << "backflow in a passive branch";
      BranchSum += Q;
    }
    EXPECT_GT(PumpFlow, 0.0);
    EXPECT_NEAR(BranchSum, PumpFlow, 1e-6 * PumpFlow);
    EXPECT_LT(Solution->MaxContinuityErrorM3PerS, 1e-7);
  }
}

TEST(HydraulicPropertyTest, SymmetricBranchesSplitEvenly) {
  auto Water = fluids::makeWater();
  hydraulics::FlowNetwork Net;
  hydraulics::JunctionId A = Net.addJunction("a");
  hydraulics::JunctionId B = Net.addJunction("b");
  std::vector<std::unique_ptr<hydraulics::FlowElement>> PumpSide;
  PumpSide.push_back(std::make_unique<hydraulics::Pump>(
      hydraulics::Pump::makeOilCirculationPump("p", 3e-3, 5e4)));
  Net.addEdge("pump", A, B, std::move(PumpSide));
  std::vector<hydraulics::EdgeId> Branches;
  for (int I = 0; I != 4; ++I) {
    std::vector<std::unique_ptr<hydraulics::FlowElement>> Elements;
    Elements.push_back(std::make_unique<hydraulics::Fitting>(20.0, 0.02));
    Branches.push_back(Net.addEdge("b", B, A, std::move(Elements)));
  }
  auto Solution = Net.solve(*Water, 20.0, 1e-3);
  ASSERT_TRUE(Solution.hasValue());
  double First = Solution->EdgeFlowsM3PerS[Branches[0]];
  for (hydraulics::EdgeId E : Branches)
    EXPECT_NEAR(Solution->EdgeFlowsM3PerS[E], First, 1e-6 * First);
}

//===----------------------------------------------------------------------===//
// Randomized numerics
//===----------------------------------------------------------------------===//

TEST(NumericsPropertyTest, MonotoneTableInverseRoundTrip) {
  RandomEngine Rng(303);
  for (int Trial = 0; Trial != 25; ++Trial) {
    size_t Samples = 3 + Rng.uniformInt(12);
    std::vector<double> Xs, Ys;
    double X = Rng.uniform(-10.0, 10.0);
    double Y = Rng.uniform(-5.0, 5.0);
    for (size_t I = 0; I != Samples; ++I) {
      Xs.push_back(X);
      Ys.push_back(Y);
      X += Rng.uniform(0.1, 3.0);
      Y += Rng.uniform(0.1, 2.0); // Strictly increasing.
    }
    LinearTable Table(Xs, Ys);
    for (int Probe = 0; Probe != 10; ++Probe) {
      double P = Rng.uniform(Xs.front(), Xs.back());
      EXPECT_NEAR(Table.inverse(Table.evaluate(P)), P, 1e-9);
    }
  }
}

TEST(NumericsPropertyTest, BrentFindsRootsOfRandomCubics) {
  RandomEngine Rng(404);
  for (int Trial = 0; Trial != 30; ++Trial) {
    // f(x) = (x - r) * (x^2 + a) with a > 0 has exactly one real root r.
    double Root = Rng.uniform(-5.0, 5.0);
    double A = Rng.uniform(0.1, 4.0);
    auto F = [Root, A](double X) {
      return (X - Root) * (X * X + A);
    };
    auto Found = findRootBrent(F, -10.0, 10.0);
    ASSERT_TRUE(Found.hasValue());
    EXPECT_NEAR(*Found, Root, 1e-7);
  }
}

TEST(NumericsPropertyTest, NewtonSystemSolvesRandomQuadratics) {
  RandomEngine Rng(505);
  for (int Trial = 0; Trial != 10; ++Trial) {
    // F_i(x) = x_i^2 + sum_j c_ij x_j - b_i with small couplings has a
    // solution near the origin; verify the residual vanishes.
    const size_t N = 2 + Rng.uniformInt(4);
    std::vector<double> B(N);
    Matrix C(N, N);
    for (size_t I = 0; I != N; ++I) {
      B[I] = Rng.uniform(0.5, 3.0);
      for (size_t J = 0; J != N; ++J)
        C.at(I, J) = I == J ? 1.0 : Rng.uniform(-0.1, 0.1);
    }
    auto F = [&](const std::vector<double> &X) {
      std::vector<double> R(N, 0.0);
      for (size_t I = 0; I != N; ++I) {
        R[I] = X[I] * X[I] - B[I];
        for (size_t J = 0; J != N; ++J)
          R[I] += C.at(I, J) * X[J] * 0.1;
      }
      return R;
    };
    NewtonResult Result =
        solveNewtonSystem(F, std::vector<double>(N, 1.0));
    ASSERT_TRUE(Result.Converged) << "trial " << Trial;
    EXPECT_LT(vectorNorm(F(Result.Solution)), 1e-7);
  }
}
