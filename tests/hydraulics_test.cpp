//===- tests/hydraulics_test.cpp - Unit tests for rcs_hydraulics ------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "hydraulics/Components.h"
#include "hydraulics/FlowNetwork.h"
#include "hydraulics/HeatExchanger.h"
#include "hydraulics/Manifold.h"

#include "fluids/Fluid.h"
#include "support/Units.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace rcs;
using namespace rcs::hydraulics;

//===----------------------------------------------------------------------===//
// PipeSegment
//===----------------------------------------------------------------------===//

TEST(PipeTest, LaminarMatchesHagenPoiseuille) {
  // dP = 128 mu L Q / (pi D^4) for laminar flow.
  auto Oil = fluids::makeWhiteMineralOil();
  PipeSegment Pipe(2.0, 0.02);
  double Q = 5e-5; // Re will be well under 2300 in viscous oil.
  double TempC = 20.0;
  double Re = (Q / (M_PI * 0.01 * 0.01)) * 0.02 /
              Oil->kinematicViscosityM2PerS(TempC);
  ASSERT_LT(Re, 2300.0);
  double Expected = 128.0 * Oil->dynamicViscosityPaS(TempC) * 2.0 * Q /
                    (M_PI * std::pow(0.02, 4.0));
  double Actual = Pipe.pressureDropPa(Q, *Oil, TempC);
  EXPECT_NEAR(Actual, Expected, 0.06 * Expected); // Churchill ~ laminar.
}

TEST(PipeTest, TurbulentNearBlasius) {
  auto Water = fluids::makeWater();
  PipeSegment Pipe(2.0, 0.02);
  double V = 2.0;
  double Q = V * M_PI * 0.01 * 0.01;
  double TempC = 20.0;
  double Re = V * 0.02 / Water->kinematicViscosityM2PerS(TempC);
  ASSERT_GT(Re, 4000.0);
  double Blasius = 0.316 / std::pow(Re, 0.25);
  double Rho = Water->densityKgPerM3(TempC);
  double Expected = Blasius * (2.0 / 0.02) * 0.5 * Rho * V * V;
  double Actual = Pipe.pressureDropPa(Q, *Water, TempC);
  EXPECT_NEAR(Actual, Expected, 0.15 * Expected);
}

TEST(PipeTest, DropIsOddInFlow) {
  auto Water = fluids::makeWater();
  PipeSegment Pipe(1.0, 0.02);
  double Forward = Pipe.pressureDropPa(1e-3, *Water, 20.0);
  double Backward = Pipe.pressureDropPa(-1e-3, *Water, 20.0);
  EXPECT_NEAR(Forward, -Backward, 1e-9);
  EXPECT_DOUBLE_EQ(Pipe.pressureDropPa(0.0, *Water, 20.0), 0.0);
}

TEST(PipeTest, VelocityFromFlow) {
  PipeSegment Pipe(1.0, 0.02);
  double Area = M_PI * 0.01 * 0.01;
  EXPECT_NEAR(Pipe.velocityMPerS(1e-3), 1e-3 / Area, 1e-12);
}

//===----------------------------------------------------------------------===//
// Fitting / valve
//===----------------------------------------------------------------------===//

TEST(FittingTest, QuadraticInFlow) {
  auto Water = fluids::makeWater();
  Fitting F(2.0, 0.02);
  double D1 = F.pressureDropPa(1e-3, *Water, 20.0);
  double D2 = F.pressureDropPa(2e-3, *Water, 20.0);
  EXPECT_NEAR(D2 / D1, 4.0, 1e-6);
}

TEST(ValveTest, ClosingRaisesResistance) {
  auto Water = fluids::makeWater();
  BalancingValve V(2.0, 0.02);
  double Open = V.pressureDropPa(1e-3, *Water, 20.0);
  V.setOpening(0.5);
  double Half = V.pressureDropPa(1e-3, *Water, 20.0);
  EXPECT_NEAR(Half / Open, 4.0, 1e-6);
  V.setOpening(0.0);
  double Shut = V.pressureDropPa(1e-3, *Water, 20.0);
  EXPECT_GT(Shut, 1e5 * Open);
}

//===----------------------------------------------------------------------===//
// Pump
//===----------------------------------------------------------------------===//

TEST(PumpTest, HeadDecreasesWithFlow) {
  Pump P = Pump::makeOilCirculationPump("p", 2e-3, 1e5);
  EXPECT_GT(P.headPa(0.0), P.headPa(1e-3));
  EXPECT_GT(P.headPa(1e-3), P.headPa(2e-3));
  EXPECT_NEAR(P.headPa(2e-3), 1e5, 1.0);
}

TEST(PumpTest, AffinityLaws) {
  Pump P = Pump::makeOilCirculationPump("p", 2e-3, 1e5);
  double FullShutoff = P.headPa(0.0);
  P.setSpeedFraction(0.5);
  EXPECT_NEAR(P.headPa(0.0), 0.25 * FullShutoff, 1.0);
  // At half speed and half the flow, head is a quarter.
  P.setSpeedFraction(1.0);
  double H1 = P.headPa(1e-3);
  P.setSpeedFraction(0.5);
  EXPECT_NEAR(P.headPa(0.5e-3), 0.25 * H1, 1.0);
}

TEST(PumpTest, StoppedPumpResists) {
  Pump P = Pump::makeOilCirculationPump("p", 2e-3, 1e5);
  P.setSpeedFraction(0.0);
  EXPECT_TRUE(P.isStopped());
  auto Oil = fluids::makeMineralOilMd45();
  EXPECT_GT(P.pressureDropPa(1e-3, *Oil, 30.0), 1e4);
  EXPECT_DOUBLE_EQ(P.electricalPowerW(1e-3), 0.0);
}

TEST(PumpTest, ElectricalPowerPositiveWhenPumping) {
  Pump P = Pump::makeOilCirculationPump("p", 2e-3, 1e5);
  double W = P.electricalPowerW(2e-3);
  // Hydraulic power Q*H = 200 W at 55% efficiency -> ~364 W.
  EXPECT_NEAR(W, 2e-3 * 1e5 / 0.55, 5.0);
}

TEST(PumpTest, AsFlowElementAddsHead) {
  Pump P = Pump::makeOilCirculationPump("p", 2e-3, 1e5);
  auto Oil = fluids::makeMineralOilMd45();
  EXPECT_LT(P.pressureDropPa(1e-3, *Oil, 30.0), 0.0);
  // The element's dP(Q) must be strictly increasing for the solver.
  double Previous = P.pressureDropPa(-2e-3, *Oil, 30.0);
  for (double Q = -1.8e-3; Q < 3e-3; Q += 2e-4) {
    double Current = P.pressureDropPa(Q, *Oil, 30.0);
    EXPECT_GT(Current, Previous) << "at Q=" << Q;
    Previous = Current;
  }
}

//===----------------------------------------------------------------------===//
// FlowNetwork
//===----------------------------------------------------------------------===//

TEST(FlowNetworkTest, SingleLoopOperatingPoint) {
  // Pump against a single pipe: operating point where head == loss.
  auto Water = fluids::makeWater();
  FlowNetwork Net;
  JunctionId A = Net.addJunction("a");
  JunctionId B = Net.addJunction("b");

  std::vector<std::unique_ptr<FlowElement>> PumpSide;
  PumpSide.push_back(std::make_unique<Pump>(
      Pump::makeOilCirculationPump("p", 2e-3, 5e4)));
  Net.addEdge("pump", A, B, std::move(PumpSide));

  std::vector<std::unique_ptr<FlowElement>> PipeSide;
  PipeSide.push_back(std::make_unique<PipeSegment>(10.0, 0.02));
  EdgeId PipeEdge = Net.addEdge("pipe", B, A, std::move(PipeSide));

  auto Solution = Net.solve(*Water, 20.0, 1e-3);
  ASSERT_TRUE(Solution.hasValue());
  double Q = Solution->EdgeFlowsM3PerS[PipeEdge];
  EXPECT_GT(Q, 0.0);
  // Verify the operating point: pipe loss equals pump head.
  double Loss = Net.edgePressureDropPa(PipeEdge, Q, *Water, 20.0);
  Pump Reference = Pump::makeOilCirculationPump("p", 2e-3, 5e4);
  EXPECT_NEAR(Loss, Reference.headPa(Q), 0.02 * Loss);
  EXPECT_LT(Solution->MaxContinuityErrorM3PerS, 1e-8);
}

TEST(FlowNetworkTest, ResidualHistoryDecreasesMonotonically) {
  // The converged attempt's per-iterate worst continuity error rides on
  // the solution; damped Newton must never let it grow.
  auto Water = fluids::makeWater();
  RackHydraulicsConfig Config;
  Config.Layout = ManifoldLayout::ReverseReturn;
  RackHydraulics Rack = buildRackPrimaryLoop(Config);
  auto Solution = Rack.Network.solve(*Water, 18.0, 1e-3);
  ASSERT_TRUE(Solution.hasValue());

  const std::vector<double> &History = Solution->ResidualHistory;
  // Entry 0 is the initial guess, then one entry per accepted iterate.
  ASSERT_EQ(History.size(),
            static_cast<size_t>(Solution->NewtonIterations) + 1);
  ASSERT_GE(History.size(), 2u);
  EXPECT_GT(History.front(), 0.0);
  for (size_t I = 1; I != History.size(); ++I)
    EXPECT_LE(History[I], History[I - 1])
        << "continuity error grew at iterate " << I;
  // The last iterate must match the solve's convergence claim.
  EXPECT_LT(History.back(), 1e-6);
}

TEST(FlowNetworkTest, ParallelBranchesSplitByResistance) {
  auto Water = fluids::makeWater();
  FlowNetwork Net;
  JunctionId A = Net.addJunction("a");
  JunctionId B = Net.addJunction("b");

  std::vector<std::unique_ptr<FlowElement>> PumpSide;
  PumpSide.push_back(std::make_unique<Pump>(
      Pump::makeOilCirculationPump("p", 4e-3, 5e4)));
  Net.addEdge("pump", A, B, std::move(PumpSide));

  // Two identical fittings in parallel except one has 4x the K: flows
  // should split 2:1 (quadratic elements).
  std::vector<std::unique_ptr<FlowElement>> Branch1;
  Branch1.push_back(std::make_unique<Fitting>(10.0, 0.02));
  EdgeId E1 = Net.addEdge("branch1", B, A, std::move(Branch1));

  std::vector<std::unique_ptr<FlowElement>> Branch2;
  Branch2.push_back(std::make_unique<Fitting>(40.0, 0.02));
  EdgeId E2 = Net.addEdge("branch2", B, A, std::move(Branch2));

  auto Solution = Net.solve(*Water, 20.0, 1e-3);
  ASSERT_TRUE(Solution.hasValue());
  double Q1 = Solution->EdgeFlowsM3PerS[E1];
  double Q2 = Solution->EdgeFlowsM3PerS[E2];
  EXPECT_NEAR(Q1 / Q2, 2.0, 0.02);
}

TEST(FlowNetworkTest, EmptyNetworkFails) {
  auto Water = fluids::makeWater();
  FlowNetwork Net;
  auto Solution = Net.solve(*Water, 20.0);
  EXPECT_FALSE(Solution.hasValue());
}

TEST(FlowNetworkTest, StoppedPumpKillsFlow) {
  auto Oil = fluids::makeMineralOilMd45();
  FlowNetwork Net;
  JunctionId A = Net.addJunction("a");
  JunctionId B = Net.addJunction("b");
  std::vector<std::unique_ptr<FlowElement>> PumpSide;
  PumpSide.push_back(std::make_unique<Pump>(
      Pump::makeOilCirculationPump("p", 2e-3, 5e4)));
  EdgeId PumpEdge = Net.addEdge("pump", A, B, std::move(PumpSide));
  std::vector<std::unique_ptr<FlowElement>> PipeSide;
  PipeSide.push_back(std::make_unique<PipeSegment>(5.0, 0.02));
  Net.addEdge("pipe", B, A, std::move(PipeSide));

  auto *P = static_cast<Pump *>(Net.elementAt(PumpEdge, 0));
  P->setSpeedFraction(0.0);
  auto Solution = Net.solve(*Oil, 30.0, 1e-3);
  ASSERT_TRUE(Solution.hasValue());
  EXPECT_NEAR(Solution->EdgeFlowsM3PerS[PumpEdge], 0.0, 1e-9);
}

//===----------------------------------------------------------------------===//
// Heat exchanger (effectiveness-NTU)
//===----------------------------------------------------------------------===//

TEST(HeatExchangerTest, EnergyBalance) {
  PlateHeatExchanger Hx("hx", 2000.0);
  double HotC = 1500.0, ColdC = 3000.0;
  auto R = Hx.transfer(45.0, HotC, 15.0, ColdC);
  double HotLoss = HotC * (45.0 - R.HotOutletTempC);
  double ColdGain = ColdC * (R.ColdOutletTempC - 15.0);
  EXPECT_NEAR(HotLoss, R.DutyW, 1e-6);
  EXPECT_NEAR(ColdGain, R.DutyW, 1e-6);
  EXPECT_GT(R.DutyW, 0.0);
  EXPECT_GT(R.Effectiveness, 0.0);
  EXPECT_LT(R.Effectiveness, 1.0);
}

TEST(HeatExchangerTest, OutletsBetweenInlets) {
  PlateHeatExchanger Hx("hx", 2000.0);
  auto R = Hx.transfer(45.0, 1500.0, 15.0, 3000.0);
  EXPECT_LT(R.HotOutletTempC, 45.0);
  EXPECT_GT(R.HotOutletTempC, 15.0);
  EXPECT_GT(R.ColdOutletTempC, 15.0);
  EXPECT_LT(R.ColdOutletTempC, 45.0);
}

TEST(HeatExchangerTest, DutyIncreasesWithUa) {
  PlateHeatExchanger Small("s", 500.0);
  PlateHeatExchanger Large("l", 5000.0);
  auto RS = Small.transfer(45.0, 1500.0, 15.0, 3000.0);
  auto RL = Large.transfer(45.0, 1500.0, 15.0, 3000.0);
  EXPECT_GT(RL.DutyW, RS.DutyW);
}

TEST(HeatExchangerTest, ZeroCapacityShortCircuits) {
  PlateHeatExchanger Hx("hx", 2000.0);
  auto R = Hx.transfer(45.0, 0.0, 15.0, 3000.0);
  EXPECT_DOUBLE_EQ(R.DutyW, 0.0);
  EXPECT_DOUBLE_EQ(R.HotOutletTempC, 45.0);
  EXPECT_DOUBLE_EQ(R.ColdOutletTempC, 15.0);
}

TEST(HeatExchangerTest, BalancedCounterflowLimit) {
  // Cr == 1: eps = NTU / (1 + NTU).
  PlateHeatExchanger Hx("hx", 2000.0);
  auto R = Hx.transfer(50.0, 2000.0, 10.0, 2000.0);
  double Ntu = 1.0;
  EXPECT_NEAR(R.Effectiveness, Ntu / (1.0 + Ntu), 1e-9);
}

TEST(HeatExchangerTest, CapacityRateHelper) {
  auto Water = fluids::makeWater();
  double C = PlateHeatExchanger::capacityRateWPerK(*Water, 1e-3, 20.0);
  EXPECT_NEAR(C, 1e-3 * 998.2 * 4182.0, 50.0);
}

TEST(HeatExchangerTest, SizeUaRoundTrip) {
  double HotC = 1500.0, ColdC = 3000.0;
  double Duty = 20000.0;
  double Ua = PlateHeatExchanger::sizeUaForDutyWPerK(Duty, 45.0, HotC, 15.0,
                                                ColdC);
  PlateHeatExchanger Hx("sized", Ua);
  auto R = Hx.transfer(45.0, HotC, 15.0, ColdC);
  EXPECT_NEAR(R.DutyW, Duty, 0.01 * Duty);
}

//===----------------------------------------------------------------------===//
// Manifold layouts (paper Fig. 5)
//===----------------------------------------------------------------------===//

namespace {

std::vector<double> solveLoopFlows(RackHydraulics &Rack) {
  auto Water = fluids::makeWater();
  auto Solution = Rack.Network.solve(*Water, 18.0, 1e-3);
  EXPECT_TRUE(Solution.hasValue()) << Solution.message();
  std::vector<double> Flows;
  if (!Solution)
    return Flows;
  for (EdgeId E : Rack.LoopEdges)
    Flows.push_back(Solution->EdgeFlowsM3PerS[E]);
  return Flows;
}

} // namespace

TEST(ManifoldTest, ReverseReturnSelfBalances) {
  RackHydraulicsConfig Config;
  Config.Layout = ManifoldLayout::ReverseReturn;
  RackHydraulics Rack = buildRackPrimaryLoop(Config);
  auto Flows = solveLoopFlows(Rack);
  ASSERT_EQ(Flows.size(), 6u);
  FlowBalanceStats Stats = computeFlowBalance(Flows);
  // The paper's claim: no balancing hardware needed; imbalance is small.
  EXPECT_LT(Stats.ImbalanceFraction, 0.05);
}

TEST(ManifoldTest, DirectReturnIsImbalanced) {
  RackHydraulicsConfig Config;
  Config.Layout = ManifoldLayout::DirectReturn;
  RackHydraulics Rack = buildRackPrimaryLoop(Config);
  auto Flows = solveLoopFlows(Rack);
  ASSERT_EQ(Flows.size(), 6u);
  FlowBalanceStats Stats = computeFlowBalance(Flows);
  RackHydraulicsConfig RevConfig;
  RevConfig.Layout = ManifoldLayout::ReverseReturn;
  RackHydraulics Rev = buildRackPrimaryLoop(RevConfig);
  auto RevFlows = solveLoopFlows(Rev);
  FlowBalanceStats RevStats = computeFlowBalance(RevFlows);
  // Direct return is measurably worse than reverse return.
  EXPECT_GT(Stats.ImbalanceFraction, 2.0 * RevStats.ImbalanceFraction);
  // And the first loop (closest to pump) takes the most flow.
  EXPECT_GT(Flows.front(), Flows.back());
}

TEST(ManifoldTest, LoopIsolationRedistributesEvenly) {
  RackHydraulicsConfig Config;
  Config.Layout = ManifoldLayout::ReverseReturn;
  RackHydraulics Rack = buildRackPrimaryLoop(Config);
  auto Before = solveLoopFlows(Rack);
  ASSERT_EQ(Before.size(), 6u);

  // Isolate loop 3 for maintenance (paper: "If a circulation loop in any
  // computational module fails, then the heat-transfer agent flow is
  // evenly changed in the rest of modules").
  auto *Valve = static_cast<BalancingValve *>(
      Rack.Network.elementAt(Rack.LoopEdges[2], Rack.LoopValveElementIndex));
  Valve->setOpening(0.0);
  auto After = solveLoopFlows(Rack);
  ASSERT_EQ(After.size(), 6u);
  EXPECT_LT(After[2], 0.02 * Before[2]); // Isolated loop carries ~nothing.

  std::vector<double> Remaining;
  for (size_t I = 0; I != After.size(); ++I)
    if (I != 2)
      Remaining.push_back(After[I]);
  FlowBalanceStats Stats = computeFlowBalance(Remaining);
  EXPECT_LT(Stats.ImbalanceFraction, 0.05);
  // Remaining loops gain flow.
  for (size_t I = 0; I != After.size(); ++I) {
    if (I != 2) {
      EXPECT_GT(After[I], Before[I]);
    }
  }
}

TEST(ManifoldTest, BalanceStatsIgnoreIsolatedLoops) {
  FlowBalanceStats Stats = computeFlowBalance({1.0, 1.02, 0.0, 0.98});
  EXPECT_NEAR(Stats.MeanFlowM3PerS, 1.0, 0.02);
  EXPECT_LT(Stats.ImbalanceFraction, 0.06);
  FlowBalanceStats Empty = computeFlowBalance({});
  EXPECT_DOUBLE_EQ(Empty.MeanFlowM3PerS, 0.0);
}

TEST(ManifoldTest, MoreLoopsStillBalanceInReverseReturn) {
  RackHydraulicsConfig Config;
  Config.Layout = ManifoldLayout::ReverseReturn;
  Config.NumLoops = 12; // A full 47U rack of CMs.
  RackHydraulics Rack = buildRackPrimaryLoop(Config);
  auto Flows = solveLoopFlows(Rack);
  ASSERT_EQ(Flows.size(), 12u);
  FlowBalanceStats Stats = computeFlowBalance(Flows);
  EXPECT_LT(Stats.ImbalanceFraction, 0.10);
}

//===----------------------------------------------------------------------===//
// Valve trim balancing (the procedure reverse-return makes unnecessary)
//===----------------------------------------------------------------------===//

#include "hydraulics/Balancing.h"

TEST(BalancingTest, TrimsDirectReturnToTarget) {
  RackHydraulicsConfig Config;
  Config.Layout = ManifoldLayout::DirectReturn;
  // Exaggerate the imbalance so the trim has real work to do.
  Config.ManifoldSegmentLengthM = 1.2;
  Config.ManifoldDiameterM = 0.032;
  RackHydraulics Rack = buildRackPrimaryLoop(Config);
  auto Water = fluids::makeWater();

  auto Before = Rack.Network.solve(*Water, 18.0, 1e-3);
  ASSERT_TRUE(Before.hasValue());
  std::vector<double> BeforeFlows;
  for (EdgeId E : Rack.LoopEdges)
    BeforeFlows.push_back(Before->EdgeFlowsM3PerS[E]);
  double BeforeImbalance =
      computeFlowBalance(BeforeFlows).ImbalanceFraction;
  ASSERT_GT(BeforeImbalance, 0.05); // Genuinely imbalanced to start.

  auto Result = trimBalancingValves(Rack, *Water, 18.0);
  ASSERT_TRUE(Result.hasValue()) << Result.message();
  EXPECT_TRUE(Result->Converged);
  EXPECT_LE(Result->FinalImbalanceFraction, 0.02 + 1e-9);
  EXPECT_GT(Result->Iterations, 0);
  // Balancing by throttling costs total flow.
  EXPECT_LT(Result->MeanFlowAfterM3PerS, Result->MeanFlowBeforeM3PerS);
  // The rich near-pump loops got throttled; the far loop stays open.
  EXPECT_LT(Result->ValveOpenings.front(), 1.0);
  EXPECT_NEAR(Result->ValveOpenings.back(), 1.0, 1e-9);
}

TEST(BalancingTest, ReverseReturnNeedsNoTrim) {
  RackHydraulicsConfig Config;
  Config.Layout = ManifoldLayout::ReverseReturn;
  RackHydraulics Rack = buildRackPrimaryLoop(Config);
  auto Water = fluids::makeWater();
  auto Result = trimBalancingValves(Rack, *Water, 18.0);
  ASSERT_TRUE(Result.hasValue());
  EXPECT_TRUE(Result->Converged);
  // Already in spec: converges immediately, valves untouched.
  EXPECT_EQ(Result->Iterations, 0);
  for (double Opening : Result->ValveOpenings)
    EXPECT_DOUBLE_EQ(Opening, 1.0);
}

TEST(BalancingTest, TrimmedValvesWastePumpHead) {
  // Balancing by throttling burns pump head across half-closed valves:
  // at equal balance quality, the reverse-return layout delivers more
  // loop flow from the same pump.
  auto Water = fluids::makeWater();

  RackHydraulicsConfig DirectConfig;
  DirectConfig.Layout = ManifoldLayout::DirectReturn;
  DirectConfig.ManifoldSegmentLengthM = 1.2;
  DirectConfig.ManifoldDiameterM = 0.032;
  RackHydraulics Direct = buildRackPrimaryLoop(DirectConfig);
  auto Trim = trimBalancingValves(Direct, *Water, 18.0);
  ASSERT_TRUE(Trim.hasValue());
  ASSERT_TRUE(Trim->Converged);
  // Commissioning took real work and deep throttling.
  EXPECT_GE(Trim->Iterations, 5);
  double DeepestOpening = 1.0;
  for (double Opening : Trim->ValveOpenings)
    DeepestOpening = std::min(DeepestOpening, Opening);
  EXPECT_LT(DeepestOpening, 0.5);

  RackHydraulicsConfig ReverseConfig = DirectConfig;
  ReverseConfig.Layout = ManifoldLayout::ReverseReturn;
  RackHydraulics Reverse = buildRackPrimaryLoop(ReverseConfig);
  auto Solution = Reverse.Network.solve(*Water, 18.0, 1e-3);
  ASSERT_TRUE(Solution.hasValue());
  std::vector<double> ReverseFlows;
  for (EdgeId E : Reverse.LoopEdges)
    ReverseFlows.push_back(Solution->EdgeFlowsM3PerS[E]);
  double ReverseMean = computeFlowBalance(ReverseFlows).MeanFlowM3PerS;
  EXPECT_GT(ReverseMean, Trim->MeanFlowAfterM3PerS);
}

//===----------------------------------------------------------------------===//
// Dimension-checked overloads (must agree exactly with the raw forms)
//===----------------------------------------------------------------------===//

TEST(TypedOverloadTest, ElementMirrorsMatchRawDoubles) {
  auto Oil = fluids::makeWhiteMineralOil();
  PipeSegment Pipe(2.0, 0.02);
  EXPECT_DOUBLE_EQ(
      Pipe.pressureDrop(units::M3PerS(3e-4), *Oil, units::Celsius(40.0))
          .value(),
      Pipe.pressureDropPa(3e-4, *Oil, 40.0));

  HeatExchangerPressureSide Typed(units::M3PerS(8e-4), units::Pascal(3e4));
  HeatExchangerPressureSide Raw(8e-4, 3e4);
  EXPECT_DOUBLE_EQ(Typed.pressureDropPa(5e-4, *Oil, 40.0),
                   Raw.pressureDropPa(5e-4, *Oil, 40.0));
}

TEST(TypedOverloadTest, PumpFactoryAndAccessorsMatchRawDoubles) {
  Pump Typed = Pump::makeOilCirculationPump("typed", units::M3PerS(8e-4),
                                            units::Pascal(6e4));
  Pump Raw = Pump::makeOilCirculationPump("raw", 8e-4, 6e4);
  EXPECT_DOUBLE_EQ(Typed.head(units::M3PerS(3e-4)).value(),
                   Raw.headPa(3e-4));
  EXPECT_DOUBLE_EQ(Typed.electricalPower(units::M3PerS(3e-4)).value(),
                   Raw.electricalPowerW(3e-4));
}

TEST(TypedOverloadTest, RackConfigSettersMatchRawFields) {
  RackHydraulicsConfig Typed;
  Typed.setManifoldGeometry(units::Meters(0.1), units::Meters(0.05))
      .setLoopPiping(units::Meters(4.0), units::Meters(0.04))
      .setHxRating(units::M3PerS(9e-4), units::Pascal(3.5e4))
      .setPumpRating(units::M3PerS(6e-3), units::Pascal(1.3e5))
      .setChillerRating(units::Pascal(2.8e4))
      .setReturnPiping(units::Meters(2.5))
      .setValveOpenLoss(units::Scalar(3.0));
  EXPECT_DOUBLE_EQ(Typed.ManifoldSegmentLengthM, 0.1);
  EXPECT_DOUBLE_EQ(Typed.ManifoldDiameterM, 0.05);
  EXPECT_DOUBLE_EQ(Typed.LoopPipeLengthM, 4.0);
  EXPECT_DOUBLE_EQ(Typed.LoopPipeDiameterM, 0.04);
  EXPECT_DOUBLE_EQ(Typed.HxRatedFlowM3PerS, 9e-4);
  EXPECT_DOUBLE_EQ(Typed.HxRatedDropPa, 3.5e4);
  EXPECT_DOUBLE_EQ(Typed.PumpRatedFlowM3PerS, 6e-3);
  EXPECT_DOUBLE_EQ(Typed.PumpRatedHeadPa, 1.3e5);
  EXPECT_DOUBLE_EQ(Typed.ChillerRatedDropPa, 2.8e4);
  EXPECT_DOUBLE_EQ(Typed.ReturnPipeLengthM, 2.5);
  EXPECT_DOUBLE_EQ(Typed.ValveOpenLossCoefficient, 3.0);
}

TEST(TypedOverloadTest, OptionsSolveMirrorMatchesRawDoubles) {
  RackHydraulicsConfig Config;
  RackHydraulics RawRack = buildRackPrimaryLoop(Config);
  RackHydraulics TypedRack = buildRackPrimaryLoop(Config);
  auto Water = fluids::makeWater();
  FlowSolveOptions Options;
  auto Raw = RawRack.Network.solve(*Water, 18.0, 1e-3, Options);
  auto Typed = TypedRack.Network.solve(*Water, units::Celsius(18.0),
                                       units::M3PerS(1e-3), Options);
  ASSERT_TRUE(static_cast<bool>(Raw));
  ASSERT_TRUE(static_cast<bool>(Typed));
  ASSERT_EQ(Raw->EdgeFlowsM3PerS.size(), Typed->EdgeFlowsM3PerS.size());
  for (size_t E = 0; E != Raw->EdgeFlowsM3PerS.size(); ++E)
    EXPECT_DOUBLE_EQ(Raw->EdgeFlowsM3PerS[E], Typed->EdgeFlowsM3PerS[E]);
}

TEST(TypedOverloadTest, TrimMirrorMatchesRawDoubles) {
  RackHydraulicsConfig Config;
  Config.Layout = ManifoldLayout::DirectReturn;
  RackHydraulics RawRack = buildRackPrimaryLoop(Config);
  RackHydraulics TypedRack = buildRackPrimaryLoop(Config);
  auto Water = fluids::makeWater();
  auto Raw = trimBalancingValves(RawRack, *Water, 18.0);
  auto Typed = trimBalancingValves(TypedRack, *Water, units::Celsius(18.0));
  ASSERT_TRUE(static_cast<bool>(Raw));
  ASSERT_TRUE(static_cast<bool>(Typed));
  EXPECT_DOUBLE_EQ(Raw->FinalImbalanceFraction, Typed->FinalImbalanceFraction);
  EXPECT_EQ(Raw->Iterations, Typed->Iterations);
}
