//===- tests/economics_test.cpp - Cost model tests ---------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "system/Economics.h"

#include "sim/MonteCarlo.h"

#include <gtest/gtest.h>

using namespace rcs;
using namespace rcs::rcsystem;

namespace {

CostInputs immersionInputs() {
  CostInputs Inputs;
  Inputs.Label = "immersion";
  Inputs.Kind = CoolingKind::Immersion;
  Inputs.NumFpgas = 96;
  Inputs.TotalPowerW = 9800.0;
  Inputs.FacilityCoolingPowerW = 1600.0;
  Inputs.FailuresPerYear = 0.5;
  Inputs.DowntimeHoursPerYear = 2.5;
  Inputs.Availability = 0.9997;
  return Inputs;
}

} // namespace

TEST(EconomicsTest, BreakdownSumsToOpex) {
  CostReport Report = computeCost(immersionInputs(), 5.0);
  EXPECT_NEAR(Report.OpexPerYearUsd,
              Report.EnergyPerYearUsd + Report.CoolantPerYearUsd +
                  Report.MaintenancePerYearUsd + Report.DowntimePerYearUsd,
              1e-6);
  EXPECT_NEAR(Report.TotalUsd,
              Report.CoolingCapexUsd + 5.0 * Report.OpexPerYearUsd, 1e-6);
}

TEST(EconomicsTest, EnergyDominatesForDenseModules)
{
  // A 11.4 kW module at $0.10/kWh burns ~$10k/year; everything else is
  // smaller for a healthy immersion design.
  CostReport Report = computeCost(immersionInputs(), 5.0);
  EXPECT_GT(Report.EnergyPerYearUsd, 8000.0);
  EXPECT_GT(Report.EnergyPerYearUsd, Report.MaintenancePerYearUsd);
  EXPECT_GT(Report.EnergyPerYearUsd, Report.CoolantPerYearUsd);
}

TEST(EconomicsTest, OnlyImmersionPaysForCoolant) {
  CostInputs Air = immersionInputs();
  Air.Kind = CoolingKind::ForcedAir;
  Air.NumFanTrays = 12;
  CostReport AirReport = computeCost(Air, 5.0);
  EXPECT_DOUBLE_EQ(AirReport.CoolantPerYearUsd, 0.0);
  CostReport ImmersionReport = computeCost(immersionInputs(), 5.0);
  EXPECT_GT(ImmersionReport.CoolantPerYearUsd, 0.0);
}

TEST(EconomicsTest, ConnectorCountDrivesColdPlateCapex) {
  CostInputs Few = immersionInputs();
  Few.Kind = CoolingKind::ColdPlate;
  Few.NumConnectors = 24;
  CostInputs Many = Few;
  Many.NumConnectors = 192;
  EXPECT_GT(computeCost(Many, 5.0).CoolingCapexUsd,
            computeCost(Few, 5.0).CoolingCapexUsd);
}

TEST(EconomicsTest, DowntimeHurts) {
  CostInputs Reliable = immersionInputs();
  CostInputs Flaky = immersionInputs();
  Flaky.FailuresPerYear = 4.0;
  Flaky.DowntimeHoursPerYear = 100.0;
  Flaky.Availability = 0.989;
  EXPECT_GT(computeCost(Flaky, 5.0).OpexPerYearUsd,
            computeCost(Reliable, 5.0).OpexPerYearUsd + 5000.0);
}

TEST(EconomicsTest, IntegratesWithMonteCarlo) {
  // End-to-end: availability results feed the cost model.
  sim::AvailabilityConfig Config;
  Config.Components = sim::makeImmersionComponents(96, 44.0, 1, false);
  sim::AvailabilityReport Availability = sim::simulateAvailability(Config);

  CostInputs Inputs = immersionInputs();
  Inputs.FailuresPerYear = Availability.FailuresPerYear;
  Inputs.DowntimeHoursPerYear = Availability.ModuleDowntimeHoursPerYear;
  Inputs.Availability = Availability.Availability;
  CostReport Report = computeCost(Inputs, 5.0);
  EXPECT_GT(Report.TotalUsd, Report.CoolingCapexUsd);
  EXPECT_GT(Report.MaintenancePerYearUsd, 0.0);
}

TEST(EconomicsTest, CustomPricesApply) {
  CostModel Expensive;
  Expensive.ElectricityUsdPerKwh = 0.30;
  CostReport Cheap = computeCost(immersionInputs(), 5.0);
  CostReport Dear = computeCost(immersionInputs(), 5.0, Expensive);
  EXPECT_NEAR(Dear.EnergyPerYearUsd, 3.0 * Cheap.EnergyPerYearUsd, 1.0);
}
