//===- tests/sparse_test.cpp - Sparse linear algebra unit coverage ---------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Unit coverage for support/SparseMatrix.h: CSR triplet assembly
/// (duplicate summation, sorted rows, pattern identity), the reverse
/// Cuthill-McKee ordering (valid permutation, bandwidth reduction,
/// determinism), and the split-phase LDL^T factorization (dense
/// cross-check, symbolic reuse across numeric refactorizations, ordering
/// on/off agreement, singular detection).
///
//===----------------------------------------------------------------------===//

#include "support/Numerics.h"
#include "support/SparseMatrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

using namespace rcs;

namespace {

/// A deterministic SPD test matrix: 1D Laplacian chain with a varied
/// positive diagonal shift and a few longer-range couplings, mimicking
/// the thermal ladder structure.
SparseCsr makeSpdChain(size_t N) {
  std::vector<Triplet> Entries;
  for (size_t I = 0; I != N; ++I)
    Entries.push_back({I, I, 4.0 + 0.1 * static_cast<double>(I % 7)});
  for (size_t I = 0; I + 1 != N; ++I) {
    Entries.push_back({I, I + 1, -1.0});
    Entries.push_back({I + 1, I, -1.0});
  }
  // Longer-range couplings every 5 nodes exercise fill-in.
  for (size_t I = 0; I + 5 < N; I += 5) {
    Entries.push_back({I, I + 5, -0.5});
    Entries.push_back({I + 5, I, -0.5});
    Entries.push_back({I, I, 0.5});
    Entries.push_back({I + 5, I + 5, 0.5});
  }
  return SparseCsr::fromTriplets(N, Entries);
}

Matrix toDense(const SparseCsr &A) {
  Matrix D(A.rows(), A.rows());
  for (size_t I = 0; I != A.rows(); ++I)
    for (size_t P = A.rowPtr()[I]; P != A.rowPtr()[I + 1]; ++P)
      D.at(I, A.colIdx()[P]) = A.values()[P];
  return D;
}

std::vector<double> makeRhs(size_t N) {
  std::vector<double> B(N);
  for (size_t I = 0; I != N; ++I)
    B[I] = std::sin(0.7 * static_cast<double>(I) + 0.3) + 2.0;
  return B;
}

} // namespace

//===----------------------------------------------------------------------===//
// CSR assembly
//===----------------------------------------------------------------------===//

TEST(SparseCsrTest, TripletAssemblySortsRowsAndSumsDuplicates) {
  std::vector<Triplet> Entries = {
      {1, 2, 3.0}, {0, 0, 1.0}, {1, 0, -2.0}, {1, 2, 0.5},
      {2, 1, 4.0}, {0, 0, 0.25}, {2, 2, 5.0},
  };
  SparseCsr A = SparseCsr::fromTriplets(3, Entries);
  EXPECT_EQ(A.rows(), 3u);
  EXPECT_EQ(A.nnz(), 5u);
  EXPECT_DOUBLE_EQ(A.at(0, 0), 1.25);
  EXPECT_DOUBLE_EQ(A.at(1, 0), -2.0);
  EXPECT_DOUBLE_EQ(A.at(1, 2), 3.5);
  EXPECT_DOUBLE_EQ(A.at(2, 1), 4.0);
  EXPECT_DOUBLE_EQ(A.at(2, 2), 5.0);
  EXPECT_DOUBLE_EQ(A.at(0, 2), 0.0);
  // Rows sorted by column index.
  for (size_t I = 0; I != A.rows(); ++I)
    for (size_t P = A.rowPtr()[I] + 1; P < A.rowPtr()[I + 1]; ++P)
      EXPECT_LT(A.colIdx()[P - 1], A.colIdx()[P]);
}

TEST(SparseCsrTest, EmptyAndZeroSized) {
  SparseCsr Zero = SparseCsr::fromTriplets(0, {});
  EXPECT_EQ(Zero.rows(), 0u);
  EXPECT_EQ(Zero.nnz(), 0u);

  SparseCsr Empty = SparseCsr::fromTriplets(4, {});
  EXPECT_EQ(Empty.rows(), 4u);
  EXPECT_EQ(Empty.nnz(), 0u);
  EXPECT_DOUBLE_EQ(Empty.at(2, 3), 0.0);
}

TEST(SparseCsrTest, SamePatternIgnoresValues) {
  SparseCsr A = SparseCsr::fromTriplets(2, {{0, 0, 1.0}, {1, 1, 2.0}});
  SparseCsr B = SparseCsr::fromTriplets(2, {{0, 0, -9.0}, {1, 1, 7.0}});
  SparseCsr C = SparseCsr::fromTriplets(2, {{0, 0, 1.0}, {1, 0, 2.0}});
  EXPECT_TRUE(A.samePattern(B));
  EXPECT_FALSE(A.samePattern(C));
}

TEST(SparseCsrTest, AssemblyIsBitReproducible) {
  SparseCsr A = makeSpdChain(64);
  SparseCsr B = makeSpdChain(64);
  EXPECT_TRUE(A.samePattern(B));
  ASSERT_EQ(A.nnz(), B.nnz());
  for (size_t P = 0; P != A.nnz(); ++P)
    EXPECT_EQ(A.values()[P], B.values()[P]);
}

TEST(SparseCsrTest, ApplyMatchesDense) {
  SparseCsr A = makeSpdChain(37);
  Matrix D = toDense(A);
  std::vector<double> X = makeRhs(37);
  std::vector<double> Y = A.apply(X);
  for (size_t I = 0; I != 37u; ++I) {
    double Want = 0.0;
    for (size_t J = 0; J != 37u; ++J)
      Want += D.at(I, J) * X[J];
    EXPECT_NEAR(Y[I], Want, 1e-12);
  }
}

TEST(SparseCsrTest, MemoryBytesTracksArrays) {
  SparseCsr A = makeSpdChain(64);
  EXPECT_GE(A.memoryBytes(),
            A.nnz() * (sizeof(size_t) + sizeof(double)) +
                (A.rows() + 1) * sizeof(size_t));
}

//===----------------------------------------------------------------------===//
// Reverse Cuthill-McKee ordering
//===----------------------------------------------------------------------===//

namespace {

/// Half bandwidth of the symmetric pattern of A under Perm[New] = Old.
size_t permutedBandwidth(const SparseCsr &A, const std::vector<size_t> &Perm) {
  std::vector<size_t> Inv = invertPermutation(Perm);
  size_t Band = 0;
  for (size_t I = 0; I != A.rows(); ++I)
    for (size_t P = A.rowPtr()[I]; P != A.rowPtr()[I + 1]; ++P) {
      size_t NewI = Inv[I], NewJ = Inv[A.colIdx()[P]];
      size_t Width = NewI > NewJ ? NewI - NewJ : NewJ - NewI;
      Band = Width > Band ? Width : Band;
    }
  return Band;
}

} // namespace

TEST(OrderingTest, RcmIsAValidPermutation) {
  SparseCsr A = makeSpdChain(101);
  std::vector<size_t> Perm = reverseCuthillMcKee(A);
  ASSERT_EQ(Perm.size(), 101u);
  std::vector<bool> Seen(101, false);
  for (size_t Old : Perm) {
    ASSERT_LT(Old, 101u);
    EXPECT_FALSE(Seen[Old]);
    Seen[Old] = true;
  }
}

TEST(OrderingTest, RcmReducesBandwidthOfAShuffledChain) {
  // A chain labeled by a stride permutation has bandwidth ~N/stride
  // in natural order; RCM should recover a near-chain bandwidth.
  constexpr size_t N = 96;
  constexpr size_t Stride = 7; // coprime with 96
  std::vector<size_t> Label(N);
  for (size_t I = 0; I != N; ++I)
    Label[I] = (I * Stride) % N;
  std::vector<Triplet> Entries;
  for (size_t I = 0; I != N; ++I)
    Entries.push_back({Label[I], Label[I], 3.0});
  for (size_t I = 0; I + 1 != N; ++I) {
    Entries.push_back({Label[I], Label[I + 1], -1.0});
    Entries.push_back({Label[I + 1], Label[I], -1.0});
  }
  SparseCsr A = SparseCsr::fromTriplets(N, Entries);

  std::vector<size_t> Identity(N);
  for (size_t I = 0; I != N; ++I)
    Identity[I] = I;
  size_t NaturalBand = permutedBandwidth(A, Identity);
  size_t RcmBand = permutedBandwidth(A, reverseCuthillMcKee(A));
  EXPECT_LT(RcmBand, NaturalBand);
  EXPECT_LE(RcmBand, 2u); // A path graph reorders to bandwidth 1.
}

TEST(OrderingTest, RcmIsDeterministic) {
  SparseCsr A = makeSpdChain(80);
  EXPECT_EQ(reverseCuthillMcKee(A), reverseCuthillMcKee(A));
}

TEST(OrderingTest, InvertPermutationRoundTrips) {
  SparseCsr A = makeSpdChain(53);
  std::vector<size_t> Perm = reverseCuthillMcKee(A);
  std::vector<size_t> Inv = invertPermutation(Perm);
  for (size_t NewI = 0; NewI != Perm.size(); ++NewI)
    EXPECT_EQ(Inv[Perm[NewI]], NewI);
  EXPECT_EQ(invertPermutation(Inv), Perm);
}

//===----------------------------------------------------------------------===//
// Split-phase LDL^T
//===----------------------------------------------------------------------===//

TEST(SparseLdltTest, MatchesDenseSolve) {
  for (size_t N : {1u, 2u, 5u, 17u, 64u, 131u}) {
    SparseCsr A = makeSpdChain(N);
    SparseLdlt F;
    ASSERT_TRUE(F.analyze(A).isOk());
    ASSERT_TRUE(F.factorize(A).isOk());
    EXPECT_TRUE(F.valid());
    EXPECT_EQ(F.size(), N);

    std::vector<double> B = makeRhs(N);
    std::vector<double> X = F.solve(B);
    Expected<std::vector<double>> Dense = solveDense(toDense(A), B);
    ASSERT_TRUE(Dense.hasValue());
    for (size_t I = 0; I != N; ++I)
      EXPECT_NEAR(X[I], (*Dense)[I], 1e-9) << "N=" << N << " I=" << I;
  }
}

TEST(SparseLdltTest, ResidualIsTiny) {
  SparseCsr A = makeSpdChain(256);
  SparseLdlt F;
  ASSERT_TRUE(F.analyze(A).isOk());
  ASSERT_TRUE(F.factorize(A).isOk());
  std::vector<double> B = makeRhs(256);
  std::vector<double> X = F.solve(B);
  std::vector<double> R = A.apply(X);
  for (size_t I = 0; I != 256u; ++I)
    EXPECT_NEAR(R[I], B[I], 1e-10);
}

TEST(SparseLdltTest, SymbolicReuseAcrossNumericRefactorizations) {
  SparseCsr A = makeSpdChain(128);
  SparseLdlt F;
  ASSERT_TRUE(F.analyze(A).isOk());
  size_t Nnz = F.factorNnz();
  const std::vector<size_t> &Perm = F.permutation();
  std::vector<size_t> PermCopy(Perm.begin(), Perm.end());

  // Re-factor with scaled values on the identical pattern: the symbolic
  // products must be untouched and solutions must scale exactly.
  ASSERT_TRUE(F.factorize(A).isOk());
  std::vector<double> B = makeRhs(128);
  std::vector<double> X1 = F.solve(B);

  SparseCsr Scaled = A;
  for (double &V : Scaled.values())
    V *= 2.0;
  ASSERT_TRUE(F.factorize(Scaled).isOk());
  EXPECT_EQ(F.factorNnz(), Nnz);
  EXPECT_EQ(F.permutation(), PermCopy);
  std::vector<double> X2 = F.solve(B);
  for (size_t I = 0; I != 128u; ++I)
    EXPECT_NEAR(X2[I], 0.5 * X1[I], 1e-10);
}

TEST(SparseLdltTest, RepeatedFactorizeIsBitIdentical) {
  // The numeric phase resets its workspaces: factoring the same values
  // twice must produce bitwise-identical solutions.
  SparseCsr A = makeSpdChain(97);
  SparseLdlt F;
  ASSERT_TRUE(F.analyze(A).isOk());
  ASSERT_TRUE(F.factorize(A).isOk());
  std::vector<double> X1 = F.solve(makeRhs(97));
  ASSERT_TRUE(F.factorize(A).isOk());
  std::vector<double> X2 = F.solve(makeRhs(97));
  for (size_t I = 0; I != 97u; ++I)
    EXPECT_EQ(X1[I], X2[I]);
}

TEST(SparseLdltTest, OrderingOnAndOffAgree) {
  SparseCsr A = makeSpdChain(119);
  std::vector<double> B = makeRhs(119);

  SparseLdlt Ordered, Natural;
  ASSERT_TRUE(Ordered.analyze(A, /*UseOrdering=*/true).isOk());
  ASSERT_TRUE(Natural.analyze(A, /*UseOrdering=*/false).isOk());
  ASSERT_TRUE(Ordered.factorize(A).isOk());
  ASSERT_TRUE(Natural.factorize(A).isOk());

  // Natural ordering is the identity permutation.
  for (size_t I = 0; I != 119u; ++I)
    EXPECT_EQ(Natural.permutation()[I], I);

  std::vector<double> XO = Ordered.solve(B);
  std::vector<double> XN = Natural.solve(B);
  for (size_t I = 0; I != 119u; ++I)
    EXPECT_NEAR(XO[I], XN[I], 1e-9);
}

TEST(SparseLdltTest, FactorNnzNeverExceedsDense) {
  SparseCsr A = makeSpdChain(200);
  SparseLdlt F;
  ASSERT_TRUE(F.analyze(A).isOk());
  // Strictly-lower dense count.
  EXPECT_LT(F.factorNnz(), 200u * 199u / 2u);
  // The chain-plus-skips pattern should stay near-banded under RCM.
  EXPECT_LT(F.factorNnz(), 10u * 200u);
}

TEST(SparseLdltTest, SingularMatrixIsRejected) {
  // Zero diagonal row: the thermal analog of an internal node with no
  // path to any boundary.
  std::vector<Triplet> Entries = {
      {0, 0, 2.0}, {0, 1, -1.0}, {1, 0, -1.0}, {1, 1, 2.0}, {2, 2, 0.0},
  };
  SparseCsr A = SparseCsr::fromTriplets(3, Entries);
  SparseLdlt F;
  ASSERT_TRUE(F.analyze(A).isOk());
  Status Factored = F.factorize(A);
  EXPECT_FALSE(Factored.isOk());
  EXPECT_NE(Factored.message().find("singular"), std::string::npos);
  EXPECT_FALSE(F.valid());
}

TEST(SparseLdltTest, FactorizeBeforeAnalyzeFails) {
  SparseCsr A = makeSpdChain(8);
  SparseLdlt F;
  EXPECT_FALSE(F.factorize(A).isOk());
}

TEST(SparseLdltTest, ResetDropsBothPhases) {
  SparseCsr A = makeSpdChain(32);
  SparseLdlt F;
  ASSERT_TRUE(F.analyze(A).isOk());
  ASSERT_TRUE(F.factorize(A).isOk());
  F.reset();
  EXPECT_FALSE(F.analyzed());
  EXPECT_FALSE(F.valid());
  EXPECT_EQ(F.size(), 0u);
  EXPECT_EQ(F.factorNnz(), 0u);
}

TEST(SparseLdltTest, ZeroSizedSystem) {
  SparseCsr A = SparseCsr::fromTriplets(0, {});
  SparseLdlt F;
  ASSERT_TRUE(F.analyze(A).isOk());
  ASSERT_TRUE(F.factorize(A).isOk());
  EXPECT_TRUE(F.solve({}).empty());
}

TEST(SparseLdltTest, MemoryBytesIsPopulatedAfterAnalyze) {
  SparseCsr A = makeSpdChain(64);
  SparseLdlt F;
  EXPECT_EQ(F.memoryBytes(), 0u);
  ASSERT_TRUE(F.analyze(A).isOk());
  EXPECT_GT(F.memoryBytes(), 64u * sizeof(double));
}
