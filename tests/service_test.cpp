//===- tests/service_test.cpp - Scenario-service tests ------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the `skatsim serve` scenario service: strict protocol
/// parsing, ServeConfig Quantity mirrors, the keyed solver-cache
/// registry (hit/miss/contention/eviction/invalidation), bit-identical
/// results warm vs cold vs bypass and against the direct one-shot API,
/// backpressure and timeout error paths, and a concurrent hammer that
/// the TSan CI leg runs to certify the lock discipline.
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "service/Protocol.h"
#include "service/Service.h"
#include "service/SolverCache.h"
#include "sim/Transient.h"
#include "support/Parallel.h"
#include "support/Units.h"
#include "system/Module.h"
#include "telemetry/Json.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

using namespace rcs;
using namespace rcs::service;

namespace {

/// Submits every line, drains until dry, and returns the response lines
/// (submission order). Immediate responses (parse error, queue full)
/// land in-order too because submission here is sequential.
std::vector<std::string>
runAll(ScenarioService &Service, const std::vector<std::string> &Lines) {
  std::vector<std::string> Out;
  for (const std::string &Line : Lines)
    if (auto Immediate = Service.submit(Line))
      Out.push_back(*Immediate);
  while (Service.drain(Out))
    ;
  return Out;
}

/// The rendered result payload of a response line (from `"result": ` to
/// the line's end); empty for error responses.
std::string resultPayload(const std::string &Response) {
  size_t Pos = Response.find("\"result\": ");
  return Pos == std::string::npos ? std::string() : Response.substr(Pos);
}

/// Parses a response line and returns result.<Key> as a double.
double resultNumber(const std::string &Response, const std::string &Key) {
  Expected<telemetry::JsonValue> Doc = telemetry::parseJson(Response);
  if (!Doc)
    return -1.0e300;
  const telemetry::JsonValue *Result = Doc->find("result");
  if (!Result)
    return -1.0e300;
  const telemetry::JsonValue *Value = Result->find(Key);
  return Value && Value->isNumber() ? Value->NumberValue : -1.0e300;
}

/// A trivial cache entry builder that counts invocations.
SolverCacheRegistry::BuildFn countingBuild(int &Calls) {
  return [&Calls]() -> Expected<PlantCacheEntry> {
    ++Calls;
    PlantCacheEntry Entry;
    return Entry;
  };
}

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

TEST(ServiceProtocolTest, ParsesFullTransientRequest) {
  Expected<ServiceRequest> Request = parseServiceRequest(
      "{\"kind\": \"service_request\", \"id\": \"r1\", \"type\": "
      "\"transient\", \"design\": \"skat\", \"hours\": 2, \"dt_s\": 1.5, "
      "\"water_c\": 16, \"pump_fail_h\": 0.5, \"timeout_s\": 10}");
  ASSERT_TRUE(Request) << Request.message();
  EXPECT_EQ(Request->Id, "r1");
  EXPECT_EQ(Request->Kind, RequestKind::Transient);
  EXPECT_EQ(Request->Design, "skat");
  EXPECT_EQ(Request->Hours.value_or(0.0), 2.0);
  EXPECT_EQ(Request->DtS.value_or(0.0), 1.5);
  EXPECT_EQ(Request->WaterC.value_or(0.0), 16.0);
  EXPECT_EQ(Request->PumpFailH.value_or(0.0), 0.5);
  EXPECT_EQ(Request->TimeoutS.value_or(0.0), 10.0);
}

TEST(ServiceProtocolTest, RejectsUnknownKeysAndBadShapes) {
  // Strict parsing: a typo must not silently evaluate the wrong what-if.
  EXPECT_FALSE(parseServiceRequest(
      "{\"kind\": \"service_request\", \"id\": \"r\", \"type\": "
      "\"steady\", \"design\": \"skat\", \"watter_c\": 16}"));
  EXPECT_FALSE(parseServiceRequest("{\"kind\": \"service_request\", "
                                   "\"type\": \"steady\", \"design\": "
                                   "\"skat\"}")); // No id.
  EXPECT_FALSE(parseServiceRequest(
      "{\"kind\": \"service_request\", \"id\": \"r\", \"type\": "
      "\"warp\", \"design\": \"skat\"}")); // Unknown type.
  EXPECT_FALSE(parseServiceRequest(
      "{\"kind\": \"service_request\", \"id\": \"r\", \"type\": "
      "\"steady\"}")); // Steady needs a design.
  EXPECT_FALSE(parseServiceRequest(
      "{\"kind\": \"service_request\", \"id\": \"r\", \"type\": "
      "\"faults\"}")); // Faults needs a scenario.
  EXPECT_FALSE(parseServiceRequest(
      "{\"kind\": \"service_request\", \"id\": \"r\", \"type\": "
      "\"transient\", \"design\": \"skat\", \"hours\": 0}"));
  EXPECT_FALSE(parseServiceRequest("not json"));
}

TEST(ServiceProtocolTest, ExactNumberRoundTripsBits) {
  // %.17g must reproduce the exact double; this is what makes warm-path
  // bit-identity observable through the wire format.
  double Value = 45.638267762836989;
  std::string Rendered = renderExactNumber(Value);
  EXPECT_EQ(std::stod(Rendered), Value);
}

TEST(ServiceConfigTest, QuantityMirrorsRoundTrip) {
  ServeConfig Config;
  Config.setDefaultTimeout(units::Seconds(12.5));
  EXPECT_EQ(Config.DefaultTimeoutS, 12.5);
  EXPECT_EQ(Config.defaultTimeout().value(), 12.5);
  Config.setTransientStep(units::Seconds(0.5));
  EXPECT_EQ(Config.TransientDtS, 0.5);
  EXPECT_EQ(Config.transientStep().value(), 0.5);
  EXPECT_FALSE(Config.waterSetpoint().has_value());
  Config.setWaterSetpoint(units::Celsius(16.0));
  ASSERT_TRUE(Config.waterSetpoint().has_value());
  EXPECT_EQ(Config.waterSetpoint()->value(), 16.0);
  Config.setAmbientSetpoint(units::Celsius(30.0));
  ASSERT_TRUE(Config.ambientSetpoint().has_value());
  EXPECT_EQ(Config.AmbientSetpointC.value_or(0.0), 30.0);
}

//===----------------------------------------------------------------------===//
// SolverCacheRegistry semantics
//===----------------------------------------------------------------------===//

TEST(SolverCacheTest, MissBuildsThenHitsWithoutRebuilding) {
  SolverCacheRegistry Registry(4);
  SolverCacheKey Key{1, 2.0};
  int Builds = 0;
  {
    Expected<SolverCacheRegistry::Lease> Lease =
        Registry.acquire(Key, countingBuild(Builds));
    ASSERT_TRUE(Lease) << Lease.message();
    EXPECT_TRUE(static_cast<bool>(*Lease));
    EXPECT_FALSE(Lease->warm());
  }
  {
    Expected<SolverCacheRegistry::Lease> Lease =
        Registry.acquire(Key, countingBuild(Builds));
    ASSERT_TRUE(Lease) << Lease.message();
    EXPECT_TRUE(Lease->warm());
  }
  EXPECT_EQ(Builds, 1);
  SolverCacheStats Stats = Registry.stats();
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.Misses, 1u);
  EXPECT_EQ(Stats.Entries, 1u);
}

TEST(SolverCacheTest, DistinctDtIsADistinctKey) {
  SolverCacheRegistry Registry(4);
  int Builds = 0;
  { auto L = Registry.acquire({1, 1.0}, countingBuild(Builds)); }
  { auto L = Registry.acquire({1, 2.0}, countingBuild(Builds)); }
  EXPECT_EQ(Builds, 2);
  EXPECT_EQ(Registry.stats().Entries, 2u);
}

TEST(SolverCacheTest, ContendedKeyBuildsDetachedEntry) {
  SolverCacheRegistry Registry(4);
  SolverCacheKey Key{7, 1.0};
  int Builds = 0;
  Expected<SolverCacheRegistry::Lease> First =
      Registry.acquire(Key, countingBuild(Builds));
  ASSERT_TRUE(First);
  // The resident entry is leased out: the second acquire must not block
  // or fail — it builds a private entry and records the contention.
  Expected<SolverCacheRegistry::Lease> Second =
      Registry.acquire(Key, countingBuild(Builds));
  ASSERT_TRUE(Second);
  EXPECT_FALSE(Second->warm());
  EXPECT_EQ(Builds, 2);
  EXPECT_EQ(Registry.stats().Contended, 1u);
  *Second = SolverCacheRegistry::Lease(); // Detached: dies silently.
  *First = SolverCacheRegistry::Lease();
  // Only the slot-backed entry returned to the registry.
  EXPECT_EQ(Registry.stats().Entries, 1u);
}

TEST(SolverCacheTest, LruEvictionBoundsResidentEntries) {
  SolverCacheRegistry Registry(2);
  int Builds = 0;
  { auto L = Registry.acquire({1, 1.0}, countingBuild(Builds)); }
  { auto L = Registry.acquire({2, 1.0}, countingBuild(Builds)); }
  // Touch key 2 so key 1 is the LRU victim.
  { auto L = Registry.acquire({2, 1.0}, countingBuild(Builds)); }
  { auto L = Registry.acquire({3, 1.0}, countingBuild(Builds)); }
  SolverCacheStats Stats = Registry.stats();
  EXPECT_EQ(Stats.Entries, 2u);
  EXPECT_EQ(Stats.Evictions, 1u);
  // Key 2 survived; key 1 was evicted and must rebuild.
  { auto L = Registry.acquire({2, 1.0}, countingBuild(Builds)); }
  EXPECT_EQ(Registry.stats().Hits, 2u);
  int BuildsBefore = Builds;
  { auto L = Registry.acquire({1, 1.0}, countingBuild(Builds)); }
  EXPECT_EQ(Builds, BuildsBefore + 1);
}

TEST(SolverCacheTest, InvalidationDropsIdleAndStaleLeasedEntries) {
  SolverCacheRegistry Registry(4);
  SolverCacheKey Key{9, 1.0};
  int Builds = 0;
  { auto L = Registry.acquire(Key, countingBuild(Builds)); }
  Registry.invalidate(Key);
  EXPECT_EQ(Registry.stats().Entries, 0u);
  EXPECT_EQ(Registry.stats().Invalidations, 1u);

  // Invalidate while leased: the entry is marked stale and discarded on
  // release rather than being reinserted warm.
  {
    Expected<SolverCacheRegistry::Lease> Lease =
        Registry.acquire(Key, countingBuild(Builds));
    ASSERT_TRUE(Lease);
    Registry.invalidateAll();
  }
  EXPECT_EQ(Registry.stats().Entries, 0u);
  int BuildsBefore = Builds;
  {
    Expected<SolverCacheRegistry::Lease> Lease =
        Registry.acquire(Key, countingBuild(Builds));
    ASSERT_TRUE(Lease);
    EXPECT_FALSE(Lease->warm());
  }
  EXPECT_EQ(Builds, BuildsBefore + 1);
}

TEST(SolverCacheTest, ConcurrentHammerKeepsAccounting) {
  // More keys than capacity, more threads than keys: exercises hit,
  // miss, contention, eviction and release racing under TSan.
  SolverCacheRegistry Registry(4);
  std::atomic<int> Failures{0};
  const size_t NumAcquires = 256;
  parallelFor(8, NumAcquires, [&](size_t I) {
    SolverCacheKey Key{I % 6, 1.0};
    Expected<SolverCacheRegistry::Lease> Lease =
        Registry.acquire(Key, [&]() -> Expected<PlantCacheEntry> {
          PlantCacheEntry Entry;
          return Entry;
        });
    if (!Lease || !*Lease)
      ++Failures;
    if ((I % 32) == 0)
      Registry.invalidate(Key);
  });
  EXPECT_EQ(Failures.load(), 0);
  SolverCacheStats Stats = Registry.stats();
  EXPECT_EQ(Stats.Hits + Stats.Misses, NumAcquires);
  EXPECT_LE(Stats.Entries, 4u);
}

//===----------------------------------------------------------------------===//
// Service evaluation: bit-identity and ordering
//===----------------------------------------------------------------------===//

TEST(ServiceTest, WarmAndColdTransientResultsAreBitIdentical) {
  ServeConfig Config;
  Config.NumThreads = 1;
  Config.MaxBatch = 1; // One request per drain: cold then warm.
  ScenarioService Service(Config);
  const std::string Request =
      "{\"kind\": \"service_request\", \"id\": \"t\", \"type\": "
      "\"transient\", \"design\": \"skat\", \"hours\": 0.1}";
  std::vector<std::string> Out = runAll(Service, {Request, Request});
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_NE(Out[0].find("\"cache\": \"cold\""), std::string::npos);
  EXPECT_NE(Out[1].find("\"cache\": \"warm\""), std::string::npos);
  ASSERT_FALSE(resultPayload(Out[0]).empty()) << Out[0];
  EXPECT_EQ(resultPayload(Out[0]), resultPayload(Out[1]));
}

TEST(ServiceTest, CachedAndBypassResultsMatchDirectTransientRun) {
  const std::string Request =
      "{\"kind\": \"service_request\", \"id\": \"t\", \"type\": "
      "\"transient\", \"design\": \"skat\", \"hours\": 0.1, \"dt_s\": 2}";
  ServeConfig Cached;
  Cached.NumThreads = 1;
  ScenarioService CachedService(Cached);
  ServeConfig Bypass = Cached;
  Bypass.UseSolverCache = false;
  ScenarioService BypassService(Bypass);
  std::vector<std::string> CachedOut = runAll(CachedService, {Request});
  std::vector<std::string> BypassOut = runAll(BypassService, {Request});
  ASSERT_EQ(CachedOut.size(), 1u);
  ASSERT_EQ(BypassOut.size(), 1u);
  EXPECT_NE(BypassOut[0].find("\"cache\": \"bypass\""), std::string::npos);
  EXPECT_EQ(resultPayload(CachedOut[0]), resultPayload(BypassOut[0]));

  // The one-shot path the service mirrors (`skatsim transient` defaults).
  Expected<rcsystem::ModuleConfig> Cfg = core::designModuleByName("skat");
  ASSERT_TRUE(Cfg) << Cfg.message();
  sim::TransientConfig SimCfg;
  SimCfg.TimeStepS = 2.0;
  sim::TransientSimulator Simulator(*Cfg, core::makeNominalConditions(),
                                    SimCfg);
  Expected<std::vector<sim::TraceSample>> Trace =
      Simulator.run(0.1 * 3600.0);
  ASSERT_TRUE(Trace) << Trace.message();
  ASSERT_FALSE(Trace->empty());
  EXPECT_EQ(resultNumber(CachedOut[0], "max_junction_c"),
            Trace->back().MaxJunctionTempC);
  EXPECT_EQ(resultNumber(CachedOut[0], "oil_c"), Trace->back().OilTempC);
  EXPECT_EQ(resultNumber(CachedOut[0], "end_time_s"),
            Trace->back().TimeS);
}

TEST(ServiceTest, SteadyResultMatchesDirectSolve) {
  ServeConfig Config;
  Config.NumThreads = 1;
  ScenarioService Service(Config);
  std::vector<std::string> Out = runAll(
      Service, {"{\"kind\": \"service_request\", \"id\": \"s\", "
                "\"type\": \"steady\", \"design\": \"skat\", "
                "\"water_c\": 20}"});
  ASSERT_EQ(Out.size(), 1u);
  ASSERT_NE(Out[0].find("\"ok\": true"), std::string::npos) << Out[0];

  // Mirror of `skatsim solve skat --water 20`.
  Expected<rcsystem::ModuleConfig> Cfg = core::designModuleByName("skat");
  ASSERT_TRUE(Cfg) << Cfg.message();
  rcsystem::ExternalConditions Conditions = core::makeNominalConditions();
  Conditions.AmbientAirTempC = 25.0;
  Conditions.WaterInletTempC = 20.0;
  Conditions.WaterFlowM3PerS = units::litersPerMinuteToM3PerS(18.0);
  rcsystem::ComputationalModule Module(*Cfg);
  Expected<rcsystem::ModuleThermalReport> Report =
      Module.solveSteadyState(Conditions, Cfg->Load);
  ASSERT_TRUE(Report) << Report.message();
  EXPECT_EQ(resultNumber(Out[0], "max_junction_c"),
            Report->MaxJunctionTempC);
  EXPECT_EQ(resultNumber(Out[0], "it_power_w"), Report->ItPowerW);
}

TEST(ServiceTest, ResponsesKeepSubmissionOrderAcrossWorkers) {
  ServeConfig Config;
  Config.NumThreads = 4;
  Config.MaxBatch = 8;
  ScenarioService Service(Config);
  std::vector<std::string> Requests;
  for (int I = 0; I != 8; ++I)
    Requests.push_back(
        "{\"kind\": \"service_request\", \"id\": \"r" +
        std::to_string(I) +
        "\", \"type\": \"steady\", \"design\": \"skat\"}");
  std::vector<std::string> Out = runAll(Service, Requests);
  ASSERT_EQ(Out.size(), 8u);
  for (int I = 0; I != 8; ++I)
    EXPECT_NE(Out[static_cast<size_t>(I)].find(
                  "\"id\": \"r" + std::to_string(I) + "\""),
              std::string::npos)
        << Out[static_cast<size_t>(I)];
}

//===----------------------------------------------------------------------===//
// Error paths: parse, backpressure, timeout, evaluation
//===----------------------------------------------------------------------===//

TEST(ServiceTest, ParseErrorYieldsImmediateStructuredResponse) {
  ScenarioService Service;
  auto Immediate = Service.submit("{\"kind\": \"service_request\", "
                                  "\"id\": \"x\", \"type\": \"steady\", "
                                  "\"design\": \"skat\", \"bogus\": 1}");
  ASSERT_TRUE(Immediate.has_value());
  EXPECT_NE(Immediate->find("\"ok\": false"), std::string::npos);
  EXPECT_NE(Immediate->find("\"error_kind\": \"parse\""),
            std::string::npos);
  EXPECT_NE(Immediate->find("bogus"), std::string::npos);
  EXPECT_TRUE(Service.idle());
  EXPECT_EQ(Service.summary().ErrorCount, 1u);
}

TEST(ServiceTest, BackpressureRejectsBeyondQueueBound) {
  ServeConfig Config;
  Config.MaxQueueDepth = 1;
  ScenarioService Service(Config);
  const std::string Request =
      "{\"kind\": \"service_request\", \"id\": \"q\", \"type\": "
      "\"steady\", \"design\": \"skat\"}";
  EXPECT_FALSE(Service.submit(Request).has_value());
  auto Rejected = Service.submit(Request);
  ASSERT_TRUE(Rejected.has_value());
  EXPECT_NE(Rejected->find("\"error_kind\": \"queue_full\""),
            std::string::npos);
  std::vector<std::string> Out;
  while (Service.drain(Out))
    ;
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_NE(Out[0].find("\"ok\": true"), std::string::npos);
  ServiceSummary Summary = Service.summary();
  EXPECT_EQ(Summary.Requests, 2u);
  EXPECT_EQ(Summary.Rejected, 1u);
  EXPECT_EQ(Summary.OkCount, 1u);
  EXPECT_EQ(Summary.ErrorCount, 1u);
}

TEST(ServiceTest, ZeroTimeoutExpiresInQueue) {
  ScenarioService Service;
  EXPECT_FALSE(Service
                   .submit("{\"kind\": \"service_request\", \"id\": "
                           "\"late\", \"type\": \"steady\", \"design\": "
                           "\"skat\", \"timeout_s\": 0}")
                   .has_value());
  std::vector<std::string> Out;
  while (Service.drain(Out))
    ;
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_NE(Out[0].find("\"error_kind\": \"timeout\""), std::string::npos)
      << Out[0];
  EXPECT_EQ(Service.summary().TimedOut, 1u);
}

TEST(ServiceTest, EvaluationErrorsAreStructuredNotFatal) {
  ScenarioService Service;
  std::vector<std::string> Out = runAll(
      Service,
      {"{\"kind\": \"service_request\", \"id\": \"bad-design\", "
       "\"type\": \"steady\", \"design\": \"nope\"}",
       "{\"kind\": \"service_request\", \"id\": \"bad-scenario\", "
       "\"type\": \"faults\", \"scenario\": \"/does/not/exist.json\"}",
       "{\"kind\": \"service_request\", \"id\": \"air-transient\", "
       "\"type\": \"transient\", \"design\": \"ultrascale-air\"}"});
  ASSERT_EQ(Out.size(), 3u);
  for (const std::string &Line : Out) {
    EXPECT_NE(Line.find("\"ok\": false"), std::string::npos) << Line;
    EXPECT_NE(Line.find("\"error_kind\": \"evaluation\""),
              std::string::npos)
        << Line;
  }
  EXPECT_EQ(Service.summary().ErrorCount, 3u);
}

//===----------------------------------------------------------------------===//
// Concurrent service hammer (the TSan leg's main course)
//===----------------------------------------------------------------------===//

TEST(ServiceTest, ConcurrentMixedBatchSharesTheCacheSafely) {
  ServeConfig Config;
  Config.NumThreads = 4;
  Config.MaxBatch = 32;
  Config.CacheMaxEntries = 4;
  ScenarioService Service(Config);
  std::vector<std::string> Requests;
  for (int I = 0; I != 24; ++I) {
    // Two transient keys (dt 2 and dt 4) plus a steady key, interleaved
    // so concurrent workers collide on warm entries.
    std::string Id = "m" + std::to_string(I);
    if (I % 3 == 0)
      Requests.push_back("{\"kind\": \"service_request\", \"id\": \"" +
                         Id +
                         "\", \"type\": \"steady\", \"design\": "
                         "\"skat\"}");
    else
      Requests.push_back(
          "{\"kind\": \"service_request\", \"id\": \"" + Id +
          "\", \"type\": \"transient\", \"design\": \"skat\", "
          "\"hours\": 0.02, \"dt_s\": " + (I % 3 == 1 ? "2" : "4") +
          "}");
  }
  std::vector<std::string> Out = runAll(Service, Requests);
  ASSERT_EQ(Out.size(), Requests.size());
  for (const std::string &Line : Out)
    EXPECT_NE(Line.find("\"ok\": true"), std::string::npos) << Line;
  SolverCacheStats Stats = Service.cacheStats();
  EXPECT_EQ(Stats.Hits + Stats.Misses, Requests.size());
  EXPECT_GT(Stats.Hits, 0u);
  ServiceSummary Summary = Service.summary();
  EXPECT_EQ(Summary.OkCount, Requests.size());
  EXPECT_EQ(Summary.ErrorCount, 0u);

  // Same batch again: every key is resident now, so apart from
  // contention-driven private builds the leases come back warm.
  std::vector<std::string> Again = runAll(Service, Requests);
  ASSERT_EQ(Again.size(), Requests.size());
  for (size_t I = 0; I != Again.size(); ++I)
    EXPECT_EQ(resultPayload(Again[I]), resultPayload(Out[I]));
}

} // namespace
