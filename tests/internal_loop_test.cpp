//===- tests/internal_loop_test.cpp - CM internal hydraulics tests -----------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "hydraulics/InternalLoop.h"

#include "fluids/Fluid.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace rcs;
using namespace rcs::hydraulics;

namespace {

InternalFlowReport mustSolve(const InternalLoopConfig &Config) {
  InternalLoop Loop = buildInternalLoop(Config);
  auto Oil = fluids::makeEngineeredDielectric();
  auto Report = solveInternalLoop(Loop, *Oil, 29.0);
  EXPECT_TRUE(Report.hasValue()) << Report.message();
  return Report ? *Report : InternalFlowReport();
}

} // namespace

TEST(InternalLoopTest, MassConservation) {
  InternalLoopConfig Config;
  InternalFlowReport Report = mustSolve(Config);
  ASSERT_EQ(Report.BoardFlowsM3PerS.size(), 12u);
  double Sum = std::accumulate(Report.BoardFlowsM3PerS.begin(),
                               Report.BoardFlowsM3PerS.end(), 0.0);
  EXPECT_NEAR(Sum, Report.TotalFlowM3PerS,
              0.01 * Report.TotalFlowM3PerS);
  EXPECT_GT(Report.TotalFlowM3PerS, 1e-4);
}

TEST(InternalLoopTest, TaperedReverseBalancesBoards) {
  InternalLoopConfig Config;
  Config.Design = PlenumDesign::TaperedReverse;
  InternalFlowReport Report = mustSolve(Config);
  EXPECT_LT(Report.Balance.ImbalanceFraction, 0.06);
}

TEST(InternalLoopTest, NarrowPlenumStarvesFarBoards) {
  InternalLoopConfig Narrow;
  Narrow.Design = PlenumDesign::UniformNarrow;
  InternalFlowReport NarrowReport = mustSolve(Narrow);

  InternalLoopConfig Tapered;
  Tapered.Design = PlenumDesign::TaperedReverse;
  InternalFlowReport TaperedReport = mustSolve(Tapered);

  EXPECT_GT(NarrowReport.Balance.ImbalanceFraction,
            2.0 * TaperedReport.Balance.ImbalanceFraction);
  // In the narrow direct-return design the near board out-draws the far
  // board.
  EXPECT_GT(NarrowReport.BoardFlowsM3PerS.front(),
            NarrowReport.BoardFlowsM3PerS.back());
}

TEST(InternalLoopTest, MorePumpsMoreFlow) {
  InternalLoopConfig One;
  One.NumPumps = 1;
  InternalLoopConfig Two;
  Two.NumPumps = 2;
  double FlowOne = mustSolve(One).TotalFlowM3PerS;
  double FlowTwo = mustSolve(Two).TotalFlowM3PerS;
  // Gains are modest because the heat-exchanger resistance dominates the
  // loop - the reason SKAT+ also raises the pump head, not just count.
  EXPECT_GT(FlowTwo, 1.03 * FlowOne);
}

TEST(InternalLoopTest, ViscousOilReducesFlow) {
  InternalLoopConfig Config;
  InternalLoop Loop = buildInternalLoop(Config);
  auto Thin = fluids::makeEngineeredDielectric();
  auto Thick = fluids::makeWhiteMineralOil();
  auto ThinReport = solveInternalLoop(Loop, *Thin, 29.0);
  auto ThickReport = solveInternalLoop(Loop, *Thick, 29.0);
  ASSERT_TRUE(ThinReport.hasValue());
  ASSERT_TRUE(ThickReport.hasValue());
  EXPECT_LT(ThickReport->TotalFlowM3PerS, ThinReport->TotalFlowM3PerS);
}

TEST(InternalLoopTest, ColdOilFlowsLessThanWarm) {
  // Cold starts matter: viscosity at 5 C vs 35 C.
  InternalLoopConfig Config;
  InternalLoop Loop = buildInternalLoop(Config);
  auto Oil = fluids::makeEngineeredDielectric();
  auto Cold = solveInternalLoop(Loop, *Oil, 5.0);
  auto Warm = solveInternalLoop(Loop, *Oil, 35.0);
  ASSERT_TRUE(Cold.hasValue());
  ASSERT_TRUE(Warm.hasValue());
  EXPECT_LT(Cold->TotalFlowM3PerS, Warm->TotalFlowM3PerS);
}

TEST(InternalLoopTest, BoardCountScalesNetwork) {
  InternalLoopConfig Sixteen;
  Sixteen.NumBoards = 16; // The paper: 12 to 16 CCBs per module.
  InternalFlowReport Report = mustSolve(Sixteen);
  ASSERT_EQ(Report.BoardFlowsM3PerS.size(), 16u);
  EXPECT_LT(Report.Balance.ImbalanceFraction, 0.12);
}

TEST(InternalLoopTest, TypedMirrorsMatchRawDoubles) {
  InternalLoopConfig Typed;
  Typed.setPlenumGeometry(units::Meters(0.04), units::Meters(0.022),
                          units::Meters(0.048))
      .setBoardChannel(units::Scalar(28.0), units::Meters(0.015))
      .setPumpRating(units::M3PerS(2.4e-3), units::Pascal(6.5e4))
      .setHxRating(units::M3PerS(2.4e-3), units::Pascal(3.2e4));
  EXPECT_DOUBLE_EQ(Typed.SegmentLengthM, 0.04);
  EXPECT_DOUBLE_EQ(Typed.SmallPlenumDiameterM, 0.022);
  EXPECT_DOUBLE_EQ(Typed.LargePlenumDiameterM, 0.048);
  EXPECT_DOUBLE_EQ(Typed.BoardChannelLossK, 28.0);
  EXPECT_DOUBLE_EQ(Typed.BoardChannelDiameterM, 0.015);
  EXPECT_DOUBLE_EQ(Typed.PumpRatedFlowM3PerS, 2.4e-3);
  EXPECT_DOUBLE_EQ(Typed.PumpRatedHeadPa, 6.5e4);
  EXPECT_DOUBLE_EQ(Typed.HxRatedFlowM3PerS, 2.4e-3);
  EXPECT_DOUBLE_EQ(Typed.HxRatedDropPa, 3.2e4);

  InternalLoop RawLoop = buildInternalLoop(Typed);
  InternalLoop TypedLoop = buildInternalLoop(Typed);
  auto Oil = fluids::makeEngineeredDielectric();
  auto Raw = solveInternalLoop(RawLoop, *Oil, 29.0);
  auto Celsius = solveInternalLoop(TypedLoop, *Oil, units::Celsius(29.0));
  ASSERT_TRUE(Raw.hasValue());
  ASSERT_TRUE(Celsius.hasValue());
  EXPECT_DOUBLE_EQ(Raw->TotalFlowM3PerS, Celsius->TotalFlowM3PerS);
  EXPECT_DOUBLE_EQ(Celsius->totalFlow().value(), Celsius->TotalFlowM3PerS);
}
