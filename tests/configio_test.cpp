//===- tests/configio_test.cpp - Config serialization tests -------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/ConfigIO.h"

#include "core/Designs.h"

#include <gtest/gtest.h>

using namespace rcs;
using namespace rcs::core;
using namespace rcs::rcsystem;

TEST(ConfigIoTest, EmptyTextGivesSkatDefaults) {
  auto Config = parseModuleConfig("");
  ASSERT_TRUE(Config.hasValue()) << Config.message();
  EXPECT_EQ(Config->Name, "SKAT");
  EXPECT_EQ(Config->NumCcbs, 12);
}

TEST(ConfigIoTest, BaseDesignSelection) {
  auto Config = parseModuleConfig("[module]\nbase = taygeta\n");
  ASSERT_TRUE(Config.hasValue());
  EXPECT_EQ(Config->Name, "Taygeta");
  EXPECT_EQ(Config->Cooling, CoolingKind::ForcedAir);
}

TEST(ConfigIoTest, OverridesApply) {
  const char *Text = R"(
    [module]
    base = skat
    name = My experiment
    num_ccbs = 16

    [board]
    model = XCVU9P
    separate_controller = false

    [load]
    utilization = 0.7

    [immersion]
    coolant = md45
    pump_rated_flow_lpm = 150
    tim = graphite
    distribution = series
  )";
  auto Config = parseModuleConfig(Text);
  ASSERT_TRUE(Config.hasValue()) << Config.message();
  EXPECT_EQ(Config->Name, "My experiment");
  EXPECT_EQ(Config->NumCcbs, 16);
  EXPECT_EQ(Config->Board.Model, fpga::FpgaModel::XCVU9P);
  EXPECT_FALSE(Config->Board.SeparateControllerFpga);
  EXPECT_DOUBLE_EQ(Config->Load.Utilization, 0.7);
  EXPECT_EQ(Config->Immersion.CoolantKind,
            ImmersionCoolingConfig::Coolant::MineralOilMd45);
  EXPECT_NEAR(Config->Immersion.PumpRatedFlowM3PerS, 150.0 / 60000.0,
              1e-12);
  EXPECT_EQ(Config->Immersion.Tim,
            ImmersionCoolingConfig::TimKind::GraphitePad);
  EXPECT_EQ(Config->Immersion.Distribution,
            ImmersionCoolingConfig::OilDistribution::SeriesAlongBoards);
}

TEST(ConfigIoTest, CommentsAndWhitespaceIgnored) {
  const char *Text = "# a comment\n"
                     "[module]  ; trailing comment\n"
                     "  num_ccbs   =  14  # another\n";
  auto Config = parseModuleConfig(Text);
  ASSERT_TRUE(Config.hasValue()) << Config.message();
  EXPECT_EQ(Config->NumCcbs, 14);
}

TEST(ConfigIoTest, UnknownKeyIsError) {
  auto Config = parseModuleConfig("[module]\nnum_ccb = 14\n");
  ASSERT_FALSE(Config.hasValue());
  EXPECT_NE(Config.message().find("unknown key"), std::string::npos);
}

TEST(ConfigIoTest, UnknownSectionIsError) {
  auto Config = parseModuleConfig("[modul]\nnum_ccbs = 14\n");
  ASSERT_FALSE(Config.hasValue());
  EXPECT_NE(Config.message().find("unknown section"), std::string::npos);
}

TEST(ConfigIoTest, BadNumberIsError) {
  auto Config = parseModuleConfig("[load]\nutilization = high\n");
  ASSERT_FALSE(Config.hasValue());
  EXPECT_NE(Config.message().find("not a number"), std::string::npos);
}

TEST(ConfigIoTest, BadEnumIsError) {
  auto Config = parseModuleConfig("[immersion]\ncoolant = ketchup\n");
  ASSERT_FALSE(Config.hasValue());
}

TEST(ConfigIoTest, MissingEqualsIsError) {
  auto Config = parseModuleConfig("[module]\njust words\n");
  ASSERT_FALSE(Config.hasValue());
}

TEST(ConfigIoTest, SerializeParseRoundTrip) {
  ModuleConfig Original = makeSkatPlusModule();
  Original.Name = "roundtrip";
  Original.NumCcbs = 14;
  Original.Load.Utilization = 0.83;
  std::string Text = serializeModuleConfig(Original);
  auto Parsed = parseModuleConfig(Text);
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.message();
  EXPECT_EQ(Parsed->Name, Original.Name);
  EXPECT_EQ(Parsed->NumCcbs, Original.NumCcbs);
  EXPECT_EQ(Parsed->Cooling, Original.Cooling);
  EXPECT_EQ(Parsed->Board.Model, Original.Board.Model);
  EXPECT_EQ(Parsed->Board.SeparateControllerFpga,
            Original.Board.SeparateControllerFpga);
  EXPECT_NEAR(Parsed->Load.Utilization, Original.Load.Utilization, 1e-9);
  EXPECT_NEAR(Parsed->Immersion.PumpRatedFlowM3PerS,
              Original.Immersion.PumpRatedFlowM3PerS, 1e-9);
  EXPECT_NEAR(Parsed->Immersion.HxUaWPerK, Original.Immersion.HxUaWPerK,
              1e-9);
  EXPECT_EQ(Parsed->Immersion.ImmersedPumps,
            Original.Immersion.ImmersedPumps);
}

TEST(ConfigIoTest, RoundTripSolvesIdentically) {
  ModuleConfig Original = makeSkatModule();
  auto Parsed = parseModuleConfig(serializeModuleConfig(Original));
  ASSERT_TRUE(Parsed.hasValue());
  auto Conditions = makeNominalConditions();
  auto A = ComputationalModule(Original).solveSteadyState(Conditions);
  auto B = ComputationalModule(*Parsed).solveSteadyState(Conditions);
  ASSERT_TRUE(A.hasValue());
  ASSERT_TRUE(B.hasValue());
  EXPECT_NEAR(A->MaxJunctionTempC, B->MaxJunctionTempC, 1e-6);
  EXPECT_NEAR(A->TotalHeatW, B->TotalHeatW, 1e-3);
}

TEST(ConfigIoTest, FileRoundTrip) {
  std::string Path = testing::TempDir() + "/skatsim_config_test.ini";
  ModuleConfig Original = makeSkatModule();
  Original.NumCcbs = 13;
  std::string Text = serializeModuleConfig(Original);
  std::FILE *File = std::fopen(Path.c_str(), "w");
  ASSERT_NE(File, nullptr);
  std::fwrite(Text.data(), 1, Text.size(), File);
  std::fclose(File);
  auto Loaded = loadModuleConfigFile(Path);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();
  EXPECT_EQ(Loaded->NumCcbs, 13);
}

TEST(ConfigIoTest, MissingFileIsError) {
  auto Loaded = loadModuleConfigFile("/nonexistent/skatsim.ini");
  ASSERT_FALSE(Loaded.hasValue());
}
