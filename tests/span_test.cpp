//===- tests/span_test.cpp - Span tracing and profiler unit tests ---------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the causal span layer: context propagation (nesting, siblings,
/// cross-thread adoption), the no-sink zero-allocation guarantee, inline
/// attribute capacity, and the profiler's aggregation math (self vs total
/// time, merge-by-name, attribute accumulation, orphan lifting, quantile
/// ordering, JSON shape).
///
//===----------------------------------------------------------------------===//

#include "support/Parallel.h"
#include "telemetry/Json.h"
#include "telemetry/Profile.h"
#include "telemetry/Span.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

using namespace rcs;
using namespace rcs::telemetry;

//===----------------------------------------------------------------------===//
// Allocation counting (for the no-sink hot-path guarantee)
//===----------------------------------------------------------------------===//

namespace {

std::atomic<bool> CountAllocations{false};
std::atomic<uint64_t> NumAllocations{0};

} // namespace

// Every new/delete flavor must route through malloc/free: libstdc++'s
// stable_sort (used by Profiler::report) acquires its temporary buffer
// via nothrow new but releases it via plain delete, so replacing only
// the throwing pair trips asan's alloc-dealloc-mismatch check.
static void *countedAlloc(size_t Size) {
  if (CountAllocations.load(std::memory_order_relaxed))
    NumAllocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(Size ? Size : 1);
}

void *operator new(size_t Size) {
  if (void *P = countedAlloc(Size))
    return P;
  std::abort();
}
void *operator new[](size_t Size) {
  if (void *P = countedAlloc(Size))
    return P;
  std::abort();
}
void *operator new(size_t Size, const std::nothrow_t &) noexcept {
  return countedAlloc(Size);
}
void *operator new[](size_t Size, const std::nothrow_t &) noexcept {
  return countedAlloc(Size);
}

void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, size_t) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete[](void *P, size_t) noexcept { std::free(P); }
void operator delete(void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}
void operator delete[](void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}

//===----------------------------------------------------------------------===//
// Recording sink
//===----------------------------------------------------------------------===//

namespace {

/// Captures every SpanRecord, copying the transient attribute array.
/// Attribute keys/string values are literals in these tests, so keeping
/// the EventFields by value is safe.
class RecordingSink final : public EventSink {
public:
  struct Rec {
    double StartS = 0.0;
    double DurationS = 0.0;
    std::string Name;
    SpanContext Context;
    uint32_t ParentThreadId = 0;
    std::vector<EventField> Attrs;
  };

  void instant(double, std::string_view, const EventField *,
               size_t) override {}
  void span(const SpanRecord &R) override {
    Rec Copy;
    Copy.StartS = R.StartS;
    Copy.DurationS = R.DurationS;
    Copy.Name = std::string(R.Name);
    Copy.Context = R.Context;
    Copy.ParentThreadId = R.ParentThreadId;
    Copy.Attrs.assign(R.Attrs, R.Attrs + R.NumAttrs);
    Spans.push_back(std::move(Copy));
  }
  Status close() override { return Status::ok(); }

  // The registry serializes sink calls, and every test joins its workers
  // (parallelFor is fork-join) before reading, so plain storage is safe.
  std::vector<Rec> Spans;
};

/// Installs a RecordingSink into a fresh registry and keeps a handle to
/// it for assertions after the spans close.
struct Traced {
  Registry Reg;
  RecordingSink *Sink = nullptr;

  Traced() {
    auto Owned = std::make_unique<RecordingSink>();
    Sink = Owned.get();
    Reg.setSink(std::move(Owned));
  }
  const RecordingSink::Rec *find(std::string_view Name) const {
    for (const RecordingSink::Rec &R : Sink->Spans)
      if (R.Name == Name)
        return &R;
    return nullptr;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Context propagation
//===----------------------------------------------------------------------===//

TEST(SpanContextTest, RootStartsTraceNestedChildrenInherit) {
  Traced T;
  SpanContext RootCtx, ChildCtx, GrandCtx;
  {
    Span Root(T.Reg, "test.root");
    RootCtx = Root.context();
    {
      Span Child(T.Reg, "test.child");
      ChildCtx = Child.context();
      {
        Span Grand(T.Reg, "test.grand");
        GrandCtx = Grand.context();
      }
    }
  }
  // A root span starts a new trace whose TraceId is its own SpanId.
  EXPECT_NE(RootCtx.SpanId, 0u);
  EXPECT_EQ(RootCtx.TraceId, RootCtx.SpanId);
  EXPECT_EQ(RootCtx.ParentId, 0u);
  EXPECT_EQ(RootCtx.Depth, 0);
  // Children share the trace, chain parent ids, and deepen by one.
  EXPECT_EQ(ChildCtx.TraceId, RootCtx.TraceId);
  EXPECT_EQ(ChildCtx.ParentId, RootCtx.SpanId);
  EXPECT_EQ(ChildCtx.Depth, 1);
  EXPECT_EQ(GrandCtx.TraceId, RootCtx.TraceId);
  EXPECT_EQ(GrandCtx.ParentId, ChildCtx.SpanId);
  EXPECT_EQ(GrandCtx.Depth, 2);
  // All ids distinct, all on the same thread.
  EXPECT_NE(ChildCtx.SpanId, RootCtx.SpanId);
  EXPECT_NE(GrandCtx.SpanId, ChildCtx.SpanId);
  EXPECT_EQ(ChildCtx.ThreadId, RootCtx.ThreadId);
  // Closing the last span leaves the thread with no open span.
  EXPECT_EQ(currentSpanContext().SpanId, 0u);
  // RAII order: innermost closes (and records) first.
  ASSERT_EQ(T.Sink->Spans.size(), 3u);
  EXPECT_EQ(T.Sink->Spans[0].Name, "test.grand");
  EXPECT_EQ(T.Sink->Spans[2].Name, "test.root");
  ASSERT_TRUE(Status::ok().isOk());
}

TEST(SpanContextTest, SiblingsShareParentNotEachOther) {
  Traced T;
  {
    Span Root(T.Reg, "test.root");
    { Span A(T.Reg, "test.a"); }
    { Span B(T.Reg, "test.b"); }
  }
  const RecordingSink::Rec *A = T.find("test.a");
  const RecordingSink::Rec *B = T.find("test.b");
  const RecordingSink::Rec *Root = T.find("test.root");
  ASSERT_TRUE(A && B && Root);
  // B opened after A closed, so B's parent is the root, not A.
  EXPECT_EQ(A->Context.ParentId, Root->Context.SpanId);
  EXPECT_EQ(B->Context.ParentId, Root->Context.SpanId);
  EXPECT_NE(A->Context.SpanId, B->Context.SpanId);
  EXPECT_EQ(A->Context.Depth, 1);
  EXPECT_EQ(B->Context.Depth, 1);
}

TEST(SpanContextTest, ScopedSpanParentInstallsAndRestores) {
  SpanContext Fake;
  Fake.TraceId = 7;
  Fake.SpanId = 42;
  Fake.Depth = 3;
  SpanContext Before = currentSpanContext();
  {
    ScopedSpanParent Adopt(Fake);
    EXPECT_EQ(currentSpanContext().SpanId, 42u);
    EXPECT_EQ(currentSpanContext().TraceId, 7u);
  }
  EXPECT_EQ(currentSpanContext().SpanId, Before.SpanId);
}

TEST(SpanCrossThreadTest, WorkersParentUnderAdoptedRoot) {
  Traced T;
  constexpr size_t NumItems = 64;
  SpanContext RootCtx;
  {
    Span Root(T.Reg, "test.sweep");
    RootCtx = Root.context();
    Registry &Reg = T.Reg;
    parallelFor(4, NumItems, [&](size_t Item) {
      ScopedSpanParent Adopt(RootCtx);
      Span Work(Reg, "test.replicate");
      Work.attr("item", static_cast<long long>(Item));
    });
  }
  ASSERT_EQ(T.Sink->Spans.size(), NumItems + 1);
  for (const RecordingSink::Rec &R : T.Sink->Spans) {
    if (R.Name == "test.sweep")
      continue;
    // Every replicate nests under the sweep root regardless of which
    // worker ran it, in the root's trace, one level down.
    EXPECT_EQ(R.Context.TraceId, RootCtx.TraceId);
    EXPECT_EQ(R.Context.ParentId, RootCtx.SpanId);
    EXPECT_EQ(R.Context.Depth, RootCtx.Depth + 1);
    // The record remembers the adopting parent's thread, so a sink can
    // draw the cross-thread edge when the ids differ.
    EXPECT_EQ(R.ParentThreadId, RootCtx.ThreadId);
  }
}

//===----------------------------------------------------------------------===//
// Cost model
//===----------------------------------------------------------------------===//

TEST(SpanCostTest, NoSinkHotPathDoesNotAllocate) {
  Registry Reg; // No sink attached.
  // First use of a label allocates its aggregate slot; warm it up.
  {
    Span Warm(Reg, "test.hot");
    Warm.attr("iterations", 3);
  }
  NumAllocations.store(0);
  CountAllocations.store(true);
  for (int I = 0; I != 100; ++I) {
    Span S(Reg, "test.hot");
    S.attr("iterations", I);
    S.attr("converged", true);
    S.attr("dt_s", 0.25);
  }
  CountAllocations.store(false);
  EXPECT_EQ(NumAllocations.load(), 0u);
  // The aggregate side still saw every span.
  MetricsSnapshot Snap = Reg.snapshotMetrics();
  bool Found = false;
  for (const auto &[Name, Stats] : Snap.Timers)
    if (Name == "test.hot") {
      Found = true;
      EXPECT_EQ(Stats.Count, 101u);
    }
  EXPECT_TRUE(Found);
}

TEST(SpanAttrTest, OverflowBeyondCapacityIsDropped) {
  Traced T;
  {
    Span S(T.Reg, "test.many");
    for (int I = 0; I != 12; ++I)
      S.attr("k", I);
  }
  ASSERT_EQ(T.Sink->Spans.size(), 1u);
  EXPECT_EQ(T.Sink->Spans[0].Attrs.size(), Span::MaxAttrs);
}

//===----------------------------------------------------------------------===//
// Profiler aggregation
//===----------------------------------------------------------------------===//

namespace {

SpanRecord makeRec(std::string_view Name, uint64_t SpanId,
                   uint64_t ParentId, double StartS, double DurationS) {
  SpanRecord R;
  R.Name = Name;
  R.StartS = StartS;
  R.DurationS = DurationS;
  R.Context.TraceId = 1;
  R.Context.SpanId = SpanId;
  R.Context.ParentId = ParentId;
  R.Context.Depth = ParentId == 0 ? 0 : 1;
  R.Context.ThreadId = 1;
  return R;
}

} // namespace

TEST(ProfilerTest, SelfTimeIsTotalMinusChildren) {
  Profiler Prof;
  // Children complete before their parent, as RAII guarantees.
  Prof.span(makeRec("child", 2, 1, 0.1, 0.4));
  Prof.span(makeRec("child", 3, 1, 0.5, 0.2));
  Prof.span(makeRec("root", 1, 0, 0.0, 1.0));
  ProfileReport R = Prof.report();
  EXPECT_DOUBLE_EQ(R.WallTimeS, 1.0);
  EXPECT_DOUBLE_EQ(R.RootTotalS, 1.0);
  ASSERT_EQ(R.Roots.size(), 1u);
  const ProfileNode &Root = R.Roots[0];
  EXPECT_EQ(Root.Name, "root");
  EXPECT_EQ(Root.Count, 1u);
  EXPECT_DOUBLE_EQ(Root.TotalS, 1.0);
  EXPECT_NEAR(Root.SelfS, 0.4, 1e-12); // 1.0 - (0.4 + 0.2)
  // Same-name children merged into one node.
  ASSERT_EQ(Root.Children.size(), 1u);
  const ProfileNode &Child = Root.Children[0];
  EXPECT_EQ(Child.Count, 2u);
  EXPECT_NEAR(Child.TotalS, 0.6, 1e-12);
  EXPECT_NEAR(Child.SelfS, 0.6, 1e-12); // Leaves keep all their time.
  EXPECT_DOUBLE_EQ(Child.MinS, 0.2);
  EXPECT_DOUBLE_EQ(Child.MaxS, 0.4);
}

TEST(ProfilerTest, AttributesAccumulateAndBoolsCount) {
  Profiler Prof;
  EventField IterA[] = {EventField("iterations", 7LL),
                        EventField("warm_start", true)};
  EventField IterB[] = {EventField("iterations", 5LL),
                        EventField("warm_start", false)};
  SpanRecord A = makeRec("solve", 2, 1, 0.0, 0.1);
  A.Attrs = IterA;
  A.NumAttrs = 2;
  SpanRecord B = makeRec("solve", 3, 1, 0.1, 0.1);
  B.Attrs = IterB;
  B.NumAttrs = 2;
  Prof.span(A);
  Prof.span(B);
  Prof.span(makeRec("root", 1, 0, 0.0, 0.5));
  ProfileReport R = Prof.report();
  ASSERT_EQ(R.Roots.size(), 1u);
  ASSERT_EQ(R.Roots[0].Children.size(), 1u);
  const ProfileNode &Solve = R.Roots[0].Children[0];
  ASSERT_EQ(Solve.Attrs.size(), 2u); // Sorted by key.
  EXPECT_EQ(Solve.Attrs[0].first, "iterations");
  EXPECT_DOUBLE_EQ(Solve.Attrs[0].second.Sum, 12.0);
  EXPECT_EQ(Solve.Attrs[0].second.Count, 2u);
  // Booleans sum as 0/1: one of the two solves warm-started.
  EXPECT_EQ(Solve.Attrs[1].first, "warm_start");
  EXPECT_DOUBLE_EQ(Solve.Attrs[1].second.Sum, 1.0);
}

TEST(ProfilerTest, OrphanedSpansSurfaceAtRootLevel) {
  Profiler Prof;
  // Parent id 99 never closes; the child must not vanish.
  Prof.span(makeRec("stranded", 2, 99, 0.0, 0.3));
  ProfileReport R = Prof.report();
  ASSERT_EQ(R.Roots.size(), 1u);
  EXPECT_EQ(R.Roots[0].Name, "stranded");
  EXPECT_DOUBLE_EQ(R.Roots[0].TotalS, 0.3);
}

TEST(ProfilerTest, QuantilesOrderedAndBounded) {
  Profiler Prof;
  for (int I = 1; I <= 200; ++I)
    Prof.span(makeRec("step", 100 + I, 0, 0.0, 1e-4 * I));
  ProfileReport R = Prof.report();
  ASSERT_EQ(R.Roots.size(), 1u);
  const ProfileNode &Step = R.Roots[0];
  EXPECT_EQ(Step.Count, 200u);
  EXPECT_LE(Step.P50S, Step.P95S);
  EXPECT_LE(Step.P95S, Step.P99S);
  EXPECT_GE(Step.P50S, 0.0);
  EXPECT_LE(Step.P99S, Step.MaxS * (1.0 + 1e-9));
}

TEST(ProfilerTest, JsonReportParsesWithExpectedShape) {
  Profiler Prof;
  Prof.span(makeRec("child", 2, 1, 0.0, 0.25));
  Prof.span(makeRec("root", 1, 0, 0.0, 1.0));
  std::string Json = renderProfileJson(Prof.report(), "unit");
  Expected<JsonValue> Doc = parseJson(Json);
  ASSERT_TRUE(Doc.hasValue()) << Doc.message();
  const JsonValue *Schema = Doc->find("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->StringValue, "skatsim-profile-v1");
  const JsonValue *Roots = Doc->find("roots");
  ASSERT_NE(Roots, nullptr);
  ASSERT_EQ(Roots->Items.size(), 1u);
  const JsonValue *Children = Roots->Items[0].find("children");
  ASSERT_NE(Children, nullptr);
  EXPECT_EQ(Children->Items.size(), 1u);
  const JsonValue *SelfS = Roots->Items[0].find("self_s");
  ASSERT_NE(SelfS, nullptr);
  EXPECT_NEAR(SelfS->NumberValue, 0.75, 1e-12);
}

TEST(ProfilerTest, EndToEndThroughRegistryAndRealSpans) {
  Registry Reg;
  auto Owned = std::make_unique<Profiler>();
  Profiler *Prof = Owned.get();
  Reg.setSink(std::move(Owned));
  constexpr size_t NumItems = 32;
  {
    Span Root(Reg, "run");
    SpanContext RootCtx = Root.context();
    parallelFor(4, NumItems, [&](size_t) {
      ScopedSpanParent Adopt(RootCtx);
      Span Work(Reg, "replicate");
      Work.attr("ok", true);
    });
  }
  ProfileReport R = Prof->report();
  ASSERT_EQ(R.Roots.size(), 1u);
  EXPECT_EQ(R.Roots[0].Name, "run");
  ASSERT_EQ(R.Roots[0].Children.size(), 1u);
  const ProfileNode &Work = R.Roots[0].Children[0];
  EXPECT_EQ(Work.Name, "replicate");
  EXPECT_EQ(Work.Count, NumItems);
  ASSERT_EQ(Work.Attrs.size(), 1u);
  EXPECT_DOUBLE_EQ(Work.Attrs[0].second.Sum, double(NumItems));
  EXPECT_TRUE(Reg.closeSink().isOk());
}
