//===- tests/lint_fixtures/range_guard_violations.cpp ---------------------===//
//
// skatlint test fixture: exactly one range-guard violation (an unguarded
// Nusselt correlation) next to a guarded one that must NOT fire. Never
// compiled; only fed to tools/skatlint by CTest.
//
//===----------------------------------------------------------------------===//

namespace fixture {

// violation: correlation body extrapolates silently
double laminarNusselt(double Re) { return 3.66 + 0.001 * Re; }

// ok: branches on its validity range
double turbulentNusselt(double Re) {
  if (Re < 2300.0)
    return 3.66;
  return 0.023 * Re;
}

} // namespace fixture
