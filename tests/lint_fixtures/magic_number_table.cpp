// Fixture for the magic-number-table rule: repeated floating literals in
// braced table initializers must be hoisted into named constants (or
// carry an inline justification). Exact expected counts live in
// tests/CMakeLists.txt; keep them in sync when editing.

namespace fixture {

// Violation: 2.5 is copy-pasted four times with no named constant.
const double FanCurveLpm[] = {
    0.0, 2.5, 1.5, 2.5,
    3.5, 2.5, 4.0, 2.5,
};

// Violation: the repeated ceiling 97.5 in a nested row table.
const double EfficiencyBandTable[][2] = {
    {10.0, 97.5},
    {20.0, 97.5},
    {30.0, 97.5},
};

// Clean: 0.0 / 1.0 repeats are structural padding, not magic numbers.
const double IdentityRows[] = {1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0};

// Clean: a named constant repeated by reference, the fix the rule asks for.
constexpr double RatedSlopeWPerC = 3.75;
const double CalibrationSlopesWPerC[] = {
    RatedSlopeWPerC, RatedSlopeWPerC, RatedSlopeWPerC,
    4.25, 4.75, 5.25,
};

// Clean: too few literals to count as a table; small aggregates may
// repeat values structurally.
const double PairMm[] = {6.5, 6.5};

// Suppressed: the duplicated anchor is intentional (shared calibration
// point between the two bands) and justified inline.
// skatlint:ignore(magic-number-table) both bands pin the 5.5 anchor point
const double JustifiedAnchorsMm[] = {5.5, 5.5, 5.5, 6.0, 7.0, 8.0};

} // namespace fixture
