//===- tests/lint_fixtures/banned_idioms.cpp ------------------------------===//
//
// skatlint test fixture: exactly two banned-idiom violations (rand, atof)
// plus a member call spelled `rand` that must NOT fire. Never compiled;
// only fed to tools/skatlint by CTest.
//
//===----------------------------------------------------------------------===//

#include <cstdlib>

namespace fixture {

class Sampler; // has a member spelled rand(); deliberately undefined

int fixtureSeed() {
  return rand(); // violation: use rcs::Rng
}

double fixtureParse(const char *Arg) {
  return atof(Arg); // violation: use std::strtod
}

int fixtureMemberCall(Sampler *S) {
  return S->rand(); // ok: member access, not ::rand
}

} // namespace fixture
