//===- tests/lint_fixtures/clean.h ------------------------------*- C++ -*-===//
//
// skatlint test fixture: fully conforming header. Expected result: zero
// findings, zero suppressions, exit code 0.
//
//===----------------------------------------------------------------------===//

#ifndef RCS_TESTS_LINT_FIXTURES_CLEAN_H
#define RCS_TESTS_LINT_FIXTURES_CLEAN_H

#include "support/Quantity.h"

namespace fixture {

/// Typed duty calculation: dimensions checked at compile time.
inline rcs::units::Watts heatDuty(rcs::units::WattsPerKelvin Ua,
                                  rcs::units::TempDelta Lmtd) {
  return Ua * Lmtd;
}

/// Raw-double boundary API: every name carries its unit.
inline double pumpPowerW(double FlowM3PerS, double PressureRisePa) {
  return FlowM3PerS * PressureRisePa;
}

} // namespace fixture

#endif // RCS_TESTS_LINT_FIXTURES_CLEAN_H
