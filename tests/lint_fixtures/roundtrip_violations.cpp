//===- tests/lint_fixtures/roundtrip_violations.cpp -----------------------===//
//
// skatlint test fixture: exactly two conversion-roundtrip violations, one
// with namespace-qualified inner calls and one unqualified. Never compiled;
// only fed to tools/skatlint by CTest.
//
//===----------------------------------------------------------------------===//

#include "support/Units.h"

namespace fixture {

double roundTripTempK(double TempK) {
  // violation: celsiusToKelvin composed with its inverse
  return rcs::units::celsiusToKelvin(rcs::units::kelvinToCelsius(TempK));
}

double roundTripPa(double PressurePa) {
  using namespace rcs::units;
  // violation: barToPa composed with its inverse
  return barToPa(paToBar(PressurePa));
}

double sensibleChain(double TempK) {
  // ok: a conversion of a conversion-free expression
  return rcs::units::kelvinToCelsius(TempK + 1.0);
}

} // namespace fixture
