//===- tests/lint_fixtures/suppressed.h -------------------------*- C++ -*-===//
//
// skatlint test fixture: one violation per suppression style (line-above,
// same-line, comment-run), every one silenced by a skatlint:ignore tag.
// Expected result: zero findings, three suppressions. Never compiled; only
// fed to tools/skatlint by CTest.
//
//===----------------------------------------------------------------------===//

#ifndef RCS_TESTS_LINT_FIXTURES_SUPPRESSED_H
#define RCS_TESTS_LINT_FIXTURES_SUPPRESSED_H

#include <cstdlib>

namespace fixture {

// skatlint:ignore(unit-suffix) -- fixture: deliberately bare double
inline constexpr double Setpoint = 42.0;

inline double knobValue(const char *Arg) {
  return atof(Arg); // skatlint:ignore(banned-idiom) -- fixture
}

inline bool matchesSentinel(double X) {
  // skatlint:ignore(float-equality) -- fixture: exact sentinel, assigned
  // (not computed), so bitwise comparison is intended here
  return X == 42.0;
}

} // namespace fixture

#endif // RCS_TESTS_LINT_FIXTURES_SUPPRESSED_H
