//===- tests/lint_fixtures/raw_mutex.cpp - raw-mutex rule -----------------===//
//
// Fixture for the raw-mutex rule: four findings, one suppressed, and a
// block of wrapper-based patterns that must stay silent. Not meant to
// compile — skatlint never runs the compiler.
//
//===----------------------------------------------------------------------===//

#include <mutex> // ok: preprocessor lines never tokenize

namespace rcs {
class Mutex {};
class LockGuard {};
} // namespace rcs

struct BadCache {
  std::mutex Lock;               // FINDING: raw mutex member
  std::condition_variable Ready; // FINDING: raw condvar member
  int Hits = 0;
};

void badTouch(BadCache &Cache) {
  std::lock_guard<std::mutex> Guard(Cache.Lock); // FINDING x2: guard + type arg
  ++Cache.Hits;
}

// skatlint:ignore(raw-mutex) -- fixture: sanctioned wrapper internals
std::mutex TheOneRawMutex;

struct GoodCache {
  rcs::Mutex Lock; // ok: annotated wrapper
  int Hits = 0;
};

void goodTouch(GoodCache &Cache) {
  rcs::LockGuard Guard(Cache.Lock); // ok: annotated scoped lock
  ++Cache.Hits;
}

// ok: the word mutex outside std:: qualification (comments, identifiers)
void describeMutexPolicy(int MutexCount);
