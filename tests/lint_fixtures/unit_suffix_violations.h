//===- tests/lint_fixtures/unit_suffix_violations.h -------------*- C++ -*-===//
//
// skatlint test fixture: exactly three unit-suffix violations (FlowRate,
// Power, temperature), interleaved with conforming declarations that must
// NOT fire. Never compiled; only fed to tools/skatlint by CTest.
//
//===----------------------------------------------------------------------===//

#ifndef RCS_TESTS_LINT_FIXTURES_UNIT_SUFFIX_VIOLATIONS_H
#define RCS_TESTS_LINT_FIXTURES_UNIT_SUFFIX_VIOLATIONS_H

namespace fixture {

struct PumpState {
  double FlowRate = 0.0; // violation: bare double field, unit unknown
  double TempC = 20.0;   // ok: C suffix
  double Ratio = 1.0;    // ok: sanctioned dimensionless word

  void setPower(double Power); // violation: bare double parameter
  double temperature() const;  // violation: bare double-returning function
  double flowM3PerS() const;   // ok: M3PerS composite suffix
};

} // namespace fixture

#endif // RCS_TESTS_LINT_FIXTURES_UNIT_SUFFIX_VIOLATIONS_H
