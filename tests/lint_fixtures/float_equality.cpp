//===- tests/lint_fixtures/float_equality.cpp -----------------------------===//
//
// skatlint test fixture: exactly two float-equality violations plus an
// integer comparison that must NOT fire. Never compiled; only fed to
// tools/skatlint by CTest.
//
//===----------------------------------------------------------------------===//

namespace fixture {

bool fixtureIsZero(double X) {
  return X == 0.0; // violation: use rcs::nearZero
}

bool fixtureIsSet(double Y) {
  return Y != 1.5; // violation: use rcs::approxEqual
}

bool fixtureIntExact(int N) {
  return N == 0; // ok: integer literal
}

} // namespace fixture
