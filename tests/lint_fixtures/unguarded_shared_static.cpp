//===- tests/lint_fixtures/unguarded_shared_static.cpp --------------------===//
//
// Fixture for the unguarded-shared-static rule: four findings, one
// suppressed, and a block of safe static patterns that must stay silent.
// Not meant to compile — skatlint never runs the compiler.
//
//===----------------------------------------------------------------------===//

#define RCS_GUARDED_BY(x)

namespace rcs {
class Mutex {};
} // namespace rcs

static int GlobalHitCount;        // FINDING: file-scope mutable static
static double LastSampleBuffer[8]; // FINDING: file-scope mutable array

namespace cache {
static long EvictionTally = 0; // FINDING: namespace-scope mutable static
} // namespace cache

struct Registry {
  static Registry *ActiveInstance; // FINDING: class-scope mutable static

  // skatlint:ignore(unguarded-shared-static) -- fixture: init-once before threads
  static int BootPhase;
};

// --- safe patterns below: none of these may fire -------------------------

static const int MaxRetries = 3;             // ok: const
static constexpr double TickSeconds = 0.25;  // ok: constexpr
static thread_local int ReentryDepth = 0;    // ok: thread-confined
static std::atomic<int> LiveWorkers{0};      // ok: atomic
static std::once_flag InitOnce;              // ok: once_flag
static rcs::Mutex TallyMutex;                // ok: a mutex is the guard
static int GuardedTally RCS_GUARDED_BY(TallyMutex); // ok: annotated

static int nextSequence();   // ok: function declaration
static int bumpAndGet() {    // ok: function definition
  static int Sequence = 0;   // ok: function-local static (magic static)
  return ++Sequence;
}

class Histogram {
  static constexpr int NumBuckets = 18; // ok: class-scope constexpr
  static double lowerBound(int Bucket); // ok: static member function
};
