//===- tests/lint_fixtures/expected_discard.cpp - expected-discard rule ---===//
//
// Fixture for the expected-discard rule: three findings, one suppressed,
// and a block of consuming patterns that must stay silent. Not meant to
// compile — skatlint never runs the compiler.
//
//===----------------------------------------------------------------------===//

struct Status {
  static Status ok();
  bool isOk() const;
};
template <typename T> struct Expected {};

Status saveReport(int Value);
Expected<int> parseCount(const char *Text);

struct Sink {
  Status close();
};

void driver(Sink &Out) {
  saveReport(1);   // FINDING: bare statement discards the Status
  parseCount("2"); // FINDING: bare statement discards the Expected<int>
  Out.close();     // FINDING: member call, result still dropped

  // skatlint:ignore(expected-discard) -- shutdown path, failure is benign
  saveReport(3);

  (void)saveReport(4);         // ok: explicitly voided
  Status Kept = saveReport(5); // ok: assigned
  if (Kept.isOk())
    saveReport(6); // ok: guarded statement, not statement position
}
