//===- tests/fpga_test.cpp - Unit tests for rcs_fpga ------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fpga/Device.h"
#include "fpga/PowerModel.h"
#include "fpga/Reliability.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace rcs;
using namespace rcs::fpga;

//===----------------------------------------------------------------------===//
// Device database
//===----------------------------------------------------------------------===//

namespace {

class AllModelsTest : public testing::TestWithParam<FpgaModel> {};

} // namespace

TEST_P(AllModelsTest, SpecFieldsArePlausible) {
  const FpgaSpec &Spec = getFpgaSpec(GetParam());
  EXPECT_FALSE(Spec.Name.empty());
  EXPECT_GT(Spec.LogicKCells, 0);
  EXPECT_GT(Spec.DspSlices, 0);
  EXPECT_GT(Spec.PackageSizeM, 0.03);
  EXPECT_LT(Spec.PackageSizeM, 0.06);
  EXPECT_GT(Spec.ThetaJcKPerW, 0.0);
  EXPECT_LT(Spec.ThetaJcKPerW, 0.5);
  EXPECT_GT(Spec.StaticPower25W, 0.0);
  EXPECT_GT(Spec.DynamicPowerMaxW, 0.0);
  EXPECT_GT(Spec.PeakGflops, 0.0);
  EXPECT_LT(Spec.ReliableJunctionTempC, Spec.MaxJunctionTempC);
}

INSTANTIATE_TEST_SUITE_P(Devices, AllModelsTest,
                         testing::Values(FpgaModel::XC6VLX240T,
                                         FpgaModel::XC7VX485T,
                                         FpgaModel::XCKU095,
                                         FpgaModel::XCVU9P,
                                         FpgaModel::UltraScale2),
                         [](const testing::TestParamInfo<FpgaModel> &Info) {
                           std::string Name =
                               getFpgaSpec(Info.param).Name.substr(0, 7);
                           for (char &C : Name)
                             if (!std::isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });

TEST(DeviceTest, PackageSizesMatchPaper) {
  // The paper: SKAT FPGAs are 42.5 x 42.5 mm, SKAT+ FPGAs 45 x 45 mm.
  EXPECT_DOUBLE_EQ(getFpgaSpec(FpgaModel::XCKU095).PackageSizeM, 0.0425);
  EXPECT_DOUBLE_EQ(getFpgaSpec(FpgaModel::XCVU9P).PackageSizeM, 0.045);
}

TEST(DeviceTest, PerformanceGrowsAcrossGenerations) {
  double Previous = 0.0;
  for (FpgaModel Model :
       {FpgaModel::XC6VLX240T, FpgaModel::XC7VX485T, FpgaModel::XCKU095,
        FpgaModel::XCVU9P, FpgaModel::UltraScale2}) {
    double Peak = getFpgaSpec(Model).PeakGflops;
    EXPECT_GT(Peak, Previous);
    Previous = Peak;
  }
}

TEST(DeviceTest, UltraScalePlusIsTripleKintexUltraScale) {
  // Paper Section 4: UltraScale+ provides "a three time increase in
  // computational performance".
  double Ratio = getFpgaSpec(FpgaModel::XCVU9P).PeakGflops /
                 getFpgaSpec(FpgaModel::XCKU095).PeakGflops;
  EXPECT_NEAR(Ratio, 3.0, 0.05);
}

TEST(DeviceTest, NextGenerationChain) {
  EXPECT_EQ(nextGeneration(FpgaModel::XC6VLX240T), FpgaModel::XC7VX485T);
  EXPECT_EQ(nextGeneration(FpgaModel::XC7VX485T), FpgaModel::XCKU095);
  EXPECT_EQ(nextGeneration(FpgaModel::XCKU095), FpgaModel::XCVU9P);
  EXPECT_EQ(nextGeneration(FpgaModel::XCVU9P), FpgaModel::UltraScale2);
  EXPECT_EQ(nextGeneration(FpgaModel::UltraScale2), FpgaModel::UltraScale2);
}

TEST(DeviceTest, FamilyNames) {
  EXPECT_STREQ(familyName(FpgaFamily::Virtex6), "Virtex-6");
  EXPECT_STREQ(familyName(FpgaFamily::UltraScalePlus), "UltraScale+");
}

//===----------------------------------------------------------------------===//
// Power model
//===----------------------------------------------------------------------===//

TEST(PowerModelTest, StaticLeakageDoublesEvery25C) {
  FpgaPowerModel Model(getFpgaSpec(FpgaModel::XCKU095));
  double At25 = Model.staticPowerW(25.0);
  EXPECT_NEAR(Model.staticPowerW(50.0), 2.0 * At25, 1e-9);
  EXPECT_NEAR(Model.staticPowerW(75.0), 4.0 * At25, 1e-9);
  EXPECT_NEAR(Model.staticPowerW(0.0), 0.5 * At25, 1e-9);
}

TEST(PowerModelTest, DynamicPowerScalesLinearly) {
  FpgaPowerModel Model(getFpgaSpec(FpgaModel::XCKU095));
  WorkloadPoint Half{0.45, 1.0};
  WorkloadPoint Full{0.90, 1.0};
  EXPECT_NEAR(Model.dynamicPowerW(Full), 2.0 * Model.dynamicPowerW(Half),
              1e-9);
  WorkloadPoint SlowClock{0.90, 0.5};
  EXPECT_NEAR(Model.dynamicPowerW(SlowClock),
              0.5 * Model.dynamicPowerW(Full), 1e-9);
}

TEST(PowerModelTest, FixedPointSatisfiesBothEquations) {
  FpgaPowerModel Model(getFpgaSpec(FpgaModel::XC7VX485T));
  WorkloadPoint Load{0.9, 1.0};
  const double R = 0.9, TRef = 28.0;
  double Tj = Model.solveJunctionTempC(Load, R, TRef);
  double P = Model.totalPowerW(Load, Tj);
  EXPECT_NEAR(Tj, TRef + P * R, 1e-6);
  EXPECT_NEAR(Model.solvePowerW(Load, R, TRef), P, 1e-9);
}

TEST(PowerModelTest, JunctionRisesWithResistance) {
  FpgaPowerModel Model(getFpgaSpec(FpgaModel::XCKU095));
  WorkloadPoint Load{0.9, 1.0};
  EXPECT_LT(Model.solveJunctionTempC(Load, 0.2, 30.0),
            Model.solveJunctionTempC(Load, 0.6, 30.0));
}

TEST(PowerModelTest, ThermalRunawayIsFlagged) {
  FpgaPowerModel Model(getFpgaSpec(FpgaModel::XCKU095));
  WorkloadPoint Load{1.0, 1.0};
  // Absurd resistance: leakage feedback diverges; the solver saturates
  // at its ceiling far beyond MaxJunctionTempC.
  double Tj = Model.solveJunctionTempC(Load, 5.0, 40.0);
  EXPECT_GT(Tj, Model.spec().MaxJunctionTempC);
}

TEST(PowerModelTest, SkatOperatingPointMatchesPaper) {
  // Paper Section 3: 91 W per XCKU095 in operating mode at the SKAT
  // cooling point (junction in the mid-40s over ~28 C oil).
  FpgaPowerModel Model(getFpgaSpec(FpgaModel::XCKU095));
  WorkloadPoint Load{0.90, 1.0};
  double P = Model.solvePowerW(Load, 0.18, 28.0);
  EXPECT_NEAR(P, 91.0, 3.0);
}

TEST(PowerModelTest, IdleFabricDrawsLittle) {
  FpgaPowerModel Model(getFpgaSpec(FpgaModel::XCKU095));
  WorkloadPoint Idle{0.02, 0.5};
  double P = Model.solvePowerW(Idle, 0.2, 28.0);
  EXPECT_LT(P, 20.0);
}

TEST(PowerModelTest, TypedOverloadsMatchRawDoubles) {
  FpgaPowerModel Model(getFpgaSpec(FpgaModel::XCKU095));
  WorkloadPoint Load{0.90, 1.0};
  EXPECT_EQ(Model.staticPower(units::Celsius(50.0)).value(),
            Model.staticPowerW(50.0));
  EXPECT_EQ(Model.dynamicPower(Load).value(), Model.dynamicPowerW(Load));
  EXPECT_EQ(Model.totalPower(Load, units::Celsius(45.0)).value(),
            Model.totalPowerW(Load, 45.0));
  EXPECT_EQ(Model
                .solveJunctionTemp(Load, units::KelvinPerWatt(0.18),
                                   units::Celsius(28.0))
                .value(),
            Model.solveJunctionTempC(Load, 0.18, 28.0));
  EXPECT_EQ(
      Model.solvePower(Load, units::KelvinPerWatt(0.18), units::Celsius(28.0))
          .value(),
      Model.solvePowerW(Load, 0.18, 28.0));
}

TEST(DeviceTest, TypedSpecAccessorsMatchRawFields) {
  const FpgaSpec &Spec = getFpgaSpec(FpgaModel::XCKU095);
  EXPECT_EQ(Spec.packageSize().value(), Spec.PackageSizeM);
  EXPECT_EQ(Spec.thetaJc().value(), Spec.ThetaJcKPerW);
  EXPECT_EQ(Spec.staticPower25().value(), Spec.StaticPower25W);
  EXPECT_EQ(Spec.dynamicPowerMax().value(), Spec.DynamicPowerMaxW);
  EXPECT_EQ(Spec.maxJunctionTemp().value(), Spec.MaxJunctionTempC);
  EXPECT_EQ(Spec.reliableJunctionTemp().value(), Spec.ReliableJunctionTempC);
}

//===----------------------------------------------------------------------===//
// Reliability (Arrhenius)
//===----------------------------------------------------------------------===//

TEST(ReliabilityTest, AccelerationIsOneAtReference) {
  EXPECT_NEAR(arrheniusAccelerationFactor(55.0, 55.0), 1.0, 1e-12);
}

TEST(ReliabilityTest, AccelerationGrowsWithTemperature) {
  double A65 = arrheniusAccelerationFactor(65.0, 55.0);
  double A85 = arrheniusAccelerationFactor(85.0, 55.0);
  EXPECT_GT(A65, 1.5);
  EXPECT_GT(A85, A65 * A65 * 0.5); // Strongly super-linear.
}

TEST(ReliabilityTest, RoughlyDoublesPerTenDegrees) {
  // At Ea = 0.7 eV around 60 C, a 10 C rise roughly doubles the rate.
  double Factor = arrheniusAccelerationFactor(70.0, 60.0);
  EXPECT_GT(Factor, 1.7);
  EXPECT_LT(Factor, 2.6);
}

TEST(ReliabilityTest, MttfInverseOfAcceleration) {
  ReliabilityModel Model;
  double MttfRef = mttfHours(Model.ReferenceJunctionTempC, Model);
  EXPECT_NEAR(MttfRef, Model.ReferenceMttfHours, 1e-6);
  double MttfHot = mttfHours(75.0, Model);
  EXPECT_NEAR(MttfHot * arrheniusAccelerationFactor(75.0, 55.0),
              Model.ReferenceMttfHours, 1.0);
}

TEST(ReliabilityTest, FitAndFailureScaling) {
  double FitCold = failureRateFit(45.0);
  double FitHot = failureRateFit(85.0);
  EXPECT_GT(FitHot, 5.0 * FitCold);
  // 1000 devices at the reference point: failures/year = count * 8766 /
  // MTTF.
  double PerYear = expectedFailuresPerYear(1000, 55.0);
  EXPECT_NEAR(PerYear, 1000.0 * 8766.0 / 2.0e6, 0.01);
}

TEST(ReliabilityTest, ImmersionVsAirLifetimeGap) {
  // SKAT junctions (~45 C) vs projected air-cooled UltraScale (~84 C):
  // the immersion machine's FPGAs last more than 10x longer.
  double Gap = mttfHours(45.0) / mttfHours(84.0);
  EXPECT_GT(Gap, 10.0);
}
