//===- tests/system_test.cpp - Unit tests for rcs_system --------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "system/Board.h"
#include "system/Chiller.h"
#include "system/Cooling.h"
#include "system/Module.h"
#include "system/Monitoring.h"
#include "system/PowerSupply.h"
#include "system/Rack.h"

#include "core/Designs.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace rcs;
using namespace rcs::rcsystem;

//===----------------------------------------------------------------------===//
// Ccb
//===----------------------------------------------------------------------===//

TEST(CcbTest, CountsWithSeparateController) {
  CcbConfig Config;
  Config.Model = fpga::FpgaModel::XCKU095;
  Config.NumComputeFpgas = 8;
  Config.SeparateControllerFpga = true;
  Ccb Board(Config);
  EXPECT_EQ(Board.computeFpgaCount(), 8);
  EXPECT_EQ(Board.totalFpgaCount(), 9);
  EXPECT_EQ(Board.sitesAcross(), 5);
}

TEST(CcbTest, CountsWithoutSeparateController) {
  CcbConfig Config;
  Config.Model = fpga::FpgaModel::XCVU9P;
  Config.SeparateControllerFpga = false;
  Ccb Board(Config);
  EXPECT_EQ(Board.totalFpgaCount(), 8);
  EXPECT_EQ(Board.sitesAcross(), 4);
}

TEST(CcbTest, RackFitReproducesSection4Constraint) {
  // 42.5 mm UltraScale with a controller fits; 45 mm UltraScale+ with a
  // controller does not; dropping the controller restores the fit.
  CcbConfig Ku;
  Ku.Model = fpga::FpgaModel::XCKU095;
  Ku.SeparateControllerFpga = true;
  EXPECT_TRUE(Ccb(Ku).fitsStandard19InchRack());

  CcbConfig VuWith;
  VuWith.Model = fpga::FpgaModel::XCVU9P;
  VuWith.SeparateControllerFpga = true;
  EXPECT_FALSE(Ccb(VuWith).fitsStandard19InchRack());

  CcbConfig VuWithout = VuWith;
  VuWithout.SeparateControllerFpga = false;
  EXPECT_TRUE(Ccb(VuWithout).fitsStandard19InchRack());
}

TEST(CcbTest, ControllerOverheadReducesPeak) {
  CcbConfig With;
  With.Model = fpga::FpgaModel::XCVU9P;
  With.SeparateControllerFpga = true;
  CcbConfig Without = With;
  Without.SeparateControllerFpga = false;
  double Full = Ccb(With).peakGflops();
  double Shared = Ccb(Without).peakGflops();
  EXPECT_LT(Shared, Full);
  // ... but only by "some percent" (paper Section 4).
  EXPECT_GT(Shared, 0.99 * Full * (1.0 - 0.06));
}

TEST(CcbTest, BoardPowerComposition) {
  CcbConfig Config;
  Config.Model = fpga::FpgaModel::XCKU095;
  Ccb Board(Config);
  fpga::WorkloadPoint Load{0.9, 1.0};
  double Chip = Board.computeFpgaPowerW(Load, 45.0);
  double Total = Board.boardPowerW(Load, 45.0);
  EXPECT_NEAR(Total, 8 * Chip + Board.nonFpgaPowerW(Load, 45.0), 1e-9);
  EXPECT_GT(Board.nonFpgaPowerW(Load, 45.0), Config.MiscPowerW);
}

//===----------------------------------------------------------------------===//
// Power supply
//===----------------------------------------------------------------------===//

TEST(PsuTest, EfficiencyCurvePeaksMidLoad) {
  PowerSupplyUnit Psu = PowerSupplyUnit::makeSkatImmersionPsu();
  EXPECT_LT(Psu.efficiencyAt(100.0), Psu.efficiencyAt(2500.0));
  EXPECT_GT(Psu.efficiencyAt(3000.0), Psu.efficiencyAt(4000.0));
  EXPECT_TRUE(Psu.isImmersible());
  EXPECT_DOUBLE_EQ(Psu.ratedPowerW(), 4000.0);
}

TEST(PsuTest, LossAndInputConsistent) {
  PowerSupplyUnit Psu = PowerSupplyUnit::makeSkatImmersionPsu();
  double Load = 3000.0;
  double Loss = Psu.lossW(Load);
  EXPECT_GT(Loss, 0.0);
  EXPECT_NEAR(Psu.inputPowerW(Load), Load + Loss, 1e-9);
  EXPECT_NEAR(Load / Psu.inputPowerW(Load), Psu.efficiencyAt(Load), 1e-9);
  EXPECT_DOUBLE_EQ(Psu.lossW(0.0), 0.0);
}

//===----------------------------------------------------------------------===//
// Chiller
//===----------------------------------------------------------------------===//

TEST(ChillerTest, CopFallsWithAmbient) {
  Chiller Plant = Chiller::makeSkatRackChiller();
  EXPECT_GT(Plant.cop(15.0), Plant.cop(35.0));
  EXPECT_GT(Plant.cop(35.0), 1.0);
}

TEST(ChillerTest, ElectricalPowerFromCop) {
  Chiller Plant = Chiller::makeSkatRackChiller();
  double Duty = 100e3;
  EXPECT_NEAR(Plant.electricalPowerW(Duty, 25.0),
              Duty / Plant.cop(25.0), 1e-6);
  EXPECT_TRUE(Plant.isOverloaded(200e3));
  EXPECT_FALSE(Plant.isOverloaded(50e3));
}

TEST(ChillerTest, WarmerSetpointImprovesCop) {
  Chiller Cold("c", 10.0, 130e3);
  Chiller Warm("w", 25.0, 130e3);
  EXPECT_GT(Warm.cop(30.0), Cold.cop(30.0));
}

//===----------------------------------------------------------------------===//
// Cooling solvers: physics invariants
//===----------------------------------------------------------------------===//

namespace {

ExternalConditions nominal() { return core::makeNominalConditions(); }

} // namespace

TEST(AirSolverTest, EnergyBalanceInAirStream) {
  ComputationalModule Module(core::makeTaygetaModule());
  auto Report = Module.solveSteadyState(nominal());
  ASSERT_TRUE(Report.hasValue()) << Report.message();
  // Air rise times capacity equals total heat (within property lookup
  // tolerance).
  auto Air = fluids::makeAir();
  double RhoCp = Air->volumetricHeatCapacityJPerM3K(30.0);
  double ExpectedRise =
      Report->TotalHeatW / (RhoCp * Report->CoolantFlowM3PerS);
  EXPECT_NEAR(Report->CoolantHotTempC - Report->CoolantColdTempC,
              ExpectedRise, 0.05 * ExpectedRise);
}

TEST(AirSolverTest, BackRowRunsHotter) {
  ComputationalModule Module(core::makeTaygetaModule());
  auto Report = Module.solveSteadyState(nominal());
  ASSERT_TRUE(Report.hasValue());
  ASSERT_GE(Report->Fpgas.size(), 8u);
  // Within one board, the last FPGA (back row) is hotter than the first.
  EXPECT_GT(Report->Fpgas[7].JunctionTempC,
            Report->Fpgas[0].JunctionTempC);
}

TEST(AirSolverTest, MoreAirflowCoolsChips) {
  ModuleConfig Config = core::makeTaygetaModule();
  ComputationalModule Base(Config);
  auto BaseReport = Base.solveSteadyState(nominal());
  ASSERT_TRUE(BaseReport.hasValue());
  Config.Air.AirflowM3PerS *= 1.5;
  ComputationalModule Boosted(Config);
  auto BoostedReport = Boosted.solveSteadyState(nominal());
  ASSERT_TRUE(BoostedReport.hasValue());
  EXPECT_LT(BoostedReport->MaxJunctionTempC, BaseReport->MaxJunctionTempC);
}

TEST(AirSolverTest, RejectsZeroAirflow) {
  ModuleConfig Config = core::makeTaygetaModule();
  Config.Air.AirflowM3PerS = 0.0;
  ComputationalModule Module(Config);
  auto Report = Module.solveSteadyState(nominal());
  EXPECT_FALSE(Report.hasValue());
}

TEST(ImmersionSolverTest, WaterSideEnergyBalance) {
  ComputationalModule Module(core::makeSkatModule());
  auto Report = Module.solveSteadyState(nominal());
  ASSERT_TRUE(Report.hasValue()) << Report.message();
  auto Water = fluids::makeWater();
  double CWater =
      nominal().WaterFlowM3PerS * Water->densityKgPerM3(22.0) *
      Water->specificHeatJPerKgK(22.0);
  double WaterGain =
      CWater * (Report->WaterOutletTempC - nominal().WaterInletTempC);
  // All module heat crosses the HX into the water.
  EXPECT_NEAR(WaterGain, Report->TotalHeatW, 0.03 * Report->TotalHeatW);
  EXPECT_NEAR(Report->HxDutyW, Report->TotalHeatW,
              0.03 * Report->TotalHeatW);
}

TEST(ImmersionSolverTest, OilTemperaturesOrdered) {
  ComputationalModule Module(core::makeSkatModule());
  auto Report = Module.solveSteadyState(nominal());
  ASSERT_TRUE(Report.hasValue());
  EXPECT_GT(Report->CoolantHotTempC, Report->CoolantColdTempC);
  EXPECT_GT(Report->CoolantColdTempC, nominal().WaterInletTempC);
  EXPECT_GT(Report->MaxJunctionTempC, Report->CoolantHotTempC);
}

TEST(ImmersionSolverTest, SeriesDistributionBuildsGradient) {
  // First-generation designs circulate boards in series and suffer
  // "considerable thermal gradients" (paper Section 2).
  ModuleConfig Parallel = core::makeSkatModule();
  ModuleConfig Series = core::makeSkatModule();
  Series.Immersion.Distribution =
      ImmersionCoolingConfig::OilDistribution::SeriesAlongBoards;
  auto ParallelReport =
      ComputationalModule(Parallel).solveSteadyState(nominal());
  auto SeriesReport =
      ComputationalModule(Series).solveSteadyState(nominal());
  ASSERT_TRUE(ParallelReport.hasValue());
  ASSERT_TRUE(SeriesReport.hasValue());
  auto spread = [](const ModuleThermalReport &R) {
    double Lo = 1e9, Hi = -1e9;
    for (double T : R.PerBoardCoolantTempC) {
      Lo = std::min(Lo, T);
      Hi = std::max(Hi, T);
    }
    return Hi - Lo;
  };
  EXPECT_LT(spread(*ParallelReport), 0.5);
  EXPECT_GT(spread(*SeriesReport), 4.0 * spread(*ParallelReport));
  EXPECT_GT(SeriesReport->MaxJunctionTempC,
            ParallelReport->MaxJunctionTempC);
}

TEST(ImmersionSolverTest, TimWashoutRaisesJunctions) {
  ModuleConfig Fresh = core::makeSkatModule();
  Fresh.Immersion.Tim = ImmersionCoolingConfig::TimKind::SiliconeGrease;
  ModuleConfig Aged = Fresh;
  Aged.Immersion.TimExposureHours = 10000.0;
  auto FreshReport = ComputationalModule(Fresh).solveSteadyState(nominal());
  auto AgedReport = ComputationalModule(Aged).solveSteadyState(nominal());
  ASSERT_TRUE(FreshReport.hasValue());
  ASSERT_TRUE(AgedReport.hasValue());
  EXPECT_GT(AgedReport->MaxJunctionTempC,
            FreshReport->MaxJunctionTempC + 1.0);

  // The SKAT wash-out-proof interface does not age.
  ModuleConfig SkatAged = core::makeSkatModule();
  SkatAged.Immersion.TimExposureHours = 10000.0;
  auto SkatReport =
      ComputationalModule(SkatAged).solveSteadyState(nominal());
  auto SkatBase =
      ComputationalModule(core::makeSkatModule()).solveSteadyState(nominal());
  ASSERT_TRUE(SkatReport.hasValue());
  ASSERT_TRUE(SkatBase.hasValue());
  EXPECT_NEAR(SkatReport->MaxJunctionTempC, SkatBase->MaxJunctionTempC,
              0.05);
}

TEST(ImmersionSolverTest, BetterCoolantRunsCooler) {
  ModuleConfig White = core::makeSkatModule();
  White.Immersion.CoolantKind =
      ImmersionCoolingConfig::Coolant::WhiteMineralOil;
  auto WhiteReport = ComputationalModule(White).solveSteadyState(nominal());
  auto SkatReport =
      ComputationalModule(core::makeSkatModule()).solveSteadyState(nominal());
  ASSERT_TRUE(WhiteReport.hasValue());
  ASSERT_TRUE(SkatReport.hasValue());
  EXPECT_LT(SkatReport->MaxJunctionTempC, WhiteReport->MaxJunctionTempC);
}

TEST(ImmersionSolverTest, ColderWaterCoolsEverything) {
  ComputationalModule Module(core::makeSkatModule());
  ExternalConditions Warm = nominal();
  Warm.WaterInletTempC = 24.0;
  auto Cold = Module.solveSteadyState(nominal());
  auto Warmer = Module.solveSteadyState(Warm);
  ASSERT_TRUE(Cold.hasValue());
  ASSERT_TRUE(Warmer.hasValue());
  EXPECT_GT(Warmer->MaxJunctionTempC, Cold->MaxJunctionTempC + 3.0);
}

TEST(ColdPlateSolverTest, SolvesAndOrdersTemperatures) {
  ModuleConfig Config = core::makeSkatModule();
  Config.Cooling = CoolingKind::ColdPlate;
  Config.ColdPlate.WaterFlowM3PerS = 1.2e-3;
  ComputationalModule Module(Config);
  auto Report = Module.solveSteadyState(nominal());
  ASSERT_TRUE(Report.hasValue()) << Report.message();
  EXPECT_GT(Report->MaxJunctionTempC, nominal().WaterInletTempC);
  // Plates along a board: later chips see warmer water.
  ASSERT_GE(Report->Fpgas.size(), 8u);
  EXPECT_GT(Report->Fpgas[7].LocalCoolantTempC,
            Report->Fpgas[0].LocalCoolantTempC);
  EXPECT_GT(Report->WaterOutletTempC, nominal().WaterInletTempC);
}

TEST(ModuleTest, MetricsAndDispatch) {
  ComputationalModule Skat(core::makeSkatModule());
  EXPECT_EQ(Skat.computeFpgaCount(), 96);
  EXPECT_NEAR(Skat.boardsPerU(), 4.0, 1e-9);
  EXPECT_NEAR(Skat.peakGflops(), 96 * 870.0, 1.0);
  EXPECT_NEAR(Skat.gflopsPerU(), 96 * 870.0 / 3.0, 1.0);
}

//===----------------------------------------------------------------------===//
// Monitoring
//===----------------------------------------------------------------------===//

TEST(MonitoringTest, ThresholdSensorDirections) {
  ThresholdSensor Temp("t", 35.0, 45.0, /*HighIsBad=*/true);
  EXPECT_EQ(Temp.classify(30.0), AlarmLevel::Normal);
  EXPECT_EQ(Temp.classify(40.0), AlarmLevel::Warning);
  EXPECT_EQ(Temp.classify(50.0), AlarmLevel::Critical);

  ThresholdSensor Flow("f", 0.7, 0.3, /*HighIsBad=*/false);
  EXPECT_EQ(Flow.classify(1.0), AlarmLevel::Normal);
  EXPECT_EQ(Flow.classify(0.5), AlarmLevel::Warning);
  EXPECT_EQ(Flow.classify(0.1), AlarmLevel::Critical);
}

TEST(MonitoringTest, ThresholdBoundariesAreClosed) {
  // A reading exactly at a threshold is already in the band that
  // threshold guards, in both directions.
  ThresholdSensor Temp("t", 35.0, 45.0, /*HighIsBad=*/true);
  EXPECT_EQ(Temp.classify(35.0), AlarmLevel::Warning);
  EXPECT_EQ(Temp.classify(45.0), AlarmLevel::Critical);
  EXPECT_EQ(Temp.classify(34.999), AlarmLevel::Normal);
  EXPECT_EQ(Temp.classify(44.999), AlarmLevel::Warning);

  ThresholdSensor Flow("f", 0.7, 0.3, /*HighIsBad=*/false);
  EXPECT_EQ(Flow.classify(0.7), AlarmLevel::Warning);
  EXPECT_EQ(Flow.classify(0.3), AlarmLevel::Critical);
  EXPECT_EQ(Flow.classify(0.701), AlarmLevel::Normal);
  EXPECT_EQ(Flow.classify(0.301), AlarmLevel::Warning);
}

TEST(MonitoringTest, NonFiniteReadingsClassifyCritical) {
  // Fail safe: a NaN or infinite reading is a failed sensor, and a
  // failed protection sensor must trip, not stay silent.
  double NaN = std::numeric_limits<double>::quiet_NaN();
  double Inf = std::numeric_limits<double>::infinity();
  ThresholdSensor Temp("t", 35.0, 45.0, /*HighIsBad=*/true);
  EXPECT_EQ(Temp.classify(NaN), AlarmLevel::Critical);
  EXPECT_EQ(Temp.classify(Inf), AlarmLevel::Critical);
  EXPECT_EQ(Temp.classify(-Inf), AlarmLevel::Critical);
  ThresholdSensor Flow("f", 0.7, 0.3, /*HighIsBad=*/false);
  EXPECT_EQ(Flow.classify(NaN), AlarmLevel::Critical);
}

TEST(MonitoringTest, HealthySkatModuleIsNormal) {
  ComputationalModule Module(core::makeSkatModule());
  auto Report = Module.solveSteadyState(nominal());
  ASSERT_TRUE(Report.hasValue());
  ControlSystem Control;
  MonitoringReport Monitor = Control.evaluate(*Report);
  EXPECT_EQ(Monitor.Worst, AlarmLevel::Normal);
  EXPECT_EQ(Monitor.Action, ControlAction::None);
  EXPECT_EQ(Monitor.Readings.size(), 3u);
}

TEST(MonitoringTest, ActionsEscalate) {
  ControlSystem Control;
  // Warm coolant only: push the pump.
  EXPECT_EQ(Control.evaluateRaw(38.0, 55.0, 2.0e-3).Action,
            ControlAction::RaisePumpSpeed);
  // Warm junction: shed clocks.
  EXPECT_EQ(Control.evaluateRaw(30.0, 75.0, 2.0e-3).Action,
            ControlAction::ReduceClock);
  // Critical anything: shutdown.
  EXPECT_EQ(Control.evaluateRaw(50.0, 55.0, 2.0e-3).Action,
            ControlAction::Shutdown);
  EXPECT_EQ(Control.evaluateRaw(30.0, 90.0, 2.0e-3).Action,
            ControlAction::Shutdown);
  // Lost flow: critical.
  EXPECT_EQ(Control.evaluateRaw(30.0, 55.0, 1.0e-4).Action,
            ControlAction::Shutdown);
}

TEST(MonitoringTest, NamesAreStable) {
  EXPECT_STREQ(alarmLevelName(AlarmLevel::Critical), "critical");
  EXPECT_STREQ(controlActionName(ControlAction::RaisePumpSpeed),
               "raise pump speed");
}

//===----------------------------------------------------------------------===//
// Rack
//===----------------------------------------------------------------------===//

TEST(RackTest, SkatRackSolves) {
  Rack TheRack(core::makeSkatRack());
  auto Report = TheRack.solveSteadyState(25.0);
  ASSERT_TRUE(Report.hasValue()) << Report.message();
  EXPECT_EQ(Report->Modules.size(), 12u);
  EXPECT_EQ(Report->LoopFlowsM3PerS.size(), 12u);
  // Reverse-return manifolds keep module flows balanced.
  EXPECT_LT(Report->Balance.ImbalanceFraction, 0.05);
  EXPECT_GT(Report->TotalItPowerW, 100e3);
  EXPECT_GT(Report->Pue, 1.0);
  EXPECT_LT(Report->Pue, 1.5);
}

TEST(RackTest, ExceedsOnePetaflops) {
  Rack TheRack(core::makeSkatRack());
  // Paper Section 5: "not less than 12 new-generation CMs, with a total
  // performance above 1 PFlops, in a single 47U computer rack".
  EXPECT_GT(TheRack.peakPflops(), 1.0);
  EXPECT_GE(TheRack.maxModulesByHeight(), 12);
}

TEST(RackTest, LoopIsolationKeepsOthersHealthy) {
  Rack TheRack(core::makeSkatRack());
  auto Report = TheRack.solveSteadyState(25.0, /*IsolatedLoop=*/3);
  ASSERT_TRUE(Report.hasValue()) << Report.message();
  // The isolated module reports down; the others stay within limits.
  EXPECT_LT(Report->LoopFlowsM3PerS[3],
            0.05 * Report->Balance.MeanFlowM3PerS);
  for (size_t I = 0; I != Report->Modules.size(); ++I) {
    if (I == 3)
      continue;
    EXPECT_LT(Report->Modules[I].MaxJunctionTempC, 55.0) << "module " << I;
  }
  EXPECT_LT(Report->Balance.ImbalanceFraction, 0.05);
}

TEST(RackTest, IsolationIndexValidated) {
  Rack TheRack(core::makeSkatRack());
  auto Report = TheRack.solveSteadyState(25.0, /*IsolatedLoop=*/99);
  EXPECT_FALSE(Report.hasValue());
}

TEST(RackTest, HotAmbientRaisesChillerPower) {
  Rack TheRack(core::makeSkatRack());
  auto Cool = TheRack.solveSteadyState(20.0);
  auto Hot = TheRack.solveSteadyState(38.0);
  ASSERT_TRUE(Cool.hasValue());
  ASSERT_TRUE(Hot.hasValue());
  EXPECT_GT(Hot->ChillerPowerW, Cool->ChillerPowerW);
  EXPECT_GT(Hot->Pue, Cool->Pue);
}

//===----------------------------------------------------------------------===//
// Off-nominal chiller and PSU edges (the regimes fault scenarios visit)
//===----------------------------------------------------------------------===//

TEST(ChillerTest, FreeCoolingClampsCop) {
  Chiller Plant = Chiller::makeSkatRackChiller();
  // Ambient far below the 18 C supply setpoint: negative lift clamps to
  // the free-cooling COP instead of going Carnot-infinite.
  EXPECT_DOUBLE_EQ(Plant.cop(-20.0), 15.0);
  EXPECT_LE(Plant.cop(5.0), 15.0);
  EXPECT_GT(Plant.electricalPowerW(100e3, -20.0), 0.0);
}

TEST(ChillerTest, CopDegradesMonotonicallyIntoHeatWave) {
  Chiller Plant = Chiller::makeSkatRackChiller();
  double Prev = 1e9;
  for (double AmbientC : {15.0, 25.0, 35.0, 45.0, 55.0}) {
    double Cop = Plant.cop(AmbientC);
    EXPECT_GT(Cop, 0.0) << AmbientC;
    EXPECT_LE(Cop, Prev) << AmbientC;
    Prev = Cop;
  }
  // A heat wave costs real electrical power at fixed duty.
  EXPECT_GT(Plant.electricalPowerW(100e3, 45.0),
            1.2 * Plant.electricalPowerW(100e3, 25.0));
}

TEST(ChillerTest, OverloadFlagsExactlyAboveRating) {
  Chiller Plant("edge", 18.0, 100e3);
  EXPECT_FALSE(Plant.isOverloaded(0.0));
  EXPECT_FALSE(Plant.isOverloaded(100e3));
  EXPECT_TRUE(Plant.isOverloaded(100e3 + 1.0));
}

TEST(ChillerTest, ColderSetpointCostsCop) {
  Chiller Plant = Chiller::makeSkatRackChiller();
  double Nominal = Plant.cop(35.0);
  Plant.setSupplyTempC(8.0);
  EXPECT_LT(Plant.cop(35.0), Nominal);
  EXPECT_DOUBLE_EQ(Plant.supplyTempC(), 8.0);
}

TEST(PowerSupplyTest, ZeroLoadDrawsNothing) {
  PowerSupplyUnit Psu = PowerSupplyUnit::makeSkatImmersionPsu();
  EXPECT_DOUBLE_EQ(Psu.lossW(0.0), 0.0);
  EXPECT_DOUBLE_EQ(Psu.inputPowerW(0.0), 0.0);
  EXPECT_GT(Psu.efficiencyAt(0.0), 0.0); // Curve endpoint, not a div-by-0.
}

TEST(PowerSupplyTest, OverRatedLoadClampsEfficiencyNotLoss) {
  PowerSupplyUnit Psu = PowerSupplyUnit::makeSkatImmersionPsu();
  // Efficiency saturates at the rating...
  EXPECT_DOUBLE_EQ(Psu.efficiencyAt(5000.0), Psu.efficiencyAt(4000.0));
  // ...but losses keep scaling with the actual load.
  EXPECT_GT(Psu.lossW(5000.0), Psu.lossW(4000.0));
  EXPECT_GT(Psu.inputPowerW(5000.0), 5000.0);
}

TEST(PowerSupplyTest, LightLoadRegimeIsLeastEfficient) {
  // The faults engine's PSU-droop heat model leans on the curve being
  // worst at light load; pin that shape down.
  PowerSupplyUnit Psu = PowerSupplyUnit::makeSkatImmersionPsu();
  EXPECT_LT(Psu.efficiencyAt(50.0), Psu.efficiencyAt(1000.0));
  EXPECT_LT(Psu.efficiencyAt(1000.0), Psu.efficiencyAt(3000.0));
}
