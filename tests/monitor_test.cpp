//===- tests/monitor_test.cpp - Unit tests for rcs_monitor ------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "monitor/Alarm.h"
#include "monitor/Exposition.h"
#include "monitor/FlightRecorder.h"
#include "monitor/Supervisor.h"

#include "core/Designs.h"
#include "sim/Transient.h"
#include "system/Monitoring.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

using namespace rcs;
using namespace rcs::monitor;
using rcsystem::AlarmLevel;
using rcsystem::ControlAction;

namespace {

/// A temperature-style alarm: warn at 35, critical at 45, 2 K of
/// hysteresis, two-sample debounce, latching.
AlarmConfig tempAlarm() {
  AlarmConfig Config;
  Config.WarnThreshold = 35.0;
  Config.CriticalThreshold = 45.0;
  Config.HighIsBad = true;
  Config.Hysteresis = 2.0;
  Config.DebounceSamples = 2;
  Config.LatchCritical = true;
  return Config;
}

std::string readWholeFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  EXPECT_NE(File, nullptr) << Path;
  if (!File)
    return "";
  std::string Text;
  char Buffer[4096];
  size_t Got;
  while ((Got = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Text.append(Buffer, Got);
  std::fclose(File);
  return Text;
}

} // namespace

//===----------------------------------------------------------------------===//
// Alarm state machine
//===----------------------------------------------------------------------===//

TEST(AlarmTest, DebounceSuppressesSingleSampleSpikes) {
  telemetry::Registry Reg;
  AlarmStateMachine Alarm("t", tempAlarm(), &Reg);
  EXPECT_EQ(Alarm.update(0.0, 30.0), AlarmState::Normal);
  // One excursion sample does not assert...
  EXPECT_EQ(Alarm.update(1.0, 40.0), AlarmState::Normal);
  EXPECT_EQ(Alarm.update(2.0, 30.0), AlarmState::Normal);
  // ...but two consecutive ones do.
  EXPECT_EQ(Alarm.update(3.0, 40.0), AlarmState::Normal);
  EXPECT_EQ(Alarm.update(4.0, 40.0), AlarmState::Warning);
  EXPECT_EQ(Alarm.transitions().size(), 1u);
  EXPECT_EQ(Alarm.transitions()[0].From, AlarmState::Normal);
  EXPECT_EQ(Alarm.transitions()[0].To, AlarmState::Warning);
  EXPECT_EQ(Alarm.transitions()[0].TimeS, 4.0);
}

TEST(AlarmTest, HysteresisHoldsUntilRearmed) {
  telemetry::Registry Reg;
  AlarmStateMachine Alarm("t", tempAlarm(), &Reg);
  Alarm.update(0.0, 40.0);
  ASSERT_EQ(Alarm.update(1.0, 40.0), AlarmState::Warning);
  // Just below the warning threshold but inside the 2 K hysteresis band:
  // the alarm holds.
  EXPECT_EQ(Alarm.update(2.0, 34.0), AlarmState::Warning);
  EXPECT_EQ(Alarm.update(3.0, 33.5), AlarmState::Warning);
  // Past warn - hysteresis: clears.
  EXPECT_EQ(Alarm.update(4.0, 32.0), AlarmState::Normal);
  // A fresh excursion re-arms and asserts after the debounce again.
  Alarm.update(5.0, 40.0);
  EXPECT_EQ(Alarm.update(6.0, 40.0), AlarmState::Warning);
}

TEST(AlarmTest, CriticalLatchesUntilAcknowledged) {
  telemetry::Registry Reg;
  AlarmStateMachine Alarm("t", tempAlarm(), &Reg);
  Alarm.update(0.0, 50.0);
  ASSERT_EQ(Alarm.update(1.0, 50.0), AlarmState::Critical);
  EXPECT_EQ(Alarm.level(), AlarmLevel::Critical);
  // The process returns to normal, but the indication latches.
  EXPECT_EQ(Alarm.update(2.0, 20.0), AlarmState::Latched);
  EXPECT_EQ(Alarm.level(), AlarmLevel::Critical)
      << "a latched alarm still displays critical";
  // Acknowledged with the process healthy: drops to normal.
  EXPECT_TRUE(Alarm.acknowledge(3.0));
  EXPECT_EQ(Alarm.state(), AlarmState::Normal);
  EXPECT_EQ(Reg.counter("monitor.alarm.latches").value(), 1u);
}

TEST(AlarmTest, AcknowledgeDuringExcursionTracksProcess) {
  telemetry::Registry Reg;
  AlarmStateMachine Alarm("t", tempAlarm(), &Reg);
  Alarm.update(0.0, 50.0);
  ASSERT_EQ(Alarm.update(1.0, 50.0), AlarmState::Critical);
  // Acknowledged while still critical: the indication stays critical.
  EXPECT_TRUE(Alarm.acknowledge(2.0));
  EXPECT_EQ(Alarm.state(), AlarmState::CriticalAcked);
  EXPECT_EQ(Alarm.level(), AlarmLevel::Critical);
  // Once acknowledged there is nothing to latch: clearing the process
  // clears the alarm.
  EXPECT_EQ(Alarm.update(3.0, 20.0), AlarmState::Normal);
}

TEST(AlarmTest, LatchedReassertsWithoutDebounce) {
  telemetry::Registry Reg;
  AlarmStateMachine Alarm("t", tempAlarm(), &Reg);
  Alarm.update(0.0, 50.0);
  Alarm.update(1.0, 50.0);
  ASSERT_EQ(Alarm.update(2.0, 20.0), AlarmState::Latched);
  // The same excursion resuming is not chatter: one critical sample
  // re-asserts immediately.
  EXPECT_EQ(Alarm.update(3.0, 50.0), AlarmState::Critical);
}

TEST(AlarmTest, UnlatchedCriticalClearsDirectly) {
  telemetry::Registry Reg;
  AlarmConfig Config = tempAlarm();
  Config.LatchCritical = false;
  AlarmStateMachine Alarm("t", Config, &Reg);
  Alarm.update(0.0, 50.0);
  ASSERT_EQ(Alarm.update(1.0, 50.0), AlarmState::Critical);
  EXPECT_EQ(Alarm.update(2.0, 20.0), AlarmState::Normal);
}

TEST(AlarmTest, LowIsBadDirectionWorks) {
  telemetry::Registry Reg;
  AlarmConfig Config;
  Config.WarnThreshold = 0.7;
  Config.CriticalThreshold = 0.3;
  Config.HighIsBad = false;
  Config.Hysteresis = 0.05;
  Config.DebounceSamples = 2;
  AlarmStateMachine Alarm("flow", Config, &Reg);
  Alarm.update(0.0, 0.1);
  ASSERT_EQ(Alarm.update(1.0, 0.1), AlarmState::Critical);
  // Inside the hysteresis band above critical: holds.
  EXPECT_EQ(Alarm.level(), AlarmLevel::Critical);
  Alarm.acknowledge(1.5);
  EXPECT_EQ(Alarm.update(2.0, 0.32), AlarmState::CriticalAcked);
  // Past critical + hysteresis: drops to the warning band.
  EXPECT_EQ(Alarm.update(3.0, 0.5), AlarmState::Warning);
  EXPECT_EQ(Alarm.update(4.0, 1.0), AlarmState::Normal);
}

TEST(AlarmTest, NonFiniteReadingFailsSafe) {
  telemetry::Registry Reg;
  AlarmStateMachine Alarm("t", tempAlarm(), &Reg);
  double NaN = std::numeric_limits<double>::quiet_NaN();
  Alarm.update(0.0, NaN);
  EXPECT_EQ(Alarm.update(1.0, NaN), AlarmState::Critical)
      << "a failed sensor must trip, not stay silent";
}

TEST(AlarmTest, TransitionsEmitTelemetry) {
  telemetry::Registry Reg;
  AlarmStateMachine Alarm("oil temperature", tempAlarm(), &Reg);
  Alarm.update(0.0, 50.0);
  Alarm.update(1.0, 50.0);
  Alarm.update(2.0, 20.0);
  EXPECT_EQ(Reg.counter("monitor.alarm.transitions").value(), 2u);
  // The per-alarm value histogram records every sample under a
  // slugified name.
  telemetry::MetricsSnapshot Snapshot = Reg.snapshotMetrics();
  bool FoundHistogram = false;
  for (const auto &[Name, H] : Snapshot.Histograms)
    if (Name == "monitor.alarm.oil_temperature.value") {
      FoundHistogram = true;
      EXPECT_EQ(H.Count, 3u);
    }
  EXPECT_TRUE(FoundHistogram);
}

//===----------------------------------------------------------------------===//
// Supervisor
//===----------------------------------------------------------------------===//

TEST(SupervisorTest, ModuleBankMapsToControllerPolicy) {
  telemetry::Registry Reg;
  rcsystem::MonitoringConfig Config;
  SupervisorTuning Tuning;
  Tuning.DebounceSamples = 1; // Immediate for this test.
  Supervisor Super = makeModuleSupervisor(Config, Tuning, &Reg);
  ASSERT_EQ(Super.numSensors(), 3u);

  // Healthy: no action.
  double Healthy[3] = {30.0, 55.0, 2.0e-3};
  EXPECT_EQ(recommendModuleAction(Super.update(0.0, Healthy, 3)),
            ControlAction::None);
  // Warm junction: shed clocks.
  double WarmChip[3] = {30.0, 75.0, 2.0e-3};
  EXPECT_EQ(recommendModuleAction(Super.update(1.0, WarmChip, 3)),
            ControlAction::ReduceClock);
  // Warm coolant on top: the junction warning still wins the clock shed.
  double WarmBoth[3] = {38.0, 75.0, 2.0e-3};
  EXPECT_EQ(recommendModuleAction(Super.update(2.0, WarmBoth, 3)),
            ControlAction::ReduceClock);
  // Critical flow: shutdown.
  double LostFlow[3] = {30.0, 55.0, 1.0e-4};
  EXPECT_EQ(recommendModuleAction(Super.update(3.0, LostFlow, 3)),
            ControlAction::Shutdown);
}

TEST(SupervisorTest, DebounceDelaysEscalationBySweeps) {
  telemetry::Registry Reg;
  rcsystem::MonitoringConfig Config;
  SupervisorTuning Tuning;
  Tuning.DebounceSamples = 2;
  Supervisor Super = makeModuleSupervisor(Config, Tuning, &Reg);
  double LostFlow[3] = {30.0, 55.0, 1.0e-4};
  EXPECT_EQ(Super.update(0.0, LostFlow, 3).Worst, AlarmLevel::Normal);
  EXPECT_EQ(Super.update(1.0, LostFlow, 3).Worst, AlarmLevel::Critical);
}

TEST(SupervisorTest, LatchedAlarmKeepsWorstCritical) {
  telemetry::Registry Reg;
  rcsystem::MonitoringConfig Config;
  SupervisorTuning Tuning;
  Tuning.DebounceSamples = 1;
  Supervisor Super = makeModuleSupervisor(Config, Tuning, &Reg);
  double LostFlow[3] = {30.0, 55.0, 1.0e-4};
  Super.update(0.0, LostFlow, 3);
  double Healthy[3] = {30.0, 55.0, 2.0e-3};
  SupervisoryReport Report = Super.update(1.0, Healthy, 3);
  EXPECT_TRUE(Report.anyLatched());
  EXPECT_EQ(Report.Worst, AlarmLevel::Critical)
      << "an unacknowledged trip must stay visible";
  EXPECT_TRUE(Super.acknowledgeAll(2.0));
  EXPECT_EQ(Super.update(3.0, Healthy, 3).Worst, AlarmLevel::Normal);
}

TEST(SupervisorTest, AllTransitionsMergeInTimeOrder) {
  telemetry::Registry Reg;
  rcsystem::MonitoringConfig Config;
  SupervisorTuning Tuning;
  Tuning.DebounceSamples = 1;
  Supervisor Super = makeModuleSupervisor(Config, Tuning, &Reg);
  double WarmOil[3] = {38.0, 55.0, 2.0e-3};
  double WarmBoth[3] = {38.0, 75.0, 2.0e-3};
  double Healthy[3] = {30.0, 55.0, 2.0e-3};
  Super.update(0.0, WarmOil, 3);
  Super.update(1.0, WarmBoth, 3);
  Super.update(2.0, Healthy, 3);
  std::vector<AlarmTransition> Log = Super.allTransitions();
  ASSERT_GE(Log.size(), 4u);
  for (size_t I = 1; I != Log.size(); ++I)
    EXPECT_LE(Log[I - 1].TimeS, Log[I].TimeS);
}

//===----------------------------------------------------------------------===//
// Flight recorder
//===----------------------------------------------------------------------===//

TEST(FlightRecorderTest, WraparoundKeepsNewestFrames) {
  telemetry::Registry Reg;
  FlightRecorderConfig Config;
  Config.CapacityFrames = 4;
  FlightRecorder Recorder({"a", "b"}, Config, &Reg);
  for (int I = 0; I != 10; ++I) {
    double Values[2] = {double(I), double(I) * 10.0};
    Recorder.record(double(I), Values, 2);
  }
  EXPECT_EQ(Recorder.framesHeld(), 4u);
  EXPECT_EQ(Recorder.framesRecorded(), 10u);
  std::vector<FlightRecorder::Frame> Window = Recorder.window();
  ASSERT_EQ(Window.size(), 4u);
  // Oldest first: frames 6..9 survive.
  EXPECT_EQ(Window.front().TimeS, 6.0);
  EXPECT_EQ(Window.back().TimeS, 9.0);
  EXPECT_EQ(Window.back().Values[1], 90.0);
}

TEST(FlightRecorderTest, DumpWindowBracketsTrigger) {
  telemetry::Registry Reg;
  FlightRecorderConfig Config;
  Config.CapacityFrames = 100;
  Config.PostTriggerFrames = 5;
  Config.DumpPath = ::testing::TempDir() + "monitor_test_dump.jsonl";
  FlightRecorder Recorder({"x"}, Config, &Reg);
  double Time = 0.0;
  for (; Time < 50.0; Time += 1.0) {
    Recorder.record(Time, &Time, 1);
  }
  EXPECT_TRUE(Recorder.trigger("test trip", Time));
  EXPECT_FALSE(Recorder.dumped()) << "dump waits for the post-trip tail";
  for (int I = 0; I != 5; ++I, Time += 1.0)
    Recorder.record(Time, &Time, 1);
  ASSERT_TRUE(Recorder.dumped());
  ASSERT_TRUE(Recorder.lastDumpStatus().isOk())
      << Recorder.lastDumpStatus().message();

  std::string Dump = readWholeFile(Config.DumpPath);
  EXPECT_NE(Dump.find("\"kind\": \"flight_recorder_header\""),
            std::string::npos);
  EXPECT_NE(Dump.find("\"reason\": \"test trip\""), std::string::npos);
  EXPECT_NE(Dump.find("\"trigger_t_s\": 50"), std::string::npos);
  // Window = 50 pre-trip frames + 5 tail frames.
  std::vector<FlightRecorder::Frame> Window = Recorder.window();
  ASSERT_EQ(Window.size(), 55u);
  EXPECT_LE(Window.front().TimeS, 50.0);
  EXPECT_GE(Window.back().TimeS, 50.0);
  std::remove(Config.DumpPath.c_str());
}

TEST(FlightRecorderTest, FinalizeFlushesShortTail) {
  telemetry::Registry Reg;
  FlightRecorderConfig Config;
  Config.CapacityFrames = 16;
  Config.PostTriggerFrames = 100; // Never reached.
  Config.DumpPath = ::testing::TempDir() + "monitor_test_shorttail.jsonl";
  FlightRecorder Recorder({"x"}, Config, &Reg);
  double Value = 1.0;
  Recorder.record(0.0, &Value, 1);
  Recorder.trigger("end of run", 0.0);
  Recorder.record(1.0, &Value, 1);
  EXPECT_FALSE(Recorder.dumped());
  EXPECT_TRUE(Recorder.finalize().isOk());
  EXPECT_TRUE(Recorder.dumped());
  std::string Dump = readWholeFile(Config.DumpPath);
  EXPECT_NE(Dump.find("\"frames\": 2"), std::string::npos);
  std::remove(Config.DumpPath.c_str());
}

TEST(FlightRecorderTest, OnlyFirstTriggerArms) {
  telemetry::Registry Reg;
  FlightRecorderConfig Config;
  Config.CapacityFrames = 8;
  FlightRecorder Recorder({"x"}, Config, &Reg);
  EXPECT_TRUE(Recorder.trigger("first", 1.0));
  EXPECT_FALSE(Recorder.trigger("second", 2.0));
  EXPECT_EQ(Reg.counter("monitor.flight.ignored_triggers").value(), 1u);
}

TEST(FlightRecorderTest, TriggerWithoutPathIsAnError) {
  telemetry::Registry Reg;
  FlightRecorderConfig Config;
  Config.CapacityFrames = 8;
  Config.PostTriggerFrames = 0;
  FlightRecorder Recorder({"x"}, Config, &Reg);
  double Value = 1.0;
  Recorder.record(0.0, &Value, 1);
  Recorder.trigger("no path", 0.0);
  EXPECT_FALSE(Recorder.lastDumpStatus().isOk());
}

//===----------------------------------------------------------------------===//
// Exposition
//===----------------------------------------------------------------------===//

TEST(ExpositionTest, PrometheusNamesFollowTheGrammar) {
  EXPECT_EQ(prometheusName("sim.transient.steps"), "sim_transient_steps");
  EXPECT_EQ(prometheusName("rack water temperature"),
            "rack_water_temperature");
  EXPECT_EQ(prometheusName("9lives"), "_9lives");
  EXPECT_EQ(prometheusName("a:b_c1"), "a:b_c1");
}

TEST(ExpositionTest, RenderPrometheusCoversAllMetricKinds) {
  telemetry::Registry Reg;
  Reg.counter("test.count").add(3);
  Reg.gauge("test.level").set(1.5);
  telemetry::Histogram &H = Reg.histogram("test.latency");
  for (int I = 1; I <= 100; ++I)
    H.record(double(I));
  std::string Text = renderPrometheus(Reg.snapshotMetrics(), "skatsim");
  EXPECT_NE(Text.find("# TYPE skatsim_test_count_total counter"),
            std::string::npos);
  EXPECT_NE(Text.find("skatsim_test_count_total 3"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE skatsim_test_level gauge"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE skatsim_test_latency summary"),
            std::string::npos);
  EXPECT_NE(Text.find("skatsim_test_latency{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(Text.find("skatsim_test_latency{quantile=\"0.95\"}"),
            std::string::npos);
  EXPECT_NE(Text.find("skatsim_test_latency{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(Text.find("skatsim_test_latency_count 100"),
            std::string::npos);
}

TEST(ExpositionTest, SnapshotLineCarriesQuantiles) {
  telemetry::Registry Reg;
  telemetry::Histogram &H = Reg.histogram("test.latency");
  for (int I = 1; I <= 10; ++I)
    H.record(double(I));
  std::string Line = renderSnapshotLine(Reg.snapshotMetrics(), 42.0);
  EXPECT_EQ(Line.rfind("{\"t_s\": 42", 0), 0u);
  EXPECT_NE(Line.find("\"p50\": "), std::string::npos);
  EXPECT_NE(Line.find("\"p95\": "), std::string::npos);
  EXPECT_NE(Line.find("\"p99\": "), std::string::npos);
  EXPECT_EQ(Line.find('\n'), std::string::npos);
}

TEST(ExpositionTest, SnapshotWriterGatesOnSimTime) {
  telemetry::Registry Reg;
  Reg.counter("test.count").add();
  std::string Path = ::testing::TempDir() + "monitor_test_snapshots.jsonl";
  {
    SnapshotWriter Writer(Path, 10.0, &Reg);
    ASSERT_TRUE(Writer.isOpen());
    EXPECT_TRUE(Writer.maybeSample(0.0).isOk());  // First always writes.
    EXPECT_TRUE(Writer.maybeSample(5.0).isOk());  // Inside the period.
    EXPECT_TRUE(Writer.maybeSample(12.0).isOk()); // Past it.
    EXPECT_EQ(Writer.numSnapshots(), 2u);
    EXPECT_TRUE(Writer.close().isOk());
  }
  std::string Text = readWholeFile(Path);
  EXPECT_NE(Text.find("{\"t_s\": 0"), std::string::npos);
  EXPECT_NE(Text.find("{\"t_s\": 12"), std::string::npos);
  EXPECT_EQ(Text.find("{\"t_s\": 5"), std::string::npos);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Simulator integration
//===----------------------------------------------------------------------===//

TEST(MonitorSimTest, PumpFailureLatchesAndDumps) {
  sim::TransientSimulator Simulator(core::makeSkatModule(),
                                    core::makeNominalConditions());
  // Pump dies after warm-up and is repaired half an hour later, so the
  // flow alarm runs the whole lifecycle: assert, latch, acknowledge.
  Simulator.schedulePumpSpeed(1800.0, 0.0);
  Simulator.schedulePumpSpeed(3600.0, 1.0);

  FlightRecorderConfig Config;
  Config.CapacityFrames = 600;
  Config.PostTriggerFrames = 30;
  Config.DumpPath = ::testing::TempDir() + "monitor_test_sim_dump.jsonl";
  FlightRecorder Recorder(sim::TransientSimulator::flightChannels(),
                          Config);
  Simulator.attachFlightRecorder(&Recorder);

  auto Trace = Simulator.run(2.0 * 3600.0);
  ASSERT_TRUE(Trace.hasValue()) << Trace.message();

  // The lost flow asserted a critical alarm and latched it on repair.
  std::vector<AlarmTransition> Log =
      Simulator.supervisor().allTransitions();
  bool SawCritical = false, SawLatch = false;
  for (const AlarmTransition &T : Log) {
    SawCritical |= T.To == AlarmState::Critical;
    SawLatch |= T.From == AlarmState::Critical &&
                T.To == AlarmState::Latched;
  }
  EXPECT_TRUE(SawCritical);
  EXPECT_TRUE(SawLatch);

  // The critical alarm triggered the recorder, and the dumped window
  // brackets the trip.
  ASSERT_TRUE(Recorder.triggered());
  ASSERT_TRUE(Recorder.dumped());
  ASSERT_TRUE(Recorder.lastDumpStatus().isOk())
      << Recorder.lastDumpStatus().message();
  double TripTime = 0.0;
  for (const AlarmTransition &T : Log)
    if (T.To == AlarmState::Critical) {
      TripTime = T.TimeS;
      break;
    }
  std::string Dump = readWholeFile(Config.DumpPath);
  double FirstFrameTime = 0.0, LastFrameTime = 0.0;
  bool SawFrame = false;
  size_t Pos = Dump.find("\"kind\": \"frame\"");
  while (Pos != std::string::npos) {
    size_t TimePos = Dump.find("\"t_s\": ", Pos);
    ASSERT_NE(TimePos, std::string::npos);
    double Time = std::strtod(Dump.c_str() + TimePos + 7, nullptr);
    if (!SawFrame)
      FirstFrameTime = Time;
    SawFrame = true;
    LastFrameTime = Time;
    Pos = Dump.find("\"kind\": \"frame\"", TimePos);
  }
  ASSERT_TRUE(SawFrame);
  EXPECT_LE(FirstFrameTime, TripTime);
  EXPECT_GE(LastFrameTime, TripTime);
  EXPECT_GT(LastFrameTime, FirstFrameTime);

  // Acknowledging drops the latched annunciator back to normal.
  EXPECT_TRUE(Simulator.supervisor().acknowledgeAll(2.0 * 3600.0));
  std::remove(Config.DumpPath.c_str());
}
