//===- tests/faults_test.cpp - Fault-injection engine tests ---------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "faults/Engine.h"
#include "faults/FaultModel.h"
#include "faults/Injector.h"
#include "faults/Scenario.h"
#include "faults/Sweep.h"
#include "faults/Trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

using namespace rcs;
using namespace rcs::faults;

//===----------------------------------------------------------------------===//
// Fault models
//===----------------------------------------------------------------------===//

TEST(FaultModelTest, KindNamesRoundTrip) {
  for (FaultKind Kind :
       {FaultKind::PumpDegradation, FaultKind::PumpFailure,
        FaultKind::HxFouling, FaultKind::ValveBlockage,
        FaultKind::CoolantLoss, FaultKind::ChillerDerate,
        FaultKind::PsuEfficiencyDroop, FaultKind::SensorDrift,
        FaultKind::SensorStuck, FaultKind::SensorDropout,
        FaultKind::SensorSpike}) {
    auto Parsed = faultKindByName(faultKindName(Kind));
    ASSERT_TRUE(Parsed.hasValue()) << faultKindName(Kind);
    EXPECT_EQ(*Parsed, Kind);
  }
  EXPECT_FALSE(faultKindByName("melted_everything").hasValue());
}

TEST(FaultModelTest, SeverityWindowAndRamp) {
  FaultSpec Spec;
  Spec.StartTimeS = 100.0;
  Spec.DurationS = 200.0;
  Spec.SeverityFraction = 0.8;
  Spec.RampS = 50.0;
  EXPECT_DOUBLE_EQ(severityAt(Spec, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(severityAt(Spec, 99.9), 0.0);
  EXPECT_DOUBLE_EQ(severityAt(Spec, 125.0), 0.4); // Half-way up the ramp.
  EXPECT_DOUBLE_EQ(severityAt(Spec, 150.0), 0.8);
  EXPECT_DOUBLE_EQ(severityAt(Spec, 299.9), 0.8);
  EXPECT_DOUBLE_EQ(severityAt(Spec, 300.0), 0.0); // Repaired.
}

TEST(FaultModelTest, AllOrNothingKindsIgnoreSeverity) {
  FaultSpec Spec;
  Spec.Kind = FaultKind::PumpFailure;
  Spec.SeverityFraction = 0.1;
  EXPECT_DOUBLE_EQ(severityAt(Spec, 10.0), 1.0);
}

TEST(FaultModelTest, PlantFaultsComposeMultiplicatively) {
  sim::PlantEffects Effects;
  FaultSpec Pump;
  Pump.Kind = FaultKind::PumpDegradation;
  applyPlantFault(Pump, 0.5, Effects);
  applyPlantFault(Pump, 0.5, Effects);
  EXPECT_DOUBLE_EQ(Effects.PumpSpeedFactor, 0.25);

  FaultSpec Psu;
  Psu.Kind = FaultKind::PsuEfficiencyDroop;
  Psu.ExtraHeatW = 500.0;
  applyPlantFault(Psu, 0.4, Effects);
  EXPECT_DOUBLE_EQ(Effects.ExtraHeatW, 200.0);

  // Sensor kinds never touch the plant.
  FaultSpec Drift;
  Drift.Kind = FaultKind::SensorDrift;
  sim::PlantEffects Clean;
  applyPlantFault(Drift, 1.0, Clean);
  EXPECT_DOUBLE_EQ(Clean.PumpSpeedFactor, 1.0);
  EXPECT_DOUBLE_EQ(Clean.HxUaFactor, 1.0);
}

TEST(FaultModelTest, RackFaultsTargetTheirModule) {
  sim::RackPlantEffects Effects;
  Effects.ModulePumpFactor.assign(4, 1.0);
  Effects.ModuleUaFactor.assign(4, 1.0);
  Effects.ModuleExtraHeatW.assign(4, 0.0);
  FaultSpec Fouling;
  Fouling.Kind = FaultKind::HxFouling;
  Fouling.Target = 2;
  applyRackPlantFault(Fouling, 0.6, Effects);
  EXPECT_DOUBLE_EQ(Effects.ModuleUaFactor[2], 0.4);
  EXPECT_DOUBLE_EQ(Effects.ModuleUaFactor[0], 1.0);

  FaultSpec Derate;
  Derate.Kind = FaultKind::ChillerDerate;
  applyRackPlantFault(Derate, 0.3, Effects);
  EXPECT_DOUBLE_EQ(Effects.ChillerCapacityFactor, 0.7);
}

TEST(FaultModelTest, PsuDroopHeatIsPositiveAndMonotonic) {
  double Small = psuDroopExtraHeatW(4000.0, 0.94, 0.02);
  double Large = psuDroopExtraHeatW(4000.0, 0.94, 0.08);
  EXPECT_GT(Small, 0.0);
  EXPECT_GT(Large, Small);
  EXPECT_DOUBLE_EQ(psuDroopExtraHeatW(4000.0, 0.94, 0.0), 0.0);
}

TEST(FaultModelTest, HazardScheduleIsDeterministicPerStream) {
  std::vector<HazardSpec> Hazards(1);
  Hazards[0].Kind = FaultKind::PumpFailure;
  Hazards[0].Id = "pump";
  Hazards[0].MttfHours = 2.0;
  Hazards[0].RepairHours = 0.5;
  const double Horizon = 24.0 * 3600.0;

  auto A = sampleFaultSchedule(Hazards, Horizon, 42, 3);
  auto B = sampleFaultSchedule(Hazards, Horizon, 42, 3);
  ASSERT_EQ(A.size(), B.size());
  ASSERT_FALSE(A.empty());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_DOUBLE_EQ(A[I].StartTimeS, B[I].StartTimeS);
    EXPECT_EQ(A[I].Id, B[I].Id);
  }
  EXPECT_TRUE(std::is_sorted(A.begin(), A.end(),
                             [](const FaultSpec &X, const FaultSpec &Y) {
                               return X.StartTimeS < Y.StartTimeS;
                             }));
  // Renewal: the next failure starts after the previous repair window.
  for (size_t I = 1; I != A.size(); ++I)
    EXPECT_GE(A[I].StartTimeS, A[I - 1].StartTimeS + A[I - 1].DurationS);

  // A different stream draws a different schedule.
  auto C = sampleFaultSchedule(Hazards, Horizon, 42, 4);
  bool Different = A.size() != C.size();
  for (size_t I = 0; !Different && I != A.size(); ++I)
    Different = A[I].StartTimeS != C[I].StartTimeS;
  EXPECT_TRUE(Different);
}

//===----------------------------------------------------------------------===//
// Injector
//===----------------------------------------------------------------------===//

TEST(InjectorTest, EmitsInjectAndClearExactlyOnce) {
  FaultSpec Spec;
  Spec.Kind = FaultKind::HxFouling;
  Spec.Id = "hx";
  Spec.StartTimeS = 10.0;
  Spec.DurationS = 20.0;
  Spec.SeverityFraction = 0.5;
  FaultInjector Injector({Spec});
  std::vector<FaultEvent> Events;
  Injector.setEventCallback(
      [&Events](const FaultEvent &Event) { Events.push_back(Event); });

  sim::PlantEffects Effects;
  for (double Time : {0.0, 5.0, 10.0, 15.0, 20.0, 29.0, 30.0, 35.0}) {
    Effects = sim::PlantEffects();
    Injector.plantEffectsAt(Time, Effects);
  }
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_EQ(Events[0].Event, "inject");
  EXPECT_EQ(Events[0].Fault, "hx");
  EXPECT_EQ(Events[0].Detail, "hx_fouling");
  EXPECT_DOUBLE_EQ(Events[0].TimeS, 10.0);
  EXPECT_EQ(Events[1].Event, "clear");
  EXPECT_DOUBLE_EQ(Events[1].TimeS, 30.0);
  EXPECT_EQ(Injector.injectedCount(), 1);
  EXPECT_EQ(Injector.clearedCount(), 1);
  // After repair the plant is healthy again.
  EXPECT_DOUBLE_EQ(Effects.HxUaFactor, 1.0);
}

TEST(InjectorTest, SensorStuckLatchesFirstReading) {
  FaultSpec Spec;
  Spec.Kind = FaultKind::SensorStuck;
  Spec.Id = "tj";
  Spec.Target = 1;
  Spec.StartTimeS = 100.0;
  FaultInjector Injector({Spec});

  double Readings[3] = {30.0, 55.0, 0.01};
  Injector.transformReadings(50.0, Readings, 3);
  EXPECT_DOUBLE_EQ(Readings[1], 55.0); // Not active yet.

  Readings[1] = 61.0;
  Injector.transformReadings(120.0, Readings, 3);
  EXPECT_DOUBLE_EQ(Readings[1], 61.0); // Latches the first corrupted poll.

  Readings[1] = 75.0;
  Injector.transformReadings(200.0, Readings, 3);
  EXPECT_DOUBLE_EQ(Readings[1], 61.0); // Stuck at the latched value.
  EXPECT_DOUBLE_EQ(Readings[0], 30.0); // Other sensors untouched.
}

TEST(InjectorTest, SensorDropoutReadsNaNAndDriftScales) {
  FaultSpec Dropout;
  Dropout.Kind = FaultKind::SensorDropout;
  Dropout.Id = "flow";
  Dropout.Target = 2;
  FaultSpec Drift;
  Drift.Kind = FaultKind::SensorDrift;
  Drift.Id = "oil";
  Drift.Target = 0;
  Drift.SeverityFraction = 0.2;
  FaultInjector Injector({Dropout, Drift});

  double Readings[3] = {40.0, 60.0, 0.01};
  Injector.transformReadings(1.0, Readings, 3);
  EXPECT_TRUE(std::isnan(Readings[2]));
  EXPECT_DOUBLE_EQ(Readings[0], 48.0);

  // Out-of-range targets are ignored rather than corrupting memory.
  FaultSpec Bad;
  Bad.Kind = FaultKind::SensorDrift;
  Bad.Id = "bogus";
  Bad.Target = 7;
  FaultInjector BadInjector({Bad});
  double Two[2] = {1.0, 2.0};
  BadInjector.transformReadings(1.0, Two, 2);
  EXPECT_DOUBLE_EQ(Two[0], 1.0);
  EXPECT_DOUBLE_EQ(Two[1], 2.0);
}

TEST(InjectorTest, SpikePulsesOncePerPeriod) {
  FaultSpec Spec;
  Spec.Kind = FaultKind::SensorSpike;
  Spec.Id = "tj";
  Spec.Target = 0;
  Spec.StartTimeS = 0.0;
  Spec.SeverityFraction = 0.5;
  Spec.PeriodS = 100.0;
  FaultInjector Injector({Spec});

  int Spiked = 0;
  for (double Time = 0.0; Time < 400.0; Time += 25.0) {
    double Reading[1] = {50.0};
    Injector.transformReadings(Time, Reading, 1);
    if (Reading[0] != 50.0) {
      ++Spiked;
      EXPECT_DOUBLE_EQ(Reading[0], 100.0); // 1 + 2 * severity.
    }
  }
  EXPECT_EQ(Spiked, 4); // t = 0, 100, 200, 300.
}

//===----------------------------------------------------------------------===//
// Scenario parsing
//===----------------------------------------------------------------------===//

TEST(ScenarioTest, ParsesFullDocument) {
  auto Parsed = parseScenario(R"({
    "name": "campaign",
    "level": "rack",
    "design": "skat-plus",
    "duration_h": 6.5,
    "seed": 99,
    "policy": {
      "enabled": true,
      "clock_floor": 0.6,
      "shed_step": 0.05,
      "critical_periods_to_shutdown": 3,
      "migrate_load": false,
      "utilization_bound": 0.9
    },
    "faults": [
      {"kind": "hx_fouling", "id": "hx1", "target": 1, "at_h": 1.0,
       "duration_h": 2.0, "severity": 0.7, "ramp_s": 600}
    ],
    "hazards": [
      {"kind": "pump_failure", "id": "pump", "target": 2, "mttf_h": 500,
       "weibull_shape": 1.5, "repair_h": 4, "severity": 1.0}
    ]
  })");
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.message();
  EXPECT_EQ(Parsed->Name, "campaign");
  EXPECT_TRUE(Parsed->RackLevel);
  EXPECT_EQ(Parsed->Design, "skat-plus");
  EXPECT_DOUBLE_EQ(Parsed->DurationS, 6.5 * 3600.0);
  EXPECT_EQ(Parsed->Seed, 99u);
  EXPECT_DOUBLE_EQ(Parsed->Policy.ClockFloorFraction, 0.6);
  EXPECT_EQ(Parsed->Policy.CriticalPeriodsToShutdown, 3);
  EXPECT_FALSE(Parsed->Policy.MigrateLoad);
  ASSERT_EQ(Parsed->Faults.size(), 1u);
  EXPECT_EQ(Parsed->Faults[0].Kind, FaultKind::HxFouling);
  EXPECT_DOUBLE_EQ(Parsed->Faults[0].StartTimeS, 3600.0);
  EXPECT_DOUBLE_EQ(Parsed->Faults[0].DurationS, 7200.0);
  ASSERT_EQ(Parsed->Hazards.size(), 1u);
  EXPECT_DOUBLE_EQ(Parsed->Hazards[0].WeibullShapeFactor, 1.5);
}

TEST(ScenarioTest, RejectsUnknownAndInvalidFields) {
  EXPECT_FALSE(parseScenario(R"({"bogus": 1})").hasValue());
  EXPECT_FALSE(parseScenario(R"({"level": "cluster"})").hasValue());
  EXPECT_FALSE(
      parseScenario(R"({"faults": [{"id": "x"}]})").hasValue());
  EXPECT_FALSE(
      parseScenario(R"({"faults": [{"kind": "warp_core_breach"}]})")
          .hasValue());
  EXPECT_FALSE(
      parseScenario(
          R"({"faults": [{"kind": "hx_fouling", "severity": 1.5}]})")
          .hasValue());
  EXPECT_FALSE(
      parseScenario(R"({"policy": {"shed_rate": 1}})").hasValue());
  EXPECT_FALSE(parseScenario(R"({"duration_h": 0})").hasValue());
  EXPECT_FALSE(parseScenario("not json").hasValue());
}

TEST(ScenarioTest, DefaultsAreSane) {
  auto Parsed = parseScenario(R"({"name": "minimal"})");
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.message();
  EXPECT_FALSE(Parsed->RackLevel);
  EXPECT_EQ(Parsed->Design, "skat");
  EXPECT_TRUE(Parsed->Policy.Enabled);
  EXPECT_TRUE(Parsed->Faults.empty());
}

//===----------------------------------------------------------------------===//
// Closed-loop engine
//===----------------------------------------------------------------------===//

namespace {

/// Index of the first event matching \p Verb (and \p Fault when set);
/// npos when absent.
size_t findEvent(const std::vector<FaultEvent> &Events,
                 const std::string &Verb, const std::string &Fault = "",
                 const std::string &DetailPart = "") {
  for (size_t I = 0; I != Events.size(); ++I) {
    if (Events[I].Event != Verb)
      continue;
    if (!Fault.empty() && Events[I].Fault != Fault)
      continue;
    if (!DetailPart.empty() &&
        Events[I].Detail.find(DetailPart) == std::string::npos)
      continue;
    return I;
  }
  return std::string::npos;
}

} // namespace

TEST(EngineTest, PumpFaultTriggersStagedDegradationSequence) {
  // The acceptance scenario: pump degrades at t = 1 h, the flow alarm
  // debounces to Critical, the policy sheds clock, and the module rides
  // out the rest of the run in a safe degraded state (the shutdown stage
  // is configured far away).
  Scenario S;
  S.Name = "e2e-pump";
  S.DurationS = 3.0 * 3600.0;
  S.Policy.CriticalPeriodsToShutdown = 1000;
  FaultSpec Pump;
  Pump.Kind = FaultKind::PumpDegradation;
  Pump.Id = "pump0";
  Pump.StartTimeS = 3600.0;
  Pump.SeverityFraction = 0.8;
  Pump.RampS = 300.0;
  S.Faults.push_back(Pump);

  auto Out = runScenario(S);
  ASSERT_TRUE(Out.hasValue()) << Out.message();

  // The full cause-effect chain, in order, from the emitted events.
  size_t Inject = findEvent(Out->Events, "inject", "pump0");
  size_t Critical = findEvent(Out->Events, "alarm", "", "->critical");
  size_t Shed = findEvent(Out->Events, "action", "reduce clock");
  ASSERT_NE(Inject, std::string::npos);
  ASSERT_NE(Critical, std::string::npos);
  ASSERT_NE(Shed, std::string::npos);
  EXPECT_LT(Inject, Critical);
  EXPECT_LT(Critical, Shed);
  EXPECT_LE(Out->Events[Inject].TimeS, Out->Events[Critical].TimeS);
  EXPECT_LE(Out->Events[Critical].TimeS, Out->Events[Shed].TimeS);

  // Degraded but alive: clock shed cost throughput, no shutdown, and the
  // run ended thermally safe.
  EXPECT_EQ(Out->ModulesShutDown, 0);
  EXPECT_GT(Out->AvailabilityFraction, 0.999);
  EXPECT_LT(Out->ThroughputRetainedFraction, 0.999);
  EXPECT_TRUE(Out->SafeDegradedEnd);
  EXPECT_GE(Out->TimeToFirstCriticalS, 3600.0);
  EXPECT_EQ(Out->FaultsInjected, 1);
  // Events are chronological.
  for (size_t I = 1; I != Out->Events.size(); ++I)
    EXPECT_LE(Out->Events[I - 1].TimeS, Out->Events[I].TimeS);
}

TEST(EngineTest, StagedShutdownFiresAfterConfiguredPeriods) {
  Scenario S;
  S.Name = "e2e-shutdown";
  S.DurationS = 2.0 * 3600.0;
  S.Policy.CriticalPeriodsToShutdown = 3;
  FaultSpec Pump;
  Pump.Kind = FaultKind::PumpFailure;
  Pump.Id = "pump0";
  Pump.StartTimeS = 1800.0;
  S.Faults.push_back(Pump);

  auto Out = runScenario(S);
  ASSERT_TRUE(Out.hasValue()) << Out.message();
  size_t Shed = findEvent(Out->Events, "action", "reduce clock");
  size_t Shutdown = findEvent(Out->Events, "action", "shutdown");
  size_t Trip = findEvent(Out->Events, "trip");
  ASSERT_NE(Shed, std::string::npos);
  ASSERT_NE(Shutdown, std::string::npos);
  ASSERT_NE(Trip, std::string::npos);
  EXPECT_LT(Shed, Shutdown);
  EXPECT_EQ(Out->ModulesShutDown, 1);
  EXPECT_LT(Out->AvailabilityFraction, 1.0);
}

TEST(EngineTest, HealthyScenarioStaysClean) {
  Scenario S;
  S.Name = "healthy";
  S.DurationS = 3600.0;
  auto Out = runScenario(S);
  ASSERT_TRUE(Out.hasValue()) << Out.message();
  EXPECT_EQ(Out->FaultsInjected, 0);
  EXPECT_DOUBLE_EQ(Out->AvailabilityFraction, 1.0);
  EXPECT_GT(Out->ThroughputRetainedFraction, 0.999);
  EXPECT_LT(Out->TimeToFirstCriticalS, 0.0);
  EXPECT_TRUE(Out->SafeDegradedEnd);
}

TEST(EngineTest, RejectsAirCooledDesigns) {
  Scenario S;
  S.Design = "rigel2";
  EXPECT_FALSE(runScenario(S).hasValue());
  S.RackLevel = true;
  EXPECT_FALSE(runScenario(S).hasValue());
}

TEST(EngineTest, RackChillerDerateShedsAndMigrates) {
  Scenario S;
  S.Name = "rack-derate";
  S.RackLevel = true;
  S.DurationS = 4.0 * 3600.0;
  S.Policy.CriticalPeriodsToShutdown = 2;
  FaultSpec Derate;
  Derate.Kind = FaultKind::ChillerDerate;
  Derate.Id = "chiller";
  Derate.StartTimeS = 1800.0;
  Derate.SeverityFraction = 0.75;
  S.Faults.push_back(Derate);

  auto Out = runScenario(S);
  ASSERT_TRUE(Out.hasValue()) << Out.message();
  EXPECT_EQ(Out->FaultsInjected, 1);
  // A predominantly derated chiller must cost something: either clock
  // shed or staged shutdowns with migration.
  EXPECT_LT(Out->ThroughputRetainedFraction, 0.999);
  EXPECT_GT(Out->ActionsTaken, 0);
  size_t Shed = findEvent(Out->Events, "action", "reduce_clock");
  size_t Shutdown = findEvent(Out->Events, "action", "shutdown");
  EXPECT_TRUE(Shed != std::string::npos || Shutdown != std::string::npos);
}

//===----------------------------------------------------------------------===//
// Trace
//===----------------------------------------------------------------------===//

TEST(TraceTest, HeaderDeclaresEventsAndLifecycleLinesCarryKind) {
  Scenario S;
  S.Name = "trace-test";
  S.DurationS = 2.0 * 3600.0;
  FaultSpec Fouling;
  Fouling.Kind = FaultKind::HxFouling;
  Fouling.Id = "hx";
  Fouling.StartTimeS = 600.0;
  Fouling.DurationS = 1200.0;
  Fouling.SeverityFraction = 0.4;
  S.Faults.push_back(Fouling);

  auto Out = runScenario(S);
  ASSERT_TRUE(Out.hasValue()) << Out.message();
  std::string Text = faultEventTraceToString(*Out, S.Seed);

  size_t NumLines = 0;
  for (char C : Text)
    NumLines += C == '\n';
  EXPECT_EQ(NumLines, Out->Events.size() + 1);
  EXPECT_NE(Text.find("\"kind\": \"fault_trace_header\""),
            std::string::npos);
  EXPECT_NE(Text.find("\"scenario\": \"trace-test\""), std::string::npos);
  EXPECT_NE(Text.find("\"events\": " + std::to_string(Out->Events.size())),
            std::string::npos);
  EXPECT_NE(Text.find("\"event\": \"inject\""), std::string::npos);
  EXPECT_NE(Text.find("\"fault_kind\": \"hx_fouling\""), std::string::npos);
  EXPECT_NE(Text.find("\"event\": \"clear\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Sweep
//===----------------------------------------------------------------------===//

namespace {

Scenario makeSweepScenario() {
  Scenario S;
  S.Name = "sweep-test";
  S.DurationS = 0.75 * 3600.0;
  S.Seed = 11;
  S.Policy.CriticalPeriodsToShutdown = 2;
  HazardSpec Hazard;
  Hazard.Kind = FaultKind::PumpFailure;
  Hazard.Id = "pump";
  Hazard.MttfHours = 0.8;
  Hazard.RepairHours = 0.25;
  S.Hazards.push_back(Hazard);
  return S;
}

} // namespace

TEST(SweepTest, ReportIsBitIdenticalAcrossThreadCounts) {
  Scenario S = makeSweepScenario();
  SweepConfig Serial;
  Serial.NumReplicates = 6;
  Serial.NumThreads = 1;
  SweepConfig Threaded = Serial;
  Threaded.NumThreads = 4;

  auto A = runSweep(S, Serial);
  auto B = runSweep(S, Threaded);
  ASSERT_TRUE(A.hasValue()) << A.message();
  ASSERT_TRUE(B.hasValue()) << B.message();

  // Bit-identical statistics, not just close: same streams, same slots,
  // same reduction order.
  EXPECT_EQ(A->MeanAvailabilityFraction, B->MeanAvailabilityFraction);
  EXPECT_EQ(A->MeanThroughputRetainedFraction,
            B->MeanThroughputRetainedFraction);
  EXPECT_EQ(A->MeanMaxJunctionC, B->MeanMaxJunctionC);
  EXPECT_EQ(A->CriticalFraction, B->CriticalFraction);
  EXPECT_EQ(A->MttfEstimateHours, B->MttfEstimateHours);
  EXPECT_EQ(A->JunctionHistogramCounts, B->JunctionHistogramCounts);
  ASSERT_EQ(A->Replicates.size(), B->Replicates.size());
  for (size_t R = 0; R != A->Replicates.size(); ++R) {
    EXPECT_EQ(A->Replicates[R].AvailabilityFraction,
              B->Replicates[R].AvailabilityFraction);
    EXPECT_EQ(A->Replicates[R].TimeToFirstCriticalS,
              B->Replicates[R].TimeToFirstCriticalS);
    EXPECT_EQ(A->Replicates[R].MaxJunctionC, B->Replicates[R].MaxJunctionC);
  }
}

TEST(SweepTest, ReplicatesDifferUnderStochasticHazards) {
  Scenario S = makeSweepScenario();
  SweepConfig Config;
  Config.NumReplicates = 6;
  Config.NumThreads = 2;
  auto Report = runSweep(S, Config);
  ASSERT_TRUE(Report.hasValue()) << Report.message();
  ASSERT_EQ(Report->Replicates.size(), 6u);
  EXPECT_EQ(Report->FailedReplicates, 0);
  bool AnyDifference = false;
  for (size_t R = 1; R != Report->Replicates.size(); ++R)
    AnyDifference = AnyDifference ||
                    Report->Replicates[R].TimeToFirstCriticalS !=
                        Report->Replicates[0].TimeToFirstCriticalS ||
                    Report->Replicates[R].FaultsInjected !=
                        Report->Replicates[0].FaultsInjected;
  EXPECT_TRUE(AnyDifference);
  // Histogram totals match the binned samples of all replicates.
  uint64_t Binned = 0;
  for (uint64_t N : Report->JunctionHistogramCounts)
    Binned += N;
  EXPECT_GT(Binned, 0u);
}

TEST(SweepTest, ProgressIsSideChannelOnly) {
  Scenario S = makeSweepScenario();
  SweepConfig Plain;
  Plain.NumReplicates = 6;
  Plain.NumThreads = 4;

  SweepConfig Observed = Plain;
  Observed.ProgressPeriodS = 0.0; // Emit on every replicate.
  std::vector<SweepProgress> Updates;
  Observed.OnProgress = [&Updates](const SweepProgress &P) {
    Updates.push_back(P);
  };

  auto A = runSweep(S, Plain);
  auto B = runSweep(S, Observed);
  ASSERT_TRUE(A.hasValue()) << A.message();
  ASSERT_TRUE(B.hasValue()) << B.message();

  // Observing progress must not perturb the report: bit-identical, same
  // contract as the thread-count test above.
  EXPECT_EQ(A->MeanAvailabilityFraction, B->MeanAvailabilityFraction);
  EXPECT_EQ(A->MeanMaxJunctionC, B->MeanMaxJunctionC);
  EXPECT_EQ(A->CriticalFraction, B->CriticalFraction);
  EXPECT_EQ(A->MttfEstimateHours, B->MttfEstimateHours);
  EXPECT_EQ(A->JunctionHistogramCounts, B->JunctionHistogramCounts);
  ASSERT_EQ(A->Replicates.size(), B->Replicates.size());
  for (size_t R = 0; R != A->Replicates.size(); ++R)
    EXPECT_EQ(A->Replicates[R].AvailabilityFraction,
              B->Replicates[R].AvailabilityFraction);

  // The stream itself: one update per replicate plus the final emit,
  // monotone in Completed, and the last one covers the whole sweep.
  ASSERT_GE(Updates.size(), 2u);
  for (const SweepProgress &P : Updates) {
    EXPECT_EQ(P.Total, 6);
    EXPECT_GE(P.ElapsedS, 0.0);
    EXPECT_GE(P.MeanAvailabilityFraction, 0.0);
    EXPECT_LE(P.MeanAvailabilityFraction, 1.0);
  }
  for (size_t I = 1; I != Updates.size(); ++I)
    EXPECT_GE(Updates[I].Completed, Updates[I - 1].Completed);
  EXPECT_EQ(Updates.back().Completed, 6);
  // The final estimate converges to the report's exact mean (same
  // samples, possibly different summation order — allow rounding).
  EXPECT_NEAR(Updates.back().MeanAvailabilityFraction,
              A->MeanAvailabilityFraction, 1e-12);
}

TEST(SweepTest, RejectsInvalidConfigurations) {
  Scenario S = makeSweepScenario();
  SweepConfig Config;
  Config.NumReplicates = 0;
  EXPECT_FALSE(runSweep(S, Config).hasValue());
  S.Design = "taygeta"; // Air-cooled: the probe run must fail fast.
  Config.NumReplicates = 2;
  EXPECT_FALSE(runSweep(S, Config).hasValue());
}
