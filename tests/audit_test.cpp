//===- tests/audit_test.cpp - Physics audit layer tests -------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The audit layer's core guarantees: seed simulations close their energy
/// balance at machine-epsilon scale, deliberately broken physics trips
/// the budget alarms and the flight recorder, per-replicate audit folds
/// are bit-identical at any sweep thread count, and the `.audit.jsonl`
/// stream is well-formed.
///
//===----------------------------------------------------------------------===//

#include "audit/Audit.h"

#include "core/Designs.h"
#include "faults/Sweep.h"
#include "fluids/Fluid.h"
#include "hydraulics/Manifold.h"
#include "monitor/FlightRecorder.h"
#include "sim/RackTransient.h"
#include "sim/Transient.h"
#include "thermal/Network.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace rcs;
using namespace rcs::audit;

namespace {

std::string readWholeFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return "";
  std::string Text;
  char Buffer[4096];
  size_t Got;
  while ((Got = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Text.append(Buffer, Got);
  std::fclose(File);
  return Text;
}

} // namespace

//===----------------------------------------------------------------------===//
// Closure at machine epsilon on healthy plants
//===----------------------------------------------------------------------===//

TEST(AuditTest, ModuleTransientClosesAtMachineEps) {
  sim::TransientSimulator Simulator(core::makeSkatModule(),
                                    core::makeNominalConditions());
  Simulator.enableAudit();
  auto Trace = Simulator.run(3600.0);
  ASSERT_TRUE(Trace.hasValue()) << Trace.message();

  ASSERT_NE(Simulator.auditor(), nullptr);
  const AuditSummary &Summary = Simulator.auditor()->summary();
  EXPECT_GT(Summary.ThermalSteps, 0u);
  // Implicit-Euler closure is linear-solver round-off: far below the
  // 1e-9 warn budget, or a solver change broke conservation.
  EXPECT_LT(Summary.Energy.MaxFraction, 1e-9);
  EXPECT_LT(Summary.EnergyNode.MaxFraction, 1e-9);
  EXPECT_EQ(Summary.Energy.Violations, 0u);
  EXPECT_TRUE(Summary.withinBudgets(Simulator.auditor()->budgets()));
}

TEST(AuditTest, RackTransientClosesWithinBudgets) {
  sim::RackTransientSimulator Simulator(core::makeSkatRack(), 25.0);
  Simulator.enableAudit();
  auto Trace = Simulator.run(1800.0);
  ASSERT_TRUE(Trace.hasValue()) << Trace.message();

  const AuditSummary &Summary = Simulator.auditor()->summary();
  EXPECT_GT(Summary.ThermalSteps, 0u);
  EXPECT_LT(Summary.Energy.MaxFraction, 1e-9);
  EXPECT_LT(Summary.EnergyNode.MaxFraction, 1e-9);
  // Operator-splitting drift is genuine O(dt) physics, not round-off;
  // it must sit well inside the loose coupling budget.
  EXPECT_GT(Summary.Coupling.Samples, 0u);
  EXPECT_LT(Summary.Coupling.MaxFraction, 0.10);
  EXPECT_TRUE(Summary.withinBudgets(Simulator.auditor()->budgets()));
}

TEST(AuditTest, FlowSolutionClosesAtMachineEps) {
  hydraulics::RackHydraulicsConfig Config;
  hydraulics::RackHydraulics Rack = hydraulics::buildRackPrimaryLoop(Config);
  auto Water = fluids::makeWater();
  double FlowScale = Config.PumpRatedFlowM3PerS;
  auto Solution = Rack.Network.solve(*Water, 18.0, FlowScale);
  ASSERT_TRUE(Solution.hasValue()) << Solution.message();

  PhysicsAuditor Auditor((DriftBudgets()));
  Auditor.recordFlowSolution(Rack.Network, *Solution, *Water, 18.0,
                             FlowScale);
  const AuditSummary &Summary = Auditor.summary();
  EXPECT_EQ(Summary.FlowSolves, 1u);
  EXPECT_LT(Summary.Continuity.MaxFraction, 1e-4);
  EXPECT_LT(Summary.PressureClosure.MaxFraction, 1e-4);
  EXPECT_EQ(Summary.UnconvergedSolves, 0u);
  EXPECT_EQ(Summary.NonMonotoneResiduals, 0u);
  EXPECT_TRUE(Summary.withinBudgets(Auditor.budgets()));
}

//===----------------------------------------------------------------------===//
// Broken physics must be caught
//===----------------------------------------------------------------------===//

TEST(AuditTest, CorruptedStepStateBlowsTheEnergyBudget) {
  thermal::ThermalNetwork Net;
  thermal::NodeId Coolant = Net.addBoundaryNode("coolant", 30.0);
  thermal::NodeId Chip = Net.addNode("chip", 100.0);
  Net.addResistance(Chip, Coolant, 0.15);
  Net.addHeatSource(Chip, 90.0);

  std::vector<double> Before(Net.numNodes(), 30.0);
  std::vector<double> After = Before;
  ASSERT_TRUE(Net.stepTransient(After, 1.0).isOk());

  PhysicsAuditor Auditor((DriftBudgets()));
  EnergyClosure Honest = Auditor.recordThermalStep(Net, Before, After, 1.0);
  EXPECT_LT(Honest.Fraction, 1e-9);

  // A state the solver never produced: energy appears from nowhere.
  std::vector<double> Corrupted = After;
  Corrupted[Chip] += 5.0;
  EnergyClosure Broken =
      Auditor.recordThermalStep(Net, Before, Corrupted, 1.0);
  EXPECT_GT(Broken.Fraction, 1e-3);
  EXPECT_GT(Auditor.summary().Energy.Violations, 0u);
  EXPECT_FALSE(Auditor.summary().withinBudgets(Auditor.budgets()));
}

namespace {

/// A ladder network big enough to route through the sparse LDL^T path
/// (unknowns above the default sparse threshold).
thermal::ThermalNetwork makeSparseLadder(size_t NumInternal) {
  thermal::ThermalNetwork Net;
  thermal::NodeId Coolant = Net.addBoundaryNode("coolant", 30.0);
  thermal::NodeId Prev = Coolant;
  for (size_t I = 0; I != NumInternal; ++I) {
    thermal::NodeId Node = Net.addNode("n" + std::to_string(I),
                                       80.0 + 2.0 * (I % 11));
    Net.addConductance(Prev, Node, 1.5 + 0.05 * (I % 7));
    Net.addHeatSource(Node, 4.0 + 0.25 * (I % 5));
    Prev = Node;
  }
  return Net;
}

} // namespace

TEST(AuditTest, SparseSolvePathClosesAtMachineEps) {
  // Energy-closure coverage of the sparse path from day one: the audit
  // residuals are re-derived from the network, so they check the sparse
  // factorization end-to-end, not just against the dense path.
  thermal::ThermalNetwork Net = makeSparseLadder(256);
  ASSERT_TRUE(Net.sparseSolverEnabled());
  ASSERT_GE(Net.numNodes() - 1, Net.sparseThresholdUnknowns());

  PhysicsAuditor Auditor((DriftBudgets()));
  Auditor.noteSparseSolver(Net.sparseSolverEnabled());
  std::vector<double> State(Net.numNodes(), 30.0);
  for (int Step = 0; Step != 20; ++Step) {
    std::vector<double> Before = State;
    ASSERT_TRUE(Net.stepTransient(State, 5.0).isOk());
    EnergyClosure Closure = Auditor.recordThermalStep(Net, Before, State, 5.0);
    EXPECT_LT(Closure.Fraction, 1e-9) << "step " << Step;
  }
  const AuditSummary &Summary = Auditor.summary();
  EXPECT_EQ(Summary.ThermalSteps, 20u);
  EXPECT_LT(Summary.Energy.MaxFraction, 1e-9);
  EXPECT_LT(Summary.EnergyNode.MaxFraction, 1e-9);
  EXPECT_TRUE(Summary.SparseSolverEnabled);
  EXPECT_TRUE(Summary.withinBudgets(Auditor.budgets()));
}

TEST(AuditTest, SparseSolvePathBreachesATightEnergyBudget) {
  // Same sparse-path plant, but with budgets squeezed below an injected
  // drift: the breach must be caught and attributed.
  thermal::ThermalNetwork Net = makeSparseLadder(256);

  DriftBudgets Tight;
  Tight.EnergyFractionWarn = units::Scalar(1e-13);
  Tight.EnergyFractionCritical = units::Scalar(1e-12);
  PhysicsAuditor Auditor(Tight);
  Auditor.noteSparseSolver(Net.sparseSolverEnabled());

  std::vector<double> State(Net.numNodes(), 30.0);
  // Corrupt one node by a milli-Kelvin each step: tiny against the
  // temperatures, huge against a 1e-12 closure budget. The alarm bank
  // debounces (DebounceSamples), so the excursion must persist across
  // several audited steps before the sensor may latch Critical.
  for (int Step = 0; Step != 4; ++Step) {
    std::vector<double> Before = State;
    ASSERT_TRUE(Net.stepTransient(State, 5.0).isOk());
    std::vector<double> Corrupted = State;
    Corrupted[5] += 1e-3;
    EnergyClosure Broken =
        Auditor.recordThermalStep(Net, Before, Corrupted, 5.0);
    EXPECT_GT(Broken.Fraction, Tight.EnergyFractionCritical.value());
    State = Corrupted;
    (void)Auditor.updateAlarms(5.0 * (Step + 1));
  }
  bool SawCritical = false;
  for (const monitor::AlarmTransition &T :
       Auditor.supervisor().allTransitions())
    SawCritical |= T.Sensor == "audit.energy_fraction" &&
                   T.To == monitor::AlarmState::Critical;
  EXPECT_TRUE(SawCritical);
  EXPECT_GT(Auditor.summary().Energy.Violations, 0u);
  EXPECT_FALSE(Auditor.summary().withinBudgets(Tight));
}

TEST(AuditTest, BudgetBreachTripsAlarmAndFlightRecorder) {
  sim::RackTransientSimulator Simulator(core::makeSkatRack(), 25.0);

  // Squeeze the coupling budget far below the plant's honest O(dt)
  // drift, the deterministic stand-in for broken physics.
  DriftBudgets Tight;
  Tight.CouplingFractionWarn = units::Scalar(1e-6);
  Tight.CouplingFractionCritical = units::Scalar(1e-5);
  Simulator.enableAudit(Tight);

  monitor::FlightRecorderConfig RecConfig;
  RecConfig.DumpPath = ::testing::TempDir() + "audit_breach_dump.jsonl";
  monitor::FlightRecorder Recorder(
      sim::RackTransientSimulator::flightChannels(), RecConfig);
  Simulator.attachFlightRecorder(&Recorder);

  auto Trace = Simulator.run(1800.0);
  ASSERT_TRUE(Trace.hasValue()) << Trace.message();

  // The audit bank saw the coupling sensor go Critical...
  bool SawCritical = false;
  for (const monitor::AlarmTransition &T :
       Simulator.auditor()->supervisor().allTransitions())
    SawCritical |= T.Sensor == "audit.coupling_fraction" &&
                   T.To == monitor::AlarmState::Critical;
  EXPECT_TRUE(SawCritical);
  EXPECT_FALSE(Simulator.auditor()->summary().withinBudgets(Tight));

  // ...and the breach dumped flight-recorder evidence with the audit
  // reason, exactly like a plant trip.
  ASSERT_TRUE(Recorder.triggered());
  ASSERT_TRUE(Recorder.dumped());
  ASSERT_TRUE(Recorder.lastDumpStatus().isOk())
      << Recorder.lastDumpStatus().message();
  std::string Dump = readWholeFile(RecConfig.DumpPath);
  EXPECT_NE(Dump.find("audit budget breach"), std::string::npos);
  std::remove(RecConfig.DumpPath.c_str());
}

//===----------------------------------------------------------------------===//
// Sweep determinism
//===----------------------------------------------------------------------===//

namespace {

faults::Scenario makeAuditSweepScenario() {
  faults::Scenario S;
  S.Name = "audit-sweep-test";
  S.DurationS = 0.5 * 3600.0;
  S.Seed = 77;
  faults::HazardSpec Hazard;
  Hazard.Kind = faults::FaultKind::PumpFailure;
  Hazard.Id = "pump";
  Hazard.MttfHours = 0.6;
  Hazard.RepairHours = 0.2;
  S.Hazards.push_back(Hazard);
  return S;
}

} // namespace

TEST(AuditSweepTest, AuditFoldIsBitIdenticalAcrossThreadCounts) {
  faults::Scenario S = makeAuditSweepScenario();
  faults::SweepConfig Serial;
  Serial.NumReplicates = 6;
  Serial.NumThreads = 1;
  faults::SweepConfig Threaded = Serial;
  Threaded.NumThreads = 4;

  auto A = faults::runSweep(S, Serial);
  auto B = faults::runSweep(S, Threaded);
  ASSERT_TRUE(A.hasValue()) << A.message();
  ASSERT_TRUE(B.hasValue()) << B.message();

  // Exact equality, not approximate: per-instance accumulators reduced
  // in replicate order make the audit fold thread-count independent.
  EXPECT_EQ(A->AuditWorstEnergyFraction, B->AuditWorstEnergyFraction);
  EXPECT_EQ(A->AuditBudgetBreaches, B->AuditBudgetBreaches);
  ASSERT_EQ(A->Replicates.size(), B->Replicates.size());
  for (size_t R = 0; R != A->Replicates.size(); ++R) {
    EXPECT_EQ(A->Replicates[R].AuditMaxEnergyFraction,
              B->Replicates[R].AuditMaxEnergyFraction);
    EXPECT_EQ(A->Replicates[R].AuditViolationCount,
              B->Replicates[R].AuditViolationCount);
    EXPECT_EQ(A->Replicates[R].AuditWithinBudget,
              B->Replicates[R].AuditWithinBudget);
  }
}

TEST(AuditSweepTest, HealthySolverStackAuditsCleanUnderFaults) {
  // Fault injection stresses the plant, not the numerics: even a pump
  // failure replicate must keep conservation at round-off scale.
  auto Report =
      faults::runSweep(makeAuditSweepScenario(), faults::SweepConfig());
  ASSERT_TRUE(Report.hasValue()) << Report.message();
  EXPECT_GT(Report->Replicates.size(), 0u);
  EXPECT_EQ(Report->AuditBudgetBreaches, 0);
  EXPECT_LT(Report->AuditWorstEnergyFraction, 1e-9);
  for (const faults::ReplicateSummary &R : Report->Replicates)
    EXPECT_TRUE(R.AuditWithinBudget);
}

//===----------------------------------------------------------------------===//
// Stream round-trip
//===----------------------------------------------------------------------===//

TEST(AuditTest, StreamEmitsHeaderSamplesAndSummary) {
  std::string Path = ::testing::TempDir() + "audit_stream_test.jsonl";
  sim::TransientSimulator Simulator(core::makeSkatModule(),
                                    core::makeNominalConditions());
  Simulator.enableAudit();
  ASSERT_TRUE(Simulator.auditor()->attachStream(Path).isOk());
  EXPECT_TRUE(Simulator.auditor()->streaming());

  auto Trace = Simulator.run(600.0);
  ASSERT_TRUE(Trace.hasValue()) << Trace.message();
  ASSERT_TRUE(Simulator.auditor()->finishStream().isOk());

  std::string Text = readWholeFile(Path);
  EXPECT_NE(Text.find("\"audit_trace_header\""), std::string::npos);
  EXPECT_NE(Text.find("\"skatsim-audit-v1\""), std::string::npos);
  EXPECT_NE(Text.find("\"audit_sample\""), std::string::npos);
  EXPECT_NE(Text.find("\"audit_summary\""), std::string::npos);
  EXPECT_NE(Text.find("\"within_budget\": true"), std::string::npos);
  std::remove(Path.c_str());
}
