//===- tests/thermal_test.cpp - Unit tests for rcs_thermal ------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "thermal/Convection.h"
#include "thermal/HeatSink.h"
#include "thermal/Interface.h"
#include "thermal/Network.h"

#include "fluids/Fluid.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace rcs;
using namespace rcs::thermal;

//===----------------------------------------------------------------------===//
// ThermalNetwork: steady state
//===----------------------------------------------------------------------===//

TEST(ThermalNetworkTest, SeriesResistanceOhmsLaw) {
  // Junction --R--> ambient with Q injected: dT = Q * R.
  ThermalNetwork Net;
  NodeId Junction = Net.addNode("junction");
  NodeId Ambient = Net.addBoundaryNode("ambient", 25.0);
  Net.addResistance(Junction, Ambient, 0.5);
  Net.addHeatSource(Junction, 40.0);
  auto Temps = Net.solveSteadyState();
  ASSERT_TRUE(Temps.hasValue());
  EXPECT_NEAR((*Temps)[Junction], 25.0 + 40.0 * 0.5, 1e-9);
  EXPECT_NEAR((*Temps)[Ambient], 25.0, 1e-12);
}

TEST(ThermalNetworkTest, TwoStageSeriesChain) {
  ThermalNetwork Net;
  NodeId Die = Net.addNode("die");
  NodeId Case = Net.addNode("case");
  NodeId Ambient = Net.addBoundaryNode("ambient", 20.0);
  Net.addResistance(Die, Case, 0.2);
  Net.addResistance(Case, Ambient, 0.8);
  Net.addHeatSource(Die, 50.0);
  auto Temps = Net.solveSteadyState();
  ASSERT_TRUE(Temps.hasValue());
  EXPECT_NEAR((*Temps)[Case], 20.0 + 50.0 * 0.8, 1e-9);
  EXPECT_NEAR((*Temps)[Die], 20.0 + 50.0 * 1.0, 1e-9);
}

TEST(ThermalNetworkTest, ParallelConductancesAccumulate) {
  ThermalNetwork Net;
  NodeId A = Net.addNode("a");
  NodeId Amb = Net.addBoundaryNode("ambient", 0.0);
  Net.addConductance(A, Amb, 2.0);
  Net.addConductance(A, Amb, 3.0); // Accumulates to 5 W/K.
  Net.addHeatSource(A, 10.0);
  auto Temps = Net.solveSteadyState();
  ASSERT_TRUE(Temps.hasValue());
  EXPECT_NEAR((*Temps)[A], 2.0, 1e-9);
}

TEST(ThermalNetworkTest, SetConductanceReplaces) {
  ThermalNetwork Net;
  NodeId A = Net.addNode("a");
  NodeId Amb = Net.addBoundaryNode("ambient", 0.0);
  Net.addConductance(A, Amb, 2.0);
  Net.setConductance(A, Amb, 4.0);
  Net.addHeatSource(A, 8.0);
  auto Temps = Net.solveSteadyState();
  ASSERT_TRUE(Temps.hasValue());
  EXPECT_NEAR((*Temps)[A], 2.0, 1e-9);
}

TEST(ThermalNetworkTest, EnergyConservationAtBoundary) {
  ThermalNetwork Net;
  NodeId N1 = Net.addNode("n1");
  NodeId N2 = Net.addNode("n2");
  NodeId Amb = Net.addBoundaryNode("ambient", 25.0);
  Net.addResistance(N1, N2, 0.3);
  Net.addResistance(N2, Amb, 0.7);
  Net.addResistance(N1, Amb, 2.0); // A second path.
  Net.addHeatSource(N1, 30.0);
  Net.addHeatSource(N2, 12.0);
  auto Temps = Net.solveSteadyState();
  ASSERT_TRUE(Temps.hasValue());
  // All injected heat leaves through the boundary.
  EXPECT_NEAR(Net.boundaryHeatFlowW(Amb, *Temps), 42.0, 1e-8);
  EXPECT_LT(Net.steadyStateResidualW(*Temps), 1e-8);
}

TEST(ThermalNetworkTest, DisconnectedNodeFails) {
  ThermalNetwork Net;
  Net.addNode("orphan");
  Net.addBoundaryNode("ambient", 25.0);
  auto Temps = Net.solveSteadyState();
  EXPECT_FALSE(Temps.hasValue());
  EXPECT_NE(Temps.message().find("singular"), std::string::npos);
}

TEST(ThermalNetworkTest, MultipleBoundariesSplitHeat) {
  // One node between two boundaries at different temperatures.
  ThermalNetwork Net;
  NodeId Mid = Net.addNode("mid");
  NodeId Cold = Net.addBoundaryNode("cold", 0.0);
  NodeId Hot = Net.addBoundaryNode("hot", 100.0);
  Net.addConductance(Mid, Cold, 1.0);
  Net.addConductance(Mid, Hot, 1.0);
  auto Temps = Net.solveSteadyState();
  ASSERT_TRUE(Temps.hasValue());
  EXPECT_NEAR((*Temps)[Mid], 50.0, 1e-9);
  // Heat flows hot -> mid -> cold: boundary flows are equal and opposite.
  EXPECT_NEAR(Net.boundaryHeatFlowW(Cold, *Temps),
              -Net.boundaryHeatFlowW(Hot, *Temps), 1e-9);
}

TEST(ThermalNetworkTest, BoundaryOnlyNetworkSolves) {
  ThermalNetwork Net;
  NodeId A = Net.addBoundaryNode("a", 10.0);
  NodeId B = Net.addBoundaryNode("b", 20.0);
  Net.addConductance(A, B, 1.0);
  auto Temps = Net.solveSteadyState();
  ASSERT_TRUE(Temps.hasValue());
  EXPECT_DOUBLE_EQ((*Temps)[A], 10.0);
  EXPECT_DOUBLE_EQ((*Temps)[B], 20.0);
}

TEST(ThermalNetworkTest, TotalSourcePower) {
  ThermalNetwork Net;
  NodeId A = Net.addNode("a");
  Net.addBoundaryNode("ambient", 0.0);
  Net.addHeatSource(A, 5.0);
  Net.addHeatSource(A, 7.0);
  EXPECT_DOUBLE_EQ(Net.totalSourcePowerW(), 12.0);
  Net.setHeatSource(A, 3.0);
  EXPECT_DOUBLE_EQ(Net.totalSourcePowerW(), 3.0);
}

//===----------------------------------------------------------------------===//
// ThermalNetwork: transient
//===----------------------------------------------------------------------===//

TEST(ThermalNetworkTest, TransientConvergesToSteadyState) {
  ThermalNetwork Net;
  NodeId Die = Net.addNode("die", /*CapacitanceJPerK=*/50.0);
  NodeId Amb = Net.addBoundaryNode("ambient", 25.0);
  Net.addResistance(Die, Amb, 0.5);
  Net.addHeatSource(Die, 60.0);

  std::vector<double> Temps = {25.0, 25.0};
  for (int Step = 0; Step != 2000; ++Step)
    ASSERT_TRUE(Net.stepTransient(Temps, 1.0).isOk());
  auto Steady = Net.solveSteadyState();
  ASSERT_TRUE(Steady.hasValue());
  EXPECT_NEAR(Temps[Die], (*Steady)[Die], 0.05);
}

TEST(ThermalNetworkTest, TransientTimeConstant) {
  // Single RC: T(t) = Tinf (1 - exp(-t/RC)); at t = RC, 63.2% of the step.
  const double R = 0.5, C = 100.0, Q = 40.0;
  ThermalNetwork Net;
  NodeId Die = Net.addNode("die", C);
  NodeId Amb = Net.addBoundaryNode("ambient", 0.0);
  Net.addResistance(Die, Amb, R);
  Net.addHeatSource(Die, Q);

  std::vector<double> Temps = {0.0, 0.0};
  double Tau = R * C; // 50 s.
  const double Dt = 0.05;
  int Steps = static_cast<int>(Tau / Dt);
  for (int Step = 0; Step != Steps; ++Step)
    ASSERT_TRUE(Net.stepTransient(Temps, Dt).isOk());
  double Expected = Q * R * (1.0 - std::exp(-1.0));
  EXPECT_NEAR(Temps[Die], Expected, 0.05);
}

TEST(ThermalNetworkTest, TransientRequiresCapacitance) {
  ThermalNetwork Net;
  NodeId Die = Net.addNode("die"); // Zero capacitance.
  NodeId Amb = Net.addBoundaryNode("ambient", 25.0);
  Net.addResistance(Die, Amb, 0.5);
  std::vector<double> Temps = {25.0, 25.0};
  Status S = Net.stepTransient(Temps, 1.0);
  EXPECT_FALSE(S.isOk());
  EXPECT_NE(S.message().find("capacitance"), std::string::npos);
}

TEST(ThermalNetworkTest, TransientTracksBoundaryChange) {
  ThermalNetwork Net;
  NodeId Die = Net.addNode("die", 10.0);
  NodeId Amb = Net.addBoundaryNode("ambient", 25.0);
  Net.addResistance(Die, Amb, 1.0);
  std::vector<double> Temps = {25.0, 25.0};
  Net.setBoundaryTemp(Amb, 40.0);
  for (int Step = 0; Step != 600; ++Step)
    ASSERT_TRUE(Net.stepTransient(Temps, 1.0).isOk());
  EXPECT_NEAR(Temps[Die], 40.0, 0.01);
  EXPECT_DOUBLE_EQ(Temps[Amb], 40.0);
}

//===----------------------------------------------------------------------===//
// Convection correlations
//===----------------------------------------------------------------------===//

TEST(ConvectionTest, ReynoldsMatchesDefinition) {
  auto Water = fluids::makeWater();
  double Re = reynolds(*Water, 20.0, 1.0, 0.01);
  double Expected = 1.0 * 0.01 / Water->kinematicViscosityM2PerS(20.0);
  EXPECT_NEAR(Re, Expected, 1e-6);
  EXPECT_GT(Re, 5000.0); // Water at 1 m/s in a 10 mm duct is turbulent.
}

TEST(ConvectionTest, DuctFlowClassification) {
  EXPECT_EQ(classifyDuctFlow(1000.0), FlowRegime::Laminar);
  EXPECT_EQ(classifyDuctFlow(3000.0), FlowRegime::Transitional);
  EXPECT_EQ(classifyDuctFlow(10000.0), FlowRegime::Turbulent);
}

TEST(ConvectionTest, FlatPlateLaminarAnchor) {
  // Nu = 0.664 sqrt(Re) Pr^(1/3): Re = 1e4, Pr = 1 -> Nu = 66.4.
  EXPECT_NEAR(flatPlateNusselt(1e4, 1.0), 66.4, 0.1);
}

TEST(ConvectionTest, FlatPlateContinuousAcrossTransition) {
  double Below = flatPlateNusselt(4.99e5, 0.7);
  double Above = flatPlateNusselt(5.01e5, 0.7);
  // The mixed correlation dips at transition but stays within ~25%.
  EXPECT_LT(std::fabs(Above - Below) / Below, 0.25);
}

TEST(ConvectionTest, DuctLaminarConstant) {
  EXPECT_DOUBLE_EQ(ductNusselt(1000.0, 5.0), 3.66);
}

TEST(ConvectionTest, DuctTransitionBlendIsMonotone) {
  double Previous = ductNusselt(2300.0, 5.0);
  for (double Re = 2400.0; Re <= 4000.0; Re += 100.0) {
    double Current = ductNusselt(Re, 5.0);
    EXPECT_GE(Current, Previous - 1e-9);
    Previous = Current;
  }
}

TEST(ConvectionTest, GnielinskiAnchor) {
  // Classic check: Re = 1e4, Pr = 0.7 gives Nu ~ 31 (Gnielinski).
  double Nu = ductNusselt(1e4, 0.7);
  EXPECT_NEAR(Nu, 31.0, 3.0);
}

TEST(ConvectionTest, CylinderCrossflowIncreasesWithRe) {
  double Previous = 0.0;
  for (double Re : {10.0, 100.0, 1000.0, 10000.0}) {
    double Nu = cylinderCrossflowNusselt(Re, 100.0);
    EXPECT_GT(Nu, Previous);
    Previous = Nu;
  }
}

TEST(ConvectionTest, TubeBankIncreasesWithReAndDepth) {
  double Shallow = tubeBankNusselt(500.0, 100.0, 80.0, 2);
  double Deep = tubeBankNusselt(500.0, 100.0, 80.0, 9);
  EXPECT_GT(Deep, Shallow);
  EXPECT_GT(tubeBankNusselt(2000.0, 100.0, 80.0, 9),
            tubeBankNusselt(200.0, 100.0, 80.0, 9));
}

TEST(ConvectionTest, NaturalConvectionAnchor) {
  // Churchill-Chu at Ra = 1e9, Pr = 0.7: Nu ~ 120 (vertical plate).
  double Nu = verticalPlateNaturalNusselt(1e9, 0.7);
  EXPECT_GT(Nu, 80.0);
  EXPECT_LT(Nu, 200.0);
}

TEST(ConvectionTest, RayleighScalesWithCubeOfLength) {
  auto Air = fluids::makeAir();
  double Ra1 = verticalPlateRayleigh(*Air, 60.0, 25.0, 0.1);
  double Ra2 = verticalPlateRayleigh(*Air, 60.0, 25.0, 0.2);
  EXPECT_NEAR(Ra2 / Ra1, 8.0, 0.01);
}

TEST(ConvectionTest, HtcFromNusselt) {
  auto Air = fluids::makeAir();
  double H = htcFromNusselt(*Air, 25.0, 100.0, 0.05);
  EXPECT_NEAR(H, 100.0 * Air->thermalConductivityWPerMK(25.0) / 0.05, 1e-9);
}

//===----------------------------------------------------------------------===//
// Heat sinks
//===----------------------------------------------------------------------===//

namespace {

PlateFinGeometry typicalAirSink() {
  PlateFinGeometry G;
  G.BaseLengthM = 0.06;
  G.BaseWidthM = 0.05;
  G.BaseThicknessM = 0.005;
  G.FinHeightM = 0.03;
  G.FinThicknessM = 0.0008;
  G.FinCount = 20;
  return G;
}

PinFinGeometry skatOilSink() {
  PinFinGeometry G; // Defaults model the SKAT low-height pin sink.
  return G;
}

} // namespace

TEST(HeatSinkTest, PlateFinResistanceDropsWithVelocity) {
  auto Air = fluids::makeAir();
  PlateFinHeatSink Sink("air-sink", typicalAirSink());
  double RSlow = Sink.thermalResistanceKPerW(*Air, 30.0, 1.0, 55.0);
  double RFast = Sink.thermalResistanceKPerW(*Air, 30.0, 4.0, 55.0);
  EXPECT_LT(RFast, RSlow);
  // Plausible magnitudes for a 60x50 mm sink in air.
  EXPECT_GT(RSlow, 0.1);
  EXPECT_LT(RSlow, 3.0);
}

TEST(HeatSinkTest, PlateFinPressureDropGrowsWithVelocity) {
  auto Air = fluids::makeAir();
  PlateFinHeatSink Sink("air-sink", typicalAirSink());
  auto E1 = Sink.evaluate(*Air, 30.0, 1.0, 55.0);
  auto E2 = Sink.evaluate(*Air, 30.0, 3.0, 55.0);
  EXPECT_GT(E2.PressureDropPa, E1.PressureDropPa);
  EXPECT_GT(E1.PressureDropPa, 0.0);
}

TEST(HeatSinkTest, PinFinInOilReachesImmersionResistance) {
  // The SKAT design point: ~91 W per FPGA, coolant <= 30 C, junction <= 55
  // C. With theta_jc + TIM ~ 0.1 K/W the sink-to-oil resistance must be
  // ~0.15..0.35 K/W at the CM's internal flow (~0.1..0.3 m/s approach).
  auto Oil = fluids::makeEngineeredDielectric();
  PinFinHeatSink Sink("skat-sink", skatOilSink());
  double R = Sink.thermalResistanceKPerW(*Oil, 30.0, 0.20, 50.0);
  EXPECT_GT(R, 0.02);
  EXPECT_LT(R, 0.40);
}

TEST(HeatSinkTest, TurbulatorPinsBeatSmoothPins) {
  auto Oil = fluids::makeMineralOilMd45();
  PinFinGeometry Smooth = skatOilSink();
  Smooth.TurbulatorFactor = 1.0;
  PinFinGeometry Turbulated = skatOilSink();
  PinFinHeatSink SmoothSink("smooth", Smooth);
  PinFinHeatSink TurbSink("turbulated", Turbulated);
  double RSmooth = SmoothSink.thermalResistanceKPerW(*Oil, 30.0, 0.2, 50.0);
  double RTurb = TurbSink.thermalResistanceKPerW(*Oil, 30.0, 0.2, 50.0);
  EXPECT_LT(RTurb, RSmooth);
}

TEST(HeatSinkTest, PinFinGeometryAccessors) {
  PinFinHeatSink Sink("skat-sink", skatOilSink());
  EXPECT_GT(Sink.pinCount(), 50);
  EXPECT_GE(Sink.rowsDeep(), 5);
  EXPECT_NEAR(Sink.footprintAreaM2(), 0.05 * 0.05, 1e-9);
  EXPECT_LT(Sink.heightM(), 0.02); // "Low-height" sink.
}

TEST(HeatSinkTest, OilBeatsAirOnTheSameSink) {
  auto Oil = fluids::makeMineralOilMd45();
  auto Air = fluids::makeAir();
  PinFinHeatSink Sink("sink", skatOilSink());
  double ROil = Sink.thermalResistanceKPerW(*Oil, 30.0, 0.2, 50.0);
  // Give air 10x the velocity and it still loses badly.
  double RAir = Sink.thermalResistanceKPerW(*Air, 30.0, 2.0, 50.0);
  EXPECT_LT(ROil, RAir / 3.0);
}

TEST(HeatSinkTest, MaterialConductivities) {
  EXPECT_GT(sinkMaterialConductivityWPerMK(SinkMaterial::Copper),
            sinkMaterialConductivityWPerMK(SinkMaterial::Aluminum));
}

//===----------------------------------------------------------------------===//
// Thermal interface materials
//===----------------------------------------------------------------------===//

TEST(InterfaceTest, FreshResistanceIsSmall) {
  const double Area = 0.0425 * 0.0425; // UltraScale package.
  auto Tim = ThermalInterface::makeSkatInterface(Area);
  double R = Tim.freshResistanceKPerW();
  EXPECT_GT(R, 0.001);
  EXPECT_LT(R, 0.05);
}

TEST(InterfaceTest, GreaseWashesOutInOil) {
  const double Area = 0.0425 * 0.0425;
  auto Grease = ThermalInterface::makeSiliconeGrease(Area);
  double Fresh = Grease.resistanceKPerW(0.0);
  double After5Kh = Grease.resistanceKPerW(5000.0);
  EXPECT_GT(After5Kh, 1.5 * Fresh);
  EXPECT_TRUE(Grease.isDegraded(5000.0));
  EXPECT_FALSE(Grease.isDegraded(100.0));
}

TEST(InterfaceTest, SkatInterfaceIsImmersionStable) {
  const double Area = 0.0425 * 0.0425;
  auto Tim = ThermalInterface::makeSkatInterface(Area);
  EXPECT_NEAR(Tim.resistanceKPerW(20000.0), Tim.freshResistanceKPerW(),
              1e-12);
  EXPECT_FALSE(Tim.isDegraded(20000.0));
}

TEST(InterfaceTest, WashoutFloorsAtFivePercent) {
  const double Area = 1e-3;
  ThermalInterface Tim("fragile", 4.0, 1e-4, Area, 0.5);
  // After enormous exposure the conductivity floors, resistance saturates.
  double RLate = Tim.resistanceKPerW(1e6);
  double RLater = Tim.resistanceKPerW(2e6);
  EXPECT_NEAR(RLate, RLater, 1e-9);
}

TEST(InterfaceTest, GraphitePadTradeoff) {
  const double Area = 0.0425 * 0.0425;
  auto Pad = ThermalInterface::makeGraphitePad(Area);
  auto Grease = ThermalInterface::makeSiliconeGrease(Area);
  // Pad starts worse than fresh grease but never degrades.
  EXPECT_GT(Pad.freshResistanceKPerW(), Grease.freshResistanceKPerW());
  EXPECT_LT(Pad.resistanceKPerW(10000.0), Grease.resistanceKPerW(10000.0));
}

//===----------------------------------------------------------------------===//
// Spreading resistance (Lee et al.)
//===----------------------------------------------------------------------===//

#include "thermal/Spreading.h"

TEST(SpreadingTest, FullCoverageHasNoConstriction) {
  SpreadingInputs Inputs;
  Inputs.SourceAreaM2 = 2.5e-3;
  Inputs.PlateAreaM2 = 2.5e-3;
  EXPECT_DOUBLE_EQ(constrictionResistanceKPerW(Inputs), 0.0);
  EXPECT_NEAR(spreadingResistanceKPerW(Inputs),
              Inputs.PlateThicknessM /
                  (Inputs.PlateConductivityWPerMK * Inputs.PlateAreaM2),
              1e-12);
}

TEST(SpreadingTest, SmallerSourceConstrictsMore) {
  SpreadingInputs Big;
  Big.SourceAreaM2 = 1.4e-3;
  SpreadingInputs Small = Big;
  Small.SourceAreaM2 = 2.0e-4;
  EXPECT_GT(constrictionResistanceKPerW(Small),
            3.0 * constrictionResistanceKPerW(Big));
}

TEST(SpreadingTest, BetterConductorSpreadsCheaper) {
  SpreadingInputs Copper;
  Copper.PlateConductivityWPerMK = 390.0;
  SpreadingInputs Aluminum = Copper;
  Aluminum.PlateConductivityWPerMK = 205.0;
  EXPECT_LT(constrictionResistanceKPerW(Copper),
            constrictionResistanceKPerW(Aluminum));
}

TEST(SpreadingTest, MagnitudePlausibleForFpgaSink) {
  // A 37 mm lid on a 50 mm copper base: constriction should be a few
  // milli-K/W - real but small next to the convection term.
  SpreadingInputs Inputs;
  Inputs.SourceAreaM2 = 1.4e-3;
  Inputs.PlateAreaM2 = 2.5e-3;
  Inputs.PlateThicknessM = 4e-3;
  Inputs.PlateConductivityWPerMK = 390.0;
  Inputs.EffectiveHtcWPerM2K = 5000.0;
  double Rc = constrictionResistanceKPerW(Inputs);
  EXPECT_GT(Rc, 0.001);
  EXPECT_LT(Rc, 0.03);
}

TEST(SpreadingTest, ThinPlateWithWeakCoolingConstrictsHarder) {
  // With a low Biot number the heat cannot escape under the source and
  // must spread; thin plates make that harder.
  SpreadingInputs Thick;
  Thick.SourceAreaM2 = 4.0e-4;
  Thick.PlateThicknessM = 8e-3;
  SpreadingInputs Thin = Thick;
  Thin.PlateThicknessM = 1.5e-3;
  EXPECT_GT(constrictionResistanceKPerW(Thin),
            constrictionResistanceKPerW(Thick));
}
