//===- tests/sim_test.cpp - Unit tests for rcs_sim and rcs_workload ---------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/MonteCarlo.h"
#include "sim/Transient.h"
#include "workload/Workload.h"

#include "core/Designs.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace rcs;
using namespace rcs::sim;
using namespace rcs::workload;

//===----------------------------------------------------------------------===//
// Workload generation
//===----------------------------------------------------------------------===//

TEST(WorkloadTest, NominalPointsMatchPaperBand) {
  // The paper: production workloads use 85..95% of the hardware.
  for (ApplicationClass App :
       {ApplicationClass::SpinGlassMonteCarlo,
        ApplicationClass::MolecularDynamics,
        ApplicationClass::DenseLinearAlgebra}) {
    fpga::WorkloadPoint Point = nominalPoint(App);
    EXPECT_GE(Point.Utilization, 0.85);
    EXPECT_LE(Point.Utilization, 0.95);
  }
  EXPECT_LT(nominalPoint(ApplicationClass::Idle).Utilization, 0.1);
}

TEST(WorkloadTest, TraceIsDeterministic) {
  TraceConfig Config;
  Config.Seed = 7;
  auto A = generateTrace(Config);
  auto B = generateTrace(Config);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_DOUBLE_EQ(A[I].Point.Utilization, B[I].Point.Utilization);
    EXPECT_DOUBLE_EQ(A[I].TimeS, B[I].TimeS);
  }
}

TEST(WorkloadTest, TraceBoundsAndTiming) {
  TraceConfig Config;
  Config.DurationS = 600.0;
  Config.SampleIntervalS = 10.0;
  auto Trace = generateTrace(Config);
  ASSERT_EQ(Trace.size(), 61u);
  for (const auto &Sample : Trace) {
    EXPECT_GE(Sample.Point.Utilization, 0.0);
    EXPECT_LE(Sample.Point.Utilization, 1.0);
  }
  EXPECT_DOUBLE_EQ(Trace.back().TimeS, 600.0);
}

TEST(WorkloadTest, PhaseDipsLowerMeanUtilization) {
  TraceConfig NoDips;
  NoDips.PhaseDipProbability = 0.0;
  NoDips.UtilizationJitter = 0.0;
  TraceConfig Dips = NoDips;
  Dips.PhaseDipProbability = 0.10;
  double MeanClean = meanUtilization(generateTrace(NoDips));
  double MeanDips = meanUtilization(generateTrace(Dips));
  EXPECT_NEAR(MeanClean, 0.95, 1e-9);
  EXPECT_LT(MeanDips, MeanClean - 0.02);
}

TEST(WorkloadTest, DutyCycleSplitsOnOff) {
  auto Trace = generateDutyCycle(ApplicationClass::MolecularDynamics,
                                 600.0, 0.5, 10.0);
  ASSERT_EQ(Trace.size(), 60u);
  int OnCount = 0;
  for (const auto &Sample : Trace)
    OnCount += Sample.Point.Utilization > 0.5;
  EXPECT_EQ(OnCount, 30);
}

//===----------------------------------------------------------------------===//
// Transient simulator
//===----------------------------------------------------------------------===//

namespace {

TransientSimulator makeSkatSimulator(TransientConfig Config =
                                         TransientConfig()) {
  return TransientSimulator(core::makeSkatModule(),
                            core::makeNominalConditions(), Config);
}

} // namespace

TEST(TransientTest, WarmupApproachesSteadyState) {
  TransientSimulator Simulator = makeSkatSimulator();
  auto Trace = Simulator.run(4 * 3600.0);
  ASSERT_TRUE(Trace.hasValue()) << Trace.message();
  ASSERT_GT(Trace->size(), 100u);
  // Temperatures settle: the last hour moves by less than 0.2 C.
  double Late = Trace->back().MaxJunctionTempC;
  double Earlier = (*Trace)[Trace->size() - 300].MaxJunctionTempC;
  EXPECT_NEAR(Late, Earlier, 0.2);
  // And the settled point is in the SKAT envelope (lumped model is
  // coarser than the steady solver; allow a few degrees).
  EXPECT_LT(Late, 55.0);
  EXPECT_GT(Late, 35.0);
  EXPECT_LT(Trace->back().OilTempC, 31.0);
}

TEST(TransientTest, MonotoneWarmupFromCold) {
  TransientSimulator Simulator = makeSkatSimulator();
  auto Trace = Simulator.run(1800.0);
  ASSERT_TRUE(Trace.hasValue());
  // Oil only warms during the first half hour at full load.
  for (size_t I = 1; I < Trace->size(); ++I)
    EXPECT_GE((*Trace)[I].OilTempC, (*Trace)[I - 1].OilTempC - 0.01);
}

TEST(TransientTest, EventsPastDurationAreCountedAsDropped) {
  // Events scheduled after the horizon never fire; that must be visible
  // in telemetry rather than silently swallowed.
  telemetry::Counter &Dropped =
      telemetry::Registry::global().counter("sim.transient.dropped_events");
  uint64_t Before = Dropped.value();

  TransientSimulator Simulator = makeSkatSimulator();
  Simulator.schedulePumpSpeed(900.0, 0.5);  // Fires.
  Simulator.schedulePumpSpeed(7200.0, 0.0); // Past the horizon: dropped.
  Simulator.scheduleWaterFlow(9000.0, 0.0); // Also dropped.
  auto Trace = Simulator.run(1800.0);
  ASSERT_TRUE(Trace.hasValue()) << Trace.message();
  EXPECT_EQ(Dropped.value() - Before, 2u);

  // A run whose events all fire adds nothing.
  uint64_t Mid = Dropped.value();
  TransientSimulator Clean = makeSkatSimulator();
  Clean.schedulePumpSpeed(600.0, 0.8);
  ASSERT_TRUE(Clean.run(1800.0).hasValue());
  EXPECT_EQ(Dropped.value(), Mid);
}

TEST(TransientTest, PumpFailureTripsProtection) {
  TransientConfig Config;
  Config.ApplyControlActions = true;
  TransientSimulator Simulator = makeSkatSimulator(Config);
  Simulator.schedulePumpSpeed(3600.0, 0.0); // Pump dies after warm-up.
  auto Trace = Simulator.run(3.0 * 3600.0);
  ASSERT_TRUE(Trace.hasValue());

  bool SawAlarm = false, SawShutdown = false;
  double PeakJunction = 0.0;
  for (const auto &Sample : *Trace) {
    PeakJunction = std::max(PeakJunction, Sample.MaxJunctionTempC);
    if (Sample.TimeS > 3600.0 &&
        Sample.Alarm != rcsystem::AlarmLevel::Normal)
      SawAlarm = true;
    if (Sample.ShutDown)
      SawShutdown = true;
  }
  EXPECT_TRUE(SawAlarm);
  EXPECT_TRUE(SawShutdown);
  // Protection kept silicon below destruction even with a dead pump.
  EXPECT_LT(PeakJunction, 110.0);
  // After shutdown the module cools back down.
  EXPECT_LT(Trace->back().MaxJunctionTempC, 60.0);
}

TEST(TransientTest, PumpFailureWithoutControlRunsHotter) {
  TransientConfig NoControl;
  NoControl.ApplyControlActions = false;
  TransientSimulator Unprotected = makeSkatSimulator(NoControl);
  Unprotected.schedulePumpSpeed(1800.0, 0.0);
  auto UnprotectedTrace = Unprotected.run(2.0 * 3600.0);
  ASSERT_TRUE(UnprotectedTrace.hasValue());

  TransientConfig WithControl;
  WithControl.ApplyControlActions = true;
  TransientSimulator Protected = makeSkatSimulator(WithControl);
  Protected.schedulePumpSpeed(1800.0, 0.0);
  auto ProtectedTrace = Protected.run(2.0 * 3600.0);
  ASSERT_TRUE(ProtectedTrace.hasValue());

  auto peak = [](const std::vector<TraceSample> &Trace) {
    double Max = 0.0;
    for (const auto &Sample : Trace)
      Max = std::max(Max, Sample.MaxJunctionTempC);
    return Max;
  };
  EXPECT_GT(peak(*UnprotectedTrace), peak(*ProtectedTrace) + 5.0);
}

TEST(TransientTest, WorkloadStepChangesPower) {
  TransientSimulator Simulator = makeSkatSimulator();
  Simulator.scheduleWorkload(1800.0, fpga::WorkloadPoint{0.2, 1.0});
  auto Trace = Simulator.run(3600.0);
  ASSERT_TRUE(Trace.hasValue());
  double PowerBefore = 0.0, PowerAfter = 0.0;
  for (const auto &Sample : *Trace) {
    if (Sample.TimeS < 1700.0)
      PowerBefore = Sample.TotalPowerW;
    if (Sample.TimeS > 3500.0)
      PowerAfter = Sample.TotalPowerW;
  }
  EXPECT_LT(PowerAfter, 0.5 * PowerBefore);
}

TEST(TransientTest, WaterExcursionWarmsModule) {
  TransientSimulator Simulator = makeSkatSimulator();
  Simulator.scheduleWaterInlet(1800.0, 28.0);
  auto Trace = Simulator.run(2.5 * 3600.0);
  ASSERT_TRUE(Trace.hasValue());
  double OilBefore = 0.0, OilAfter = 0.0;
  for (const auto &Sample : *Trace) {
    if (Sample.TimeS < 1700.0)
      OilBefore = Sample.OilTempC;
    OilAfter = Sample.OilTempC;
  }
  EXPECT_GT(OilAfter, OilBefore + 5.0);
}

//===----------------------------------------------------------------------===//
// Monte-Carlo availability
//===----------------------------------------------------------------------===//

TEST(MonteCarloTest, DeterministicAcrossRuns) {
  AvailabilityConfig Config;
  Config.Components = makeImmersionComponents(96, 45.0, 1, false);
  Config.NumTrials = 50;
  auto A = simulateAvailability(Config);
  auto B = simulateAvailability(Config);
  EXPECT_DOUBLE_EQ(A.FailuresPerYear, B.FailuresPerYear);
  EXPECT_DOUBLE_EQ(A.Availability, B.Availability);
}

TEST(MonteCarloTest, HotterJunctionsFailMore) {
  AvailabilityConfig Cold;
  Cold.Components = makeImmersionComponents(96, 45.0, 1, false);
  AvailabilityConfig Hot;
  Hot.Components = makeImmersionComponents(96, 84.0, 1, false);
  auto ColdReport = simulateAvailability(Cold);
  auto HotReport = simulateAvailability(Hot);
  EXPECT_GT(HotReport.FailuresPerYear, 3.0 * ColdReport.FailuresPerYear);
  EXPECT_LT(HotReport.Availability, ColdReport.Availability);
}

TEST(MonteCarloTest, WashoutGreaseAddsMaintenance) {
  AvailabilityConfig Clean;
  Clean.Components = makeImmersionComponents(96, 45.0, 1, false);
  AvailabilityConfig Washout;
  Washout.Components = makeImmersionComponents(96, 45.0, 1, true);
  auto CleanReport = simulateAvailability(Clean);
  auto WashoutReport = simulateAvailability(Washout);
  EXPECT_GT(WashoutReport.ModuleDowntimeHoursPerYear,
            CleanReport.ModuleDowntimeHoursPerYear + 10.0);
}

TEST(MonteCarloTest, ColdPlateLeaksCostDowntime) {
  // Same junction temperature; the cold-plate design's connectors and
  // condensation events add outages immersion does not have.
  AvailabilityConfig Immersion;
  Immersion.Components = makeImmersionComponents(96, 50.0, 1, false);
  AvailabilityConfig ColdPlate;
  ColdPlate.Components = makeColdPlateComponents(96, 50.0, 96 * 2);
  auto ImmersionReport = simulateAvailability(Immersion);
  auto ColdPlateReport = simulateAvailability(ColdPlate);
  EXPECT_GT(ColdPlateReport.ModuleDowntimeHoursPerYear,
            ImmersionReport.ModuleDowntimeHoursPerYear);
}

TEST(MonteCarloTest, PerComponentBreakdownSums) {
  AvailabilityConfig Config;
  Config.Components = makeAirComponents(32, 73.0, 8);
  auto Report = simulateAvailability(Config);
  double Sum = 0.0;
  for (double PerYear : Report.PerComponentFailuresPerYear)
    Sum += PerYear;
  EXPECT_NEAR(Sum, Report.FailuresPerYear, 1e-9);
  EXPECT_EQ(Report.PerComponentFailuresPerYear.size(),
            Config.Components.size());
}

TEST(MonteCarloTest, AvailabilityInUnitRange) {
  AvailabilityConfig Config;
  Config.Components = makeColdPlateComponents(96, 60.0, 200);
  auto Report = simulateAvailability(Config);
  EXPECT_GT(Report.Availability, 0.9);
  EXPECT_LE(Report.Availability, 1.0);
}

TEST(TransientTest, WaterLossRideThrough) {
  // Losing the facility water leaves the bath riding on its inventory:
  // oil warms steadily but junctions stay protected for minutes.
  TransientConfig Config;
  Config.ApplyControlActions = false;
  TransientSimulator Simulator = makeSkatSimulator(Config);
  Simulator.scheduleWaterFlow(1800.0, 0.0);
  auto Trace = Simulator.run(3600.0);
  ASSERT_TRUE(Trace.hasValue());
  double OilAtFail = 0.0, OilEnd = 0.0, TjFiveMinLater = 0.0;
  for (const auto &Sample : *Trace) {
    if (Sample.TimeS <= 1800.0)
      OilAtFail = Sample.OilTempC;
    if (Sample.TimeS <= 2100.0)
      TjFiveMinLater = Sample.MaxJunctionTempC;
    OilEnd = Sample.OilTempC;
  }
  EXPECT_GT(OilEnd, OilAtFail + 10.0); // Bath heats without the HX.
  EXPECT_LT(TjFiveMinLater, 70.0);     // But junctions ride through 5 min.
}

TEST(TransientTest, WaterRestorationRecovers) {
  TransientConfig Config;
  Config.ApplyControlActions = false;
  TransientSimulator Simulator = makeSkatSimulator(Config);
  Simulator.scheduleWaterFlow(1800.0, 0.0);
  Simulator.scheduleWaterFlow(2400.0, 3.0e-4);
  auto Trace = Simulator.run(3.0 * 3600.0);
  ASSERT_TRUE(Trace.hasValue());
  // After restoration the module returns to its pre-failure envelope.
  EXPECT_LT(Trace->back().OilTempC, 31.0);
  EXPECT_LT(Trace->back().MaxJunctionTempC, 50.0);
}

//===----------------------------------------------------------------------===//
// Rack transient
//===----------------------------------------------------------------------===//

#include "sim/RackTransient.h"

TEST(RackTransientTest, SettlesNearSteadyRack) {
  RackTransientSimulator Simulator(core::makeSkatRack(), 25.0);
  auto Trace = Simulator.run(4.0 * 3600.0);
  ASSERT_TRUE(Trace.hasValue()) << Trace.message();
  const auto &Last = Trace->back();
  // The steady rack solver reports ~42 C junctions and <30 C oil; the
  // lumped transient should settle in the same neighbourhood.
  EXPECT_NEAR(Last.MaxJunctionTempC, 43.0, 5.0);
  EXPECT_LT(Last.MeanOilTempC, 31.0);
  EXPECT_NEAR(Last.WaterTempC, 18.0, 3.0);
  EXPECT_EQ(Last.ModulesShutDown, 0);
  // Chiller carries roughly the rack heat.
  EXPECT_NEAR(Last.ChillerDutyW, Last.TotalPowerW, 0.2 * Last.TotalPowerW);
}

TEST(RackTransientTest, ChillerOutageHeatsSharedLoop) {
  RackTransientConfig Config;
  Config.EnableProtection = false;
  RackTransientSimulator Simulator(core::makeSkatRack(), 25.0, Config);
  Simulator.scheduleChillerCapacity(3600.0, 0.0);
  auto Trace = Simulator.run(2.0 * 3600.0);
  ASSERT_TRUE(Trace.hasValue());
  double WaterBefore = 0.0, WaterAfter = 0.0;
  for (const auto &Sample : *Trace) {
    if (Sample.TimeS <= 3600.0)
      WaterBefore = Sample.WaterTempC;
    WaterAfter = Sample.WaterTempC;
  }
  EXPECT_GT(WaterAfter, WaterBefore + 15.0);
}

TEST(RackTransientTest, ProtectionTripsUnderLongOutage) {
  RackTransientSimulator Simulator(core::makeSkatRack(), 25.0);
  Simulator.scheduleChillerCapacity(1800.0, 0.0);
  auto Trace = Simulator.run(6.0 * 3600.0);
  ASSERT_TRUE(Trace.hasValue());
  int MaxDown = 0;
  double PeakJunction = 0.0;
  for (const auto &Sample : *Trace) {
    MaxDown = std::max(MaxDown, Sample.ModulesShutDown);
    PeakJunction = std::max(PeakJunction, Sample.MaxJunctionTempC);
  }
  EXPECT_EQ(MaxDown, 12);           // Everything eventually protected.
  EXPECT_LT(PeakJunction, 95.0);    // Before real damage temperatures.
  EXPECT_GT(PeakJunction, 80.0);    // But the trip genuinely fired.
}

TEST(RackTransientTest, ChillerRepairRecovers) {
  RackTransientConfig Config;
  Config.EnableProtection = false; // Keep computing through the blip.
  RackTransientSimulator Simulator(core::makeSkatRack(), 25.0, Config);
  Simulator.scheduleChillerCapacity(3600.0, 0.0);
  Simulator.scheduleChillerCapacity(3600.0 + 600.0, 1.0); // 10 min outage.
  auto Trace = Simulator.run(5.0 * 3600.0);
  ASSERT_TRUE(Trace.hasValue());
  const auto &Last = Trace->back();
  EXPECT_NEAR(Last.WaterTempC, 18.0, 3.0);
  EXPECT_LT(Last.MaxJunctionTempC, 50.0);
  EXPECT_EQ(Last.ModulesShutDown, 0);
}

TEST(RackTransientTest, TenMinuteOutageIsRideThrough) {
  // The A3 story at rack scale: a 10-minute chiller outage never reaches
  // the long-life band thanks to oil + water inventories.
  RackTransientConfig Config;
  Config.EnableProtection = false;
  RackTransientSimulator Simulator(core::makeSkatRack(), 25.0, Config);
  Simulator.scheduleChillerCapacity(3600.0, 0.0);
  Simulator.scheduleChillerCapacity(4200.0, 1.0);
  auto Trace = Simulator.run(2.0 * 3600.0);
  ASSERT_TRUE(Trace.hasValue());
  double Peak = 0.0;
  for (const auto &Sample : *Trace)
    Peak = std::max(Peak, Sample.MaxJunctionTempC);
  EXPECT_LT(Peak, 70.0);
}

TEST(MonteCarloTest, ReportIndependentOfThreadCount) {
  // Per-trial RNG streams plus index-ordered reduction: the report must be
  // bit-identical at any worker count, not merely statistically close.
  AvailabilityConfig Serial;
  Serial.Components = makeColdPlateComponents(96, 55.0, 24);
  Serial.NumTrials = 64;
  Serial.NumThreads = 1;
  AvailabilityConfig Threaded = Serial;
  Threaded.NumThreads = 4;
  auto A = simulateAvailability(Serial);
  auto B = simulateAvailability(Threaded);
  EXPECT_EQ(A.FailuresPerYear, B.FailuresPerYear);
  EXPECT_EQ(A.ModuleDowntimeHoursPerYear, B.ModuleDowntimeHoursPerYear);
  EXPECT_EQ(A.Availability, B.Availability);
  ASSERT_EQ(A.PerComponentFailuresPerYear.size(),
            B.PerComponentFailuresPerYear.size());
  for (size_t I = 0; I != A.PerComponentFailuresPerYear.size(); ++I)
    EXPECT_EQ(A.PerComponentFailuresPerYear[I],
              B.PerComponentFailuresPerYear[I]);
}
