//===- tests/fluids_test.cpp - Unit tests for rcs_fluids --------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fluids/Fluid.h"
#include "fluids/FluidComparison.h"
#include "fluids/SelectionCriteria.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

using namespace rcs;
using namespace rcs::fluids;

namespace {

struct FluidCase {
  const char *Label;
  std::function<std::unique_ptr<Fluid>()> Make;
};

class AllFluidsTest : public testing::TestWithParam<FluidCase> {};

} // namespace

TEST_P(AllFluidsTest, PropertiesPositiveAcrossOperatingRange) {
  auto F = GetParam().Make();
  double Lo = F->minOperatingTempC();
  double Hi = F->maxOperatingTempC();
  for (int I = 0; I <= 20; ++I) {
    double T = Lo + (Hi - Lo) * I / 20.0;
    EXPECT_GT(F->densityKgPerM3(T), 0.0) << F->name() << " @" << T;
    EXPECT_GT(F->specificHeatJPerKgK(T), 0.0) << F->name() << " @" << T;
    EXPECT_GT(F->thermalConductivityWPerMK(T), 0.0) << F->name() << " @" << T;
    EXPECT_GT(F->dynamicViscosityPaS(T), 0.0) << F->name() << " @" << T;
    EXPECT_GT(F->prandtl(T), 0.0) << F->name() << " @" << T;
  }
}

TEST_P(AllFluidsTest, DensityDecreasesWithTemperature) {
  auto F = GetParam().Make();
  double Lo = std::max(F->minOperatingTempC(), 5.0);
  double Hi = F->maxOperatingTempC();
  double Previous = F->densityKgPerM3(Lo);
  for (int I = 1; I <= 10; ++I) {
    double T = Lo + (Hi - Lo) * I / 10.0;
    double Current = F->densityKgPerM3(T);
    EXPECT_LE(Current, Previous + 1e-9) << F->name() << " @" << T;
    Previous = Current;
  }
}

TEST_P(AllFluidsTest, ViscosityDecreasesWithTemperatureForLiquids) {
  auto F = GetParam().Make();
  if (F->kind() == FluidKind::Gas)
    GTEST_SKIP() << "gas viscosity increases with temperature";
  double Lo = std::max(F->minOperatingTempC(), 5.0);
  double Hi = F->maxOperatingTempC();
  double Previous = F->dynamicViscosityPaS(Lo);
  for (int I = 1; I <= 10; ++I) {
    double T = Lo + (Hi - Lo) * I / 10.0;
    double Current = F->dynamicViscosityPaS(T);
    EXPECT_LE(Current, Previous + 1e-12) << F->name() << " @" << T;
    Previous = Current;
  }
}

TEST_P(AllFluidsTest, DerivedQuantitiesConsistent) {
  auto F = GetParam().Make();
  double T = 0.5 * (F->minOperatingTempC() + F->maxOperatingTempC());
  EXPECT_NEAR(F->kinematicViscosityM2PerS(T),
              F->dynamicViscosityPaS(T) / F->densityKgPerM3(T), 1e-15);
  EXPECT_NEAR(F->volumetricHeatCapacityJPerM3K(T),
              F->densityKgPerM3(T) * F->specificHeatJPerKgK(T), 1e-6);
  EXPECT_NEAR(F->thermalDiffusivityM2PerS(T),
              F->thermalConductivityWPerMK(T) /
                  F->volumetricHeatCapacityJPerM3K(T),
              1e-15);
}

INSTANTIATE_TEST_SUITE_P(
    Fluids, AllFluidsTest,
    testing::Values(FluidCase{"air", makeAir}, FluidCase{"water", makeWater},
                    FluidCase{"glycol30",
                              [] { return makeGlycolSolution(0.3); }},
                    FluidCase{"md45", makeMineralOilMd45},
                    FluidCase{"skat", makeEngineeredDielectric},
                    FluidCase{"white_oil", makeWhiteMineralOil}),
    [](const testing::TestParamInfo<FluidCase> &Info) {
      return Info.param.Label;
    });

//===----------------------------------------------------------------------===//
// Handbook anchor values
//===----------------------------------------------------------------------===//

TEST(FluidAnchorsTest, AirAt25C) {
  auto Air = makeAir();
  EXPECT_NEAR(Air->densityKgPerM3(25.0), 1.184, 0.01);
  EXPECT_NEAR(Air->specificHeatJPerKgK(25.0), 1007.0, 2.0);
  EXPECT_NEAR(Air->prandtl(25.0), 0.71, 0.03);
  EXPECT_EQ(Air->kind(), FluidKind::Gas);
  EXPECT_FALSE(Air->isDielectric());
}

TEST(FluidAnchorsTest, WaterAt20C) {
  auto Water = makeWater();
  EXPECT_NEAR(Water->densityKgPerM3(20.0), 998.2, 0.5);
  EXPECT_NEAR(Water->specificHeatJPerKgK(20.0), 4182.0, 5.0);
  EXPECT_NEAR(Water->prandtl(20.0), 7.0, 0.3);
  EXPECT_FALSE(Water->isDielectric());
}

TEST(FluidAnchorsTest, MineralOilMd45ViscosityAnchors) {
  auto Oil = makeMineralOilMd45();
  // The name encodes ~4.5 cSt at 40 C.
  EXPECT_NEAR(Oil->kinematicViscosityM2PerS(40.0) * 1e6, 4.5, 0.2);
  EXPECT_TRUE(Oil->isDielectric());
  ASSERT_TRUE(Oil->dielectricStrengthKvPerMm().has_value());
  EXPECT_GT(*Oil->dielectricStrengthKvPerMm(), 10.0);
  ASSERT_TRUE(Oil->flashPointC().has_value());
  EXPECT_GT(*Oil->flashPointC(), Oil->maxOperatingTempC());
}

TEST(FluidAnchorsTest, OilPrandtlIsLarge) {
  auto Oil = makeMineralOilMd45();
  // Oils have Pr in the tens-to-hundreds.
  EXPECT_GT(Oil->prandtl(30.0), 30.0);
  EXPECT_LT(Oil->prandtl(30.0), 500.0);
}

TEST(FluidAnchorsTest, EngineeredDielectricBeatsStockOil) {
  auto Skat = makeEngineeredDielectric();
  auto Oil = makeMineralOilMd45();
  double T = 30.0;
  EXPECT_GT(Skat->specificHeatJPerKgK(T), Oil->specificHeatJPerKgK(T));
  EXPECT_LT(Skat->kinematicViscosityM2PerS(T),
            Oil->kinematicViscosityM2PerS(T));
  EXPECT_GT(*Skat->dielectricStrengthKvPerMm(),
            *Oil->dielectricStrengthKvPerMm());
}

TEST(FluidAnchorsTest, WhiteOilIsMoreViscousThanMd45) {
  auto White = makeWhiteMineralOil();
  auto Md45 = makeMineralOilMd45();
  EXPECT_GT(White->kinematicViscosityM2PerS(30.0),
            3.0 * Md45->kinematicViscosityM2PerS(30.0));
}

TEST(FluidAnchorsTest, GlycolFractionLowersFreezePoint) {
  auto G20 = makeGlycolSolution(0.2);
  auto G50 = makeGlycolSolution(0.5);
  EXPECT_LT(G50->minOperatingTempC(), G20->minOperatingTempC());
  EXPECT_LT(G50->specificHeatJPerKgK(20.0), G20->specificHeatJPerKgK(20.0));
  EXPECT_GT(G50->dynamicViscosityPaS(20.0), G20->dynamicViscosityPaS(20.0));
}

//===----------------------------------------------------------------------===//
// Paper Section 2 comparison claims (exercised in detail by bench E4)
//===----------------------------------------------------------------------===//

TEST(FluidComparisonTest, WaterVsAirHeatCapacityRatioInPaperBand) {
  auto Water = makeWater();
  auto Air = makeAir();
  double Ratio = volumetricHeatCapacityRatio(*Water, *Air, 25.0);
  // Paper: "from 1500 to 4000 times".
  EXPECT_GT(Ratio, 1500.0);
  EXPECT_LT(Ratio, 4000.0);
}

TEST(FluidComparisonTest, OilVsAirHeatCapacityRatioInPaperBand) {
  auto Oil = makeMineralOilMd45();
  auto Air = makeAir();
  double Ratio = volumetricHeatCapacityRatio(*Oil, *Air, 25.0);
  EXPECT_GT(Ratio, 1200.0);
  EXPECT_LT(Ratio, 4000.0);
}

TEST(FluidComparisonTest, FpgaFlowBudgetMatchesPaper) {
  // Paper: cooling one modern FPGA needs 1 m^3 of air or 250 ml of water
  // per minute. At ~91 W per FPGA and a ~5 C coolant rise:
  auto Water = makeWater();
  auto Air = makeAir();
  const double PowerW = 91.0;
  const double DeltaT = 5.0;
  double WaterFlow = requiredVolumeFlowM3PerS(*Water, PowerW, 25.0, DeltaT);
  double AirFlow = requiredVolumeFlowM3PerS(*Air, PowerW, 25.0, DeltaT);
  // Water: a quarter liter per minute, within 40%.
  EXPECT_NEAR(WaterFlow * 60000.0, 0.25, 0.1);
  // Air: about a cubic meter per minute, within 40%.
  EXPECT_NEAR(AirFlow * 60.0, 1.0, 0.4);
  // And the ratio itself is the heat-capacity ratio.
  EXPECT_NEAR(AirFlow / WaterFlow,
              volumetricHeatCapacityRatio(*Water, *Air, 27.5), 1.0);
}

TEST(FluidComparisonTest, LiquidHtcFarExceedsAir) {
  auto Water = makeWater();
  auto Oil = makeMineralOilMd45();
  auto Air = makeAir();
  // Same surface, same conventional velocity.
  double Ratio = heatFlowIntensityRatio(*Water, *Air, 30.0, 0.5, 0.05);
  EXPECT_GT(Ratio, 20.0);
  EXPECT_LT(Ratio, 300.0);
  double OilRatio = heatFlowIntensityRatio(*Oil, *Air, 30.0, 0.5, 0.05);
  EXPECT_GT(OilRatio, 5.0);
}

TEST(FluidComparisonTest, HtcIncreasesWithVelocity) {
  auto Oil = makeMineralOilMd45();
  double H1 = flatPlateHtcWPerM2K(*Oil, 30.0, 0.2, 0.05);
  double H2 = flatPlateHtcWPerM2K(*Oil, 30.0, 0.8, 0.05);
  EXPECT_GT(H2, H1);
}

//===----------------------------------------------------------------------===//
// Selection criteria (paper Section 2 requirements list)
//===----------------------------------------------------------------------===//

TEST(SelectionTest, ConductingLiquidsFailHardGate) {
  auto Water = makeWater();
  SelectionScore S = scoreCoolant(*Water, 30.0);
  EXPECT_FALSE(S.PassesHardGates);
  EXPECT_DOUBLE_EQ(S.Total, 0.0);
}

TEST(SelectionTest, DielectricsPassHardGate) {
  auto Oil = makeMineralOilMd45();
  SelectionScore S = scoreCoolant(*Oil, 30.0);
  EXPECT_TRUE(S.PassesHardGates);
  EXPECT_GT(S.Total, 0.0);
  EXPECT_LE(S.Total, 1.0);
}

TEST(SelectionTest, EngineeredDielectricWinsRanking) {
  auto Air = makeAir();
  auto Water = makeWater();
  auto White = makeWhiteMineralOil();
  auto Md45 = makeMineralOilMd45();
  auto Skat = makeEngineeredDielectric();
  std::vector<const Fluid *> Candidates = {Air.get(), Water.get(),
                                           White.get(), Md45.get(),
                                           Skat.get()};
  auto Ranking = rankCoolants(Candidates, 30.0);
  ASSERT_EQ(Ranking.size(), 5u);
  // The authors' agent wins; MD-4.5 beats generic white oil.
  EXPECT_EQ(Ranking[0].FluidName, Skat->name());
  EXPECT_EQ(Ranking[1].FluidName, Md45->name());
  // Conducting fluids sink to the bottom with zero totals.
  EXPECT_DOUBLE_EQ(Ranking[3].Total, 0.0);
  EXPECT_DOUBLE_EQ(Ranking[4].Total, 0.0);
}

TEST(SelectionTest, ScoresAreNormalized) {
  auto Md45 = makeMineralOilMd45();
  SelectionScore S = scoreCoolant(*Md45, 30.0);
  for (double Part :
       {S.HeatTransferScore, S.ViscosityScore, S.DielectricScore,
        S.FireSafetyScore, S.StabilityScore, S.CostScore}) {
    EXPECT_GE(Part, 0.0);
    EXPECT_LE(Part, 1.0);
  }
}

TEST(SelectionTest, WeightsShiftRanking) {
  auto White = makeWhiteMineralOil();
  auto Skat = makeEngineeredDielectric();
  // With cost dominating, the cheap white oil can win.
  SelectionWeights CostObsessed;
  CostObsessed.HeatTransferWeight = 0.05;
  CostObsessed.ViscosityWeight = 0.05;
  CostObsessed.DielectricWeight = 0.05;
  CostObsessed.FireSafetyWeight = 0.05;
  CostObsessed.StabilityWeight = 0.05;
  CostObsessed.CostWeight = 0.75;
  auto Ranking =
      rankCoolants({White.get(), Skat.get()}, 30.0, CostObsessed);
  EXPECT_EQ(Ranking[0].FluidName, White->name());
}
