//===- tests/stackup_test.cpp - Detailed board stackup tests -----------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "thermal/Stackup.h"

#include "fluids/Fluid.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace rcs;
using namespace rcs::thermal;

namespace {

BoardStackupConfig skatBoard() {
  BoardStackupConfig Config;
  Config.NumFpgas = 8;
  Config.ChipPowerW = 91.0;
  Config.ThetaJcKPerW = 0.09;
  Config.TimResistanceKPerW = 0.012;
  Config.InletTempC = 27.0;
  Config.BoardFlowM3PerS = 1.8e-4;
  Config.ApproachVelocityMPerS = 0.065;
  Config.Sink.BaseLengthM = 0.050;
  Config.Sink.BaseWidthM = 0.050;
  Config.Sink.PinHeightM = 0.010;
  return Config;
}

} // namespace

TEST(StackupTest, EnergyConservation) {
  auto Oil = fluids::makeEngineeredDielectric();
  auto Result = solveBoardStackup(skatBoard(), *Oil);
  ASSERT_TRUE(Result.hasValue()) << Result.message();
  // All chip heat is advected out by the coolant.
  EXPECT_LT(std::fabs(Result->EnergyResidualW), 0.01 * 8 * 91.0);
}

TEST(StackupTest, TemperatureOrderingWithinStack) {
  auto Oil = fluids::makeEngineeredDielectric();
  auto Result = solveBoardStackup(skatBoard(), *Oil);
  ASSERT_TRUE(Result.hasValue());
  for (int I = 0; I != 8; ++I) {
    EXPECT_GT(Result->DieTempC[I], Result->LidTempC[I]);
    EXPECT_GT(Result->LidTempC[I], Result->SinkBaseTempC[I]);
    EXPECT_GT(Result->SinkBaseTempC[I], Result->CoolantCellTempC[I] - 1.0);
  }
}

TEST(StackupTest, DownstreamChipsRunWarmer) {
  auto Oil = fluids::makeEngineeredDielectric();
  auto Result = solveBoardStackup(skatBoard(), *Oil);
  ASSERT_TRUE(Result.hasValue());
  EXPECT_GT(Result->DieGradientC, 0.3);
  EXPECT_GT(Result->OutletTempC, skatBoard().InletTempC + 1.0);
  // Coolant cells increase monotonically along the path.
  for (size_t I = 1; I != Result->CoolantCellTempC.size(); ++I)
    EXPECT_GE(Result->CoolantCellTempC[I],
              Result->CoolantCellTempC[I - 1]);
}

TEST(StackupTest, MatchesLumpedModelWithinTolerance) {
  // The module solver predicts junctions around oil + P*(theta+tim+sink).
  // The detailed stackup should land in the same neighbourhood.
  auto Oil = fluids::makeEngineeredDielectric();
  BoardStackupConfig Config = skatBoard();
  auto Result = solveBoardStackup(Config, *Oil);
  ASSERT_TRUE(Result.hasValue());
  PinFinHeatSink Sink("ref", Config.Sink);
  double MeanOil =
      0.5 * (Config.InletTempC + Result->OutletTempC);
  double R = Config.ThetaJcKPerW + Config.TimResistanceKPerW +
             Sink.thermalResistanceKPerW(*Oil, MeanOil,
                                         Config.ApproachVelocityMPerS,
                                         MeanOil + 20.0);
  double Lumped = MeanOil + Config.ChipPowerW * R;
  double MeanDie = 0.0;
  for (double T : Result->DieTempC)
    MeanDie += T;
  MeanDie /= Result->DieTempC.size();
  EXPECT_NEAR(MeanDie, Lumped, 2.5);
}

TEST(StackupTest, MoreFlowFlattensGradient) {
  auto Oil = fluids::makeEngineeredDielectric();
  BoardStackupConfig Slow = skatBoard();
  BoardStackupConfig Fast = skatBoard();
  Fast.BoardFlowM3PerS *= 3.0;
  auto SlowResult = solveBoardStackup(Slow, *Oil);
  auto FastResult = solveBoardStackup(Fast, *Oil);
  ASSERT_TRUE(SlowResult.hasValue());
  ASSERT_TRUE(FastResult.hasValue());
  EXPECT_LT(FastResult->DieGradientC, SlowResult->DieGradientC);
  EXPECT_LT(FastResult->MaxDieTempC, SlowResult->MaxDieTempC);
}

TEST(StackupTest, LateralConductionEvensHotSpot) {
  // One chip at double power: lateral board conduction shaves its peak.
  auto Oil = fluids::makeEngineeredDielectric();
  std::vector<double> Powers(8, 91.0);
  Powers[3] = 182.0;

  BoardStackupConfig Coupled = skatBoard();
  Coupled.LateralConductanceWPerK = 2.0;
  BoardStackupConfig Isolated = skatBoard();
  Isolated.LateralConductanceWPerK = 1e-9;

  auto CoupledResult = solveBoardStackupWithPowers(Coupled, *Oil, Powers);
  auto IsolatedResult =
      solveBoardStackupWithPowers(Isolated, *Oil, Powers);
  ASSERT_TRUE(CoupledResult.hasValue());
  ASSERT_TRUE(IsolatedResult.hasValue());
  EXPECT_LT(CoupledResult->DieTempC[3], IsolatedResult->DieTempC[3]);
  // Neighbours absorb some of it.
  EXPECT_GT(CoupledResult->DieTempC[2], IsolatedResult->DieTempC[2]);
}

TEST(StackupTest, RejectsZeroFlow) {
  auto Oil = fluids::makeEngineeredDielectric();
  BoardStackupConfig Config = skatBoard();
  Config.BoardFlowM3PerS = 0.0;
  auto Result = solveBoardStackup(Config, *Oil);
  EXPECT_FALSE(Result.hasValue());
}
