//===- tests/support_test.cpp - Unit tests for rcs_support ------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Csv.h"
#include "support/Interp.h"
#include "support/Numerics.h"
#include "support/Parallel.h"
#include "support/Random.h"
#include "support/Status.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "support/Units.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

using namespace rcs;

//===----------------------------------------------------------------------===//
// Status / Expected
//===----------------------------------------------------------------------===//

TEST(StatusTest, DefaultIsOk) {
  Status S;
  EXPECT_TRUE(S.isOk());
  EXPECT_TRUE(static_cast<bool>(S));
  EXPECT_EQ(S.message(), "");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status S = Status::error("pump exploded");
  EXPECT_FALSE(S.isOk());
  EXPECT_EQ(S.message(), "pump exploded");
}

TEST(ExpectedTest, ValueRoundTrip) {
  Expected<int> E(42);
  ASSERT_TRUE(E.hasValue());
  EXPECT_EQ(*E, 42);
  EXPECT_EQ(E.valueOr(7), 42);
}

TEST(ExpectedTest, ErrorRoundTrip) {
  Expected<int> E = Expected<int>::error("no solution");
  ASSERT_FALSE(E.hasValue());
  EXPECT_EQ(E.message(), "no solution");
  EXPECT_EQ(E.valueOr(7), 7);
}

TEST(ExpectedTest, ArrowOperator) {
  Expected<std::string> E(std::string("abc"));
  EXPECT_EQ(E->size(), 3u);
}

//===----------------------------------------------------------------------===//
// StringUtils
//===----------------------------------------------------------------------===//

TEST(StringUtilsTest, FormatString) {
  EXPECT_EQ(formatString("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(formatString("%s", ""), "");
}

TEST(StringUtilsTest, SplitPreservesEmptyFields) {
  auto Parts = splitString("a,,b,", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[1], "");
  EXPECT_EQ(Parts[2], "b");
  EXPECT_EQ(Parts[3], "");
}

TEST(StringUtilsTest, SplitNoSeparator) {
  auto Parts = splitString("abc", ',');
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(Parts[0], "abc");
}

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(trimString("  hi \t\n"), "hi");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(trimString("   "), "");
  EXPECT_EQ(trimString("x"), "x");
}

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(joinStrings({}, ","), "");
  EXPECT_EQ(joinStrings({"solo"}, ","), "solo");
}

TEST(StringUtilsTest, StartsWith) {
  EXPECT_TRUE(startsWith("loop-3", "loop"));
  EXPECT_FALSE(startsWith("lo", "loop"));
}

TEST(StringUtilsTest, ToLower) { EXPECT_EQ(toLower("FPGA Ku095"), "fpga ku095"); }

TEST(StringUtilsTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(formatDouble(3.0), "3");
  EXPECT_EQ(formatDouble(3.25, 3), "3.25");
  EXPECT_EQ(formatDouble(0.5, 1), "0.5");
}

//===----------------------------------------------------------------------===//
// Units
//===----------------------------------------------------------------------===//

TEST(UnitsTest, TemperatureConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(units::celsiusToKelvin(25.0), 298.15);
  EXPECT_DOUBLE_EQ(units::kelvinToCelsius(units::celsiusToKelvin(55.0)),
                   55.0);
}

TEST(UnitsTest, FlowConversions) {
  EXPECT_NEAR(units::litersPerMinuteToM3PerS(60.0), 1e-3, 1e-12);
  EXPECT_NEAR(units::m3PerSToLitersPerMinute(1e-3), 60.0, 1e-9);
  EXPECT_NEAR(units::m3PerSToM3PerMinute(1.0 / 60.0), 1.0, 1e-12);
}

TEST(UnitsTest, PressureAndLength) {
  EXPECT_DOUBLE_EQ(units::barToPa(1.0), 1e5);
  EXPECT_DOUBLE_EQ(units::paToBar(2.5e5), 2.5);
  EXPECT_DOUBLE_EQ(units::mmToM(42.5), 0.0425);
}

//===----------------------------------------------------------------------===//
// RandomEngine
//===----------------------------------------------------------------------===//

TEST(RandomTest, Deterministic) {
  RandomEngine A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  RandomEngine A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(RandomTest, UniformInUnitInterval) {
  RandomEngine R(7);
  for (int I = 0; I != 10000; ++I) {
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(RandomTest, UniformMeanNearHalf) {
  RandomEngine R(11);
  double Sum = 0.0;
  const int N = 100000;
  for (int I = 0; I != N; ++I)
    Sum += R.uniform();
  EXPECT_NEAR(Sum / N, 0.5, 0.01);
}

TEST(RandomTest, UniformIntRespectsBound) {
  RandomEngine R(5);
  for (int I = 0; I != 10000; ++I)
    EXPECT_LT(R.uniformInt(17), 17u);
}

TEST(RandomTest, NormalMoments) {
  RandomEngine R(13);
  double Sum = 0.0, SumSq = 0.0;
  const int N = 200000;
  for (int I = 0; I != N; ++I) {
    double X = R.normal(5.0, 2.0);
    Sum += X;
    SumSq += X * X;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 5.0, 0.05);
  EXPECT_NEAR(Var, 4.0, 0.15);
}

TEST(RandomTest, ExponentialMean) {
  RandomEngine R(17);
  double Sum = 0.0;
  const int N = 100000;
  for (int I = 0; I != N; ++I)
    Sum += R.exponential(0.5);
  EXPECT_NEAR(Sum / N, 2.0, 0.1);
}

TEST(RandomTest, BernoulliRate) {
  RandomEngine R(19);
  int Hits = 0;
  const int N = 100000;
  for (int I = 0; I != N; ++I)
    Hits += R.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.3, 0.01);
}

//===----------------------------------------------------------------------===//
// Numerics: dense LU
//===----------------------------------------------------------------------===//

TEST(NumericsTest, SolveDense2x2) {
  Matrix A(2, 2);
  A.at(0, 0) = 2.0;
  A.at(0, 1) = 1.0;
  A.at(1, 0) = 1.0;
  A.at(1, 1) = 3.0;
  auto X = solveDense(A, {5.0, 10.0});
  ASSERT_TRUE(X.hasValue());
  EXPECT_NEAR((*X)[0], 1.0, 1e-12);
  EXPECT_NEAR((*X)[1], 3.0, 1e-12);
}

TEST(NumericsTest, SolveDenseNeedsPivoting) {
  // Zero on the diagonal forces a row swap.
  Matrix A(2, 2);
  A.at(0, 0) = 0.0;
  A.at(0, 1) = 1.0;
  A.at(1, 0) = 1.0;
  A.at(1, 1) = 0.0;
  auto X = solveDense(A, {2.0, 3.0});
  ASSERT_TRUE(X.hasValue());
  EXPECT_NEAR((*X)[0], 3.0, 1e-12);
  EXPECT_NEAR((*X)[1], 2.0, 1e-12);
}

TEST(NumericsTest, SolveDenseSingularFails) {
  Matrix A(2, 2);
  A.at(0, 0) = 1.0;
  A.at(0, 1) = 2.0;
  A.at(1, 0) = 2.0;
  A.at(1, 1) = 4.0;
  auto X = solveDense(A, {1.0, 2.0});
  EXPECT_FALSE(X.hasValue());
}

TEST(NumericsTest, SolveDenseRandomRoundTrip) {
  RandomEngine R(23);
  const size_t N = 25;
  Matrix A(N, N);
  std::vector<double> XTrue(N);
  for (size_t I = 0; I != N; ++I) {
    XTrue[I] = R.uniform(-3, 3);
    for (size_t J = 0; J != N; ++J)
      A.at(I, J) = R.uniform(-1, 1);
    A.at(I, I) += 5.0; // Diagonally dominant for conditioning.
  }
  auto B = A.apply(XTrue);
  auto X = solveDense(A, B);
  ASSERT_TRUE(X.hasValue());
  for (size_t I = 0; I != N; ++I)
    EXPECT_NEAR((*X)[I], XTrue[I], 1e-9);
}

TEST(NumericsTest, MatrixIdentityApply) {
  Matrix I = Matrix::identity(3);
  auto Y = I.apply({1.0, 2.0, 3.0});
  EXPECT_EQ(Y, (std::vector<double>{1.0, 2.0, 3.0}));
}

//===----------------------------------------------------------------------===//
// Numerics: tridiagonal
//===----------------------------------------------------------------------===//

TEST(NumericsTest, TridiagonalMatchesDense) {
  // -1 2 -1 Poisson-like system.
  const size_t N = 6;
  std::vector<double> Lower(N - 1, -1.0), Diag(N, 2.0), Upper(N - 1, -1.0);
  std::vector<double> Rhs(N, 1.0);
  auto XTri = solveTridiagonal(Lower, Diag, Upper, Rhs);
  ASSERT_TRUE(XTri.hasValue());

  Matrix A(N, N);
  for (size_t I = 0; I != N; ++I) {
    A.at(I, I) = 2.0;
    if (I > 0)
      A.at(I, I - 1) = -1.0;
    if (I + 1 < N)
      A.at(I, I + 1) = -1.0;
  }
  auto XDense = solveDense(A, Rhs);
  ASSERT_TRUE(XDense.hasValue());
  for (size_t I = 0; I != N; ++I)
    EXPECT_NEAR((*XTri)[I], (*XDense)[I], 1e-10);
}

//===----------------------------------------------------------------------===//
// Numerics: root finding
//===----------------------------------------------------------------------===//

TEST(NumericsTest, BrentFindsCosineRoot) {
  auto Root = findRootBrent([](double X) { return std::cos(X); }, 0.0, 3.0);
  ASSERT_TRUE(Root.hasValue());
  EXPECT_NEAR(*Root, M_PI / 2.0, 1e-9);
}

TEST(NumericsTest, BrentRejectsUnbracketed) {
  auto Root =
      findRootBrent([](double X) { return X * X + 1.0; }, -1.0, 1.0);
  EXPECT_FALSE(Root.hasValue());
}

TEST(NumericsTest, BrentEndpointRoot) {
  auto Root = findRootBrent([](double X) { return X; }, 0.0, 1.0);
  ASSERT_TRUE(Root.hasValue());
  EXPECT_DOUBLE_EQ(*Root, 0.0);
}

TEST(NumericsTest, NewtonScalarQuadratic) {
  auto Root = findRootNewton([](double X) { return X * X - 2.0; }, 1.0, 0.0,
                             2.0);
  ASSERT_TRUE(Root.hasValue());
  EXPECT_NEAR(*Root, std::sqrt(2.0), 1e-8);
}

TEST(NumericsTest, NewtonSystemSolvesNonlinear) {
  // x^2 + y = 3, x + y^2 = 5 has a solution near (1.1, 1.77)... verify the
  // residual instead of a closed form.
  auto F = [](const std::vector<double> &X) {
    return std::vector<double>{X[0] * X[0] + X[1] - 3.0,
                               X[0] + X[1] * X[1] - 5.0};
  };
  NewtonResult R = solveNewtonSystem(F, {1.0, 1.0});
  ASSERT_TRUE(R.Converged);
  auto Res = F(R.Solution);
  EXPECT_NEAR(Res[0], 0.0, 1e-8);
  EXPECT_NEAR(Res[1], 0.0, 1e-8);
}

TEST(NumericsTest, NewtonSystemLinearOneStep) {
  auto F = [](const std::vector<double> &X) {
    return std::vector<double>{2.0 * X[0] - 4.0};
  };
  NewtonResult R = solveNewtonSystem(F, {0.0});
  ASSERT_TRUE(R.Converged);
  EXPECT_NEAR(R.Solution[0], 2.0, 1e-8);
  EXPECT_LE(R.Iterations, 3);
}

TEST(NumericsTest, VectorHelpers) {
  EXPECT_DOUBLE_EQ(vectorNorm({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(vectorMaxAbs({-7.0, 2.0}), 7.0);
  EXPECT_DOUBLE_EQ(vectorMaxAbs({}), 0.0);
}

//===----------------------------------------------------------------------===//
// LinearTable
//===----------------------------------------------------------------------===//

TEST(InterpTest, EvaluatesMidpoints) {
  LinearTable T{{0.0, 0.0}, {1.0, 10.0}, {2.0, 30.0}};
  EXPECT_DOUBLE_EQ(T.evaluate(0.5), 5.0);
  EXPECT_DOUBLE_EQ(T.evaluate(1.5), 20.0);
  EXPECT_DOUBLE_EQ(T.evaluate(1.0), 10.0);
}

TEST(InterpTest, ClampsOutsideRangeByDefault) {
  LinearTable T{{0.0, 0.0}, {1.0, 10.0}};
  EXPECT_DOUBLE_EQ(T.evaluate(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(T.evaluate(5.0), 10.0);
}

TEST(InterpTest, ExtrapolatesWhenEnabled) {
  LinearTable T{{0.0, 0.0}, {1.0, 10.0}};
  T.setExtrapolate(true);
  EXPECT_DOUBLE_EQ(T.evaluate(2.0), 20.0);
  EXPECT_DOUBLE_EQ(T.evaluate(-1.0), -10.0);
}

TEST(InterpTest, Derivative) {
  LinearTable T{{0.0, 0.0}, {1.0, 10.0}, {2.0, 30.0}};
  EXPECT_DOUBLE_EQ(T.derivative(0.5), 10.0);
  EXPECT_DOUBLE_EQ(T.derivative(1.5), 20.0);
}

TEST(InterpTest, InverseIncreasing) {
  LinearTable T{{0.0, 0.0}, {1.0, 10.0}, {2.0, 30.0}};
  EXPECT_DOUBLE_EQ(T.inverse(5.0), 0.5);
  EXPECT_DOUBLE_EQ(T.inverse(20.0), 1.5);
  EXPECT_DOUBLE_EQ(T.inverse(-1.0), 0.0);  // Clamped.
  EXPECT_DOUBLE_EQ(T.inverse(100.0), 2.0); // Clamped.
}

TEST(InterpTest, InverseDecreasing) {
  LinearTable T{{0.0, 30.0}, {1.0, 10.0}, {2.0, 0.0}};
  EXPECT_DOUBLE_EQ(T.inverse(20.0), 0.5);
  EXPECT_DOUBLE_EQ(T.inverse(5.0), 1.5);
}

TEST(InterpTest, VectorConstructor) {
  LinearTable T(std::vector<double>{0.0, 2.0}, std::vector<double>{1.0, 5.0});
  EXPECT_DOUBLE_EQ(T.evaluate(1.0), 3.0);
  EXPECT_EQ(T.size(), 2u);
  EXPECT_DOUBLE_EQ(T.minX(), 0.0);
  EXPECT_DOUBLE_EQ(T.maxX(), 2.0);
}

//===----------------------------------------------------------------------===//
// Table
//===----------------------------------------------------------------------===//

TEST(TableTest, RendersAlignedColumns) {
  Table T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"long-name", "22"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(Out.find("| long-name | 22    |"), std::string::npos);
}

TEST(TableTest, SeparatorRows) {
  Table T({"x"});
  T.addRow({"1"});
  T.addSeparator();
  T.addRow({"2"});
  std::string Out = T.render();
  // Header separator plus the explicit one.
  size_t First = Out.find("|---");
  ASSERT_NE(First, std::string::npos);
  EXPECT_NE(Out.find("|---", First + 1), std::string::npos);
}

//===----------------------------------------------------------------------===//
// CsvWriter
//===----------------------------------------------------------------------===//

TEST(CsvTest, RendersHeaderAndRows) {
  CsvWriter W({"t", "temp"});
  W.addNumericRow({0.0, 25.5});
  W.addRow({"1", "note"});
  std::string Out = W.render();
  EXPECT_EQ(Out, "t,temp\n0,25.5\n1,note\n");
}

TEST(CsvTest, EscapesSpecialCharacters) {
  CsvWriter W({"a"});
  W.addRow({"x,y"});
  W.addRow({"say \"hi\""});
  std::string Out = W.render();
  EXPECT_NE(Out.find("\"x,y\""), std::string::npos);
  EXPECT_NE(Out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(CsvTest, WritesFile) {
  CsvWriter W({"v"});
  W.addNumericRow({1.25});
  std::string Path = testing::TempDir() + "/skatsim_csv_test.csv";
  ASSERT_TRUE(W.writeFile(Path).isOk());
  std::FILE *F = std::fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  char Buf[64] = {};
  size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  EXPECT_EQ(std::string(Buf, N), "v\n1.25\n");
}

//===----------------------------------------------------------------------===//
// RandomEngine streams (the seed+stream scheme sweeps rely on)
//===----------------------------------------------------------------------===//

TEST(RandomStreamTest, EqualSeedStreamPairsAgree) {
  RandomEngine A(99, 3), B(99, 3);
  for (int I = 0; I != 64; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomStreamTest, StreamsAreDisjointFromEachOtherAndTheBase) {
  RandomEngine Stream3(99, 3), Stream4(99, 4), Base(99), Stream0(99, 0);
  bool DiffersFromSibling = false;
  bool DiffersFromBase = false;
  bool Stream0DiffersFromBase = false;
  RandomEngine Probe(99, 3);
  RandomEngine BaseProbe(99);
  for (int I = 0; I != 64; ++I) {
    uint64_t V = Probe.next();
    DiffersFromSibling = DiffersFromSibling || V != Stream4.next();
    DiffersFromBase = DiffersFromBase || V != Base.next();
    Stream0DiffersFromBase =
        Stream0DiffersFromBase || Stream0.next() != BaseProbe.next();
  }
  EXPECT_TRUE(DiffersFromSibling);
  EXPECT_TRUE(DiffersFromBase);
  // Stream 0 is deliberately NOT the single-seed sequence.
  EXPECT_TRUE(Stream0DiffersFromBase);
}

TEST(RandomStreamTest, WeibullShapeOneIsExponential) {
  // Shape 1 reduces to an exponential with mean == scale.
  RandomEngine R(31);
  const int NumSamples = 20000;
  double Sum = 0.0;
  for (int I = 0; I != NumSamples; ++I) {
    double Sample = R.weibullSample(1.0, 5.0);
    ASSERT_GE(Sample, 0.0);
    Sum += Sample;
  }
  EXPECT_NEAR(Sum / NumSamples, 5.0, 0.15);
}

TEST(RandomStreamTest, WeibullWearOutConcentratesNearScale) {
  // Large shape: the distribution tightens around the scale parameter.
  RandomEngine R(37);
  const int NumSamples = 5000;
  int Near = 0;
  for (int I = 0; I != NumSamples; ++I) {
    double Sample = R.weibullSample(8.0, 10.0);
    Near += Sample > 7.0 && Sample < 13.0;
  }
  EXPECT_GT(Near, NumSamples * 9 / 10);
}

//===----------------------------------------------------------------------===//
// parallelFor
//===----------------------------------------------------------------------===//

TEST(ParallelForTest, VisitsEveryItemExactlyOnce) {
  std::vector<size_t> Slot(257, static_cast<size_t>(-1));
  parallelFor(4, Slot.size(), [&Slot](size_t Item) { Slot[Item] = Item * Item; });
  for (size_t I = 0; I != Slot.size(); ++I)
    EXPECT_EQ(Slot[I], I * I);
}

TEST(ParallelForTest, SerialAndEmptyLoopsWork) {
  int Calls = 0;
  parallelFor(1, 5, [&Calls](size_t) { ++Calls; });
  EXPECT_EQ(Calls, 5);
  parallelFor(8, 0, [&Calls](size_t) { ++Calls; });
  EXPECT_EQ(Calls, 5);
}

TEST(ParallelForTest, ClampThreadCountBounds) {
  EXPECT_EQ(clampThreadCount(1), 1);
  EXPECT_GE(clampThreadCount(0), 1);  // 0 = all hardware threads.
  EXPECT_GE(clampThreadCount(-4), 1); // Negative likewise.
  EXPECT_LE(clampThreadCount(1 << 20),
            static_cast<int>(std::thread::hardware_concurrency()));
}
