//===- tests/scheduler_test.cpp - Rack scheduler tests ------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/Scheduler.h"

#include "core/Designs.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace rcs;
using namespace rcs::workload;

namespace {

rcsystem::RackConfig smallRack() {
  rcsystem::RackConfig Rack = core::makeSkatRack();
  Rack.NumModules = 3; // Keeps solver work small in unit tests.
  return Rack;
}

} // namespace

TEST(SchedulerTest, PlacesAllJobsAndComputesMakespan) {
  std::vector<Job> Jobs = {
      {"a", {0.9, 1.0}, 48, 2.0, 0.0},
      {"b", {0.9, 1.0}, 48, 1.0, 0.0},
      {"c", {0.6, 1.0}, 96, 3.0, 0.0},
  };
  auto Result = scheduleOnRack(smallRack(), core::makeNominalConditions(),
                               Jobs, PlacementPolicy::FirstFit);
  ASSERT_TRUE(Result.hasValue()) << Result.message();
  ASSERT_EQ(Result->Entries.size(), 3u);
  for (const ScheduleEntry &Entry : Result->Entries) {
    EXPECT_GE(Entry.StartHour, 0.0);
    EXPECT_GT(Entry.EndHour, Entry.StartHour);
    EXPECT_GE(Entry.ModuleIndex, 0);
    EXPECT_LT(Entry.ModuleIndex, 3);
  }
  // Everything fits concurrently: makespan is the longest job.
  EXPECT_NEAR(Result->MakespanHours, 3.0, 1e-9);
  EXPECT_GT(Result->EnergyKwh, 0.0);
  EXPECT_GT(Result->PeakJunctionC, 30.0);
  EXPECT_EQ(Result->ThermalViolations, 0);
}

TEST(SchedulerTest, QueuesWhenRackIsFull) {
  // Four 96-FPGA jobs on a 3-module rack: one must wait.
  std::vector<Job> Jobs(4, Job{"big", {0.9, 1.0}, 96, 1.0, 0.0});
  auto Result = scheduleOnRack(smallRack(), core::makeNominalConditions(),
                               Jobs, PlacementPolicy::FirstFit);
  ASSERT_TRUE(Result.hasValue()) << Result.message();
  EXPECT_NEAR(Result->MakespanHours, 2.0, 1e-9);
  int SecondWave = 0;
  for (const ScheduleEntry &Entry : Result->Entries)
    SecondWave += Entry.StartHour > 0.5;
  EXPECT_EQ(SecondWave, 1);
}

TEST(SchedulerTest, RejectsOversizedJob) {
  std::vector<Job> Jobs = {{"monster", {0.9, 1.0}, 200, 1.0, 0.0}};
  auto Result = scheduleOnRack(smallRack(), core::makeNominalConditions(),
                               Jobs, PlacementPolicy::FirstFit);
  EXPECT_FALSE(Result.hasValue());
}

TEST(SchedulerTest, FifoRespectsSubmitTimes) {
  std::vector<Job> Jobs = {
      {"late", {0.9, 1.0}, 8, 1.0, 2.0},
      {"early", {0.9, 1.0}, 8, 1.0, 0.0},
  };
  auto Result = scheduleOnRack(smallRack(), core::makeNominalConditions(),
                               Jobs, PlacementPolicy::FirstFit);
  ASSERT_TRUE(Result.hasValue());
  EXPECT_NEAR(Result->Entries[1].StartHour, 0.0, 1e-9); // "early".
  EXPECT_NEAR(Result->Entries[0].StartHour, 2.0, 1e-9); // "late".
}

TEST(SchedulerTest, CoolestFirstSpreadsLoad) {
  // Six half-module jobs: first-fit stacks two per module; coolest-first
  // spreads them one per module before doubling up.
  std::vector<Job> Jobs(6, Job{"half", {0.95, 1.0}, 48, 4.0, 0.0});
  auto FirstFit = scheduleOnRack(smallRack(), core::makeNominalConditions(),
                                 Jobs, PlacementPolicy::FirstFit);
  auto Coolest =
      scheduleOnRack(smallRack(), core::makeNominalConditions(), Jobs,
                     PlacementPolicy::CoolestFirst);
  ASSERT_TRUE(FirstFit.hasValue());
  ASSERT_TRUE(Coolest.hasValue());
  // First fit puts the first two jobs on module 0.
  EXPECT_EQ(FirstFit->Entries[0].ModuleIndex, 0);
  EXPECT_EQ(FirstFit->Entries[1].ModuleIndex, 0);
  // Coolest-first uses three distinct modules for the first three jobs.
  std::vector<int> FirstThree = {Coolest->Entries[0].ModuleIndex,
                                 Coolest->Entries[1].ModuleIndex,
                                 Coolest->Entries[2].ModuleIndex};
  std::sort(FirstThree.begin(), FirstThree.end());
  EXPECT_EQ(FirstThree, (std::vector<int>{0, 1, 2}));
}

TEST(SchedulerTest, UtilizationBounded) {
  std::vector<Job> Jobs = makeStandardJobMix(12, 9);
  auto Result = scheduleOnRack(smallRack(), core::makeNominalConditions(),
                               Jobs, PlacementPolicy::LoadSpread);
  ASSERT_TRUE(Result.hasValue()) << Result.message();
  EXPECT_GT(Result->MeanUtilization, 0.0);
  EXPECT_LE(Result->MeanUtilization, 1.0);
  EXPECT_GT(Result->MakespanHours, 0.5);
}

TEST(SchedulerTest, StandardMixDeterministic) {
  auto A = makeStandardJobMix(20, 123);
  auto B = makeStandardJobMix(20, 123);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].NumFpgas, B[I].NumFpgas);
    EXPECT_DOUBLE_EQ(A[I].DurationHours, B[I].DurationHours);
    EXPECT_DOUBLE_EQ(A[I].SubmitHour, B[I].SubmitHour);
  }
  for (const Job &J : A) {
    EXPECT_GE(J.NumFpgas, 8);
    EXPECT_LE(J.NumFpgas, 48);
    EXPECT_GT(J.DurationHours, 0.0);
  }
}

TEST(SchedulerTest, ImmersionKeepsMixInLongLifeBand) {
  // Whatever the mix, the SKAT rack never leaves the 70 C band - the
  // operational meaning of the paper's thermal margins.
  std::vector<Job> Jobs = makeStandardJobMix(16, 77);
  auto Result = scheduleOnRack(smallRack(), core::makeNominalConditions(),
                               Jobs, PlacementPolicy::CoolestFirst);
  ASSERT_TRUE(Result.hasValue());
  EXPECT_EQ(Result->ThermalViolations, 0);
  EXPECT_LT(Result->PeakJunctionC, 55.0);
}

TEST(SchedulerTest, BackfillShortensMakespan) {
  // Head job needs a whole module while the rack is busy; two short
  // half-module jobs behind it can run in the gap.
  std::vector<Job> Jobs = {
      {"wall-a", {0.9, 1.0}, 96, 2.0, 0.0},
      {"wall-b", {0.9, 1.0}, 96, 2.0, 0.0},
      {"wall-c", {0.9, 1.0}, 48, 2.0, 0.0},
      {"head", {0.9, 1.0}, 96, 2.0, 0.1},  // Blocked until a wall ends.
      {"short-1", {0.9, 1.0}, 48, 1.0, 0.2},
      {"short-2", {0.9, 1.0}, 48, 1.0, 0.2},
  };
  auto Fifo = scheduleOnRack(smallRack(), core::makeNominalConditions(),
                             Jobs, PlacementPolicy::FirstFit,
                             /*Backfill=*/false);
  auto Backfilled = scheduleOnRack(smallRack(),
                                   core::makeNominalConditions(), Jobs,
                                   PlacementPolicy::FirstFit,
                                   /*Backfill=*/true);
  ASSERT_TRUE(Fifo.hasValue()) << Fifo.message();
  ASSERT_TRUE(Backfilled.hasValue()) << Backfilled.message();
  // Without backfill, the shorts start only after the head clears.
  double FifoShortStart = Fifo->Entries[4].StartHour;
  double BackfillShortStart = Backfilled->Entries[4].StartHour;
  EXPECT_LT(BackfillShortStart, FifoShortStart);
  EXPECT_LE(Backfilled->MakespanHours, Fifo->MakespanHours);
  // Backfill never delays the head (EASY guarantee).
  EXPECT_LE(Backfilled->Entries[3].StartHour,
            Fifo->Entries[3].StartHour + 1e-9);
}

TEST(SchedulerTest, BackfillSkipsLongerJobs) {
  std::vector<Job> Jobs = {
      {"wall-a", {0.9, 1.0}, 96, 2.0, 0.0},
      {"wall-b", {0.9, 1.0}, 96, 2.0, 0.0},
      {"wall-c", {0.9, 1.0}, 48, 2.0, 0.0},
      {"head", {0.9, 1.0}, 96, 1.0, 0.1},
      {"too-long", {0.9, 1.0}, 48, 5.0, 0.2}, // Longer than the head.
  };
  auto Result = scheduleOnRack(smallRack(), core::makeNominalConditions(),
                               Jobs, PlacementPolicy::FirstFit,
                               /*Backfill=*/true);
  ASSERT_TRUE(Result.hasValue()) << Result.message();
  // "too-long" must not have jumped the blocked head.
  EXPECT_GE(Result->Entries[4].StartHour, Result->Entries[3].StartHour);
}

//===----------------------------------------------------------------------===//
// Migration planning (the faults engine's graceful-degradation hook)
//===----------------------------------------------------------------------===//

TEST(MigrationTest, CoolestFirstFillsColdModulesFirst) {
  std::vector<double> Utilization = {0.9, 0.2, 0.3, 0.1};
  std::vector<bool> Available = {false, true, true, true};
  std::vector<double> TempC = {80.0, 60.0, 40.0, 50.0};
  MigrationPlan Plan = planMigration(Utilization, Available, TempC, 0, 1.0,
                                     PlacementPolicy::CoolestFirst);
  // Module 2 is coolest (0.7 headroom), module 3 next (takes the rest).
  ASSERT_EQ(Plan.Targets.size(), 2u);
  EXPECT_EQ(Plan.Targets[0], 2);
  EXPECT_EQ(Plan.Targets[1], 3);
  EXPECT_DOUBLE_EQ(Plan.AddedUtilization[2], 0.7);
  EXPECT_DOUBLE_EQ(Plan.AddedUtilization[3], 0.2);
  EXPECT_DOUBLE_EQ(Plan.AddedUtilization[0], 0.0);
  EXPECT_DOUBLE_EQ(Plan.UnplacedUtilization, 0.0);
}

TEST(MigrationTest, OverflowIsReportedUnplaced) {
  std::vector<double> Utilization = {0.8, 0.45, 0.4};
  std::vector<bool> Available = {false, true, true};
  std::vector<double> TempC = {70.0, 50.0, 50.0};
  MigrationPlan Plan = planMigration(Utilization, Available, TempC, 0, 0.5,
                                     PlacementPolicy::FirstFit);
  double Moved = 0.0;
  for (double Added : Plan.AddedUtilization)
    Moved += Added;
  EXPECT_DOUBLE_EQ(Moved + Plan.UnplacedUtilization, 0.8);
  EXPECT_DOUBLE_EQ(Plan.AddedUtilization[1], 0.05);
  EXPECT_DOUBLE_EQ(Plan.AddedUtilization[2], 0.1);
  EXPECT_DOUBLE_EQ(Plan.UnplacedUtilization, 0.65);
}

TEST(MigrationTest, UnavailableModulesReceiveNothing) {
  std::vector<double> Utilization = {0.5, 0.0, 0.0};
  std::vector<bool> Available = {false, false, true};
  std::vector<double> TempC = {60.0, 30.0, 90.0};
  MigrationPlan Plan = planMigration(Utilization, Available, TempC, 0, 1.0,
                                     PlacementPolicy::CoolestFirst);
  // Module 1 is coolest but down; everything lands on module 2.
  EXPECT_DOUBLE_EQ(Plan.AddedUtilization[1], 0.0);
  EXPECT_DOUBLE_EQ(Plan.AddedUtilization[2], 0.5);
  ASSERT_EQ(Plan.Targets.size(), 1u);
  EXPECT_EQ(Plan.Targets[0], 2);
}

TEST(MigrationTest, IdleSourceYieldsEmptyPlan) {
  std::vector<double> Utilization = {0.0, 0.2};
  std::vector<bool> Available = {false, true};
  std::vector<double> TempC = {50.0, 50.0};
  MigrationPlan Plan = planMigration(Utilization, Available, TempC, 0, 1.0,
                                     PlacementPolicy::LoadSpread);
  EXPECT_TRUE(Plan.Targets.empty());
  EXPECT_DOUBLE_EQ(Plan.UnplacedUtilization, 0.0);
}
