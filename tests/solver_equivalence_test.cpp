//===- tests/solver_equivalence_test.cpp - Fast-path vs seed-path checks -----===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The solver overhaul (cached LU factorizations, analytic hydraulic
/// Jacobians, warm starts, resampled property tables) must not change
/// results: the cached thermal paths are bit-identical to the dense seed
/// path by construction, and the hydraulic/property fast paths agree to
/// well inside solver tolerance. These tests pin those contracts on the
/// topologies the simulators actually use.
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "fluids/Fluid.h"
#include "hydraulics/InternalLoop.h"
#include "system/Module.h"
#include "hydraulics/Manifold.h"
#include "support/Interp.h"
#include "support/Numerics.h"
#include "telemetry/Telemetry.h"
#include "thermal/Network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

using namespace rcs;
using namespace rcs::hydraulics;
using namespace rcs::thermal;

//===----------------------------------------------------------------------===//
// LU factorization vs solveDense
//===----------------------------------------------------------------------===//

namespace {

/// Deterministic well-conditioned test matrix (diagonally dominant with
/// varied off-diagonal structure).
Matrix makeTestMatrix(size_t N) {
  Matrix A(N, N);
  for (size_t I = 0; I != N; ++I) {
    double RowSum = 0.0;
    for (size_t J = 0; J != N; ++J) {
      if (I == J)
        continue;
      double V = std::sin(0.7 * static_cast<double>(I * N + J) + 0.3);
      A.at(I, J) = V;
      RowSum += std::fabs(V);
    }
    A.at(I, I) = RowSum + 1.0 + static_cast<double>(I);
  }
  return A;
}

std::vector<double> makeTestRhs(size_t N, double Phase) {
  std::vector<double> B(N);
  for (size_t I = 0; I != N; ++I)
    B[I] = std::cos(1.3 * static_cast<double>(I) + Phase);
  return B;
}

} // namespace

TEST(LuFactorizationTest, MatchesSolveDenseBitForBit) {
  for (size_t N : {1u, 2u, 5u, 17u, 40u}) {
    Matrix A = makeTestMatrix(N);
    LuFactorization Lu;
    ASSERT_TRUE(Lu.factor(A).isOk());
    EXPECT_TRUE(Lu.valid());
    EXPECT_EQ(Lu.size(), N);
    for (double Phase : {0.0, 1.1, 2.9}) {
      std::vector<double> B = makeTestRhs(N, Phase);
      Expected<std::vector<double>> Dense = solveDense(A, B);
      ASSERT_TRUE(Dense);
      std::vector<double> Cached = Lu.solve(B);
      ASSERT_EQ(Cached.size(), Dense->size());
      for (size_t I = 0; I != N; ++I)
        EXPECT_EQ(Cached[I], (*Dense)[I])
            << "N=" << N << " Phase=" << Phase << " entry " << I;
    }
  }
}

TEST(LuFactorizationTest, SingularMatrixReportsSameErrorAsSolveDense) {
  Matrix A(3, 3);
  A.at(0, 0) = 1.0;
  A.at(1, 0) = 2.0; // Rows 1 and 2 are multiples of row 0.
  A.at(2, 0) = 3.0;
  LuFactorization Lu;
  Status FactorStatus = Lu.factor(A);
  ASSERT_FALSE(FactorStatus.isOk());
  EXPECT_FALSE(Lu.valid());
  Expected<std::vector<double>> Dense = solveDense(A, {1.0, 2.0, 3.0});
  ASSERT_FALSE(Dense);
  EXPECT_EQ(FactorStatus.message(), Dense.message());
}

TEST(NewtonSystemTest, AnalyticJacobianFindsTheSameRoot) {
  // F(x, y) = (x^2 + y - 3, x + y^2 - 5): smooth, one root near (1.2, 1.6).
  auto Residual = [](const std::vector<double> &X) {
    return std::vector<double>{X[0] * X[0] + X[1] - 3.0,
                               X[0] + X[1] * X[1] - 5.0};
  };
  NewtonOptions FdOptions;
  NewtonResult Fd = solveNewtonSystem(Residual, {1.0, 1.0}, FdOptions);
  ASSERT_TRUE(Fd.Converged);

  NewtonOptions AnalyticOptions;
  AnalyticOptions.Jacobian = [](const std::vector<double> &X,
                                const std::vector<double> &) {
    Matrix J(2, 2);
    J.at(0, 0) = 2.0 * X[0];
    J.at(0, 1) = 1.0;
    J.at(1, 0) = 1.0;
    J.at(1, 1) = 2.0 * X[1];
    return J;
  };
  NewtonResult Analytic =
      solveNewtonSystem(Residual, {1.0, 1.0}, AnalyticOptions);
  ASSERT_TRUE(Analytic.Converged);
  EXPECT_NEAR(Analytic.Solution[0], Fd.Solution[0], 1e-8);
  EXPECT_NEAR(Analytic.Solution[1], Fd.Solution[1], 1e-8);
  EXPECT_LE(Analytic.Iterations, Fd.Iterations + 1);
}

//===----------------------------------------------------------------------===//
// Thermal network: cached factorization vs the seed dense path
//===----------------------------------------------------------------------===//

namespace {

struct LadderHandles {
  std::vector<NodeId> Internal;
  NodeId Boundary = 0;
};

/// An N-node RC ladder chained to one boundary: the topology of the
/// BM_ThermalTransientStep benchmark and the stacked-die models.
LadderHandles buildLadder(ThermalNetwork &Net, int N) {
  LadderHandles H;
  H.Boundary = Net.addBoundaryNode("sink", 20.0);
  NodeId Prev = H.Boundary;
  for (int I = 0; I != N; ++I) {
    NodeId Node =
        Net.addNode("n" + std::to_string(I), 50.0 + 3.0 * I);
    Net.addConductance(Prev, Node, 2.0 + 0.1 * I);
    Net.addHeatSource(Node, 5.0 + 0.5 * I);
    H.Internal.push_back(Node);
    Prev = Node;
  }
  return H;
}

} // namespace

TEST(ThermalEquivalenceTest, SteadyStateCachedMatchesUncachedExactly) {
  ThermalNetwork Cached, Uncached;
  buildLadder(Cached, 24);
  buildLadder(Uncached, 24);
  Uncached.setFactorCaching(false);

  for (int Round = 0; Round != 3; ++Round) {
    Expected<std::vector<double>> A = Cached.solveSteadyState();
    Expected<std::vector<double>> B = Uncached.solveSteadyState();
    ASSERT_TRUE(A);
    ASSERT_TRUE(B);
    ASSERT_EQ(A->size(), B->size());
    for (size_t I = 0; I != A->size(); ++I)
      EXPECT_EQ((*A)[I], (*B)[I]) << "round " << Round << " node " << I;
  }
}

TEST(ThermalEquivalenceTest, RhsOnlyMutationsReuseTheFactorExactly) {
  ThermalNetwork Cached, Uncached;
  LadderHandles HC = buildLadder(Cached, 16);
  LadderHandles HU = buildLadder(Uncached, 16);
  Uncached.setFactorCaching(false);

  // Prime the cache, then mutate only sources and boundary temperature:
  // the factorization must survive and still match the dense path.
  ASSERT_TRUE(Cached.solveSteadyState());
  for (int Round = 0; Round != 3; ++Round) {
    double Power = 12.0 + 2.0 * Round;
    Cached.setHeatSource(HC.Internal[3], Power);
    Uncached.setHeatSource(HU.Internal[3], Power);
    Cached.setBoundaryTemp(HC.Boundary, 18.0 + Round);
    Uncached.setBoundaryTemp(HU.Boundary, 18.0 + Round);
    Expected<std::vector<double>> A = Cached.solveSteadyState();
    Expected<std::vector<double>> B = Uncached.solveSteadyState();
    ASSERT_TRUE(A);
    ASSERT_TRUE(B);
    for (size_t I = 0; I != A->size(); ++I)
      EXPECT_EQ((*A)[I], (*B)[I]) << "round " << Round << " node " << I;
  }
}

TEST(ThermalEquivalenceTest, TransientTrajectoriesMatchThroughMutations) {
  ThermalNetwork Cached, Uncached;
  LadderHandles HC = buildLadder(Cached, 12);
  LadderHandles HU = buildLadder(Uncached, 12);
  Uncached.setFactorCaching(false);

  std::vector<double> StateA(Cached.numNodes(), 22.0);
  std::vector<double> StateB = StateA;
  const double DtS = 2.0;
  for (int Step = 0; Step != 50; ++Step) {
    // Mid-run numeric mutations: conductance at step 20, capacitance at
    // step 35 — the cached path must refactor and stay exact.
    if (Step == 20) {
      Cached.setConductance(HC.Internal[2], HC.Internal[3], 7.5);
      Uncached.setConductance(HU.Internal[2], HU.Internal[3], 7.5);
    }
    if (Step == 35) {
      Cached.setCapacitance(HC.Internal[5], 90.0);
      Uncached.setCapacitance(HU.Internal[5], 90.0);
    }
    // RHS-only mutations every step.
    Cached.setHeatSource(HC.Internal[0], 5.0 + 0.1 * Step);
    Uncached.setHeatSource(HU.Internal[0], 5.0 + 0.1 * Step);
    ASSERT_TRUE(Cached.stepTransient(StateA, DtS).isOk());
    ASSERT_TRUE(Uncached.stepTransient(StateB, DtS).isOk());
    for (size_t I = 0; I != StateA.size(); ++I)
      EXPECT_EQ(StateA[I], StateB[I]) << "step " << Step << " node " << I;
  }
}

TEST(ThermalEquivalenceTest, ChangingTimeStepRefactorsExactly) {
  ThermalNetwork Cached, Uncached;
  buildLadder(Cached, 8);
  buildLadder(Uncached, 8);
  Uncached.setFactorCaching(false);

  std::vector<double> StateA(Cached.numNodes(), 25.0);
  std::vector<double> StateB = StateA;
  for (double DtS : {1.0, 1.0, 4.0, 1.0, 0.5}) {
    ASSERT_TRUE(Cached.stepTransient(StateA, DtS).isOk());
    ASSERT_TRUE(Uncached.stepTransient(StateB, DtS).isOk());
    for (size_t I = 0; I != StateA.size(); ++I)
      EXPECT_EQ(StateA[I], StateB[I]);
  }
}

TEST(ThermalEquivalenceTest, SingularNetworkStillReportsTheSeedError) {
  // An internal node with no path to any boundary must fail identically
  // on the cached and uncached paths.
  for (bool Caching : {true, false}) {
    ThermalNetwork Net;
    Net.setFactorCaching(Caching);
    Net.addBoundaryNode("sink", 20.0);
    Net.addNode("orphan", 10.0);
    Expected<std::vector<double>> Result = Net.solveSteadyState();
    ASSERT_FALSE(Result);
    EXPECT_NE(Result.message().find("thermal network is singular"),
              std::string::npos);
  }
}

//===----------------------------------------------------------------------===//
// Thermal network: sparse LDL^T path vs the dense path
//===----------------------------------------------------------------------===//

// The sparse path is tolerance-equivalent to the dense path, not bitwise:
// the fill-reducing permutation changes the elimination order. The
// tolerances mirror the hydraulic analytic-vs-FD pattern below.

namespace {

/// Forces every solve of \p Net through the sparse path.
void forceSparse(ThermalNetwork &Net) {
  Net.setSparseSolver(true);
  Net.setSparseThreshold(1);
}

} // namespace

TEST(SparseEquivalenceTest, SteadyStateMatchesDenseAcrossLadderSizes) {
  for (int N : {8, 32, 64, 128, 256}) {
    ThermalNetwork Sparse, Dense;
    buildLadder(Sparse, N);
    buildLadder(Dense, N);
    forceSparse(Sparse);
    Dense.setSparseSolver(false);

    Expected<std::vector<double>> A = Sparse.solveSteadyState();
    Expected<std::vector<double>> B = Dense.solveSteadyState();
    ASSERT_TRUE(A);
    ASSERT_TRUE(B);
    ASSERT_EQ(A->size(), B->size());
    for (size_t I = 0; I != A->size(); ++I)
      EXPECT_NEAR((*A)[I], (*B)[I], 1e-7 * std::max(1.0, std::fabs((*B)[I])))
          << "N=" << N << " node " << I;
    // Both must satisfy energy conservation at the same scale.
    EXPECT_NEAR(Sparse.steadyStateResidualW(*A), 0.0, 1e-6);
  }
}

TEST(SparseEquivalenceTest, TransientTrajectoriesMatchThroughEveryMutatorClass) {
  ThermalNetwork Sparse, Dense;
  LadderHandles HS = buildLadder(Sparse, 48);
  LadderHandles HD = buildLadder(Dense, 48);
  forceSparse(Sparse);
  Dense.setSparseSolver(false);

  std::vector<double> StateA(Sparse.numNodes(), 22.0);
  std::vector<double> StateB = StateA;
  double DtS = 2.0;
  for (int Step = 0; Step != 60; ++Step) {
    // Every mutator class mid-run: conductance edit (numeric-only
    // refactorization), capacitance edit (transient numeric only), a new
    // edge (pattern change, symbolic redo), and a dt change.
    if (Step == 15) {
      Sparse.setConductance(HS.Internal[2], HS.Internal[3], 7.5);
      Dense.setConductance(HD.Internal[2], HD.Internal[3], 7.5);
    }
    if (Step == 25) {
      Sparse.setCapacitance(HS.Internal[5], 90.0);
      Dense.setCapacitance(HD.Internal[5], 90.0);
    }
    if (Step == 35) {
      Sparse.addConductance(HS.Internal[10], HS.Internal[40], 1.25);
      Dense.addConductance(HD.Internal[10], HD.Internal[40], 1.25);
    }
    if (Step == 45)
      DtS = 0.5;
    // RHS-only mutations every step keep the factors warm on both paths.
    Sparse.setHeatSource(HS.Internal[0], 5.0 + 0.1 * Step);
    Dense.setHeatSource(HD.Internal[0], 5.0 + 0.1 * Step);
    Sparse.setBoundaryTemp(HS.Boundary, 20.0 + 0.02 * Step);
    Dense.setBoundaryTemp(HD.Boundary, 20.0 + 0.02 * Step);
    ASSERT_TRUE(Sparse.stepTransient(StateA, DtS).isOk());
    ASSERT_TRUE(Dense.stepTransient(StateB, DtS).isOk());
    for (size_t I = 0; I != StateA.size(); ++I)
      EXPECT_NEAR(StateA[I], StateB[I],
                  1e-7 * std::max(1.0, std::fabs(StateB[I])))
          << "step " << Step << " node " << I;
  }
}

TEST(SparseEquivalenceTest, RhsOnlyMutationsReuseTheNumericFactor) {
  ThermalNetwork Net;
  LadderHandles H = buildLadder(Net, 160);
  forceSparse(Net);

  // Prime both factors, then mutate only the right-hand side: the
  // telemetry factorization counter must not move (the acceptance
  // criterion for the symbolic/numeric split).
  ASSERT_TRUE(Net.solveSteadyState());
  std::vector<double> State(Net.numNodes(), 22.0);
  ASSERT_TRUE(Net.stepTransient(State, 1.0).isOk());

  telemetry::Counter &Factorizations =
      telemetry::Registry::global().counter("thermal.network.factorizations");
  telemetry::Counter &Reuses =
      telemetry::Registry::global().counter("thermal.network.factor_reuses");
  uint64_t FactorsBefore = Factorizations.value();
  uint64_t ReusesBefore = Reuses.value();
  for (int Round = 0; Round != 5; ++Round) {
    Net.setHeatSource(H.Internal[7], 10.0 + Round);
    Net.setBoundaryTemp(H.Boundary, 18.0 + 0.5 * Round);
    ASSERT_TRUE(Net.solveSteadyState());
    ASSERT_TRUE(Net.stepTransient(State, 1.0).isOk());
  }
  EXPECT_EQ(Factorizations.value(), FactorsBefore)
      << "RHS-only mutations must reuse the numeric factor";
  EXPECT_EQ(Reuses.value(), ReusesBefore + 10);
}

TEST(SparseEquivalenceTest, ConductanceEditRefactorsNumericOnly) {
  ThermalNetwork Net;
  LadderHandles H = buildLadder(Net, 160);
  forceSparse(Net);
  ASSERT_TRUE(Net.solveSteadyState());

  telemetry::Counter &Symbolic =
      telemetry::Registry::global().counter("thermal.network.sparse_symbolic");
  telemetry::Counter &Factorizations =
      telemetry::Registry::global().counter("thermal.network.factorizations");
  uint64_t SymbolicBefore = Symbolic.value();
  uint64_t FactorsBefore = Factorizations.value();

  // Value edit on an existing edge: numeric refactorization, no symbolic.
  Net.setConductance(H.Internal[3], H.Internal[4], 9.0);
  ASSERT_TRUE(Net.solveSteadyState());
  EXPECT_EQ(Symbolic.value(), SymbolicBefore);
  EXPECT_EQ(Factorizations.value(), FactorsBefore + 1);

  // A new edge changes the pattern: the symbolic analysis must rerun.
  Net.addConductance(H.Internal[0], H.Internal[100], 0.75);
  ASSERT_TRUE(Net.solveSteadyState());
  EXPECT_EQ(Symbolic.value(), SymbolicBefore + 1);
  EXPECT_EQ(Factorizations.value(), FactorsBefore + 2);
}

TEST(SparseEquivalenceTest, SingularNetworkReportsTheSeedError) {
  // Orphan internal node: the sparse path must report the same seed
  // error message as the dense paths.
  for (bool UseSparse : {true, false}) {
    ThermalNetwork Net;
    Net.setSparseSolver(UseSparse);
    Net.setSparseThreshold(1);
    Net.addBoundaryNode("sink", 20.0);
    Net.addNode("orphan", 10.0);
    Net.addNode("connected", 10.0);
    Net.addConductance(0, 2, 2.0);
    Expected<std::vector<double>> Result = Net.solveSteadyState();
    ASSERT_FALSE(Result);
    EXPECT_NE(Result.message().find("thermal network is singular"),
              std::string::npos)
        << "sparse=" << UseSparse;
  }
}

TEST(SparseEquivalenceTest, BelowThresholdStaysOnTheBitExactDensePath) {
  // With the default threshold, a small network solves dense whether the
  // sparse solver is enabled or not — bit-identical results.
  ThermalNetwork WithSparse, WithoutSparse;
  buildLadder(WithSparse, 16);
  buildLadder(WithoutSparse, 16);
  ASSERT_TRUE(WithSparse.sparseSolverEnabled());
  WithoutSparse.setSparseSolver(false);
  EXPECT_EQ(WithSparse.sparseThresholdUnknowns(),
            ThermalNetwork::DefaultSparseThresholdUnknowns);

  Expected<std::vector<double>> A = WithSparse.solveSteadyState();
  Expected<std::vector<double>> B = WithoutSparse.solveSteadyState();
  ASSERT_TRUE(A);
  ASSERT_TRUE(B);
  for (size_t I = 0; I != A->size(); ++I)
    EXPECT_EQ((*A)[I], (*B)[I]);
}

TEST(SparseEquivalenceTest, SparseFactorsUseLessMemoryThanDense) {
  ThermalNetwork Sparse, Dense;
  buildLadder(Sparse, 256);
  buildLadder(Dense, 256);
  forceSparse(Sparse);
  Dense.setSparseSolver(false);
  ASSERT_TRUE(Sparse.solveSteadyState());
  ASSERT_TRUE(Dense.solveSteadyState());
  EXPECT_GT(Sparse.solverMemoryBytes(), 0u);
  EXPECT_LT(Sparse.solverMemoryBytes(), Dense.solverMemoryBytes() / 4);
}

//===----------------------------------------------------------------------===//
// Hydraulic network: analytic Jacobian and warm starts vs the FD seed path
//===----------------------------------------------------------------------===//

namespace {

FlowSolveOptions analyticOptions() {
  FlowSolveOptions Options;
  Options.Jacobian = FlowSolveOptions::JacobianKind::Analytic;
  return Options;
}

FlowSolveOptions fdOptions() {
  FlowSolveOptions Options;
  Options.Jacobian = FlowSolveOptions::JacobianKind::FiniteDifference;
  return Options;
}

} // namespace

TEST(HydraulicEquivalenceTest, AnalyticMatchesFiniteDifferenceOnRackLoops) {
  auto Water = fluids::makeWater();
  for (ManifoldLayout Layout :
       {ManifoldLayout::DirectReturn, ManifoldLayout::ReverseReturn}) {
    RackHydraulicsConfig Config;
    Config.Layout = Layout;
    RackHydraulics Rack = buildRackPrimaryLoop(Config);
    Expected<FlowSolution> Analytic =
        Rack.Network.solve(*Water, 16.0, 1e-3, analyticOptions());
    Expected<FlowSolution> Fd =
        Rack.Network.solve(*Water, 16.0, 1e-3, fdOptions());
    ASSERT_TRUE(Analytic);
    ASSERT_TRUE(Fd);
    ASSERT_EQ(Analytic->EdgeFlowsM3PerS.size(), Fd->EdgeFlowsM3PerS.size());
    // Both solves satisfy the same continuity tolerance; flows of ~1e-3
    // m^3/s must agree far inside it.
    for (size_t E = 0; E != Fd->EdgeFlowsM3PerS.size(); ++E)
      EXPECT_NEAR(Analytic->EdgeFlowsM3PerS[E], Fd->EdgeFlowsM3PerS[E], 1e-7)
          << "layout " << static_cast<int>(Layout) << " edge " << E;
  }
}

TEST(HydraulicEquivalenceTest, AnalyticMatchesFiniteDifferenceOnInternalLoop) {
  auto Oil = fluids::makeEngineeredDielectric();
  for (PlenumDesign Design :
       {PlenumDesign::UniformNarrow, PlenumDesign::TaperedReverse}) {
    InternalLoopConfig Config;
    Config.Design = Design;
    InternalLoop Loop = buildInternalLoop(Config);
    Expected<FlowSolution> Analytic =
        Loop.Network.solve(*Oil, 35.0, 2e-4, analyticOptions());
    Expected<FlowSolution> Fd =
        Loop.Network.solve(*Oil, 35.0, 2e-4, fdOptions());
    ASSERT_TRUE(Analytic);
    ASSERT_TRUE(Fd);
    for (size_t E = 0; E != Fd->EdgeFlowsM3PerS.size(); ++E)
      EXPECT_NEAR(Analytic->EdgeFlowsM3PerS[E], Fd->EdgeFlowsM3PerS[E], 1e-8)
          << "design " << static_cast<int>(Design) << " edge " << E;
  }
}

TEST(HydraulicEquivalenceTest, WarmStartReachesTheSameSolutionInFewerSteps) {
  auto Water = fluids::makeWater();
  RackHydraulics Rack = buildRackPrimaryLoop(RackHydraulicsConfig());
  Expected<FlowSolution> Cold =
      Rack.Network.solve(*Water, 16.0, 1e-3, FlowSolveOptions());
  ASSERT_TRUE(Cold);

  FlowSolveOptions Warm;
  Warm.WarmStartPressuresPa = Cold->JunctionPressuresPa;
  Expected<FlowSolution> Warmed = Rack.Network.solve(*Water, 16.0, 1e-3, Warm);
  ASSERT_TRUE(Warmed);
  EXPECT_LE(Warmed->NewtonIterations, Cold->NewtonIterations);
  for (size_t E = 0; E != Cold->EdgeFlowsM3PerS.size(); ++E)
    EXPECT_NEAR(Warmed->EdgeFlowsM3PerS[E], Cold->EdgeFlowsM3PerS[E], 1e-8);
}

TEST(HydraulicEquivalenceTest, WrongSizedWarmStartIsIgnored) {
  auto Water = fluids::makeWater();
  RackHydraulics Rack = buildRackPrimaryLoop(RackHydraulicsConfig());
  FlowSolveOptions Stale;
  Stale.WarmStartPressuresPa = {1.0, 2.0, 3.0}; // Wrong junction count.
  Expected<FlowSolution> Solution =
      Rack.Network.solve(*Water, 16.0, 1e-3, Stale);
  ASSERT_TRUE(Solution);
  Expected<FlowSolution> Reference =
      Rack.Network.solve(*Water, 16.0, 1e-3, FlowSolveOptions());
  ASSERT_TRUE(Reference);
  for (size_t E = 0; E != Reference->EdgeFlowsM3PerS.size(); ++E)
    EXPECT_EQ(Solution->EdgeFlowsM3PerS[E], Reference->EdgeFlowsM3PerS[E]);
}

//===----------------------------------------------------------------------===//
// Coupled module solve: warm start vs cold fixed point
//===----------------------------------------------------------------------===//

TEST(ModuleEquivalenceTest, WarmStartMatchesColdSolveOnEveryCoolingKind) {
  auto Conditions = core::makeNominalConditions();
  std::vector<rcsystem::ModuleConfig> Configs = {core::makeSkatModule(),
                                                 core::makeTaygetaModule()};
  Configs.push_back(core::makeSkatModule());
  Configs.back().Cooling = rcsystem::CoolingKind::ColdPlate;
  for (const rcsystem::ModuleConfig &Config : Configs) {
    rcsystem::ComputationalModule Module(Config);
    auto Cold = Module.solveSteadyState(Conditions);
    ASSERT_TRUE(Cold) << Config.Name;

    rcsystem::ModuleSolveOptions Options;
    Options.WarmStart = &*Cold;
    auto Warm = Module.solveSteadyState(Conditions, Config.Load, Options);
    ASSERT_TRUE(Warm) << Config.Name;
    // Both runs converge the same damped fixed point to its internal
    // tolerance; the warm one just starts at the answer.
    EXPECT_NEAR(Warm->MaxJunctionTempC, Cold->MaxJunctionTempC, 1e-5)
        << Config.Name;
    EXPECT_NEAR(Warm->TotalHeatW, Cold->TotalHeatW,
                1e-6 * Cold->TotalHeatW)
        << Config.Name;
    EXPECT_NEAR(Warm->CoolantHotTempC, Cold->CoolantHotTempC, 1e-5)
        << Config.Name;
    ASSERT_EQ(Warm->Fpgas.size(), Cold->Fpgas.size()) << Config.Name;
    for (size_t I = 0; I != Cold->Fpgas.size(); ++I)
      EXPECT_NEAR(Warm->Fpgas[I].JunctionTempC, Cold->Fpgas[I].JunctionTempC,
                  1e-5)
          << Config.Name << " fpga " << I;
  }
}

TEST(ModuleEquivalenceTest, MismatchedWarmStartIsIgnoredBitExactly) {
  auto Conditions = core::makeNominalConditions();
  rcsystem::ComputationalModule Module(core::makeSkatModule());
  auto Cold = Module.solveSteadyState(Conditions);
  ASSERT_TRUE(Cold);

  // A report from a differently-shaped module must not seed anything.
  rcsystem::ModuleConfig SmallConfig = core::makeSkatModule();
  SmallConfig.NumCcbs = 2;
  rcsystem::ComputationalModule Small(SmallConfig);
  auto SmallReport = Small.solveSteadyState(Conditions);
  ASSERT_TRUE(SmallReport);

  rcsystem::ModuleSolveOptions Stale;
  Stale.WarmStart = &*SmallReport;
  auto Guarded =
      Module.solveSteadyState(Conditions, Module.config().Load, Stale);
  ASSERT_TRUE(Guarded);
  EXPECT_EQ(Guarded->MaxJunctionTempC, Cold->MaxJunctionTempC);
  EXPECT_EQ(Guarded->TotalHeatW, Cold->TotalHeatW);
  EXPECT_EQ(Guarded->CoolantColdTempC, Cold->CoolantColdTempC);
}

//===----------------------------------------------------------------------===//
// Fluid property cache vs the exact tables
//===----------------------------------------------------------------------===//

TEST(PropertyCacheTest, UniformTableMatchesSourceOnAndOffGrid) {
  LinearTable Source{{0.0, 1.0}, {20.0, 3.0}, {60.0, 2.0}, {100.0, 5.0}};
  UniformTable Resampled(Source, 0.0, 100.0, 400); // 0.25-wide cells.
  EXPECT_EQ(Resampled.size(), 401u);
  // On-grid points (including every knot) are exact.
  for (double X = 0.0; X <= 100.0; X += 0.25)
    EXPECT_DOUBLE_EQ(Resampled.evaluate(X), Source.evaluate(X)) << X;
  // Off-grid points interpolate inside the same linear segment.
  for (double X : {0.1, 19.99, 20.01, 37.7, 59.3, 99.9})
    EXPECT_NEAR(Resampled.evaluate(X), Source.evaluate(X), 1e-12) << X;
  // Clamping matches the non-extrapolating source exactly.
  EXPECT_EQ(Resampled.evaluate(-40.0), Source.evaluate(-40.0));
  EXPECT_EQ(Resampled.evaluate(400.0), Source.evaluate(400.0));
}

TEST(PropertyCacheTest, CachedFluidPropertiesMatchExactTables) {
  std::vector<std::unique_ptr<fluids::Fluid>> Fluids;
  Fluids.push_back(fluids::makeAir());
  Fluids.push_back(fluids::makeWater());
  Fluids.push_back(fluids::makeGlycolSolution(0.3));
  Fluids.push_back(fluids::makeMineralOilMd45());
  Fluids.push_back(fluids::makeEngineeredDielectric());
  Fluids.push_back(fluids::makeWhiteMineralOil());
  for (const auto &F : Fluids) {
    auto Reference = [&](double TempC, int Property) {
      switch (Property) {
      case 0:
        return F->densityKgPerM3(TempC);
      case 1:
        return F->specificHeatJPerKgK(TempC);
      case 2:
        return F->thermalConductivityWPerMK(TempC);
      default:
        return F->dynamicViscosityPaS(TempC);
      }
    };
    // Record exact values, then flip the cache on and compare across the
    // operating range plus out-of-range clamps.
    std::vector<double> Temps;
    for (double T = F->minOperatingTempC() - 10.0;
         T <= F->maxOperatingTempC() + 10.0; T += 0.7)
      Temps.push_back(T);
    std::vector<std::vector<double>> Exact(4);
    for (int P = 0; P != 4; ++P)
      for (double T : Temps)
        Exact[P].push_back(Reference(T, P));

    ASSERT_FALSE(F->propertyCacheEnabled());
    F->enablePropertyCache();
    ASSERT_TRUE(F->propertyCacheEnabled());
    for (int P = 0; P != 4; ++P)
      for (size_t I = 0; I != Temps.size(); ++I) {
        double Cached = Reference(Temps[I], P);
        EXPECT_TRUE(approxEqual(Cached, Exact[P][I], 1e-12, 1e-300))
            << F->name() << " property " << P << " at " << Temps[I]
            << " C: cached " << Cached << " exact " << Exact[P][I];
      }
    F->disablePropertyCache();
    ASSERT_FALSE(F->propertyCacheEnabled());
    for (size_t I = 0; I != Temps.size(); ++I)
      EXPECT_EQ(Reference(Temps[I], 0), Exact[0][I]);
  }
}
