//===- tests/quantity_misuse.cpp - Negative-compile cases -----------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Each QM_* macro below guards one dimensional-safety violation. CTest
// builds this file once per macro via EXCLUDE_FROM_ALL object targets whose
// build is expected to FAIL (WILL_FAIL tests in tests/CMakeLists.txt); the
// macro-free file is compiled into quantity_test as the positive control,
// proving the scaffolding itself is well-formed.
//
// Keep every violation inside its own function so a future compiler can't
// eliminate it as unused before type checking; expressions are returned or
// assigned to force full semantic analysis.
//
//===----------------------------------------------------------------------===//

#include "support/Quantity.h"
#include "support/Units.h"

namespace rcs {
namespace quantity_misuse {

// Positive control: the same shapes with correct dimensions must compile.
inline double wellFormedControl() {
  units::Celsius Inlet(40.0);
  units::Celsius Outlet = Inlet + units::TempDelta(12.0);
  units::Watts Duty =
      units::WattsPerKelvin(800.0) * (Outlet - Inlet);
  units::Kelvin Junction = units::toKelvin(Outlet);
  return Duty.value() + Junction.value();
}

inline double takesCelsius(units::Celsius T) { return T.value(); }

#ifdef QM_ADD_CELSIUS_PASCAL
// A temperature point plus a pressure has no meaning in any unit system.
inline double addCelsiusPascal() {
  return (units::Celsius(20.0) + units::Pascal(101325.0)).value();
}
#endif

#ifdef QM_ADD_CELSIUS_CELSIUS
// Absolute temperatures are affine points: 20 C + 30 C is not 50 C.
inline double addCelsiusCelsius() {
  return (units::Celsius(20.0) + units::Celsius(30.0)).value();
}
#endif

#ifdef QM_KELVIN_WHERE_CELSIUS
// Passing a Kelvin point to a Celsius parameter must not convert silently;
// the only bridge is units::toCelsius.
inline double kelvinWhereCelsius() {
  return takesCelsius(units::Kelvin(300.0));
}
#endif

#ifdef QM_ADD_WATTS_JOULES
// Power and energy differ by a time dimension.
inline double addWattsJoules() {
  return (units::Watts(10.0) + units::Joules(10.0)).value();
}
#endif

#ifdef QM_IMPLICIT_FROM_DOUBLE
// Raw doubles must be wrapped explicitly at the boundary.
inline units::Watts implicitFromDouble() {
  units::Watts P = 40.0;
  return P;
}
#endif

#ifdef QM_IMPLICIT_TO_DOUBLE
// Leaving the typed world requires the explicit .value() escape hatch.
inline double implicitToDouble() {
  double Raw = units::Watts(40.0);
  return Raw;
}
#endif

} // namespace quantity_misuse
} // namespace rcs
