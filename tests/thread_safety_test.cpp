//===- tests/thread_safety_test.cpp - Concurrency correctness -------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Exercises the shared-state layers from many threads at once so the
// TSan CI leg (SKATSIM_SANITIZE=thread) sees real interleavings, and the
// Clang -Wthread-safety annotations (support/ThreadSafety.h) are checked
// against the access patterns the library actually uses. Every assertion
// is exact: lock-based aggregation must lose nothing, and the sweep
// report stays bit-identical whatever the thread count or observer load.
// threadsafety_misuse.cpp rides along macro-free as the positive control
// for the Clang negative-compile cases registered in CMakeLists.txt.
//
//===----------------------------------------------------------------------===//

#include "faults/Scenario.h"
#include "faults/Sweep.h"
#include "support/Parallel.h"
#include "support/ThreadSafety.h"
#include "telemetry/Span.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

using namespace rcs;
using namespace rcs::faults;

namespace rcs {
// Defined in threadsafety_misuse.cpp — the macro-free positive control
// for the negcompile_threadsafety_* targets.
int threadSafetyMisuseAnchor();
} // namespace rcs

TEST(ThreadSafetyTest, MisuseControlFollowsLockDiscipline) {
  EXPECT_EQ(threadSafetyMisuseAnchor(), 2);
}

//===----------------------------------------------------------------------===//
// rcs::Mutex / rcs::LockGuard wrapper semantics
//===----------------------------------------------------------------------===//

TEST(ThreadSafetyTest, MutexExcludesOtherThreadsWhileHeld) {
  rcs::Mutex M;
  M.lock();
  // Another thread must see the mutex as busy; the same state from this
  // thread would deadlock, which is exactly what the wrapper inherits
  // from std::mutex.
  bool OtherThreadAcquired = true;
  std::thread Prober([&] {
    OtherThreadAcquired = M.tryLock();
    if (OtherThreadAcquired)
      M.unlock();
  });
  Prober.join();
  EXPECT_FALSE(OtherThreadAcquired);
  M.unlock();

  // Released: acquirable again, from any thread.
  bool Reacquired = M.tryLock();
  EXPECT_TRUE(Reacquired);
  if (Reacquired)
    M.unlock();
}

TEST(ThreadSafetyTest, LockGuardSerializesGuardedIncrements) {
  // The canonical guarded-counter shape every annotated struct in src/
  // follows (faults::runSweep's ProgressState, telemetry::Histogram).
  struct Tally {
    rcs::Mutex Mutex;
    long Value RCS_GUARDED_BY(Mutex) = 0;
  };
  Tally Shared;
  constexpr int Items = 64;
  constexpr int BumpsPerItem = 500;
  parallelFor(4, Items, [&](size_t) {
    for (int I = 0; I != BumpsPerItem; ++I) {
      rcs::LockGuard Lock(Shared.Mutex);
      ++Shared.Value;
    }
  });
  rcs::LockGuard Lock(Shared.Mutex);
  EXPECT_EQ(Shared.Value, static_cast<long>(Items) * BumpsPerItem);
}

//===----------------------------------------------------------------------===//
// Registry hammer
//===----------------------------------------------------------------------===//

TEST(ThreadSafetyTest, RegistryHammerLosesNoCounterOrHistogramUpdate) {
  telemetry::Registry Reg;
  constexpr int Items = 64;
  constexpr int OpsPerItem = 100;
  // Per-item metric names force concurrent map insertion alongside the
  // hot-path bumps through cached references.
  std::vector<std::string> Names;
  Names.reserve(Items);
  for (int I = 0; I != Items; ++I)
    Names.push_back("hammer.item." + std::to_string(I));

  parallelFor(4, Items, [&](size_t Item) {
    telemetry::Counter &Mine = Reg.counter(Names[Item]);
    for (int I = 0; I != OpsPerItem; ++I) {
      Reg.counter("hammer.total").add(1);
      Reg.histogram("hammer.sample").record(1.0);
      Reg.gauge("hammer.last_item").set(static_cast<double>(Item));
      Mine.add(1);
      // Interleave full snapshots (Registry lock nested over every
      // Histogram lock) with the recording threads.
      if (I % 32 == 0)
        (void)Reg.snapshotMetrics();
    }
  });

  constexpr uint64_t Total = static_cast<uint64_t>(Items) * OpsPerItem;
  EXPECT_EQ(Reg.counter("hammer.total").value(), Total);
  EXPECT_EQ(Reg.histogram("hammer.sample").count(), Total);
  // Every sample is exactly 1.0, so the sum is exact in a double.
  EXPECT_EQ(Reg.histogram("hammer.sample").sum(),
            static_cast<double>(Total));
  EXPECT_EQ(Reg.histogram("hammer.sample").minValue(), 1.0);
  EXPECT_EQ(Reg.histogram("hammer.sample").maxValue(), 1.0);
  for (int I = 0; I != Items; ++I)
    EXPECT_EQ(Reg.counter(Names[I]).value(),
              static_cast<uint64_t>(OpsPerItem));

  telemetry::MetricsSnapshot Snapshot = Reg.snapshotMetrics();
  EXPECT_EQ(Snapshot.Counters.size(), static_cast<size_t>(Items) + 1);
  EXPECT_EQ(Snapshot.Histograms.size(), 1u);
  EXPECT_EQ(Snapshot.Histograms[0].second.Count, Total);
}

//===----------------------------------------------------------------------===//
// Sweep vs progress observer
//===----------------------------------------------------------------------===//

namespace {

Scenario makeHammerScenario() {
  Scenario S;
  S.Name = "thread-safety-sweep";
  S.DurationS = 0.75 * 3600.0;
  S.Seed = 23;
  S.Policy.CriticalPeriodsToShutdown = 2;
  HazardSpec Hazard;
  Hazard.Kind = FaultKind::PumpFailure;
  Hazard.Id = "pump";
  Hazard.MttfHours = 0.8;
  Hazard.RepairHours = 0.25;
  S.Hazards.push_back(Hazard);
  return S;
}

} // namespace

TEST(ThreadSafetyTest, SweepWithObserverAtFourThreadsIsBitIdentical) {
  Scenario S = makeHammerScenario();

  // Baseline: serial, unobserved.
  SweepConfig Serial;
  Serial.NumReplicates = 8;
  Serial.NumThreads = 1;

  // Stress: four workers racing the progress lock on every replicate.
  SweepConfig Observed = Serial;
  Observed.NumThreads = 4;
  Observed.ProgressPeriodS = 0.0;
  std::vector<SweepProgress> Updates;
  Observed.OnProgress = [&Updates](const SweepProgress &P) {
    Updates.push_back(P);
  };

  auto A = runSweep(S, Serial);
  auto B = runSweep(S, Observed);
  ASSERT_TRUE(A.hasValue()) << A.message();
  ASSERT_TRUE(B.hasValue()) << B.message();

  EXPECT_EQ(A->MeanAvailabilityFraction, B->MeanAvailabilityFraction);
  EXPECT_EQ(A->MeanThroughputRetainedFraction,
            B->MeanThroughputRetainedFraction);
  EXPECT_EQ(A->MeanMaxJunctionC, B->MeanMaxJunctionC);
  EXPECT_EQ(A->CriticalFraction, B->CriticalFraction);
  EXPECT_EQ(A->MttfEstimateHours, B->MttfEstimateHours);
  EXPECT_EQ(A->JunctionHistogramCounts, B->JunctionHistogramCounts);
  ASSERT_EQ(A->Replicates.size(), B->Replicates.size());
  for (size_t R = 0; R != A->Replicates.size(); ++R) {
    EXPECT_EQ(A->Replicates[R].AvailabilityFraction,
              B->Replicates[R].AvailabilityFraction);
    EXPECT_EQ(A->Replicates[R].MaxJunctionC,
              B->Replicates[R].MaxJunctionC);
    EXPECT_EQ(A->Replicates[R].TimeToFirstCriticalS,
              B->Replicates[R].TimeToFirstCriticalS);
  }

  // The observer stream itself: serialized under the progress lock, so
  // Completed is monotone and the final update covers the whole sweep.
  ASSERT_GE(Updates.size(), 2u);
  for (size_t U = 1; U != Updates.size(); ++U)
    EXPECT_GE(Updates[U].Completed, Updates[U - 1].Completed);
  EXPECT_EQ(Updates.back().Completed, Observed.NumReplicates);
  EXPECT_EQ(Updates.back().Total, Observed.NumReplicates);
}

//===----------------------------------------------------------------------===//
// Cross-thread span adoption
//===----------------------------------------------------------------------===//

namespace {

/// Records every span's name and causal identity. Invoked under the
/// registry lock per the EventSink contract, so no locking of its own;
/// the owner reads Seen only after the registry joins/flushes.
class RecordingSink final : public telemetry::EventSink {
public:
  explicit RecordingSink(
      std::vector<std::pair<std::string, telemetry::SpanContext>> &Seen)
      : Seen(Seen) {}

  void instant(double, std::string_view, const telemetry::EventField *,
               size_t) override {}
  void span(const telemetry::SpanRecord &Rec) override {
    Seen.emplace_back(std::string(Rec.Name), Rec.Context);
  }
  Status close() override { return Status::ok(); }

private:
  std::vector<std::pair<std::string, telemetry::SpanContext>> &Seen;
};

} // namespace

TEST(ThreadSafetyTest, CrossThreadSpanAdoptionKeepsCausality) {
  telemetry::Registry Reg;
  std::vector<std::pair<std::string, telemetry::SpanContext>> Seen;
  Reg.setSink(std::make_unique<RecordingSink>(Seen));

  constexpr int Items = 16;
  uint64_t RootSpan = 0;
  uint64_t RootTrace = 0;
  {
    telemetry::Span Root(Reg, "adopt.root");
    const telemetry::SpanContext RootCtx = Root.context();
    RootSpan = RootCtx.SpanId;
    RootTrace = RootCtx.TraceId;
    parallelFor(4, Items, [&](size_t Item) {
      // The pool thread adopts the submitting thread's open span, so
      // every worker span parents under the root across the thread
      // boundary — the same handoff faults::runSweep does.
      telemetry::ScopedSpanParent Adopt(RootCtx);
      telemetry::Span Worker(Reg, "adopt.worker");
      Worker.attr("item", static_cast<long long>(Item));
    });
  }
  ASSERT_TRUE(Reg.closeSink().ok());

  int Workers = 0;
  int Roots = 0;
  for (const auto &[Name, Ctx] : Seen) {
    if (Name == "adopt.worker") {
      ++Workers;
      EXPECT_EQ(Ctx.ParentId, RootSpan);
      EXPECT_EQ(Ctx.TraceId, RootTrace);
      EXPECT_EQ(Ctx.Depth, 1);
    } else if (Name == "adopt.root") {
      ++Roots;
      EXPECT_EQ(Ctx.ParentId, 0u);
    }
  }
  EXPECT_EQ(Workers, Items);
  EXPECT_EQ(Roots, 1);

  // The aggregate view agrees exactly with the sink's view.
  EXPECT_EQ(Reg.timerStats("adopt.worker").Count,
            static_cast<uint64_t>(Items));
  EXPECT_EQ(Reg.timerStats("adopt.root").Count, 1u);
}
