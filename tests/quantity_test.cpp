//===- tests/quantity_test.cpp - Dimensional-analysis tests -------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Runtime and compile-time coverage for support/Quantity.h: dimension
// algebra, affine temperature semantics, the typed overloads on Fluid and
// ThermalNetwork, and SFINAE proofs that ill-dimensioned expressions do
// not participate in overload resolution. The companion negative-compile
// targets (tests/quantity_misuse.cpp driven by CTest WILL_FAIL builds)
// prove the same misuses are hard errors in ordinary code.
//
//===----------------------------------------------------------------------===//

#include "fluids/Fluid.h"
#include "support/Quantity.h"
#include "support/Units.h"
#include "thermal/Network.h"

#include <gtest/gtest.h>

#include <type_traits>

using namespace rcs;
using namespace rcs::units;

namespace {

//===----------------------------------------------------------------------===//
// SFINAE detection: ill-dimensioned expressions must not resolve.
//===----------------------------------------------------------------------===//

template <typename A, typename B, typename = void>
struct CanAdd : std::false_type {};
template <typename A, typename B>
struct CanAdd<A, B,
              std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};

template <typename From, typename To>
inline constexpr bool Convertible = std::is_convertible_v<From, To>;

// Same-dimension addition works; cross-dimension addition does not exist.
static_assert(CanAdd<Watts, Watts>::value);
static_assert(!CanAdd<Watts, Pascal>::value);
static_assert(!CanAdd<Celsius, Pascal>::value);
static_assert(!CanAdd<TempDelta, Pascal>::value);

// Absolute temperatures are points: point + point is meaningless.
static_assert(!CanAdd<Celsius, Celsius>::value);
static_assert(!CanAdd<Kelvin, Kelvin>::value);
static_assert(!CanAdd<Celsius, Kelvin>::value);
// ...but point + delta and delta + point shift the point.
static_assert(CanAdd<Celsius, TempDelta>::value);
static_assert(CanAdd<TempDelta, Celsius>::value);
static_assert(CanAdd<Kelvin, TempDelta>::value);

// The scales never convert implicitly, in either direction, and neither
// leaks to/from raw double.
static_assert(!Convertible<Celsius, Kelvin>);
static_assert(!Convertible<Kelvin, Celsius>);
static_assert(!Convertible<double, Celsius>);
static_assert(!Convertible<Celsius, double>);
static_assert(!Convertible<double, Watts>);
static_assert(!Convertible<Watts, double>);
static_assert(!Convertible<Watts, Joules>);

TEST(QuantityTest, DimensionAlgebra) {
  Watts P = WattsPerKelvin(12.0) * TempDelta(5.0);
  EXPECT_DOUBLE_EQ(P.value(), 60.0);

  Joules E = P * Seconds(10.0);
  EXPECT_DOUBLE_EQ(E.value(), 600.0);

  KgPerS MassFlow = KgPerM3(850.0) * M3PerS(0.002);
  EXPECT_DOUBLE_EQ(MassFlow.value(), 1.7);

  KelvinPerWatt R = 1.0 / WattsPerKelvin(4.0);
  EXPECT_DOUBLE_EQ(R.value(), 0.25);

  Scalar Ratio = Watts(30.0) / Watts(120.0);
  EXPECT_DOUBLE_EQ(Ratio.value(), 0.25);
}

TEST(QuantityTest, AffineTemperatureSemantics) {
  Celsius Inlet(40.0);
  Celsius Outlet = Inlet + TempDelta(12.5);
  EXPECT_DOUBLE_EQ(Outlet.value(), 52.5);

  TempDelta Rise = Outlet - Inlet;
  EXPECT_DOUBLE_EQ(Rise.value(), 12.5);

  // Deltas multiply into quantity algebra; points cannot.
  Watts Duty = WattsPerKelvin(800.0) * Rise;
  EXPECT_DOUBLE_EQ(Duty.value(), 10000.0);

  EXPECT_LT(Inlet, Outlet);
  EXPECT_GT(Kelvin(300.0), Kelvin(250.0));
}

TEST(QuantityTest, ScaleCrossings) {
  Kelvin K = toKelvin(Celsius(26.85));
  EXPECT_NEAR(K.value(), 300.0, 1e-9);
  Celsius C = toCelsius(Kelvin(273.15));
  EXPECT_DOUBLE_EQ(C.value(), 0.0);

  // A Celsius delta and a Kelvin delta are the same delta.
  TempDelta D1 = Celsius(60.0) - Celsius(40.0);
  TempDelta D2 = toKelvin(Celsius(60.0)) - toKelvin(Celsius(40.0));
  EXPECT_DOUBLE_EQ(D1.value(), D2.value());
}

TEST(QuantityTest, Literals) {
  using namespace rcs::units::literals;
  EXPECT_DOUBLE_EQ((40.0_degC).value(), 40.0);
  EXPECT_DOUBLE_EQ((300_K).value(), 300.0);
  EXPECT_DOUBLE_EQ((5.5_dK).value(), 5.5);
  EXPECT_DOUBLE_EQ((250_W).value(), 250.0);
  EXPECT_DOUBLE_EQ((1.5_Pa).value(), 1.5);
}

TEST(QuantityTest, FlowHelpers) {
  M3PerS Flow = flowFromLitersPerMinute(60.0);
  EXPECT_DOUBLE_EQ(Flow.value(), 0.001);
}

//===----------------------------------------------------------------------===//
// Typed API migration: the overloads agree exactly with the raw-double
// interfaces they wrap.
//===----------------------------------------------------------------------===//

TEST(QuantityTest, TypedFluidAccessorsMatchRawDoubles) {
  auto Oil = fluids::makeMineralOilMd45();
  Celsius T(40.0);
  EXPECT_DOUBLE_EQ(Oil->density(T).value(), Oil->densityKgPerM3(40.0));
  EXPECT_DOUBLE_EQ(Oil->specificHeat(T).value(),
                   Oil->specificHeatJPerKgK(40.0));
  EXPECT_DOUBLE_EQ(Oil->thermalConductivity(T).value(),
                   Oil->thermalConductivityWPerMK(40.0));
  EXPECT_DOUBLE_EQ(Oil->dynamicViscosity(T).value(),
                   Oil->dynamicViscosityPaS(40.0));
  EXPECT_DOUBLE_EQ(Oil->kinematicViscosity(T).value(),
                   Oil->kinematicViscosityM2PerS(40.0));
  EXPECT_DOUBLE_EQ(Oil->volumetricHeatCapacity(T).value(),
                   Oil->volumetricHeatCapacityJPerM3K(40.0));
  EXPECT_DOUBLE_EQ(Oil->thermalDiffusivity(T).value(),
                   Oil->thermalDiffusivityM2PerS(40.0));
  EXPECT_DOUBLE_EQ(Oil->prandtlNumber(T).value(), Oil->prandtl(40.0));
  EXPECT_DOUBLE_EQ(Oil->minOperatingTemp().value(),
                   Oil->minOperatingTempC());
  EXPECT_DOUBLE_EQ(Oil->maxOperatingTemp().value(),
                   Oil->maxOperatingTempC());

  // Derived identities hold in the typed algebra too.
  M2PerS Nu = Oil->dynamicViscosity(T) / Oil->density(T);
  EXPECT_DOUBLE_EQ(Nu.value(), Oil->kinematicViscosityM2PerS(40.0));
}

TEST(QuantityTest, TypedThermalNetworkBuilders) {
  // Build the same two-node network once with raw doubles, once typed.
  auto Build = [](bool Typed) {
    thermal::ThermalNetwork Net;
    if (Typed) {
      thermal::NodeId Chip =
          Net.addNode("chip", JoulesPerKelvin(500.0));
      thermal::NodeId Ambient =
          Net.addBoundaryNode("ambient", Celsius(25.0));
      Net.addConductance(Chip, Ambient, WattsPerKelvin(2.0));
      Net.setHeatSource(Chip, Watts(40.0));
    } else {
      thermal::NodeId Chip = Net.addNode("chip", 500.0);
      thermal::NodeId Ambient = Net.addBoundaryNode("ambient", 25.0);
      Net.addConductance(Chip, Ambient, 2.0);
      Net.setHeatSource(Chip, 40.0);
    }
    auto Solved = Net.solveSteadyState();
    EXPECT_TRUE(Solved.hasValue());
    return (*Solved)[0];
  };
  double TypedTempC = Build(true);
  double RawTempC = Build(false);
  EXPECT_DOUBLE_EQ(TypedTempC, RawTempC);
  EXPECT_DOUBLE_EQ(TypedTempC, 45.0); // 25 + 40/2
}

TEST(QuantityTest, ZeroOverheadLayout) {
  // The acceptance bar for the migration: a Quantity is exactly a double.
  EXPECT_EQ(sizeof(Watts), sizeof(double));
  EXPECT_EQ(sizeof(Celsius), sizeof(double));
  EXPECT_EQ(sizeof(TempDelta), sizeof(double));
  EXPECT_TRUE(std::is_trivially_copyable_v<M3PerS>);
  EXPECT_TRUE(std::is_trivially_destructible_v<Celsius>);
}

} // namespace
