//===- tests/core_test.cpp - Regression tests pinning the paper's numbers ---===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// These tests pin the reproduced paper numbers (see EXPERIMENTS.md) so the
/// E1..E10 benches cannot silently drift as the models evolve.
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "core/DesignSpace.h"
#include "metrics/Metrics.h"

#include <gtest/gtest.h>

using namespace rcs;
using namespace rcs::core;
using namespace rcs::rcsystem;

namespace {

ModuleThermalReport solve(const ModuleConfig &Config) {
  ComputationalModule Module(Config);
  auto Report = Module.solveSteadyState(makeNominalConditions());
  EXPECT_TRUE(Report.hasValue()) << Report.message();
  return Report ? *Report : ModuleThermalReport();
}

} // namespace

//===----------------------------------------------------------------------===//
// E1/E2: air-cooled overheat anchors (paper Section 1)
//===----------------------------------------------------------------------===//

TEST(PaperAnchorsTest, Rigel2Overheat) {
  // Paper: +33.1 C over a 25 C ambient (-> 58.1 C) at 1255 W CM power.
  ModuleThermalReport Report = solve(makeRigel2Module());
  EXPECT_NEAR(Report.overheatC(25.0), 33.1, 1.5);
  EXPECT_NEAR(Report.ItPowerW + Report.PsuLossW, 1255.0, 40.0);
}

TEST(PaperAnchorsTest, TaygetaOverheat) {
  // Paper: +47.9 C (-> 72.9 C) at 1661 W CM power.
  ModuleThermalReport Report = solve(makeTaygetaModule());
  EXPECT_NEAR(Report.overheatC(25.0), 47.9, 1.5);
  EXPECT_NEAR(Report.ItPowerW + Report.PsuLossW, 1661.0, 40.0);
  // Above the paper's 65..70 C long-life band: the Taygeta problem.
  EXPECT_FALSE(Report.WithinReliableLimit);
}

//===----------------------------------------------------------------------===//
// E3: family scaling (paper Section 1)
//===----------------------------------------------------------------------===//

TEST(PaperAnchorsTest, FamilyStepsMatchPaperBands) {
  double TjV6 = solve(makeRigel2Module()).MaxJunctionTempC;
  double TjV7 = solve(makeTaygetaModule()).MaxJunctionTempC;
  double TjUs = solve(makeUltraScaleAirModule()).MaxJunctionTempC;
  // Virtex-6 -> Virtex-7: +11..15 C.
  EXPECT_GE(TjV7 - TjV6, 11.0);
  EXPECT_LE(TjV7 - TjV6, 15.5);
  // Virtex-7 -> UltraScale (air): +10..15 C more, into the 80..85 band.
  EXPECT_GE(TjUs - TjV7, 10.0);
  EXPECT_LE(TjUs - TjV7, 15.5);
  EXPECT_GE(TjUs, 80.0);
  EXPECT_LE(TjUs, 86.0);
}

//===----------------------------------------------------------------------===//
// E5: SKAT thermal anchors (paper Section 3)
//===----------------------------------------------------------------------===//

TEST(PaperAnchorsTest, SkatOperatingPoint) {
  ModuleThermalReport Report = solve(makeSkatModule());
  // "the power consumed by each FPGA in operating mode equals 91 W".
  ASSERT_FALSE(Report.Fpgas.empty());
  EXPECT_NEAR(Report.Fpgas.front().PowerW, 91.0, 2.5);
  // "8736 W for the whole CM" (FPGA heat).
  EXPECT_NEAR(Report.FpgaHeatW, 8736.0, 250.0);
  // "the temperature of the heat-transfer agent does not exceed 30 C".
  EXPECT_LE(Report.CoolantHotTempC, 30.0);
  // "the maximum FPGA temperature ... did not exceed 55 C".
  EXPECT_LE(Report.MaxJunctionTempC, 55.0);
  // Comfortably inside the long-life band, unlike the air designs.
  EXPECT_TRUE(Report.WithinReliableLimit);
}

TEST(PaperAnchorsTest, SkatModuleShape) {
  ModuleConfig Skat = makeSkatModule();
  EXPECT_EQ(Skat.NumCcbs, 12);       // "12 CCBs with a power up to 800 W".
  EXPECT_EQ(Skat.HeightU, 3);        // "3U height".
  EXPECT_EQ(Skat.NumPsus, 3);        // "three power supply units".
  EXPECT_EQ(Skat.Board.NumComputeFpgas, 8);
  // Per-CCB power below the 800 W budget.
  ModuleThermalReport Report = solve(Skat);
  double PerBoard = (Report.FpgaHeatW + Report.MiscHeatW) / 12.0;
  EXPECT_LE(PerBoard, 800.0);
  EXPECT_GE(PerBoard, 600.0);
}

//===----------------------------------------------------------------------===//
// E6: generation gains (paper Section 3)
//===----------------------------------------------------------------------===//

TEST(PaperAnchorsTest, SkatVersusTaygetaGains) {
  ComputationalModule Taygeta(makeTaygetaModule());
  ComputationalModule Skat(makeSkatModule());
  // "The performance of a next-generation SKAT CM is increased in 8.7
  // times in comparison with the Taygeta CM."
  EXPECT_NEAR(Skat.peakGflops() / Taygeta.peakGflops(), 8.7, 0.1);
  // "more than triple increasing of the system packing density".
  EXPECT_GE(Skat.boardsPerU() / Taygeta.boardsPerU(), 3.0);
}

TEST(PaperAnchorsTest, EfficiencyMetricsFavorImmersion) {
  ComputationalModule Taygeta(makeTaygetaModule());
  ComputationalModule Skat(makeSkatModule());
  auto Conditions = makeNominalConditions();
  auto TaygetaReport = Taygeta.solveSteadyState(Conditions);
  auto SkatReport = Skat.solveSteadyState(Conditions);
  ASSERT_TRUE(TaygetaReport.hasValue());
  ASSERT_TRUE(SkatReport.hasValue());
  auto TaygetaEff =
      metrics::computeModuleEfficiency(Taygeta, *TaygetaReport);
  auto SkatEff = metrics::computeModuleEfficiency(Skat, *SkatReport);
  EXPECT_GT(SkatEff.GflopsPerWatt, 1.3 * TaygetaEff.GflopsPerWatt);
  auto Gain = metrics::compareGenerations(TaygetaEff, SkatEff);
  EXPECT_NEAR(Gain.PerformanceRatio, 8.7, 0.1);
  EXPECT_GE(Gain.PackingDensityRatio, 3.0);
}

//===----------------------------------------------------------------------===//
// E8: SKAT+ projection (paper Section 4)
//===----------------------------------------------------------------------===//

TEST(PaperAnchorsTest, SkatPlusTriplesPerformance) {
  ComputationalModule Skat(makeSkatModule());
  ComputationalModule SkatPlus(makeSkatPlusModule());
  double Ratio = SkatPlus.peakGflops() / Skat.peakGflops();
  // "a three time increase in computational performance ... the size of
  // the computer system will still remain unchanged".
  EXPECT_NEAR(Ratio, 3.0, 0.1);
  EXPECT_EQ(makeSkatPlusModule().HeightU, makeSkatModule().HeightU);
}

TEST(PaperAnchorsTest, NaiveSkatPlusExceedsSkatEnvelope) {
  // Without the Section 4 modifications, the UltraScale+ module leaves
  // the SKAT thermal envelope (coolant > 30 C, junctions above the SKAT
  // measured maximum); the modified design recovers most of it.
  ModuleThermalReport Naive = solve(makeSkatPlusNaiveModule());
  ModuleThermalReport Modified = solve(makeSkatPlusModule());
  EXPECT_GT(Naive.CoolantHotTempC, 30.5);
  EXPECT_GT(Naive.MaxJunctionTempC, Modified.MaxJunctionTempC + 3.0);
  EXPECT_LE(Modified.MaxJunctionTempC, 50.0);
}

//===----------------------------------------------------------------------===//
// E9: rack performance (paper Section 5)
//===----------------------------------------------------------------------===//

TEST(PaperAnchorsTest, RackAbovePetaflops) {
  Rack TheRack(makeSkatRack());
  EXPECT_GT(TheRack.peakPflops(), 1.0);
  EXPECT_LT(TheRack.peakPflops(), 1.3); // Not wildly over either.
}

//===----------------------------------------------------------------------===//
// Design-space tools
//===----------------------------------------------------------------------===//

TEST(DesignSpaceTest, SinkSweepSortedAndNonEmpty) {
  SinkSweepRanges Ranges;
  Ranges.PinHeightsM = {0.008, 0.012};
  Ranges.PitchesM = {0.004, 0.005};
  Ranges.PinDiametersM = {0.0015};
  auto Candidates = sweepImmersionSinks(makeSkatModule(),
                                        makeNominalConditions(), Ranges);
  ASSERT_GE(Candidates.size(), 4u);
  for (size_t I = 1; I < Candidates.size(); ++I)
    EXPECT_LE(Candidates[I - 1].Score, Candidates[I].Score);
  // Taller pins at equal pitch give lower thermal resistance.
  double RTall = 0.0, RShort = 0.0;
  for (const auto &Candidate : Candidates) {
    if (Candidate.Geometry.PitchM != 0.004)
      continue;
    if (Candidate.Geometry.PinHeightM == 0.012)
      RTall = Candidate.ResistanceKPerW;
    if (Candidate.Geometry.PinHeightM == 0.008)
      RShort = Candidate.ResistanceKPerW;
  }
  EXPECT_GT(RShort, RTall);
}

TEST(DesignSpaceTest, PumpSweepTradesPowerForTemperature) {
  auto Candidates =
      sweepOilPumps(makeSkatModule(), makeNominalConditions(),
                    {1.0e-3, 2.2e-3, 4.0e-3}, {6.0e4});
  ASSERT_EQ(Candidates.size(), 3u);
  // Find entries by rated flow.
  double TjSmall = 0.0, TjLarge = 0.0, PowerSmall = 0.0, PowerLarge = 0.0;
  for (const auto &Candidate : Candidates) {
    if (Candidate.RatedFlowM3PerS == 1.0e-3) {
      TjSmall = Candidate.MaxJunctionTempC;
      PowerSmall = Candidate.PumpElectricalW;
    }
    if (Candidate.RatedFlowM3PerS == 4.0e-3) {
      TjLarge = Candidate.MaxJunctionTempC;
      PowerLarge = Candidate.PumpElectricalW;
    }
  }
  EXPECT_GT(TjSmall, TjLarge);       // Bigger pump cools better...
  EXPECT_GT(PowerLarge, PowerSmall); // ...but burns more power.
}

TEST(DesignSpaceTest, WaterSetpointSearch) {
  auto Setpoint = maxWaterSetpointForJunctionLimit(
      makeSkatModule(), makeNominalConditions(), /*JunctionLimitC=*/55.0);
  ASSERT_TRUE(Setpoint.hasValue()) << Setpoint.message();
  // SKAT has headroom: warmer-than-18 C water still holds 55 C.
  EXPECT_GT(*Setpoint, 20.0);
  EXPECT_LE(*Setpoint, 45.0);

  // An impossible limit errors out.
  auto Impossible = maxWaterSetpointForJunctionLimit(
      makeSkatModule(), makeNominalConditions(), /*JunctionLimitC=*/20.0);
  EXPECT_FALSE(Impossible.hasValue());
}

//===----------------------------------------------------------------------===//
// Tolerance analysis (A4)
//===----------------------------------------------------------------------===//

#include "core/Uncertainty.h"

TEST(UncertaintyTest, DeterministicForFixedSeed) {
  ToleranceSpec Tolerances;
  auto A = analyzeModuleTolerances(makeSkatModule(),
                                   makeNominalConditions(), Tolerances, 50,
                                   7);
  auto B = analyzeModuleTolerances(makeSkatModule(),
                                   makeNominalConditions(), Tolerances, 50,
                                   7);
  EXPECT_DOUBLE_EQ(A.MeanMaxJunctionC, B.MeanMaxJunctionC);
  EXPECT_DOUBLE_EQ(A.P95MaxJunctionC, B.P95MaxJunctionC);
}

TEST(UncertaintyTest, StatisticsAreOrdered) {
  ToleranceSpec Tolerances;
  auto Result = analyzeModuleTolerances(
      makeSkatModule(), makeNominalConditions(), Tolerances, 100, 11);
  EXPECT_EQ(Result.NumFailedSolves, 0);
  EXPECT_LE(Result.MeanMaxJunctionC, Result.P95MaxJunctionC);
  EXPECT_LE(Result.P95MaxJunctionC, Result.WorstMaxJunctionC);
  EXPECT_LE(Result.MeanCoolantHotC, Result.P95CoolantHotC);
  EXPECT_GT(Result.StdMaxJunctionC, 0.0);
}

TEST(UncertaintyTest, ZeroToleranceCollapsesToNominal) {
  ToleranceSpec Zero;
  Zero.TurbulatorRel = Zero.PinHeightRel = Zero.PumpFlowRel = 0.0;
  Zero.PumpHeadRel = Zero.HxUaRel = Zero.BathAreaRel = 0.0;
  Zero.MiscPowerRel = 0.0;
  Zero.WaterInletAbsC = 0.0;
  Zero.UtilizationAbs = 0.0;
  auto Result = analyzeModuleTolerances(
      makeSkatModule(), makeNominalConditions(), Zero, 20, 3);
  EXPECT_NEAR(Result.StdMaxJunctionC, 0.0, 1e-9);
  auto Nominal = ComputationalModule(makeSkatModule())
                     .solveSteadyState(makeNominalConditions());
  ASSERT_TRUE(Nominal.hasValue());
  EXPECT_NEAR(Result.MeanMaxJunctionC, Nominal->MaxJunctionTempC, 1e-6);
}

TEST(UncertaintyTest, SkatJunctionMarginRobust) {
  ToleranceSpec Tolerances;
  auto Result = analyzeModuleTolerances(
      makeSkatModule(), makeNominalConditions(), Tolerances, 200, 2018);
  EXPECT_DOUBLE_EQ(Result.OverJunctionLimitFraction, 0.0);
  EXPECT_LT(Result.WorstMaxJunctionC, 55.0);
}

TEST(UncertaintyTest, WiderTolerancesWidenSpread) {
  ToleranceSpec Tight;
  ToleranceSpec Loose;
  Loose.PumpFlowRel = 0.2;
  Loose.HxUaRel = 0.3;
  Loose.BathAreaRel = 0.2;
  auto TightResult = analyzeModuleTolerances(
      makeSkatModule(), makeNominalConditions(), Tight, 150, 5);
  auto LooseResult = analyzeModuleTolerances(
      makeSkatModule(), makeNominalConditions(), Loose, 150, 5);
  EXPECT_GT(LooseResult.StdMaxJunctionC, TightResult.StdMaxJunctionC);
}

//===----------------------------------------------------------------------===//
// Typed Quantity mirrors (design space + tolerance analysis)
//===----------------------------------------------------------------------===//

using rcs::units::Celsius;
using rcs::units::KelvinPerPascal;
using rcs::units::KelvinPerWatt;
using rcs::units::M3PerS;
using rcs::units::Meters;
using rcs::units::Pascal;

TEST(DesignSpaceTest, TypedSinkSweepMatchesRaw) {
  SinkSweepRanges Raw;
  Raw.PinHeightsM = {0.008, 0.012};
  Raw.PitchesM = {0.004};
  Raw.PinDiametersM = {0.0015};

  SinkSweepRanges Typed;
  Typed.setPinHeights({Meters(0.008), Meters(0.012)})
      .setPitches({Meters(0.004)})
      .setPinDiameters({Meters(0.0015)});
  EXPECT_EQ(Typed.PinHeightsM, Raw.PinHeightsM);
  EXPECT_EQ(Typed.pinHeights().size(), Raw.PinHeightsM.size());
  EXPECT_EQ(Typed.pinHeights()[1], Meters(0.012));
  EXPECT_EQ(Typed.pitches()[0], Meters(0.004));
  EXPECT_EQ(Typed.pinDiameters()[0], Meters(0.0015));

  auto RawSweep = sweepImmersionSinks(makeSkatModule(),
                                      makeNominalConditions(), Raw, 2.0e-4);
  auto TypedSweep =
      sweepImmersionSinks(makeSkatModule(), makeNominalConditions(), Typed,
                          KelvinPerPascal(2.0e-4));
  ASSERT_EQ(TypedSweep.size(), RawSweep.size());
  for (size_t I = 0; I != RawSweep.size(); ++I) {
    EXPECT_EQ(TypedSweep[I].Score, RawSweep[I].Score);
    EXPECT_EQ(TypedSweep[I].resistance(),
              KelvinPerWatt(RawSweep[I].ResistanceKPerW));
    EXPECT_EQ(TypedSweep[I].pressureDrop(),
              Pascal(RawSweep[I].PressureDropPa));
    EXPECT_EQ(TypedSweep[I].maxJunctionTemp(),
              Celsius(RawSweep[I].MaxJunctionTempC));
  }
}

TEST(DesignSpaceTest, TypedPumpSweepMatchesRaw) {
  auto RawSweep = sweepOilPumps(makeSkatModule(), makeNominalConditions(),
                                {1.0e-3, 4.0e-3}, {6.0e4}, 5.0e-3);
  auto TypedSweep =
      sweepOilPumps(makeSkatModule(), makeNominalConditions(),
                    {M3PerS(1.0e-3), M3PerS(4.0e-3)}, {Pascal(6.0e4)},
                    KelvinPerWatt(5.0e-3));
  ASSERT_EQ(TypedSweep.size(), RawSweep.size());
  for (size_t I = 0; I != RawSweep.size(); ++I) {
    EXPECT_EQ(TypedSweep[I].Score, RawSweep[I].Score);
    EXPECT_EQ(TypedSweep[I].ratedFlow(),
              M3PerS(RawSweep[I].RatedFlowM3PerS));
    EXPECT_EQ(TypedSweep[I].ratedHead(), Pascal(RawSweep[I].RatedHeadPa));
    EXPECT_EQ(TypedSweep[I].achievedFlow(),
              M3PerS(RawSweep[I].AchievedFlowM3PerS));
    EXPECT_EQ(TypedSweep[I].maxJunctionTemp(),
              Celsius(RawSweep[I].MaxJunctionTempC));
    EXPECT_EQ(TypedSweep[I].pumpElectrical().value(),
              RawSweep[I].PumpElectricalW);
  }
}

TEST(DesignSpaceTest, TypedWaterSetpointMatchesRaw) {
  auto Raw = maxWaterSetpointForJunctionLimit(
      makeSkatModule(), makeNominalConditions(), /*JunctionLimitC=*/55.0);
  auto Typed = maxWaterSetpointForJunctionLimit(
      makeSkatModule(), makeNominalConditions(), Celsius(55.0));
  ASSERT_TRUE(Raw.hasValue()) << Raw.message();
  ASSERT_TRUE(Typed.hasValue()) << Typed.message();
  EXPECT_EQ(*Typed, Celsius(*Raw));

  // Errors propagate through the typed mirror unchanged.
  auto Impossible = maxWaterSetpointForJunctionLimit(
      makeSkatModule(), makeNominalConditions(), Celsius(20.0));
  EXPECT_FALSE(Impossible.hasValue());
  EXPECT_FALSE(Impossible.message().empty());
}

TEST(UncertaintyTest, TypedLimitsMatchRaw) {
  ToleranceSpec Tolerances;
  Tolerances.setWaterInletSpread(rcs::units::TempDelta(1.5));
  EXPECT_EQ(Tolerances.WaterInletAbsC, 1.5);
  EXPECT_EQ(Tolerances.waterInletSpread(), rcs::units::TempDelta(1.5));

  auto Raw = analyzeModuleTolerances(makeSkatModule(),
                                     makeNominalConditions(), Tolerances,
                                     50, 7, 55.0, 30.5);
  auto Typed = analyzeModuleTolerances(
      makeSkatModule(), makeNominalConditions(), Tolerances, 50, 7,
      Celsius(55.0), Celsius(30.5));
  EXPECT_EQ(Typed.NumSamples, Raw.NumSamples);
  EXPECT_EQ(Typed.meanMaxJunction(), Celsius(Raw.MeanMaxJunctionC));
  EXPECT_EQ(Typed.stdMaxJunction().value(), Raw.StdMaxJunctionC);
  EXPECT_EQ(Typed.p95MaxJunction(), Celsius(Raw.P95MaxJunctionC));
  EXPECT_EQ(Typed.worstMaxJunction(), Celsius(Raw.WorstMaxJunctionC));
  EXPECT_EQ(Typed.meanCoolantHot(), Celsius(Raw.MeanCoolantHotC));
  EXPECT_EQ(Typed.p95CoolantHot(), Celsius(Raw.P95CoolantHotC));
  EXPECT_EQ(Typed.worstCoolantHot(), Celsius(Raw.WorstCoolantHotC));
  EXPECT_EQ(Typed.OverJunctionLimitFraction, Raw.OverJunctionLimitFraction);
  EXPECT_EQ(Typed.OverCoolantLimitFraction, Raw.OverCoolantLimitFraction);
}
