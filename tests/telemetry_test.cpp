//===- tests/telemetry_test.cpp - Unit tests for rcs_telemetry --------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Json.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <new>
#include <string>
#include <vector>

using namespace rcs;
using namespace rcs::telemetry;

//===----------------------------------------------------------------------===//
// Allocation counting (for the null-sink hot-path guarantee)
//===----------------------------------------------------------------------===//

namespace {

std::atomic<bool> CountAllocations{false};
std::atomic<uint64_t> NumAllocations{0};

} // namespace

void *operator new(size_t Size) {
  if (CountAllocations.load(std::memory_order_relaxed))
    NumAllocations.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  std::abort();
}

void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, size_t) noexcept { std::free(P); }

//===----------------------------------------------------------------------===//
// Counters, gauges, histograms
//===----------------------------------------------------------------------===//

TEST(CounterTest, AddsAndDefaults) {
  Registry Reg;
  Counter &C = Reg.counter("test.counter.count");
  EXPECT_EQ(C.value(), 0u);
  C.add();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
  // Same name resolves to the same counter.
  EXPECT_EQ(&Reg.counter("test.counter.count"), &C);
  EXPECT_EQ(Reg.counter("test.counter.count").value(), 42u);
}

TEST(GaugeTest, LastSetWins) {
  Registry Reg;
  Gauge &G = Reg.gauge("test.gauge.value");
  EXPECT_EQ(G.value(), 0.0);
  G.set(3.5);
  G.set(-2.25);
  EXPECT_EQ(G.value(), -2.25);
}

TEST(HistogramTest, CountSumMinMaxMean) {
  Registry Reg;
  Histogram &H = Reg.histogram("test.histogram.samples");
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.mean(), 0.0);
  H.record(2.0);
  H.record(6.0);
  H.record(4.0);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_DOUBLE_EQ(H.sum(), 12.0);
  EXPECT_DOUBLE_EQ(H.mean(), 4.0);
  EXPECT_DOUBLE_EQ(H.minValue(), 2.0);
  EXPECT_DOUBLE_EQ(H.maxValue(), 6.0);
}

TEST(HistogramTest, DecadeBuckets) {
  // Bucket B spans [10^(B-9), 10^(B-8)).
  EXPECT_EQ(Histogram::bucketFor(0.0), 0);
  EXPECT_EQ(Histogram::bucketFor(1e-12), 0);
  EXPECT_EQ(Histogram::bucketFor(-5.0), 9); // Bucketed by magnitude.
  EXPECT_EQ(Histogram::bucketFor(5e-9), 0);
  EXPECT_EQ(Histogram::bucketFor(5e-8), 1);
  EXPECT_EQ(Histogram::bucketFor(0.5), 8);
  EXPECT_EQ(Histogram::bucketFor(5.0), 9);
  EXPECT_EQ(Histogram::bucketFor(1e12), Histogram::NumBuckets - 1);
  EXPECT_DOUBLE_EQ(Histogram::bucketLowerBound(9), 1.0);

  Registry Reg;
  Histogram &H = Reg.histogram("test.histogram.buckets");
  H.record(2.0);
  H.record(3.0);
  H.record(2e-4);
  EXPECT_EQ(H.bucketCount(9), 2u);
  EXPECT_EQ(H.bucketCount(5), 1u);
  EXPECT_EQ(H.bucketCount(0), 0u);
}

TEST(HistogramTest, QuantilesAreOrderedAndBounded) {
  Registry Reg;
  Histogram &H = Reg.histogram("test.histogram.quantiles");
  // Empty histogram: all quantiles are zero.
  EXPECT_EQ(H.quantile(0.5), 0.0);
  for (int I = 1; I <= 1000; ++I)
    H.record(double(I)); // Spans buckets [1,10), [10,100), [100,1000].
  double P50 = H.p50(), P95 = H.p95(), P99 = H.p99();
  EXPECT_LE(P50, P95);
  EXPECT_LE(P95, P99);
  EXPECT_GE(P50, H.minValue());
  EXPECT_LE(P99, H.maxValue());
  // Decade buckets bound the estimate to the right order of magnitude:
  // the true p50 is 500, inside [100, 1000).
  EXPECT_GE(P50, 100.0);
  EXPECT_LE(P50, 1000.0);
  EXPECT_GE(P99, 100.0);
}

TEST(HistogramTest, QuantileOfUniformBucketIsInterpolated) {
  Registry Reg;
  Histogram &H = Reg.histogram("test.histogram.interp");
  for (int I = 0; I != 100; ++I)
    H.record(5.0); // One bucket: [1, 10).
  double P50 = H.quantile(0.5);
  EXPECT_GE(P50, 1.0);
  EXPECT_LE(P50, 5.0) << "estimates clamp to the observed max";
  EXPECT_DOUBLE_EQ(H.quantile(1.0), 5.0);
}

TEST(HistogramTest, SnapshotMetricsCarriesQuantiles) {
  Registry Reg;
  Reg.counter("test.snapshot.count").add(7);
  Reg.gauge("test.snapshot.level").set(2.5);
  Histogram &H = Reg.histogram("test.snapshot.samples");
  for (int I = 1; I <= 100; ++I)
    H.record(double(I));
  MetricsSnapshot Snapshot = Reg.snapshotMetrics();
  ASSERT_EQ(Snapshot.Counters.size(), 1u);
  EXPECT_EQ(Snapshot.Counters[0].first, "test.snapshot.count");
  EXPECT_EQ(Snapshot.Counters[0].second, 7u);
  ASSERT_EQ(Snapshot.Gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(Snapshot.Gauges[0].second, 2.5);
  ASSERT_EQ(Snapshot.Histograms.size(), 1u);
  const HistogramSnapshot &HS = Snapshot.Histograms[0].second;
  EXPECT_EQ(HS.Count, 100u);
  EXPECT_LE(HS.P50, HS.P95);
  EXPECT_LE(HS.P95, HS.P99);
  EXPECT_LE(HS.P99, HS.Max);
}

TEST(RegistryTest, ResetZeroesInPlace) {
  Registry Reg;
  Counter &C = Reg.counter("test.reset.count");
  Gauge &G = Reg.gauge("test.reset.value");
  Histogram &H = Reg.histogram("test.reset.samples");
  C.add(7);
  G.set(1.5);
  H.record(3.0);
  Reg.resetMetrics();
  // The same references must still be live and read zero.
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(G.value(), 0.0);
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(&Reg.counter("test.reset.count"), &C);
}

//===----------------------------------------------------------------------===//
// ScopedTimer nesting and aggregation
//===----------------------------------------------------------------------===//

namespace {

/// Captures every sink callback for inspection.
struct RecordingSink : EventSink {
  struct Span {
    double StartS;
    double DurationS;
    int Depth;
    std::string Label;
    SpanContext Context;
  };
  struct Instant {
    double TimeS;
    std::string Name;
    std::vector<std::pair<std::string, std::string>> Fields;
  };
  std::vector<Span> Spans;
  std::vector<Instant> Instants;
  // closeSink() destroys the sink right after close(), so the closed flag
  // must outlive the sink object.
  bool *ClosedOut = nullptr;

  void instant(double TimeS, std::string_view Name,
               const EventField *Fields, size_t NumFields) override {
    Instant Event;
    Event.TimeS = TimeS;
    Event.Name = std::string(Name);
    for (size_t I = 0; I != NumFields; ++I)
      Event.Fields.emplace_back(std::string(Fields[I].Key),
                                Fields[I].FieldKind == EventField::Kind::String
                                    ? std::string(Fields[I].StringValue)
                                    : std::string());
    Instants.push_back(std::move(Event));
  }
  void span(const SpanRecord &Rec) override {
    Spans.push_back({Rec.StartS, Rec.DurationS, Rec.Context.Depth,
                     std::string(Rec.Name), Rec.Context});
  }
  Status close() override {
    if (ClosedOut)
      *ClosedOut = true;
    return Status::ok();
  }
};

} // namespace

TEST(ScopedTimerTest, AggregatesPerLabel) {
  Registry Reg;
  for (int I = 0; I != 3; ++I)
    ScopedTimer Timer(Reg, "test.timer.outer");
  SpanStats Stats = Reg.timerStats("test.timer.outer");
  EXPECT_EQ(Stats.Count, 3u);
  EXPECT_GE(Stats.TotalS, 0.0);
  EXPECT_GE(Stats.MaxS, Stats.MinS);
  EXPECT_EQ(Reg.timerStats("test.timer.unknown").Count, 0u);
}

TEST(ScopedTimerTest, NestedTimersRecordDepth) {
  Registry Reg;
  auto Sink = std::make_unique<RecordingSink>();
  bool SinkClosed = false;
  Sink->ClosedOut = &SinkClosed;
  RecordingSink *Raw = Sink.get();
  Reg.setSink(std::move(Sink));
  {
    ScopedTimer Outer(Reg, "test.timer.outer");
    {
      ScopedTimer Inner(Reg, "test.timer.inner");
    }
  }
  // Inner closes first; depths reflect nesting.
  ASSERT_EQ(Raw->Spans.size(), 2u);
  EXPECT_EQ(Raw->Spans[0].Label, "test.timer.inner");
  EXPECT_EQ(Raw->Spans[0].Depth, 1);
  EXPECT_EQ(Raw->Spans[1].Label, "test.timer.outer");
  EXPECT_EQ(Raw->Spans[1].Depth, 0);
  EXPECT_TRUE(Reg.closeSink().isOk());
  EXPECT_TRUE(SinkClosed);
  EXPECT_EQ(Reg.timerStats("test.timer.outer").Count, 1u);
  EXPECT_EQ(Reg.timerStats("test.timer.inner").Count, 1u);
}

TEST(RegistryTest, EmitEventReachesSink) {
  Registry Reg;
  auto Sink = std::make_unique<RecordingSink>();
  RecordingSink *Raw = Sink.get();
  EXPECT_FALSE(Reg.tracingEnabled());
  Reg.setSink(std::move(Sink));
  EXPECT_TRUE(Reg.tracingEnabled());
  Reg.emitEvent("test.event", {{"x", 1.5}, {"label", "hello"}});
  ASSERT_EQ(Raw->Instants.size(), 1u);
  EXPECT_EQ(Raw->Instants[0].Name, "test.event");
  ASSERT_EQ(Raw->Instants[0].Fields.size(), 2u);
  EXPECT_EQ(Raw->Instants[0].Fields[0].first, "x");
  EXPECT_EQ(Raw->Instants[0].Fields[1].second, "hello");
  EXPECT_TRUE(Reg.closeSink().isOk());
  EXPECT_FALSE(Reg.tracingEnabled());
}

//===----------------------------------------------------------------------===//
// Null-sink hot path: no allocations
//===----------------------------------------------------------------------===//

TEST(RegistryTest, HotPathDoesNotAllocateWithoutSink) {
  Registry Reg;
  // Warm-up creates the metric nodes and the timer slot.
  Counter &C = Reg.counter("test.hot.count");
  Histogram &H = Reg.histogram("test.hot.samples");
  { ScopedTimer Warm(Reg, "test.hot.span"); }

  CountAllocations.store(true);
  NumAllocations.store(0);
  for (int I = 0; I != 1000; ++I) {
    C.add();
    H.record(1e-3 * I);
    Reg.counter("test.hot.count").add(); // Heterogeneous re-lookup.
    ScopedTimer Timer(Reg, "test.hot.span");
    Reg.emitEvent("test.hot.event", {{"i", I}});
  }
  uint64_t Allocated = NumAllocations.load();
  CountAllocations.store(false);
  EXPECT_EQ(Allocated, 0u);
  EXPECT_EQ(C.value(), 2000u);
}

//===----------------------------------------------------------------------===//
// JSON helpers and emitted-output validity
//===----------------------------------------------------------------------===//

TEST(JsonTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(jsonEscape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(jsonQuote("x"), "\"x\"");
}

TEST(JsonTest, NumbersAndNonFinite) {
  EXPECT_TRUE(validateJson(jsonNumber(1.5)).isOk());
  EXPECT_TRUE(validateJson(jsonNumber(-3e-9)).isOk());
  EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(jsonNumber(std::nan("")), "null");
}

TEST(JsonTest, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(validateJson("{\"a\": [1, 2.5e3, true, null, \"x\"]}").isOk());
  EXPECT_TRUE(validateJson("  42 ").isOk());
  EXPECT_FALSE(validateJson("{\"a\": }").isOk());
  EXPECT_FALSE(validateJson("[1, 2").isOk());
  EXPECT_FALSE(validateJson("{} {}").isOk()); // Trailing content.
  EXPECT_FALSE(validateJson("{'a': 1}").isOk());
  EXPECT_FALSE(validateJson("").isOk());

  size_t NumLines = 0;
  EXPECT_TRUE(
      validateJsonLines("{\"a\": 1}\n{\"b\": 2}\n\n{\"c\": 3}\n", &NumLines)
          .isOk());
  EXPECT_EQ(NumLines, 3u);
  EXPECT_FALSE(validateJsonLines("{\"a\": 1}\nnot json\n").isOk());
}

TEST(RegistryTest, MetricsJsonIsValidAndEscaped) {
  Registry Reg;
  // A hostile metric name must come out as a correctly escaped key.
  Reg.counter("weird\"name\\with\ncontrol").add(3);
  Reg.gauge("test.gauge.value").set(1.25);
  Reg.histogram("test.histogram.samples").record(2.0);
  { ScopedTimer Timer(Reg, "test.timer.span"); }
  std::string Json = Reg.metricsJson();
  Status Valid = validateJson(Json);
  EXPECT_TRUE(Valid.isOk()) << Valid.message() << "\n" << Json;
  EXPECT_NE(Json.find("weird\\\"name\\\\with\\ncontrol"),
            std::string::npos);
}

TEST(JsonlSinkTest, EmitsOneValidObjectPerLine) {
  std::string Path = ::testing::TempDir() + "telemetry_test_trace.jsonl";
  Registry Reg;
  {
    Expected<std::unique_ptr<EventSink>> Sink = makeJsonlSink(Path);
    ASSERT_TRUE(Sink.hasValue()) << Sink.message();
    Reg.setSink(std::move(*Sink));
  }
  Reg.emitEvent("test.event.first", {{"x", 1.0}, {"flag", true}});
  { ScopedTimer Timer(Reg, "test.span"); }
  Reg.emitEvent("quote\"in\"name", {{"s", "va\"lue"}});
  ASSERT_TRUE(Reg.closeSink().isOk());

  std::FILE *File = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(File, nullptr);
  std::string Text;
  char Buffer[4096];
  size_t Got;
  while ((Got = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Text.append(Buffer, Got);
  std::fclose(File);
  std::remove(Path.c_str());

  size_t NumLines = 0;
  Status Valid = validateJsonLines(Text, &NumLines);
  EXPECT_TRUE(Valid.isOk()) << Valid.message() << "\n" << Text;
  EXPECT_EQ(NumLines, 3u);
}

TEST(ChromeTraceSinkTest, EmitsOneValidJsonArray) {
  std::string Path = ::testing::TempDir() + "telemetry_test_trace.json";
  Registry Reg;
  {
    Expected<std::unique_ptr<EventSink>> Sink = makeChromeTraceSink(Path);
    ASSERT_TRUE(Sink.hasValue()) << Sink.message();
    Reg.setSink(std::move(*Sink));
  }
  {
    ScopedTimer Outer(Reg, "test.span.outer");
    Reg.emitEvent("test.event", {{"i", 7}});
  }
  ASSERT_TRUE(Reg.closeSink().isOk());

  std::FILE *File = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(File, nullptr);
  std::string Text;
  char Buffer[4096];
  size_t Got;
  while ((Got = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Text.append(Buffer, Got);
  std::fclose(File);
  std::remove(Path.c_str());

  Status Valid = validateJson(Text);
  EXPECT_TRUE(Valid.isOk()) << Valid.message() << "\n" << Text;
  EXPECT_EQ(Text.front(), '[');
  EXPECT_NE(Text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(Text.find("\"ph\": \"i\""), std::string::npos);
}
