//===- tests/metrics_test.cpp - Efficiency metric tests -----------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "metrics/Metrics.h"

#include "core/Designs.h"

#include <gtest/gtest.h>

using namespace rcs;
using namespace rcs::metrics;
using namespace rcs::rcsystem;

namespace {

ModuleEfficiency efficiencyOf(const ModuleConfig &Config) {
  ComputationalModule Module(Config);
  auto Report = Module.solveSteadyState(core::makeNominalConditions());
  EXPECT_TRUE(Report.hasValue()) << Report.message();
  return computeModuleEfficiency(Module, *Report);
}

} // namespace

TEST(MetricsTest, FieldsAreInternallyConsistent) {
  ComputationalModule Skat(core::makeSkatModule());
  auto Report = Skat.solveSteadyState(core::makeNominalConditions());
  ASSERT_TRUE(Report.hasValue());
  ModuleEfficiency Eff = computeModuleEfficiency(Skat, *Report);
  EXPECT_NEAR(Eff.PeakGflops, Skat.peakGflops(), 1e-6);
  EXPECT_NEAR(Eff.TotalPowerW,
              Report->ItPowerW + Report->PsuLossW + Report->PumpPowerW +
                  Report->FanPowerW,
              1e-6);
  EXPECT_NEAR(Eff.GflopsPerWatt, Eff.PeakGflops / Eff.TotalPowerW, 1e-9);
  EXPECT_NEAR(Eff.GflopsPerU, Eff.PeakGflops / 3.0, 1e-6);
  EXPECT_NEAR(Eff.BoardsPerU, 4.0, 1e-9);
}

TEST(MetricsTest, PueAboveOneAndOrdered) {
  ModuleEfficiency Air = efficiencyOf(core::makeUltraScaleAirModule());
  ModuleEfficiency Immersion = efficiencyOf(core::makeSkatModule());
  EXPECT_GT(Air.EstimatedPue, 1.0);
  EXPECT_GT(Immersion.EstimatedPue, 1.0);
  // Chiller-borne liquid heat is cheaper to remove than CRAC air heat.
  EXPECT_LT(Immersion.EstimatedPue, Air.EstimatedPue);
}

TEST(MetricsTest, BetterChillerImprovesPue) {
  ComputationalModule Skat(core::makeSkatModule());
  auto Report = Skat.solveSteadyState(core::makeNominalConditions());
  ASSERT_TRUE(Report.hasValue());
  ModuleEfficiency Poor = computeModuleEfficiency(Skat, *Report, 3.0);
  ModuleEfficiency Good = computeModuleEfficiency(Skat, *Report, 8.0);
  EXPECT_LT(Good.EstimatedPue, Poor.EstimatedPue);
}

TEST(MetricsTest, GenerationComparisonRatios) {
  ModuleEfficiency Old;
  Old.PeakGflops = 1000.0;
  Old.BoardsPerU = 1.0;
  Old.GflopsPerU = 500.0;
  Old.GflopsPerWatt = 2.0;
  ModuleEfficiency New;
  New.PeakGflops = 8700.0;
  New.BoardsPerU = 3.0;
  New.GflopsPerU = 4350.0;
  New.GflopsPerWatt = 5.0;
  GenerationGain Gain = compareGenerations(Old, New);
  EXPECT_DOUBLE_EQ(Gain.PerformanceRatio, 8.7);
  EXPECT_DOUBLE_EQ(Gain.PackingDensityRatio, 3.0);
  EXPECT_DOUBLE_EQ(Gain.SpecificPerformanceRatio, 8.7);
  EXPECT_DOUBLE_EQ(Gain.EfficiencyRatio, 2.5);
}

TEST(MetricsTest, ZeroBaselineGivesZeroRatios) {
  ModuleEfficiency Zero;
  ModuleEfficiency Some;
  Some.PeakGflops = 100.0;
  GenerationGain Gain = compareGenerations(Zero, Some);
  EXPECT_DOUBLE_EQ(Gain.PerformanceRatio, 0.0);
  EXPECT_DOUBLE_EQ(Gain.PackingDensityRatio, 0.0);
}
