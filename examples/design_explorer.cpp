//===- examples/design_explorer.cpp - Design-space exploration ---------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's engineering method as code: rank candidate coolants by the
/// Section 2 selection criteria, sweep pin-fin sink geometries and pump
/// sizings (Section 4's experimental optimization goals), and find the
/// warmest chilled-water setpoint that still holds the junction limit.
///
//===----------------------------------------------------------------------===//

#include "core/DesignSpace.h"
#include "core/Designs.h"
#include "fluids/SelectionCriteria.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace rcs;

static void exploreCoolants() {
  auto Air = fluids::makeAir();
  auto Water = fluids::makeWater();
  auto Glycol = fluids::makeGlycolSolution(0.3);
  auto White = fluids::makeWhiteMineralOil();
  auto Md45 = fluids::makeMineralOilMd45();
  auto Skat = fluids::makeEngineeredDielectric();
  auto Ranking = fluids::rankCoolants(
      {Air.get(), Water.get(), Glycol.get(), White.get(), Md45.get(),
       Skat.get()},
      30.0);

  std::printf("Coolant ranking by the paper's selection criteria "
              "(Section 2):\n");
  Table T({"rank", "fluid", "total", "heat", "viscosity", "dielectric",
           "fire", "cost", "gates"});
  int Rank = 1;
  for (const fluids::SelectionScore &Score : Ranking)
    T.addRow({formatString("%d", Rank++), Score.FluidName,
              formatString("%.3f", Score.Total),
              formatString("%.2f", Score.HeatTransferScore),
              formatString("%.2f", Score.ViscosityScore),
              formatString("%.2f", Score.DielectricScore),
              formatString("%.2f", Score.FireSafetyScore),
              formatString("%.2f", Score.CostScore),
              Score.PassesHardGates ? "pass" : "FAIL (conducting)"});
  std::printf("%s\n", T.render().c_str());
}

static void exploreSinks() {
  auto Candidates = core::sweepImmersionSinks(core::makeSkatModule(),
                                              core::makeNominalConditions());
  std::printf("Pin-fin sink sweep on the SKAT module (best 8 of %zu):\n",
              Candidates.size());
  Table T({"pin h (mm)", "pitch (mm)", "pin d (mm)", "R (K/W)", "dP (Pa)",
           "max Tj (C)", "score"});
  size_t Shown = 0;
  for (const core::SinkCandidate &Candidate : Candidates) {
    if (Shown++ == 8)
      break;
    T.addRow({formatString("%.0f", Candidate.Geometry.PinHeightM * 1000.0),
              formatString("%.1f", Candidate.Geometry.PitchM * 1000.0),
              formatString("%.1f",
                           Candidate.Geometry.PinDiameterM * 1000.0),
              formatString("%.3f", Candidate.ResistanceKPerW),
              formatString("%.0f", Candidate.PressureDropPa),
              formatString("%.1f", Candidate.MaxJunctionTempC),
              formatString("%.2f", Candidate.Score)});
  }
  std::printf("%s\n", T.render().c_str());
}

static void explorePumps() {
  auto Candidates = core::sweepOilPumps(
      core::makeSkatModule(), core::makeNominalConditions(),
      {1.2e-3, 1.7e-3, 2.2e-3, 3.0e-3, 4.0e-3}, {4.0e4, 6.0e4, 8.0e4});
  std::printf("Oil pump sizing sweep (best 6 of %zu):\n",
              Candidates.size());
  Table T({"rated (l/min)", "head (kPa)", "achieved (l/min)", "max Tj (C)",
           "pump (W)", "score"});
  size_t Shown = 0;
  for (const core::PumpCandidate &Candidate : Candidates) {
    if (Shown++ == 6)
      break;
    T.addRow({formatString("%.0f", Candidate.RatedFlowM3PerS * 60000.0),
              formatString("%.0f", Candidate.RatedHeadPa / 1000.0),
              formatString("%.0f",
                           Candidate.AchievedFlowM3PerS * 60000.0),
              formatString("%.1f", Candidate.MaxJunctionTempC),
              formatString("%.0f", Candidate.PumpElectricalW),
              formatString("%.2f", Candidate.Score)});
  }
  std::printf("%s\n", T.render().c_str());
}

int main() {
  exploreCoolants();
  exploreSinks();
  explorePumps();

  Expected<double> Setpoint = core::maxWaterSetpointForJunctionLimit(
      core::makeSkatModule(), core::makeNominalConditions(),
      /*JunctionLimitC=*/55.0);
  if (Setpoint)
    std::printf("Warmest chilled-water setpoint holding Tj <= 55 C: "
                "%.1f C (design default: 18 C)\n",
                *Setpoint);
  else
    std::printf("setpoint search failed: %s\n", Setpoint.message().c_str());
  return 0;
}
