//===- examples/cooling_comparison.cpp - Air vs cold plate vs immersion ------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 2 argument as a table: one 12-board module of Kintex
/// UltraScale FPGAs solved under the three cooling technologies, plus the
/// fluid-property comparison the paper quotes (heat capacity and flow
/// budget per FPGA).
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "fluids/FluidComparison.h"
#include "metrics/Metrics.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace rcs;
using namespace rcs::rcsystem;

static void addModuleRow(Table &T, const char *Label,
                         const ModuleConfig &Config,
                         const ExternalConditions &Conditions) {
  ComputationalModule Module(Config);
  Expected<ModuleThermalReport> Report = Module.solveSteadyState(Conditions);
  if (!Report) {
    T.addRow({Label, "unsolvable", "-", "-", "-", "-"});
    std::printf("note: %s: %s\n", Label, Report.message().c_str());
    return;
  }
  metrics::ModuleEfficiency Eff =
      metrics::computeModuleEfficiency(Module, *Report);
  T.addRow({Label, formatString("%.1f", Report->MaxJunctionTempC),
            formatString("%.1f", Report->CoolantHotTempC),
            formatString("%.2f", Eff.GflopsPerWatt),
            formatString("%.3f", Eff.EstimatedPue),
            Report->WithinReliableLimit ? "yes" : "NO"});
}

int main() {
  ExternalConditions Conditions = core::makeNominalConditions();

  // The same compute complement (12 x 8 XCKU095) under each technology.
  ModuleConfig Immersion = core::makeSkatModule();

  ModuleConfig ColdPlate = Immersion;
  ColdPlate.Name = "cold plate";
  ColdPlate.Cooling = CoolingKind::ColdPlate;
  ColdPlate.ColdPlate.WaterFlowM3PerS = 1.6e-3;

  ModuleConfig Air = Immersion;
  Air.Name = "forced air";
  Air.Cooling = CoolingKind::ForcedAir;
  Air.Air = core::makeUltraScaleAirModule().Air;
  // Scale airflow for 12 boards instead of 4.
  Air.Air.AirflowM3PerS *= 3.0;
  Air.Air.FlowAreaM2 *= 3.0;

  std::printf("One 96-FPGA Kintex UltraScale module under three cooling "
              "technologies\n\n");
  Table T({"cooling", "max Tj (C)", "coolant out (C)", "GFLOPS/W", "PUE est",
           "in long-life band"});
  addModuleRow(T, "forced air", Air, Conditions);
  addModuleRow(T, "cold plate", ColdPlate, Conditions);
  addModuleRow(T, "immersion (SKAT)", Immersion, Conditions);
  std::printf("%s\n", T.render().c_str());

  // The paper's fluid-side numbers.
  auto AirFluid = fluids::makeAir();
  auto Water = fluids::makeWater();
  auto Oil = fluids::makeMineralOilMd45();
  std::printf("Fluid comparison at 25 C (paper Section 2):\n");
  std::printf("  water/air volumetric heat capacity ratio: %.0f "
              "(paper: 1500..4000)\n",
              fluids::volumetricHeatCapacityRatio(*Water, *AirFluid, 25.0));
  std::printf("  oil/air volumetric heat capacity ratio:   %.0f\n",
              fluids::volumetricHeatCapacityRatio(*Oil, *AirFluid, 25.0));
  double WaterFlow =
      fluids::requiredVolumeFlowM3PerS(*Water, 91.0, 25.0, 5.0);
  double AirFlow =
      fluids::requiredVolumeFlowM3PerS(*AirFluid, 91.0, 25.0, 5.0);
  std::printf("  flow to cool one 91 W FPGA at dT=5C: %.0f ml/min water vs "
              "%.2f m^3/min air (paper: 250 ml vs 1 m^3)\n",
              WaterFlow * 6.0e7, AirFlow * 60.0);
  return 0;
}
