//===- examples/application_study.cpp - Applications to watts to degrees -----===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closes the loop the paper's introduction opens: real RCS applications
/// (spin-glass Monte-Carlo, dense linear algebra, streaming DSP) are run
/// as reference kernels, mapped onto the XCKU095's resources, and the
/// resulting utilization drives the SKAT module's electro-thermal solve -
/// task to pipelines to watts to degrees.
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "workload/Kernels.h"

#include <cstdio>

using namespace rcs;
using namespace rcs::workload;

namespace {

struct StudyRow {
  const char *Label;
  FpgaMapping Mapping;
  double HostOps;
};

} // namespace

int main() {
  const fpga::FpgaSpec &Spec = fpga::getFpgaSpec(fpga::FpgaModel::XCKU095);

  // Run each kernel on the host (validates the algorithm and counts the
  // useful operations), then map it onto the FPGA fabric.
  std::printf("Running reference kernels...\n");
  IsingKernel Spin(256, 0.44, 1);
  KernelRunResult SpinRun = Spin.run(200);
  std::printf("  spin-glass MC: %d^2 lattice, 200 sweeps, m = %.3f, "
              "E = %.3f per spin\n",
              256, Spin.magnetizationPerSpin(), Spin.energyPerSpin());

  GemmKernel Gemm(256);
  KernelRunResult GemmRun = Gemm.run();
  std::printf("  GEMM: 256^3, checksum %.3e\n", GemmRun.Checksum);

  FirKernel Fir(64, 100000);
  KernelRunResult FirRun = Fir.run();
  std::printf("  FIR: 64 taps x 100k samples, checksum %.3e\n\n",
              FirRun.Checksum);

  StudyRow Rows[] = {
      {"spin-glass Monte-Carlo", Spin.mapTo(Spec), SpinRun.OpCount},
      {"dense GEMM", Gemm.mapTo(Spec), GemmRun.OpCount},
      {"streaming FIR", Fir.mapTo(Spec), FirRun.OpCount},
  };

  rcsystem::ComputationalModule Skat(core::makeSkatModule());
  rcsystem::ExternalConditions Conditions = core::makeNominalConditions();

  std::printf("SKAT module under each application (96 x XCKU095):\n");
  Table T({"application", "fabric util", "pipelines/FPGA",
           "per-FPGA power (W)", "CM power (kW)", "max Tj (C)",
           "sustained TOPS (module)"});
  for (StudyRow &Row : Rows) {
    Expected<rcsystem::ModuleThermalReport> Report =
        Skat.solveSteadyState(Conditions,
                              Row.Mapping.toWorkloadPoint());
    if (!Report) {
      std::fprintf(stderr, "%s failed: %s\n", Row.Label,
                   Report.message().c_str());
      return 1;
    }
    T.addRow({Row.Label,
              formatString("%.0f%%", Row.Mapping.Utilization * 100.0),
              formatString("%d", Row.Mapping.PipelinesFitted),
              formatString("%.1f", Report->Fpgas.front().PowerW),
              formatString("%.1f", Report->TotalHeatW / 1000.0),
              formatString("%.1f", Report->MaxJunctionTempC),
              formatString("%.1f",
                           96.0 * Row.Mapping.SustainedGflops / 1000.0)});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("The spin machine fills the fabric (the paper's 85..95%% "
              "workload band) and dissipates the full 91 W per chip; the "
              "streaming filter leaves thermal headroom that could host a "
              "second accelerator partition.\n");
  return 0;
}
