//===- examples/rack_outage.cpp - Chiller outage at rack scale ---------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A facility incident, end to end: the rack chiller fails at t = 1 h and
/// is repaired 20 minutes later. The shared water loop and every module's
/// oil bath ride the outage on thermal inertia; per-module protection
/// stays armed but never fires. A second run without repair shows the
/// protection staging the rack down safely.
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "sim/RackTransient.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace rcs;

static void printTrace(const char *Label,
                       const std::vector<sim::RackTraceSample> &Trace) {
  std::printf("%s\n", Label);
  std::printf("  t(h)   water(C)  oil(C)  maxTj(C)  chiller(kW)  down\n");
  double NextPrint = 0.0;
  int LastDown = -1;
  for (const sim::RackTraceSample &Sample : Trace) {
    bool DownChanged = Sample.ModulesShutDown != LastDown;
    if (Sample.TimeS >= NextPrint || DownChanged) {
      std::printf("  %5.2f  %8.1f  %6.1f  %8.1f  %11.1f  %4d\n",
                  Sample.TimeS / 3600.0, Sample.WaterTempC,
                  Sample.MeanOilTempC, Sample.MaxJunctionTempC,
                  Sample.ChillerDutyW / 1000.0, Sample.ModulesShutDown);
      NextPrint = Sample.TimeS + 1200.0;
      LastDown = Sample.ModulesShutDown;
    }
  }
  std::printf("\n");
}

int main() {
  // Scenario 1: 20-minute outage, repaired.
  sim::RackTransientSimulator Repaired(core::makeSkatRack(), 25.0);
  Repaired.scheduleChillerCapacity(3600.0, 0.0);
  Repaired.scheduleChillerCapacity(3600.0 + 1200.0, 1.0);
  Expected<std::vector<sim::RackTraceSample>> RepairTrace =
      Repaired.run(4.0 * 3600.0);
  if (!RepairTrace) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 RepairTrace.message().c_str());
    return 1;
  }
  printTrace("Chiller fails at 1.0 h, repaired at 1.33 h:", *RepairTrace);

  // Scenario 2: the chiller stays dead; protection stages the rack down.
  sim::RackTransientSimulator Unrepaired(core::makeSkatRack(), 25.0);
  Unrepaired.scheduleChillerCapacity(3600.0, 0.0);
  Expected<std::vector<sim::RackTraceSample>> DeadTrace =
      Unrepaired.run(8.0 * 3600.0);
  if (!DeadTrace) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 DeadTrace.message().c_str());
    return 1;
  }
  printTrace("Chiller fails at 1.0 h and stays down:", *DeadTrace);

  std::printf("The oil and water inventories buy tens of minutes of "
              "protected full-power operation; when the outage outlasts "
              "them, per-module protection sheds the rack without "
              "exceeding silicon limits.\n");
  return 0;
}
