//===- examples/rack_failover.cpp - Rack hydraulic failover ------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Fig. 5 story end to end: a 47U rack of 12 SKAT modules on
/// reverse-return manifolds. We solve the healthy rack, then valve off one
/// module's circulation loop for maintenance and show that the remaining
/// loops re-balance evenly - the paper's claim that no extra hydraulic
/// balancing subsystem is needed.
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "support/Numerics.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace rcs;
using namespace rcs::rcsystem;

static void printRack(const char *Label, const RackReport &Report) {
  std::printf("%s\n", Label);
  Table T({"module", "water flow (l/min)", "max Tj (C)", "oil out (C)",
           "state"});
  for (size_t I = 0; I != Report.Modules.size(); ++I) {
    const ModuleThermalReport &M = Report.Modules[I];
    bool Down = nearZero(M.TotalHeatW);
    T.addRow({formatString("CM %zu", I + 1),
              formatString("%.1f", Report.LoopFlowsM3PerS[I] * 60000.0),
              Down ? "-" : formatString("%.1f", M.MaxJunctionTempC),
              Down ? "-" : formatString("%.1f", M.CoolantHotTempC),
              Down ? "isolated" : "running"});
  }
  std::printf("%s", T.render().c_str());
  std::printf("flow imbalance (max-min)/mean: %.2f%%   rack IT power: "
              "%.1f kW   PUE: %.3f   peak: %.3f PFLOPS\n\n",
              Report.Balance.ImbalanceFraction * 100.0,
              Report.TotalItPowerW / 1000.0, Report.Pue,
              Report.PeakGflops * 1e9 / 1e15);
}

int main() {
  Rack TheRack(core::makeSkatRack());

  Expected<RackReport> Healthy = TheRack.solveSteadyState(25.0);
  if (!Healthy) {
    std::fprintf(stderr, "rack solve failed: %s\n",
                 Healthy.message().c_str());
    return 1;
  }
  printRack("Healthy rack (reverse-return manifolds, Fig. 5):", *Healthy);

  Expected<RackReport> Degraded =
      TheRack.solveSteadyState(25.0, /*IsolatedLoop=*/4);
  if (!Degraded) {
    std::fprintf(stderr, "rack solve failed: %s\n",
                 Degraded.message().c_str());
    return 1;
  }
  printRack("CM 5 isolated for maintenance:", *Degraded);

  for (const std::string &Warning : Degraded->Warnings)
    std::printf("warning: %s\n", Warning.c_str());
  std::printf("Result: the surviving loops gain flow uniformly; no "
              "balancing valves were touched.\n");
  return 0;
}
