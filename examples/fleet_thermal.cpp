//===- examples/fleet_thermal.cpp - Datacenter-scale sparse thermal solve ----===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fleet-scale thermal modeling: build a datacenter row of N racks x 8
/// immersion modules (thermal::buildFleetNetwork), solve its steady state
/// through the sparse LDL^T path, then ride out a facility-water
/// excursion transiently. At 128 racks the reduced system has 2176
/// unknowns — a scale where the dense seed path would need ~38 MB per
/// factor and O(n^3) work per refactorization, and the CSR +
/// fill-reducing-ordering path stays interactive.
///
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"
#include "support/Table.h"
#include "thermal/Fleet.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace rcs;

int main() {
  // 1. A row of 128 racks, 8 modules each, on shared 18 C facility water.
  thermal::FleetConfig Config;
  Config.NumRacks = 128;
  thermal::FleetNetwork Fleet = thermal::buildFleetNetwork(Config);
  thermal::ThermalNetwork &Net = Fleet.Net;

  std::printf("fleet: %zu racks x %zu modules, %zu unknowns (sparse %s, "
              "threshold %zu)\n\n",
              Config.NumRacks, Config.ModulesPerRack,
              thermal::fleetUnknowns(Config),
              Net.sparseSolverEnabled() ? "on" : "off",
              Net.sparseThresholdUnknowns());

  // 2. Steady state through the sparse path.
  Expected<std::vector<double>> Steady = Net.solveSteadyState();
  if (!Steady) {
    std::fprintf(stderr, "fleet solve failed: %s\n", Steady.message().c_str());
    return 1;
  }
  double MaxChipC = 0.0, MaxLoopC = 0.0;
  for (thermal::NodeId Chip : Fleet.Chips)
    MaxChipC = std::max(MaxChipC, (*Steady)[Chip]);
  for (thermal::NodeId Loop : Fleet.RackLoops)
    MaxLoopC = std::max(MaxLoopC, (*Steady)[Loop]);
  double FacilityHeatW = Net.boundaryHeatFlowW(Fleet.Facility, *Steady);

  Table Summary({"quantity", "value"});
  Summary.addRow({"total IT heat",
                  formatString("%.1f kW", Net.totalSourcePowerW() / 1000.0)});
  Summary.addRow({"facility heat pickup",
                  formatString("%.1f kW", FacilityHeatW / 1000.0)});
  Summary.addRow({"hottest chip", formatString("%.1f C", MaxChipC)});
  Summary.addRow({"hottest rack loop", formatString("%.1f C", MaxLoopC)});
  Summary.addRow({"energy residual",
                  formatString("%.2e W",
                               Net.steadyStateResidualW(*Steady))});
  Summary.addRow({"solver factor memory",
                  formatString("%.1f kB", Net.solverMemoryBytes() / 1024.0)});
  std::printf("%s\n", Summary.render().c_str());

  // 3. Facility-water excursion: the chillers lose 6 K for ten minutes.
  //    The transient factor is built once and reused every step; the
  //    warm-water excursion only touches the right-hand side.
  std::vector<double> Temps = *Steady;
  const double DtS = 5.0;
  double WorstChipC = MaxChipC;
  Net.setBoundaryTemp(Fleet.Facility, 24.0);
  for (int Step = 0; Step != 120; ++Step) {
    if (Status Stepped = Net.stepTransient(Temps, DtS); !Stepped.isOk()) {
      std::fprintf(stderr, "fleet step failed: %s\n",
                   Stepped.message().c_str());
      return 1;
    }
    for (thermal::NodeId Chip : Fleet.Chips)
      WorstChipC = std::max(WorstChipC, Temps[Chip]);
  }
  std::printf("after 10 min at 24 C facility water: hottest chip %.1f C "
              "(was %.1f C)\n",
              WorstChipC, MaxChipC);
  return 0;
}
