//===- examples/workload_thermal.cpp - Transient workload response -----------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A day in the life of a SKAT module: warm-up under a spin-glass
/// Monte-Carlo load, a drop to an I/O-bound phase, a pump failure with the
/// monitoring subsystem reacting, and recovery. The full trace is written
/// to workload_trace.csv for plotting.
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "sim/Transient.h"
#include "support/Csv.h"
#include "support/StringUtils.h"
#include "workload/Workload.h"

#include <cstdio>

using namespace rcs;

int main() {
  sim::TransientConfig Config;
  Config.SampleIntervalS = 30.0;
  sim::TransientSimulator Simulator(core::makeSkatModule(),
                                    core::makeNominalConditions(), Config);

  // Timeline: spin-glass load from t=0; I/O phase at t=1.5h; back to full
  // load at t=2h; pump failure at t=3h; repair at t=3.5h.
  using workload::ApplicationClass;
  Simulator.scheduleWorkload(
      0.0, workload::nominalPoint(ApplicationClass::SpinGlassMonteCarlo));
  Simulator.scheduleWorkload(
      1.5 * 3600.0,
      workload::nominalPoint(ApplicationClass::DenseLinearAlgebra));
  Simulator.scheduleWorkload(
      2.0 * 3600.0,
      workload::nominalPoint(ApplicationClass::SpinGlassMonteCarlo));
  Simulator.schedulePumpSpeed(3.0 * 3600.0, 0.0);
  Simulator.schedulePumpSpeed(3.5 * 3600.0, 1.0);

  Expected<std::vector<sim::TraceSample>> Trace =
      Simulator.run(5.0 * 3600.0);
  if (!Trace) {
    std::fprintf(stderr, "simulation failed: %s\n", Trace.message().c_str());
    return 1;
  }

  CsvWriter Csv({"time_s", "junction_C", "oil_C", "power_W",
                 "flow_m3_per_s", "pump_speed", "clock_fraction", "alarm",
                 "shutdown"});
  for (const sim::TraceSample &Sample : *Trace)
    Csv.addRow({formatString("%.0f", Sample.TimeS),
                formatString("%.2f", Sample.MaxJunctionTempC),
                formatString("%.2f", Sample.OilTempC),
                formatString("%.0f", Sample.TotalPowerW),
                formatString("%.5f", Sample.OilFlowM3PerS),
                formatString("%.2f", Sample.PumpSpeedFraction),
                formatString("%.2f", Sample.ClockFraction),
                rcsystem::alarmLevelName(Sample.Alarm),
                Sample.ShutDown ? "1" : "0"});
  Status Saved = Csv.writeFile("workload_trace.csv");
  if (!Saved.isOk())
    std::fprintf(stderr, "csv: %s\n", Saved.message().c_str());

  // Console digest: one line per 30 simulated minutes plus every alarm
  // change.
  std::printf("time(h)  Tj(C)  oil(C)  power(kW)  pump  clock  alarm\n");
  rcsystem::AlarmLevel LastAlarm = rcsystem::AlarmLevel::Normal;
  double NextPrint = 0.0;
  for (const sim::TraceSample &Sample : *Trace) {
    bool AlarmChanged = Sample.Alarm != LastAlarm;
    if (Sample.TimeS >= NextPrint || AlarmChanged) {
      std::printf("%6.2f  %5.1f  %6.1f  %9.2f  %4.2f  %5.2f  %s%s\n",
                  Sample.TimeS / 3600.0, Sample.MaxJunctionTempC,
                  Sample.OilTempC, Sample.TotalPowerW / 1000.0,
                  Sample.PumpSpeedFraction, Sample.ClockFraction,
                  rcsystem::alarmLevelName(Sample.Alarm),
                  Sample.ShutDown ? " (shut down)" : "");
      NextPrint = Sample.TimeS + 1800.0;
      LastAlarm = Sample.Alarm;
    }
  }
  std::printf("\nFull trace: workload_trace.csv (%zu samples)\n",
              Trace->size());
  return 0;
}
