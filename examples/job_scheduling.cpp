//===- examples/job_scheduling.cpp - Thermal-aware job scheduling ------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The RCS as a shared facility: a mixed queue of spin-glass, molecular
/// dynamics, linear algebra and DSP jobs is scheduled onto a rack of SKAT
/// modules under three placement policies, and the resulting makespan,
/// energy and thermal peaks are compared.
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "workload/Scheduler.h"

#include <cstdio>

using namespace rcs;
using namespace rcs::workload;

int main() {
  rcsystem::RackConfig Rack = core::makeSkatRack();
  Rack.NumModules = 6; // Half a rack keeps the demo fast.
  rcsystem::ExternalConditions Conditions = core::makeNominalConditions();

  std::vector<Job> Jobs = makeStandardJobMix(24, /*Seed=*/2018);
  std::printf("Scheduling %zu jobs (8..48 FPGAs, 0.5..6 h) on %d SKAT "
              "modules:\n\n",
              Jobs.size(), Rack.NumModules);

  Table T({"policy", "makespan (h)", "energy (kWh)", "peak Tj (C)",
           "mean utilization", "thermal violations"});
  for (PlacementPolicy Policy :
       {PlacementPolicy::FirstFit, PlacementPolicy::CoolestFirst,
        PlacementPolicy::LoadSpread}) {
    Expected<ScheduleResult> Result =
        scheduleOnRack(Rack, Conditions, Jobs, Policy);
    if (!Result) {
      std::fprintf(stderr, "%s failed: %s\n", placementPolicyName(Policy),
                   Result.message().c_str());
      return 1;
    }
    T.addRow({placementPolicyName(Policy),
              formatString("%.2f", Result->MakespanHours),
              formatString("%.1f", Result->EnergyKwh),
              formatString("%.1f", Result->PeakJunctionC),
              formatString("%.0f%%", Result->MeanUtilization * 100.0),
              formatString("%d", Result->ThermalViolations)});
  }
  Expected<ScheduleResult> Backfilled = scheduleOnRack(
      Rack, Conditions, Jobs, PlacementPolicy::CoolestFirst,
      /*Backfill=*/true);
  if (Backfilled)
    T.addRow({"coolest first + backfill",
              formatString("%.2f", Backfilled->MakespanHours),
              formatString("%.1f", Backfilled->EnergyKwh),
              formatString("%.1f", Backfilled->PeakJunctionC),
              formatString("%.0f%%", Backfilled->MeanUtilization * 100.0),
              formatString("%d", Backfilled->ThermalViolations)});
  std::printf("%s\n", T.render().c_str());
  std::printf("On an immersion rack every policy stays deep inside the "
              "long-life band - placement freedom the air-cooled "
              "generations never had.\n");
  return 0;
}
