//===- examples/quickstart.cpp - skatsim in 60 lines -------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: build the paper's SKAT immersion-cooled computational
/// module, solve its steady state under nominal machine-room conditions,
/// and print the operating point the paper reports in Section 3.
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace rcs;

int main() {
  // 1. A SKAT module: 3U, 12 boards x 8 Kintex UltraScale FPGAs, immersed
  //    in an engineered dielectric, pump + plate HX in the heat-exchange
  //    section.
  rcsystem::ModuleConfig Config = core::makeSkatModule();
  rcsystem::ComputationalModule Skat(Config);

  // 2. Nominal boundary conditions: 25 C room, 18 C chilled water.
  rcsystem::ExternalConditions Conditions = core::makeNominalConditions();

  // 3. Solve the coupled electro-thermal-hydraulic steady state.
  Expected<rcsystem::ModuleThermalReport> Report =
      Skat.solveSteadyState(Conditions);
  if (!Report) {
    std::fprintf(stderr, "solve failed: %s\n", Report.message().c_str());
    return 1;
  }

  std::printf("SKAT computational module - steady state\n\n");
  Table Summary({"quantity", "value", "paper says"});
  Summary.addRow({"FPGAs", formatString("%d", Skat.computeFpgaCount()),
                  "12 CCBs x 8 FPGAs"});
  Summary.addRow({"power per FPGA",
                  formatString("%.1f W", Report->Fpgas.front().PowerW),
                  "91 W"});
  Summary.addRow({"FPGA heat, whole CM",
                  formatString("%.0f W", Report->FpgaHeatW), "8736 W"});
  Summary.addRow({"coolant temperature",
                  formatString("%.1f C", Report->CoolantHotTempC),
                  "<= 30 C"});
  Summary.addRow({"max FPGA temperature",
                  formatString("%.1f C", Report->MaxJunctionTempC),
                  "<= 55 C"});
  Summary.addRow({"oil flow",
                  formatString("%.0f l/min",
                               Report->CoolantFlowM3PerS * 60000.0),
                  "-"});
  Summary.addRow({"peak performance",
                  formatString("%.1f TFLOPS", Skat.peakGflops() / 1000.0),
                  "8.7x Taygeta"});
  std::printf("%s\n", Summary.render().c_str());

  for (const std::string &Warning : Report->Warnings)
    std::printf("warning: %s\n", Warning.c_str());
  std::printf("within long-life junction limit: %s\n",
              Report->WithinReliableLimit ? "yes" : "no");
  return 0;
}
