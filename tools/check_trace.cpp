//===- tools/check_trace.cpp - Trace/metrics JSON validator -------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates observability artifacts the simulator emits:
///
///   check_trace <file>...
///
/// The file kind is auto-detected:
///
///  - flight-recorder dumps (JSONL with a `flight_recorder_header` first
///    line): header schema, one frame per remaining line, per-frame value
///    counts matching the channel list, strictly monotonic frame times,
///    and a trigger time bracketed by the dumped window;
///  - fault-event traces (JSONL with a `fault_trace_header` first line,
///    see faults/Trace.h): header identity/count checks, chronological
///    event lines with known verbs, and model names on inject/clear;
///  - OTLP-style span traces (JSONL with a `span_trace_header` first
///    line, see telemetry/Span.h): hex trace/span ids of the right
///    width, end >= start on every span, parent ids that resolve to a
///    span in the same file, and at least one span;
///  - profiler reports (a JSON document with the `skatsim-profile-v1`
///    schema marker, written by `skatsim profile`): call-tree
///    invariants — self <= total, children's total bounded by the
///    parent's, min <= max — checked on every node;
///  - physics-audit streams (JSONL with an `audit_trace_header` first
///    line, see audit/Audit.h): header schema and invariant list,
///    chronological `audit_sample` lines with non-negative fractions,
///    well-formed `audit_alarm` transitions, and a closing
///    `audit_summary` line;
///  - physics-audit reports (a JSON document with the `skatsim-audit-v1`
///    schema marker, written by `skatsim audit`): five invariant
///    entries with mean <= max drift, budget-consistent verdicts, and a
///    convergence block;
///  - service request streams (JSONL whose first line is a
///    `service_request` object, see service/Protocol.h): known scenario
///    types with the design/scenario fields each type requires;
///  - service response streams (JSONL with a `service_header` first line
///    carrying the `skatsim-service-v1` schema): per-line success/error
///    shape checks and a closing `service_summary` whose counts
///    reconcile with the counted response lines;
///  - bench reports (a JSON document with a `bench` name and
///    `wall_time_s`, written through telemetry::BenchReport): verdict,
///    wall time and a non-empty metrics object; the service-throughput
///    report additionally needs its throughput/ablation/latency keys;
///  - metrics snapshot streams (JSONL lines with `t_s` and `counters`):
///    valid lines with strictly increasing timestamps;
///  - Prometheus text exposition (leading `# TYPE` comment): every line a
///    well-formed comment or `name[{labels}] value` sample with names in
///    the Prometheus grammar;
///  - everything else: one JSON document (Chrome traces, metrics
///    snapshots) or JSON Lines (the JSONL sink).
///
/// Empty files and empty traces fail: an artifact that was requested but
/// captured nothing is a wiring bug, not a pass.
///
//===----------------------------------------------------------------------===//

#include "support/Numerics.h"
#include "telemetry/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace rcs;

namespace {

Expected<std::string> readFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return Expected<std::string>::error("cannot open '" + Path + "'");
  std::string Text;
  char Buffer[4096];
  size_t Got;
  while ((Got = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Text.append(Buffer, Got);
  bool Failed = std::ferror(File) != 0;
  std::fclose(File);
  if (Failed)
    return Expected<std::string>::error("read error on '" + Path + "'");
  return Text;
}

std::vector<std::string> splitLines(const std::string &Text) {
  std::vector<std::string> Lines;
  size_t Start = 0;
  while (Start < Text.size()) {
    size_t End = Text.find('\n', Start);
    if (End == std::string::npos)
      End = Text.size();
    if (End > Start)
      Lines.push_back(Text.substr(Start, End - Start));
    Start = End + 1;
  }
  return Lines;
}

/// Extracts the number following `"Key": ` in \p Object. The emitters
/// under test write exactly this spacing, so plain search suffices.
bool findNumber(const std::string &Object, const std::string &Key,
                double &Out) {
  std::string Needle = "\"" + Key + "\": ";
  size_t Pos = Object.find(Needle);
  if (Pos == std::string::npos)
    return false;
  const char *Start = Object.c_str() + Pos + Needle.size();
  char *End = nullptr;
  Out = std::strtod(Start, &End);
  return End != Start;
}

/// Counts the elements of the flat array following `"Key": [`.
bool countArrayItems(const std::string &Object, const std::string &Key,
                     size_t &Out) {
  std::string Needle = "\"" + Key + "\": [";
  size_t Open = Object.find(Needle);
  if (Open == std::string::npos)
    return false;
  size_t Close = Object.find(']', Open);
  if (Close == std::string::npos)
    return false;
  std::string Body =
      Object.substr(Open + Needle.size(), Close - Open - Needle.size());
  if (Body.find_first_not_of(" \t") == std::string::npos) {
    Out = 0;
    return true;
  }
  Out = 1;
  for (char C : Body)
    Out += C == ',';
  return true;
}

/// Flight-recorder dump: header line, then `frames` frame lines with
/// monotonic times and channel-count values; the trigger time must lie
/// inside the dumped window.
Status validateFlightDump(const std::vector<std::string> &Lines) {
  const std::string &Header = Lines[0];
  Status HeaderJson = telemetry::validateJson(Header);
  if (!HeaderJson.isOk())
    return Status::error("header is not valid JSON: " +
                         HeaderJson.message());
  double TriggerTime = 0.0, DeclaredFrames = 0.0;
  size_t NumChannels = 0;
  if (!findNumber(Header, "trigger_t_s", TriggerTime))
    return Status::error("header lacks trigger_t_s");
  if (!findNumber(Header, "frames", DeclaredFrames))
    return Status::error("header lacks frames");
  if (Header.find("\"reason\": ") == std::string::npos)
    return Status::error("header lacks reason");
  if (!countArrayItems(Header, "channels", NumChannels) ||
      NumChannels == 0)
    return Status::error("header lacks a channel list");

  if (Lines.size() - 1 != static_cast<size_t>(DeclaredFrames))
    return Status::error(
        "header declares " +
        std::to_string(static_cast<size_t>(DeclaredFrames)) +
        " frames but the dump holds " + std::to_string(Lines.size() - 1));

  double PrevTime = 0.0;
  for (size_t I = 1; I != Lines.size(); ++I) {
    const std::string &Line = Lines[I];
    std::string Where = "frame line " + std::to_string(I + 1);
    Status LineJson = telemetry::validateJson(Line);
    if (!LineJson.isOk())
      return Status::error(Where + " is not valid JSON: " +
                           LineJson.message());
    if (Line.find("\"kind\": \"frame\"") == std::string::npos)
      return Status::error(Where + " is not a frame object");
    double Time = 0.0;
    size_t NumValues = 0;
    if (!findNumber(Line, "t_s", Time))
      return Status::error(Where + " lacks t_s");
    if (!countArrayItems(Line, "values", NumValues))
      return Status::error(Where + " lacks values");
    if (NumValues != NumChannels)
      return Status::error(Where + " holds " + std::to_string(NumValues) +
                           " values for " + std::to_string(NumChannels) +
                           " channels");
    if (I > 1 && Time <= PrevTime)
      return Status::error(Where + " time " + std::to_string(Time) +
                           " does not advance past " +
                           std::to_string(PrevTime));
    PrevTime = Time;
  }

  double FirstTime = 0.0;
  (void)findNumber(Lines[1], "t_s", FirstTime);
  if (TriggerTime < FirstTime || TriggerTime > PrevTime)
    return Status::error("trigger time " + std::to_string(TriggerTime) +
                         " lies outside the dumped window [" +
                         std::to_string(FirstTime) + ", " +
                         std::to_string(PrevTime) + "]");
  return Status::ok();
}

/// Extracts the string following `"Key": "` in \p Object (up to the next
/// unescaped quote).
bool findString(const std::string &Object, const std::string &Key,
                std::string &Out) {
  std::string Needle = "\"" + Key + "\": \"";
  size_t Pos = Object.find(Needle);
  if (Pos == std::string::npos)
    return false;
  size_t Start = Pos + Needle.size();
  size_t End = Start;
  while (End < Object.size() &&
         (Object[End] != '"' || Object[End - 1] == '\\'))
    ++End;
  if (End >= Object.size())
    return false;
  Out = Object.substr(Start, End - Start);
  return true;
}

/// Fault-event trace (faults/Trace.h): a `fault_trace_header` line whose
/// event count matches, then chronologically non-decreasing `fault_event`
/// lines with a known event verb inside the declared duration;
/// inject/clear lines must name their fault model.
Status validateFaultTrace(const std::vector<std::string> &Lines) {
  const std::string &Header = Lines[0];
  Status HeaderJson = telemetry::validateJson(Header);
  if (!HeaderJson.isOk())
    return Status::error("header is not valid JSON: " +
                         HeaderJson.message());
  double Version = 0.0, DurationS = 0.0, DeclaredEvents = 0.0,
         Seed = 0.0;
  std::string ScenarioName;
  if (!findNumber(Header, "version", Version) || !approxEqual(Version, 1.0))
    return Status::error("header lacks version 1");
  if (!findString(Header, "scenario", ScenarioName))
    return Status::error("header lacks scenario");
  if (!findNumber(Header, "seed", Seed))
    return Status::error("header lacks seed");
  if (!findNumber(Header, "duration_s", DurationS) || DurationS <= 0.0)
    return Status::error("header lacks a positive duration_s");
  if (!findNumber(Header, "events", DeclaredEvents))
    return Status::error("header lacks events");
  if (Lines.size() - 1 != static_cast<size_t>(DeclaredEvents))
    return Status::error(
        "header declares " +
        std::to_string(static_cast<size_t>(DeclaredEvents)) +
        " events but the trace holds " + std::to_string(Lines.size() - 1));

  double PrevTime = 0.0;
  for (size_t I = 1; I != Lines.size(); ++I) {
    const std::string &Line = Lines[I];
    std::string Where = "event line " + std::to_string(I + 1);
    Status LineJson = telemetry::validateJson(Line);
    if (!LineJson.isOk())
      return Status::error(Where + " is not valid JSON: " +
                           LineJson.message());
    if (Line.find("\"kind\": \"fault_event\"") == std::string::npos)
      return Status::error(Where + " is not a fault_event object");
    double Time = 0.0;
    if (!findNumber(Line, "t_s", Time))
      return Status::error(Where + " lacks t_s");
    if (Time < 0.0 || Time > DurationS)
      return Status::error(Where + " time " + std::to_string(Time) +
                           " lies outside [0, " +
                           std::to_string(DurationS) + "]");
    if (I > 1 && Time < PrevTime)
      return Status::error(Where + " time " + std::to_string(Time) +
                           " runs backwards past " +
                           std::to_string(PrevTime));
    PrevTime = Time;
    std::string Verb, Fault;
    if (!findString(Line, "event", Verb))
      return Status::error(Where + " lacks event");
    if (Verb != "inject" && Verb != "clear" && Verb != "alarm" &&
        Verb != "action" && Verb != "trip" && Verb != "migrate")
      return Status::error(Where + " has unknown event verb '" + Verb +
                           "'");
    if (!findString(Line, "fault", Fault) || Fault.empty())
      return Status::error(Where + " lacks a fault/subject name");
    if (Verb == "inject" || Verb == "clear") {
      std::string Model;
      if (!findString(Line, "fault_kind", Model) || Model.empty())
        return Status::error(Where + " (" + Verb +
                             ") lacks fault_kind");
    }
  }
  return Status::ok();
}

/// True when \p Id is exactly \p Digits lowercase-hex characters.
bool validHexId(const std::string &Id, size_t Digits) {
  if (Id.size() != Digits)
    return false;
  for (char C : Id)
    if (!std::isxdigit(static_cast<unsigned char>(C)) ||
        std::isupper(static_cast<unsigned char>(C)))
      return false;
  return true;
}

/// OTLP-style span trace (telemetry/Span.h): a `span_trace_header` line
/// with the `skatsim-otlp-spans-v1` schema, then `span` / `span_event`
/// lines. Spans carry 32-hex trace ids and 16-hex span ids, end >= start,
/// and parent ids that resolve within the file (spans are written in
/// completion order, so resolution runs as a second pass). \p NumSpans
/// counts span lines.
Status validateSpanTrace(const std::vector<std::string> &Lines,
                         size_t &NumSpans) {
  NumSpans = 0;
  const std::string &Header = Lines[0];
  Status HeaderJson = telemetry::validateJson(Header);
  if (!HeaderJson.isOk())
    return Status::error("header is not valid JSON: " +
                         HeaderJson.message());
  std::string Schema;
  double Version = 0.0;
  if (!findString(Header, "schema", Schema) ||
      Schema != "skatsim-otlp-spans-v1")
    return Status::error("header lacks the skatsim-otlp-spans-v1 schema");
  if (!findNumber(Header, "version", Version) || !approxEqual(Version, 1.0))
    return Status::error("header lacks version 1");

  std::vector<std::string> SpanIds;
  std::vector<std::pair<size_t, std::string>> ParentRefs;
  for (size_t I = 1; I != Lines.size(); ++I) {
    const std::string &Line = Lines[I];
    std::string Where = "span line " + std::to_string(I + 1);
    Status LineJson = telemetry::validateJson(Line);
    if (!LineJson.isOk())
      return Status::error(Where + " is not valid JSON: " +
                           LineJson.message());
    if (Line.find("\"kind\": \"span_event\"") != std::string::npos)
      continue; // Instants interleave freely; only their JSON matters.
    if (Line.find("\"kind\": \"span\"") == std::string::npos)
      return Status::error(Where + " is neither a span nor a span_event");
    std::string Name, TraceId, SpanId, ParentId;
    if (!findString(Line, "name", Name) || Name.empty())
      return Status::error(Where + " lacks a name");
    if (!findString(Line, "trace_id", TraceId) || !validHexId(TraceId, 32))
      return Status::error(Where + " lacks a 32-hex trace_id");
    if (!findString(Line, "span_id", SpanId) || !validHexId(SpanId, 16))
      return Status::error(Where + " lacks a 16-hex span_id");
    if (!findString(Line, "parent_span_id", ParentId))
      return Status::error(Where + " lacks parent_span_id");
    if (!ParentId.empty() && !validHexId(ParentId, 16))
      return Status::error(Where + " has a malformed parent_span_id");
    double StartS = 0.0, EndS = 0.0, DurationS = 0.0, Depth = 0.0;
    if (!findNumber(Line, "start_s", StartS) ||
        !findNumber(Line, "end_s", EndS) ||
        !findNumber(Line, "duration_s", DurationS))
      return Status::error(Where + " lacks start_s/end_s/duration_s");
    if (EndS < StartS || DurationS < 0.0)
      return Status::error(Where + " ends before it starts");
    if (!findNumber(Line, "depth", Depth) || Depth < 0.0)
      return Status::error(Where + " lacks a non-negative depth");
    if (ParentId.empty() != (Depth < 0.5)) // depth is integral; 0 = root
      return Status::error(Where + " depth disagrees with parent_span_id");
    SpanIds.push_back(SpanId);
    if (!ParentId.empty())
      ParentRefs.emplace_back(I + 1, ParentId);
    ++NumSpans;
  }
  if (NumSpans == 0)
    return Status::error("no spans");
  for (const auto &[LineNo, ParentId] : ParentRefs) {
    bool Found = false;
    for (const std::string &Id : SpanIds)
      if (Id == ParentId) {
        Found = true;
        break;
      }
    if (!Found)
      return Status::error("span line " + std::to_string(LineNo) +
                           " references parent " + ParentId +
                           " which never completed in this trace");
  }
  return Status::ok();
}

/// Physics-audit stream (audit/Audit.h): an `audit_trace_header` line
/// with the `skatsim-audit-v1` schema and a non-empty invariant list,
/// then chronologically non-decreasing `audit_sample` lines (free to
/// interleave with `audit_alarm` transition lines), closed by exactly one
/// `audit_summary` line as the stream's last record. \p NumSamples
/// counts audit_sample lines.
Status validateAuditStream(const std::vector<std::string> &Lines,
                           size_t &NumSamples) {
  NumSamples = 0;
  const std::string &Header = Lines[0];
  Status HeaderJson = telemetry::validateJson(Header);
  if (!HeaderJson.isOk())
    return Status::error("header is not valid JSON: " +
                         HeaderJson.message());
  std::string Schema;
  size_t NumInvariants = 0;
  if (!findString(Header, "schema", Schema) || Schema != "skatsim-audit-v1")
    return Status::error("header lacks the skatsim-audit-v1 schema");
  if (!countArrayItems(Header, "invariants", NumInvariants) ||
      NumInvariants == 0)
    return Status::error("header lacks an invariant list");

  bool SawSummary = false;
  double PrevTime = 0.0;
  for (size_t I = 1; I != Lines.size(); ++I) {
    const std::string &Line = Lines[I];
    std::string Where = "audit line " + std::to_string(I + 1);
    Status LineJson = telemetry::validateJson(Line);
    if (!LineJson.isOk())
      return Status::error(Where + " is not valid JSON: " +
                           LineJson.message());
    if (SawSummary)
      return Status::error(Where + " follows the audit_summary line");
    if (Line.find("\"kind\": \"audit_summary\"") != std::string::npos) {
      double ThermalSteps = 0.0;
      if (!findNumber(Line, "thermal_steps", ThermalSteps) ||
          ThermalSteps < 0.0)
        return Status::error(Where + " lacks thermal_steps");
      if (Line.find("\"within_budget\": ") == std::string::npos)
        return Status::error(Where + " lacks within_budget");
      SawSummary = true;
      continue;
    }
    if (Line.find("\"kind\": \"audit_alarm\"") != std::string::npos) {
      std::string Sensor, From, To;
      if (!findString(Line, "sensor", Sensor) || Sensor.empty())
        return Status::error(Where + " (alarm) lacks a sensor name");
      if (!findString(Line, "from", From) || !findString(Line, "to", To) ||
          From == To)
        return Status::error(Where + " (alarm) lacks a state transition");
      continue;
    }
    if (Line.find("\"kind\": \"audit_sample\"") == std::string::npos)
      return Status::error(Where + " has an unknown record kind");
    double Time = 0.0, EnergyFraction = 0.0;
    if (!findNumber(Line, "t_s", Time))
      return Status::error(Where + " lacks t_s");
    if (NumSamples > 0 && Time < PrevTime)
      return Status::error(Where + " time " + std::to_string(Time) +
                           " runs backwards past " +
                           std::to_string(PrevTime));
    PrevTime = Time;
    if (!findNumber(Line, "energy_fraction", EnergyFraction) ||
        EnergyFraction < 0.0)
      return Status::error(Where +
                           " lacks a non-negative energy_fraction");
    if (Line.find("\"worst_level\": \"") == std::string::npos)
      return Status::error(Where + " lacks worst_level");
    ++NumSamples;
  }
  if (NumSamples == 0)
    return Status::error("no audit samples");
  if (!SawSummary)
    return Status::error("stream lacks a closing audit_summary line");
  return Status::ok();
}

/// skatsim-audit-v1 report document (`skatsim audit`): five invariant
/// entries whose statistics are internally consistent (mean <= max,
/// verdict matching the budgets) plus a convergence block. \p
/// NumInvariants counts the invariant entries.
Status validateAuditReport(const std::string &Text, size_t &NumInvariants) {
  NumInvariants = 0;
  Expected<telemetry::JsonValue> Doc = telemetry::parseJson(Text);
  if (!Doc)
    return Status::error("not valid JSON: " + Doc.message());
  const telemetry::JsonValue *Schema = Doc->find("schema");
  if (!Schema || !Schema->isString() ||
      Schema->StringValue != "skatsim-audit-v1")
    return Status::error("lacks the skatsim-audit-v1 schema");
  const telemetry::JsonValue *Command = Doc->find("command");
  if (!Command || !Command->isString() || Command->StringValue.empty())
    return Status::error("lacks the audited command name");
  const telemetry::JsonValue *WithinBudget = Doc->find("within_budget");
  if (!WithinBudget || !WithinBudget->isBool())
    return Status::error("lacks a boolean within_budget verdict");
  const telemetry::JsonValue *Invariants = Doc->find("invariants");
  if (!Invariants || !Invariants->isArray() || Invariants->Items.empty())
    return Status::error("holds no invariant entries");
  bool AnyInvariantFailed = false;
  for (const telemetry::JsonValue &Inv : Invariants->Items) {
    const telemetry::JsonValue *Name = Inv.find("name");
    if (!Name || !Name->isString() || Name->StringValue.empty())
      return Status::error("invariant entry lacks a name");
    std::string Where = "invariant '" + Name->StringValue + "'";
    const telemetry::JsonValue *Samples = Inv.find("samples");
    const telemetry::JsonValue *MaxAbs = Inv.find("max_abs");
    const telemetry::JsonValue *MeanAbs = Inv.find("mean_abs");
    const telemetry::JsonValue *MaxFraction = Inv.find("max_fraction");
    const telemetry::JsonValue *Critical = Inv.find("critical_fraction");
    const telemetry::JsonValue *EntryOk = Inv.find("within_budget");
    if (!Samples || !Samples->isNumber() || Samples->NumberValue < 0.0)
      return Status::error(Where + " lacks a sample count");
    if (!MaxAbs || !MaxAbs->isNumber() || !MeanAbs || !MeanAbs->isNumber())
      return Status::error(Where + " lacks max_abs/mean_abs");
    if (!MaxFraction || !MaxFraction->isNumber() ||
        MaxFraction->NumberValue < 0.0)
      return Status::error(Where + " lacks a non-negative max_fraction");
    if (!Critical || !Critical->isNumber() || Critical->NumberValue <= 0.0)
      return Status::error(Where + " lacks a positive critical_fraction");
    if (!EntryOk || !EntryOk->isBool())
      return Status::error(Where + " lacks a within_budget verdict");
    const double TolAbs = 1e-9 * (1.0 + std::fabs(MaxAbs->NumberValue));
    if (MeanAbs->NumberValue > MaxAbs->NumberValue + TolAbs)
      return Status::error(Where + " mean_abs exceeds max_abs");
    bool Expected = MaxFraction->NumberValue <= Critical->NumberValue;
    if (EntryOk->BoolValue != Expected)
      return Status::error(Where +
                           " verdict disagrees with its budgets");
    if (!EntryOk->BoolValue)
      AnyInvariantFailed = true;
    ++NumInvariants;
  }
  if (AnyInvariantFailed && WithinBudget->BoolValue)
    return Status::error("within_budget is true despite a failed "
                         "invariant");
  const telemetry::JsonValue *Convergence = Doc->find("convergence");
  if (!Convergence || !Convergence->isObject())
    return Status::error("lacks a convergence block");
  for (const char *Key : {"thermal_steps", "flow_solves",
                          "max_newton_iterations",
                          "non_monotone_residuals", "unconverged_solves"}) {
    const telemetry::JsonValue *Value = Convergence->find(Key);
    if (!Value || !Value->isNumber() || Value->NumberValue < 0.0)
      return Status::error(std::string("convergence block lacks ") + Key);
  }
  return Status::ok();
}

/// One call-tree node of a skatsim-profile-v1 document: checks the
/// aggregation invariants recursively and counts nodes into \p NumNodes.
Status validateProfileNode(const telemetry::JsonValue &Node,
                           size_t &NumNodes) {
  ++NumNodes;
  const telemetry::JsonValue *Name = Node.find("name");
  if (!Name || !Name->isString() || Name->StringValue.empty())
    return Status::error("node lacks a name");
  std::string Where = "node '" + Name->StringValue + "'";
  const telemetry::JsonValue *Count = Node.find("count");
  if (!Count || !Count->isNumber() || Count->NumberValue < 1.0)
    return Status::error(Where + " lacks a positive count");
  const telemetry::JsonValue *TotalS = Node.find("total_s");
  const telemetry::JsonValue *SelfS = Node.find("self_s");
  const telemetry::JsonValue *MinS = Node.find("min_s");
  const telemetry::JsonValue *MaxS = Node.find("max_s");
  if (!TotalS || !TotalS->isNumber() || !SelfS || !SelfS->isNumber() ||
      !MinS || !MinS->isNumber() || !MaxS || !MaxS->isNumber())
    return Status::error(Where + " lacks total_s/self_s/min_s/max_s");
  // All timing invariants get a small absolute slack: the emitter rounds
  // through %.9g, so exact arithmetic does not survive the round trip.
  const double TolS = 1e-9 * (1.0 + std::fabs(TotalS->NumberValue));
  if (SelfS->NumberValue < -TolS ||
      SelfS->NumberValue > TotalS->NumberValue + TolS)
    return Status::error(Where + " self_s outside [0, total_s]");
  if (MinS->NumberValue > MaxS->NumberValue + TolS)
    return Status::error(Where + " min_s exceeds max_s");
  if (MaxS->NumberValue > TotalS->NumberValue + TolS)
    return Status::error(Where + " max_s exceeds total_s");
  const telemetry::JsonValue *Children = Node.find("children");
  if (!Children || !Children->isArray())
    return Status::error(Where + " lacks a children array");
  double ChildrenTotalS = 0.0;
  for (const telemetry::JsonValue &Child : Children->Items) {
    Status Valid = validateProfileNode(Child, NumNodes);
    if (!Valid.isOk())
      return Valid;
    const telemetry::JsonValue *ChildTotal = Child.find("total_s");
    ChildrenTotalS += ChildTotal ? ChildTotal->NumberValue : 0.0;
  }
  if (ChildrenTotalS > TotalS->NumberValue + TolS)
    return Status::error(Where + " children total " +
                         std::to_string(ChildrenTotalS) +
                         " exceeds the node total " +
                         std::to_string(TotalS->NumberValue));
  return Status::ok();
}

/// skatsim-profile-v1 document (`skatsim profile`): schema marker, a
/// non-empty call tree, and the per-node invariants above.
Status validateProfile(const std::string &Text, size_t &NumNodes) {
  NumNodes = 0;
  Expected<telemetry::JsonValue> Doc = telemetry::parseJson(Text);
  if (!Doc)
    return Status::error("not valid JSON: " + Doc.message());
  const telemetry::JsonValue *Schema = Doc->find("schema");
  if (!Schema || !Schema->isString() ||
      Schema->StringValue != "skatsim-profile-v1")
    return Status::error("lacks the skatsim-profile-v1 schema");
  const telemetry::JsonValue *Name = Doc->find("name");
  if (!Name || !Name->isString() || Name->StringValue.empty())
    return Status::error("lacks a workload name");
  const telemetry::JsonValue *WallTimeS = Doc->find("wall_time_s");
  if (!WallTimeS || !WallTimeS->isNumber() || WallTimeS->NumberValue < 0.0)
    return Status::error("lacks a non-negative wall_time_s");
  const telemetry::JsonValue *Roots = Doc->find("roots");
  if (!Roots || !Roots->isArray() || Roots->Items.empty())
    return Status::error("holds no call-tree roots");
  for (const telemetry::JsonValue &Root : Roots->Items) {
    Status Valid = validateProfileNode(Root, NumNodes);
    if (!Valid.isOk())
      return Valid;
  }
  return Status::ok();
}

/// Service request stream (service/Protocol.h): JSONL of
/// `service_request` lines as fed to `skatsim serve`. Every line needs a
/// non-empty id and a known scenario type; steady/transient requests
/// name a design, faults requests name a scenario file. \p NumRequests
/// counts request lines.
Status validateServiceRequests(const std::vector<std::string> &Lines,
                               size_t &NumRequests) {
  NumRequests = 0;
  for (size_t I = 0; I != Lines.size(); ++I) {
    const std::string &Line = Lines[I];
    std::string Where = "request line " + std::to_string(I + 1);
    Status LineJson = telemetry::validateJson(Line);
    if (!LineJson.isOk())
      return Status::error(Where + " is not valid JSON: " +
                           LineJson.message());
    if (Line.find("\"kind\": \"service_request\"") == std::string::npos)
      return Status::error(Where + " is not a service_request object");
    std::string Id, Type;
    if (!findString(Line, "id", Id) || Id.empty())
      return Status::error(Where + " lacks a request id");
    if (!findString(Line, "type", Type))
      return Status::error(Where + " lacks a scenario type");
    if (Type != "steady" && Type != "transient" && Type != "faults")
      return Status::error(Where + " has unknown scenario type '" + Type +
                           "'");
    std::string Subject;
    if (Type == "faults") {
      if (!findString(Line, "scenario", Subject) || Subject.empty())
        return Status::error(Where + " (faults) lacks a scenario path");
    } else if (!findString(Line, "design", Subject) || Subject.empty()) {
      return Status::error(Where + " (" + Type + ") lacks a design name");
    }
    ++NumRequests;
  }
  if (NumRequests == 0)
    return Status::error("no requests");
  return Status::ok();
}

/// Service response stream (service/Protocol.h): a `service_header` line
/// with the `skatsim-service-v1` schema, then `service_response` lines —
/// successes carry a cache state, latency and result object; failures a
/// known error kind and message — closed by a `service_summary` line
/// whose counts reconcile with the counted responses. \p NumResponses
/// counts response lines.
Status validateServiceResponses(const std::vector<std::string> &Lines,
                                size_t &NumResponses) {
  NumResponses = 0;
  const std::string &Header = Lines[0];
  Status HeaderJson = telemetry::validateJson(Header);
  if (!HeaderJson.isOk())
    return Status::error("header is not valid JSON: " +
                         HeaderJson.message());
  std::string Schema;
  double Version = 0.0;
  if (!findString(Header, "schema", Schema) ||
      Schema != "skatsim-service-v1")
    return Status::error("header lacks the skatsim-service-v1 schema");
  if (!findNumber(Header, "version", Version) || !approxEqual(Version, 1.0))
    return Status::error("header lacks version 1");

  size_t OkLines = 0, ErrorLines = 0, QueueFullLines = 0,
         TimeoutLines = 0;
  bool SawSummary = false;
  std::string SummaryLine;
  for (size_t I = 1; I != Lines.size(); ++I) {
    const std::string &Line = Lines[I];
    std::string Where = "response line " + std::to_string(I + 1);
    Status LineJson = telemetry::validateJson(Line);
    if (!LineJson.isOk())
      return Status::error(Where + " is not valid JSON: " +
                           LineJson.message());
    if (SawSummary)
      return Status::error(Where + " follows the service_summary line");
    if (Line.find("\"kind\": \"service_summary\"") != std::string::npos) {
      SawSummary = true;
      SummaryLine = Line;
      continue;
    }
    if (Line.find("\"kind\": \"service_response\"") == std::string::npos)
      return Status::error(Where + " has an unknown record kind");
    if (Line.find("\"id\": \"") == std::string::npos)
      return Status::error(Where + " lacks an id");
    bool Ok = Line.find("\"ok\": true") != std::string::npos;
    if (!Ok && Line.find("\"ok\": false") == std::string::npos)
      return Status::error(Where + " lacks a boolean ok verdict");
    if (Ok) {
      std::string Cache;
      double LatencyS = 0.0;
      if (!findString(Line, "cache", Cache) ||
          (Cache != "warm" && Cache != "cold" && Cache != "bypass"))
        return Status::error(Where + " lacks a warm/cold/bypass cache "
                                     "state");
      if (!findNumber(Line, "latency_s", LatencyS) || LatencyS < 0.0)
        return Status::error(Where + " lacks a non-negative latency_s");
      if (Line.find("\"result\": {") == std::string::npos)
        return Status::error(Where + " lacks a result object");
      ++OkLines;
    } else {
      std::string Kind, Message;
      if (!findString(Line, "error_kind", Kind))
        return Status::error(Where + " lacks error_kind");
      if (Kind != "parse" && Kind != "queue_full" && Kind != "timeout" &&
          Kind != "evaluation")
        return Status::error(Where + " has unknown error kind '" + Kind +
                             "'");
      if (!findString(Line, "error", Message) || Message.empty())
        return Status::error(Where + " lacks an error message");
      QueueFullLines += Kind == "queue_full";
      TimeoutLines += Kind == "timeout";
      ++ErrorLines;
    }
    ++NumResponses;
  }
  if (NumResponses == 0)
    return Status::error("no responses");
  if (!SawSummary)
    return Status::error("stream lacks a closing service_summary line");

  // Reconcile the summary against the counted lines. The summary holds
  // daemon-lifetime totals, and a stdin/file session is the daemon's
  // whole life, so strict equality is the contract here.
  double Requests = 0.0, OkCount = 0.0, ErrorCount = 0.0, Rejected = 0.0,
         TimedOut = 0.0;
  if (!findNumber(SummaryLine, "requests", Requests) ||
      !findNumber(SummaryLine, "ok", OkCount) ||
      !findNumber(SummaryLine, "errors", ErrorCount) ||
      !findNumber(SummaryLine, "rejected", Rejected) ||
      !findNumber(SummaryLine, "timed_out", TimedOut))
    return Status::error("summary lacks requests/ok/errors/rejected/"
                         "timed_out counts");
  if (SummaryLine.find("\"cache_hits\": ") == std::string::npos ||
      SummaryLine.find("\"cache_misses\": ") == std::string::npos)
    return Status::error("summary lacks cache_hits/cache_misses");
  if (static_cast<size_t>(OkCount) != OkLines)
    return Status::error("summary declares " +
                         std::to_string(static_cast<size_t>(OkCount)) +
                         " ok but the stream holds " +
                         std::to_string(OkLines));
  if (static_cast<size_t>(ErrorCount) != ErrorLines)
    return Status::error("summary declares " +
                         std::to_string(static_cast<size_t>(ErrorCount)) +
                         " errors but the stream holds " +
                         std::to_string(ErrorLines));
  if (!approxEqual(Requests, OkCount + ErrorCount))
    return Status::error("summary requests do not equal ok + errors");
  if (static_cast<size_t>(Rejected) != QueueFullLines)
    return Status::error("summary rejected count disagrees with the "
                         "queue_full responses");
  if (static_cast<size_t>(TimedOut) != TimeoutLines)
    return Status::error("summary timed_out count disagrees with the "
                         "timeout responses");
  return Status::ok();
}

/// Bench report document (telemetry/Bench.h, written by the bench
/// binaries): bench name, boolean verdict, non-negative wall time and a
/// non-empty metrics object. The service-throughput report additionally
/// carries throughput, cache-ablation and latency-quantile metrics with
/// ordered quantiles. \p NumMetrics counts metric entries.
Status validateBenchReport(const std::string &Text, size_t &NumMetrics) {
  NumMetrics = 0;
  Expected<telemetry::JsonValue> Doc = telemetry::parseJson(Text);
  if (!Doc)
    return Status::error("not valid JSON: " + Doc.message());
  const telemetry::JsonValue *Name = Doc->find("bench");
  if (!Name || !Name->isString() || Name->StringValue.empty())
    return Status::error("lacks a bench name");
  const telemetry::JsonValue *Passed = Doc->find("passed");
  if (!Passed || !Passed->isBool())
    return Status::error("lacks a boolean passed verdict");
  const telemetry::JsonValue *WallTimeS = Doc->find("wall_time_s");
  if (!WallTimeS || !WallTimeS->isNumber() || WallTimeS->NumberValue < 0.0)
    return Status::error("lacks a non-negative wall_time_s");
  const telemetry::JsonValue *Metrics = Doc->find("metrics");
  if (!Metrics || !Metrics->isObject() || Metrics->Members.empty())
    return Status::error("holds no metrics");
  NumMetrics = Metrics->Members.size();
  for (const auto &[Key, Value] : Metrics->Members)
    if (Key.empty())
      return Status::error("holds a metric with an empty key");

  if (Name->StringValue != "service_throughput")
    return Status::ok();
  // The service-throughput contract (docs/SERVICE.md): cold and warm
  // scenario rates, the gated cache-ablation ratio, the hit rate and
  // ordered latency quantiles.
  auto Number = [&](const char *Key) -> const telemetry::JsonValue * {
    const telemetry::JsonValue *Value = Metrics->find(Key);
    return Value && Value->isNumber() ? Value : nullptr;
  };
  for (const char *Key :
       {"scenarios_per_s_cold", "scenarios_per_s_warm",
        "speedup_service_cache"}) {
    const telemetry::JsonValue *Value = Number(Key);
    if (!Value || Value->NumberValue <= 0.0)
      return Status::error(std::string("lacks a positive ") + Key);
  }
  const telemetry::JsonValue *HitRate = Number("cache_hit_rate");
  if (!HitRate || HitRate->NumberValue < 0.0 ||
      HitRate->NumberValue > 1.0)
    return Status::error("lacks a cache_hit_rate in [0, 1]");
  const telemetry::JsonValue *P50 = Number("latency_p50_ms");
  const telemetry::JsonValue *P95 = Number("latency_p95_ms");
  const telemetry::JsonValue *P99 = Number("latency_p99_ms");
  if (!P50 || !P95 || !P99 || P50->NumberValue < 0.0)
    return Status::error("lacks latency_p50/p95/p99_ms quantiles");
  const double TolMs = 1e-9 * (1.0 + std::fabs(P99->NumberValue));
  if (P50->NumberValue > P95->NumberValue + TolMs ||
      P95->NumberValue > P99->NumberValue + TolMs)
    return Status::error("latency quantiles are not ordered");
  return Status::ok();
}

/// Periodic metrics snapshots: JSONL with strictly increasing `t_s`.
Status validateSnapshots(const std::vector<std::string> &Lines) {
  double PrevTime = 0.0;
  for (size_t I = 0; I != Lines.size(); ++I) {
    const std::string &Line = Lines[I];
    std::string Where = "snapshot line " + std::to_string(I + 1);
    Status LineJson = telemetry::validateJson(Line);
    if (!LineJson.isOk())
      return Status::error(Where + " is not valid JSON: " +
                           LineJson.message());
    double Time = 0.0;
    if (!findNumber(Line, "t_s", Time))
      return Status::error(Where + " lacks t_s");
    if (Line.find("\"counters\": {") == std::string::npos ||
        Line.find("\"histograms\": {") == std::string::npos)
      return Status::error(Where + " lacks counters/histograms");
    if (I > 0 && Time <= PrevTime)
      return Status::error(Where + " time " + std::to_string(Time) +
                           " does not advance past " +
                           std::to_string(PrevTime));
    PrevTime = Time;
  }
  return Status::ok();
}

bool validPrometheusName(const std::string &Name) {
  if (Name.empty())
    return false;
  for (size_t I = 0; I != Name.size(); ++I) {
    char C = Name[I];
    bool Ok = std::isalpha(static_cast<unsigned char>(C)) || C == '_' ||
              C == ':' ||
              (I > 0 && std::isdigit(static_cast<unsigned char>(C)));
    if (!Ok)
      return false;
  }
  return true;
}

bool validPrometheusValue(const std::string &Token) {
  if (Token == "NaN" || Token == "+Inf" || Token == "-Inf")
    return true;
  if (Token.empty())
    return false;
  char *End = nullptr;
  (void)std::strtod(Token.c_str(), &End);
  return End == Token.c_str() + Token.size();
}

/// Prometheus text exposition: `# TYPE`/`# HELP` comments and
/// `name[{labels}] value` samples. \p NumSamples counts sample lines.
Status validatePrometheus(const std::vector<std::string> &Lines,
                          size_t &NumSamples) {
  NumSamples = 0;
  for (size_t I = 0; I != Lines.size(); ++I) {
    const std::string &Line = Lines[I];
    std::string Where = "line " + std::to_string(I + 1);
    if (Line[0] == '#') {
      // "# TYPE <name> <kind>" or "# HELP <name> <text>".
      if (Line.rfind("# TYPE ", 0) == 0) {
        std::string Rest = Line.substr(7);
        size_t Space = Rest.find(' ');
        if (Space == std::string::npos ||
            !validPrometheusName(Rest.substr(0, Space)))
          return Status::error(Where + ": malformed TYPE comment");
        std::string Kind = Rest.substr(Space + 1);
        if (Kind != "counter" && Kind != "gauge" && Kind != "summary" &&
            Kind != "histogram" && Kind != "untyped")
          return Status::error(Where + ": unknown metric type '" + Kind +
                               "'");
      } else if (Line.rfind("# HELP ", 0) != 0) {
        return Status::error(Where + ": unrecognised comment");
      }
      continue;
    }
    size_t NameEnd = Line.find_first_of("{ ");
    if (NameEnd == std::string::npos)
      return Status::error(Where + ": sample without a value");
    if (!validPrometheusName(Line.substr(0, NameEnd)))
      return Status::error(Where + ": invalid metric name '" +
                           Line.substr(0, NameEnd) + "'");
    size_t ValueStart = NameEnd;
    if (Line[NameEnd] == '{') {
      size_t Close = Line.find('}', NameEnd);
      if (Close == std::string::npos)
        return Status::error(Where + ": unterminated label set");
      ValueStart = Close + 1;
    }
    if (ValueStart >= Line.size() || Line[ValueStart] != ' ')
      return Status::error(Where + ": no space before the value");
    if (!validPrometheusValue(Line.substr(ValueStart + 1)))
      return Status::error(Where + ": invalid sample value");
    ++NumSamples;
  }
  if (NumSamples == 0)
    return Status::error("no samples");
  return Status::ok();
}

/// Validates one file; prints a per-file verdict line.
bool checkFile(const std::string &Path) {
  Expected<std::string> Text = readFile(Path);
  if (!Text) {
    std::fprintf(stderr, "check_trace: %s\n", Text.message().c_str());
    return false;
  }

  size_t First = Text->find_first_not_of(" \t\r\n");
  if (First == std::string::npos) {
    std::fprintf(stderr, "check_trace: '%s' is empty\n", Path.c_str());
    return false;
  }

  std::vector<std::string> Lines = splitLines(*Text);

  // Flight-recorder dump: self-identifying header line.
  if (!Lines.empty() &&
      Lines[0].find("\"kind\": \"flight_recorder_header\"") !=
          std::string::npos) {
    Status Valid = validateFlightDump(Lines);
    if (!Valid.isOk()) {
      std::fprintf(stderr, "check_trace: '%s' invalid flight dump: %s\n",
                   Path.c_str(), Valid.message().c_str());
      return false;
    }
    std::printf("check_trace: %s ok (flight dump, %zu frames)\n",
                Path.c_str(), Lines.size() - 1);
    return true;
  }

  // Fault-event trace: self-identifying header line.
  if (!Lines.empty() &&
      Lines[0].find("\"kind\": \"fault_trace_header\"") !=
          std::string::npos) {
    Status Valid = validateFaultTrace(Lines);
    if (!Valid.isOk()) {
      std::fprintf(stderr, "check_trace: '%s' invalid fault trace: %s\n",
                   Path.c_str(), Valid.message().c_str());
      return false;
    }
    std::printf("check_trace: %s ok (fault trace, %zu events)\n",
                Path.c_str(), Lines.size() - 1);
    return true;
  }

  // OTLP-style span trace: self-identifying header line.
  if (!Lines.empty() &&
      Lines[0].find("\"kind\": \"span_trace_header\"") !=
          std::string::npos) {
    size_t NumSpans = 0;
    Status Valid = validateSpanTrace(Lines, NumSpans);
    if (!Valid.isOk()) {
      std::fprintf(stderr, "check_trace: '%s' invalid span trace: %s\n",
                   Path.c_str(), Valid.message().c_str());
      return false;
    }
    std::printf("check_trace: %s ok (span trace, %zu spans)\n",
                Path.c_str(), NumSpans);
    return true;
  }

  // Physics-audit stream: self-identifying header line.
  if (!Lines.empty() &&
      Lines[0].find("\"kind\": \"audit_trace_header\"") !=
          std::string::npos) {
    size_t NumSamples = 0;
    Status Valid = validateAuditStream(Lines, NumSamples);
    if (!Valid.isOk()) {
      std::fprintf(stderr, "check_trace: '%s' invalid audit stream: %s\n",
                   Path.c_str(), Valid.message().c_str());
      return false;
    }
    std::printf("check_trace: %s ok (audit stream, %zu samples)\n",
                Path.c_str(), NumSamples);
    return true;
  }

  // Service response stream: self-identifying header line.
  if (!Lines.empty() &&
      Lines[0].find("\"kind\": \"service_header\"") != std::string::npos) {
    size_t NumResponses = 0;
    Status Valid = validateServiceResponses(Lines, NumResponses);
    if (!Valid.isOk()) {
      std::fprintf(stderr,
                   "check_trace: '%s' invalid service responses: %s\n",
                   Path.c_str(), Valid.message().c_str());
      return false;
    }
    std::printf("check_trace: %s ok (service responses, %zu lines)\n",
                Path.c_str(), NumResponses);
    return true;
  }

  // Service request stream: every line is a service_request object.
  if (!Lines.empty() &&
      Lines[0].find("\"kind\": \"service_request\"") != std::string::npos) {
    size_t NumRequests = 0;
    Status Valid = validateServiceRequests(Lines, NumRequests);
    if (!Valid.isOk()) {
      std::fprintf(stderr,
                   "check_trace: '%s' invalid service requests: %s\n",
                   Path.c_str(), Valid.message().c_str());
      return false;
    }
    std::printf("check_trace: %s ok (service requests, %zu lines)\n",
                Path.c_str(), NumRequests);
    return true;
  }

  // Physics-audit report: schema marker inside a whole-file JSON document
  // (the JSONL audit stream shares the schema string but is caught by its
  // header line above).
  if (Text->find("\"schema\": \"skatsim-audit-v1\"") != std::string::npos) {
    size_t NumInvariants = 0;
    Status Valid = validateAuditReport(*Text, NumInvariants);
    if (!Valid.isOk()) {
      std::fprintf(stderr, "check_trace: '%s' invalid audit report: %s\n",
                   Path.c_str(), Valid.message().c_str());
      return false;
    }
    std::printf("check_trace: %s ok (audit report, %zu invariants)\n",
                Path.c_str(), NumInvariants);
    return true;
  }

  // Profiler report: schema marker inside a whole-file JSON document.
  if (Text->find("\"schema\": \"skatsim-profile-v1\"") !=
      std::string::npos) {
    size_t NumNodes = 0;
    Status Valid = validateProfile(*Text, NumNodes);
    if (!Valid.isOk()) {
      std::fprintf(stderr, "check_trace: '%s' invalid profile: %s\n",
                   Path.c_str(), Valid.message().c_str());
      return false;
    }
    std::printf("check_trace: %s ok (profile, %zu nodes)\n", Path.c_str(),
                NumNodes);
    return true;
  }

  // Bench report: whole-file JSON document led by the bench name.
  if (Text->find("\"bench\": \"") != std::string::npos &&
      Text->find("\"wall_time_s\": ") != std::string::npos) {
    size_t NumMetrics = 0;
    Status Valid = validateBenchReport(*Text, NumMetrics);
    if (!Valid.isOk()) {
      std::fprintf(stderr, "check_trace: '%s' invalid bench report: %s\n",
                   Path.c_str(), Valid.message().c_str());
      return false;
    }
    std::printf("check_trace: %s ok (bench report, %zu metrics)\n",
                Path.c_str(), NumMetrics);
    return true;
  }

  // Prometheus text exposition: leads with a TYPE comment.
  if ((*Text)[First] == '#') {
    size_t NumSamples = 0;
    Status Valid = validatePrometheus(Lines, NumSamples);
    if (!Valid.isOk()) {
      std::fprintf(stderr,
                   "check_trace: '%s' invalid prometheus text: %s\n",
                   Path.c_str(), Valid.message().c_str());
      return false;
    }
    std::printf("check_trace: %s ok (prometheus, %zu samples)\n",
                Path.c_str(), NumSamples);
    return true;
  }

  // Periodic metrics snapshots: every line opens with a timestamp.
  if (!Lines.empty() && Lines[0].rfind("{\"t_s\": ", 0) == 0 &&
      Lines[0].find("\"counters\": {") != std::string::npos) {
    Status Valid = validateSnapshots(Lines);
    if (!Valid.isOk()) {
      std::fprintf(stderr,
                   "check_trace: '%s' invalid snapshot stream: %s\n",
                   Path.c_str(), Valid.message().c_str());
      return false;
    }
    std::printf("check_trace: %s ok (snapshots, %zu lines)\n",
                Path.c_str(), Lines.size());
    return true;
  }

  size_t NumRecords = 0;
  bool WholeDocument = true;
  Status Valid = telemetry::validateJson(*Text);
  if (Valid.isOk()) {
    NumRecords = 1;
  } else {
    Status LinesValid = telemetry::validateJsonLines(*Text, &NumRecords);
    if (LinesValid.isOk()) {
      Valid = Status::ok();
      WholeDocument = false;
    }
  }
  if (!Valid.isOk()) {
    std::fprintf(stderr, "check_trace: '%s' invalid: %s\n", Path.c_str(),
                 Valid.message().c_str());
    return false;
  }
  if (NumRecords == 0) {
    std::fprintf(stderr, "check_trace: '%s' holds no records\n",
                 Path.c_str());
    return false;
  }
  std::printf("check_trace: %s ok (%zu %s)\n", Path.c_str(), NumRecords,
              WholeDocument ? "document" : "lines");
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::fprintf(stderr, "usage: check_trace <file>...\n");
    return 2;
  }
  bool AllOk = true;
  for (int I = 1; I < Argc; ++I)
    AllOk = checkFile(Argv[I]) && AllOk;
  return AllOk ? 0 : 1;
}
