//===- tools/check_trace.cpp - Trace/metrics JSON validator -------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates files emitted by the telemetry sinks:
///
///   check_trace <file>...
///
/// A file is accepted if it parses as one JSON document (Chrome traces,
/// metrics snapshots) or as JSON Lines (the JSONL sink; every line leads
/// with '{' but the stream as a whole is not one document). Empty files
/// and empty traces fail: a trace that was requested but captured nothing
/// is a wiring bug, not a pass.
///
//===----------------------------------------------------------------------===//

#include "telemetry/Json.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace rcs;

namespace {

Expected<std::string> readFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return Expected<std::string>::error("cannot open '" + Path + "'");
  std::string Text;
  char Buffer[4096];
  size_t Got;
  while ((Got = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Text.append(Buffer, Got);
  bool Failed = std::ferror(File) != 0;
  std::fclose(File);
  if (Failed)
    return Expected<std::string>::error("read error on '" + Path + "'");
  return Text;
}

/// Validates one file; prints a per-file verdict line.
bool checkFile(const std::string &Path) {
  Expected<std::string> Text = readFile(Path);
  if (!Text) {
    std::fprintf(stderr, "check_trace: %s\n", Text.message().c_str());
    return false;
  }

  size_t First = Text->find_first_not_of(" \t\r\n");
  if (First == std::string::npos) {
    std::fprintf(stderr, "check_trace: '%s' is empty\n", Path.c_str());
    return false;
  }

  size_t NumRecords = 0;
  bool WholeDocument = true;
  Status Valid = telemetry::validateJson(*Text);
  if (Valid.isOk()) {
    NumRecords = 1;
  } else {
    Status LinesValid = telemetry::validateJsonLines(*Text, &NumRecords);
    if (LinesValid.isOk()) {
      Valid = Status::ok();
      WholeDocument = false;
    }
  }
  if (!Valid.isOk()) {
    std::fprintf(stderr, "check_trace: '%s' invalid: %s\n", Path.c_str(),
                 Valid.message().c_str());
    return false;
  }
  if (NumRecords == 0) {
    std::fprintf(stderr, "check_trace: '%s' holds no records\n",
                 Path.c_str());
    return false;
  }
  std::printf("check_trace: %s ok (%zu %s)\n", Path.c_str(), NumRecords,
              WholeDocument ? "document" : "lines");
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::fprintf(stderr, "usage: check_trace <file>...\n");
    return 2;
  }
  bool AllOk = true;
  for (int I = 1; I < Argc; ++I)
    AllOk = checkFile(Argv[I]) && AllOk;
  return AllOk ? 0 : 1;
}
