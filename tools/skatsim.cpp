//===- tools/skatsim.cpp - Command-line driver --------------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end for the library:
///
///   skatsim list
///   skatsim solve <design> [--ambient C] [--water C] [--water-lpm L]
///                          [--util U] [--clock F]
///   skatsim rack [--ambient C] [--isolate N] [--skat-plus]
///   skatsim transient <design> [--hours H] [--pump-fail-h T] [--csv FILE]
///   skatsim setpoint <design> [--limit C]
///   skatsim profile <command> [args...] [--profile-out FILE]
///   skatsim audit <command> [args...] [--audit-out FILE]
///                 [--audit-trace FILE]
///
/// Every command additionally accepts `--trace FILE` (structured event
/// trace; `.otlp.jsonl` selects the OTLP-style span schema, other
/// `.jsonl` JSON Lines, anything else Chrome trace_event JSON) and
/// `--metrics FILE` (end-of-run counter/timer snapshot). `profile` wraps
/// any other command in the span-aggregating profiler, prints the call
/// tree and writes PROFILE_<command>.json. `audit` wraps a command in the
/// physics auditor (docs/AUDIT.md), prints the invariant closure table
/// and writes AUDIT_<command>.json. See docs/OBSERVABILITY.md.
///
/// Designs: rigel2, taygeta, ultrascale-air, skat, skat-plus,
/// skat-plus-naive.
///
//===----------------------------------------------------------------------===//

#include "audit/Audit.h"
#include "core/ConfigIO.h"
#include "core/DesignSpace.h"
#include "core/Designs.h"
#include "faults/Engine.h"
#include "fluids/Fluid.h"
#include "hydraulics/Manifold.h"
#include "faults/Scenario.h"
#include "faults/Sweep.h"
#include "faults/Trace.h"
#include "monitor/Exposition.h"
#include "monitor/FlightRecorder.h"
#include "service/Protocol.h"
#include "service/Service.h"
#include "sim/RackTransient.h"
#include "sim/Transient.h"
#include "support/Csv.h"
#include "support/Numerics.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "support/Units.h"
#include "telemetry/Bench.h"
#include "telemetry/Profile.h"
#include "telemetry/Telemetry.h"
#include "thermal/Fleet.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace rcs;
using namespace rcs::rcsystem;

namespace {

/// Minimal --flag value parser: flags map to the string after them.
class ArgList {
public:
  ArgList(int Argc, char **Argv, int Start) {
    for (int I = Start; I < Argc; ++I) {
      std::string Arg = Argv[I];
      if (startsWith(Arg, "--")) {
        std::string Value =
            I + 1 < Argc && !startsWith(Argv[I + 1], "--") ? Argv[++I] : "";
        Flags[Arg.substr(2)] = Value;
      } else {
        Positional.push_back(Arg);
      }
    }
  }

  double getDouble(const std::string &Name, double Default) const {
    auto It = Flags.find(Name);
    if (It == Flags.end())
      return Default;
    char *End = nullptr;
    double Value = std::strtod(It->second.c_str(), &End);
    return End == It->second.c_str() ? Default : Value;
  }
  int getInt(const std::string &Name, int Default) const {
    auto It = Flags.find(Name);
    return It == Flags.end() ? Default : std::atoi(It->second.c_str());
  }
  std::string getString(const std::string &Name,
                        const std::string &Default) const {
    auto It = Flags.find(Name);
    return It == Flags.end() ? Default : It->second;
  }
  bool has(const std::string &Name) const { return Flags.count(Name) != 0; }
  const std::vector<std::string> &positional() const { return Positional; }

private:
  std::map<std::string, std::string> Flags;
  std::vector<std::string> Positional;
};

/// `skatsim audit <command>` state, set in main() before dispatch: the
/// wrapped command runs with a physics auditor armed and finishes by
/// printing the closure table and writing AUDIT_<command>.json.
bool AuditMode = false;
audit::DriftBudgets AuditBudgets;

/// Arms \p Sim's auditor when running under `skatsim audit` and attaches
/// the --audit-trace stream. Returns the auditor (nullptr outside audit
/// mode) for finishAudit.
template <typename SimT>
audit::PhysicsAuditor *maybeEnableAudit(SimT &Sim, const ArgList &Args) {
  if (!AuditMode)
    return nullptr;
  Sim.enableAudit(AuditBudgets);
  std::string TracePath = Args.getString("audit-trace", "");
  if (!TracePath.empty()) {
    Status Attached = Sim.auditor()->attachStream(TracePath);
    if (!Attached.isOk())
      std::fprintf(stderr, "audit: %s\n", Attached.message().c_str());
  }
  return Sim.auditor();
}

/// Closes the audit of one command: finishes the stream, prints the
/// closure table and writes the report. Returns the exit code the audit
/// asks for (1 = a critical budget blown or an artifact unwritable).
int finishAudit(audit::PhysicsAuditor *Auditor, const std::string &Command,
                const ArgList &Args) {
  if (!Auditor)
    return 0;
  int Code = 0;
  if (Auditor->streaming()) {
    Status Finished = Auditor->finishStream();
    if (!Finished.isOk()) {
      std::fprintf(stderr, "audit: %s\n", Finished.message().c_str());
      Code = 1;
    } else {
      std::printf("audit stream written to %s\n",
                  Args.getString("audit-trace", "").c_str());
    }
  }
  const audit::AuditSummary &Summary = Auditor->summary();
  std::printf("\nphysics audit (%s):\n%s", Command.c_str(),
              audit::formatClosureTable(Summary, Auditor->budgets()).c_str());
  std::string ReportPath =
      Args.getString("audit-out", "AUDIT_" + Command + ".json");
  Status Written = audit::writeAuditReport(ReportPath, Command, Summary,
                                           Auditor->budgets());
  if (!Written.isOk()) {
    std::fprintf(stderr, "audit: %s\n", Written.message().c_str());
    return 1;
  }
  std::printf("audit report written to %s\n", ReportPath.c_str());
  if (!Summary.withinBudgets(Auditor->budgets())) {
    std::fprintf(stderr, "audit: drift exceeded a critical budget\n");
    return 1;
  }
  return Code;
}

Expected<ModuleConfig> designByName(const std::string &Name) {
  // One name table for the CLI and the scenario service alike.
  return core::designModuleByName(Name);
}

int cmdList() {
  Table T({"design", "cooling", "FPGAs", "peak TFLOPS", "height"});
  for (const char *Name :
       {"rigel2", "taygeta", "ultrascale-air", "skat", "skat-plus",
        "skat-plus-naive"}) {
    Expected<ModuleConfig> Config = designByName(Name);
    ComputationalModule Module(*Config);
    T.addRow({Name, coolingKindName(Config->Cooling),
              formatString("%d", Module.computeFpgaCount()),
              formatString("%.1f", Module.peakGflops() / 1000.0),
              formatString("%dU", Config->HeightU)});
  }
  std::printf("%s", T.render().c_str());
  return 0;
}

int cmdSolve(const ArgList &Args) {
  Expected<ModuleConfig> Config =
      Args.has("config")
          ? core::loadModuleConfigFile(Args.getString("config", ""))
      : Args.positional().empty()
          ? Expected<ModuleConfig>::error(
                "usage: skatsim solve <design>|--config FILE [--flags]")
          : designByName(Args.positional()[0]);
  if (!Config) {
    std::fprintf(stderr, "error: %s\n", Config.message().c_str());
    return 2;
  }
  ExternalConditions Conditions = core::makeNominalConditions();
  Conditions.AmbientAirTempC = Args.getDouble("ambient", 25.0);
  Conditions.WaterInletTempC = Args.getDouble("water", 18.0);
  Conditions.WaterFlowM3PerS = units::litersPerMinuteToM3PerS(
      Args.getDouble("water-lpm", 18.0));
  fpga::WorkloadPoint Load = Config->Load;
  Load.Utilization = Args.getDouble("util", Load.Utilization);
  Load.ClockFraction = Args.getDouble("clock", Load.ClockFraction);

  ComputationalModule Module(*Config);
  Expected<ModuleThermalReport> Report =
      Module.solveSteadyState(Conditions, Load);
  if (!Report) {
    std::fprintf(stderr, "solve failed: %s\n", Report.message().c_str());
    return 1;
  }
  std::printf("%s (%s)\n\n", Config->Name.c_str(),
              coolingKindName(Config->Cooling));
  Table T({"quantity", "value"});
  T.addRow({"max junction", formatString("%.1f C",
                                         Report->MaxJunctionTempC)});
  T.addRow({"mean junction", formatString("%.1f C",
                                          Report->MeanJunctionTempC)});
  T.addRow({"coolant out / in",
            formatString("%.1f / %.1f C", Report->CoolantHotTempC,
                         Report->CoolantColdTempC)});
  T.addRow({"IT power", formatString("%.0f W", Report->ItPowerW)});
  T.addRow({"total heat", formatString("%.0f W", Report->TotalHeatW)});
  T.addRow({"coolant flow",
            formatString("%.1f l/min",
                         units::m3PerSToLitersPerMinute(
                             Report->CoolantFlowM3PerS))});
  T.addRow({"per-FPGA power",
            Report->Fpgas.empty()
                ? "-"
                : formatString("%.1f W", Report->Fpgas.front().PowerW)});
  T.addRow({"in long-life band",
            Report->WithinReliableLimit ? "yes" : "NO"});
  std::printf("%s", T.render().c_str());
  for (const std::string &Warning : Report->Warnings)
    std::printf("warning: %s\n", Warning.c_str());
  return 0;
}

int cmdRack(const ArgList &Args) {
  RackConfig Config = Args.has("skat-plus") ? core::makeSkatPlusRack()
                                            : core::makeSkatRack();
  Rack TheRack(Config);
  std::optional<int> Isolated;
  if (Args.has("isolate"))
    Isolated = Args.getInt("isolate", 0) - 1; // 1-based on the CLI.
  Expected<RackReport> Report =
      TheRack.solveSteadyState(Args.getDouble("ambient", 25.0), Isolated);
  if (!Report) {
    std::fprintf(stderr, "rack solve failed: %s\n",
                 Report.message().c_str());
    return 1;
  }
  std::printf("%s: %.3f PFLOPS, IT %.1f kW, PUE %.3f, max Tj %.1f C, "
              "imbalance %.2f%%\n",
              Config.Name.c_str(), TheRack.peakPflops(),
              Report->TotalItPowerW / 1000.0, Report->Pue,
              Report->MaxJunctionTempC,
              Report->Balance.ImbalanceFraction * 100.0);
  Table T({"module", "water (l/min)", "max Tj (C)", "state"});
  for (size_t I = 0; I != Report->Modules.size(); ++I) {
    bool Down = nearZero(Report->Modules[I].TotalHeatW);
    T.addRow({formatString("CM %zu", I + 1),
              formatString("%.1f", units::m3PerSToLitersPerMinute(
                                       Report->LoopFlowsM3PerS[I])),
              Down ? "-"
                   : formatString("%.1f",
                                  Report->Modules[I].MaxJunctionTempC),
              Down ? "isolated" : "running"});
  }
  std::printf("%s", T.render().c_str());
  for (const std::string &Warning : Report->Warnings)
    std::printf("warning: %s\n", Warning.c_str());

  // Audit mode additionally solves the rack primary loop standalone and
  // checks the hydraulic invariants of the solution (continuity, edge
  // pressure closure, Newton health) against the drift budgets.
  if (AuditMode) {
    audit::PhysicsAuditor Auditor(AuditBudgets);
    hydraulics::RackHydraulics Loop =
        hydraulics::buildRackPrimaryLoop(Config.Hydraulics);
    auto Water = fluids::makeWater();
    double FlowScale = Config.Hydraulics.PumpRatedFlowM3PerS;
    Expected<hydraulics::FlowSolution> Solution = Loop.Network.solve(
        *Water, Config.ChillerSupplyTempC, FlowScale);
    if (!Solution) {
      std::fprintf(stderr, "audit: hydraulic solve failed: %s\n",
                   Solution.message().c_str());
      return 1;
    }
    Auditor.recordFlowSolution(Loop.Network, *Solution, *Water,
                               Config.ChillerSupplyTempC, FlowScale);
    Auditor.updateAlarms(0.0);
    return finishAudit(&Auditor, "rack", Args);
  }
  return 0;
}

int cmdFleet(const ArgList &Args) {
  thermal::FleetConfig Config;
  Config.NumRacks = static_cast<size_t>(Args.getInt("racks", 64));
  Config.ModulesPerRack = static_cast<size_t>(Args.getInt("modules", 8));
  if (Config.NumRacks == 0 || Config.ModulesPerRack == 0) {
    std::fprintf(stderr,
                 "usage: skatsim fleet [--racks N] [--modules M] "
                 "[--minutes T] [--dt-s S] [--water C] [--excursion-c C] "
                 "[--dense]\n");
    return 2;
  }
  Config.FacilityWaterTemp = units::Celsius(Args.getDouble("water", 18.0));
  thermal::FleetNetwork Fleet = thermal::buildFleetNetwork(Config);
  thermal::ThermalNetwork &Net = Fleet.Net;
  if (Args.has("dense"))
    Net.setSparseSolver(false);

  std::printf("fleet: %zu racks x %zu modules, %zu unknowns, sparse %s "
              "(threshold %zu)\n",
              Config.NumRacks, Config.ModulesPerRack,
              thermal::fleetUnknowns(Config),
              Net.sparseSolverEnabled() ? "on" : "off",
              Net.sparseThresholdUnknowns());

  Expected<std::vector<double>> Steady = Net.solveSteadyState();
  if (!Steady) {
    std::fprintf(stderr, "fleet solve failed: %s\n",
                 Steady.message().c_str());
    return 1;
  }
  double MaxChipC = 0.0;
  for (thermal::NodeId Chip : Fleet.Chips)
    MaxChipC = std::max(MaxChipC, (*Steady)[Chip]);
  double MaxLoopC = 0.0;
  for (thermal::NodeId Loop : Fleet.RackLoops)
    MaxLoopC = std::max(MaxLoopC, (*Steady)[Loop]);

  Table T({"quantity", "value"});
  T.addRow({"total IT heat",
            formatString("%.1f kW", Net.totalSourcePowerW() / 1000.0)});
  T.addRow({"facility heat pickup",
            formatString("%.1f kW",
                         Net.boundaryHeatFlowW(Fleet.Facility, *Steady) /
                             1000.0)});
  T.addRow({"hottest chip", formatString("%.1f C", MaxChipC)});
  T.addRow({"hottest rack loop", formatString("%.1f C", MaxLoopC)});
  T.addRow({"steady residual",
            formatString("%.2e W", Net.steadyStateResidualW(*Steady))});
  T.addRow({"solver factor memory",
            formatString("%.1f kB", Net.solverMemoryBytes() / 1024.0)});
  std::printf("%s", T.render().c_str());

  // Transient leg: a facility-water excursion ridden out step by step.
  // The implicit-Euler factor is built once; the excursion itself only
  // touches the right-hand side.
  std::unique_ptr<audit::PhysicsAuditor> Auditor;
  if (AuditMode) {
    Auditor = std::make_unique<audit::PhysicsAuditor>(AuditBudgets);
    Auditor->noteFactorCaching(Net.factorCachingEnabled());
    Auditor->noteSparseSolver(Net.sparseSolverEnabled());
    std::string TracePath = Args.getString("audit-trace", "");
    if (!TracePath.empty()) {
      Status Attached = Auditor->attachStream(TracePath);
      if (!Attached.isOk())
        std::fprintf(stderr, "audit: %s\n", Attached.message().c_str());
    }
  }
  double Minutes = Args.getDouble("minutes", 10.0);
  double DtS = Args.getDouble("dt-s", 5.0);
  int Steps = std::max(1, static_cast<int>(Minutes * 60.0 / DtS));
  Net.setBoundaryTemp(Fleet.Facility,
                      units::Celsius(Args.getDouble("water", 18.0) +
                                     Args.getDouble("excursion-c", 6.0)));
  std::vector<double> Temps = *Steady;
  double WorstChipC = MaxChipC;
  for (int Step = 0; Step != Steps; ++Step) {
    std::vector<double> Before = Temps;
    Status Stepped = Net.stepTransient(Temps, DtS);
    if (!Stepped.isOk()) {
      std::fprintf(stderr, "fleet step failed: %s\n",
                   Stepped.message().c_str());
      return 1;
    }
    for (thermal::NodeId Chip : Fleet.Chips)
      WorstChipC = std::max(WorstChipC, Temps[Chip]);
    if (Auditor) {
      Auditor->recordThermalStep(Net, Before, Temps, DtS);
      double TimeS = DtS * (Step + 1);
      Auditor->updateAlarms(TimeS);
      Auditor->emitStreamRecord(TimeS);
    }
  }
  std::printf("after %.0f min at +%.1f C facility water: hottest chip "
              "%.1f C (was %.1f C)\n",
              Minutes, Args.getDouble("excursion-c", 6.0), WorstChipC,
              MaxChipC);
  if (AuditMode)
    return finishAudit(Auditor.get(), "fleet", Args);
  return 0;
}

int cmdTransient(const ArgList &Args) {
  if (Args.positional().empty()) {
    std::fprintf(stderr, "usage: skatsim transient <design> [--flags]\n");
    return 2;
  }
  Expected<ModuleConfig> Config = designByName(Args.positional()[0]);
  if (!Config) {
    std::fprintf(stderr, "error: %s\n", Config.message().c_str());
    return 2;
  }
  if (Config->Cooling != CoolingKind::Immersion) {
    std::fprintf(stderr,
                 "error: the transient simulator models immersion designs\n");
    return 2;
  }
  double Hours = Args.getDouble("hours", 4.0);
  sim::TransientSimulator Simulator(*Config, core::makeNominalConditions());
  if (Args.has("pump-fail-h"))
    Simulator.schedulePumpSpeed(Args.getDouble("pump-fail-h", 1.0) * 3600.0,
                                0.0);
  audit::PhysicsAuditor *Auditor = maybeEnableAudit(Simulator, Args);
  Expected<std::vector<sim::TraceSample>> Trace =
      Simulator.run(Hours * 3600.0);
  if (!Trace) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 Trace.message().c_str());
    return 1;
  }
  std::string CsvPath = Args.getString("csv", "");
  if (!CsvPath.empty()) {
    CsvWriter Csv({"time_s", "junction_C", "oil_C", "power_W", "alarm"});
    for (const sim::TraceSample &Sample : *Trace)
      Csv.addRow({formatString("%.0f", Sample.TimeS),
                  formatString("%.2f", Sample.MaxJunctionTempC),
                  formatString("%.2f", Sample.OilTempC),
                  formatString("%.0f", Sample.TotalPowerW),
                  alarmLevelName(Sample.Alarm)});
    Status Saved = Csv.writeFile(CsvPath);
    if (!Saved.isOk()) {
      std::fprintf(stderr, "csv: %s\n", Saved.message().c_str());
      return 1;
    }
    std::printf("wrote %zu samples to %s\n", Trace->size(),
                CsvPath.c_str());
  }
  const sim::TraceSample &Last = Trace->back();
  std::printf("t=%.1fh junction %.1f C, oil %.1f C, power %.1f kW, "
              "alarm %s%s\n",
              Last.TimeS / 3600.0, Last.MaxJunctionTempC, Last.OilTempC,
              Last.TotalPowerW / 1000.0, alarmLevelName(Last.Alarm),
              Last.ShutDown ? " (shut down)" : "");
  return finishAudit(Auditor, "transient", Args);
}

/// Shared tail of `skatsim monitor`: reports the flight recorder and
/// writes the Prometheus snapshot. Returns the process exit code.
int finishMonitor(const ArgList &Args, monitor::FlightRecorder *Recorder,
                  monitor::SnapshotWriter *Snapshots,
                  size_t NumTransitions) {
  std::printf("%zu alarm transitions\n", NumTransitions);
  if (Recorder) {
    if (Recorder->triggered()) {
      const Status &DumpStatus = Recorder->lastDumpStatus();
      if (!DumpStatus.isOk()) {
        std::fprintf(stderr, "flight recorder: %s\n",
                     DumpStatus.message().c_str());
        return 1;
      }
      std::printf("flight recorder: dumped %zu frames to %s\n",
                  Recorder->framesHeld(),
                  Args.getString("flight", "").c_str());
    } else {
      std::printf("flight recorder: armed, never triggered (%zu frames "
                  "seen)\n",
                  Recorder->framesRecorded());
    }
  }
  if (Snapshots) {
    Status Closed = Snapshots->close();
    if (!Closed.isOk()) {
      std::fprintf(stderr, "snapshots: %s\n", Closed.message().c_str());
      return 1;
    }
    std::printf("wrote %zu metric snapshots to %s\n",
                Snapshots->numSnapshots(),
                Args.getString("snapshots", "").c_str());
  }
  std::string PromPath = Args.getString("prom", "");
  if (!PromPath.empty()) {
    Status Written = monitor::writePrometheusFile(
        telemetry::Registry::global(), PromPath);
    if (!Written.isOk()) {
      std::fprintf(stderr, "prom: %s\n", Written.message().c_str());
      return 1;
    }
    std::printf("wrote prometheus metrics to %s\n", PromPath.c_str());
  }
  return 0;
}

int cmdMonitor(const ArgList &Args) {
  bool RackMode = Args.has("rack");
  if (!RackMode && Args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: skatsim monitor <design>|--rack [--flags]\n");
    return 2;
  }
  double Hours = Args.getDouble("hours", 2.0);
  double DurationS = Hours * 3600.0;

  std::unique_ptr<monitor::SnapshotWriter> Snapshots;
  if (Args.has("snapshots")) {
    Snapshots = std::make_unique<monitor::SnapshotWriter>(
        Args.getString("snapshots", ""),
        Args.getDouble("snapshot-period", 600.0));
    if (!Snapshots->isOpen()) {
      std::fprintf(stderr, "snapshots: %s\n",
                   Snapshots->status().message().c_str());
      return 2;
    }
  }
  monitor::FlightRecorderConfig FlightConfig;
  FlightConfig.DumpPath = Args.getString("flight", "");
  FlightConfig.CapacityFrames =
      static_cast<size_t>(Args.getInt("flight-frames", 600));
  FlightConfig.PostTriggerFrames =
      static_cast<size_t>(Args.getInt("flight-tail", 30));

  auto PrintTransition = [](const monitor::AlarmTransition &T) {
    std::printf("alarm t=%.0fs %s: %s -> %s (value=%.4g)\n", T.TimeS,
                T.Sensor.c_str(), monitor::alarmStateName(T.From),
                monitor::alarmStateName(T.To), T.Value);
  };

  if (RackMode) {
    RackConfig Config = Args.has("skat-plus") ? core::makeSkatPlusRack()
                                              : core::makeSkatRack();
    sim::RackTransientSimulator Simulator(Config,
                                          Args.getDouble("ambient", 25.0));
    if (Args.has("chiller-fail-h"))
      Simulator.scheduleChillerCapacity(
          Args.getDouble("chiller-fail-h", 0.5) * 3600.0, 0.0);
    if (Args.has("chiller-repair-h"))
      Simulator.scheduleChillerCapacity(
          Args.getDouble("chiller-repair-h", 1.0) * 3600.0, 1.0);
    std::unique_ptr<monitor::FlightRecorder> Recorder;
    if (!FlightConfig.DumpPath.empty()) {
      Recorder = std::make_unique<monitor::FlightRecorder>(
          sim::RackTransientSimulator::flightChannels(), FlightConfig);
      Simulator.attachFlightRecorder(Recorder.get());
    }
    audit::PhysicsAuditor *Auditor = maybeEnableAudit(Simulator, Args);
    Simulator.supervisor().setTransitionCallback(PrintTransition);
    if (Snapshots)
      Simulator.setSampleCallback([&](const sim::RackTraceSample &S) {
        (void)Snapshots->maybeSample(S.TimeS);
      });
    Expected<std::vector<sim::RackTraceSample>> Trace =
        Simulator.run(DurationS);
    if (!Trace) {
      std::fprintf(stderr, "simulation failed: %s\n",
                   Trace.message().c_str());
      return 1;
    }
    if (Args.has("ack"))
      Simulator.supervisor().acknowledgeAll(DurationS);
    const sim::RackTraceSample &Last = Trace->back();
    std::printf("t=%.1fh water %.1f C, max junction %.1f C, %d modules "
                "down, alarm %s\n",
                Last.TimeS / 3600.0, Last.WaterTempC,
                Last.MaxJunctionTempC, Last.ModulesShutDown,
                alarmLevelName(Last.Alarm));
    int Code = finishMonitor(Args, Recorder.get(), Snapshots.get(),
                             Simulator.supervisor().allTransitions().size());
    int AuditCode = finishAudit(Auditor, "monitor", Args);
    return Code != 0 ? Code : AuditCode;
  }

  Expected<ModuleConfig> Config = designByName(Args.positional()[0]);
  if (!Config) {
    std::fprintf(stderr, "error: %s\n", Config.message().c_str());
    return 2;
  }
  if (Config->Cooling != CoolingKind::Immersion) {
    std::fprintf(stderr,
                 "error: the monitor runs on immersion designs\n");
    return 2;
  }
  sim::TransientSimulator Simulator(*Config, core::makeNominalConditions());
  if (Args.has("pump-fail-h"))
    Simulator.schedulePumpSpeed(
        Args.getDouble("pump-fail-h", 1.0) * 3600.0, 0.0);
  if (Args.has("pump-repair-h"))
    Simulator.schedulePumpSpeed(
        Args.getDouble("pump-repair-h", 1.0) * 3600.0, 1.0);
  if (Args.has("water-fail-h"))
    Simulator.scheduleWaterFlow(
        Args.getDouble("water-fail-h", 1.0) * 3600.0, 0.0);
  std::unique_ptr<monitor::FlightRecorder> Recorder;
  if (!FlightConfig.DumpPath.empty()) {
    Recorder = std::make_unique<monitor::FlightRecorder>(
        sim::TransientSimulator::flightChannels(), FlightConfig);
    Simulator.attachFlightRecorder(Recorder.get());
  }
  audit::PhysicsAuditor *Auditor = maybeEnableAudit(Simulator, Args);
  Simulator.supervisor().setTransitionCallback(PrintTransition);
  if (Snapshots)
    Simulator.setSampleCallback([&](const sim::TraceSample &S) {
      (void)Snapshots->maybeSample(S.TimeS);
    });
  Expected<std::vector<sim::TraceSample>> Trace = Simulator.run(DurationS);
  if (!Trace) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 Trace.message().c_str());
    return 1;
  }
  if (Args.has("ack"))
    Simulator.supervisor().acknowledgeAll(DurationS);
  const sim::TraceSample &Last = Trace->back();
  std::printf("t=%.1fh junction %.1f C, oil %.1f C, alarm %s%s\n",
              Last.TimeS / 3600.0, Last.MaxJunctionTempC, Last.OilTempC,
              alarmLevelName(Last.Alarm),
              Last.ShutDown ? " (shut down)" : "");
  int Code = finishMonitor(Args, Recorder.get(), Snapshots.get(),
                           Simulator.supervisor().allTransitions().size());
  int AuditCode = finishAudit(Auditor, "monitor", Args);
  return Code != 0 ? Code : AuditCode;
}

int cmdSetpoint(const ArgList &Args) {
  if (Args.positional().empty()) {
    std::fprintf(stderr, "usage: skatsim setpoint <design> [--limit C]\n");
    return 2;
  }
  Expected<ModuleConfig> Config = designByName(Args.positional()[0]);
  if (!Config) {
    std::fprintf(stderr, "error: %s\n", Config.message().c_str());
    return 2;
  }
  double Limit = Args.getDouble("limit", 55.0);
  Expected<double> Setpoint = core::maxWaterSetpointForJunctionLimit(
      *Config, core::makeNominalConditions(), Limit);
  if (!Setpoint) {
    std::fprintf(stderr, "search failed: %s\n", Setpoint.message().c_str());
    return 1;
  }
  std::printf("warmest chilled-water setpoint holding Tj <= %.1f C: "
              "%.1f C\n",
              Limit, *Setpoint);
  return 0;
}

Expected<faults::Scenario> loadFaultsScenario(const ArgList &Args) {
  if (Args.positional().size() < 2)
    return Expected<faults::Scenario>::error(
        "usage: skatsim faults run|sweep <scenario.json>");
  auto Scenario = faults::loadScenarioFile(Args.positional()[1]);
  if (!Scenario)
    return Scenario;
  if (Args.has("seed"))
    Scenario->Seed = static_cast<uint64_t>(Args.getInt("seed", 0));
  if (Args.has("hours"))
    Scenario->DurationS = Args.getDouble("hours", 4.0) * 3600.0;
  return Scenario;
}

int cmdFaultsRun(const ArgList &Args) {
  auto Scenario = loadFaultsScenario(Args);
  if (!Scenario) {
    std::fprintf(stderr, "error: %s\n", Scenario.message().c_str());
    return 2;
  }
  uint64_t Replicate = static_cast<uint64_t>(Args.getInt("replicate", 0));
  Expected<faults::ScenarioOutcome> Outcome =
      faults::runScenario(*Scenario, Replicate);
  if (!Outcome) {
    std::fprintf(stderr, "error: %s\n", Outcome.message().c_str());
    return 1;
  }
  std::printf("scenario %s (%s, %.1f h, seed %llu)\n",
              Outcome->Name.c_str(),
              Scenario->RackLevel ? "rack" : "module",
              Outcome->DurationS / 3600.0,
              static_cast<unsigned long long>(Scenario->Seed));
  std::printf("  availability          %.4f\n", Outcome->AvailabilityFraction);
  std::printf("  throughput retained   %.4f\n",
              Outcome->ThroughputRetainedFraction);
  std::printf("  max junction          %.1f C (final %.1f C)\n",
              Outcome->MaxJunctionC, Outcome->FinalJunctionC);
  if (Outcome->TimeToFirstCriticalS >= 0.0)
    std::printf("  first Critical alarm  %.1f min\n",
                Outcome->TimeToFirstCriticalS / 60.0);
  else
    std::printf("  first Critical alarm  never\n");
  std::printf("  faults injected/cleared  %d/%d; actions %d; modules "
              "down %d\n",
              Outcome->FaultsInjected, Outcome->FaultsCleared,
              Outcome->ActionsTaken, Outcome->ModulesShutDown);
  std::printf("  safe degraded end     %s\n",
              Outcome->SafeDegradedEnd ? "yes" : "NO");
  std::printf("  physics audit         max energy frac %.3e, violations "
              "%llu, within budget %s\n",
              Outcome->AuditMaxEnergyFraction,
              static_cast<unsigned long long>(Outcome->AuditViolationCount),
              Outcome->AuditWithinBudget ? "yes" : "NO");
  std::printf("event timeline (%zu events):\n", Outcome->Events.size());
  for (const faults::FaultEvent &Event : Outcome->Events)
    std::printf("  %9.1f s  %-8s %-20s %s\n", Event.TimeS,
                Event.Event.c_str(), Event.Fault.c_str(),
                Event.Detail.c_str());
  std::string EventsPath = Args.getString("events", "");
  if (!EventsPath.empty()) {
    Status Written =
        faults::writeFaultEventTrace(EventsPath, *Outcome, Scenario->Seed);
    if (!Written.isOk()) {
      std::fprintf(stderr, "events: %s\n", Written.message().c_str());
      return 1;
    }
    std::printf("fault-event trace written to %s\n", EventsPath.c_str());
  }
  return Outcome->SafeDegradedEnd ? 0 : 1;
}

int cmdFaultsSweep(const ArgList &Args) {
  auto Scenario = loadFaultsScenario(Args);
  if (!Scenario) {
    std::fprintf(stderr, "error: %s\n", Scenario.message().c_str());
    return 2;
  }
  faults::SweepConfig Config;
  Config.NumReplicates = Args.getInt("replicates", 16);
  Config.NumThreads = Args.getInt("threads", 1);
  // Live progress is a side channel (docs/OBSERVABILITY.md): the report
  // stays bit-identical whether or not it is enabled.
  std::FILE *ProgressOut = nullptr;
  std::string ProgressPath = Args.getString("progress", "");
  if (Args.has("progress")) {
    if (ProgressPath.empty()) {
      std::fprintf(stderr, "progress: --progress requires a file path\n");
      return 2;
    }
    ProgressOut = std::fopen(ProgressPath.c_str(), "w");
    if (!ProgressOut) {
      std::fprintf(stderr, "progress: cannot open '%s'\n",
                   ProgressPath.c_str());
      return 2;
    }
    Config.ProgressPeriodS = Args.getDouble("progress-period", 1.0);
    Config.OnProgress = [ProgressOut](const faults::SweepProgress &P) {
      std::fprintf(ProgressOut,
                   "{\"kind\": \"sweep_progress\", \"completed\": %d, "
                   "\"total\": %d, \"elapsed_s\": %.3f, \"eta_s\": %.3f, "
                   "\"availability_estimate\": %.6f, \"criticals\": %d}\n",
                   P.Completed, P.Total, P.ElapsedS, P.EtaS,
                   P.MeanAvailabilityFraction, P.Criticals);
      std::fflush(ProgressOut);
    };
  }
  Expected<faults::SweepReport> Report = faults::runSweep(*Scenario, Config);
  if (ProgressOut) {
    std::fclose(ProgressOut);
    std::printf("sweep progress written to %s\n", ProgressPath.c_str());
  }
  if (!Report) {
    std::fprintf(stderr, "error: %s\n", Report.message().c_str());
    return 1;
  }
  std::printf("reliability sweep: %s, %d replicates, seed %llu, %d "
              "thread(s)\n",
              Scenario->Name.c_str(), Report->NumReplicates,
              static_cast<unsigned long long>(Report->Seed),
              Config.NumThreads);
  std::printf("  availability      mean %.4f  min %.4f\n",
              Report->MeanAvailabilityFraction,
              Report->MinAvailabilityFraction);
  std::printf("  throughput        mean %.4f\n",
              Report->MeanThroughputRetainedFraction);
  std::printf("  max junction      mean %.1f C  peak %.1f C\n",
              Report->MeanMaxJunctionC, Report->PeakJunctionC);
  std::printf("  went Critical     %.0f%% of replicates\n",
              Report->CriticalFraction * 100.0);
  if (Report->MttfEstimateHours >= 0.0)
    std::printf("  MTTF estimate     %.1f h (horizon-censored)\n",
                Report->MttfEstimateHours);
  else
    std::printf("  MTTF estimate     beyond horizon (no Criticals)\n");
  std::printf("  physics audit     worst energy frac %.3e, budget "
              "breaches %d\n",
              Report->AuditWorstEnergyFraction,
              Report->AuditBudgetBreaches);
  if (Report->FailedReplicates != 0)
    std::printf("  FAILED replicates %d\n", Report->FailedReplicates);
  uint64_t BinnedSamples = 0;
  for (uint64_t N : Report->JunctionHistogramCounts)
    BinnedSamples += N;
  std::printf("thermal excursions (worst junction, %llu samples binned):\n",
              static_cast<unsigned long long>(BinnedSamples));
  for (int Bin = 0; Bin != faults::SweepReport::NumHistogramBins; ++Bin) {
    uint64_t N = Report->JunctionHistogramCounts[static_cast<size_t>(Bin)];
    if (N == 0)
      continue;
    double Low = faults::SweepReport::HistogramMinC +
                 Bin * faults::SweepReport::HistogramBinWidthC;
    std::printf("  [%5.1f, %5.1f) C  %llu\n", Low,
                Low + faults::SweepReport::HistogramBinWidthC,
                static_cast<unsigned long long>(N));
  }
  if (!Args.has("no-bench")) {
    telemetry::BenchReport Bench("faults_sweep");
    Bench.addMetric("scenario", Scenario->Name);
    Bench.addMetric("replicates", Report->NumReplicates);
    Bench.addMetric("threads", Config.NumThreads);
    Bench.addMetric("seed", static_cast<long long>(Report->Seed));
    Bench.addMetric("mean_availability", Report->MeanAvailabilityFraction);
    Bench.addMetric("min_availability", Report->MinAvailabilityFraction);
    Bench.addMetric("mean_throughput_retained",
                    Report->MeanThroughputRetainedFraction);
    Bench.addMetric("mean_max_junction_C", Report->MeanMaxJunctionC);
    Bench.addMetric("peak_junction_C", Report->PeakJunctionC);
    Bench.addMetric("critical_fraction", Report->CriticalFraction);
    Bench.addMetric("mttf_estimate_h", Report->MttfEstimateHours);
    Bench.addMetric("failed_replicates", Report->FailedReplicates);
    Bench.addMetric("audit_worst_energy_fraction",
                    Report->AuditWorstEnergyFraction);
    Bench.addMetric("audit_budget_breaches", Report->AuditBudgetBreaches);
    Bench.writeOrWarn(Report->FailedReplicates == 0);
    std::printf("bench summary written to %s\n", Bench.path().c_str());
  }
  return Report->FailedReplicates == 0 ? 0 : 1;
}

int cmdFaults(const ArgList &Args) {
  if (Args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: skatsim faults run <scenario.json> [--events FILE]"
                 " [--replicate N]\n"
                 "       skatsim faults sweep <scenario.json>"
                 " [--replicates N] [--threads N] [--no-bench]\n"
                 "both accept [--seed N] [--hours H] overrides\n");
    return 2;
  }
  const std::string &Sub = Args.positional()[0];
  if (Sub == "run")
    return cmdFaultsRun(Args);
  if (Sub == "sweep")
    return cmdFaultsSweep(Args);
  std::fprintf(stderr, "faults: unknown subcommand '%s' (run|sweep)\n",
               Sub.c_str());
  return 2;
}

//===----------------------------------------------------------------------===//
// serve: the scenario-service daemon (docs/SERVICE.md)
//===----------------------------------------------------------------------===//

/// Runs one JSONL session over a stream pair: emits the header line,
/// submits each request line (flushing full batches through the pool),
/// drains the tail, and closes with the daemon-lifetime summary.
int serveStream(service::ScenarioService &Service, std::FILE *In,
                std::FILE *Out) {
  auto Emit = [Out](const std::string &Line) {
    std::fputs(Line.c_str(), Out);
    std::fputc('\n', Out);
  };
  Emit(service::renderServiceHeader());
  std::fflush(Out);
  std::vector<std::string> Ready;
  size_t Queued = 0;
  auto Flush = [&]() {
    Ready.clear();
    size_t Drained = Service.drain(Ready);
    Queued -= std::min(Queued, Drained);
    for (const std::string &Line : Ready)
      Emit(Line);
    std::fflush(Out);
    return Drained;
  };
  char *Buffer = nullptr;
  size_t Capacity = 0;
  ssize_t Length;
  while ((Length = getline(&Buffer, &Capacity, In)) != -1) {
    std::string_view Line(Buffer, static_cast<size_t>(Length));
    while (!Line.empty() && (Line.back() == '\n' || Line.back() == '\r'))
      Line.remove_suffix(1);
    if (Line.empty())
      continue;
    // Parse errors and queue-full rejections answer immediately; queued
    // requests answer from the next batch drain, in submission order.
    std::optional<std::string> Immediate = Service.submit(Line);
    if (Immediate) {
      Emit(*Immediate);
      std::fflush(Out);
    } else if (++Queued >=
               static_cast<size_t>(Service.config().MaxBatch)) {
      Flush();
    }
  }
  std::free(Buffer);
  while (Flush() != 0)
    ;
  Emit(service::renderServiceSummary(Service.summary()));
  return std::fflush(Out) == 0 ? 0 : 1;
}

/// Accept loop for --port (loopback TCP) and --socket (Unix domain):
/// one JSONL session per connection, sessions served sequentially so the
/// evaluation pool is never oversubscribed.
int serveSocket(service::ScenarioService &Service, const ArgList &Args) {
  std::string SocketPath = Args.getString("socket", "");
  int Listener = -1;
  if (!SocketPath.empty()) {
    sockaddr_un Addr{};
    if (SocketPath.size() >= sizeof(Addr.sun_path)) {
      std::fprintf(stderr, "serve: socket path too long\n");
      return 2;
    }
    Listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Listener < 0) {
      std::fprintf(stderr, "serve: socket: %s\n", std::strerror(errno));
      return 1;
    }
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, SocketPath.c_str(),
                 sizeof(Addr.sun_path) - 1);
    ::unlink(SocketPath.c_str());
    if (::bind(Listener, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) != 0) {
      std::fprintf(stderr, "serve: bind %s: %s\n", SocketPath.c_str(),
                   std::strerror(errno));
      ::close(Listener);
      return 1;
    }
  } else {
    Listener = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Listener < 0) {
      std::fprintf(stderr, "serve: socket: %s\n", std::strerror(errno));
      return 1;
    }
    int One = 1;
    ::setsockopt(Listener, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port =
        htons(static_cast<uint16_t>(Args.getInt("port", 0)));
    if (::bind(Listener, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) != 0) {
      std::fprintf(stderr, "serve: bind: %s\n", std::strerror(errno));
      ::close(Listener);
      return 1;
    }
  }
  if (::listen(Listener, 8) != 0) {
    std::fprintf(stderr, "serve: listen: %s\n", std::strerror(errno));
    ::close(Listener);
    return 1;
  }
  if (!SocketPath.empty()) {
    std::fprintf(stderr, "serve: listening on %s\n", SocketPath.c_str());
  } else {
    // Report the bound port (--port 0 asks the kernel for one).
    sockaddr_in Bound{};
    socklen_t BoundLen = sizeof(Bound);
    ::getsockname(Listener, reinterpret_cast<sockaddr *>(&Bound),
                  &BoundLen);
    std::fprintf(stderr, "serve: listening on 127.0.0.1:%u\n",
                 ntohs(Bound.sin_port));
  }
  std::fflush(stderr);

  int MaxConns = Args.getInt("max-conns", 0);
  int Served = 0;
  int Code = 0;
  while (MaxConns <= 0 || Served < MaxConns) {
    int Conn = ::accept(Listener, nullptr, nullptr);
    if (Conn < 0) {
      if (errno == EINTR)
        continue;
      std::fprintf(stderr, "serve: accept: %s\n", std::strerror(errno));
      Code = 1;
      break;
    }
    std::FILE *In = ::fdopen(Conn, "r");
    std::FILE *Out = In ? ::fdopen(::dup(Conn), "w") : nullptr;
    if (!In || !Out) {
      std::fprintf(stderr, "serve: fdopen failed for connection\n");
      if (In)
        std::fclose(In);
      else
        ::close(Conn);
      ++Served;
      continue;
    }
    serveStream(Service, In, Out);
    std::fclose(Out);
    std::fclose(In);
    ++Served;
  }
  ::close(Listener);
  if (!SocketPath.empty())
    ::unlink(SocketPath.c_str());
  return Code;
}

int cmdServe(const ArgList &Args) {
  service::ServeConfig Config;
  Config.NumThreads = Args.getInt("threads", 0);
  Config.MaxBatch = std::max(1, Args.getInt("batch", 8));
  Config.MaxQueueDepth =
      static_cast<size_t>(std::max(1, Args.getInt("queue", 64)));
  Config.DefaultTimeoutS = Args.getDouble("timeout-s", 30.0);
  Config.CacheMaxEntries =
      static_cast<size_t>(std::max(1, Args.getInt("cache", 16)));
  Config.UseSolverCache = !Args.has("no-cache");
  Config.TransientDtS = Args.getDouble("dt-s", 2.0);
  if (Args.has("water"))
    Config.setWaterSetpoint(units::Celsius(Args.getDouble("water", 18.0)));
  if (Args.has("ambient"))
    Config.setAmbientSetpoint(
        units::Celsius(Args.getDouble("ambient", 25.0)));
  service::ScenarioService Service(Config);

  int Code;
  if (Args.has("port") || Args.has("socket")) {
    Code = serveSocket(Service, Args);
  } else {
    std::FILE *In = stdin;
    std::string InPath = Args.getString("in", "");
    if (!InPath.empty()) {
      In = std::fopen(InPath.c_str(), "r");
      if (!In) {
        std::fprintf(stderr, "serve: cannot open '%s'\n", InPath.c_str());
        return 2;
      }
    }
    std::FILE *Out = stdout;
    std::string OutPath = Args.getString("out", "");
    if (!OutPath.empty()) {
      Out = std::fopen(OutPath.c_str(), "w");
      if (!Out) {
        std::fprintf(stderr, "serve: cannot open '%s'\n", OutPath.c_str());
        if (In != stdin)
          std::fclose(In);
        return 2;
      }
    }
    Code = serveStream(Service, In, Out);
    if (In != stdin)
      std::fclose(In);
    if (Out != stdout)
      std::fclose(Out);
  }

  service::ServiceSummary Totals = Service.summary();
  service::SolverCacheStats CacheStats = Service.cacheStats();
  std::fprintf(stderr,
               "serve: %llu requests (%llu ok, %llu errors, %llu rejected, "
               "%llu timed out), cache %llu hits / %llu misses\n",
               static_cast<unsigned long long>(Totals.Requests),
               static_cast<unsigned long long>(Totals.OkCount),
               static_cast<unsigned long long>(Totals.ErrorCount),
               static_cast<unsigned long long>(Totals.Rejected),
               static_cast<unsigned long long>(Totals.TimedOut),
               static_cast<unsigned long long>(CacheStats.Hits),
               static_cast<unsigned long long>(CacheStats.Misses));
  std::string PromPath = Args.getString("prom", "");
  if (!PromPath.empty()) {
    Status Written = monitor::writePrometheusFile(
        telemetry::Registry::global(), PromPath);
    if (!Written.isOk()) {
      std::fprintf(stderr, "prom: %s\n", Written.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "serve: Prometheus exposition written to %s\n",
                 PromPath.c_str());
  }
  return Code;
}

void printUsage() {
  std::fprintf(
      stderr,
      "skatsim - immersion-cooled RCS simulator\n"
      "usage:\n"
      "  skatsim list\n"
      "  skatsim solve <design>|--config FILE [--ambient C] [--water C]"
      " [--water-lpm L] [--util U] [--clock F]\n"
      "  skatsim rack [--ambient C] [--isolate N] [--skat-plus]\n"
      "  skatsim fleet [--racks N] [--modules M] [--minutes T] [--dt-s S]\n"
      "                [--water C] [--excursion-c C] [--dense]\n"
      "  skatsim transient <design> [--hours H] [--pump-fail-h T]"
      " [--csv FILE]\n"
      "  skatsim monitor <design>|--rack [--hours H] [--pump-fail-h T]\n"
      "                  [--pump-repair-h T] [--water-fail-h T]"
      " [--chiller-fail-h T]\n"
      "                  [--chiller-repair-h T]\n"
      "                  [--flight FILE] [--flight-frames N]"
      " [--flight-tail N]\n"
      "                  [--prom FILE] [--snapshots FILE]"
      " [--snapshot-period S] [--ack]\n"
      "  skatsim setpoint <design> [--limit C]\n"
      "  skatsim faults run <scenario.json> [--events FILE]"
      " [--replicate N]\n"
      "  skatsim faults sweep <scenario.json> [--replicates N]"
      " [--threads N]\n"
      "                 [--no-bench] [--progress FILE]"
      " [--progress-period S]\n"
      "                 (both: [--seed N] [--hours H])\n"
      "  skatsim serve [--in FILE] [--out FILE] [--port N |"
      " --socket PATH]\n"
      "                [--max-conns N] [--threads N] [--batch N]"
      " [--queue N]\n"
      "                [--timeout-s S] [--cache N | --no-cache]"
      " [--dt-s S]\n"
      "                [--water C] [--ambient C] [--prom FILE]\n"
      "  skatsim profile <command> [args...] [--profile-out FILE]\n"
      "  skatsim audit <command> [args...] [--audit-out FILE]"
      " [--audit-trace FILE]\n"
      "                [--audit-energy-warn F] [--audit-energy-critical F]\n"
      "                [--audit-coupling-warn F]"
      " [--audit-coupling-critical F]\n"
      "every command also accepts:\n"
      "  --trace FILE    structured event trace (.otlp.jsonl = OTLP-style\n"
      "                  spans, .jsonl = JSON Lines, otherwise Chrome\n"
      "                  trace_event JSON for Perfetto)\n"
      "  --metrics FILE  counter/timer snapshot written at exit\n");
}

int runCommand(const std::string &Command, const ArgList &Args) {
  if (Command == "list")
    return cmdList();
  if (Command == "solve")
    return cmdSolve(Args);
  if (Command == "rack")
    return cmdRack(Args);
  if (Command == "fleet")
    return cmdFleet(Args);
  if (Command == "transient")
    return cmdTransient(Args);
  if (Command == "monitor")
    return cmdMonitor(Args);
  if (Command == "setpoint")
    return cmdSetpoint(Args);
  if (Command == "faults")
    return cmdFaults(Args);
  if (Command == "serve")
    return cmdServe(Args);
  printUsage();
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    printUsage();
    return 2;
  }
  std::string Command = Argv[1];
  // `skatsim profile <command> ...` wraps the inner command with the
  // span-aggregating profiler; everything else about the command line is
  // interpreted exactly as the inner command would.
  bool ProfileMode = Command == "profile";
  int ArgStart = 2;
  if (ProfileMode) {
    if (Argc < 3 || startsWith(Argv[2], "--")) {
      std::fprintf(stderr, "usage: skatsim profile <command> [args...]"
                           " [--profile-out FILE]\n");
      return 2;
    }
    Command = Argv[2];
    ArgStart = 3;
  }
  // `skatsim audit <command> ...` runs the inner command with the physics
  // auditor armed (audit/Audit.h): conservation and convergence drift are
  // checked against budgets, the closure table is printed, and
  // AUDIT_<command>.json is written. A blown critical budget fails the
  // process.
  if (Command == "audit") {
    if (ArgStart >= Argc || startsWith(Argv[ArgStart], "--")) {
      std::fprintf(stderr,
                   "usage: skatsim audit <command> [args...]"
                   " [--audit-out FILE] [--audit-trace FILE]\n");
      return 2;
    }
    AuditMode = true;
    Command = Argv[ArgStart];
    ++ArgStart;
  }
  ArgList Args(Argc, Argv, ArgStart);
  if (AuditMode) {
    AuditBudgets.EnergyFractionWarn = units::Scalar(Args.getDouble(
        "audit-energy-warn", AuditBudgets.EnergyFractionWarn.value()));
    AuditBudgets.EnergyFractionCritical = units::Scalar(Args.getDouble(
        "audit-energy-critical",
        AuditBudgets.EnergyFractionCritical.value()));
    AuditBudgets.EnergyNodeFractionWarn = AuditBudgets.EnergyFractionWarn;
    AuditBudgets.EnergyNodeFractionCritical =
        AuditBudgets.EnergyFractionCritical;
    AuditBudgets.CouplingFractionWarn = units::Scalar(Args.getDouble(
        "audit-coupling-warn", AuditBudgets.CouplingFractionWarn.value()));
    AuditBudgets.CouplingFractionCritical = units::Scalar(Args.getDouble(
        "audit-coupling-critical",
        AuditBudgets.CouplingFractionCritical.value()));
  }

  telemetry::Registry &Telemetry = telemetry::Registry::global();
  if (Args.has("trace") && Args.getString("trace", "").empty()) {
    std::fprintf(stderr, "trace: --trace requires a file path\n");
    return 2;
  }
  if (Args.has("metrics") && Args.getString("metrics", "").empty()) {
    std::fprintf(stderr, "metrics: --metrics requires a file path\n");
    return 2;
  }
  std::string TracePath = Args.getString("trace", "");
  std::unique_ptr<telemetry::EventSink> TraceSink;
  if (!TracePath.empty()) {
    Expected<std::unique_ptr<telemetry::EventSink>> Sink =
        endsWith(TracePath, ".otlp.jsonl")
            ? telemetry::makeOtlpSpanSink(TracePath)
        : endsWith(TracePath, ".jsonl")
            ? telemetry::makeJsonlSink(TracePath)
            : telemetry::makeChromeTraceSink(TracePath);
    if (!Sink) {
      std::fprintf(stderr, "trace: %s\n", Sink.message().c_str());
      return 2;
    }
    TraceSink = std::move(*Sink);
  }
  telemetry::Profiler *Profiler = nullptr;
  if (ProfileMode) {
    auto Prof = std::make_unique<telemetry::Profiler>();
    Profiler = Prof.get();
    TraceSink = TraceSink ? telemetry::makeTeeSink(std::move(Prof),
                                                   std::move(TraceSink))
                          : std::move(Prof);
  }
  if (TraceSink)
    Telemetry.setSink(std::move(TraceSink));

  int ExitCode = runCommand(Command, Args);

  if (Profiler) {
    telemetry::ProfileReport Report = Profiler->report();
    std::printf("\n%s", telemetry::renderProfileText(Report, Command).c_str());
    std::string ProfilePath =
        Args.getString("profile-out", "PROFILE_" + Command + ".json");
    Status Written =
        telemetry::writeProfileFile(Report, Command, ProfilePath);
    if (!Written.isOk()) {
      std::fprintf(stderr, "profile: %s\n", Written.message().c_str());
      if (ExitCode == 0)
        ExitCode = 1;
    } else {
      std::printf("profile written to %s\n", ProfilePath.c_str());
    }
  }

  Status Closed = Telemetry.closeSink();
  if (!Closed.isOk()) {
    std::fprintf(stderr, "trace: %s\n", Closed.message().c_str());
    if (ExitCode == 0)
      ExitCode = 1;
  }
  std::string MetricsPath = Args.getString("metrics", "");
  if (!MetricsPath.empty()) {
    Status Written = Telemetry.writeMetricsFile(MetricsPath);
    if (!Written.isOk()) {
      std::fprintf(stderr, "metrics: %s\n", Written.message().c_str());
      if (ExitCode == 0)
        ExitCode = 1;
    }
  }
  return ExitCode;
}
