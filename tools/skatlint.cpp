//===- tools/skatlint.cpp - skatsim convention linter -------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A token-level linter for the unit and numerics conventions the type
/// system cannot reach (support/Quantity.h is the compile-time end of the
/// same policy; see docs/STATIC_ANALYSIS.md for the full contract):
///
///   skatlint [--jsonl <file>] [--list-rules] <path>...
///
/// Rules:
///
///  - unit-suffix: in headers, every `double` parameter, field, constant
///    and double-returning function must end in a whitelisted unit suffix
///    (TempC, FlowM3PerS, ...) or a sanctioned dimensionless word
///    (Fraction, Ratio, ...); bare names hide the unit from the caller.
///  - conversion-roundtrip: composing a unit conversion with its inverse
///    (`celsiusToKelvin(kelvinToCelsius(x))`) is always a bug: either a
///    no-op or, more often, evidence the author lost track of the scale.
///  - range-guard: Nusselt/Rayleigh correlation definitions must contain
///    at least one validity-range check (branch, clamp or assert);
///    correlations extrapolate silently otherwise.
///  - banned-idiom: `rand`/`srand` (use rcs::Rng), `atof` (no error
///    reporting; use std::strtod with end-pointer checks) and `gets`.
///  - float-equality: `==`/`!=` against a floating-point literal; use
///    rcs::approxEqual / rcs::nearZero (support/Numerics.h) instead.
///  - expected-discard: a bare statement calling a function this file
///    declares to return `Status` or `Expected<T>` throws the error away;
///    check the result or cast to `(void)` to mark it deliberate.
///  - magic-number-table: a non-trivial floating literal repeated three or
///    more times inside one braced table initializer is a copy-pasted
///    magic number; hoist it into a named constant (or justify the
///    repetition with a suppression) so the table has one source of truth.
///  - raw-mutex: direct use of std::mutex/std::lock_guard (and friends)
///    bypasses the Clang thread-safety analysis; lock through rcs::Mutex /
///    rcs::LockGuard (support/ThreadSafety.h) or justify a suppression.
///  - unguarded-shared-static: a mutable static at namespace or class
///    scope is reachable from every thread; it must be RCS_GUARDED_BY a
///    mutex, atomic, const/constexpr, or carry a justified suppression.
///
/// Suppression: a comment containing `skatlint:ignore(<rule>)` (or a
/// comma-separated rule list) suppresses matching findings on its own line
/// and the next line. Suppressions are counted and reported.
///
/// Output is human-readable `file:line: [rule] message` lines plus a
/// summary; `--jsonl` additionally writes one JSON object per finding and
/// a trailing summary record, in the house JSONL style shared with the
/// telemetry sinks. Exit code: 0 clean, 1 findings, 2 usage/IO error.
///
//===----------------------------------------------------------------------===//

#include "telemetry/Json.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace rcs;

namespace {

//===----------------------------------------------------------------------===//
// Tokenizer
//===----------------------------------------------------------------------===//

enum class TokenKind { Identifier, Number, Punct, StringLit, CharLit };

struct Token {
  TokenKind Kind;
  std::string Text;
  int Line;
};

/// Per-line suppression sets harvested from skatlint:ignore comments.
using SuppressionMap = std::map<int, std::set<std::string>>;

/// True for floating-point literals (contain '.' or a decimal exponent).
bool isFloatLiteral(const Token &T) {
  if (T.Kind != TokenKind::Number)
    return false;
  if (T.Text.size() > 1 && (T.Text[1] == 'x' || T.Text[1] == 'X'))
    return false; // hex
  return T.Text.find('.') != std::string::npos ||
         T.Text.find('e') != std::string::npos ||
         T.Text.find('E') != std::string::npos;
}

/// Records `skatlint:ignore(a,b)` rule lists found inside \p Comment.
void harvestSuppressions(const std::string &Comment, int Line,
                         SuppressionMap &Suppressions) {
  const std::string Tag = "skatlint:ignore(";
  size_t Pos = Comment.find(Tag);
  if (Pos == std::string::npos)
    return;
  size_t End = Comment.find(')', Pos);
  if (End == std::string::npos)
    return;
  std::string Rules = Comment.substr(Pos + Tag.size(), End - Pos - Tag.size());
  size_t Start = 0;
  while (Start <= Rules.size()) {
    size_t Comma = Rules.find(',', Start);
    if (Comma == std::string::npos)
      Comma = Rules.size();
    std::string Rule = Rules.substr(Start, Comma - Start);
    Rule.erase(std::remove_if(Rule.begin(), Rule.end(), ::isspace),
               Rule.end());
    if (!Rule.empty())
      Suppressions[Line].insert(Rule);
    Start = Comma + 1;
  }
}

/// Splits \p Text into tokens, dropping comments (after mining them for
/// suppressions), string/char literal contents, and preprocessor lines.
std::vector<Token> tokenize(const std::string &Text,
                            SuppressionMap &Suppressions) {
  std::vector<Token> Tokens;
  size_t I = 0;
  int Line = 1;
  bool AtLineStart = true;
  auto Peek = [&](size_t Off) -> char {
    return I + Off < Text.size() ? Text[I + Off] : '\0';
  };
  while (I < Text.size()) {
    char C = Text[I];
    if (C == '\n') {
      ++Line;
      ++I;
      AtLineStart = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    // Preprocessor directive: skip the logical line (with continuations).
    if (C == '#' && AtLineStart) {
      while (I < Text.size() && Text[I] != '\n') {
        if (Text[I] == '\\' && Peek(1) == '\n') {
          ++Line;
          I += 2;
          continue;
        }
        ++I;
      }
      continue;
    }
    AtLineStart = false;
    // Line comment. A suppression tag rides through an immediately
    // following run of //-comment lines (multi-line justifications) and
    // lands on the first code line after the run.
    if (C == '/' && Peek(1) == '/') {
      size_t End = Text.find('\n', I);
      if (End == std::string::npos)
        End = Text.size();
      harvestSuppressions(Text.substr(I, End - I), Line, Suppressions);
      auto TagIt = Suppressions.find(Line);
      if (TagIt != Suppressions.end()) {
        int Covered = Line;
        size_t Pos = End;
        while (Pos < Text.size()) {
          size_t Q = Pos + 1; // first char of the next line
          while (Q < Text.size() && (Text[Q] == ' ' || Text[Q] == '\t'))
            ++Q;
          if (Q + 1 >= Text.size() || Text[Q] != '/' || Text[Q + 1] != '/')
            break;
          ++Covered;
          Pos = Text.find('\n', Q);
          if (Pos == std::string::npos)
            break;
        }
        std::set<std::string> Rules = TagIt->second;
        for (int L2 = Line + 1; L2 <= Covered + 1; ++L2)
          Suppressions[L2].insert(Rules.begin(), Rules.end());
      }
      I = End;
      continue;
    }
    // Block comment; suppressions anchor at its closing line.
    if (C == '/' && Peek(1) == '*') {
      size_t End = Text.find("*/", I + 2);
      if (End == std::string::npos)
        End = Text.size();
      std::string Comment = Text.substr(I, End - I);
      Line += static_cast<int>(std::count(Comment.begin(), Comment.end(),
                                          '\n'));
      harvestSuppressions(Comment, Line, Suppressions);
      I = End == Text.size() ? End : End + 2;
      continue;
    }
    // String / char literals (handles escapes; raw strings delimiter-free
    // form R"( ... )" only, which is the only form the repo uses).
    if (C == '"' || C == '\'') {
      bool Raw = C == '"' && I > 0 && Text[I - 1] == 'R';
      Tokens.push_back({C == '"' ? TokenKind::StringLit : TokenKind::CharLit,
                        std::string(1, C), Line});
      if (Raw) {
        size_t End = Text.find(")\"", I + 2);
        if (End == std::string::npos)
          End = Text.size();
        std::string Body = Text.substr(I, End - I);
        Line += static_cast<int>(std::count(Body.begin(), Body.end(), '\n'));
        I = End == Text.size() ? End : End + 2;
        continue;
      }
      ++I;
      while (I < Text.size() && Text[I] != C) {
        if (Text[I] == '\\')
          ++I;
        if (I < Text.size() && Text[I] == '\n')
          ++Line;
        ++I;
      }
      ++I;
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
      size_t Start = I;
      while (I < Text.size()) {
        char N = Text[I];
        if (std::isalnum(static_cast<unsigned char>(N)) || N == '.' ||
            N == '\'' ||
            ((N == '+' || N == '-') &&
             (Text[I - 1] == 'e' || Text[I - 1] == 'E'))) {
          ++I;
          continue;
        }
        break;
      }
      Tokens.push_back({TokenKind::Number, Text.substr(Start, I - Start),
                        Line});
      continue;
    }
    // Identifier / keyword.
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < Text.size() &&
             (std::isalnum(static_cast<unsigned char>(Text[I])) ||
              Text[I] == '_'))
        ++I;
      Tokens.push_back({TokenKind::Identifier, Text.substr(Start, I - Start),
                        Line});
      continue;
    }
    // Punctuation; keep the multi-char operators the rules care about.
    static const char *MultiOps[] = {"==", "!=", "<=", ">=", "::", "->",
                                     "&&", "||", "<<", ">>", "+=", "-=",
                                     "*=", "/="};
    std::string Op(1, C);
    for (const char *M : MultiOps) {
      if (Text.compare(I, std::strlen(M), M) == 0) {
        Op = M;
        break;
      }
    }
    Tokens.push_back({TokenKind::Punct, Op, Line});
    I += Op.size();
  }
  return Tokens;
}

//===----------------------------------------------------------------------===//
// Naming whitelists (documented in docs/STATIC_ANALYSIS.md)
//===----------------------------------------------------------------------===//

/// Unit suffixes a dimensional double must end with. A suffix matches only
/// at a camelCase boundary: the preceding character must be lowercase or a
/// digit (or the name is the suffix itself).
const char *const UnitSuffixes[] = {
    // Single-unit tails. Most composite suffixes (M3PerS, JPerKgK,
    // KPerW, ...) reduce to one of these at the end of the name.
    "C", "K", "W", "J", "S", "M", "M2", "M3", "Pa", "Bar", "Mm", "Kw",
    "Kwh", "MHz", "Hz", "Usd", "Ev", "Lpm", "Liters", "Gflops", "Pflops",
    "Fit", // failures per 1e9 device-hours (JEDEC FIT)
    // Composites whose char before the final unit token is uppercase, so
    // the boundary rule needs them spelled out.
    "WPerMK", "MPerS2",
    // Spelled-out unit words (conversion helpers name their target unit).
    "Kelvin", "Celsius", "Seconds",
    // Time words.
    "Hour", "Hours", "Years", "Samples",
    // Per-something tails whose final word is not itself a unit token.
    "PerU", "PerWatt", "PerLiter", "PerYear", "PerKh", "PerMinute",
    "PerChip", "PerSpin", "KvPerMm",
};

/// Dimensionless words that end a name and sanction a bare double.
const char *const DimensionlessSuffixes[] = {
    "Fraction", "Ratio",        "Factor",     "Coefficient", "Efficiency",
    "Effectiveness", "Count",   "Score",      "Scale",       "Rel",
    "Abs",       "Utilization", "Probability", "Availability", "Jitter",
    "Norm",      "Residual",    "Tolerance",  "Tol",         "Epsilon",
    "Weight",    "Threshold",   "Hysteresis", "Imbalance",   "Number",
    "Exponent",  "Pue",         "Cop",        "Share",       "Index",
    "Percent",   "Nusselt",     "Rayleigh",   "Reynolds",
    // Value-domain words: the quantity is in whatever unit the caller
    // recorded (generic stats, sensors, interpolation tables).
    "Value", "Sample", "Bound",
    // Accessor tail for element-at-index style lookups.
    "At",
};

/// Exact names allowed without a suffix: generic math/statistics helpers
/// and named dimensionless groups.
const char *const ExactAllowedNames[] = {
    "Value",   "LastValue", "DoubleValue", "X",        "Y",      "V",
    "P",       "Q",         "A",           "B",        "Val",    "Low",
    "High",    "Min",       "Max",         "Sum",      "Mean",   "StdDev",
    "Initial", "Total",     "Re",          "Pr",       "PrSurface",
    "Nusselt", "Rayleigh",  "Ntu",         "Lambda",   "Checksum",
    "Damping", "Relaxation", "P50",        "P95",      "P99",    "Giga",
    "Tera",    "Peta",      "BetaJ",       "Scale",
    // Member/parameter spellings of the interpolation-table range
    // accessors sanctioned below (tables are value-domain generic).
    "MinX",    "MaxX",
    // double-returning accessor/function names (camelBack): generic math
    // helpers and named dimensionless groups.
    "value",   "prandtl",   "opening",     "quantile", "mean",   "total",
    "sum",     "at",        "evaluate",    "derivative", "inverse",
    "minX",    "maxX",      "uniform",     "normal",   "exponential",
    "cop",     "reynolds",  "quantileLocked", "p50",   "p95",    "p99",
};

bool endsWithAtBoundary(const std::string &Name, const std::string &Suffix) {
  if (Name.size() < Suffix.size())
    return false;
  if (Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) != 0)
    return false;
  if (Name.size() == Suffix.size())
    return true;
  char Before = Name[Name.size() - Suffix.size() - 1];
  return std::islower(static_cast<unsigned char>(Before)) ||
         std::isdigit(static_cast<unsigned char>(Before));
}

/// True when \p Name carries a unit suffix or is sanctioned dimensionless.
bool isAllowedDoubleName(const std::string &Name) {
  for (const char *Exact : ExactAllowedNames)
    if (Name == Exact)
      return true;
  for (const char *Suffix : UnitSuffixes)
    if (endsWithAtBoundary(Name, Suffix))
      return true;
  for (const char *Suffix : DimensionlessSuffixes)
    if (endsWithAtBoundary(Name, Suffix))
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Findings
//===----------------------------------------------------------------------===//

struct Finding {
  std::string File;
  int Line;
  std::string Rule;
  std::string Message;
};

struct LintStats {
  std::vector<Finding> Findings;
  std::map<std::string, int> RuleCounts;
  std::map<std::string, int> SuppressedCounts;
  int FilesScanned = 0;
};

/// Emits \p F unless a suppression for its rule covers the line (the
/// comment's own line or the line before the finding).
void report(LintStats &Stats, const SuppressionMap &Suppressions,
            Finding F) {
  for (int Line : {F.Line, F.Line - 1}) {
    auto It = Suppressions.find(Line);
    if (It != Suppressions.end() && It->second.count(F.Rule)) {
      ++Stats.SuppressedCounts[F.Rule];
      return;
    }
  }
  ++Stats.RuleCounts[F.Rule];
  Stats.Findings.push_back(std::move(F));
}

//===----------------------------------------------------------------------===//
// Rules
//===----------------------------------------------------------------------===//

bool isHeaderPath(const std::string &Path) {
  return Path.size() > 2 && (Path.rfind(".h") == Path.size() - 2 ||
                             Path.rfind(".hpp") == Path.size() - 4);
}

/// unit-suffix: `double Name` followed by `, ) ; =` (parameter, field,
/// constant) or `(` (double-returning function) in a header must carry a
/// whitelisted suffix.
void checkUnitSuffix(const std::string &Path, const std::vector<Token> &Toks,
                     const SuppressionMap &Sup, LintStats &Stats) {
  if (!isHeaderPath(Path))
    return;
  for (size_t I = 0; I + 2 < Toks.size(); ++I) {
    if (Toks[I].Kind != TokenKind::Identifier || Toks[I].Text != "double")
      continue;
    const Token &Name = Toks[I + 1];
    if (Name.Kind != TokenKind::Identifier)
      continue;
    const std::string &Next = Toks[I + 2].Text;
    bool IsDecl = Next == "," || Next == ")" || Next == ";" || Next == "=";
    bool IsFunc = Next == "(";
    if (!IsDecl && !IsFunc)
      continue;
    if (Name.Text == "operator")
      continue;
    if (isAllowedDoubleName(Name.Text))
      continue;
    const char *What = IsFunc ? "double-returning function"
                              : "double declaration";
    report(Stats, Sup,
           {Path, Name.Line, "unit-suffix",
            std::string(What) + " '" + Name.Text +
                "' lacks a unit suffix (TempC, FlowM3PerS, ...) or a "
                "sanctioned dimensionless word; see "
                "docs/STATIC_ANALYSIS.md"});
  }
}

/// conversion-roundtrip: outer(inner(...)) where inner is outer's inverse.
void checkConversionRoundtrip(const std::string &Path,
                              const std::vector<Token> &Toks,
                              const SuppressionMap &Sup, LintStats &Stats) {
  static const std::pair<const char *, const char *> InversePairs[] = {
      {"celsiusToKelvin", "kelvinToCelsius"},
      {"kelvinToCelsius", "celsiusToKelvin"},
      {"barToPa", "paToBar"},
      {"paToBar", "barToPa"},
      {"litersPerMinuteToM3PerS", "m3PerSToLitersPerMinute"},
      {"m3PerSToLitersPerMinute", "litersPerMinuteToM3PerS"},
      {"toKelvin", "toCelsius"},
      {"toCelsius", "toKelvin"},
  };
  for (size_t I = 0; I + 3 < Toks.size(); ++I) {
    if (Toks[I].Kind != TokenKind::Identifier || Toks[I + 1].Text != "(")
      continue;
    // Skip namespace qualifiers on the inner call: `units::foo(`.
    size_t J = I + 2;
    while (J + 1 < Toks.size() && Toks[J].Kind == TokenKind::Identifier &&
           Toks[J + 1].Text == "::")
      J += 2;
    if (J + 1 >= Toks.size() || Toks[J].Kind != TokenKind::Identifier ||
        Toks[J + 1].Text != "(")
      continue;
    for (auto [Outer, Inner] : InversePairs) {
      if (Toks[I].Text == Outer && Toks[J].Text == Inner) {
        report(Stats, Sup,
               {Path, Toks[I].Line, "conversion-roundtrip",
                "'" + Toks[I].Text + "(" + Toks[J].Text +
                    "(...))' composes a conversion with its inverse"});
      }
    }
  }
}

/// range-guard: Nusselt/Rayleigh correlation definitions must branch,
/// clamp or assert somewhere in their body.
void checkRangeGuard(const std::string &Path, const std::vector<Token> &Toks,
                     const SuppressionMap &Sup, LintStats &Stats) {
  auto IsCorrelationName = [](const std::string &Name) {
    return Name.find("Nusselt") != std::string::npos ||
           Name.find("nusselt") != std::string::npos ||
           Name.find("Rayleigh") != std::string::npos ||
           Name.find("rayleigh") != std::string::npos;
  };
  for (size_t I = 0; I + 1 < Toks.size(); ++I) {
    if (Toks[I].Kind != TokenKind::Identifier ||
        !IsCorrelationName(Toks[I].Text) || Toks[I + 1].Text != "(")
      continue;
    // Find the closing paren of the parameter list.
    size_t J = I + 1;
    int Depth = 0;
    for (; J < Toks.size(); ++J) {
      if (Toks[J].Text == "(")
        ++Depth;
      else if (Toks[J].Text == ")" && --Depth == 0)
        break;
    }
    if (J >= Toks.size())
      continue;
    // A definition has `{` next (possibly after const/noexcept); a call or
    // declaration does not.
    size_t K = J + 1;
    while (K < Toks.size() && Toks[K].Kind == TokenKind::Identifier &&
           (Toks[K].Text == "const" || Toks[K].Text == "noexcept"))
      ++K;
    if (K >= Toks.size() || Toks[K].Text != "{")
      continue;
    // Scan the brace-matched body for a guard.
    bool Guarded = false;
    int Braces = 0;
    size_t Body = K;
    for (; Body < Toks.size(); ++Body) {
      const std::string &T = Toks[Body].Text;
      if (T == "{")
        ++Braces;
      else if (T == "}" && --Braces == 0)
        break;
      if (T == "if" || T == "clamp" || T == "min" || T == "max" ||
          T == "assert" || T == "<" || T == ">" || T == "<=" || T == ">=")
        Guarded = true;
    }
    if (!Guarded)
      report(Stats, Sup,
             {Path, Toks[I].Line, "range-guard",
              "correlation '" + Toks[I].Text +
                  "' has no validity-range guard (branch, clamp or "
                  "assert) in its body"});
    I = Body;
  }
}

/// banned-idiom: library calls the repo forbids.
void checkBannedIdiom(const std::string &Path, const std::vector<Token> &Toks,
                      const SuppressionMap &Sup, LintStats &Stats) {
  static const std::pair<const char *, const char *> Banned[] = {
      {"rand", "use rcs::Rng (support/Random.h) for reproducible streams"},
      {"srand", "use rcs::Rng (support/Random.h) for reproducible streams"},
      {"atof", "no error reporting; use std::strtod with an end pointer"},
      {"gets", "unbounded read"},
  };
  for (size_t I = 0; I + 1 < Toks.size(); ++I) {
    if (Toks[I].Kind != TokenKind::Identifier || Toks[I + 1].Text != "(")
      continue;
    // Skip member accesses (obj.rand(), obj->rand()) — different function.
    if (I > 0 && (Toks[I - 1].Text == "." || Toks[I - 1].Text == "->"))
      continue;
    for (auto [Fn, Why] : Banned) {
      if (Toks[I].Text == Fn)
        report(Stats, Sup,
               {Path, Toks[I].Line, "banned-idiom",
                "call to '" + Toks[I].Text + "': " + Why});
    }
  }
}

/// float-equality: `==`/`!=` with a floating literal on either side.
void checkFloatEquality(const std::string &Path,
                        const std::vector<Token> &Toks,
                        const SuppressionMap &Sup, LintStats &Stats) {
  for (size_t I = 1; I + 1 < Toks.size(); ++I) {
    if (Toks[I].Text != "==" && Toks[I].Text != "!=")
      continue;
    if (!isFloatLiteral(Toks[I - 1]) && !isFloatLiteral(Toks[I + 1]))
      continue;
    report(Stats, Sup,
           {Path, Toks[I].Line, "float-equality",
            "'" + Toks[I].Text +
                "' against a floating-point literal; use rcs::approxEqual "
                "or rcs::nearZero (support/Numerics.h)"});
  }
}

/// expected-discard: a whole statement that calls a function declared in
/// this file to return Status or Expected<T> and drops the result. The
/// file-local declaration set keeps the token-level check honest: names
/// from other headers never trigger. `(void)f();` passes (the walk-back
/// below lands on `)` rather than a statement boundary), `f();` does not.
void checkExpectedDiscard(const std::string &Path,
                          const std::vector<Token> &Toks,
                          const SuppressionMap &Sup, LintStats &Stats) {
  // The first identifier of a possibly-qualified function name whose
  // parameter list opens right after `A::B::name(`; 0 when \p TypeEnd is
  // not followed by one.
  auto FunctionNameAfter = [&](size_t TypeEnd) -> size_t {
    size_t J = TypeEnd;
    while (J + 1 < Toks.size() && Toks[J].Kind == TokenKind::Identifier &&
           Toks[J + 1].Text == "::")
      J += 2;
    if (J + 1 < Toks.size() && Toks[J].Kind == TokenKind::Identifier &&
        Toks[J + 1].Text == "(")
      return J;
    return 0;
  };

  // Pass 1: names this file declares (or defines) with a must-check
  // return type.
  std::set<std::string> MustUse;
  for (size_t I = 0; I + 1 < Toks.size(); ++I) {
    if (Toks[I].Kind != TokenKind::Identifier)
      continue;
    size_t NameAt = 0;
    if (Toks[I].Text == "Status") {
      NameAt = FunctionNameAfter(I + 1);
    } else if (Toks[I].Text == "Expected" && Toks[I + 1].Text == "<") {
      int Depth = 0;
      size_t J = I + 1;
      for (; J < Toks.size(); ++J) {
        if (Toks[J].Text == "<")
          ++Depth;
        else if (Toks[J].Text == ">" && --Depth == 0)
          break;
      }
      if (J < Toks.size())
        NameAt = FunctionNameAfter(J + 1);
    }
    if (NameAt != 0)
      MustUse.insert(Toks[NameAt].Text);
  }
  if (MustUse.empty())
    return;

  // Pass 2: statement-position calls of those names whose value nothing
  // consumes.
  for (size_t I = 1; I + 1 < Toks.size(); ++I) {
    if (Toks[I].Kind != TokenKind::Identifier ||
        MustUse.count(Toks[I].Text) == 0 || Toks[I + 1].Text != "(")
      continue;
    // Walk back over the receiver/namespace chain (`obj.`, `p->`, `ns::`)
    // to where the statement would begin.
    size_t S = I;
    while (S >= 2 &&
           (Toks[S - 1].Text == "." || Toks[S - 1].Text == "->" ||
            Toks[S - 1].Text == "::") &&
           Toks[S - 2].Kind == TokenKind::Identifier)
      S -= 2;
    const std::string &Prev = Toks[S - 1].Text;
    if (Prev != ";" && Prev != "{" && Prev != "}")
      continue; // Assigned, returned, cast, declared — someone looks at it.
    // The call must be the entire statement: matching ')' then ';'.
    int Depth = 0;
    size_t J = I + 1;
    for (; J < Toks.size(); ++J) {
      if (Toks[J].Text == "(")
        ++Depth;
      else if (Toks[J].Text == ")" && --Depth == 0)
        break;
    }
    if (J + 1 >= Toks.size() || Toks[J + 1].Text != ";")
      continue;
    report(Stats, Sup,
           {Path, Toks[I].Line, "expected-discard",
            "result of '" + Toks[I].Text +
                "' (Status/Expected) is discarded; check it or cast to "
                "(void)"});
  }
}

/// magic-number-table: a floating literal repeated inside one braced
/// initializer. Findings anchor at the initializer's opening brace, so a
/// single `skatlint:ignore(magic-number-table)` comment above the table
/// justifies every repeat it contains.
void checkMagicNumberTable(const std::string &Path,
                           const std::vector<Token> &Toks,
                           const SuppressionMap &Sup, LintStats &Stats) {
  // Fewer literals than this is a small aggregate initializer, not a
  // data table; repetition there is usually structural.
  constexpr int MinTableLiterals = 6;
  constexpr int MinRepeats = 3;
  // Structural values that legitimately pad tables.
  auto IsTrivial = [](const std::string &Text) {
    return Text == "0.0" || Text == "1.0" || Text == "0.5" || Text == "2.0" ||
           Text == "10.0" || Text == "100.0" || Text == "1e-3" ||
           Text == "1e-6" || Text == "1e-9" || Text == "1e3" ||
           Text == "1e6" || Text == "1e9";
  };
  for (size_t I = 0; I + 1 < Toks.size(); ++I) {
    if (Toks[I].Text != "=" || Toks[I + 1].Text != "{")
      continue;
    size_t Open = I + 1;
    // First-seen order, so reports are deterministic by table position.
    std::vector<std::pair<std::string, int>> Counts;
    int NumLiterals = 0;
    int Depth = 0;
    size_t J = Open;
    for (; J < Toks.size(); ++J) {
      if (Toks[J].Text == "{") {
        ++Depth;
        continue;
      }
      if (Toks[J].Text == "}" && --Depth == 0)
        break;
      if (!isFloatLiteral(Toks[J]))
        continue;
      ++NumLiterals;
      auto It = std::find_if(Counts.begin(), Counts.end(),
                             [&](const auto &E) {
                               return E.first == Toks[J].Text;
                             });
      if (It == Counts.end())
        Counts.push_back({Toks[J].Text, 1});
      else
        ++It->second;
    }
    if (J >= Toks.size())
      break;
    if (NumLiterals >= MinTableLiterals) {
      for (const auto &[Text, N] : Counts) {
        if (N < MinRepeats || IsTrivial(Text))
          continue;
        report(Stats, Sup,
               {Path, Toks[Open].Line, "magic-number-table",
                "literal '" + Text + "' repeats " + std::to_string(N) +
                    " times in this initializer; hoist it into a named "
                    "constant or justify with "
                    "skatlint:ignore(magic-number-table)"});
      }
    }
    I = J;
  }
}

/// raw-mutex: `std::mutex` and the rest of the raw locking vocabulary are
/// invisible to Clang's thread-safety analysis; all of src/ locks through
/// the annotated rcs::Mutex / rcs::LockGuard wrappers instead
/// (support/ThreadSafety.h), so `RCS_GUARDED_BY` members are actually
/// checked. `#include <mutex>` lines do not trigger (the tokenizer drops
/// preprocessor lines); only spelled-out std:: lock types do.
void checkRawMutex(const std::string &Path, const std::vector<Token> &Toks,
                   const SuppressionMap &Sup, LintStats &Stats) {
  static const char *const RawLockTypes[] = {
      "mutex",          "timed_mutex",
      "recursive_mutex", "recursive_timed_mutex",
      "shared_mutex",   "shared_timed_mutex",
      "lock_guard",     "unique_lock",
      "scoped_lock",    "shared_lock",
      "condition_variable", "condition_variable_any",
  };
  for (size_t I = 0; I + 2 < Toks.size(); ++I) {
    if (Toks[I].Kind != TokenKind::Identifier || Toks[I].Text != "std" ||
        Toks[I + 1].Text != "::" ||
        Toks[I + 2].Kind != TokenKind::Identifier)
      continue;
    for (const char *Type : RawLockTypes) {
      if (Toks[I + 2].Text == Type) {
        report(Stats, Sup,
               {Path, Toks[I].Line, "raw-mutex",
                "'std::" + Toks[I + 2].Text +
                    "' bypasses the thread-safety annotations; use "
                    "rcs::Mutex / rcs::LockGuard (support/ThreadSafety.h) "
                    "or justify a suppression"});
        break;
      }
    }
  }
}

/// unguarded-shared-static: mutable `static` state at file, namespace or
/// class scope is shared by every thread that touches the library. The
/// declaration must make its synchronization visible: RCS_GUARDED_BY /
/// RCS_PT_GUARDED_BY, std::atomic / std::once_flag, an rcs::Mutex itself,
/// const/constexpr/constinit immutability, or thread_local confinement.
/// Function-local statics are not flagged (magic statics are
/// init-thread-safe, and the repo's are all immutable-after-init or
/// atomic — the raw-mutex and guarded-by layers cover their contents).
void checkUnguardedSharedStatic(const std::string &Path,
                                const std::vector<Token> &Toks,
                                const SuppressionMap &Sup,
                                LintStats &Stats) {
  enum class Scope { Namespace, Class, Other };
  // Classifies the region that opens with the `{` at \p Open by scanning
  // back to the previous statement/brace boundary: `namespace ... {`,
  // `class/struct/union/enum ... {`, anything else (function bodies,
  // control flow, lambdas, braced initializers).
  auto ClassifyBrace = [&](size_t Open) {
    for (size_t K = Open; K-- > 0;) {
      const Token &T = Toks[K];
      if (T.Text == ";" || T.Text == "{" || T.Text == "}" || T.Text == ")")
        break;
      if (T.Kind != TokenKind::Identifier)
        continue;
      if (T.Text == "namespace")
        return Scope::Namespace;
      if (T.Text == "class" || T.Text == "struct" || T.Text == "union" ||
          T.Text == "enum")
        return Scope::Class;
    }
    return Scope::Other;
  };

  std::vector<Scope> Stack;
  for (size_t I = 0; I < Toks.size(); ++I) {
    if (Toks[I].Text == "{") {
      Stack.push_back(ClassifyBrace(I));
      continue;
    }
    if (Toks[I].Text == "}") {
      if (!Stack.empty())
        Stack.pop_back();
      continue;
    }
    if (Toks[I].Kind != TokenKind::Identifier || Toks[I].Text != "static")
      continue;
    bool SharedScope =
        Stack.empty() || Stack.back() == Scope::Namespace ||
        Stack.back() == Scope::Class;
    if (!SharedScope)
      continue;

    // Walk the declaration. A declarator followed by `(` before any `=`
    // is a function (fine); immunity words make the sharing safe.
    bool Safe = false;
    std::string Name = "declaration";
    size_t J = I + 1;
    for (; J < Toks.size(); ++J) {
      const std::string &T = Toks[J].Text;
      if (T == ";" || T == "=" || T == "{")
        break;
      if (Toks[J].Kind == TokenKind::Identifier) {
        if (T == "const" || T == "constexpr" || T == "constinit" ||
            T == "thread_local" || T == "atomic" || T == "once_flag" ||
            T == "Mutex" || T == "RCS_GUARDED_BY" ||
            T == "RCS_PT_GUARDED_BY") {
          Safe = true;
          break;
        }
        Name = T;
        if (J + 1 < Toks.size() && Toks[J + 1].Text == "(") {
          Safe = true; // function declaration/definition
          break;
        }
      }
    }
    if (Safe)
      continue;
    report(Stats, Sup,
           {Path, Toks[I].Line, "unguarded-shared-static",
            "mutable shared static '" + Name +
                "' has no visible synchronization; mark it "
                "RCS_GUARDED_BY(<mutex>), make it atomic/const, or "
                "justify with skatlint:ignore(unguarded-shared-static)"});
    I = J;
  }
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

Expected<std::string> readFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return Expected<std::string>::error("cannot open '" + Path + "'");
  std::string Text;
  char Buffer[4096];
  size_t Got;
  while ((Got = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Text.append(Buffer, Got);
  bool Failed = std::ferror(File) != 0;
  std::fclose(File);
  if (Failed)
    return Expected<std::string>::error("read error on '" + Path + "'");
  return Text;
}

bool isSourcePath(const std::filesystem::path &P) {
  std::string Ext = P.extension().string();
  return Ext == ".h" || Ext == ".hpp" || Ext == ".cpp" || Ext == ".cc" ||
         Ext == ".cxx";
}

Status lintFile(const std::string &Path, LintStats &Stats) {
  Expected<std::string> Text = readFile(Path);
  if (!Text)
    return Status::error(Text.message());
  SuppressionMap Suppressions;
  std::vector<Token> Toks = tokenize(*Text, Suppressions);
  checkUnitSuffix(Path, Toks, Suppressions, Stats);
  checkConversionRoundtrip(Path, Toks, Suppressions, Stats);
  checkRangeGuard(Path, Toks, Suppressions, Stats);
  checkBannedIdiom(Path, Toks, Suppressions, Stats);
  checkFloatEquality(Path, Toks, Suppressions, Stats);
  checkExpectedDiscard(Path, Toks, Suppressions, Stats);
  checkMagicNumberTable(Path, Toks, Suppressions, Stats);
  checkRawMutex(Path, Toks, Suppressions, Stats);
  checkUnguardedSharedStatic(Path, Toks, Suppressions, Stats);
  ++Stats.FilesScanned;
  return Status::ok();
}

void printRules() {
  std::printf(
      "unit-suffix           header doubles must carry a unit suffix or a\n"
      "                      sanctioned dimensionless word\n"
      "conversion-roundtrip  a unit conversion composed with its inverse\n"
      "range-guard           correlations must guard their validity range\n"
      "banned-idiom          rand/srand/atof/gets are forbidden\n"
      "float-equality        ==/!= against a floating literal\n"
      "expected-discard      a Status/Expected return dropped on the floor\n"
      "magic-number-table    a floating literal repeated >= 3 times in one\n"
      "                      table initializer; name it or justify it\n"
      "raw-mutex             std::mutex/std::lock_guard bypass the\n"
      "                      annotations; use rcs::Mutex / rcs::LockGuard\n"
      "unguarded-shared-static  a mutable namespace/class-scope static\n"
      "                      needs RCS_GUARDED_BY, atomic, or const\n"
      "\nSuppress with: // skatlint:ignore(<rule>[,<rule>...])\n");
}

std::string summaryCounts(const std::map<std::string, int> &Counts) {
  std::string Out;
  for (const auto &[Rule, N] : Counts)
    Out += " " + Rule + "=" + std::to_string(N);
  return Out.empty() ? " none" : Out;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Paths;
  std::string JsonlPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--list-rules") {
      printRules();
      return 0;
    }
    if (Arg == "--jsonl") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "skatlint: --jsonl needs a file argument\n");
        return 2;
      }
      JsonlPath = Argv[++I];
      continue;
    }
    if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "skatlint: unknown option '%s'\n", Arg.c_str());
      return 2;
    }
    Paths.push_back(Arg);
  }
  if (Paths.empty()) {
    std::fprintf(stderr,
                 "usage: skatlint [--jsonl <file>] [--list-rules] "
                 "<file-or-dir>...\n");
    return 2;
  }

  // Expand directories into source files, deterministically ordered.
  std::vector<std::string> Files;
  for (const std::string &P : Paths) {
    std::error_code Ec;
    if (std::filesystem::is_directory(P, Ec)) {
      for (auto It = std::filesystem::recursive_directory_iterator(P, Ec);
           !Ec && It != std::filesystem::recursive_directory_iterator();
           ++It) {
        if (It->is_directory() &&
            (It->path().filename() == ".git" ||
             It->path().filename().string().rfind("build", 0) == 0)) {
          It.disable_recursion_pending();
          continue;
        }
        if (It->is_regular_file() && isSourcePath(It->path()))
          Files.push_back(It->path().string());
      }
    } else {
      Files.push_back(P);
    }
  }
  std::sort(Files.begin(), Files.end());

  LintStats Stats;
  for (const std::string &File : Files) {
    Status S = lintFile(File, Stats);
    if (!S.ok()) {
      std::fprintf(stderr, "skatlint: %s\n", S.message().c_str());
      return 2;
    }
  }

  std::sort(Stats.Findings.begin(), Stats.Findings.end(),
            [](const Finding &A, const Finding &B) {
              if (A.File != B.File)
                return A.File < B.File;
              if (A.Line != B.Line)
                return A.Line < B.Line;
              return A.Rule < B.Rule;
            });
  for (const Finding &F : Stats.Findings)
    std::printf("%s:%d: [%s] %s\n", F.File.c_str(), F.Line, F.Rule.c_str(),
                F.Message.c_str());

  int Suppressed = 0;
  for (const auto &[Rule, N] : Stats.SuppressedCounts)
    Suppressed += N;
  std::printf("skatlint: %zu finding(s) in %d file(s):%s (suppressed: %d)\n",
              Stats.Findings.size(), Stats.FilesScanned,
              summaryCounts(Stats.RuleCounts).c_str(), Suppressed);

  if (!JsonlPath.empty()) {
    std::FILE *Out = std::fopen(JsonlPath.c_str(), "wb");
    if (!Out) {
      std::fprintf(stderr, "skatlint: cannot write '%s'\n",
                   JsonlPath.c_str());
      return 2;
    }
    for (const Finding &F : Stats.Findings)
      std::fprintf(Out, "{\"file\": %s, \"line\": %d, \"rule\": %s, "
                        "\"message\": %s}\n",
                   telemetry::jsonQuote(F.File).c_str(), F.Line,
                   telemetry::jsonQuote(F.Rule).c_str(),
                   telemetry::jsonQuote(F.Message).c_str());
    std::string Rules;
    for (const auto &[Rule, N] : Stats.RuleCounts) {
      if (!Rules.empty())
        Rules += ", ";
      Rules += telemetry::jsonQuote(Rule) + ": " + std::to_string(N);
    }
    std::fprintf(Out,
                 "{\"summary\": true, \"files\": %d, \"findings\": %zu, "
                 "\"suppressed\": %d, \"rules\": {%s}}\n",
                 Stats.FilesScanned, Stats.Findings.size(), Suppressed,
                 Rules.c_str());
    std::fclose(Out);
  }

  return Stats.Findings.empty() ? 0 : 1;
}
