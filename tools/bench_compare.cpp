//===- tools/bench_compare.cpp - Bench regression gate -------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares a BENCH_*.json summary (telemetry/Bench.h) against a
/// checked-in baseline and fails when a performance ratio regressed.
///
///   bench_compare <baseline.json> <current.json> [--tolerance FRAC]
///
/// Only ratio metrics gate — every `metrics` key starting with
/// `speedup_` or `overhead_`. Ratios divide out the host's absolute
/// speed (both legs of an ablation run on the same machine, same load),
/// so they are the only figures that transfer from the baseline-recording
/// machine to whatever runner CI lands on. Both prefixes share the
/// higher-is-better orientation: a `speedup_` key is fast/slow, and an
/// `overhead_` key is untouched/instrumented (1.0 = free, shrinking as
/// the instrumentation costs more). Absolute times and telemetry
/// counters are printed for context but never gate.
///
/// A gated metric passes while
///
///   current >= baseline * (1 - tolerance)
///
/// with `--tolerance` defaulting to 0.30: wide enough to absorb runner
/// noise and CPU-generation differences, tight enough that losing a
/// cached-factorization or warm-start path (which costs 2x-100x, not
/// 30%) still trips the gate. Improvements always pass; refresh the
/// baseline (docs/PERFORMANCE.md, "Refreshing the baseline") to ratchet
/// them in.
///
/// Also requires the current run's `passed` flag to be true, so a bench
/// whose own shape check failed cannot slip through on stale numbers.
///
/// Exit code: 0 all gates pass, 1 regression or failed bench, 2
/// usage/IO/parse error.
///
//===----------------------------------------------------------------------===//

#include "telemetry/Json.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace rcs;

namespace {

/// Reads a whole file; empty optional-style pair on failure.
bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

/// Loads and parses one bench summary; exits with code 2 on failure.
telemetry::JsonValue loadSummary(const std::string &Path) {
  std::string Text;
  if (!readFile(Path, Text)) {
    std::fprintf(stderr, "bench_compare: cannot read '%s'\n", Path.c_str());
    std::exit(2);
  }
  auto Parsed = telemetry::parseJson(Text);
  if (!Parsed) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", Path.c_str(),
                 Parsed.message().c_str());
    std::exit(2);
  }
  if (!Parsed->isObject() || !Parsed->find("metrics")) {
    std::fprintf(stderr,
                 "bench_compare: %s: not a bench summary (no 'metrics')\n",
                 Path.c_str());
    std::exit(2);
  }
  return std::move(*Parsed);
}

bool isRatioKey(const std::string &Key) {
  return Key.rfind("speedup_", 0) == 0 || Key.rfind("overhead_", 0) == 0;
}

} // namespace

int main(int Argc, char **Argv) {
  double Tolerance = 0.30;
  std::string BaselinePath, CurrentPath;
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--tolerance") == 0) {
      if (I + 1 == Argc) {
        std::fprintf(stderr, "bench_compare: --tolerance needs a value\n");
        return 2;
      }
      char *End = nullptr;
      Tolerance = std::strtod(Argv[++I], &End);
      if (End == Argv[I] || *End || Tolerance < 0.0 || Tolerance >= 1.0) {
        std::fprintf(stderr,
                     "bench_compare: --tolerance must be in [0, 1)\n");
        return 2;
      }
    } else if (BaselinePath.empty()) {
      BaselinePath = Argv[I];
    } else if (CurrentPath.empty()) {
      CurrentPath = Argv[I];
    } else {
      std::fprintf(stderr, "bench_compare: unexpected argument '%s'\n",
                   Argv[I]);
      return 2;
    }
  }
  if (CurrentPath.empty()) {
    std::fprintf(stderr, "usage: bench_compare <baseline.json> "
                         "<current.json> [--tolerance FRAC]\n");
    return 2;
  }

  telemetry::JsonValue Baseline = loadSummary(BaselinePath);
  telemetry::JsonValue Current = loadSummary(CurrentPath);
  const telemetry::JsonValue &BaseMetrics = *Baseline.find("metrics");
  const telemetry::JsonValue *CurMetrics = Current.find("metrics");

  int Failures = 0;
  int Gated = 0;

  const telemetry::JsonValue *Passed = Current.find("passed");
  if (!Passed || !Passed->isBool() || !Passed->BoolValue) {
    std::printf("FAIL  %s: bench's own shape check did not pass\n",
                CurrentPath.c_str());
    ++Failures;
  }

  for (const auto &[Key, BaseValue] : BaseMetrics.Members) {
    if (!isRatioKey(Key) || !BaseValue.isNumber())
      continue;
    ++Gated;
    const telemetry::JsonValue *CurValue = CurMetrics->find(Key);
    if (!CurValue || !CurValue->isNumber()) {
      std::printf("FAIL  %-34s missing from current run\n", Key.c_str());
      ++Failures;
      continue;
    }
    double Floor = BaseValue.NumberValue * (1.0 - Tolerance);
    bool Ok = CurValue->NumberValue >= Floor;
    std::printf("%s  %-34s baseline %8.2fx  current %8.2fx  floor %8.2fx\n",
                Ok ? "ok  " : "FAIL", Key.c_str(), BaseValue.NumberValue,
                CurValue->NumberValue, Floor);
    if (!Ok)
      ++Failures;
  }

  // Context only: non-ratio numeric metrics, never gated (absolute times
  // and counter totals do not transfer across machines or rep scales).
  for (const auto &[Key, BaseValue] : BaseMetrics.Members) {
    if (isRatioKey(Key) || !BaseValue.isNumber())
      continue;
    const telemetry::JsonValue *CurValue = CurMetrics->find(Key);
    if (CurValue && CurValue->isNumber())
      std::printf("info  %-34s baseline %12.6g   current %12.6g\n",
                  Key.c_str(), BaseValue.NumberValue, CurValue->NumberValue);
  }

  if (Gated == 0) {
    std::fprintf(stderr,
                 "bench_compare: baseline '%s' has no speedup_*/overhead_* metrics\n",
                 BaselinePath.c_str());
    return 2;
  }
  std::printf("bench_compare: %d gated metric(s), %d failure(s), "
              "tolerance %.0f%%\n",
              Gated, Failures, Tolerance * 100.0);
  return Failures == 0 ? 0 : 1;
}
