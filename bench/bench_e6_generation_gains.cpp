//===- bench/bench_e6_generation_gains.cpp - Experiment E6 --------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Section 3's generation comparison: "The performance of a
/// next-generation SKAT CM is increased in 8.7 times in comparison with the
/// Taygeta CM. Original design solutions provide more than triple
/// increasing of the system packing density."
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "metrics/Metrics.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "telemetry/Bench.h"

#include <cmath>
#include <cstdio>

using namespace rcs;
using namespace rcs::rcsystem;

int main() {
  telemetry::BenchReport Bench("e6_generation_gains");
  ExternalConditions Conditions = core::makeNominalConditions();

  struct Entry {
    const char *Label;
    ModuleConfig Config;
  } Entries[] = {
      {"Rigel-2", core::makeRigel2Module()},
      {"Taygeta", core::makeTaygetaModule()},
      {"SKAT", core::makeSkatModule()},
      {"SKAT+", core::makeSkatPlusModule()},
  };

  std::printf("E6: per-generation module metrics (paper Section 3)\n\n");
  Table T({"module", "CCBs/U", "peak TFLOPS", "TFLOPS/U", "GFLOPS/W",
           "max Tj (C)", "PUE est"});
  std::vector<metrics::ModuleEfficiency> Effs;
  for (Entry &E : Entries) {
    ComputationalModule Module(E.Config);
    Expected<ModuleThermalReport> Report =
        Module.solveSteadyState(Conditions);
    if (!Report) {
      std::fprintf(stderr, "%s failed: %s\n", E.Label,
                   Report.message().c_str());
      return 1;
    }
    metrics::ModuleEfficiency Eff =
        metrics::computeModuleEfficiency(Module, *Report);
    Effs.push_back(Eff);
    T.addRow({E.Label, formatString("%.2f", Eff.BoardsPerU),
              formatString("%.1f", Eff.PeakGflops / 1000.0),
              formatString("%.1f", Eff.GflopsPerU / 1000.0),
              formatString("%.2f", Eff.GflopsPerWatt),
              formatString("%.1f", Eff.MaxJunctionTempC),
              formatString("%.3f", Eff.EstimatedPue)});
  }
  std::printf("%s\n", T.render().c_str());

  metrics::GenerationGain Gain =
      metrics::compareGenerations(Effs[1], Effs[2]);
  std::printf("SKAT vs Taygeta: performance x%.2f (paper: 8.7), packing "
              "density x%.2f (paper: > 3), specific performance x%.1f, "
              "efficiency x%.2f\n",
              Gain.PerformanceRatio, Gain.PackingDensityRatio,
              Gain.SpecificPerformanceRatio, Gain.EfficiencyRatio);

  metrics::GenerationGain PlusGain =
      metrics::compareGenerations(Effs[2], Effs[3]);
  std::printf("SKAT+ vs SKAT: performance x%.2f (paper Section 4: 3x at "
              "unchanged size)\n\n",
              PlusGain.PerformanceRatio);

  bool Ok = std::fabs(Gain.PerformanceRatio - 8.7) < 0.15 &&
            Gain.PackingDensityRatio >= 3.0 &&
            std::fabs(PlusGain.PerformanceRatio - 3.0) < 0.1;
  std::printf("Shape check (8.7x performance, >3x packing, 3x SKAT+): %s\n",
              Ok ? "PASS" : "FAIL");
  Bench.addMetric("skat_vs_taygeta_performance_ratio",
                  Gain.PerformanceRatio);
  Bench.addMetric("skat_vs_taygeta_packing_ratio",
                  Gain.PackingDensityRatio);
  Bench.addMetric("skatplus_vs_skat_performance_ratio",
                  PlusGain.PerformanceRatio);
  Bench.writeOrWarn(Ok);
  return Ok ? 0 : 1;
}
