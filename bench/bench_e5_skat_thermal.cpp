//===- bench/bench_e5_skat_thermal.cpp - Experiment E5 ------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the Section 3 SKAT heat-experiment results and ablates the
/// design choices that make them possible:
///  - 91 W per FPGA, 8736 W of FPGA heat for the whole CM;
///  - heat-transfer agent <= 30 C, max FPGA temperature <= 55 C;
///  - ablations: solder-pin turbulators vs smooth pins, the wash-out-proof
///    interface vs aged grease, parallel vs series oil distribution, and
///    the engineered dielectric vs stock white oil.
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "telemetry/Bench.h"

#include <cmath>
#include <cstdio>

using namespace rcs;
using namespace rcs::rcsystem;

namespace {

ModuleThermalReport mustSolve(const ModuleConfig &Config) {
  ComputationalModule Module(Config);
  Expected<ModuleThermalReport> Report =
      Module.solveSteadyState(core::makeNominalConditions());
  if (!Report) {
    std::fprintf(stderr, "%s failed: %s\n", Config.Name.c_str(),
                 Report.message().c_str());
    std::exit(1);
  }
  return *Report;
}

} // namespace

int main() {
  telemetry::BenchReport Bench("e5_skat_thermal");
  std::printf("E5: SKAT immersion CM operating point (paper Section 3)\n\n");

  ModuleThermalReport Skat = mustSolve(core::makeSkatModule());
  Table Anchors({"quantity", "paper", "simulated"});
  Anchors.addRow({"power per FPGA (W)", "91",
                  formatString("%.1f", Skat.Fpgas.front().PowerW)});
  Anchors.addRow({"CM FPGA heat (W)", "8736",
                  formatString("%.0f", Skat.FpgaHeatW)});
  Anchors.addRow({"heat-transfer agent (C)", "<= 30",
                  formatString("%.1f", Skat.CoolantHotTempC)});
  Anchors.addRow({"max FPGA temperature (C)", "<= 55",
                  formatString("%.1f", Skat.MaxJunctionTempC)});
  Anchors.addRow({"per-CCB power (W)", "up to 800",
                  formatString("%.0f",
                               (Skat.FpgaHeatW + Skat.MiscHeatW) / 12.0)});
  std::printf("%s\n", Anchors.render().c_str());

  // --- Ablations -----------------------------------------------------------
  std::printf("Design ablations (what each SKAT engineering choice "
              "buys):\n");
  Table Ablation({"variant", "max Tj (C)", "coolant out (C)",
                  "delta Tj vs SKAT (C)"});

  auto addVariant = [&](const char *Label, ModuleConfig Config) {
    ModuleThermalReport Report = mustSolve(Config);
    Ablation.addRow(
        {Label, formatString("%.1f", Report.MaxJunctionTempC),
         formatString("%.1f", Report.CoolantHotTempC),
         formatString("%+.1f",
                      Report.MaxJunctionTempC - Skat.MaxJunctionTempC)});
  };

  Ablation.addRow({"SKAT baseline",
                   formatString("%.1f", Skat.MaxJunctionTempC),
                   formatString("%.1f", Skat.CoolantHotTempC), "+0.0"});

  ModuleConfig SmoothPins = core::makeSkatModule();
  SmoothPins.Immersion.SinkGeometry.TurbulatorFactor = 1.0;
  addVariant("smooth pins (no solder turbulators)", SmoothPins);

  ModuleConfig AgedGrease = core::makeSkatModule();
  AgedGrease.Immersion.Tim = ImmersionCoolingConfig::TimKind::SiliconeGrease;
  AgedGrease.Immersion.TimExposureHours = 10000.0;
  addVariant("silicone grease after 10 kh in oil (washed out)", AgedGrease);

  ModuleConfig Series = core::makeSkatModule();
  Series.Immersion.Distribution =
      ImmersionCoolingConfig::OilDistribution::SeriesAlongBoards;
  addVariant("series oil path (single-chip tech adapted)", Series);

  ModuleConfig WhiteOil = core::makeSkatModule();
  WhiteOil.Immersion.CoolantKind =
      ImmersionCoolingConfig::Coolant::WhiteMineralOil;
  addVariant("stock white mineral oil coolant", WhiteOil);

  std::printf("%s\n", Ablation.render().c_str());

  // Board-to-board gradient: the Section 2 complaint about adapted
  // single-chip designs.
  ModuleThermalReport SeriesReport = mustSolve([] {
    ModuleConfig Config = core::makeSkatModule();
    Config.Immersion.Distribution =
        ImmersionCoolingConfig::OilDistribution::SeriesAlongBoards;
    return Config;
  }());
  double Spread = SeriesReport.PerBoardCoolantTempC.back() -
                  SeriesReport.PerBoardCoolantTempC.front();
  std::printf("Series-path oil gradient across 12 boards: %.1f C "
              "(parallel SKAT path: %.2f C)\n\n",
              Spread,
              Skat.PerBoardCoolantTempC.back() -
                  Skat.PerBoardCoolantTempC.front());

  bool Ok = Skat.CoolantHotTempC <= 30.0 && Skat.MaxJunctionTempC <= 55.0 &&
            std::fabs(Skat.Fpgas.front().PowerW - 91.0) < 2.5 &&
            std::fabs(Skat.FpgaHeatW - 8736.0) < 250.0;
  std::printf("Shape check (paper's measured envelope reproduced): %s\n",
              Ok ? "PASS" : "FAIL");
  Bench.addMetric("per_fpga_power_W", Skat.Fpgas.front().PowerW);
  Bench.addMetric("cm_fpga_heat_W", Skat.FpgaHeatW);
  Bench.addMetric("coolant_hot_C", Skat.CoolantHotTempC);
  Bench.addMetric("max_junction_C", Skat.MaxJunctionTempC);
  Bench.addMetric("series_oil_gradient_C", Spread);
  Bench.writeOrWarn(Ok);
  return Ok ? 0 : 1;
}
