//===- bench/bench_e1_air_cooling_limits.cpp - Experiments E1/E2 -------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's Section 1 air-cooling measurements:
///  E1 - CM Rigel-2 (Virtex-6): 1255 W, FPGA overheat +33.1 C over a 25 C
///       ambient (=> 58.1 C max junction).
///  E2 - CM Taygeta (Virtex-7): 1661 W, overheat +47.9 C (=> 72.9 C), above
///       the 65..70 C long-life band, motivating liquid cooling.
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "telemetry/Bench.h"

#include <cmath>
#include <cstdio>

using namespace rcs;
using namespace rcs::rcsystem;

namespace {

struct AnchorRow {
  const char *Label;
  const char *Key;
  ModuleConfig Config;
  double PaperOverheatC;
  double PaperPowerW;
};

} // namespace

int main() {
  telemetry::BenchReport Bench("e1_air_cooling_limits");
  ExternalConditions Conditions = core::makeNominalConditions();
  const double Ambient = Conditions.AmbientAirTempC;

  AnchorRow Rows[] = {
      {"Rigel-2 (8x32 Virtex-6)", "rigel2", core::makeRigel2Module(), 33.1,
       1255.0},
      {"Taygeta (8x32 Virtex-7)", "taygeta", core::makeTaygetaModule(),
       47.9, 1661.0},
  };

  std::printf("E1/E2: air-cooled CM thermal limits (paper Section 1)\n");
  std::printf("Ambient %.0f C; overheat = max junction - ambient.\n\n",
              Ambient);
  Table T({"module", "overheat paper (C)", "overheat sim (C)",
           "CM power paper (W)", "CM power sim (W)", "max Tj sim (C)",
           "in 65..70 C band"});
  bool Ok = true;
  for (AnchorRow &Row : Rows) {
    ComputationalModule Module(Row.Config);
    Expected<ModuleThermalReport> Report =
        Module.solveSteadyState(Conditions);
    if (!Report) {
      std::fprintf(stderr, "%s failed: %s\n", Row.Label,
                   Report.message().c_str());
      return 1;
    }
    double Overheat = Report->overheatC(Ambient);
    double Power = Report->ItPowerW + Report->PsuLossW;
    T.addRow({Row.Label, formatString("%.1f", Row.PaperOverheatC),
              formatString("%.1f", Overheat),
              formatString("%.0f", Row.PaperPowerW),
              formatString("%.0f", Power),
              formatString("%.1f", Report->MaxJunctionTempC),
              Report->WithinReliableLimit ? "yes" : "NO"});
    Ok = Ok && std::fabs(Overheat - Row.PaperOverheatC) < 2.0 &&
         std::fabs(Power - Row.PaperPowerW) < 60.0;
    Bench.addMetric(formatString("%s_overheat_C", Row.Key), Overheat);
    Bench.addMetric(formatString("%s_power_W", Row.Key), Power);
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Shape check (overheat within 2 C, power within 60 W): %s\n",
              Ok ? "PASS" : "FAIL");
  std::printf("Conclusion reproduced: Taygeta exceeds the reliable band on "
              "air; a 25 C room is no longer enough.\n");
  Bench.writeOrWarn(Ok);
  return Ok ? 0 : 1;
}
