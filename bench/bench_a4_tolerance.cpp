//===- bench/bench_a4_tolerance.cpp - Ablation A4 ------------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation A4: robustness of the SKAT thermal envelope against
/// manufacturing and operating tolerances. The paper reports one measured
/// prototype; production credibility needs the envelope (coolant <= 30 C,
/// junctions <= 55 C) to hold across pump-curve spread, heat-exchanger
/// fouling, solder-pin quality, assembly clearances, board power variation
/// and facility water drift. A Monte-Carlo over those tolerances shows
/// SKAT holds its envelope with margin while the naive SKAT+ variant is
/// structurally out of spec, not just unlucky.
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "core/Uncertainty.h"
#include "support/Numerics.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "telemetry/Bench.h"

#include <cstdio>

using namespace rcs;
using namespace rcs::core;

int main() {
  telemetry::BenchReport Bench("a4_tolerance");
  const int Samples = 400;
  ToleranceSpec Tolerances;
  rcsystem::ExternalConditions Conditions = makeNominalConditions();

  std::printf("A4: thermal envelope vs manufacturing/operating tolerances "
              "(%d Monte-Carlo samples, 1-sigma: pumps 8%%, HX UA 12%%, "
              "pins 5-6%%, water +/-1 C)\n\n",
              Samples);

  struct Row {
    const char *Label;
    rcsystem::ModuleConfig Config;
  } Rows[] = {
      {"SKAT", makeSkatModule()},
      {"SKAT+ (Section 4 modifications)", makeSkatPlusModule()},
      {"SKAT+ naive (unmodified cooling)", makeSkatPlusNaiveModule()},
  };

  Table T({"design", "mean Tj (C)", "p95 Tj (C)", "worst Tj (C)",
           "p95 oil (C)", "% over Tj 55", "% over oil 30.5"});
  UncertaintyResult Results[3];
  int Index = 0;
  for (Row &R : Rows) {
    UncertaintyResult Result = analyzeModuleTolerances(
        R.Config, Conditions, Tolerances, Samples, /*Seed=*/2018);
    Results[Index++] = Result;
    T.addRow({R.Label, formatString("%.1f", Result.MeanMaxJunctionC),
              formatString("%.1f", Result.P95MaxJunctionC),
              formatString("%.1f", Result.WorstMaxJunctionC),
              formatString("%.1f", Result.P95CoolantHotC),
              formatString("%.1f%%",
                           Result.OverJunctionLimitFraction * 100.0),
              formatString("%.1f%%",
                           Result.OverCoolantLimitFraction * 100.0)});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Junction margin is robust for SKAT and modified SKAT+ (0%% "
              "over 55 C anywhere in the tolerance space); the oil "
              "excursions past 30.5 C in those designs are facility water "
              "drift passing straight through (oil tracks water inlet "
              "nearly 1:1), not a cooling-margin problem. The naive SKAT+ "
              "is different in kind: out of the oil envelope across "
              "essentially the whole space and over the junction line in "
              "a fifth of it - why Section 4 redesigns the cooling.\n\n");

  bool Ok = nearZero(Results[0].OverJunctionLimitFraction) &&
            Results[0].OverCoolantLimitFraction < 0.35 &&
            Results[0].NumFailedSolves == 0 &&
            nearZero(Results[1].OverJunctionLimitFraction) &&
            Results[2].OverCoolantLimitFraction > 0.9 &&
            Results[2].OverJunctionLimitFraction >
                Results[0].OverJunctionLimitFraction;
  std::printf("Shape check (SKAT robust, naive SKAT+ structurally out of "
              "envelope): %s\n",
              Ok ? "PASS" : "FAIL");
  Bench.addMetric("skat_p95_tj_C", Results[0].P95MaxJunctionC);
  Bench.addMetric("skat_over_junction_fraction",
                  Results[0].OverJunctionLimitFraction);
  Bench.addMetric("skatplus_over_junction_fraction",
                  Results[1].OverJunctionLimitFraction);
  Bench.addMetric("naive_over_coolant_fraction",
                  Results[2].OverCoolantLimitFraction);
  Bench.writeOrWarn(Ok);
  return Ok ? 0 : 1;
}
