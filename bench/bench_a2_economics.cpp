//===- bench/bench_a2_economics.cpp - Ablation A2 ------------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation A2: total cost of ownership per module over five years.
/// Section 2 claims open-loop immersion offers "high reliability and low
/// cost of the product"; this bench composes the thermal solves, the
/// Monte-Carlo availability model and the cost model into one table for
/// the same 96-FPGA complement under each cooling technology.
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "sim/MonteCarlo.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "system/Economics.h"
#include "telemetry/Bench.h"

#include <cmath>
#include <cstdio>

using namespace rcs;
using namespace rcs::rcsystem;

int main() {
  telemetry::BenchReport Bench("a2_economics");
  const double HorizonYears = 5.0;
  ExternalConditions Conditions = core::makeNominalConditions();

  std::printf("A2: five-year cost of ownership, one 96-FPGA module\n\n");

  struct Design {
    const char *Label;
    ModuleConfig Config;
    CoolingKind Kind;
  };
  ModuleConfig Air = core::makeUltraScaleAirModule();
  Air.NumCcbs = 12;
  Air.Air.AirflowM3PerS *= 3.0;
  Air.Air.FlowAreaM2 *= 3.0;
  ModuleConfig ColdPlate = core::makeSkatModule();
  ColdPlate.Cooling = CoolingKind::ColdPlate;
  ColdPlate.ColdPlate.WaterFlowM3PerS = 1.6e-3;
  ModuleConfig Immersion = core::makeSkatModule();

  Design Designs[] = {
      {"forced air", Air, CoolingKind::ForcedAir},
      {"cold plate", ColdPlate, CoolingKind::ColdPlate},
      {"SKAT immersion", Immersion, CoolingKind::Immersion},
  };

  Table T({"design", "capex (cooling, $)", "energy ($/y)", "coolant ($/y)",
           "maintenance ($/y)", "downtime ($/y)", "5-year total ($)"});
  double Totals[3] = {0, 0, 0};
  int Index = 0;
  for (Design &D : Designs) {
    ComputationalModule Module(D.Config);
    Expected<ModuleThermalReport> Report =
        Module.solveSteadyState(Conditions);
    if (!Report) {
      std::fprintf(stderr, "%s failed: %s\n", D.Label,
                   Report.message().c_str());
      return 1;
    }

    sim::AvailabilityConfig Availability;
    double Tj = Report->MaxJunctionTempC;
    switch (D.Kind) {
    case CoolingKind::ForcedAir:
      Availability.Components = sim::makeAirComponents(96, Tj, 12);
      break;
    case CoolingKind::ColdPlate:
      Availability.Components = sim::makeColdPlateComponents(96, Tj, 192);
      break;
    case CoolingKind::Immersion:
      Availability.Components =
          sim::makeImmersionComponents(96, Tj, 1, false);
      break;
    }
    sim::AvailabilityReport Reliability =
        sim::simulateAvailability(Availability);

    CostInputs Inputs;
    Inputs.Label = D.Label;
    Inputs.Kind = D.Kind;
    Inputs.NumFpgas = 96;
    Inputs.TotalPowerW = Report->ItPowerW + Report->PsuLossW +
                         Report->PumpPowerW + Report->FanPowerW;
    // Facility share: liquid heat at chiller COP 6, air heat at CRAC 2.5.
    double LiquidHeat = Report->HxDutyW;
    double AirHeat = std::max(Report->TotalHeatW - LiquidHeat, 0.0);
    Inputs.FacilityCoolingPowerW = LiquidHeat / 6.0 + AirHeat / 2.5;
    Inputs.FailuresPerYear = Reliability.FailuresPerYear;
    Inputs.DowntimeHoursPerYear = Reliability.ModuleDowntimeHoursPerYear;
    Inputs.Availability = Reliability.Availability;
    Inputs.NumConnectors = 192;
    Inputs.NumFanTrays = 12;

    CostReport Cost = computeCost(Inputs, HorizonYears);
    Totals[Index++] = Cost.TotalUsd;
    T.addRow({D.Label, formatString("%.0f", Cost.CoolingCapexUsd),
              formatString("%.0f", Cost.EnergyPerYearUsd),
              formatString("%.0f", Cost.CoolantPerYearUsd),
              formatString("%.0f", Cost.MaintenancePerYearUsd),
              formatString("%.0f", Cost.DowntimePerYearUsd),
              formatString("%.0f", Cost.TotalUsd)});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Energy dominates every design; immersion's higher cooling "
              "capex is repaid by lower junctions (less leakage, fewer "
              "failures) and the cheapest facility share.\n\n");

  bool Ok = Totals[2] < Totals[0] && Totals[2] < Totals[1];
  std::printf("Shape check (immersion lowest 5-year cost): %s\n",
              Ok ? "PASS" : "FAIL");
  Bench.addMetric("air_total_usd", Totals[0]);
  Bench.addMetric("coldplate_total_usd", Totals[1]);
  Bench.addMetric("immersion_total_usd", Totals[2]);
  Bench.writeOrWarn(Ok);
  return Ok ? 0 : 1;
}
