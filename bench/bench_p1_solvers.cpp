//===- bench/bench_p1_solvers.cpp - Solver micro-benchmarks ------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark micro-benchmarks of the numerical kernels: thermal
/// network steady-state and transient solves, hydraulic network Newton
/// solves, the full coupled module solve and a rack solve. Also serves as
/// the ablation harness for the coupled fixed-point iteration cost, the
/// physics-audit hot-path overhead and reliability-sweep thread scaling.
///
//===----------------------------------------------------------------------===//

#include "audit/Audit.h"
#include "core/Designs.h"
#include "faults/Sweep.h"
#include "fluids/Fluid.h"
#include "hydraulics/Manifold.h"
#include "sim/Transient.h"
#include "support/Parallel.h"
#include "telemetry/Bench.h"
#include "telemetry/Telemetry.h"
#include "thermal/Network.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace rcs;

/// Builds a ladder thermal network with \p Rungs chip->sink->coolant
/// chains hanging off a shared coolant rail.
static thermal::ThermalNetwork makeLadderNetwork(int Rungs) {
  thermal::ThermalNetwork Net;
  thermal::NodeId Coolant = Net.addBoundaryNode("coolant", 30.0);
  for (int I = 0; I != Rungs; ++I) {
    thermal::NodeId Chip = Net.addNode("chip", 100.0);
    thermal::NodeId Sink = Net.addNode("sink", 300.0);
    Net.addResistance(Chip, Sink, 0.12);
    Net.addResistance(Sink, Coolant, 0.15);
    Net.addHeatSource(Chip, 91.0);
    if (I > 0)
      Net.addConductance(Chip, Chip - 2, 0.5); // Board coupling.
  }
  return Net;
}

static void BM_ThermalSteadyState(benchmark::State &State) {
  thermal::ThermalNetwork Net =
      makeLadderNetwork(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    auto Temps = Net.solveSteadyState();
    benchmark::DoNotOptimize(Temps);
  }
}
BENCHMARK(BM_ThermalSteadyState)->Arg(8)->Arg(32)->Arg(96)->Arg(192);

static void BM_ThermalTransientStep(benchmark::State &State) {
  thermal::ThermalNetwork Net =
      makeLadderNetwork(static_cast<int>(State.range(0)));
  std::vector<double> Temps(Net.numNodes(), 30.0);
  for (auto _ : State) {
    Status S = Net.stepTransient(Temps, 1.0);
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_ThermalTransientStep)->Arg(8)->Arg(96);

// Ablation: the seed path (rebuild + dense refactor every step) for
// comparison against the cached-factorization default above.
static void BM_ThermalTransientStepNoCache(benchmark::State &State) {
  thermal::ThermalNetwork Net =
      makeLadderNetwork(static_cast<int>(State.range(0)));
  Net.setFactorCaching(false);
  std::vector<double> Temps(Net.numNodes(), 30.0);
  for (auto _ : State) {
    Status S = Net.stepTransient(Temps, 1.0);
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_ThermalTransientStepNoCache)->Arg(8)->Arg(96);

static hydraulics::RackHydraulics makeBenchRack(int NumLoops) {
  hydraulics::RackHydraulicsConfig Config;
  Config.NumLoops = NumLoops;
  Config.Layout = hydraulics::ManifoldLayout::ReverseReturn;
  return hydraulics::buildRackPrimaryLoop(Config);
}

static void BM_HydraulicRackSolve(benchmark::State &State) {
  hydraulics::RackHydraulics Rack =
      makeBenchRack(static_cast<int>(State.range(0)));
  auto Water = fluids::makeWater();
  for (auto _ : State) {
    auto Solution = Rack.Network.solve(*Water, 18.0, 1e-3);
    benchmark::DoNotOptimize(Solution);
  }
}
BENCHMARK(BM_HydraulicRackSolve)->Arg(6)->Arg(12)->Arg(24);

// Ablation: the seed Newton path — finite-difference Jacobian, cold
// start from zero pressures every solve.
static void BM_HydraulicRackSolveFdCold(benchmark::State &State) {
  hydraulics::RackHydraulics Rack =
      makeBenchRack(static_cast<int>(State.range(0)));
  auto Water = fluids::makeWater();
  hydraulics::FlowSolveOptions Options;
  Options.Jacobian = hydraulics::FlowSolveOptions::JacobianKind::FiniteDifference;
  for (auto _ : State) {
    auto Solution = Rack.Network.solve(*Water, 18.0, 1e-3, Options);
    benchmark::DoNotOptimize(Solution);
  }
}
BENCHMARK(BM_HydraulicRackSolveFdCold)->Arg(6)->Arg(12)->Arg(24);

// Repeated-solve leg: analytic Jacobian plus warm start from the prior
// solution, the pattern of the balancing trim loop.
static void BM_HydraulicRackSolveWarm(benchmark::State &State) {
  hydraulics::RackHydraulics Rack =
      makeBenchRack(static_cast<int>(State.range(0)));
  auto Water = fluids::makeWater();
  hydraulics::FlowSolveOptions Options;
  for (auto _ : State) {
    auto Solution = Rack.Network.solve(*Water, 18.0, 1e-3, Options);
    benchmark::DoNotOptimize(Solution);
    if (Solution)
      Options.WarmStartPressuresPa = Solution->JunctionPressuresPa;
  }
}
BENCHMARK(BM_HydraulicRackSolveWarm)->Arg(6)->Arg(12)->Arg(24);

static void BM_ImmersionModuleSolve(benchmark::State &State) {
  rcsystem::ComputationalModule Module(core::makeSkatModule());
  auto Conditions = core::makeNominalConditions();
  for (auto _ : State) {
    auto Report = Module.solveSteadyState(Conditions);
    benchmark::DoNotOptimize(Report);
  }
}
BENCHMARK(BM_ImmersionModuleSolve);

static void BM_AirModuleSolve(benchmark::State &State) {
  rcsystem::ComputationalModule Module(core::makeTaygetaModule());
  auto Conditions = core::makeNominalConditions();
  for (auto _ : State) {
    auto Report = Module.solveSteadyState(Conditions);
    benchmark::DoNotOptimize(Report);
  }
}
BENCHMARK(BM_AirModuleSolve);

static void BM_FullRackSolve(benchmark::State &State) {
  rcsystem::Rack Rack(core::makeSkatRack());
  for (auto _ : State) {
    auto Report = Rack.solveSteadyState(25.0);
    benchmark::DoNotOptimize(Report);
  }
}
BENCHMARK(BM_FullRackSolve);

static void BM_TransientSimMinute(benchmark::State &State) {
  for (auto _ : State) {
    sim::TransientSimulator Simulator(core::makeSkatModule(),
                                      core::makeNominalConditions());
    auto Trace = Simulator.run(60.0);
    benchmark::DoNotOptimize(Trace);
  }
}
BENCHMARK(BM_TransientSimMinute);

//===----------------------------------------------------------------------===//
// Ablation speedup measurements
//
// The regression gate (tools/bench_compare) checks machine-independent
// ratios, not absolute times: each leg times the fast path against the
// seed path doing identical work, best-of-3, and reports old/new.
//===----------------------------------------------------------------------===//

namespace {

/// Repetition scale from SKATSIM_BENCH_REPS (default 1.0; CI smoke runs
/// set a fraction to keep the job fast).
double benchRepScale() {
  const char *Env = std::getenv("SKATSIM_BENCH_REPS");
  if (!Env || !*Env)
    return 1.0;
  char *End = nullptr;
  double Scale = std::strtod(Env, &End);
  return End != Env && Scale > 0.0 ? Scale : 1.0;
}

/// Best-of-\p Rounds wall time of \p Body in seconds.
template <typename Fn> double bestWallTimeS(int Rounds, Fn &&Body) {
  double Best = 1e300;
  for (int Round = 0; Round != Rounds; ++Round) {
    auto Start = std::chrono::steady_clock::now();
    Body();
    std::chrono::duration<double> Elapsed =
        std::chrono::steady_clock::now() - Start;
    Best = std::min(Best, Elapsed.count());
  }
  return Best;
}

/// Seconds for \p Steps transient ladder steps with/without factor reuse.
/// 256 rungs = 512 unknowns: rack-scale, where the O(n^3) refactor the
/// cache avoids dominates the O(n^2) backsolve it must still run. Pinned
/// to the dense kernel: this leg measures factor *reuse*, and letting the
/// cached leg route through the sparse solver would conflate the two
/// ablations (the sparse-vs-dense ratio has its own legs below).
double timeTransientLadderS(bool Caching, int Steps) {
  thermal::ThermalNetwork Net = makeLadderNetwork(256);
  Net.setSparseSolver(false);
  Net.setFactorCaching(Caching);
  std::vector<double> Temps(Net.numNodes(), 30.0);
  (void)Net.stepTransient(Temps, 1.0); // Prime the cache outside the clock.
  return bestWallTimeS(3, [&] {
    for (int I = 0; I != Steps; ++I)
      (void)Net.stepTransient(Temps, 1.0);
  });
}

/// Swallows every record: installing it times the span machinery plus
/// sink dispatch while excluding file I/O, the honest cost of `--trace`.
struct DiscardSink final : telemetry::EventSink {
  uint64_t NumSpans = 0;
  void instant(double, std::string_view, const telemetry::EventField *,
               size_t) override {}
  void span(const telemetry::SpanRecord &) override { ++NumSpans; }
  Status close() override { return Status::ok(); }
};

/// Seconds for \p Solves rack Newton solves: seed path (FD Jacobian, cold
/// start) vs overhaul path (analytic Jacobian, warm start).
double timeRackNewtonS(bool Overhaul, int Solves) {
  hydraulics::RackHydraulics Rack = makeBenchRack(12);
  auto Water = fluids::makeWater();
  hydraulics::FlowSolveOptions Run;
  if (!Overhaul)
    Run.Jacobian =
        hydraulics::FlowSolveOptions::JacobianKind::FiniteDifference;
  // Prime the warm start outside the clock: the metric is the
  // steady-state repeated-solve cost of the trim loop, and keeping the
  // one cold solve out of the window makes the ratio independent of the
  // solve count (the CI smoke run times far fewer solves).
  if (Overhaul) {
    auto Primer = Rack.Network.solve(*Water, 18.0, 1e-3, Run);
    if (Primer)
      Run.WarmStartPressuresPa = Primer->JunctionPressuresPa;
  }
  return bestWallTimeS(3, [&] {
    for (int I = 0; I != Solves; ++I) {
      auto Solution = Rack.Network.solve(*Water, 18.0, 1e-3, Run);
      benchmark::DoNotOptimize(Solution);
      if (Overhaul && Solution)
        Run.WarmStartPressuresPa = Solution->JunctionPressuresPa;
    }
  });
}

/// Seconds for \p Steps audited transient ladder steps: the cached leg
/// plus the full per-step audit cost — the begin-of-step state snapshot
/// and the conservation residual recompute PhysicsAuditor charges the
/// hot loop for. The ratio against the un-audited cached leg reads like
/// overhead_span_tracing: 1.0 = auditing is free.
double timeTransientLadderAuditedS(int Steps) {
  thermal::ThermalNetwork Net = makeLadderNetwork(256);
  Net.setSparseSolver(false); // Matches the un-audited dense leg above.
  Net.setFactorCaching(true);
  std::vector<double> Temps(Net.numNodes(), 30.0);
  (void)Net.stepTransient(Temps, 1.0); // Prime the cache outside the clock.
  audit::PhysicsAuditor Auditor((audit::DriftBudgets()));
  std::vector<double> Before;
  return bestWallTimeS(3, [&] {
    for (int I = 0; I != Steps; ++I) {
      Before = Temps;
      (void)Net.stepTransient(Temps, 1.0);
      audit::EnergyClosure Closure =
          Auditor.recordThermalStep(Net, Before, Temps, 1.0);
      benchmark::DoNotOptimize(Closure);
    }
  });
}

/// One steady leg of the sparse-vs-dense thermal ladder: per-solve time
/// under the fleet-tuning access pattern — a conductance trim between
/// solves forces a numeric refactorization while the pattern (and the
/// sparse symbolic analysis) never changes. The untrimmed priming solve
/// doubles as the agreement probe for the max-diff shape check.
struct SteadyLegResult {
  double PerSolveS = 0.0;
  std::vector<double> PrimeTemps;
  size_t FactorBytes = 0;
};

SteadyLegResult runSteadyLadderLeg(bool Sparse, int Unknowns, int Solves,
                                   int Rounds) {
  thermal::ThermalNetwork Net = makeLadderNetwork(Unknowns / 2);
  Net.setSparseSolver(Sparse);
  if (Sparse)
    Net.setSparseThreshold(1); // The 64-unknown rung sits below the default.
  SteadyLegResult Result;
  // Prime outside the clock: pattern + symbolic analysis (sparse) or the
  // first dense factor.
  if (auto Prime = Net.solveSteadyState())
    Result.PrimeTemps = *Prime;
  int TrimTick = 0;
  Result.PerSolveS = bestWallTimeS(Rounds, [&] {
    for (int I = 0; I != Solves; ++I) {
      double Trim = ++TrimTick % 2 != 0 ? 0.55 : 0.5;
      Net.setConductance(3, 1, Trim); // Rung 1's board-coupling edge.
      auto Temps = Net.solveSteadyState();
      benchmark::DoNotOptimize(Temps);
    }
  });
  Result.PerSolveS /= Solves;
  Result.FactorBytes = Net.solverMemoryBytes();
  return Result;
}

/// Per-step transient time on the \p Unknowns-unknown ladder at a fixed
/// dt: both paths reuse their cached factor, so this isolates the
/// per-step backsolve — dense O(n^2) vs sparse O(nnz(L)).
double timeLadderTransientPerStepS(bool Sparse, int Unknowns, int Steps,
                                   int Rounds) {
  thermal::ThermalNetwork Net = makeLadderNetwork(Unknowns / 2);
  Net.setSparseSolver(Sparse);
  if (Sparse)
    Net.setSparseThreshold(1);
  std::vector<double> Temps(Net.numNodes(), 30.0);
  (void)Net.stepTransient(Temps, 1.0); // Prime the factor outside the clock.
  return bestWallTimeS(Rounds, [&] {
           for (int I = 0; I != Steps; ++I)
             (void)Net.stepTransient(Temps, 1.0);
         }) /
         Steps;
}

/// Seconds per coupled immersion-module solve: seed path (cold fixed
/// point from the nameplate guess every solve) vs warm-started path
/// (ModuleSolveOptions::WarmStart seeded from the previous report, the
/// trim-loop / design-sweep access pattern). The prime solve stays
/// outside the clock, like the hydraulic warm-start leg.
double timeModuleSolveS(bool Warm, int Solves) {
  rcsystem::ComputationalModule Module(core::makeSkatModule());
  auto Conditions = core::makeNominalConditions();
  const fpga::WorkloadPoint Load = Module.config().Load;
  rcsystem::ModuleThermalReport Prior;
  if (Warm) {
    auto Primer = Module.solveSteadyState(Conditions, Load);
    if (Primer)
      Prior = *Primer;
  }
  return bestWallTimeS(3, [&] {
           for (int I = 0; I != Solves; ++I) {
             rcsystem::ModuleSolveOptions Options;
             if (Warm && !Prior.Fpgas.empty())
               Options.WarmStart = &Prior;
             auto Report = Module.solveSteadyState(Conditions, Load, Options);
             benchmark::DoNotOptimize(Report);
             if (Warm && Report)
               Prior = *Report;
           }
         }) /
         Solves;
}

/// A deterministic module-level reliability campaign for the sweep
/// scaling leg: one ramped pump degradation plus a drifting coolant
/// sensor, so every replicate exercises the full injected-plant +
/// corrupted-readings transient path.
faults::Scenario makeSweepScenario(double DurationS) {
  faults::Scenario S;
  S.Name = "bench-sweep";
  S.Design = "skat";
  S.DurationS = DurationS;
  S.Seed = 20260808;
  faults::FaultSpec Pump;
  Pump.Kind = faults::FaultKind::PumpDegradation;
  Pump.Id = "pump-wear";
  Pump.StartTimeS = DurationS * 0.25;
  Pump.SeverityFraction = 0.4;
  Pump.RampS = DurationS * 0.25;
  S.Faults.push_back(Pump);
  faults::FaultSpec Drift;
  Drift.Kind = faults::FaultKind::SensorDrift;
  Drift.Id = "coolant-drift";
  Drift.Target = 0;
  Drift.StartTimeS = DurationS * 0.5;
  Drift.SeverityFraction = 0.1;
  S.Faults.push_back(Drift);
  return S;
}

/// Seconds for one \p Replicates-replicate sweep of the bench scenario on
/// \p Threads workers (<= 0 = all hardware threads).
double timeSweepS(int Threads, int Replicates, double DurationS) {
  faults::Scenario S = makeSweepScenario(DurationS);
  faults::SweepConfig Config;
  Config.NumReplicates = Replicates;
  Config.NumThreads = Threads;
  return bestWallTimeS(3, [&] {
    auto Report = faults::runSweep(S, Config);
    benchmark::DoNotOptimize(Report);
  });
}

} // namespace

// BENCHMARK_MAIN(), plus a BENCH_p1_solvers.json summary carrying the
// run's wall time, the ablation speedup ratios the regression gate
// consumes, and the telemetry counter snapshot (Newton iterations,
// bracketing searches, thermal solves) accumulated across all benchmarks.
int main(int Argc, char **Argv) {
  telemetry::BenchReport Bench("p1_solvers");
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  size_t NumRun = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  double RepScale = benchRepScale();
  int TransientSteps = std::max(10, static_cast<int>(200 * RepScale));
  int NewtonSolves = std::max(4, static_cast<int>(40 * RepScale));
  double TransientSeedS = timeTransientLadderS(false, TransientSteps);
  double TransientCachedS = timeTransientLadderS(true, TransientSteps);
  double NewtonSeedS = timeRackNewtonS(false, NewtonSolves);
  double NewtonOverhaulS = timeRackNewtonS(true, NewtonSolves);
  double TransientSpeedup = TransientSeedS / TransientCachedS;
  double NewtonSpeedup = NewtonSeedS / NewtonOverhaulS;
  printf("ablation: transient factor reuse %.2fx, hydraulic newton %.2fx\n",
         TransientSpeedup, NewtonSpeedup);

  telemetry::Registry &Telemetry = telemetry::Registry::global();
  // Span-tracing overhead: the identical cached transient leg with a
  // record-discarding sink installed, so every solver span goes through
  // the full SpanRecord path. The ratio (no sink / sink) reads like a
  // speedup: 1.0 = tracing is free, and bench_compare gates it the same
  // way, so a hot-path span regression trips CI.
  Telemetry.setSink(std::make_unique<DiscardSink>());
  double TransientTracedS = timeTransientLadderS(true, TransientSteps);
  (void)Telemetry.closeSink();
  double TracingOverhead = TransientCachedS / TransientTracedS;
  printf("ablation: span tracing overhead ratio %.2fx (no sink / discard "
         "sink)\n",
         TracingOverhead);

  // Physics-audit overhead: the cached transient leg again, now paying
  // the per-step state snapshot plus conservation residual recompute.
  // Gated like overhead_span_tracing (1.0 = auditing is free).
  double TransientAuditedS = timeTransientLadderAuditedS(TransientSteps);
  double AuditOverhead = TransientCachedS / TransientAuditedS;
  printf("ablation: physics audit overhead ratio %.2fx (no audit / "
         "audited)\n",
         AuditOverhead);

  // Sparse-vs-dense thermal ladder: the fleet-scale ablation. Steady legs
  // time the tuning access pattern (conductance trim -> numeric refactor
  // between solves); the transient legs time the factor-reuse hot loop at
  // a fixed dt. Dense work grows O(n^3) per refactor, so the 4096-unknown
  // dense leg runs one solve in one round — it clocks seconds of work and
  // needs no best-of averaging.
  struct LadderPoint {
    int Unknowns;
    int DenseSolves;
    int DenseRounds;
  };
  const LadderPoint Ladder[] = {{64, 8, 3}, {512, 4, 3}, {4096, 1, 1}};
  const int SparseSolves = std::max(4, static_cast<int>(16 * RepScale));
  double DenseSteadyGateS = 0.0, SparseSteadyGateS = 0.0;
  double LadderMaxDiffC = 0.0;
  bool LadderOk = true;
  size_t DenseBytesGate = 0, SparseBytesGate = 0;
  for (const LadderPoint &Point : Ladder) {
    SteadyLegResult Dense = runSteadyLadderLeg(
        false, Point.Unknowns, Point.DenseSolves, Point.DenseRounds);
    SteadyLegResult Sparse =
        runSteadyLadderLeg(true, Point.Unknowns, SparseSolves, 3);
    LadderOk = LadderOk && Dense.PerSolveS > 0.0 && Sparse.PerSolveS > 0.0 &&
               !Dense.PrimeTemps.empty() &&
               Dense.PrimeTemps.size() == Sparse.PrimeTemps.size();
    for (size_t I = 0; I != Dense.PrimeTemps.size() &&
                       I != Sparse.PrimeTemps.size();
         ++I)
      LadderMaxDiffC =
          std::max(LadderMaxDiffC,
                   std::fabs(Dense.PrimeTemps[I] - Sparse.PrimeTemps[I]));
    printf("ablation: sparse steady at %d unknowns %.2fx (dense %.3f ms, "
           "sparse %.3f ms, factors %zu vs %zu kB)\n",
           Point.Unknowns, Dense.PerSolveS / Sparse.PerSolveS,
           Dense.PerSolveS * 1e3, Sparse.PerSolveS * 1e3,
           Dense.FactorBytes / 1024, Sparse.FactorBytes / 1024);
    std::string Suffix = std::to_string(Point.Unknowns);
    Bench.addMetric("thermal_dense_steady_" + Suffix + "_s", Dense.PerSolveS);
    Bench.addMetric("thermal_sparse_steady_" + Suffix + "_s",
                    Sparse.PerSolveS);
    Bench.addMetric("thermal_dense_factor_bytes_" + Suffix,
                    static_cast<long long>(Dense.FactorBytes));
    Bench.addMetric("thermal_sparse_factor_bytes_" + Suffix,
                    static_cast<long long>(Sparse.FactorBytes));
    if (Point.Unknowns == 4096) {
      DenseSteadyGateS = Dense.PerSolveS;
      SparseSteadyGateS = Sparse.PerSolveS;
      DenseBytesGate = Dense.FactorBytes;
      SparseBytesGate = Sparse.FactorBytes;
    }
  }
  double SparseSteadySpeedup = DenseSteadyGateS / SparseSteadyGateS;

  // Transient at the gate size: per-step cost with the factor cached.
  const int DenseTransientSteps = std::max(3, static_cast<int>(20 * RepScale));
  const int SparseTransientSteps =
      std::max(16, static_cast<int>(200 * RepScale));
  double DenseStep4096S =
      timeLadderTransientPerStepS(false, 4096, DenseTransientSteps, 3);
  double SparseStep4096S =
      timeLadderTransientPerStepS(true, 4096, SparseTransientSteps, 3);
  double SparseTransientSpeedup = DenseStep4096S / SparseStep4096S;
  printf("ablation: sparse transient step at 4096 unknowns %.2fx (dense "
         "%.3f ms, sparse %.3f ms)\n",
         SparseTransientSpeedup, DenseStep4096S * 1e3, SparseStep4096S * 1e3);

  // Past the dense envelope: the 8192-unknown rung runs sparse only (a
  // dense factor would need 512 MB and minutes of refactor time).
  SteadyLegResult Sparse8k = runSteadyLadderLeg(
      true, 8192, std::max(2, static_cast<int>(8 * RepScale)), 3);
  double SparseStep8192S = timeLadderTransientPerStepS(
      true, 8192, std::max(8, static_cast<int>(100 * RepScale)), 3);
  printf("ablation: sparse-only at 8192 unknowns: steady %.3f ms, step "
         "%.3f ms, factors %zu kB\n",
         Sparse8k.PerSolveS * 1e3, SparseStep8192S * 1e3,
         Sparse8k.FactorBytes / 1024);

  // Coupled-module fixed point: cold nameplate start vs warm start from
  // the previous report.
  const int ModuleSolves = std::max(3, static_cast<int>(10 * RepScale));
  double ModuleColdS = timeModuleSolveS(false, ModuleSolves);
  double ModuleWarmS = timeModuleSolveS(true, ModuleSolves);
  double ModuleSpeedup = ModuleColdS / ModuleWarmS;
  printf("ablation: coupled module solve %.2fx (cold start %.2f ms, warm "
         "start %.2f ms)\n",
         ModuleSpeedup, ModuleColdS * 1e3, ModuleWarmS * 1e3);

  // Reliability-sweep scaling: serial vs all-hardware-threads runs of the
  // same campaign. On a single-core host both legs run inline and the
  // ratio sits near 1.0; the gate compares against a baseline recorded on
  // the same class of machine, so it trips on parallel-path regressions,
  // not on core count.
  int SweepWorkers = clampThreadCount(0);
  int SweepReplicates = std::max(4, static_cast<int>(12 * RepScale));
  double SweepDurationS = std::max(300.0, 1800.0 * RepScale);
  double SweepSerialS = timeSweepS(1, SweepReplicates, SweepDurationS);
  double SweepParallelS =
      timeSweepS(SweepWorkers, SweepReplicates, SweepDurationS);
  double SweepSpeedup = SweepSerialS / SweepParallelS;
  printf("ablation: sweep parallel speedup %.2fx (%d replicates, %d "
         "workers)\n",
         SweepSpeedup, SweepReplicates, SweepWorkers);
  Bench.addMetric("benchmarks_run", static_cast<long long>(NumRun));
  Bench.addMetric("transient_ladder_seed_s", TransientSeedS);
  Bench.addMetric("transient_ladder_cached_s", TransientCachedS);
  Bench.addMetric("speedup_transient_factor_reuse", TransientSpeedup);
  Bench.addMetric("hydraulic_newton_seed_s", NewtonSeedS);
  Bench.addMetric("hydraulic_newton_overhaul_s", NewtonOverhaulS);
  Bench.addMetric("speedup_hydraulic_newton", NewtonSpeedup);
  Bench.addMetric("transient_ladder_traced_s", TransientTracedS);
  Bench.addMetric("overhead_span_tracing", TracingOverhead);
  Bench.addMetric("transient_ladder_audited_s", TransientAuditedS);
  Bench.addMetric("overhead_audit", AuditOverhead);
  Bench.addMetric("speedup_thermal_sparse_steady", SparseSteadySpeedup);
  Bench.addMetric("speedup_thermal_sparse_transient", SparseTransientSpeedup);
  Bench.addMetric("thermal_dense_transient_step_4096_s", DenseStep4096S);
  Bench.addMetric("thermal_sparse_transient_step_4096_s", SparseStep4096S);
  Bench.addMetric("thermal_sparse_steady_8192_s", Sparse8k.PerSolveS);
  Bench.addMetric("thermal_sparse_transient_step_8192_s", SparseStep8192S);
  Bench.addMetric("thermal_sparse_factor_bytes_8192",
                  static_cast<long long>(Sparse8k.FactorBytes));
  Bench.addMetric("thermal_sparse_dense_max_diff_c", LadderMaxDiffC);
  Bench.addMetric("speedup_coupled_module_solve", ModuleSpeedup);
  Bench.addMetric("module_solve_cold_s", ModuleColdS);
  Bench.addMetric("module_solve_warm_s", ModuleWarmS);
  Bench.addMetric("sweep_serial_s", SweepSerialS);
  Bench.addMetric("sweep_parallel_s", SweepParallelS);
  Bench.addMetric("speedup_sweep_parallel", SweepSpeedup);
  Bench.addMetric("sweep_worker_threads", static_cast<long long>(SweepWorkers));
  Bench.addMetric("sweep_replicates", static_cast<long long>(SweepReplicates));
  Bench.addMetric(
      "newton_iterations",
      static_cast<long long>(
          Telemetry.counter("hydraulics.newton.iterations").value()));
  Bench.addMetric(
      "edge_inversion_searches",
      static_cast<long long>(
          Telemetry.counter("hydraulics.edge_inversion.searches").value()));
  Bench.addMetric(
      "thermal_steady_solves",
      static_cast<long long>(
          Telemetry.counter("thermal.network.steady_solves").value()));
  Bench.addMetric(
      "thermal_transient_steps",
      static_cast<long long>(
          Telemetry.counter("thermal.network.transient_steps").value()));
  // Shape check only: the ablation legs ran and produced nonzero times.
  // (NumRun may be zero under --benchmark_filter, e.g. the CI smoke run;
  // performance thresholds are tools/bench_compare's job, not ours.)
  bool Ok = TransientSeedS > 0.0 && TransientCachedS > 0.0 &&
            NewtonSeedS > 0.0 && NewtonOverhaulS > 0.0 &&
            TransientTracedS > 0.0 && TransientAuditedS > 0.0 &&
            SweepSerialS > 0.0 && SweepParallelS > 0.0 && LadderOk &&
            DenseStep4096S > 0.0 && SparseStep4096S > 0.0 &&
            Sparse8k.PerSolveS > 0.0 && SparseStep8192S > 0.0 &&
            ModuleColdS > 0.0 && ModuleWarmS > 0.0 &&
            LadderMaxDiffC < 1e-4 && DenseBytesGate > SparseBytesGate;
  Bench.writeOrWarn(Ok);
  return Ok ? 0 : 1;
}
