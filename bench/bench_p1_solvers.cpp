//===- bench/bench_p1_solvers.cpp - Solver micro-benchmarks ------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark micro-benchmarks of the numerical kernels: thermal
/// network steady-state and transient solves, hydraulic network Newton
/// solves, the full coupled module solve and a rack solve. Also serves as
/// the ablation harness for the coupled fixed-point iteration cost.
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "fluids/Fluid.h"
#include "hydraulics/Manifold.h"
#include "sim/Transient.h"
#include "telemetry/Bench.h"
#include "telemetry/Telemetry.h"
#include "thermal/Network.h"

#include <benchmark/benchmark.h>

using namespace rcs;

/// Builds a ladder thermal network with \p Rungs chip->sink->coolant
/// chains hanging off a shared coolant rail.
static thermal::ThermalNetwork makeLadderNetwork(int Rungs) {
  thermal::ThermalNetwork Net;
  thermal::NodeId Coolant = Net.addBoundaryNode("coolant", 30.0);
  for (int I = 0; I != Rungs; ++I) {
    thermal::NodeId Chip = Net.addNode("chip", 100.0);
    thermal::NodeId Sink = Net.addNode("sink", 300.0);
    Net.addResistance(Chip, Sink, 0.12);
    Net.addResistance(Sink, Coolant, 0.15);
    Net.addHeatSource(Chip, 91.0);
    if (I > 0)
      Net.addConductance(Chip, Chip - 2, 0.5); // Board coupling.
  }
  return Net;
}

static void BM_ThermalSteadyState(benchmark::State &State) {
  thermal::ThermalNetwork Net =
      makeLadderNetwork(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    auto Temps = Net.solveSteadyState();
    benchmark::DoNotOptimize(Temps);
  }
}
BENCHMARK(BM_ThermalSteadyState)->Arg(8)->Arg(32)->Arg(96)->Arg(192);

static void BM_ThermalTransientStep(benchmark::State &State) {
  thermal::ThermalNetwork Net =
      makeLadderNetwork(static_cast<int>(State.range(0)));
  std::vector<double> Temps(Net.numNodes(), 30.0);
  for (auto _ : State) {
    Status S = Net.stepTransient(Temps, 1.0);
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_ThermalTransientStep)->Arg(8)->Arg(96);

static void BM_HydraulicRackSolve(benchmark::State &State) {
  hydraulics::RackHydraulicsConfig Config;
  Config.NumLoops = static_cast<int>(State.range(0));
  Config.Layout = hydraulics::ManifoldLayout::ReverseReturn;
  hydraulics::RackHydraulics Rack =
      hydraulics::buildRackPrimaryLoop(Config);
  auto Water = fluids::makeWater();
  for (auto _ : State) {
    auto Solution = Rack.Network.solve(*Water, 18.0, 1e-3);
    benchmark::DoNotOptimize(Solution);
  }
}
BENCHMARK(BM_HydraulicRackSolve)->Arg(6)->Arg(12)->Arg(24);

static void BM_ImmersionModuleSolve(benchmark::State &State) {
  rcsystem::ComputationalModule Module(core::makeSkatModule());
  auto Conditions = core::makeNominalConditions();
  for (auto _ : State) {
    auto Report = Module.solveSteadyState(Conditions);
    benchmark::DoNotOptimize(Report);
  }
}
BENCHMARK(BM_ImmersionModuleSolve);

static void BM_AirModuleSolve(benchmark::State &State) {
  rcsystem::ComputationalModule Module(core::makeTaygetaModule());
  auto Conditions = core::makeNominalConditions();
  for (auto _ : State) {
    auto Report = Module.solveSteadyState(Conditions);
    benchmark::DoNotOptimize(Report);
  }
}
BENCHMARK(BM_AirModuleSolve);

static void BM_FullRackSolve(benchmark::State &State) {
  rcsystem::Rack Rack(core::makeSkatRack());
  for (auto _ : State) {
    auto Report = Rack.solveSteadyState(25.0);
    benchmark::DoNotOptimize(Report);
  }
}
BENCHMARK(BM_FullRackSolve);

static void BM_TransientSimMinute(benchmark::State &State) {
  for (auto _ : State) {
    sim::TransientSimulator Simulator(core::makeSkatModule(),
                                      core::makeNominalConditions());
    auto Trace = Simulator.run(60.0);
    benchmark::DoNotOptimize(Trace);
  }
}
BENCHMARK(BM_TransientSimMinute);

// BENCHMARK_MAIN(), plus a BENCH_p1_solvers.json summary carrying the
// run's wall time and the telemetry counter snapshot (Newton iterations,
// bracketing searches, thermal solves) accumulated across all benchmarks.
int main(int Argc, char **Argv) {
  telemetry::BenchReport Bench("p1_solvers");
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  size_t NumRun = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  telemetry::Registry &Telemetry = telemetry::Registry::global();
  Bench.addMetric("benchmarks_run", static_cast<long long>(NumRun));
  Bench.addMetric(
      "newton_iterations",
      static_cast<long long>(
          Telemetry.counter("hydraulics.newton.iterations").value()));
  Bench.addMetric(
      "edge_inversion_searches",
      static_cast<long long>(
          Telemetry.counter("hydraulics.edge_inversion.searches").value()));
  Bench.addMetric(
      "thermal_steady_solves",
      static_cast<long long>(
          Telemetry.counter("thermal.network.steady_solves").value()));
  Bench.addMetric(
      "thermal_transient_steps",
      static_cast<long long>(
          Telemetry.counter("thermal.network.transient_steps").value()));
  bool Ok = NumRun > 0;
  Bench.writeOrWarn(Ok);
  return Ok ? 0 : 1;
}
