//===- bench/bench_a3_ride_through.cpp - Ablation A3 ---------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation A3: thermal-inertia ride-through on facility cooling loss.
/// The immersion bath's oil inventory is a thermal battery: when the
/// chilled-water loop stops, the module keeps computing for many minutes
/// before junctions leave the long-life band, while an air-cooled module
/// has only its chip and sink masses (seconds). This is an operational
/// advantage the paper's architecture implies (the hermetic container of
/// coolant in every CM) though it never quantifies it.
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "sim/Transient.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "telemetry/Bench.h"

#include <cstdio>

using namespace rcs;

namespace {

/// Minutes from water-loss until the junction estimate crosses \p LimitC;
/// negative when it never does within the horizon.
double rideThroughMinutes(double OilVolumeM3, double LimitC) {
  sim::TransientConfig Config;
  Config.OilVolumeM3 = OilVolumeM3;
  Config.ApplyControlActions = false; // Measure pure physics.
  Config.SampleIntervalS = 10.0;
  sim::TransientSimulator Simulator(core::makeSkatModule(),
                                    core::makeNominalConditions(), Config);
  const double FailTime = 3600.0; // After a one-hour warm-up.
  Simulator.scheduleWaterFlow(FailTime, 0.0);
  auto Trace = Simulator.run(4.0 * 3600.0);
  if (!Trace)
    return -1.0;
  for (const sim::TraceSample &Sample : *Trace)
    if (Sample.TimeS > FailTime && Sample.MaxJunctionTempC >= LimitC)
      return (Sample.TimeS - FailTime) / 60.0;
  return -1.0;
}

} // namespace

int main() {
  telemetry::BenchReport Bench("a3_ride_through");
  std::printf("A3: ride-through after chilled-water loss (full 9.8 kW "
              "load kept running)\n\n");

  const double LimitC = 70.0; // The paper's long-life band edge.

  // Air-cooled modules have only solid heat capacity: chips + sinks.
  // C ~ 96 x (120 J/K chip+sink) and ~9 kW of heat once room air stops
  // being refreshed.
  double AirCapacity = 96.0 * 120.0;
  double AirHeadroom = 70.0 - 84.3; // Already beyond the band at steady
                                    // state; effectively zero.
  double AirSeconds =
      AirHeadroom > 0.0 ? AirCapacity * AirHeadroom / 9000.0 : 0.0;

  Table T({"design", "coolant inventory", "ride-through to 70 C"});
  T.addRow({"UltraScale on air", "none",
            formatString("%.0f s (steady state already at 84 C)",
                         AirSeconds)});
  struct VolumeCase {
    double VolumeM3;
    const char *Label;
  } Volumes[] = {
      {0.10, "0.10 m^3 oil (minimal bath)"},
      {0.20, "0.20 m^3 oil (SKAT design)"},
      {0.35, "0.35 m^3 oil (generous bath)"},
  };
  double Minutes[3] = {0, 0, 0};
  int Index = 0;
  for (VolumeCase &Volume : Volumes) {
    double Ride = rideThroughMinutes(Volume.VolumeM3, LimitC);
    Minutes[Index++] = Ride;
    T.addRow({"SKAT immersion", Volume.Label,
              Ride < 0.0 ? "> 180 min"
                         : formatString("%.0f min", Ride)});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("The bath inventory converts directly into minutes of "
              "protected operation - time for the control system to "
              "migrate work or shut down cleanly.\n\n");

  bool Ok = Minutes[0] > 2.0 &&
            (Minutes[1] < 0.0 || Minutes[1] > Minutes[0]) &&
            (Minutes[2] < 0.0 || Minutes[2] > Minutes[1] ||
             Minutes[1] < 0.0);
  std::printf("Shape check (minutes of ride-through, growing with oil "
              "inventory): %s\n",
              Ok ? "PASS" : "FAIL");
  Bench.addMetric("ride_through_0p10m3_min", Minutes[0]);
  Bench.addMetric("ride_through_0p20m3_min", Minutes[1]);
  Bench.addMetric("ride_through_0p35m3_min", Minutes[2]);
  Bench.writeOrWarn(Ok);
  return Ok ? 0 : 1;
}
