//===- bench/bench_e10_cooling_crossover.cpp - Experiment E10 ------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's overarching argument as a crossover study: air
/// cooling is fine at low per-chip power but exits the reliable band as
/// chip power grows, while immersion keeps headroom through current and
/// future FPGA families (Sections 1, 2, 5). A Monte-Carlo availability
/// comparison adds the reliability axis (Section 2's leak/dew-point and
/// wash-out arguments).
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "sim/MonteCarlo.h"
#include "support/Numerics.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "telemetry/Bench.h"

#include <cstdio>

using namespace rcs;
using namespace rcs::rcsystem;

int main() {
  telemetry::BenchReport Bench("e10_cooling_crossover");
  ExternalConditions Conditions = core::makeNominalConditions();

  // --- Crossover sweep: scale per-chip dynamic power ----------------------
  // Clock fraction is the proxy for the per-chip power a future family
  // brings at the same utilization.
  std::printf("E10: cooling-technology crossover vs per-FPGA power\n\n");
  Table Sweep({"per-FPGA power (W)", "air max Tj (C)",
               "immersion max Tj (C)", "air in 70 C band",
               "immersion in 70 C band"});
  double AirCrossoverW = 0.0;
  double LastImmersionTj = 0.0;
  for (double Clock : {0.3, 0.5, 0.7, 0.85, 1.0, 1.15, 1.3}) {
    fpga::WorkloadPoint Load{0.90, Clock};

    ModuleConfig Air = core::makeUltraScaleAirModule();
    ComputationalModule AirModule(Air);
    Expected<ModuleThermalReport> AirReport =
        AirModule.solveSteadyState(Conditions, Load);

    ModuleConfig Immersion = core::makeSkatModule();
    ComputationalModule ImmersionModule(Immersion);
    Expected<ModuleThermalReport> ImmersionReport =
        ImmersionModule.solveSteadyState(Conditions, Load);
    if (!AirReport || !ImmersionReport) {
      std::fprintf(stderr, "solve failed\n");
      return 1;
    }
    double ChipPower = ImmersionReport->Fpgas.front().PowerW;
    bool AirOk = AirReport->MaxJunctionTempC <= 70.0;
    bool ImmersionOk = ImmersionReport->MaxJunctionTempC <= 70.0;
    if (!AirOk && nearZero(AirCrossoverW))
      AirCrossoverW = ChipPower;
    LastImmersionTj = ImmersionReport->MaxJunctionTempC;
    Sweep.addRow({formatString("%.0f", ChipPower),
                  formatString("%.1f", AirReport->MaxJunctionTempC),
                  formatString("%.1f", ImmersionReport->MaxJunctionTempC),
                  AirOk ? "yes" : "NO", ImmersionOk ? "yes" : "NO"});
  }
  std::printf("%s\n", Sweep.render().c_str());
  std::printf("Air cooling leaves the 70 C long-life band at ~%.0f W per "
              "FPGA; immersion stays at %.1f C even at 130%% clock.\n\n",
              AirCrossoverW, LastImmersionTj);

  // --- Availability comparison ---------------------------------------------
  std::printf("Availability per module over 5 years (Monte-Carlo, same "
              "96-FPGA complement):\n");
  sim::AvailabilityConfig AirConfig;
  AirConfig.Components = sim::makeAirComponents(96, 84.0, 12);
  sim::AvailabilityConfig ColdPlateConfig;
  ColdPlateConfig.Components = sim::makeColdPlateComponents(96, 33.0, 192);
  sim::AvailabilityConfig ImmersionConfig;
  ImmersionConfig.Components =
      sim::makeImmersionComponents(96, 44.0, 1, /*WashoutProneGrease=*/false);
  sim::AvailabilityConfig WashoutConfig;
  WashoutConfig.Components =
      sim::makeImmersionComponents(96, 44.0, 1, /*WashoutProneGrease=*/true);

  Table Avail({"design", "failures/year", "downtime (h/year)",
               "availability"});
  auto addAvail = [&Avail](const char *Label,
                           const sim::AvailabilityConfig &Config) {
    sim::AvailabilityReport Report = sim::simulateAvailability(Config);
    Avail.addRow({Label, formatString("%.2f", Report.FailuresPerYear),
                  formatString("%.1f",
                               Report.ModuleDowntimeHoursPerYear),
                  formatString("%.4f", Report.Availability)});
    return Report;
  };
  auto AirAvail = addAvail("forced air (Tj 84 C)", AirConfig);
  addAvail("cold plate (Tj 33 C, 192 connectors)", ColdPlateConfig);
  auto ImmersionAvail =
      addAvail("SKAT immersion (Tj 44 C)", ImmersionConfig);
  addAvail("immersion + grease TIM (wash-out)", WashoutConfig);
  std::printf("%s\n", Avail.render().c_str());

  bool Ok = AirCrossoverW > 40.0 && AirCrossoverW < 110.0 &&
            LastImmersionTj < 70.0 &&
            ImmersionAvail.ModuleDowntimeHoursPerYear <
                AirAvail.ModuleDowntimeHoursPerYear;
  std::printf("Shape check (air crosses the band inside the UltraScale "
              "power range, immersion never does, immersion wins "
              "availability): %s\n",
              Ok ? "PASS" : "FAIL");
  Bench.addMetric("air_crossover_W", AirCrossoverW);
  Bench.addMetric("immersion_tj_at_130pct_clock_C", LastImmersionTj);
  Bench.addMetric("air_downtime_h_per_year",
                  AirAvail.ModuleDowntimeHoursPerYear);
  Bench.addMetric("immersion_downtime_h_per_year",
                  ImmersionAvail.ModuleDowntimeHoursPerYear);
  Bench.writeOrWarn(Ok);
  return Ok ? 0 : 1;
}
