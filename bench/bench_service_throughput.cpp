//===- bench/bench_service_throughput.cpp - Scenario-service benchmark --------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Throughput and latency of the `skatsim serve` scenario service
/// (service/Service.h), driven through the in-process API so the numbers
/// measure evaluation and dispatch, not socket I/O. Two legs run the same
/// batch of transient requests against one plant configuration:
///
///  - cold: the shared solver cache disabled, so every request rebuilds
///    its fluid tables and thermal network from scratch (the seed
///    one-shot-CLI cost model);
///  - warm: the keyed service::SolverCacheRegistry enabled and primed,
///    so requests lease warmed sim::TransientSolverAssets.
///
/// The ratio cold/warm per scenario is `speedup_service_cache`, gated by
/// tools/bench_compare against bench/baselines/. Latency quantiles come
/// from the service.request.latency_s histogram over the warm leg.
///
//===----------------------------------------------------------------------===//

#include "service/Service.h"
#include "support/Parallel.h"
#include "telemetry/Bench.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace rcs;

namespace {

/// Repetition scale from SKATSIM_BENCH_REPS (default 1.0; CI smoke runs
/// set a fraction to keep the job fast).
double benchRepScale() {
  const char *Env = std::getenv("SKATSIM_BENCH_REPS");
  if (!Env || !*Env)
    return 1.0;
  char *End = nullptr;
  double Scale = std::strtod(Env, &End);
  return End != Env && Scale > 0.0 ? Scale : 1.0;
}

/// Best-of-\p Rounds wall time of \p Body in seconds.
template <typename Fn> double bestWallTimeS(int Rounds, Fn &&Body) {
  double Best = 1e300;
  for (int Round = 0; Round != Rounds; ++Round) {
    auto Start = std::chrono::steady_clock::now();
    Body();
    std::chrono::duration<double> Elapsed =
        std::chrono::steady_clock::now() - Start;
    Best = std::min(Best, Elapsed.count());
  }
  return Best;
}

/// One transient request line for the shared bench plant. Every request
/// names the same design and step so the warm leg hits one cache key.
std::string makeRequest(int Index, double Hours) {
  char Line[192];
  std::snprintf(Line, sizeof(Line),
                "{\"kind\": \"service_request\", \"id\": \"q%d\", "
                "\"type\": \"transient\", \"design\": \"skat\", "
                "\"hours\": %.6f, \"dt_s\": 2}",
                Index, Hours);
  return Line;
}

/// Submits \p Requests and drains until the service runs dry. Aborts the
/// bench on any error response: a failing scenario would turn the
/// throughput numbers into fiction.
void runBatch(service::ScenarioService &Service,
              const std::vector<std::string> &Requests) {
  for (const std::string &Line : Requests) {
    if (auto Immediate = Service.submit(Line)) {
      std::fprintf(stderr, "bench: immediate error response: %s\n",
                   Immediate->c_str());
      std::exit(1);
    }
  }
  std::vector<std::string> Responses;
  while (Service.drain(Responses))
    ;
  for (const std::string &Line : Responses)
    if (Line.find("\"ok\": true") == std::string::npos) {
      std::fprintf(stderr, "bench: error response: %s\n", Line.c_str());
      std::exit(1);
    }
}

/// Seconds for one batch of \p Requests on a fresh service configured by
/// \p Config. The service (and with it the cache) lives across the
/// best-of rounds, so the warm leg stays warm after priming.
double timeServiceLegS(const service::ServeConfig &Config,
                       const std::vector<std::string> &Requests,
                       service::SolverCacheStats *StatsOut) {
  service::ScenarioService Service(Config);
  if (Config.UseSolverCache) {
    // Prime outside the clock: the first request pays the cold build.
    std::vector<std::string> Prime(Requests.begin(), Requests.begin() + 1);
    runBatch(Service, Prime);
  }
  double Best = bestWallTimeS(3, [&] { runBatch(Service, Requests); });
  if (StatsOut)
    *StatsOut = Service.cacheStats();
  return Best;
}

} // namespace

int main() {
  telemetry::BenchReport Bench("service_throughput");

  double RepScale = benchRepScale();
  // 0.02 h at dt 2 s = 36 transient steps per request: long enough that
  // the solve is real work, short enough that the asset build the cache
  // amortizes still dominates the ratio.
  const double Hours = 0.02;
  const int NumRequests = std::max(6, static_cast<int>(24 * RepScale));

  std::vector<std::string> Requests;
  for (int I = 0; I != NumRequests; ++I)
    Requests.push_back(makeRequest(I, Hours));

  service::ServeConfig Config;
  // Single worker: the ablation measures per-request cache savings, and
  // one thread keeps the ratio independent of host core count.
  Config.NumThreads = 1;
  Config.MaxBatch = NumRequests;
  Config.MaxQueueDepth = NumRequests * 2;

  service::ServeConfig ColdConfig = Config;
  ColdConfig.UseSolverCache = false;
  double ColdS = timeServiceLegS(ColdConfig, Requests, nullptr);

  telemetry::Registry &Telemetry = telemetry::Registry::global();
  Telemetry.resetMetrics(); // Quantiles below cover the warm leg only.
  service::SolverCacheStats CacheStats;
  double WarmS = timeServiceLegS(Config, Requests, &CacheStats);

  double ColdRate = NumRequests / ColdS;
  double WarmRate = NumRequests / WarmS;
  double Speedup = ColdS / WarmS;
  double HitRate =
      CacheStats.Hits + CacheStats.Misses == 0
          ? 0.0
          : static_cast<double>(CacheStats.Hits) /
                static_cast<double>(CacheStats.Hits + CacheStats.Misses);
  std::printf("service throughput: cold %.1f/s, warm %.1f/s, cache "
              "speedup %.2fx (hit rate %.2f)\n",
              ColdRate, WarmRate, Speedup, HitRate);

  telemetry::Histogram &Latency =
      Telemetry.histogram("service.request.latency_s");
  double P50Ms = Latency.p50() * 1e3;
  double P95Ms = Latency.p95() * 1e3;
  double P99Ms = Latency.p99() * 1e3;
  std::printf("warm latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
              P50Ms, P95Ms, P99Ms);

  // The speedup ratio is the load-bearing check; everything else in the
  // report is context. bench_compare gates the ratio against the recorded
  // baseline, so here we only require the cache to not be a slowdown.
  bool Passed = Speedup > 1.0 && CacheStats.Hits > 0;
  if (!Passed)
    std::fprintf(stderr,
                 "bench: warm path is not faster than cold (%.2fx)\n",
                 Speedup);

  Bench.addMetric("requests_per_leg", static_cast<long long>(NumRequests));
  Bench.addMetric("transient_hours_per_request", Hours);
  Bench.addMetric("cold_batch_s", ColdS);
  Bench.addMetric("warm_batch_s", WarmS);
  Bench.addMetric("scenarios_per_s_cold", ColdRate);
  Bench.addMetric("scenarios_per_s_warm", WarmRate);
  Bench.addMetric("speedup_service_cache", Speedup);
  Bench.addMetric("cache_hit_rate", HitRate);
  Bench.addMetric("cache_hits", static_cast<long long>(CacheStats.Hits));
  Bench.addMetric("cache_misses",
                  static_cast<long long>(CacheStats.Misses));
  Bench.addMetric("latency_p50_ms", P50Ms);
  Bench.addMetric("latency_p95_ms", P95Ms);
  Bench.addMetric("latency_p99_ms", P99Ms);
  Bench.writeOrWarn(Passed);
  return Passed ? 0 : 1;
}
