//===- bench/bench_e3_family_scaling.cpp - Experiment E3 ----------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Section 1's family-scaling observation: each FPGA generation
/// on air cooling raises the maximum junction temperature by 11..15 C
/// (Virtex-6 -> Virtex-7, measured) and a further +10..15 C for Virtex
/// UltraScale-class parts (projected), pushing into the 80..85 C range.
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "fpga/PowerModel.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "telemetry/Bench.h"

#include <cstdio>

using namespace rcs;
using namespace rcs::rcsystem;

int main() {
  telemetry::BenchReport Bench("e3_family_scaling");
  ExternalConditions Conditions = core::makeNominalConditions();

  struct GenerationRow {
    const char *Label;
    ModuleConfig Config;
  } Rows[] = {
      {"Virtex-6 (Rigel-2)", core::makeRigel2Module()},
      {"Virtex-7 (Taygeta)", core::makeTaygetaModule()},
      {"Kintex UltraScale (air projection)",
       core::makeUltraScaleAirModule()},
  };

  std::printf("E3: junction temperature growth per FPGA family on air "
              "cooling (paper Section 1)\n\n");
  Table T({"generation", "per-FPGA power (W)", "max Tj (C)",
           "step vs previous (C)", "paper step (C)"});
  double Previous = 0.0;
  double Steps[3] = {0.0, 0.0, 0.0};
  int Index = 0;
  for (GenerationRow &Row : Rows) {
    ComputationalModule Module(Row.Config);
    Expected<ModuleThermalReport> Report =
        Module.solveSteadyState(Conditions);
    if (!Report) {
      std::fprintf(stderr, "%s failed: %s\n", Row.Label,
                   Report.message().c_str());
      return 1;
    }
    double Step = Index == 0 ? 0.0 : Report->MaxJunctionTempC - Previous;
    Steps[Index] = Step;
    T.addRow({Row.Label,
              formatString("%.1f", Report->Fpgas.back().PowerW),
              formatString("%.1f", Report->MaxJunctionTempC),
              Index == 0 ? "-" : formatString("%.1f", Step),
              Index == 0 ? "-" : (Index == 1 ? "11..15" : "10..15")});
    Previous = Report->MaxJunctionTempC;
    ++Index;
  }
  std::printf("%s\n", T.render().c_str());

  // Leakage contribution: the hidden cost of hot junctions.
  fpga::FpgaPowerModel Ku(fpga::getFpgaSpec(fpga::FpgaModel::XCKU095));
  std::printf("Leakage at 44 C (immersion) vs 84 C (air): %.1f W vs %.1f W "
              "per XCKU095 - immersion also saves power.\n\n",
              Ku.staticPowerW(44.0), Ku.staticPowerW(84.0));

  bool Ok = Steps[1] >= 11.0 && Steps[1] <= 15.5 && Steps[2] >= 10.0 &&
            Steps[2] <= 15.5 && Previous >= 80.0 && Previous <= 86.0;
  std::printf("Shape check (steps in the paper's bands, UltraScale-on-air "
              "in the 80..85 C range): %s\n",
              Ok ? "PASS" : "FAIL");
  Bench.addMetric("virtex7_step_C", Steps[1]);
  Bench.addMetric("ultrascale_step_C", Steps[2]);
  Bench.addMetric("ultrascale_max_tj_C", Previous);
  Bench.writeOrWarn(Ok);
  return Ok ? 0 : 1;
}
