//===- bench/bench_e8_skatplus_projection.cpp - Experiment E8 ------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the Section 4 SKAT+ projection: UltraScale+ parts triple
/// performance at unchanged module size, but on the unmodified SKAT
/// cooling system temperatures leave the proven envelope; the Section 4
/// modifications (immersed higher-performance pumps, enlarged sink
/// surface, bigger heat exchanger, controller-less CCBs that fit the 45 mm
/// packages in a 19" rack) restore the margin - with reserve for a future
/// "UltraScale 2" generation (Section 5).
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "system/Board.h"
#include "telemetry/Bench.h"

#include <cstdio>

using namespace rcs;
using namespace rcs::rcsystem;

namespace {

ModuleThermalReport mustSolve(const ModuleConfig &Config) {
  ComputationalModule Module(Config);
  Expected<ModuleThermalReport> Report =
      Module.solveSteadyState(core::makeNominalConditions());
  if (!Report) {
    std::fprintf(stderr, "%s failed: %s\n", Config.Name.c_str(),
                 Report.message().c_str());
    std::exit(1);
  }
  return *Report;
}

} // namespace

int main() {
  telemetry::BenchReport Bench("e8_skatplus_projection");
  std::printf("E8: SKAT+ projection with UltraScale+ FPGAs (paper "
              "Section 4)\n\n");

  // --- The 45 mm package / 19" rack constraint ----------------------------
  CcbConfig WithController;
  WithController.Model = fpga::FpgaModel::XCVU9P;
  WithController.SeparateControllerFpga = true;
  CcbConfig WithoutController = WithController;
  WithoutController.SeparateControllerFpga = false;
  std::printf("CCB fit in a standard 19\" rack (45 x 45 mm packages):\n");
  Table Fit({"board layout", "fits 19\" rack", "peak GFLOPS"});
  Fit.addRow({"8 compute + separate controller FPGA",
              Ccb(WithController).fitsStandard19InchRack() ? "yes" : "NO",
              formatString("%.0f", Ccb(WithController).peakGflops())});
  Fit.addRow({"8 compute, controller folded in (SKAT+)",
              Ccb(WithoutController).fitsStandard19InchRack() ? "yes" : "NO",
              formatString("%.0f", Ccb(WithoutController).peakGflops())});
  std::printf("%s\n", Fit.render().c_str());

  // --- Thermal comparison ---------------------------------------------------
  ModuleThermalReport Skat = mustSolve(core::makeSkatModule());
  ModuleThermalReport Naive = mustSolve(core::makeSkatPlusNaiveModule());
  ModuleThermalReport Modified = mustSolve(core::makeSkatPlusModule());

  // Future family on the modified cooling (Section 5's reserve claim).
  ModuleConfig Future = core::makeSkatPlusModule();
  Future.Name = "UltraScale 2 on SKAT+ cooling";
  Future.Board.Model = fpga::FpgaModel::UltraScale2;
  ModuleThermalReport FutureReport = mustSolve(Future);

  Table T({"configuration", "CM heat (kW)", "max Tj (C)", "coolant (C)",
           "within SKAT envelope (Tj<=55, oil<=30.5)"});
  auto addRow = [&T](const char *Label, const ModuleThermalReport &R) {
    bool InEnvelope = R.MaxJunctionTempC <= 55.0 &&
                      R.CoolantHotTempC <= 30.5;
    T.addRow({Label, formatString("%.1f", R.TotalHeatW / 1000.0),
              formatString("%.1f", R.MaxJunctionTempC),
              formatString("%.1f", R.CoolantHotTempC),
              InEnvelope ? "yes" : "NO"});
  };
  addRow("SKAT (UltraScale, baseline)", Skat);
  addRow("SKAT+ naive: US+ chips, unmodified cooling", Naive);
  addRow("SKAT+ modified (Section 4 changes)", Modified);
  addRow("UltraScale 2 on SKAT+ cooling (projection)", FutureReport);
  std::printf("%s\n", T.render().c_str());

  std::printf("Section 4 modifications: immersed pumps (x2, higher head), "
              "+60%% sink pin area, +88%% HX surface, controller-less "
              "CCBs.\n\n");

  bool Ok = !Ccb(WithController).fitsStandard19InchRack() &&
            Ccb(WithoutController).fitsStandard19InchRack() &&
            Naive.MaxJunctionTempC > Modified.MaxJunctionTempC + 3.0 &&
            Naive.CoolantHotTempC > 30.5 &&
            Modified.MaxJunctionTempC <= 50.0 &&
            FutureReport.MaxJunctionTempC <= 60.0;
  std::printf("Shape check (fit constraint, naive envelope exit, modified "
              "margin, future reserve): %s\n",
              Ok ? "PASS" : "FAIL");
  Bench.addMetric("naive_max_tj_C", Naive.MaxJunctionTempC);
  Bench.addMetric("naive_coolant_hot_C", Naive.CoolantHotTempC);
  Bench.addMetric("modified_max_tj_C", Modified.MaxJunctionTempC);
  Bench.addMetric("future_max_tj_C", FutureReport.MaxJunctionTempC);
  Bench.writeOrWarn(Ok);
  return Ok ? 0 : 1;
}
