//===- bench/bench_e4_liquid_vs_air.cpp - Experiment E4 -----------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the Section 2 liquid-vs-air physics claims:
///  - liquid heat capacity 1500..4000x that of air (by volume);
///  - heat-transfer coefficients up to 100x higher;
///  - heat flow ~70x more intensive at similar surfaces and conventional
///    velocity;
///  - one FPGA needs ~1 m^3 of air or ~250 ml of water per minute.
///
//===----------------------------------------------------------------------===//

#include "fluids/Fluid.h"
#include "fluids/FluidComparison.h"
#include "support/Numerics.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "telemetry/Bench.h"

#include <cstdio>
#include <memory>
#include <vector>

using namespace rcs;
using namespace rcs::fluids;

int main() {
  telemetry::BenchReport Bench("e4_liquid_vs_air");
  auto Air = makeAir();
  auto Water = makeWater();
  auto Glycol = makeGlycolSolution(0.3);
  auto Md45 = makeMineralOilMd45();
  auto Skat = makeEngineeredDielectric();

  const double TempC = 25.0;

  std::printf("E4: liquid vs air as a heat-transfer agent (paper "
              "Section 2)\n\n");

  // --- Volumetric heat capacity ratios ------------------------------------
  std::printf("Volumetric heat capacity relative to air "
              "(paper: 1500..4000x):\n");
  Table Capacity({"fluid", "rho*cp (kJ/m^3K)", "ratio vs air"});
  std::vector<const Fluid *> Liquids = {Water.get(), Glycol.get(),
                                        Md45.get(), Skat.get()};
  double MinRatio = 1e9, MaxRatio = 0.0;
  Capacity.addRow({Air->name(),
                   formatString("%.2f",
                                Air->volumetricHeatCapacityJPerM3K(TempC) /
                                    1000.0),
                   "1"});
  for (const Fluid *Liquid : Liquids) {
    double Ratio = volumetricHeatCapacityRatio(*Liquid, *Air, TempC);
    MinRatio = std::min(MinRatio, Ratio);
    MaxRatio = std::max(MaxRatio, Ratio);
    Capacity.addRow(
        {Liquid->name(),
         formatString("%.0f",
                      Liquid->volumetricHeatCapacityJPerM3K(TempC) / 1000.0),
         formatString("%.0f", Ratio)});
  }
  std::printf("%s\n", Capacity.render().c_str());

  // --- Heat-transfer coefficient ratio vs velocity ------------------------
  std::printf("Flat-plate heat flux ratio vs air, same 50 mm surface and "
              "velocity (paper: up to ~100x HTC, ~70x heat flow at "
              "conventional velocity):\n");
  Table Htc({"velocity (m/s)", "water/air", "MD-4.5 oil/air",
             "SKAT dielectric/air"});
  double RatioAtHalf = 0.0;
  for (double Velocity : {0.2, 0.5, 1.0, 2.0}) {
    double WaterRatio =
        heatFlowIntensityRatio(*Water, *Air, 30.0, Velocity, 0.05);
    double OilRatio =
        heatFlowIntensityRatio(*Md45, *Air, 30.0, Velocity, 0.05);
    double SkatRatio =
        heatFlowIntensityRatio(*Skat, *Air, 30.0, Velocity, 0.05);
    if (approxEqual(Velocity, 0.5))
      RatioAtHalf = OilRatio;
    Htc.addRow({formatString("%.1f", Velocity),
                formatString("%.0f", WaterRatio),
                formatString("%.0f", OilRatio),
                formatString("%.0f", SkatRatio)});
  }
  std::printf("%s\n", Htc.render().c_str());

  // --- Flow budget per FPGA ------------------------------------------------
  const double FpgaPowerW = 91.0;
  const double TempRiseC = 5.0;
  double WaterFlow =
      requiredVolumeFlowM3PerS(*Water, FpgaPowerW, TempC, TempRiseC);
  double AirFlow = requiredVolumeFlowM3PerS(*Air, FpgaPowerW, TempC,
                                            TempRiseC);
  double OilFlow = requiredVolumeFlowM3PerS(*Md45, FpgaPowerW, TempC,
                                            TempRiseC);
  std::printf("Coolant flow to absorb one 91 W FPGA at dT = %.0f C:\n",
              TempRiseC);
  Table Flow({"fluid", "flow per minute", "paper says"});
  Flow.addRow({"air", formatString("%.2f m^3", AirFlow * 60.0),
               "1 m^3"});
  Flow.addRow({"water", formatString("%.0f ml", WaterFlow * 6.0e7),
               "250 ml"});
  Flow.addRow({"mineral oil MD-4.5",
               formatString("%.0f ml", OilFlow * 6.0e7), "-"});
  std::printf("%s\n", Flow.render().c_str());

  bool Ok = MinRatio > 1200.0 && MaxRatio < 4000.0 &&
            RatioAtHalf > 10.0 && AirFlow * 60.0 > 0.6 &&
            AirFlow * 60.0 < 1.4 && WaterFlow * 6.0e7 > 150.0 &&
            WaterFlow * 6.0e7 < 350.0;
  std::printf("Shape check (ratios and flow budgets in the paper's bands): "
              "%s\n",
              Ok ? "PASS" : "FAIL");
  Bench.addMetric("capacity_ratio_min", MinRatio);
  Bench.addMetric("capacity_ratio_max", MaxRatio);
  Bench.addMetric("oil_heat_flow_ratio_at_0p5ms", RatioAtHalf);
  Bench.addMetric("air_flow_m3_per_min", AirFlow * 60.0);
  Bench.addMetric("water_flow_ml_per_min", WaterFlow * 6.0e7);
  Bench.writeOrWarn(Ok);
  return Ok ? 0 : 1;
}
