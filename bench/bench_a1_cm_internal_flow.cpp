//===- bench/bench_a1_cm_internal_flow.cpp - Ablation A1 ----------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation A1: flow and temperature uniformity *inside* one module.
/// Section 2 faults first-generation immersion designs for circulation
/// "designed for one or two chips but not for an FPGA field", which
/// "leads to considerable thermal gradients". This bench resolves the CM
/// interior: per-board oil flows under two plenum designs, and the
/// chip-by-chip die temperatures along one board from the detailed
/// stackup model.
///
//===----------------------------------------------------------------------===//

#include "fluids/Fluid.h"
#include "hydraulics/InternalLoop.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "telemetry/Bench.h"
#include "thermal/Stackup.h"

#include <cmath>
#include <cstdio>

using namespace rcs;
using namespace rcs::hydraulics;

int main() {
  telemetry::BenchReport Bench("a1_cm_internal_flow");
  auto Oil = fluids::makeEngineeredDielectric();

  // --- Per-board flow distribution ----------------------------------------
  std::printf("A1: oil distribution inside one CM (12 boards)\n\n");
  InternalLoopConfig Skat;
  Skat.Design = PlenumDesign::TaperedReverse;
  InternalLoopConfig Naive;
  Naive.Design = PlenumDesign::UniformNarrow;

  InternalLoop SkatLoop = buildInternalLoop(Skat);
  InternalLoop NaiveLoop = buildInternalLoop(Naive);
  auto SkatFlows = solveInternalLoop(SkatLoop, *Oil, 29.0);
  auto NaiveFlows = solveInternalLoop(NaiveLoop, *Oil, 29.0);
  if (!SkatFlows || !NaiveFlows) {
    std::fprintf(stderr, "internal loop solve failed\n");
    return 1;
  }

  Table Flows({"board", "SKAT plena (l/min)", "narrow plena (l/min)"});
  for (size_t I = 0; I != SkatFlows->BoardFlowsM3PerS.size(); ++I)
    Flows.addRow(
        {formatString("%zu", I + 1),
         formatString("%.2f", SkatFlows->BoardFlowsM3PerS[I] * 60000.0),
         formatString("%.2f", NaiveFlows->BoardFlowsM3PerS[I] * 60000.0)});
  std::printf("%s", Flows.render().c_str());
  std::printf("imbalance: SKAT %.1f%%, narrow %.1f%%\n\n",
              SkatFlows->Balance.ImbalanceFraction * 100.0,
              NaiveFlows->Balance.ImbalanceFraction * 100.0);

  // --- Chip-by-chip temperatures along one board ---------------------------
  std::printf("Die temperatures along one CCB (detailed stackup, 8 x 91 W "
              "chips):\n");
  thermal::BoardStackupConfig Board;
  Board.BoardFlowM3PerS = SkatFlows->BoardFlowsM3PerS[0];
  Board.Sink.PinHeightM = 0.010;
  auto WellFed = thermal::solveBoardStackup(Board, *Oil);
  thermal::BoardStackupConfig Starved = Board;
  Starved.BoardFlowM3PerS = NaiveFlows->BoardFlowsM3PerS.back();
  auto StarvedResult = thermal::solveBoardStackup(Starved, *Oil);
  if (!WellFed || !StarvedResult) {
    std::fprintf(stderr, "stackup solve failed\n");
    return 1;
  }
  Table Dies({"chip along flow", "die T, SKAT flow (C)",
              "die T, starved board (C)"});
  for (int I = 0; I != 8; ++I)
    Dies.addRow({formatString("%d", I + 1),
                 formatString("%.1f", WellFed->DieTempC[I]),
                 formatString("%.1f", StarvedResult->DieTempC[I])});
  std::printf("%s", Dies.render().c_str());
  std::printf("gradient first->last chip: %.1f C (SKAT) vs %.1f C "
              "(starved); energy residual %.2f W\n\n",
              WellFed->DieGradientC, StarvedResult->DieGradientC,
              WellFed->EnergyResidualW);

  bool Ok = SkatFlows->Balance.ImbalanceFraction <
                0.5 * NaiveFlows->Balance.ImbalanceFraction &&
            StarvedResult->DieGradientC > WellFed->DieGradientC &&
            std::fabs(WellFed->EnergyResidualW) < 10.0;
  std::printf("Shape check (SKAT plena balance boards; starved boards "
              "build gradients): %s\n",
              Ok ? "PASS" : "FAIL");
  Bench.addMetric("skat_board_imbalance_fraction",
                  SkatFlows->Balance.ImbalanceFraction);
  Bench.addMetric("narrow_board_imbalance_fraction",
                  NaiveFlows->Balance.ImbalanceFraction);
  Bench.addMetric("wellfed_die_gradient_C", WellFed->DieGradientC);
  Bench.addMetric("starved_die_gradient_C", StarvedResult->DieGradientC);
  Bench.addMetric("energy_residual_W", WellFed->EnergyResidualW);
  Bench.writeOrWarn(Ok);
  return Ok ? 0 : 1;
}
