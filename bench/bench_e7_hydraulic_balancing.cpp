//===- bench/bench_e7_hydraulic_balancing.cpp - Experiment E7 ------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the Fig. 5 hydraulic-balancing result (Section 4): with the
/// reverse-return manifold layout every circulation loop sees the same
/// closed-path length, so loop flows self-balance with no balancing
/// subsystem, and isolating any loop redistributes flow evenly over the
/// rest. A direct-return layout is the baseline that shows why this
/// matters.
///
//===----------------------------------------------------------------------===//

#include "fluids/Fluid.h"
#include "hydraulics/Balancing.h"
#include "hydraulics/Manifold.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "telemetry/Bench.h"

#include <cmath>
#include <cstdio>

using namespace rcs;
using namespace rcs::hydraulics;

namespace {

std::vector<double> solveLoops(RackHydraulics &Rack) {
  auto Water = fluids::makeWater();
  auto Solution = Rack.Network.solve(*Water, 18.0, 1e-3);
  if (!Solution) {
    std::fprintf(stderr, "hydraulic solve failed: %s\n",
                 Solution.message().c_str());
    std::exit(1);
  }
  std::vector<double> Flows;
  for (EdgeId E : Rack.LoopEdges)
    Flows.push_back(Solution->EdgeFlowsM3PerS[E]);
  return Flows;
}

} // namespace

int main() {
  telemetry::BenchReport Bench("e7_hydraulic_balancing");
  std::printf("E7: manifold hydraulic balancing (paper Fig. 5, "
              "Section 4)\n\n");

  RackHydraulicsConfig Direct;
  Direct.Layout = ManifoldLayout::DirectReturn;
  RackHydraulicsConfig Reverse;
  Reverse.Layout = ManifoldLayout::ReverseReturn;

  RackHydraulics DirectRack = buildRackPrimaryLoop(Direct);
  RackHydraulics ReverseRack = buildRackPrimaryLoop(Reverse);
  std::vector<double> DirectFlows = solveLoops(DirectRack);
  std::vector<double> ReverseFlows = solveLoops(ReverseRack);

  std::printf("Per-loop flow, six circulation loops (l/min):\n");
  Table PerLoop({"loop", "direct return", "reverse return (Fig. 5)"});
  for (size_t I = 0; I != DirectFlows.size(); ++I)
    PerLoop.addRow({formatString("%zu", I + 1),
                    formatString("%.2f", DirectFlows[I] * 60000.0),
                    formatString("%.2f", ReverseFlows[I] * 60000.0)});
  std::printf("%s\n", PerLoop.render().c_str());

  FlowBalanceStats DirectStats = computeFlowBalance(DirectFlows);
  FlowBalanceStats ReverseStats = computeFlowBalance(ReverseFlows);
  std::printf("Imbalance (max-min)/mean: direct %.1f%%, reverse %.2f%%\n\n",
              DirectStats.ImbalanceFraction * 100.0,
              ReverseStats.ImbalanceFraction * 100.0);

  // Loop failure redistribution (the paper's maintenance scenario).
  auto *Valve = static_cast<BalancingValve *>(ReverseRack.Network.elementAt(
      ReverseRack.LoopEdges[2], ReverseRack.LoopValveElementIndex));
  Valve->setOpening(0.0);
  std::vector<double> AfterFailure = solveLoops(ReverseRack);
  std::printf("Reverse return after isolating loop 3:\n");
  Table Failure({"loop", "before (l/min)", "after (l/min)", "change"});
  std::vector<double> Remaining;
  for (size_t I = 0; I != AfterFailure.size(); ++I) {
    double Before = ReverseFlows[I] * 60000.0;
    double After = AfterFailure[I] * 60000.0;
    Failure.addRow({formatString("%zu", I + 1),
                    formatString("%.2f", Before),
                    formatString("%.2f", After),
                    I == 2 ? "isolated"
                           : formatString("%+.1f%%",
                                          (After / Before - 1.0) * 100.0)});
    if (I != 2)
      Remaining.push_back(AfterFailure[I]);
  }
  std::printf("%s\n", Failure.render().c_str());
  FlowBalanceStats AfterStats = computeFlowBalance(Remaining);
  std::printf("Surviving-loop imbalance after failure: %.2f%% - \"the "
              "heat-transfer agent flow is evenly changed in the rest of "
              "modules\".\n\n",
              AfterStats.ImbalanceFraction * 100.0);

  // Ablation: what valve-trim commissioning would cost on a strongly
  // imbalanced direct-return riser (the alternative the paper avoids).
  {
    RackHydraulicsConfig Harsh;
    Harsh.Layout = ManifoldLayout::DirectReturn;
    Harsh.ManifoldSegmentLengthM = 1.2;
    Harsh.ManifoldDiameterM = 0.032;
    RackHydraulics TrimRack = buildRackPrimaryLoop(Harsh);
    auto Water = fluids::makeWater();
    auto Trim = trimBalancingValves(TrimRack, *Water, 18.0);
    if (Trim && Trim->Converged) {
      double Deepest = 1.0;
      for (double Opening : Trim->ValveOpenings)
        Deepest = std::fmin(Deepest, Opening);
      std::printf("Valve-trim alternative on a harsh direct-return riser: "
                  "%d commissioning iterations, deepest valve at %.0f%% "
                  "open, mean loop flow %.1f -> %.1f l/min (throttling "
                  "losses). Reverse return needs none of this.\n\n",
                  Trim->Iterations, Deepest * 100.0,
                  Trim->MeanFlowBeforeM3PerS * 60000.0,
                  Trim->MeanFlowAfterM3PerS * 60000.0);
    }
  }

  // Scale check: a full 12-module rack still balances.
  RackHydraulicsConfig Twelve = Reverse;
  Twelve.NumLoops = 12;
  Twelve.PumpRatedFlowM3PerS = 8.0e-3;
  RackHydraulics TwelveRack = buildRackPrimaryLoop(Twelve);
  FlowBalanceStats TwelveStats =
      computeFlowBalance(solveLoops(TwelveRack));
  std::printf("Twelve-loop reverse-return imbalance: %.2f%%\n\n",
              TwelveStats.ImbalanceFraction * 100.0);

  bool Ok = ReverseStats.ImbalanceFraction < 0.05 &&
            DirectStats.ImbalanceFraction >
                2.0 * ReverseStats.ImbalanceFraction &&
            AfterStats.ImbalanceFraction < 0.05 &&
            TwelveStats.ImbalanceFraction < 0.10;
  std::printf("Shape check (reverse-return self-balances, direct-return "
              "does not, failure redistributes evenly): %s\n",
              Ok ? "PASS" : "FAIL");
  Bench.addMetric("direct_imbalance_fraction",
                  DirectStats.ImbalanceFraction);
  Bench.addMetric("reverse_imbalance_fraction",
                  ReverseStats.ImbalanceFraction);
  Bench.addMetric("post_failure_imbalance_fraction",
                  AfterStats.ImbalanceFraction);
  Bench.addMetric("twelve_loop_imbalance_fraction",
                  TwelveStats.ImbalanceFraction);
  Bench.writeOrWarn(Ok);
  return Ok ? 0 : 1;
}
