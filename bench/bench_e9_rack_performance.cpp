//===- bench/bench_e9_rack_performance.cpp - Experiment E9 --------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Section 5's rack-level claim: "it is now possible to mount
/// not less than 12 new-generation CMs, with a total performance above
/// 1 PFlops, in a single 47U computer rack", with the chilled-water plant
/// closing the loop.
///
//===----------------------------------------------------------------------===//

#include "core/Designs.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "telemetry/Bench.h"

#include <cstdio>

using namespace rcs;
using namespace rcs::rcsystem;

int main() {
  telemetry::BenchReport Bench("e9_rack_performance");
  std::printf("E9: 47U rack of SKAT modules (paper Section 5)\n\n");

  Rack SkatRack(core::makeSkatRack());
  Expected<RackReport> Report = SkatRack.solveSteadyState(25.0);
  if (!Report) {
    std::fprintf(stderr, "rack solve failed: %s\n",
                 Report.message().c_str());
    return 1;
  }

  Table T({"quantity", "paper", "simulated"});
  T.addRow({"modules per 47U rack", ">= 12",
            formatString("%d (height allows %d)",
                         SkatRack.config().NumModules,
                         SkatRack.maxModulesByHeight())});
  T.addRow({"total performance", "> 1 PFlops",
            formatString("%.3f PFlops", SkatRack.peakPflops())});
  T.addRow({"max FPGA temperature", "<= 55 C",
            formatString("%.1f C", Report->MaxJunctionTempC)});
  T.addRow({"rack IT power", "-",
            formatString("%.1f kW", Report->TotalItPowerW / 1000.0)});
  T.addRow({"chiller electrical power", "-",
            formatString("%.1f kW", Report->ChillerPowerW / 1000.0)});
  T.addRow({"pumps + module circulation", "-",
            formatString("%.1f kW",
                         (Report->PrimaryPumpPowerW +
                          Report->ModulePumpFanPowerW) /
                             1000.0)});
  T.addRow({"PUE", "-", formatString("%.3f", Report->Pue)});
  T.addRow({"loop flow imbalance", "self-balancing",
            formatString("%.2f%%",
                         Report->Balance.ImbalanceFraction * 100.0)});
  std::printf("%s\n", T.render().c_str());

  // SKAT+ projection at rack scale.
  Rack PlusRack(core::makeSkatPlusRack());
  Expected<RackReport> PlusReport = PlusRack.solveSteadyState(25.0);
  if (PlusReport)
    std::printf("SKAT+ rack projection: %.2f PFlops, PUE %.3f, max Tj "
                "%.1f C\n\n",
                PlusRack.peakPflops(), PlusReport->Pue,
                PlusReport->MaxJunctionTempC);

  bool Ok = SkatRack.peakPflops() > 1.0 &&
            SkatRack.maxModulesByHeight() >= 12 &&
            Report->MaxJunctionTempC <= 55.0 && Report->Pue < 1.35 &&
            Report->Balance.ImbalanceFraction < 0.05;
  std::printf("Shape check (>= 12 CMs, > 1 PFlops, SKAT envelope, balanced "
              "loops): %s\n",
              Ok ? "PASS" : "FAIL");
  Bench.addMetric("rack_peak_pflops", SkatRack.peakPflops());
  Bench.addMetric("rack_max_tj_C", Report->MaxJunctionTempC);
  Bench.addMetric("rack_pue", Report->Pue);
  Bench.addMetric("loop_imbalance_fraction",
                  Report->Balance.ImbalanceFraction);
  Bench.writeOrWarn(Ok);
  return Ok ? 0 : 1;
}
