//===- system/Rack.h - Computer rack assembly -------------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 47U computer rack of computational modules (paper Fig. 1-b): CMs
/// stacked one over another, each connected to the supply and return
/// manifolds of the primary chilled-water loop through the Fig. 5
/// reverse-return layout, with an industrial chiller closing the loop.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SYSTEM_RACK_H
#define RCS_SYSTEM_RACK_H

#include "hydraulics/Manifold.h"
#include "system/Chiller.h"
#include "system/Module.h"

#include <optional>
#include <string>
#include <vector>

namespace rcs {
namespace rcsystem {

/// Static configuration of a rack.
struct RackConfig {
  std::string Name = "SKAT rack";
  int HeightU = 47;
  int NumModules = 12;
  /// All modules share one configuration (homogeneous rack).
  ModuleConfig Module;
  /// Primary-loop manifold topology; NumLoops is overridden to
  /// NumModules at build time.
  hydraulics::RackHydraulicsConfig Hydraulics;
  double ChillerSupplyTempC = 18.0;
  double ChillerRatedDutyW = 130e3;
};

/// Full steady-state rack report.
struct RackReport {
  std::vector<ModuleThermalReport> Modules;
  /// Primary water flow to each module's heat exchanger.
  std::vector<double> LoopFlowsM3PerS;
  hydraulics::FlowBalanceStats Balance;

  double TotalItPowerW = 0.0;
  double TotalHeatW = 0.0;       ///< Everything the chiller must reject.
  double ChillerPowerW = 0.0;
  double PrimaryPumpPowerW = 0.0;
  double ModulePumpFanPowerW = 0.0;
  double CoolingPowerW = 0.0;    ///< Chiller + pumps + fans.
  /// Power usage effectiveness: total facility power over IT power.
  double Pue = 0.0;

  double MaxJunctionTempC = 0.0;
  double PeakGflops = 0.0;
  std::vector<std::string> Warnings;
};

/// A rack of computational modules with shared chilled-water plant.
class Rack {
public:
  explicit Rack(RackConfig Config);

  const RackConfig &config() const { return Config; }

  /// Peak throughput of the whole rack, GFLOPS.
  double peakGflops() const;

  /// Peak throughput in PFLOPS (the paper: "> 1 PFlops in a single 47U
  /// computer rack").
  double peakPflops() const;

  /// Modules that fit the rack height (sanity helper).
  int maxModulesByHeight() const;

  /// Solves the rack: primary flow distribution, then every module, then
  /// the chiller balance.
  ///
  /// \p AmbientTempC is the outdoor temperature for the chiller COP and
  /// the machine-room air temperature. \p IsolatedLoop optionally valves
  /// off one module's loop (maintenance / failure experiment); that
  /// module is reported shut down.
  Expected<RackReport>
  solveSteadyState(double AmbientTempC,
                   std::optional<int> IsolatedLoop = std::nullopt) const;

private:
  RackConfig Config;
};

} // namespace rcsystem
} // namespace rcs

#endif // RCS_SYSTEM_RACK_H
