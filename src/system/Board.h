//===- system/Board.h - Computational circuit board (CCB) ------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The computational circuit board (CCB): the paper's boards carry eight
/// high-power FPGAs at high packing density, plus (before SKAT+) a separate
/// controller FPGA that provides access, programming and monitoring. The
/// SKAT+ redesign removes the separate controller - its functions cost only
/// a few percent of one modern FPGA - because the larger 45 mm UltraScale+
/// packages otherwise no longer fit a standard 19" rack (paper Section 4).
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SYSTEM_BOARD_H
#define RCS_SYSTEM_BOARD_H

#include "fpga/Device.h"
#include "fpga/PowerModel.h"

#include <string>

namespace rcs {
namespace rcsystem {

/// Static configuration of one CCB.
struct CcbConfig {
  fpga::FpgaModel Model = fpga::FpgaModel::XCKU095;
  /// Computational FPGAs on the board (the paper: eight).
  int NumComputeFpgas = 8;
  /// True when the board carries a dedicated controller FPGA (pre-SKAT+
  /// designs); false when one compute FPGA doubles as the controller.
  bool SeparateControllerFpga = true;
  /// Fraction of one compute FPGA's resources the controller functions
  /// occupy ("only some percent of the logic capacity").
  double ControllerOverheadFraction = 0.04;
  /// Controller FPGA power relative to a compute FPGA (it is a smaller,
  /// mostly idle part).
  double ControllerPowerFraction = 0.30;
  /// Non-FPGA board power: VRM losses, memories, clocking, transceivers.
  double MiscPowerW = 45.0;
  /// Board envelope (vertical immersion orientation).
  double BoardLengthM = 0.44;
  double BoardWidthM = 0.30;
  /// Usable width inside a standard 19" chassis for FPGA sites.
  double UsableSiteWidthM = 0.285;
  /// Keep-out margin around each package for sink clamping and routing.
  double SiteMarginM = 0.0135;
};

/// A computational circuit board.
class Ccb {
public:
  explicit Ccb(CcbConfig Config);

  const CcbConfig &config() const { return Config; }
  const fpga::FpgaSpec &fpgaSpec() const { return *Spec; }

  /// Number of FPGA packages physically on the board.
  int totalFpgaCount() const;

  /// Number of FPGAs running computational kernels.
  int computeFpgaCount() const { return Config.NumComputeFpgas; }

  /// FPGA sites across the board width (two mounting rows).
  int sitesAcross() const;

  /// True when the board fits a standard 19" rack - the constraint that
  /// drives the SKAT+ controller removal (paper Section 4).
  bool fitsStandard19InchRack() const;

  /// Peak throughput of the board, GFLOPS; accounts for controller
  /// overhead stealing capacity on controller-less designs.
  double peakGflops() const;

  /// Board power when every compute FPGA runs \p Load at junction
  /// temperature \p JunctionTempC (controller and misc power included).
  double boardPowerW(const fpga::WorkloadPoint &Load,
                     double JunctionTempC) const;

  /// Power of one compute FPGA at the given point (helper for thermal
  /// solvers that track per-device temperatures).
  double computeFpgaPowerW(const fpga::WorkloadPoint &Load,
                           double JunctionTempC) const;

  /// Heat dissipated by the board minus its FPGAs (spread along the
  /// board; treated as a distributed source by thermal solvers).
  double nonFpgaPowerW(const fpga::WorkloadPoint &Load,
                       double JunctionTempC) const;

private:
  CcbConfig Config;
  const fpga::FpgaSpec *Spec;
  fpga::FpgaPowerModel PowerModel;
};

} // namespace rcsystem
} // namespace rcs

#endif // RCS_SYSTEM_BOARD_H
