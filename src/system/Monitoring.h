//===- system/Monitoring.h - Control and monitoring subsystem ---*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The control subsystem the paper requires of the liquid cooling system:
/// "sensors of level, flow, and temperature of the heat-transfer agent,
/// and a temperature sensor for cooling components". Threshold sensors
/// classify readings and the controller recommends actions (raise pump
/// speed, throttle clocks, shut down).
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SYSTEM_MONITORING_H
#define RCS_SYSTEM_MONITORING_H

#include "system/Cooling.h"

#include <string>
#include <vector>

namespace rcs {
namespace rcsystem {

/// Severity of a sensor reading.
enum class AlarmLevel { Normal, Warning, Critical };

/// Name of \p Level for reports.
const char *alarmLevelName(AlarmLevel Level);

/// A threshold classifier for one measured quantity.
///
/// Boundary convention: a reading exactly at a threshold is already IN
/// the band that threshold guards, in both directions. A high-is-bad
/// sensor with Warn = 35 classifies 35.0 as Warning; a low-is-bad flow
/// sensor with Warn = 0.7 classifies 0.7 as Warning. The alarmed bands
/// are closed at their thresholds — protection must err toward firing,
/// never toward staying quiet on the exact limit the datasheet names.
/// Non-finite readings (NaN/Inf from a failed sensor) classify as
/// Critical: a sensor that cannot be read cannot prove the plant safe.
class ThresholdSensor {
public:
  /// When \p HighIsBad, readings at or above Warn/Critical trip;
  /// otherwise readings at or below them trip (e.g. coolant flow or
  /// level).
  ThresholdSensor(std::string Name, double WarnThreshold,
                  double CriticalThreshold, bool HighIsBad = true);

  const std::string &name() const { return Name; }

  /// Classifies \p Value under the closed-boundary convention above.
  AlarmLevel classify(double Value) const;

private:
  std::string Name;
  double WarnThreshold;
  double CriticalThreshold;
  bool HighIsBad;
};

/// One evaluated sensor in a monitoring sweep.
struct SensorReading {
  std::string Name;
  double Value = 0.0;
  AlarmLevel Level = AlarmLevel::Normal;
};

/// Controller-recommended action.
enum class ControlAction {
  None,
  RaisePumpSpeed, ///< Coolant warm: push more flow.
  ReduceClock,    ///< Junctions warm: shed dynamic power.
  Shutdown        ///< Critical limit: protect the hardware.
};

/// Name of \p Action for reports.
const char *controlActionName(ControlAction Action);

/// Alarm thresholds of the CM monitoring subsystem.
struct MonitoringConfig {
  double CoolantWarnTempC = 35.0;
  double CoolantCriticalTempC = 45.0;
  double JunctionWarnTempC = 70.0;
  double JunctionCriticalTempC = 85.0;
  /// Minimum healthy coolant flow as a fraction of the design flow.
  double FlowWarnFraction = 0.7;
  double FlowCriticalFraction = 0.3;
  double DesignFlowM3PerS = 2.0e-3;
};

/// Result of evaluating one module state.
struct MonitoringReport {
  std::vector<SensorReading> Readings;
  AlarmLevel Worst = AlarmLevel::Normal;
  ControlAction Action = ControlAction::None;
};

/// The CM control subsystem.
class ControlSystem {
public:
  explicit ControlSystem(MonitoringConfig Config = MonitoringConfig());

  const MonitoringConfig &config() const { return Config; }

  /// Evaluates a steady-state (or transient snapshot) module report.
  MonitoringReport evaluate(const ModuleThermalReport &Module) const;

  /// Evaluates raw quantities (used by the transient simulator between
  /// full report rebuilds).
  MonitoringReport evaluateRaw(double CoolantHotTempC,
                               double MaxJunctionTempC,
                               double CoolantFlowM3PerS) const;

private:
  MonitoringConfig Config;
};

} // namespace rcsystem
} // namespace rcs

#endif // RCS_SYSTEM_MONITORING_H
