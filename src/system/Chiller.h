//===- system/Chiller.h - Industrial chiller model --------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The industrial water chiller that closes the paper's cooling chain
/// ("a standard water cooling system based on industrial chillers must be
/// used for cooling the liquid"). Modeled as a Carnot-fraction vapor
/// compression machine: electrical draw = duty / COP with COP a fraction of
/// the Carnot limit between the chilled-water and ambient temperatures.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SYSTEM_CHILLER_H
#define RCS_SYSTEM_CHILLER_H

#include <string>

namespace rcs {
namespace rcsystem {

/// A chilled-water plant serving one or more racks.
class Chiller {
public:
  /// \p SupplyTempC chilled water setpoint; \p RatedDutyW maximum heat it
  /// can reject; \p CarnotFraction achieved fraction of the Carnot COP.
  Chiller(std::string Name, double SupplyTempC, double RatedDutyW,
          double CarnotFraction = 0.45);

  const std::string &name() const { return Name; }
  double supplyTempC() const { return SupplyTempC; }
  double ratedDutyW() const { return RatedDutyW; }

  /// Changes the chilled-water setpoint.
  void setSupplyTempC(double TempC) { SupplyTempC = TempC; }

  /// Coefficient of performance at outdoor temperature \p AmbientTempC.
  double cop(double AmbientTempC) const;

  /// Electrical power to reject \p DutyW at \p AmbientTempC, W.
  double electricalPowerW(double DutyW, double AmbientTempC) const;

  /// True when \p DutyW exceeds the rating (the plant cannot hold the
  /// setpoint; callers should flag the condition).
  bool isOverloaded(double DutyW) const { return DutyW > RatedDutyW; }

  /// A plant sized for one SKAT rack (12 CMs at ~9 kW each plus margin).
  static Chiller makeSkatRackChiller();

private:
  std::string Name;
  double SupplyTempC;
  double RatedDutyW;
  double CarnotFraction;
};

} // namespace rcsystem
} // namespace rcs

#endif // RCS_SYSTEM_CHILLER_H
