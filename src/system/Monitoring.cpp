//===- system/Monitoring.cpp - Control and monitoring subsystem ----------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "system/Monitoring.h"

#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::rcsystem;

const char *rcs::rcsystem::alarmLevelName(AlarmLevel Level) {
  switch (Level) {
  case AlarmLevel::Normal:
    return "normal";
  case AlarmLevel::Warning:
    return "warning";
  case AlarmLevel::Critical:
    return "critical";
  }
  assert(false && "unknown alarm level");
  return "?";
}

const char *rcs::rcsystem::controlActionName(ControlAction Action) {
  switch (Action) {
  case ControlAction::None:
    return "none";
  case ControlAction::RaisePumpSpeed:
    return "raise pump speed";
  case ControlAction::ReduceClock:
    return "reduce clock";
  case ControlAction::Shutdown:
    return "shutdown";
  }
  assert(false && "unknown control action");
  return "?";
}

ThresholdSensor::ThresholdSensor(std::string NameIn, double WarnThresholdIn,
                                 double CriticalThresholdIn, bool HighIsBadIn)
    : Name(std::move(NameIn)), WarnThreshold(WarnThresholdIn),
      CriticalThreshold(CriticalThresholdIn), HighIsBad(HighIsBadIn) {
  if (HighIsBad)
    assert(CriticalThreshold >= WarnThreshold &&
           "critical must be beyond warning");
  else
    assert(CriticalThreshold <= WarnThreshold &&
           "critical must be beyond warning");
}

AlarmLevel ThresholdSensor::classify(double Value) const {
  // Fail safe: a reading that is not a number is a failed sensor, and a
  // failed protection sensor must trip, not stay silent.
  if (!std::isfinite(Value))
    return AlarmLevel::Critical;
  if (HighIsBad) {
    if (Value >= CriticalThreshold)
      return AlarmLevel::Critical;
    if (Value >= WarnThreshold)
      return AlarmLevel::Warning;
    return AlarmLevel::Normal;
  }
  if (Value <= CriticalThreshold)
    return AlarmLevel::Critical;
  if (Value <= WarnThreshold)
    return AlarmLevel::Warning;
  return AlarmLevel::Normal;
}

ControlSystem::ControlSystem(MonitoringConfig ConfigIn) : Config(ConfigIn) {}

MonitoringReport
ControlSystem::evaluate(const ModuleThermalReport &Module) const {
  return evaluateRaw(Module.CoolantHotTempC, Module.MaxJunctionTempC,
                     Module.CoolantFlowM3PerS);
}

MonitoringReport ControlSystem::evaluateRaw(double CoolantHotTempC,
                                            double MaxJunctionTempC,
                                            double CoolantFlowM3PerS) const {
  MonitoringReport Report;

  ThresholdSensor CoolantSensor("coolant temperature",
                                Config.CoolantWarnTempC,
                                Config.CoolantCriticalTempC);
  ThresholdSensor JunctionSensor("FPGA junction temperature",
                                 Config.JunctionWarnTempC,
                                 Config.JunctionCriticalTempC);
  ThresholdSensor FlowSensor(
      "coolant flow", Config.FlowWarnFraction * Config.DesignFlowM3PerS,
      Config.FlowCriticalFraction * Config.DesignFlowM3PerS,
      /*HighIsBad=*/false);

  auto record = [&Report](const ThresholdSensor &Sensor, double Value) {
    SensorReading Reading;
    Reading.Name = Sensor.name();
    Reading.Value = Value;
    Reading.Level = Sensor.classify(Value);
    if (static_cast<int>(Reading.Level) > static_cast<int>(Report.Worst))
      Report.Worst = Reading.Level;
    Report.Readings.push_back(std::move(Reading));
  };
  record(CoolantSensor, CoolantHotTempC);
  record(JunctionSensor, MaxJunctionTempC);
  record(FlowSensor, CoolantFlowM3PerS);

  // Action policy: critical anywhere -> shutdown; junction warning ->
  // shed clocks; coolant or flow warning -> push the pump harder.
  if (Report.Worst == AlarmLevel::Critical) {
    Report.Action = ControlAction::Shutdown;
    return Report;
  }
  if (Report.Worst == AlarmLevel::Normal) {
    Report.Action = ControlAction::None;
    return Report;
  }
  for (const SensorReading &Reading : Report.Readings) {
    if (Reading.Level != AlarmLevel::Warning)
      continue;
    if (Reading.Name == "FPGA junction temperature") {
      Report.Action = ControlAction::ReduceClock;
      return Report;
    }
  }
  Report.Action = ControlAction::RaisePumpSpeed;
  return Report;
}
