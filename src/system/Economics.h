//===- system/Economics.h - Cost of ownership model -------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A total-cost-of-ownership model for the cooling technologies the paper
/// compares. Section 2 claims open-loop immersion brings "high reliability
/// and low cost of the product" while the IMMERS-style proprietary loop
/// suffers "high cost of the cooling liquid, produced by only one
/// manufacturer"; this module turns those arguments into numbers: capital
/// cost of the cooling plant, electricity, coolant replacement, and
/// maintenance (fed by the Monte-Carlo availability model).
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SYSTEM_ECONOMICS_H
#define RCS_SYSTEM_ECONOMICS_H

#include "system/Cooling.h"

#include <string>

namespace rcs {
namespace rcsystem {

/// Unit prices; defaults are order-of-magnitude 2018 figures (USD).
struct CostModel {
  double ElectricityUsdPerKwh = 0.10;
  /// Value of lost compute per module-hour of downtime.
  double DowntimeUsdPerHour = 120.0;
  double ServiceCallUsd = 400.0; ///< Per repair action.

  // Cooling-plant capital (per module).
  double ImmersionTankUsd = 6000.0;
  double CoolantUsdPerLiter = 14.0; ///< Engineered dielectric.
  double CoolantVolumeLiters = 220.0;
  double OilPumpUsd = 1500.0;
  double PlateHxUsd = 2200.0;
  double ColdPlateUsdPerChip = 120.0;
  double LiquidConnectorUsd = 25.0;
  double CduUsd = 9000.0; ///< Coolant distribution unit (cold plate).
  double AirSinkUsdPerChip = 18.0;
  double FanTrayUsd = 350.0;

  /// Coolant make-up per year (drag-out, filtration losses).
  double CoolantReplacementFractionPerYear = 0.05;
};

/// One technology's cost breakdown for a module over a horizon.
struct CostReport {
  std::string Label;
  double CoolingCapexUsd = 0.0;
  double EnergyPerYearUsd = 0.0;
  double CoolantPerYearUsd = 0.0;
  double MaintenancePerYearUsd = 0.0;
  double DowntimePerYearUsd = 0.0;
  double OpexPerYearUsd = 0.0;
  double TotalUsd = 0.0; ///< Capex + horizon * opex.
};

/// Inputs describing one solved cooling design.
struct CostInputs {
  std::string Label;
  CoolingKind Kind = CoolingKind::Immersion;
  int NumFpgas = 96;
  /// Total electrical draw including PSU loss, pumps/fans (module level).
  double TotalPowerW = 0.0;
  /// Facility cooling electrical power attributable to this module
  /// (chiller / CRAC share).
  double FacilityCoolingPowerW = 0.0;
  /// Availability results for this design (copy the fields from a
  /// sim::AvailabilityReport or any other reliability source).
  double FailuresPerYear = 0.0;
  double DowntimeHoursPerYear = 0.0;
  double Availability = 1.0;
  /// Liquid connector count (cold plate only).
  int NumConnectors = 0;
  /// Fan tray count (air only).
  int NumFanTrays = 0;
};

/// Computes the cost breakdown for one design over \p HorizonYears.
CostReport computeCost(const CostInputs &Inputs, double HorizonYears,
                       const CostModel &Model = CostModel());

} // namespace rcsystem
} // namespace rcs

#endif // RCS_SYSTEM_ECONOMICS_H
