//===- system/PowerSupply.cpp - Immersion power supply -----------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "system/PowerSupply.h"

#include <algorithm>
#include <cassert>

using namespace rcs;
using namespace rcs::rcsystem;

PowerSupplyUnit::PowerSupplyUnit(std::string NameIn, double RatedPowerWIn,
                                 bool ImmersibleIn)
    : Name(std::move(NameIn)), RatedPowerW(RatedPowerWIn),
      Immersible(ImmersibleIn),
      EfficiencyCurve({{0.0, 0.80},
                       {0.10, 0.90},
                       {0.25, 0.945},
                       {0.50, 0.958},
                       {0.75, 0.960},
                       {1.00, 0.950}}) {
  assert(RatedPowerW > 0 && "PSU rating must be positive");
}

double PowerSupplyUnit::efficiencyAt(double LoadW) const {
  assert(LoadW >= 0 && "negative PSU load");
  double Fraction = std::min(LoadW / RatedPowerW, 1.0);
  return EfficiencyCurve.evaluate(Fraction);
}

double PowerSupplyUnit::lossW(double LoadW) const {
  if (LoadW <= 0.0)
    return 0.0;
  double Efficiency = efficiencyAt(LoadW);
  return LoadW * (1.0 - Efficiency) / Efficiency;
}

double PowerSupplyUnit::inputPowerW(double LoadW) const {
  return LoadW + lossW(LoadW);
}

PowerSupplyUnit PowerSupplyUnit::makeSkatImmersionPsu() {
  return PowerSupplyUnit("SKAT immersion DC/DC 380/12", 4000.0,
                         /*Immersible=*/true);
}

PowerSupplyUnit PowerSupplyUnit::makeAirCooledPsu(double RatedPowerW) {
  return PowerSupplyUnit("air-cooled PSU", RatedPowerW,
                         /*Immersible=*/false);
}
