//===- system/Rack.cpp - Computer rack assembly --------------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "system/Rack.h"

#include "support/StringUtils.h"
#include "support/Units.h"

#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::rcsystem;

Rack::Rack(RackConfig ConfigIn) : Config(std::move(ConfigIn)) {
  assert(Config.NumModules >= 1 && "a rack needs modules");
}

double Rack::peakGflops() const {
  ComputationalModule Module(Config.Module);
  return Config.NumModules * Module.peakGflops();
}

double Rack::peakPflops() const { return peakGflops() * 1e9 / units::Peta; }

int Rack::maxModulesByHeight() const {
  // Reserve 5U for manifolds, power distribution and cabling.
  return (Config.HeightU - 5) / Config.Module.HeightU;
}

Expected<RackReport>
Rack::solveSteadyState(double AmbientTempC,
                       std::optional<int> IsolatedLoop) const {
  RackReport Report;
  if (IsolatedLoop && (*IsolatedLoop < 0 || *IsolatedLoop >=
                                                Config.NumModules))
    return Expected<RackReport>::error("isolated loop index out of range");

  // --- Primary water distribution ---------------------------------------
  hydraulics::RackHydraulicsConfig HydroConfig = Config.Hydraulics;
  HydroConfig.NumLoops = Config.NumModules;
  hydraulics::RackHydraulics Hydro =
      hydraulics::buildRackPrimaryLoop(HydroConfig);
  if (IsolatedLoop) {
    auto *Valve = static_cast<hydraulics::BalancingValve *>(
        Hydro.Network.elementAt(Hydro.LoopEdges[*IsolatedLoop],
                                Hydro.LoopValveElementIndex));
    Valve->setOpening(0.0);
  }
  auto Water = fluids::makeWater();
  Expected<hydraulics::FlowSolution> Flow =
      Hydro.Network.solve(*Water, Config.ChillerSupplyTempC, 1e-3);
  if (!Flow)
    return Expected<RackReport>::error("rack hydraulic solve failed: " +
                                       Flow.message());
  for (hydraulics::EdgeId E : Hydro.LoopEdges)
    Report.LoopFlowsM3PerS.push_back(Flow->EdgeFlowsM3PerS[E]);
  Report.Balance = hydraulics::computeFlowBalance(Report.LoopFlowsM3PerS);

  double PumpFlow = Flow->EdgeFlowsM3PerS[Hydro.PumpEdge];
  hydraulics::Pump PrimaryPump = hydraulics::Pump::makeOilCirculationPump(
      "rack-primary", HydroConfig.PumpRatedFlowM3PerS,
      HydroConfig.PumpRatedHeadPa);
  Report.PrimaryPumpPowerW = PrimaryPump.electricalPowerW(PumpFlow);

  // --- Per-module thermal solves -----------------------------------------
  ComputationalModule Module(Config.Module);
  double ChillerDuty = 0.0;
  for (int I = 0; I != Config.NumModules; ++I) {
    if (IsolatedLoop && *IsolatedLoop == I) {
      // Valved off: the module is powered down for maintenance.
      ModuleThermalReport Down;
      Down.Warnings.push_back("module isolated for maintenance");
      Report.Modules.push_back(std::move(Down));
      continue;
    }
    ExternalConditions Conditions;
    Conditions.AmbientAirTempC = AmbientTempC;
    Conditions.WaterInletTempC = Config.ChillerSupplyTempC;
    Conditions.WaterFlowM3PerS = Report.LoopFlowsM3PerS[I];
    Expected<ModuleThermalReport> ModuleReport =
        Module.solveSteadyState(Conditions);
    if (!ModuleReport)
      return Expected<RackReport>::error(
          formatString("module %d failed to solve: ", I) +
          ModuleReport.message());
    Report.TotalItPowerW += ModuleReport->ItPowerW;
    Report.ModulePumpFanPowerW +=
        ModuleReport->PumpPowerW + ModuleReport->FanPowerW;
    Report.TotalHeatW += ModuleReport->TotalHeatW;
    ChillerDuty += ModuleReport->HxDutyW > 0.0 ? ModuleReport->HxDutyW
                                               : ModuleReport->TotalHeatW;
    Report.MaxJunctionTempC = std::max(Report.MaxJunctionTempC,
                                       ModuleReport->MaxJunctionTempC);
    for (const std::string &Warning : ModuleReport->Warnings)
      Report.Warnings.push_back(formatString("CM %d: ", I + 1) + Warning);
    Report.Modules.push_back(std::move(*ModuleReport));
  }

  // --- Chiller balance ----------------------------------------------------
  Chiller Plant("rack chiller", Config.ChillerSupplyTempC,
                Config.ChillerRatedDutyW);
  if (Plant.isOverloaded(ChillerDuty))
    Report.Warnings.push_back(
        formatString("chiller overloaded: duty %.0f W exceeds rating %.0f W",
                     ChillerDuty, Config.ChillerRatedDutyW));
  Report.ChillerPowerW = Plant.electricalPowerW(ChillerDuty, AmbientTempC);
  Report.CoolingPowerW = Report.ChillerPowerW + Report.PrimaryPumpPowerW +
                         Report.ModulePumpFanPowerW;

  double PsuLosses = 0.0;
  for (const ModuleThermalReport &M : Report.Modules)
    PsuLosses += M.PsuLossW;
  double FacilityPower =
      Report.TotalItPowerW + PsuLosses + Report.CoolingPowerW;
  Report.Pue = Report.TotalItPowerW > 0.0
                   ? FacilityPower / Report.TotalItPowerW
                   : 0.0;

  int ActiveModules =
      Config.NumModules - (IsolatedLoop.has_value() ? 1 : 0);
  Report.PeakGflops = ActiveModules * Module.peakGflops();
  return Report;
}
