//===- system/Module.cpp - Computational module (CM) --------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "system/Module.h"

#include <cassert>

using namespace rcs;
using namespace rcs::rcsystem;

ComputationalModule::ComputationalModule(ModuleConfig ConfigIn)
    : Config(std::move(ConfigIn)), Board(Config.Board) {
  assert(Config.NumCcbs >= 1 && "a module needs at least one CCB");
  assert(Config.HeightU >= 1 && "a module occupies at least 1U");
}

int ComputationalModule::computeFpgaCount() const {
  return Config.NumCcbs * Board.computeFpgaCount();
}

double ComputationalModule::peakGflops() const {
  return Config.NumCcbs * Board.peakGflops();
}

double ComputationalModule::boardsPerU() const {
  return static_cast<double>(Config.NumCcbs) / Config.HeightU;
}

double ComputationalModule::gflopsPerU() const {
  return peakGflops() / Config.HeightU;
}

Expected<ModuleThermalReport> ComputationalModule::solveSteadyState(
    const ExternalConditions &Conditions) const {
  return solveSteadyState(Conditions, Config.Load);
}

Expected<ModuleThermalReport> ComputationalModule::solveSteadyState(
    const ExternalConditions &Conditions, const fpga::WorkloadPoint &Load,
    const ModuleSolveOptions &Options) const {
  switch (Config.Cooling) {
  case CoolingKind::ForcedAir:
    return solveAirCooledModule(Config, Conditions, Load, Options);
  case CoolingKind::ColdPlate:
    return solveColdPlateModule(Config, Conditions, Load, Options);
  case CoolingKind::Immersion:
    return solveImmersionModule(Config, Conditions, Load, Options);
  }
  assert(false && "unknown cooling kind");
  return Expected<ModuleThermalReport>::error("unknown cooling kind");
}
