//===- system/Cooling.cpp - CM cooling solvers --------------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "system/Cooling.h"

#include "fluids/Fluid.h"
#include "hydraulics/Components.h"
#include "hydraulics/HeatExchanger.h"
#include "support/Numerics.h"
#include "support/StringUtils.h"
#include "system/Module.h"
#include "thermal/Interface.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::rcsystem;

const char *rcs::rcsystem::coolingKindName(CoolingKind Kind) {
  switch (Kind) {
  case CoolingKind::ForcedAir:
    return "forced air";
  case CoolingKind::ColdPlate:
    return "cold plate (closed loop)";
  case CoolingKind::Immersion:
    return "immersion (open loop)";
  }
  assert(false && "unknown cooling kind");
  return "?";
}

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

static std::unique_ptr<fluids::Fluid>
makeCoolant(ImmersionCoolingConfig::Coolant Kind) {
  switch (Kind) {
  case ImmersionCoolingConfig::Coolant::WhiteMineralOil:
    return fluids::makeWhiteMineralOil();
  case ImmersionCoolingConfig::Coolant::MineralOilMd45:
    return fluids::makeMineralOilMd45();
  case ImmersionCoolingConfig::Coolant::EngineeredDielectric:
    return fluids::makeEngineeredDielectric();
  }
  assert(false && "unknown coolant kind");
  return nullptr;
}

static thermal::ThermalInterface
makeTim(ImmersionCoolingConfig::TimKind Kind, double AreaM2) {
  switch (Kind) {
  case ImmersionCoolingConfig::TimKind::SiliconeGrease:
    return thermal::ThermalInterface::makeSiliconeGrease(AreaM2);
  case ImmersionCoolingConfig::TimKind::SkatInterface:
    return thermal::ThermalInterface::makeSkatInterface(AreaM2);
  case ImmersionCoolingConfig::TimKind::GraphitePad:
    return thermal::ThermalInterface::makeGraphitePad(AreaM2);
  }
  assert(false && "unknown TIM kind");
  return thermal::ThermalInterface::makeSkatInterface(AreaM2);
}

/// Aggregates PSU losses for the module's IT load split across its PSUs.
static double psuLossW(const ModuleConfig &Module, double ItPowerW,
                       bool Immersible) {
  PowerSupplyUnit Psu =
      Immersible ? PowerSupplyUnit("immersion DC/DC 380/12",
                                   Module.PsuRatedPowerW, true)
                 : PowerSupplyUnit::makeAirCooledPsu(Module.PsuRatedPowerW);
  int Count = std::max(Module.NumPsus, 1);
  return Count * Psu.lossW(ItPowerW / Count);
}

/// Fills per-report temperature limit flags and warnings.
static void finalizeLimits(const fpga::FpgaSpec &Spec,
                           ModuleThermalReport &Report) {
  Report.WithinReliableLimit =
      Report.MaxJunctionTempC <= Spec.ReliableJunctionTempC;
  Report.WithinAbsoluteLimit =
      Report.MaxJunctionTempC <= Spec.MaxJunctionTempC;
  if (!Report.WithinAbsoluteLimit)
    Report.Warnings.push_back(formatString(
        "junction %.1f C exceeds the absolute limit %.1f C",
        Report.MaxJunctionTempC, Spec.MaxJunctionTempC));
  else if (!Report.WithinReliableLimit)
    Report.Warnings.push_back(formatString(
        "junction %.1f C exceeds the long-life limit %.1f C",
        Report.MaxJunctionTempC, Spec.ReliableJunctionTempC));
}

//===----------------------------------------------------------------------===//
// Forced air
//===----------------------------------------------------------------------===//

Expected<ModuleThermalReport>
rcs::rcsystem::solveAirCooledModule(const ModuleConfig &Module,
                                    const ExternalConditions &Conditions,
                                    const fpga::WorkloadPoint &Load,
                                    const ModuleSolveOptions &Options) {
  const AirCoolingConfig &Cfg = Module.Air;
  if (Cfg.AirflowM3PerS <= 0.0 || Cfg.FlowAreaM2 <= 0.0)
    return Expected<ModuleThermalReport>::error(
        "air cooling requires positive airflow and flow area");

  Ccb Board(Module.Board);
  const fpga::FpgaSpec &Spec = Board.fpgaSpec();
  fpga::FpgaPowerModel PowerModel(Spec);
  auto Air = fluids::makeAir();
  if (Options.UseFluidPropertyCache)
    Air->enablePropertyCache();
  thermal::PlateFinHeatSink Sink("air sink", Cfg.SinkGeometry);

  double PackageArea = Spec.PackageSizeM * Spec.PackageSizeM;
  double TimR =
      thermal::ThermalInterface::makeSiliconeGrease(PackageArea)
          .freshResistanceKPerW() *
      Cfg.TimResistanceScale;

  double DuctVelocity = Cfg.AirflowM3PerS / Cfg.FlowAreaM2;
  double LaneFlow = Cfg.AirflowM3PerS / Module.NumCcbs;
  double Inlet = Conditions.AmbientAirTempC;

  // Each board's air lane preheats along the chip rows: the front row sees
  // a quarter of the lane rise, the back row three quarters.
  int FrontRow = (Board.computeFpgaCount() + 1) / 2;
  int BackRow = Board.computeFpgaCount() - FrontRow;

  double BoardHeat =
      Board.computeFpgaCount() * Spec.DynamicPowerMaxW; // Initial guess.
  if (const ModuleThermalReport *Warm = Options.WarmStart;
      Warm && Warm->ItPowerW > 0.0 &&
      Warm->Fpgas.size() == static_cast<size_t>(Module.NumCcbs) *
                                Board.computeFpgaCount())
    BoardHeat = Warm->ItPowerW / Module.NumCcbs;
  double TjFront = 0.0, TjBack = 0.0, PFront = 0.0, PBack = 0.0;
  double RFront = 0.0, RBack = 0.0;
  double FrontRef = Inlet, BackRef = Inlet;
  for (int Iter = 0; Iter != 100; ++Iter) {
    double MeanAir = Inlet + 0.5 * BoardHeat / 500.0; // Mild estimate.
    double RhoCp = Air->volumetricHeatCapacityJPerM3K(MeanAir);
    double LaneRise = BoardHeat / (RhoCp * LaneFlow);
    FrontRef = Inlet + 0.25 * LaneRise;
    BackRef = Inlet + 0.75 * LaneRise;

    RFront = Spec.ThetaJcKPerW + TimR +
             Sink.thermalResistanceKPerW(*Air, FrontRef, DuctVelocity,
                                         FrontRef + 25.0);
    RBack = Spec.ThetaJcKPerW + TimR +
            Sink.thermalResistanceKPerW(*Air, BackRef, DuctVelocity,
                                        BackRef + 25.0);
    TjFront = PowerModel.solveJunctionTempC(Load, RFront, FrontRef);
    TjBack = PowerModel.solveJunctionTempC(Load, RBack, BackRef);
    PFront = PowerModel.totalPowerW(Load, TjFront);
    PBack = PowerModel.totalPowerW(Load, TjBack);

    double NewBoardHeat = FrontRow * PFront + BackRow * PBack +
                          Board.nonFpgaPowerW(Load, TjBack);
    if (std::fabs(NewBoardHeat - BoardHeat) < 1e-7)
      break;
    BoardHeat = 0.5 * BoardHeat + 0.5 * NewBoardHeat;
  }

  ModuleThermalReport Report;
  Report.FpgaHeatW =
      Module.NumCcbs * (FrontRow * PFront + BackRow * PBack);
  Report.MiscHeatW = Module.NumCcbs * Board.nonFpgaPowerW(Load, TjBack);
  Report.ItPowerW = Report.FpgaHeatW + Report.MiscHeatW;
  Report.PsuLossW = psuLossW(Module, Report.ItPowerW, /*Immersible=*/false);
  Report.FanPowerW = Cfg.FanSpecificPowerWPerM3PerS * Cfg.AirflowM3PerS;
  Report.TotalHeatW = Report.ItPowerW + Report.PsuLossW + Report.FanPowerW;

  double RhoCp = Air->volumetricHeatCapacityJPerM3K(Inlet + 5.0);
  Report.CoolantColdTempC = Inlet;
  Report.CoolantHotTempC =
      Inlet + Report.TotalHeatW / (RhoCp * Cfg.AirflowM3PerS);
  Report.CoolantFlowM3PerS = Cfg.AirflowM3PerS;
  Report.ApproachVelocityMPerS = DuctVelocity;
  Report.MaxJunctionTempC = std::max(TjFront, TjBack);
  Report.MeanJunctionTempC =
      (FrontRow * TjFront + BackRow * TjBack) / Board.computeFpgaCount();

  for (int B = 0; B != Module.NumCcbs; ++B) {
    Report.PerBoardCoolantTempC.push_back(BackRef);
    for (int I = 0; I != Board.computeFpgaCount(); ++I) {
      FpgaThermalState State;
      bool IsFront = I < FrontRow;
      State.JunctionTempC = IsFront ? TjFront : TjBack;
      State.PowerW = IsFront ? PFront : PBack;
      State.LocalCoolantTempC = IsFront ? FrontRef : BackRef;
      State.TotalResistanceKPerW = IsFront ? RFront : RBack;
      State.BoardIndex = B;
      Report.Fpgas.push_back(State);
    }
  }
  finalizeLimits(Spec, Report);
  return Report;
}

//===----------------------------------------------------------------------===//
// Cold plate (closed loop)
//===----------------------------------------------------------------------===//

Expected<ModuleThermalReport>
rcs::rcsystem::solveColdPlateModule(const ModuleConfig &Module,
                                    const ExternalConditions &Conditions,
                                    const fpga::WorkloadPoint &Load,
                                    const ModuleSolveOptions &Options) {
  const ColdPlateCoolingConfig &Cfg = Module.ColdPlate;
  if (Cfg.WaterFlowM3PerS <= 0.0)
    return Expected<ModuleThermalReport>::error(
        "cold plate cooling requires positive water flow");

  Ccb Board(Module.Board);
  const fpga::FpgaSpec &Spec = Board.fpgaSpec();
  fpga::FpgaPowerModel PowerModel(Spec);
  auto Water = fluids::makeWater();
  if (Options.UseFluidPropertyCache)
    Water->enablePropertyCache();

  double PackageArea = Spec.PackageSizeM * Spec.PackageSizeM;
  double TimR = thermal::ThermalInterface::makeSiliconeGrease(PackageArea)
                    .freshResistanceKPerW();
  double RTotal = Spec.ThetaJcKPerW + TimR + Cfg.PlateResistanceKPerW;

  // Boards receive water in parallel; a board's plates run in series, so
  // chip i sees water preheated by chips 0..i-1.
  double BoardFlow = Cfg.WaterFlowM3PerS / Module.NumCcbs;
  double Inlet = Conditions.WaterInletTempC;
  double BoardCapacity = hydraulics::PlateHeatExchanger::capacityRateWPerK(
      *Water, BoardFlow, Inlet + 5.0);

  const int N = Board.computeFpgaCount();
  std::vector<double> ChipPower(N, Spec.DynamicPowerMaxW);
  std::vector<double> ChipTj(N, Inlet + 20.0);
  std::vector<double> LocalWater(N, Inlet);
  if (const ModuleThermalReport *Warm = Options.WarmStart;
      Warm && Warm->Fpgas.size() ==
                  static_cast<size_t>(Module.NumCcbs) * N) {
    // Boards are identical in this solver; board 0's states seed all.
    for (int I = 0; I != N; ++I) {
      ChipPower[I] = Warm->Fpgas[I].PowerW;
      ChipTj[I] = Warm->Fpgas[I].JunctionTempC;
      LocalWater[I] = Warm->Fpgas[I].LocalCoolantTempC;
    }
  }
  for (int Iter = 0; Iter != 100; ++Iter) {
    double Cumulative = 0.0;
    double MaxChange = 0.0;
    for (int I = 0; I != N; ++I) {
      LocalWater[I] = Inlet + (Cumulative + 0.5 * ChipPower[I]) /
                                  BoardCapacity;
      double Tj = PowerModel.solveJunctionTempC(Load, RTotal, LocalWater[I]);
      double P = PowerModel.totalPowerW(Load, Tj);
      MaxChange = std::max(MaxChange, std::fabs(P - ChipPower[I]));
      ChipTj[I] = Tj;
      ChipPower[I] = P;
      Cumulative += P;
    }
    if (MaxChange < 1e-7)
      break;
  }

  ModuleThermalReport Report;
  double BoardFpgaHeat = 0.0;
  for (double P : ChipPower)
    BoardFpgaHeat += P;
  Report.FpgaHeatW = Module.NumCcbs * BoardFpgaHeat;
  Report.MiscHeatW =
      Module.NumCcbs * Board.nonFpgaPowerW(Load, ChipTj.back());
  Report.ItPowerW = Report.FpgaHeatW + Report.MiscHeatW;
  Report.PsuLossW = psuLossW(Module, Report.ItPowerW, /*Immersible=*/false);
  Report.PumpPowerW = Cfg.PumpPowerW;
  Report.TotalHeatW = Report.ItPowerW + Report.PsuLossW + Report.PumpPowerW;

  // Only the plate-captured heat leaves by water; misc and PSU heat go to
  // the room air (a known weakness of per-chip plates).
  double PlateHeat = Report.FpgaHeatW;
  double TotalCapacity = hydraulics::PlateHeatExchanger::capacityRateWPerK(
      *Water, Cfg.WaterFlowM3PerS, Inlet + 5.0);
  Report.CoolantColdTempC = Inlet;
  Report.CoolantHotTempC = Inlet + PlateHeat / TotalCapacity;
  Report.WaterOutletTempC = Report.CoolantHotTempC;
  Report.CoolantFlowM3PerS = Cfg.WaterFlowM3PerS;
  Report.HxDutyW = PlateHeat;

  double SumTj = 0.0;
  for (int B = 0; B != Module.NumCcbs; ++B) {
    Report.PerBoardCoolantTempC.push_back(LocalWater.back());
    for (int I = 0; I != N; ++I) {
      FpgaThermalState State;
      State.JunctionTempC = ChipTj[I];
      State.PowerW = ChipPower[I];
      State.LocalCoolantTempC = LocalWater[I];
      State.TotalResistanceKPerW = RTotal;
      State.BoardIndex = B;
      Report.Fpgas.push_back(State);
      if (B == 0)
        SumTj += ChipTj[I];
    }
  }
  Report.MaxJunctionTempC =
      *std::max_element(ChipTj.begin(), ChipTj.end());
  Report.MeanJunctionTempC = SumTj / N;
  finalizeLimits(Spec, Report);
  return Report;
}

//===----------------------------------------------------------------------===//
// Immersion (open loop)
//===----------------------------------------------------------------------===//

Expected<ModuleThermalReport>
rcs::rcsystem::solveImmersionModule(const ModuleConfig &Module,
                                    const ExternalConditions &Conditions,
                                    const fpga::WorkloadPoint &Load,
                                    const ModuleSolveOptions &Options) {
  const ImmersionCoolingConfig &Cfg = Module.Immersion;
  if (Cfg.BathFlowAreaM2 <= 0.0)
    return Expected<ModuleThermalReport>::error(
        "immersion cooling requires a positive bath flow area");

  Ccb Board(Module.Board);
  const fpga::FpgaSpec &Spec = Board.fpgaSpec();
  fpga::FpgaPowerModel PowerModel(Spec);
  auto Oil = makeCoolant(Cfg.CoolantKind);
  auto Water = fluids::makeWater();
  if (Options.UseFluidPropertyCache) {
    Oil->enablePropertyCache();
    Water->enablePropertyCache();
  }
  thermal::PinFinHeatSink Sink("immersion sink", Cfg.SinkGeometry);

  double PackageArea = Spec.PackageSizeM * Spec.PackageSizeM;
  thermal::ThermalInterface Tim = makeTim(Cfg.Tim, PackageArea);
  double TimR = Tim.resistanceKPerW(Cfg.TimExposureHours);

  // --- Oil loop hydraulic operating point -------------------------------
  // N identical pumps in parallel push the loop flow through the HX oil
  // side and the bath; solve head(Q/N) == loss(Q).
  hydraulics::Pump OilPump = hydraulics::Pump::makeOilCirculationPump(
      "CM oil pump", Cfg.PumpRatedFlowM3PerS, Cfg.PumpRatedHeadPa);
  hydraulics::HeatExchangerPressureSide HxSide(Cfg.HxOilRatedFlowM3PerS,
                                               Cfg.HxOilRatedDropPa);
  const int Pumps = std::max(Cfg.NumPumps, 1);
  double OilTempGuess = 30.0;
  auto LoopImbalance = [&](double Q) {
    double Velocity = Q / Cfg.BathFlowAreaM2;
    double BathDrop = Cfg.BathLossCoefficient * 0.5 *
                      Oil->densityKgPerM3(OilTempGuess) * Velocity *
                      Velocity;
    return OilPump.headPa(Q / Pumps) -
           HxSide.pressureDropPa(Q, *Oil, OilTempGuess) - BathDrop;
  };
  // Expand the bracket until the loop resistance overcomes the
  // (extrapolated) pump head; undersized pumps run beyond their rated
  // point.
  double QMax = Pumps * 1.6 * Cfg.PumpRatedFlowM3PerS;
  for (int Attempt = 0; Attempt != 40 && LoopImbalance(QMax) > 0.0;
       ++Attempt)
    QMax *= 1.5;
  Expected<double> OilFlow = findRootBrent(LoopImbalance, 1e-8, QMax);
  if (!OilFlow)
    return Expected<ModuleThermalReport>::error(
        "oil loop has no operating point: " + OilFlow.message());
  double Q = *OilFlow;
  double ApproachVelocity = Q / Cfg.BathFlowAreaM2;
  double PumpHydraulicW = Q * std::max(OilPump.headPa(Q / Pumps), 0.0);
  double PumpElectricalW = Pumps * OilPump.electricalPowerW(Q / Pumps);

  // --- Coupled heat / temperature fixed point ---------------------------
  const int N = Board.computeFpgaCount();
  const int Boards = Module.NumCcbs;
  double CWater = hydraulics::PlateHeatExchanger::capacityRateWPerK(
      *Water, Conditions.WaterFlowM3PerS, Conditions.WaterInletTempC + 4.0);
  if (CWater <= 0.0)
    return Expected<ModuleThermalReport>::error(
        "immersion module needs primary water flow at its heat exchanger");
  hydraulics::PlateHeatExchanger Hx("CM oil/water HX", Cfg.HxUaWPerK);

  double TotalHeat =
      Boards * (N * Spec.DynamicPowerMaxW + Module.Board.MiscPowerW);
  double OilCold = Conditions.WaterInletTempC + 5.0;
  std::vector<double> BoardInlet(Boards, OilCold);
  std::vector<double> BoardLocal(Boards, OilCold);
  std::vector<double> BoardTj(Boards, OilCold + 15.0);
  std::vector<double> BoardChipPower(Boards, Spec.DynamicPowerMaxW);
  std::vector<double> BoardR(Boards, 0.2);
  if (const ModuleThermalReport *Warm = Options.WarmStart;
      Warm && Warm->TotalHeatW > 0.0 &&
      Warm->Fpgas.size() == static_cast<size_t>(Boards) * N &&
      Warm->PerBoardCoolantTempC.size() == static_cast<size_t>(Boards)) {
    TotalHeat = Warm->TotalHeatW;
    OilCold = Warm->CoolantColdTempC;
    for (int B = 0; B != Boards; ++B) {
      const FpgaThermalState &Chip = Warm->Fpgas[static_cast<size_t>(B) * N];
      BoardLocal[B] = Warm->PerBoardCoolantTempC[B];
      BoardTj[B] = Chip.JunctionTempC;
      BoardChipPower[B] = Chip.PowerW;
    }
  }

  double PsuLoss = 0.0;
  for (int Iter = 0; Iter != 120; ++Iter) {
    double MeanOil = OilCold + 2.0;
    double COil = Q * Oil->densityKgPerM3(MeanOil) *
                  Oil->specificHeatJPerKgK(MeanOil);
    double CMin = std::min(COil, CWater);
    double CMax = std::max(COil, CWater);
    double Cr = CMin / CMax;
    double Ntu = Cfg.HxUaWPerK / CMin;
    double Eps = 0.0;
    if (std::fabs(1.0 - Cr) < 1e-9) {
      Eps = Ntu / (1.0 + Ntu);
    } else {
      double E = std::exp(-Ntu * (1.0 - Cr));
      Eps = (1.0 - E) / (1.0 - Cr * E);
    }
    // Steady state: all oil-side heat crosses the HX.
    OilCold = Conditions.WaterInletTempC +
              TotalHeat * (1.0 / (Eps * CMin) - 1.0 / COil);
    OilTempGuess = OilCold + TotalHeat / COil;

    // Oil distribution across the boards.
    double MaxChange = 0.0;
    double SumBoards = 0.0;
    double Cumulative = 0.0;
    for (int B = 0; B != Boards; ++B) {
      double BoardHeat =
          N * BoardChipPower[B] + Module.Board.MiscPowerW;
      double BoardFlow =
          Cfg.Distribution ==
                  ImmersionCoolingConfig::OilDistribution::ParallelAcrossBoards
              ? Q / Boards
              : Q;
      double CBoard = BoardFlow * Oil->densityKgPerM3(OilCold + 2.0) *
                      Oil->specificHeatJPerKgK(OilCold + 2.0);
      double Rise = BoardHeat / CBoard;
      if (Cfg.Distribution ==
          ImmersionCoolingConfig::OilDistribution::ParallelAcrossBoards) {
        BoardInlet[B] = OilCold;
        BoardLocal[B] = OilCold + 0.5 * Rise;
      } else {
        BoardInlet[B] = OilCold + Cumulative;
        BoardLocal[B] = BoardInlet[B] + 0.5 * Rise;
        Cumulative += Rise;
      }
      double SinkR = Sink.thermalResistanceKPerW(
          *Oil, BoardLocal[B], ApproachVelocity, BoardLocal[B] + 20.0);
      BoardR[B] = Spec.ThetaJcKPerW + TimR + SinkR;
      double Tj =
          PowerModel.solveJunctionTempC(Load, BoardR[B], BoardLocal[B]);
      double P = PowerModel.totalPowerW(Load, Tj);
      MaxChange = std::max(MaxChange, std::fabs(P - BoardChipPower[B]));
      BoardTj[B] = Tj;
      BoardChipPower[B] = P;
      SumBoards += N * P + Module.Board.MiscPowerW;
    }

    double ItPower = SumBoards;
    PsuLoss = psuLossW(Module, ItPower, /*Immersible=*/true);
    // Pump heat: hydraulic work always dissipates in the oil; motor
    // losses join it only for the immersed-pump (SKAT+) design.
    double PumpHeat =
        Cfg.ImmersedPumps ? PumpElectricalW : PumpHydraulicW;
    double NewTotal = ItPower + PsuLoss + PumpHeat;
    bool HeatConverged = std::fabs(NewTotal - TotalHeat) < 1e-6;
    TotalHeat = 0.5 * TotalHeat + 0.5 * NewTotal;
    if (HeatConverged && MaxChange < 1e-7)
      break;
  }

  ModuleThermalReport Report;
  double FpgaHeat = 0.0;
  for (int B = 0; B != Boards; ++B)
    FpgaHeat += N * BoardChipPower[B];
  Report.FpgaHeatW = FpgaHeat;
  Report.MiscHeatW = Boards * Module.Board.MiscPowerW;
  Report.ItPowerW = Report.FpgaHeatW + Report.MiscHeatW;
  Report.PsuLossW = PsuLoss;
  Report.PumpPowerW = PumpElectricalW;
  Report.TotalHeatW = TotalHeat;
  Report.CoolantFlowM3PerS = Q;
  Report.ApproachVelocityMPerS = ApproachVelocity;
  Report.CoolantColdTempC = OilCold;

  double MeanOil = OilCold + 2.0;
  double COil =
      Q * Oil->densityKgPerM3(MeanOil) * Oil->specificHeatJPerKgK(MeanOil);
  Report.CoolantHotTempC = OilCold + TotalHeat / COil;
  auto Exchange = Hx.transfer(Report.CoolantHotTempC, COil,
                              Conditions.WaterInletTempC, CWater);
  Report.HxDutyW = Exchange.DutyW;
  Report.HxEffectiveness = Exchange.Effectiveness;
  Report.WaterOutletTempC = Exchange.ColdOutletTempC;

  double SumTj = 0.0;
  double MaxTj = -1e9;
  for (int B = 0; B != Boards; ++B) {
    Report.PerBoardCoolantTempC.push_back(BoardLocal[B]);
    SumTj += BoardTj[B];
    MaxTj = std::max(MaxTj, BoardTj[B]);
    for (int I = 0; I != N; ++I) {
      FpgaThermalState State;
      State.JunctionTempC = BoardTj[B];
      State.PowerW = BoardChipPower[B];
      State.LocalCoolantTempC = BoardLocal[B];
      State.TotalResistanceKPerW = BoardR[B];
      State.BoardIndex = B;
      Report.Fpgas.push_back(State);
    }
  }
  Report.MaxJunctionTempC = MaxTj;
  Report.MeanJunctionTempC = SumTj / Boards;
  if (Report.CoolantHotTempC > Oil->maxOperatingTempC())
    Report.Warnings.push_back(
        formatString("coolant %.1f C exceeds its operating limit %.1f C",
                     Report.CoolantHotTempC, Oil->maxOperatingTempC()));
  finalizeLimits(Spec, Report);
  return Report;
}
