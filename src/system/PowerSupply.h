//===- system/PowerSupply.h - Immersion power supply ------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The immersion power supply unit the authors designed: DC/DC 380 V to
/// 12 V conversion at up to 4 kW, feeding four CCBs, fully submerged in the
/// dielectric coolant (paper Section 3). Conversion losses are heat dumped
/// into the coolant.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SYSTEM_POWERSUPPLY_H
#define RCS_SYSTEM_POWERSUPPLY_H

#include "support/Interp.h"

#include <string>

namespace rcs {
namespace rcsystem {

/// A DC/DC power supply unit with a load-dependent efficiency curve.
class PowerSupplyUnit {
public:
  /// \p RatedPowerW output rating; \p Immersible true for the oil-bath
  /// design (its losses heat the coolant rather than the room air).
  PowerSupplyUnit(std::string Name, double RatedPowerW, bool Immersible);

  const std::string &name() const { return Name; }
  double ratedPowerW() const { return RatedPowerW; }
  bool isImmersible() const { return Immersible; }

  /// Efficiency at \p LoadW output (clamped to the rating).
  double efficiencyAt(double LoadW) const;

  /// Conversion loss heat at \p LoadW output, W.
  double lossW(double LoadW) const;

  /// Input power drawn from the 380 V bus at \p LoadW output, W.
  double inputPowerW(double LoadW) const;

  /// The SKAT immersion PSU: 380/12 V, 4 kW, feeds four CCBs.
  static PowerSupplyUnit makeSkatImmersionPsu();

  /// A conventional air-cooled server PSU of the same rating (baseline).
  static PowerSupplyUnit makeAirCooledPsu(double RatedPowerW);

private:
  std::string Name;
  double RatedPowerW;
  bool Immersible;
  LinearTable EfficiencyCurve; ///< Efficiency vs load fraction.
};

} // namespace rcsystem
} // namespace rcs

#endif // RCS_SYSTEM_POWERSUPPLY_H
