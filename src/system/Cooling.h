//===- system/Cooling.h - CM cooling solvers --------------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Steady-state cooling solvers for a computational module under the three
/// cooling technologies the paper compares:
///  - ForcedAir: the Rigel-2 / Taygeta generation (Section 1);
///  - ColdPlate: closed-loop liquid cooling (Section 2's SKIF-Avrora /
///    Aquasar discussion);
///  - Immersion: the paper's open-loop design (Sections 3-4).
///
/// Every solver iterates chip power and temperature to a joint fixed point
/// (leakage feedback) and returns a ModuleThermalReport.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SYSTEM_COOLING_H
#define RCS_SYSTEM_COOLING_H

#include "fpga/PowerModel.h"
#include "support/Status.h"
#include "system/Board.h"
#include "thermal/HeatSink.h"

#include <string>
#include <vector>

namespace rcs {
namespace rcsystem {

/// Cooling technology of a computational module.
enum class CoolingKind { ForcedAir, ColdPlate, Immersion };

/// Human-readable cooling kind.
const char *coolingKindName(CoolingKind Kind);

/// Forced-air cooling parameters (per module).
struct AirCoolingConfig {
  /// Total chassis airflow.
  double AirflowM3PerS = 0.30;
  /// Free flow cross-section; sets the duct velocity over the sinks.
  double FlowAreaM2 = 0.08;
  /// Per-FPGA plate-fin sink.
  thermal::PlateFinGeometry SinkGeometry;
  /// Fan power per unit airflow (system fans at typical pressure).
  double FanSpecificPowerWPerM3PerS = 900.0;
  /// Thermal grease bond-line multiplier (aging studies).
  double TimResistanceScale = 1.0;
};

/// Closed-loop cold-plate cooling parameters (per module).
struct ColdPlateCoolingConfig {
  /// Base-to-water resistance of one chip's plate (microchannel class).
  double PlateResistanceKPerW = 0.045;
  /// Secondary water flow through the module's plates.
  double WaterFlowM3PerS = 5.0e-4;
  /// Circulation pump electrical power.
  double PumpPowerW = 150.0;
  /// Number of leak/humidity sensors the design needs (complexity metric
  /// from Section 2; informational).
  int LeakSensorCount = 24;
};

/// Open-loop immersion cooling parameters (per module).
struct ImmersionCoolingConfig {
  /// Dielectric coolant choice.
  enum class Coolant { WhiteMineralOil, MineralOilMd45, EngineeredDielectric };
  Coolant CoolantKind = Coolant::EngineeredDielectric;

  /// Oil circulation pump(s) of the heat-exchange section.
  double PumpRatedFlowM3PerS = 2.2e-3;
  double PumpRatedHeadPa = 6.0e4;
  int NumPumps = 1;
  /// SKAT+ design change: pumps submerged in the bath (fewer components,
  /// their losses heat the oil).
  bool ImmersedPumps = false;

  /// Free flow cross-section past the boards; sets the sink approach
  /// velocity.
  double BathFlowAreaM2 = 0.030;
  /// Lumped loss coefficient of the bath + plena, referenced to the bath
  /// velocity dynamic head.
  double BathLossCoefficient = 12.0;

  /// Per-FPGA pin-fin sink (the solder-pin turbulator design).
  thermal::PinFinGeometry SinkGeometry;

  /// Oil-to-water plate heat exchanger.
  double HxUaWPerK = 3000.0;
  double HxOilRatedFlowM3PerS = 2.2e-3;
  double HxOilRatedDropPa = 3.0e4;

  /// Thermal interface choice and accumulated immersion exposure.
  enum class TimKind { SiliconeGrease, SkatInterface, GraphitePad };
  TimKind Tim = TimKind::SkatInterface;
  double TimExposureHours = 0.0;

  /// Oil distribution across boards: the SKAT circulation feeds all
  /// boards in parallel; first-generation single-chip designs effectively
  /// run boards in series and build up "considerable thermal gradients".
  enum class OilDistribution { ParallelAcrossBoards, SeriesAlongBoards };
  OilDistribution Distribution = OilDistribution::ParallelAcrossBoards;
};

/// Boundary conditions a module sees from the room and the rack loop.
struct ExternalConditions {
  double AmbientAirTempC = 25.0;
  /// Primary chilled water at the module heat exchanger.
  double WaterInletTempC = 18.0;
  double WaterFlowM3PerS = 8.0e-4;
};

// Forward declaration for ModuleSolveOptions::WarmStart.
struct ModuleThermalReport;

/// Options for the module steady-state cooling solvers.
struct ModuleSolveOptions {
  /// Cache fluid property evaluations inside the solver's fixed-point
  /// loops (see fluids::Fluid::enablePropertyCache). Off by default so
  /// results evaluate the exact property tables; the cached grid agrees
  /// only to floating-point rounding (~1e-15 relative). Opt in where
  /// repeated-solve throughput matters (sweeps, design exploration).
  bool UseFluidPropertyCache = false;

  /// Warm-start the coupled heat/temperature fixed point from a prior
  /// report of the *same module shape* — the trim-loop and design-sweep
  /// pattern, mirroring FlowSolveOptions::WarmStartPressuresPa. The
  /// solver seeds its iteration state (total heat, per-board chip power
  /// and coolant temperatures) from the report instead of the nameplate
  /// guess, converging in 1-2 sweeps instead of tens. Ignored when null
  /// or when the report's shape does not match the module; like the
  /// hydraulic warm start, the result agrees with a cold solve to the
  /// fixed point's convergence tolerance, not bit-for-bit.
  const ModuleThermalReport *WarmStart = nullptr;
};

/// Thermal state of one compute FPGA.
struct FpgaThermalState {
  double JunctionTempC = 0.0;
  double PowerW = 0.0;
  /// Coolant (air or oil) temperature local to this device's sink.
  double LocalCoolantTempC = 0.0;
  /// Junction-to-coolant resistance used for this device.
  double TotalResistanceKPerW = 0.0;
  int BoardIndex = 0;
};

/// Full steady-state report for one module.
struct ModuleThermalReport {
  // Power breakdown, W.
  double FpgaHeatW = 0.0;
  double MiscHeatW = 0.0;   ///< Controller FPGAs, memories, VRM losses.
  double PsuLossW = 0.0;
  double PumpPowerW = 0.0;  ///< Coolant circulation (liquid systems).
  double FanPowerW = 0.0;   ///< Air movers (air systems).
  double TotalHeatW = 0.0;  ///< All heat leaving the module.
  double ItPowerW = 0.0;    ///< FPGA + misc (useful compute power).

  // Temperatures, C.
  double MaxJunctionTempC = 0.0;
  double MeanJunctionTempC = 0.0;
  double CoolantColdTempC = 0.0; ///< Oil after HX / chassis inlet air.
  double CoolantHotTempC = 0.0;  ///< Oil before HX / chassis outlet air.
  double WaterOutletTempC = 0.0; ///< Primary loop return (liquid only).

  // Flows.
  double CoolantFlowM3PerS = 0.0;
  double ApproachVelocityMPerS = 0.0;
  double HxDutyW = 0.0;
  double HxEffectiveness = 0.0;

  std::vector<FpgaThermalState> Fpgas;
  std::vector<double> PerBoardCoolantTempC;
  std::vector<std::string> Warnings;

  /// Max junction within the paper's long-life limit (65..70 C band).
  bool WithinReliableLimit = true;
  /// Max junction within the absolute device limit.
  bool WithinAbsoluteLimit = true;

  /// Overheat of the hottest junction relative to \p AmbientTempC - the
  /// metric the paper reports for Rigel-2 (+33.1 C) and Taygeta (+47.9 C).
  double overheatC(double AmbientTempC) const {
    return MaxJunctionTempC - AmbientTempC;
  }
};

// Forward declaration; defined in Module.h.
struct ModuleConfig;

/// Solves an air-cooled module.
Expected<ModuleThermalReport>
solveAirCooledModule(const ModuleConfig &Module,
                     const ExternalConditions &Conditions,
                     const fpga::WorkloadPoint &Load,
                     const ModuleSolveOptions &Options = ModuleSolveOptions());

/// Solves a cold-plate (closed-loop) module.
Expected<ModuleThermalReport>
solveColdPlateModule(const ModuleConfig &Module,
                     const ExternalConditions &Conditions,
                     const fpga::WorkloadPoint &Load,
                     const ModuleSolveOptions &Options = ModuleSolveOptions());

/// Solves an immersion (open-loop) module.
Expected<ModuleThermalReport>
solveImmersionModule(const ModuleConfig &Module,
                     const ExternalConditions &Conditions,
                     const fpga::WorkloadPoint &Load,
                     const ModuleSolveOptions &Options = ModuleSolveOptions());

} // namespace rcsystem
} // namespace rcs

#endif // RCS_SYSTEM_COOLING_H
