//===- system/Economics.cpp - Cost of ownership model --------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "system/Economics.h"

#include <cassert>

using namespace rcs;
using namespace rcs::rcsystem;

CostReport rcs::rcsystem::computeCost(const CostInputs &Inputs,
                                      double HorizonYears,
                                      const CostModel &Model) {
  assert(HorizonYears > 0 && "horizon must be positive");
  CostReport Report;
  Report.Label = Inputs.Label;

  // --- Cooling-plant capital ------------------------------------------------
  switch (Inputs.Kind) {
  case CoolingKind::Immersion:
    Report.CoolingCapexUsd =
        Model.ImmersionTankUsd +
        Model.CoolantUsdPerLiter * Model.CoolantVolumeLiters +
        Model.OilPumpUsd + Model.PlateHxUsd;
    break;
  case CoolingKind::ColdPlate:
    Report.CoolingCapexUsd =
        Model.ColdPlateUsdPerChip * Inputs.NumFpgas +
        Model.LiquidConnectorUsd * Inputs.NumConnectors + Model.CduUsd;
    break;
  case CoolingKind::ForcedAir:
    Report.CoolingCapexUsd = Model.AirSinkUsdPerChip * Inputs.NumFpgas +
                             Model.FanTrayUsd * Inputs.NumFanTrays;
    break;
  }

  // --- Yearly operating costs ------------------------------------------------
  const double HoursPerYear = 8766.0;
  double EnergyKwhPerYear =
      (Inputs.TotalPowerW + Inputs.FacilityCoolingPowerW) / 1000.0 *
      HoursPerYear * Inputs.Availability;
  Report.EnergyPerYearUsd = EnergyKwhPerYear * Model.ElectricityUsdPerKwh;

  if (Inputs.Kind == CoolingKind::Immersion)
    Report.CoolantPerYearUsd = Model.CoolantUsdPerLiter *
                               Model.CoolantVolumeLiters *
                               Model.CoolantReplacementFractionPerYear;

  Report.MaintenancePerYearUsd =
      Inputs.FailuresPerYear * Model.ServiceCallUsd;
  Report.DowntimePerYearUsd =
      Inputs.DowntimeHoursPerYear * Model.DowntimeUsdPerHour;

  Report.OpexPerYearUsd = Report.EnergyPerYearUsd +
                          Report.CoolantPerYearUsd +
                          Report.MaintenancePerYearUsd +
                          Report.DowntimePerYearUsd;
  Report.TotalUsd =
      Report.CoolingCapexUsd + HorizonYears * Report.OpexPerYearUsd;
  return Report;
}
