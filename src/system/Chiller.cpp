//===- system/Chiller.cpp - Industrial chiller model --------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "system/Chiller.h"

#include "support/Units.h"

#include <algorithm>
#include <cassert>

using namespace rcs;
using namespace rcs::rcsystem;

Chiller::Chiller(std::string NameIn, double SupplyTempCIn, double RatedDutyWIn,
                 double CarnotFractionIn)
    : Name(std::move(NameIn)), SupplyTempC(SupplyTempCIn),
      RatedDutyW(RatedDutyWIn), CarnotFraction(CarnotFractionIn) {
  assert(RatedDutyW > 0 && "chiller rating must be positive");
  assert(CarnotFraction > 0.1 && CarnotFraction < 0.8 &&
         "implausible Carnot fraction");
}

double Chiller::cop(double AmbientTempC) const {
  // Condensing temperature runs ~10 C above ambient; evaporator ~3 C
  // below the supply setpoint.
  double CondenserK = units::celsiusToKelvin(AmbientTempC + 10.0);
  double EvaporatorK = units::celsiusToKelvin(SupplyTempC - 3.0);
  double Lift = CondenserK - EvaporatorK;
  // Free-cooling regime: tiny or negative lift is clamped to a high COP.
  if (Lift < 2.0)
    return 15.0;
  double Carnot = EvaporatorK / Lift;
  return std::min(CarnotFraction * Carnot, 15.0);
}

double Chiller::electricalPowerW(double DutyW, double AmbientTempC) const {
  assert(DutyW >= 0 && "negative chiller duty");
  return DutyW / cop(AmbientTempC);
}

Chiller Chiller::makeSkatRackChiller() {
  // 12 CMs x ~9 kW plus pumps: rate at 130 kW, 18 C supply water.
  return Chiller("SKAT rack chiller", 18.0, 130e3);
}
