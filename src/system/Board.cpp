//===- system/Board.cpp - Computational circuit board (CCB) -----------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "system/Board.h"

#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::rcsystem;

Ccb::Ccb(CcbConfig ConfigIn)
    : Config(ConfigIn), Spec(&fpga::getFpgaSpec(ConfigIn.Model)),
      PowerModel(*Spec) {
  assert(Config.NumComputeFpgas >= 1 && "a CCB needs compute FPGAs");
  assert(Config.ControllerOverheadFraction >= 0.0 &&
         Config.ControllerOverheadFraction < 0.5 &&
         "controller overhead should be a few percent");
}

int Ccb::totalFpgaCount() const {
  return Config.NumComputeFpgas + (Config.SeparateControllerFpga ? 1 : 0);
}

int Ccb::sitesAcross() const {
  // Packages mount in two rows along the board; round up.
  return (totalFpgaCount() + 1) / 2;
}

bool Ccb::fitsStandard19InchRack() const {
  double SitePitch = Spec->PackageSizeM + Config.SiteMarginM;
  return sitesAcross() * SitePitch <= Config.UsableSiteWidthM;
}

double Ccb::peakGflops() const {
  double Boards = static_cast<double>(Config.NumComputeFpgas);
  if (!Config.SeparateControllerFpga)
    Boards -= Config.ControllerOverheadFraction;
  return Boards * Spec->PeakGflops;
}

double Ccb::computeFpgaPowerW(const fpga::WorkloadPoint &Load,
                              double JunctionTempC) const {
  return PowerModel.totalPowerW(Load, JunctionTempC);
}

double Ccb::nonFpgaPowerW(const fpga::WorkloadPoint &Load,
                          double JunctionTempC) const {
  double Misc = Config.MiscPowerW;
  if (Config.SeparateControllerFpga) {
    // The controller FPGA runs cooler and far below full utilization.
    Misc += Config.ControllerPowerFraction *
            PowerModel.totalPowerW(Load, JunctionTempC - 10.0);
  }
  return Misc;
}

double Ccb::boardPowerW(const fpga::WorkloadPoint &Load,
                        double JunctionTempC) const {
  return Config.NumComputeFpgas * computeFpgaPowerW(Load, JunctionTempC) +
         nonFpgaPowerW(Load, JunctionTempC);
}
