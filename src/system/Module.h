//===- system/Module.h - Computational module (CM) --------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The computational module (CM): the paper's 19"-rack building block. A
/// CM aggregates computational circuit boards, power supplies and a cooling
/// system; the new-generation design (Fig. 1-a) is a 3U casing whose
/// computational section holds 12..16 CCBs immersed in dielectric coolant
/// and whose heat-exchange section holds the pump and plate heat exchanger.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SYSTEM_MODULE_H
#define RCS_SYSTEM_MODULE_H

#include "system/Board.h"
#include "system/Cooling.h"
#include "system/PowerSupply.h"

#include <string>

namespace rcs {
namespace rcsystem {

/// Static configuration of one computational module.
struct ModuleConfig {
  std::string Name = "CM";
  int HeightU = 3;
  int NumCcbs = 12;
  CcbConfig Board;
  /// Default workload when none is passed to the solver.
  fpga::WorkloadPoint Load;
  int NumPsus = 3;
  double PsuRatedPowerW = 4000.0;

  CoolingKind Cooling = CoolingKind::Immersion;
  AirCoolingConfig Air;
  ColdPlateCoolingConfig ColdPlate;
  ImmersionCoolingConfig Immersion;
};

/// A computational module: configuration + derived metrics + solvers.
class ComputationalModule {
public:
  explicit ComputationalModule(ModuleConfig Config);

  const ModuleConfig &config() const { return Config; }
  const Ccb &board() const { return Board; }

  /// Total compute FPGAs in the module.
  int computeFpgaCount() const;

  /// Peak throughput of the module, GFLOPS.
  double peakGflops() const;

  /// Packing density: CCBs per rack unit of height.
  double boardsPerU() const;

  /// Specific performance: GFLOPS per rack unit.
  double gflopsPerU() const;

  /// Steady state under the module's default workload.
  Expected<ModuleThermalReport>
  solveSteadyState(const ExternalConditions &Conditions) const;

  /// Steady state under an explicit workload. \p Options tunes solver
  /// internals (e.g. the fluid property cache for repeated-solve
  /// throughput) without changing the physical configuration.
  Expected<ModuleThermalReport>
  solveSteadyState(const ExternalConditions &Conditions,
                   const fpga::WorkloadPoint &Load,
                   const ModuleSolveOptions &Options =
                       ModuleSolveOptions()) const;

private:
  ModuleConfig Config;
  Ccb Board;
};

} // namespace rcsystem
} // namespace rcs

#endif // RCS_SYSTEM_MODULE_H
