//===- faults/Sweep.h - Parallel reliability sweeps -------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monte-Carlo reliability sweeps over a fault scenario: N replicates,
/// each drawing its hazard schedule from RandomEngine(Seed, replicate),
/// run on a thread pool with per-replicate result slots and a sequential
/// replicate-ordered reduction — the same determinism scheme as
/// sim/MonteCarlo.h, so the report is bit-identical for a given seed at
/// any thread count. Reports MTTF, availability, throughput retained and
/// a thermal-excursion histogram.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_FAULTS_SWEEP_H
#define RCS_FAULTS_SWEEP_H

#include "faults/Engine.h"
#include "faults/Scenario.h"
#include "support/Status.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace rcs {
namespace faults {

/// Live progress of a running sweep, handed to SweepConfig::OnProgress.
/// Computed entirely from a side channel (atomic completion tallies),
/// never from the replicate slots the report reduces over, so enabling
/// progress cannot perturb the bit-identical report guarantee.
struct SweepProgress {
  int Completed = 0;
  int Total = 0;
  double ElapsedS = 0.0;
  /// Remaining-time estimate from the mean completed-replicate rate;
  /// < 0 until at least one replicate has finished.
  double EtaS = -1.0;
  /// Running mean availability over completed replicates (order of
  /// completion, so this is an estimate — the report's mean is the
  /// deterministic one).
  double MeanAvailabilityFraction = 1.0;
  /// Completed replicates that saw a Critical alarm so far.
  int Criticals = 0;
};

/// Sweep tunables.
struct SweepConfig {
  int NumReplicates = 16;
  /// Worker threads; 1 = serial, <= 0 = all hardware threads. The
  /// report does not depend on this.
  int NumThreads = 1;
  /// Invoked (serialized, from worker threads) at most once per
  /// ProgressPeriodS as replicates complete, plus once at the end.
  /// Side-channel only: the report is bit-identical with or without it.
  std::function<void(const SweepProgress &)> OnProgress;
  /// Minimum seconds between OnProgress invocations.
  double ProgressPeriodS = 1.0;
};

/// Per-replicate figures kept in the report (events are dropped).
struct ReplicateSummary {
  int Replicate = 0;
  double AvailabilityFraction = 1.0;
  double ThroughputRetainedFraction = 1.0;
  double MaxJunctionC = 0.0;
  /// < 0 = the replicate never went Critical.
  double TimeToFirstCriticalS = -1.0;
  int FaultsInjected = 0;
  int ModulesShutDown = 0;
  bool SafeDegradedEnd = true;
  /// Physics-audit fold of the replicate (see ScenarioOutcome).
  double AuditMaxEnergyFraction = 0.0;
  uint64_t AuditViolationCount = 0;
  bool AuditWithinBudget = true;
};

/// Aggregated sweep results.
struct SweepReport {
  int NumReplicates = 0;
  uint64_t Seed = 0;
  std::vector<ReplicateSummary> Replicates;
  double MeanAvailabilityFraction = 1.0;
  double MinAvailabilityFraction = 1.0;
  double MeanThroughputRetainedFraction = 1.0;
  double MeanMaxJunctionC = 0.0;
  double PeakJunctionC = 0.0;
  /// Fraction of replicates that saw a Critical alarm.
  double CriticalFraction = 0.0;
  /// Horizon-censored MTTF estimate: total time-to-first-Critical
  /// (censored replicates contribute the full horizon) divided by the
  /// number of failures; < 0 when no replicate failed.
  double MttfEstimateHours = -1.0;
  /// Thermal-excursion histogram over all sampled worst-junction
  /// temperatures, fixed bins [HistogramMinC + i * HistogramBinWidthC).
  std::vector<uint64_t> JunctionHistogramCounts;
  static constexpr double HistogramMinC = 20.0;
  static constexpr double HistogramBinWidthC = 5.0;
  static constexpr int NumHistogramBins = 24;
  int FailedReplicates = 0; ///< Replicates that errored out entirely.
  /// Worst audit energy-closure fraction over all replicates and the
  /// number of replicates that blew a critical audit budget (expected 0
  /// on a healthy solver stack at any fault severity).
  double AuditWorstEnergyFraction = 0.0;
  int AuditBudgetBreaches = 0;
};

/// Runs the sweep. Replicate R samples hazards on stream (scenario seed,
/// R), so adding replicates extends — never reshuffles — the campaign.
Expected<SweepReport> runSweep(const Scenario &S, const SweepConfig &Config);

} // namespace faults
} // namespace rcs

#endif // RCS_FAULTS_SWEEP_H
