//===- faults/Trace.h - Fault-event JSONL traces ----------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a scenario's merged event timeline as JSON Lines, the same
/// transport the telemetry tracer uses: a "fault_trace_header" line with
/// run identity, then one "fault_event" line per injection, repair, alarm
/// transition, control action, migration and protection trip. check_trace
/// validates the schema, so fault campaigns round-trip through the same
/// tooling as telemetry traces.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_FAULTS_TRACE_H
#define RCS_FAULTS_TRACE_H

#include "faults/Engine.h"
#include "support/Status.h"

#include <cstdint>
#include <string>

namespace rcs {
namespace faults {

/// Renders the trace as a JSONL string (header line + one event line
/// each, every line newline-terminated).
std::string faultEventTraceToString(const ScenarioOutcome &Outcome,
                                    uint64_t Seed);

/// Writes the trace to \p Path.
Status writeFaultEventTrace(const std::string &Path,
                            const ScenarioOutcome &Outcome, uint64_t Seed);

} // namespace faults
} // namespace rcs

#endif // RCS_FAULTS_TRACE_H
