//===- faults/Engine.cpp - Closed-loop reliability engine -----------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "faults/Engine.h"

#include "audit/Audit.h"
#include "core/ConfigIO.h"
#include "core/Designs.h"
#include "monitor/Alarm.h"
#include "sim/RackTransient.h"
#include "sim/Transient.h"
#include "telemetry/Telemetry.h"
#include "workload/Scheduler.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

using namespace rcs;
using namespace rcs::faults;

namespace {

/// The tail window must stay below the trip and either flat or cooling
/// for the end state to count as safely degraded.
void finishOutcome(ScenarioOutcome &Out, double TripC) {
  std::stable_sort(Out.Events.begin(), Out.Events.end(),
                   [](const FaultEvent &A, const FaultEvent &B) {
                     return A.TimeS < B.TimeS;
                   });
  if (Out.JunctionSampleC.empty()) {
    Out.SafeDegradedEnd = false;
    return;
  }
  size_t Tail = std::max<size_t>(Out.JunctionSampleC.size() / 10, 2);
  Tail = std::min(Tail, Out.JunctionSampleC.size());
  auto First = Out.JunctionSampleC.end() - static_cast<long>(Tail);
  double TailMax = *std::max_element(First, Out.JunctionSampleC.end());
  bool Cooling = Out.JunctionSampleC.back() <= *First;
  double Drift = Out.JunctionSampleC.back() - *First;
  Out.SafeDegradedEnd = TailMax < TripC && (Cooling || Drift < 2.0);
}

/// Copies the simulator's physics-audit totals into the outcome so sweep
/// reports can fold them per replicate (plain data, deterministic).
void foldAuditSummary(ScenarioOutcome &Out,
                      const audit::PhysicsAuditor *Auditor) {
  if (!Auditor)
    return;
  const audit::AuditSummary &A = Auditor->summary();
  Out.AuditMaxEnergyFraction =
      std::max(A.Energy.MaxFraction, A.EnergyNode.MaxFraction);
  Out.AuditMaxCouplingFraction = A.Coupling.MaxFraction;
  Out.AuditViolationCount = A.Energy.Violations + A.EnergyNode.Violations +
                            A.Coupling.Violations + A.Continuity.Violations +
                            A.PressureClosure.Violations;
  Out.AuditWithinBudget = A.withinBudgets(Auditor->budgets());
}

Expected<rcsystem::ModuleConfig> resolveModule(const Scenario &S) {
  if (!S.ModuleConfigPath.empty())
    return core::loadModuleConfigFile(S.ModuleConfigPath);
  if (S.Design == "skat")
    return core::makeSkatModule();
  if (S.Design == "skat-plus")
    return core::makeSkatPlusModule();
  if (S.Design == "skat-plus-naive")
    return core::makeSkatPlusNaiveModule();
  return Expected<rcsystem::ModuleConfig>::error(
      "faults: design '" + S.Design +
      "' has no immersion transient model (use skat, skat-plus or "
      "skat-plus-naive)");
}

Expected<ScenarioOutcome> runModuleScenario(const Scenario &S,
                                            uint64_t HazardStream) {
  auto Module = resolveModule(S);
  if (!Module)
    return Expected<ScenarioOutcome>(Module.status());
  if (Module->Cooling != rcsystem::CoolingKind::Immersion)
    return Expected<ScenarioOutcome>::error(
        "faults: module-level scenarios need an immersion module");

  std::vector<FaultSpec> Schedule = S.Faults;
  std::vector<FaultSpec> Sampled =
      sampleFaultSchedule(S.Hazards, S.DurationS, S.Seed, HazardStream);
  Schedule.insert(Schedule.end(), Sampled.begin(), Sampled.end());

  ScenarioOutcome Out;
  Out.Name = S.Name;
  Out.DurationS = S.DurationS;

  FaultInjector Injector(std::move(Schedule));
  Injector.setEventCallback(
      [&Out](const FaultEvent &Event) { Out.Events.push_back(Event); });

  sim::TransientSimulator Sim(*Module, core::makeNominalConditions());
  Sim.enableAudit();
  Sim.setPlantModifier([&Injector](double TimeS, sim::PlantEffects &Effects) {
    Injector.plantEffectsAt(TimeS, Effects);
  });
  Sim.setSensorTransform(
      [&Injector](double TimeS, double *Values, size_t NumValues) {
        Injector.transformReadings(TimeS, Values, NumValues);
      });

  Sim.supervisor().setTransitionCallback(
      [&Out](const monitor::AlarmTransition &Transition) {
        if (Out.TimeToFirstCriticalS < 0.0 &&
            monitor::alarmStateLevel(Transition.To) ==
                rcsystem::AlarmLevel::Critical)
          Out.TimeToFirstCriticalS = Transition.TimeS;
        Out.Events.push_back({Transition.TimeS, "alarm", Transition.Sensor,
                              std::string(monitor::alarmStateName(
                                  Transition.From)) +
                                  "->" +
                                  monitor::alarmStateName(Transition.To),
                              0, 0.0});
      });

  // Staged degradation: on a Critical report, shed clock first and only
  // shut down once the alarm has persisted CriticalPeriodsToShutdown
  // control periods; below Critical, defer to the stock recommendation.
  if (S.Policy.Enabled) {
    auto Streak = std::make_shared<int>(0);
    auto Prev = std::make_shared<rcsystem::ControlAction>(
        rcsystem::ControlAction::None);
    int PeriodsToShutdown = S.Policy.CriticalPeriodsToShutdown;
    Sim.setControlPolicy([&Out, Streak, Prev, PeriodsToShutdown](
                             double TimeS,
                             const monitor::SupervisoryReport &Report) {
      rcsystem::ControlAction Action;
      if (Report.Worst < rcsystem::AlarmLevel::Critical) {
        *Streak = 0;
        Action = monitor::recommendModuleAction(Report);
      } else {
        ++*Streak;
        Action = *Streak >= PeriodsToShutdown
                     ? rcsystem::ControlAction::Shutdown
                     : rcsystem::ControlAction::ReduceClock;
      }
      if (Action != *Prev && Action != rcsystem::ControlAction::None) {
        Out.Events.push_back({TimeS, "action",
                              rcsystem::controlActionName(Action),
                              "staged degradation policy", 0, 0.0});
        ++Out.ActionsTaken;
      }
      *Prev = Action;
      return Action;
    });
  }

  size_t NumSamples = 0;
  double UpSum = 0.0, ThroughputSum = 0.0;
  bool WasDown = false;
  Sim.setSampleCallback([&](const sim::TraceSample &Sample) {
    ++NumSamples;
    UpSum += Sample.ShutDown ? 0.0 : 1.0;
    ThroughputSum += Sample.ShutDown ? 0.0 : Sample.ClockFraction;
    Out.MaxJunctionC = std::max(Out.MaxJunctionC, Sample.MaxJunctionTempC);
    Out.FinalJunctionC = Sample.MaxJunctionTempC;
    Out.FinalAlarm = Sample.Alarm;
    Out.JunctionSampleC.push_back(Sample.MaxJunctionTempC);
    if (Sample.ShutDown && !WasDown) {
      WasDown = true;
      Out.ModulesShutDown = 1;
      Out.Events.push_back({Sample.TimeS, "trip", "module",
                            "module latched off", 0, 0.0});
    }
  });

  auto Trace = Sim.run(S.DurationS);
  if (!Trace)
    return Expected<ScenarioOutcome>(Trace.status());

  if (NumSamples != 0) {
    Out.AvailabilityFraction = UpSum / static_cast<double>(NumSamples);
    Out.ThroughputRetainedFraction =
        ThroughputSum / static_cast<double>(NumSamples);
  }
  Out.FaultsInjected = Injector.injectedCount();
  Out.FaultsCleared = Injector.clearedCount();
  foldAuditSummary(Out, Sim.auditor());
  finishOutcome(Out, rcsystem::MonitoringConfig().JunctionCriticalTempC);
  return Out;
}

Expected<rcsystem::RackConfig> resolveRack(const Scenario &S) {
  rcsystem::RackConfig Rack;
  if (S.Design == "skat")
    Rack = core::makeSkatRack();
  else if (S.Design == "skat-plus")
    Rack = core::makeSkatPlusRack();
  else
    return Expected<rcsystem::RackConfig>::error(
        "faults: rack design '" + S.Design +
        "' is unknown (use skat or skat-plus)");
  if (!S.ModuleConfigPath.empty()) {
    auto Module = core::loadModuleConfigFile(S.ModuleConfigPath);
    if (!Module)
      return Expected<rcsystem::RackConfig>(Module.status());
    Rack.Module = *Module;
  }
  if (Rack.Module.Cooling != rcsystem::CoolingKind::Immersion)
    return Expected<rcsystem::RackConfig>::error(
        "faults: rack-level scenarios need immersion modules");
  return Rack;
}

Expected<ScenarioOutcome> runRackScenario(const Scenario &S,
                                          uint64_t HazardStream) {
  auto Rack = resolveRack(S);
  if (!Rack)
    return Expected<ScenarioOutcome>(Rack.status());
  const size_t NumModules = static_cast<size_t>(Rack->NumModules);
  const double BaseUtilization =
      std::max(Rack->Module.Load.Utilization, 1e-6);

  std::vector<FaultSpec> Schedule = S.Faults;
  std::vector<FaultSpec> Sampled =
      sampleFaultSchedule(S.Hazards, S.DurationS, S.Seed, HazardStream);
  Schedule.insert(Schedule.end(), Sampled.begin(), Sampled.end());

  ScenarioOutcome Out;
  Out.Name = S.Name;
  Out.DurationS = S.DurationS;

  FaultInjector Injector(std::move(Schedule));
  Injector.setEventCallback(
      [&Out](const FaultEvent &Event) { Out.Events.push_back(Event); });

  sim::RackTransientSimulator Sim(
      *Rack, core::makeNominalConditions().AmbientAirTempC);
  Sim.enableAudit();
  Sim.setPlantModifier(
      [&Injector, NumModules](double TimeS, sim::RackPlantEffects &Effects) {
        Injector.rackPlantEffectsAt(TimeS, NumModules, Effects);
      });
  Sim.setSensorTransform(
      [&Injector](double TimeS, double *Values, size_t NumValues) {
        Injector.transformReadings(TimeS, Values, NumValues);
      });

  Sim.supervisor().setTransitionCallback(
      [&Out](const monitor::AlarmTransition &Transition) {
        if (Out.TimeToFirstCriticalS < 0.0 &&
            monitor::alarmStateLevel(Transition.To) ==
                rcsystem::AlarmLevel::Critical)
          Out.TimeToFirstCriticalS = Transition.TimeS;
        Out.Events.push_back({Transition.TimeS, "alarm", Transition.Sensor,
                              std::string(monitor::alarmStateName(
                                  Transition.From)) +
                                  "->" +
                                  monitor::alarmStateName(Transition.To),
                              0, 0.0});
      });

  // Rack policy state shared across control periods.
  struct PolicyState {
    int Streak = 0;
    std::vector<bool> SeenDown;
    std::vector<bool> Commanded;
  };
  auto State = std::make_shared<PolicyState>();
  State->SeenDown.assign(NumModules, false);
  State->Commanded.assign(NumModules, false);

  const DegradationPolicyConfig Policy = S.Policy;
  auto migrateFrom = [&Out, BaseUtilization, Policy](
                         size_t From, const sim::RackControlState &Control,
                         sim::RackControlCommands &Commands) {
    const std::vector<bool> &Down = *Control.ModuleDown;
    std::vector<double> Utilization(Down.size(), 0.0);
    std::vector<bool> Available(Down.size(), false);
    for (size_t M = 0; M != Down.size(); ++M) {
      bool Up = !Down[M] && !Commands.ForceShutdown[M];
      Utilization[M] = Up ? BaseUtilization * Commands.UtilizationScale[M]
                          : 0.0;
      Available[M] = Up && M != From;
    }
    double Moved = BaseUtilization * Commands.UtilizationScale[From];
    if (Moved <= 0.0)
      return;
    // Seed the source utilization so the planner knows what moves.
    std::vector<double> Source = Utilization;
    Source[From] = Moved;
    workload::MigrationPlan Plan = workload::planMigration(
        Source, Available, *Control.JunctionTempC, From,
        Policy.UtilizationBound, workload::PlacementPolicy::CoolestFirst);
    std::ostringstream Detail;
    Detail << "moved " << Moved - Plan.UnplacedUtilization << " of "
           << Moved << " utilization to";
    for (int Target : Plan.Targets) {
      Commands.UtilizationScale[Target] =
          (Utilization[Target] + Plan.AddedUtilization[Target]) /
          BaseUtilization;
      Detail << " m" << Target;
    }
    if (Plan.Targets.empty())
      Detail << " nowhere (no headroom)";
    Out.Events.push_back({Control.TimeS, "migrate",
                          "module" + std::to_string(From), Detail.str(),
                          static_cast<int>(From), 0.0});
    ++Out.ActionsTaken;
  };

  if (Policy.Enabled) {
    Sim.setControlPolicy([&Out, State, Policy, migrateFrom](
                             const sim::RackControlState &Control,
                             sim::RackControlCommands &Commands) {
      const std::vector<bool> &Down = *Control.ModuleDown;
      const std::vector<double> &Junction = *Control.JunctionTempC;
      // Announce protection trips the policy did not command, and
      // migrate their work away.
      for (size_t M = 0; M != Down.size(); ++M) {
        if (!Down[M] || State->SeenDown[M])
          continue;
        State->SeenDown[M] = true;
        if (!State->Commanded[M]) {
          Out.Events.push_back({Control.TimeS, "trip",
                                "module" + std::to_string(M),
                                "protection latched module off",
                                static_cast<int>(M), 0.0});
          if (Policy.MigrateLoad)
            migrateFrom(M, Control, Commands);
        }
      }
      if (Control.Report.Worst < rcsystem::AlarmLevel::Critical) {
        State->Streak = 0;
        return;
      }
      ++State->Streak;
      // Hottest module still running is the degradation target.
      int Hottest = -1;
      for (size_t M = 0; M != Junction.size(); ++M) {
        if (Down[M] || Commands.ForceShutdown[M])
          continue;
        if (Hottest < 0 || Junction[M] > Junction[Hottest])
          Hottest = static_cast<int>(M);
      }
      if (Hottest < 0)
        return;
      if (State->Streak >= Policy.CriticalPeriodsToShutdown) {
        if (Policy.MigrateLoad)
          migrateFrom(static_cast<size_t>(Hottest), Control, Commands);
        Commands.ForceShutdown[Hottest] = true;
        State->Commanded[Hottest] = true;
        Out.Events.push_back({Control.TimeS, "action", "shutdown",
                              "staged shutdown of module " +
                                  std::to_string(Hottest),
                              Hottest, 0.0});
        ++Out.ActionsTaken;
        State->Streak = 0;
      } else {
        double Shed = std::max(Commands.ClockScale[Hottest] -
                                   Policy.ShedStepFraction,
                               Policy.ClockFloorFraction);
        if (Shed < Commands.ClockScale[Hottest]) {
          Commands.ClockScale[Hottest] = Shed;
          Out.Events.push_back({Control.TimeS, "action", "reduce_clock",
                                "shed module " + std::to_string(Hottest) +
                                    " clock to " + std::to_string(Shed),
                                Hottest, 0.0});
          ++Out.ActionsTaken;
        }
      }
    });
  }

  size_t NumSamples = 0;
  double UpSum = 0.0, ThroughputSum = 0.0;
  Sim.setSampleCallback([&](const sim::RackTraceSample &Sample) {
    ++NumSamples;
    UpSum += static_cast<double>(Rack->NumModules - Sample.ModulesShutDown) /
             static_cast<double>(Rack->NumModules);
    ThroughputSum += Sample.ThroughputFraction;
    Out.MaxJunctionC = std::max(Out.MaxJunctionC, Sample.MaxJunctionTempC);
    Out.FinalJunctionC = Sample.MaxJunctionTempC;
    Out.FinalAlarm = Sample.Alarm;
    Out.ModulesShutDown = Sample.ModulesShutDown;
    Out.JunctionSampleC.push_back(Sample.MaxJunctionTempC);
  });

  auto Trace = Sim.run(S.DurationS);
  if (!Trace)
    return Expected<ScenarioOutcome>(Trace.status());

  if (NumSamples != 0) {
    Out.AvailabilityFraction = UpSum / static_cast<double>(NumSamples);
    Out.ThroughputRetainedFraction =
        ThroughputSum / static_cast<double>(NumSamples);
  }
  Out.FaultsInjected = Injector.injectedCount();
  Out.FaultsCleared = Injector.clearedCount();
  foldAuditSummary(Out, Sim.auditor());
  finishOutcome(Out, sim::RackTransientConfig().ProtectionTripC);
  return Out;
}

} // namespace

Expected<ScenarioOutcome> rcs::faults::runScenario(const Scenario &S,
                                                   uint64_t HazardStream) {
  telemetry::Registry &Telemetry = telemetry::Registry::global();
  telemetry::ScopedTimer Timer(Telemetry, "faults.scenario.run");
  auto Out = S.RackLevel ? runRackScenario(S, HazardStream)
                         : runModuleScenario(S, HazardStream);
  if (Out) {
    Telemetry.counter("faults.scenario.runs").add();
    Telemetry.counter("faults.scenario.injections")
        .add(static_cast<uint64_t>(Out->FaultsInjected));
    if (Telemetry.tracingEnabled())
      Telemetry.emitEvent(
          "faults.scenario.done",
          {{"scenario", Out->Name},
           {"availability", Out->AvailabilityFraction},
           {"throughput", Out->ThroughputRetainedFraction},
           {"max_junction_C", Out->MaxJunctionC}});
  }
  return Out;
}
