//===- faults/Sweep.cpp - Parallel reliability sweeps ---------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "faults/Sweep.h"

#include "support/Parallel.h"
#include "support/ThreadSafety.h"
#include "telemetry/Span.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cmath>

using namespace rcs;
using namespace rcs::faults;

Expected<SweepReport> rcs::faults::runSweep(const Scenario &S,
                                            const SweepConfig &Config) {
  if (Config.NumReplicates < 1)
    return Expected<SweepReport>::error("sweep: need at least 1 replicate");

  // Fail fast on scenarios that cannot run at all (bad design, missing
  // module config) before spinning up the pool.
  if (auto Probe = runScenario(S, 0); !Probe)
    return Expected<SweepReport>(Probe.status());

  telemetry::Registry &Telemetry = telemetry::Registry::global();
  telemetry::Span SweepSpan(Telemetry, "faults.sweep.run");
  SweepSpan.attr("replicates", static_cast<long long>(Config.NumReplicates));
  SweepSpan.attr("threads", static_cast<long long>(Config.NumThreads));
  const telemetry::SpanContext SweepCtx = SweepSpan.context();

  // Side-channel progress tallies. These feed OnProgress and live
  // gauges only — the report below reduces over the Slot vector in
  // replicate order and never reads them, so enabling progress cannot
  // change the report.
  struct ProgressState {
    rcs::Mutex Mutex;
    double StartS RCS_GUARDED_BY(Mutex) = 0.0;
    double LastEmitS RCS_GUARDED_BY(Mutex) = 0.0;
    int Completed RCS_GUARDED_BY(Mutex) = 0;
    int Criticals RCS_GUARDED_BY(Mutex) = 0;
    double AvailabilitySum RCS_GUARDED_BY(Mutex) = 0.0;
  };
  ProgressState Progress;
  {
    // Locked even though workers have not started yet: it costs one
    // uncontended acquire and keeps the thread-safety analysis exact.
    rcs::LockGuard Lock(Progress.Mutex);
    Progress.StartS = Telemetry.nowSeconds();
    Progress.LastEmitS = Progress.StartS;
  }
  auto NoteReplicateDone = [&](const ScenarioOutcome *Out, bool Final) {
    SweepProgress Snapshot;
    {
      rcs::LockGuard Lock(Progress.Mutex);
      if (Out) {
        ++Progress.Completed;
        Progress.AvailabilitySum += Out->AvailabilityFraction;
        if (Out->TimeToFirstCriticalS >= 0.0)
          ++Progress.Criticals;
      }
      const double NowS = Telemetry.nowSeconds();
      if (!Final && NowS - Progress.LastEmitS < Config.ProgressPeriodS)
        return;
      Progress.LastEmitS = NowS;
      Snapshot.Completed = Progress.Completed;
      Snapshot.Total = Config.NumReplicates;
      Snapshot.ElapsedS = NowS - Progress.StartS;
      if (Progress.Completed > 0) {
        Snapshot.EtaS = Snapshot.ElapsedS / Progress.Completed *
                        (Config.NumReplicates - Progress.Completed);
        Snapshot.MeanAvailabilityFraction =
            Progress.AvailabilitySum / Progress.Completed;
      }
      Snapshot.Criticals = Progress.Criticals;
      Telemetry.gauge("faults.sweep.progress.replicates_done")
          .set(Snapshot.Completed);
      Telemetry.gauge("faults.sweep.progress.eta_s").set(Snapshot.EtaS);
      Telemetry.gauge("faults.sweep.progress.availability_estimate")
          .set(Snapshot.MeanAvailabilityFraction);
      // Invoke under the lock so callbacks observe monotone Completed.
      if (Config.OnProgress)
        Config.OnProgress(Snapshot);
    }
  };

  // One slot per replicate, filled on stream (Seed, replicate); the
  // reduction below walks slots in replicate order, so the report is
  // bit-identical at any thread count.
  struct Slot {
    bool Ok = false;
    ScenarioOutcome Outcome;
  };
  std::vector<Slot> Slots(static_cast<size_t>(Config.NumReplicates));
  parallelFor(Config.NumThreads,
              static_cast<size_t>(Config.NumReplicates),
              [&](size_t Replicate) {
                // Parent the replicate span to the sweep root even when
                // this closure runs on a pool thread.
                telemetry::ScopedSpanParent Adopt(SweepCtx);
                telemetry::Span ReplicateSpan(Telemetry,
                                              "faults.sweep.replicate");
                ReplicateSpan.attr("replicate",
                                   static_cast<long long>(Replicate));
                auto Out = runScenario(S, Replicate);
                ReplicateSpan.attr("ok", static_cast<bool>(Out));
                if (Out) {
                  ReplicateSpan.attr("max_junction_C", Out->MaxJunctionC);
                  Slots[Replicate].Ok = true;
                  Slots[Replicate].Outcome = std::move(*Out);
                }
                NoteReplicateDone(
                    Slots[Replicate].Ok ? &Slots[Replicate].Outcome : nullptr,
                    /*Final=*/false);
              });
  NoteReplicateDone(nullptr, /*Final=*/true);

  SweepReport Report;
  Report.NumReplicates = Config.NumReplicates;
  Report.Seed = S.Seed;
  Report.JunctionHistogramCounts.assign(SweepReport::NumHistogramBins, 0);

  double AvailabilitySum = 0.0, ThroughputSum = 0.0, JunctionSum = 0.0;
  double OperatingHours = 0.0;
  int Criticals = 0, Succeeded = 0;
  const double HorizonHours = S.DurationS / 3600.0;
  for (size_t R = 0; R != Slots.size(); ++R) {
    const Slot &Entry = Slots[R];
    if (!Entry.Ok) {
      ++Report.FailedReplicates;
      continue;
    }
    const ScenarioOutcome &Out = Entry.Outcome;
    ++Succeeded;
    ReplicateSummary Summary;
    Summary.Replicate = static_cast<int>(R);
    Summary.AvailabilityFraction = Out.AvailabilityFraction;
    Summary.ThroughputRetainedFraction = Out.ThroughputRetainedFraction;
    Summary.MaxJunctionC = Out.MaxJunctionC;
    Summary.TimeToFirstCriticalS = Out.TimeToFirstCriticalS;
    Summary.FaultsInjected = Out.FaultsInjected;
    Summary.ModulesShutDown = Out.ModulesShutDown;
    Summary.SafeDegradedEnd = Out.SafeDegradedEnd;
    Summary.AuditMaxEnergyFraction = Out.AuditMaxEnergyFraction;
    Summary.AuditViolationCount = Out.AuditViolationCount;
    Summary.AuditWithinBudget = Out.AuditWithinBudget;
    Report.Replicates.push_back(Summary);

    Report.AuditWorstEnergyFraction = std::max(
        Report.AuditWorstEnergyFraction, Out.AuditMaxEnergyFraction);
    if (!Out.AuditWithinBudget)
      ++Report.AuditBudgetBreaches;

    AvailabilitySum += Out.AvailabilityFraction;
    ThroughputSum += Out.ThroughputRetainedFraction;
    JunctionSum += Out.MaxJunctionC;
    Report.MinAvailabilityFraction =
        std::min(Report.MinAvailabilityFraction, Out.AvailabilityFraction);
    Report.PeakJunctionC = std::max(Report.PeakJunctionC, Out.MaxJunctionC);
    if (Out.TimeToFirstCriticalS >= 0.0) {
      ++Criticals;
      OperatingHours += Out.TimeToFirstCriticalS / 3600.0;
    } else {
      OperatingHours += HorizonHours;
    }
    for (double Sample : Out.JunctionSampleC) {
      double Offset =
          (Sample - SweepReport::HistogramMinC) / SweepReport::HistogramBinWidthC;
      int Bin = std::clamp(static_cast<int>(std::floor(Offset)), 0,
                           SweepReport::NumHistogramBins - 1);
      ++Report.JunctionHistogramCounts[static_cast<size_t>(Bin)];
    }
  }
  if (Succeeded != 0) {
    Report.MeanAvailabilityFraction = AvailabilitySum / Succeeded;
    Report.MeanThroughputRetainedFraction = ThroughputSum / Succeeded;
    Report.MeanMaxJunctionC = JunctionSum / Succeeded;
    Report.CriticalFraction = static_cast<double>(Criticals) / Succeeded;
  }
  if (Criticals > 0)
    Report.MttfEstimateHours = OperatingHours / Criticals;

  Telemetry.counter("faults.sweep.replicates")
      .add(static_cast<uint64_t>(Succeeded));
  Telemetry.counter("faults.sweep.criticals")
      .add(static_cast<uint64_t>(Criticals));
  Telemetry.counter("faults.sweep.audit_breaches")
      .add(static_cast<uint64_t>(Report.AuditBudgetBreaches));
  for (const ReplicateSummary &Summary : Report.Replicates)
    Telemetry.histogram("faults.sweep.max_junction_C")
        .record(Summary.MaxJunctionC);
  return Report;
}
