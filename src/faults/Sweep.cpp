//===- faults/Sweep.cpp - Parallel reliability sweeps ---------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "faults/Sweep.h"

#include "support/Parallel.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cmath>

using namespace rcs;
using namespace rcs::faults;

Expected<SweepReport> rcs::faults::runSweep(const Scenario &S,
                                            const SweepConfig &Config) {
  if (Config.NumReplicates < 1)
    return Expected<SweepReport>::error("sweep: need at least 1 replicate");

  // Fail fast on scenarios that cannot run at all (bad design, missing
  // module config) before spinning up the pool.
  if (auto Probe = runScenario(S, 0); !Probe)
    return Expected<SweepReport>(Probe.status());

  telemetry::Registry &Telemetry = telemetry::Registry::global();
  telemetry::ScopedTimer Timer(Telemetry, "faults.sweep.run");

  // One slot per replicate, filled on stream (Seed, replicate); the
  // reduction below walks slots in replicate order, so the report is
  // bit-identical at any thread count.
  struct Slot {
    bool Ok = false;
    ScenarioOutcome Outcome;
  };
  std::vector<Slot> Slots(static_cast<size_t>(Config.NumReplicates));
  parallelFor(Config.NumThreads,
              static_cast<size_t>(Config.NumReplicates),
              [&](size_t Replicate) {
                auto Out = runScenario(S, Replicate);
                if (Out) {
                  Slots[Replicate].Ok = true;
                  Slots[Replicate].Outcome = std::move(*Out);
                }
              });

  SweepReport Report;
  Report.NumReplicates = Config.NumReplicates;
  Report.Seed = S.Seed;
  Report.JunctionHistogramCounts.assign(SweepReport::NumHistogramBins, 0);

  double AvailabilitySum = 0.0, ThroughputSum = 0.0, JunctionSum = 0.0;
  double OperatingHours = 0.0;
  int Criticals = 0, Succeeded = 0;
  const double HorizonHours = S.DurationS / 3600.0;
  for (size_t R = 0; R != Slots.size(); ++R) {
    const Slot &Entry = Slots[R];
    if (!Entry.Ok) {
      ++Report.FailedReplicates;
      continue;
    }
    const ScenarioOutcome &Out = Entry.Outcome;
    ++Succeeded;
    ReplicateSummary Summary;
    Summary.Replicate = static_cast<int>(R);
    Summary.AvailabilityFraction = Out.AvailabilityFraction;
    Summary.ThroughputRetainedFraction = Out.ThroughputRetainedFraction;
    Summary.MaxJunctionC = Out.MaxJunctionC;
    Summary.TimeToFirstCriticalS = Out.TimeToFirstCriticalS;
    Summary.FaultsInjected = Out.FaultsInjected;
    Summary.ModulesShutDown = Out.ModulesShutDown;
    Summary.SafeDegradedEnd = Out.SafeDegradedEnd;
    Report.Replicates.push_back(Summary);

    AvailabilitySum += Out.AvailabilityFraction;
    ThroughputSum += Out.ThroughputRetainedFraction;
    JunctionSum += Out.MaxJunctionC;
    Report.MinAvailabilityFraction =
        std::min(Report.MinAvailabilityFraction, Out.AvailabilityFraction);
    Report.PeakJunctionC = std::max(Report.PeakJunctionC, Out.MaxJunctionC);
    if (Out.TimeToFirstCriticalS >= 0.0) {
      ++Criticals;
      OperatingHours += Out.TimeToFirstCriticalS / 3600.0;
    } else {
      OperatingHours += HorizonHours;
    }
    for (double Sample : Out.JunctionSampleC) {
      double Offset =
          (Sample - SweepReport::HistogramMinC) / SweepReport::HistogramBinWidthC;
      int Bin = std::clamp(static_cast<int>(std::floor(Offset)), 0,
                           SweepReport::NumHistogramBins - 1);
      ++Report.JunctionHistogramCounts[static_cast<size_t>(Bin)];
    }
  }
  if (Succeeded != 0) {
    Report.MeanAvailabilityFraction = AvailabilitySum / Succeeded;
    Report.MeanThroughputRetainedFraction = ThroughputSum / Succeeded;
    Report.MeanMaxJunctionC = JunctionSum / Succeeded;
    Report.CriticalFraction = static_cast<double>(Criticals) / Succeeded;
  }
  if (Criticals > 0)
    Report.MttfEstimateHours = OperatingHours / Criticals;

  Telemetry.counter("faults.sweep.replicates")
      .add(static_cast<uint64_t>(Succeeded));
  Telemetry.counter("faults.sweep.criticals")
      .add(static_cast<uint64_t>(Criticals));
  for (const ReplicateSummary &Summary : Report.Replicates)
    Telemetry.histogram("faults.sweep.max_junction_C")
        .record(Summary.MaxJunctionC);
  return Report;
}
