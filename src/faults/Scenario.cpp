//===- faults/Scenario.cpp - Fault scenario files -------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "faults/Scenario.h"

#include "telemetry/Json.h"

#include <cmath>
#include <fstream>
#include <sstream>

using namespace rcs;
using namespace rcs::faults;
using telemetry::JsonValue;

namespace {

Status expectObject(const JsonValue &Value, const std::string &What) {
  if (!Value.isObject())
    return Status::error("scenario: " + What + " must be an object");
  return Status::ok();
}

Expected<double> asNumber(const JsonValue &Value, const std::string &Key) {
  if (!Value.isNumber())
    return Expected<double>::error("scenario: '" + Key +
                                   "' must be a number");
  return Value.NumberValue;
}

Expected<std::string> asString(const JsonValue &Value,
                               const std::string &Key) {
  if (!Value.isString())
    return Expected<std::string>::error("scenario: '" + Key +
                                        "' must be a string");
  return Value.StringValue;
}

Expected<bool> asBool(const JsonValue &Value, const std::string &Key) {
  if (!Value.isBool())
    return Expected<bool>::error("scenario: '" + Key +
                                 "' must be a boolean");
  return Value.BoolValue;
}

Status parsePolicy(const JsonValue &Node, DegradationPolicyConfig &Policy) {
  if (Status S = expectObject(Node, "'policy'"); !S)
    return S;
  for (const auto &[Key, Value] : Node.Members) {
    if (Key == "enabled") {
      auto V = asBool(Value, Key);
      if (!V)
        return V.status();
      Policy.Enabled = *V;
    } else if (Key == "clock_floor") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Policy.ClockFloorFraction = *V;
    } else if (Key == "shed_step") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Policy.ShedStepFraction = *V;
    } else if (Key == "critical_periods_to_shutdown") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Policy.CriticalPeriodsToShutdown = static_cast<int>(*V);
    } else if (Key == "migrate_load") {
      auto V = asBool(Value, Key);
      if (!V)
        return V.status();
      Policy.MigrateLoad = *V;
    } else if (Key == "utilization_bound") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Policy.UtilizationBound = *V;
    } else {
      return Status::error("scenario: unknown policy key '" + Key + "'");
    }
  }
  if (Policy.CriticalPeriodsToShutdown < 1)
    return Status::error(
        "scenario: critical_periods_to_shutdown must be >= 1");
  return Status::ok();
}

Status parseFault(const JsonValue &Node, FaultSpec &Spec) {
  if (Status S = expectObject(Node, "each fault"); !S)
    return S;
  bool HaveKind = false;
  for (const auto &[Key, Value] : Node.Members) {
    if (Key == "kind") {
      auto Name = asString(Value, Key);
      if (!Name)
        return Name.status();
      auto Kind = faultKindByName(*Name);
      if (!Kind)
        return Kind.status();
      Spec.Kind = *Kind;
      HaveKind = true;
    } else if (Key == "id") {
      auto V = asString(Value, Key);
      if (!V)
        return V.status();
      Spec.Id = *V;
    } else if (Key == "target") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Spec.Target = static_cast<int>(*V);
    } else if (Key == "at_h") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Spec.StartTimeS = *V * 3600.0;
    } else if (Key == "duration_h") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Spec.DurationS = *V * 3600.0;
    } else if (Key == "severity") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Spec.SeverityFraction = *V;
    } else if (Key == "ramp_s") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Spec.RampS = *V;
    } else if (Key == "period_s") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Spec.PeriodS = *V;
    } else if (Key == "extra_heat_w") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Spec.ExtraHeatW = *V;
    } else {
      return Status::error("scenario: unknown fault key '" + Key + "'");
    }
  }
  if (!HaveKind)
    return Status::error("scenario: fault is missing 'kind'");
  if (Spec.SeverityFraction < 0.0 || Spec.SeverityFraction > 1.0)
    return Status::error("scenario: fault '" + Spec.Id +
                         "' severity must be in [0, 1]");
  if (Spec.Id.empty())
    Spec.Id = faultKindName(Spec.Kind);
  return Status::ok();
}

Status parseHazard(const JsonValue &Node, HazardSpec &Spec) {
  if (Status S = expectObject(Node, "each hazard"); !S)
    return S;
  bool HaveKind = false;
  for (const auto &[Key, Value] : Node.Members) {
    if (Key == "kind") {
      auto Name = asString(Value, Key);
      if (!Name)
        return Name.status();
      auto Kind = faultKindByName(*Name);
      if (!Kind)
        return Kind.status();
      Spec.Kind = *Kind;
      HaveKind = true;
    } else if (Key == "id") {
      auto V = asString(Value, Key);
      if (!V)
        return V.status();
      Spec.Id = *V;
    } else if (Key == "target") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Spec.Target = static_cast<int>(*V);
    } else if (Key == "mttf_h") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Spec.MttfHours = *V;
    } else if (Key == "weibull_shape") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Spec.WeibullShapeFactor = *V;
    } else if (Key == "repair_h") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Spec.RepairHours = *V;
    } else if (Key == "severity") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Spec.SeverityFraction = *V;
    } else if (Key == "ramp_s") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Spec.RampS = *V;
    } else if (Key == "extra_heat_w") {
      auto V = asNumber(Value, Key);
      if (!V)
        return V.status();
      Spec.ExtraHeatW = *V;
    } else {
      return Status::error("scenario: unknown hazard key '" + Key + "'");
    }
  }
  if (!HaveKind)
    return Status::error("scenario: hazard is missing 'kind'");
  if (Spec.MttfHours <= 0.0 || Spec.WeibullShapeFactor <= 0.0)
    return Status::error("scenario: hazard '" + Spec.Id +
                         "' needs mttf_h > 0 and weibull_shape > 0");
  if (Spec.Id.empty())
    Spec.Id = faultKindName(Spec.Kind);
  return Status::ok();
}

} // namespace

Expected<Scenario> rcs::faults::parseScenario(const std::string &JsonText) {
  auto Root = telemetry::parseJson(JsonText);
  if (!Root)
    return Expected<Scenario>::error("scenario: " + Root.message());
  if (Status S = expectObject(*Root, "the top level"); !S)
    return Expected<Scenario>(S);

  Scenario Result;
  for (const auto &[Key, Value] : Root->Members) {
    if (Key == "name") {
      auto V = asString(Value, Key);
      if (!V)
        return Expected<Scenario>(V.status());
      Result.Name = *V;
    } else if (Key == "level") {
      auto V = asString(Value, Key);
      if (!V)
        return Expected<Scenario>(V.status());
      if (*V == "module")
        Result.RackLevel = false;
      else if (*V == "rack")
        Result.RackLevel = true;
      else
        return Expected<Scenario>::error(
            "scenario: level must be 'module' or 'rack', got '" + *V + "'");
    } else if (Key == "design") {
      auto V = asString(Value, Key);
      if (!V)
        return Expected<Scenario>(V.status());
      Result.Design = *V;
    } else if (Key == "module_config") {
      auto V = asString(Value, Key);
      if (!V)
        return Expected<Scenario>(V.status());
      Result.ModuleConfigPath = *V;
    } else if (Key == "duration_h") {
      auto V = asNumber(Value, Key);
      if (!V)
        return Expected<Scenario>(V.status());
      Result.DurationS = *V * 3600.0;
    } else if (Key == "seed") {
      auto V = asNumber(Value, Key);
      if (!V)
        return Expected<Scenario>(V.status());
      Result.Seed = static_cast<uint64_t>(*V);
    } else if (Key == "policy") {
      if (Status S = parsePolicy(Value, Result.Policy); !S)
        return Expected<Scenario>(S);
    } else if (Key == "faults") {
      if (!Value.isArray())
        return Expected<Scenario>::error(
            "scenario: 'faults' must be an array");
      for (const JsonValue &Node : Value.Items) {
        FaultSpec Spec;
        if (Status S = parseFault(Node, Spec); !S)
          return Expected<Scenario>(S);
        Result.Faults.push_back(std::move(Spec));
      }
    } else if (Key == "hazards") {
      if (!Value.isArray())
        return Expected<Scenario>::error(
            "scenario: 'hazards' must be an array");
      for (const JsonValue &Node : Value.Items) {
        HazardSpec Spec;
        if (Status S = parseHazard(Node, Spec); !S)
          return Expected<Scenario>(S);
        Result.Hazards.push_back(std::move(Spec));
      }
    } else {
      return Expected<Scenario>::error("scenario: unknown key '" + Key +
                                       "'");
    }
  }
  if (Result.DurationS <= 0.0)
    return Expected<Scenario>::error("scenario: duration_h must be > 0");
  return Result;
}

Expected<Scenario> rcs::faults::loadScenarioFile(const std::string &Path) {
  std::ifstream Stream(Path);
  if (!Stream)
    return Expected<Scenario>::error("cannot open scenario file '" + Path +
                                     "'");
  std::ostringstream Buffer;
  Buffer << Stream.rdbuf();
  return parseScenario(Buffer.str());
}
