//===- faults/FaultModel.h - Parameterized fault models ---------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized fault models for the reliability engine: plant-side
/// degradations (pump wear, heat-exchanger fouling, valve blockage,
/// coolant loss, chiller derating, PSU efficiency droop) and sensor-side
/// corruptions (drift, stuck-at, dropout, spike) injected between the
/// plant and the supervisory monitor. Faults are either scheduled
/// deterministically (FaultSpec) or drawn from Weibull/exponential hazards
/// (HazardSpec) on seeded per-fault RNG streams, mirroring the renewal
/// processes of sim/MonteCarlo.h but acting on the transient plant instead
/// of a lumped availability counter.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_FAULTS_FAULTMODEL_H
#define RCS_FAULTS_FAULTMODEL_H

#include "sim/RackTransient.h"
#include "sim/Transient.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rcs {
namespace faults {

/// The fault models the engine knows how to inject.
enum class FaultKind {
  PumpDegradation,   ///< Impeller wear: delivered pump speed drops.
  PumpFailure,       ///< Pump seizes: delivered speed goes to zero.
  HxFouling,         ///< Heat-exchanger UA decays (oil-side fouling).
  ValveBlockage,     ///< Manifold/balancing-valve partial blockage.
  CoolantLoss,       ///< Oil inventory loss (leak, evaporation).
  ChillerDerate,     ///< Chiller capacity below rated (rack level).
  PsuEfficiencyDroop,///< PSU conversion losses rise, heating the bath.
  SensorDrift,       ///< Multiplicative reading drift.
  SensorStuck,       ///< Reading freezes at its value when the fault hit.
  SensorDropout,     ///< Reading becomes NaN (fail-safe: Critical).
  SensorSpike        ///< Periodic spurious high excursions.
};

/// Stable lowercase identifier of \p Kind ("pump_degradation", ...), used
/// in scenario JSON and fault-event traces.
const char *faultKindName(FaultKind Kind);

/// Parses a scenario identifier back into a kind.
Expected<FaultKind> faultKindByName(std::string_view Name);

/// True for the kinds that corrupt sensor readings rather than the plant.
bool isSensorFault(FaultKind Kind);

/// One scheduled fault instance.
///
/// SeverityFraction is in [0, 1] and scales the kind's effect: a pump at
/// severity 0.6 delivers 40 % of commanded speed, a fouled HX at 0.6
/// keeps 40 % of its clean UA, a drifting sensor at 0.6 reads 1.6x the
/// truth. PumpFailure and SensorDropout are all-or-nothing and ignore it.
struct FaultSpec {
  FaultKind Kind = FaultKind::PumpDegradation;
  /// Unique label for the event log ("pump0", "fouling-hx2", ...).
  std::string Id;
  /// Module index (rack-level plant faults) or sensor index (sensor
  /// faults; module bank: 0 = coolant, 1 = junction, 2 = flow; rack
  /// bank: 0 = water, 1 = hottest junction). Ignored by module-level
  /// plant faults.
  int Target = 0;
  double StartTimeS = 0.0;
  /// 0 = permanent (lasts to the horizon); otherwise cleared (repaired)
  /// after this long.
  double DurationS = 0.0;
  double SeverityFraction = 1.0;
  /// Severity ramps linearly from zero over this window (0 = step).
  double RampS = 0.0;
  /// SensorSpike repetition period; 0 spikes every control period.
  double PeriodS = 0.0;
  /// PsuEfficiencyDroop only: parasitic heat at severity 1, W. The
  /// default matches one SKAT immersion PSU dropping about five
  /// efficiency points at rated load (see psuDroopExtraHeatW).
  double ExtraHeatW = 400.0;
};

/// Effective severity of \p Spec at \p TimeS: zero outside the active
/// window, ramped linearly over RampS after onset.
double severityAt(const FaultSpec &Spec, double TimeS);

/// Folds an active plant fault into the single-module plant state,
/// composing multiplicatively with whatever is already there. Sensor
/// kinds are ignored (they act on readings, not the plant).
void applyPlantFault(const FaultSpec &Spec, double SeverityFraction,
                     sim::PlantEffects &Effects);

/// Folds an active plant fault into the rack plant state. Vectors in
/// \p Effects must already be sized to the module count. Module-local
/// kinds use Spec.Target as the module index; CoolantLoss at rack level
/// is modeled as lost heat-exchanger effectiveness (the rack model has
/// no per-module inventory state).
void applyRackPlantFault(const FaultSpec &Spec, double SeverityFraction,
                         sim::RackPlantEffects &Effects);

/// Extra conversion-loss heat when a PSU's efficiency droops by
/// \p DroopFraction of itself at output load \p LoadW, given the healthy
/// efficiency \p EfficiencyFraction at that load. Used to calibrate
/// FaultSpec::ExtraHeatW from the rcsystem::PowerSupplyUnit curves.
double psuDroopExtraHeatW(double LoadW, double EfficiencyFraction,
                          double DroopFraction);

/// A stochastic fault source: failure times are Weibull-distributed
/// (shape 1 = exponential/memoryless) with the given mean, and each
/// failure is repaired after RepairHours, renewing the process.
struct HazardSpec {
  FaultKind Kind = FaultKind::PumpFailure;
  std::string Id;
  int Target = 0;
  /// Mean time to failure (the Weibull scale is derived from this).
  double MttfHours = 45000.0;
  /// Weibull shape: < 1 infant mortality, 1 memoryless, > 1 wear-out.
  double WeibullShapeFactor = 1.0;
  /// Repair (fault clear) time; 0 = never repaired.
  double RepairHours = 8.0;
  double SeverityFraction = 1.0;
  double RampS = 0.0;
  double ExtraHeatW = 400.0;
};

/// Samples the deterministic fault schedule implied by \p Hazards over
/// [0, HorizonS). Hazard \p H draws from RandomEngine(Seed,
/// StreamId * 65536 + H): per-fault streams, so adding a hazard never
/// perturbs the draws of the others, and a sweep replicate passes its
/// replicate index as \p StreamId for independent-but-reproducible
/// schedules at any thread count.
std::vector<FaultSpec> sampleFaultSchedule(const std::vector<HazardSpec> &Hazards,
                                           double HorizonS, uint64_t Seed,
                                           uint64_t StreamId);

} // namespace faults
} // namespace rcs

#endif // RCS_FAULTS_FAULTMODEL_H
