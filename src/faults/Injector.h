//===- faults/Injector.h - Fault injection layer ----------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The injection layer between a fault schedule and the transient
/// simulators: it turns scheduled FaultSpecs into per-step plant effects
/// (via setPlantModifier) and per-control-period sensor corruptions (via
/// setSensorTransform), and emits an inject/clear event stream the
/// reliability engine merges with alarm and control-action events into
/// the fault-event trace.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_FAULTS_INJECTOR_H
#define RCS_FAULTS_INJECTOR_H

#include "faults/FaultModel.h"

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace rcs {
namespace faults {

/// One entry of the fault-event stream: fault lifecycle edges, alarm
/// transitions, control actions and protection trips, in one timeline.
struct FaultEvent {
  double TimeS = 0.0;
  /// "inject", "clear", "alarm", "action", "trip" or "migrate".
  std::string Event;
  /// Fault id (inject/clear), sensor name (alarm), action name (action).
  std::string Fault;
  /// Fault model name for inject/clear, free-form detail otherwise.
  std::string Detail;
  int Target = 0;
  double SeverityFraction = 0.0;
};

/// Applies a fault schedule to a running simulation.
///
/// The injector is stateful but deterministic: lifecycle edges (inject /
/// clear) are emitted exactly once each, the first time a poll crosses
/// them, and stuck-at sensors latch the first corrupted reading they see.
/// Wire plantEffectsAt (or rackPlantEffectsAt) into the simulator's plant
/// modifier and transformReadings into its sensor transform.
class FaultInjector {
public:
  explicit FaultInjector(std::vector<FaultSpec> Schedule);

  /// Observer for lifecycle edges; called during simulation.
  void setEventCallback(std::function<void(const FaultEvent &)> Callback) {
    EventCallback = std::move(Callback);
  }

  /// Folds the faults active at \p TimeS into single-module effects.
  void plantEffectsAt(double TimeS, sim::PlantEffects &Effects);

  /// Folds the faults active at \p TimeS into rack effects, sizing the
  /// per-module vectors to \p NumModules when empty.
  void rackPlantEffectsAt(double TimeS, size_t NumModules,
                          sim::RackPlantEffects &Effects);

  /// Applies active sensor faults to the readings the supervisor is
  /// about to see. Out-of-range targets are ignored.
  void transformReadings(double TimeS, double *Values, size_t NumValues);

  const std::vector<FaultSpec> &schedule() const { return Schedule; }

  int injectedCount() const { return InjectedCount; }
  int clearedCount() const { return ClearedCount; }

private:
  /// Emits pending inject/clear edges up to \p TimeS.
  void updateLifecycle(double TimeS);

  struct FaultState {
    bool Announced = false;
    bool Cleared = false;
    bool HaveStuck = false;
    double StuckValue = 0.0;
    double NextSpikeTimeS = 0.0;
  };

  std::vector<FaultSpec> Schedule;
  std::vector<FaultState> States;
  std::function<void(const FaultEvent &)> EventCallback;
  int InjectedCount = 0;
  int ClearedCount = 0;
};

} // namespace faults
} // namespace rcs

#endif // RCS_FAULTS_INJECTOR_H
