//===- faults/Scenario.h - Fault scenario files -----------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON scenario files for the reliability engine: what to simulate
/// (module or rack, which design, for how long), the deterministic fault
/// schedule, the stochastic hazards, and the degradation policy the
/// closed-loop controller runs. Parsing is strict — unknown keys are
/// errors, matching core::ConfigIO's philosophy that a typo should fail
/// loudly rather than silently simulate the wrong campaign.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_FAULTS_SCENARIO_H
#define RCS_FAULTS_SCENARIO_H

#include "faults/FaultModel.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace rcs {
namespace faults {

/// How the closed-loop controller degrades service under Critical alarms
/// instead of tripping immediately: shed clock first, migrate load away
/// from a failing module, and only then stage a shutdown.
struct DegradationPolicyConfig {
  /// False = keep the simulators' built-in protection-only behavior.
  bool Enabled = true;
  /// Lowest clock scale the rack policy will shed to.
  double ClockFloorFraction = 0.5;
  /// Clock scale removed per Critical control period (rack level).
  double ShedStepFraction = 0.1;
  /// Critical control periods tolerated before a staged shutdown.
  int CriticalPeriodsToShutdown = 4;
  /// Migrate a shut-down or tripped module's utilization to survivors.
  bool MigrateLoad = true;
  /// Per-module utilization headroom migration may fill to.
  double UtilizationBound = 1.0;
};

/// One reliability campaign: plant + schedule + policy.
struct Scenario {
  std::string Name = "scenario";
  /// False = one module (sim::TransientSimulator), true = whole rack
  /// (sim::RackTransientSimulator).
  bool RackLevel = false;
  /// Design name: "skat", "skat-plus" (module level also accepts
  /// "skat-plus-naive"). Air-cooled designs cannot run the immersion
  /// transient plant and are rejected by the engine.
  std::string Design = "skat";
  /// Optional INI module config (core::ConfigIO) overriding Design.
  std::string ModuleConfigPath;
  double DurationS = 4.0 * 3600.0;
  uint64_t Seed = 2026;
  DegradationPolicyConfig Policy;
  std::vector<FaultSpec> Faults;
  std::vector<HazardSpec> Hazards;
};

/// Parses a scenario from JSON text. Times in the file are in hours
/// ("at_h", "duration_h", ...) to match the CLI conventions; severities
/// are fractions in [0, 1].
Expected<Scenario> parseScenario(const std::string &JsonText);

/// Reads and parses a scenario file.
Expected<Scenario> loadScenarioFile(const std::string &Path);

} // namespace faults
} // namespace rcs

#endif // RCS_FAULTS_SCENARIO_H
