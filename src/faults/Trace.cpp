//===- faults/Trace.cpp - Fault-event JSONL traces ------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "faults/Trace.h"

#include <fstream>
#include <sstream>

using namespace rcs;
using namespace rcs::faults;

namespace {

void appendEscaped(std::ostream &Out, const std::string &Text) {
  for (char C : Text) {
    switch (C) {
    case '"':
      Out << "\\\"";
      break;
    case '\\':
      Out << "\\\\";
      break;
    case '\n':
      Out << "\\n";
      break;
    case '\t':
      Out << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out << ' ';
      else
        Out << C;
    }
  }
}

void appendEventLine(std::ostream &Out, const FaultEvent &Event) {
  Out << "{\"kind\": \"fault_event\", \"t_s\": " << Event.TimeS
      << ", \"event\": \"";
  appendEscaped(Out, Event.Event);
  Out << "\", \"fault\": \"";
  appendEscaped(Out, Event.Fault);
  // Injection edges carry the model name under "fault_kind" ("kind" is
  // taken by the line discriminator); other events carry free-form
  // detail.
  bool Lifecycle = Event.Event == "inject" || Event.Event == "clear";
  Out << "\", \"" << (Lifecycle ? "fault_kind" : "detail") << "\": \"";
  appendEscaped(Out, Event.Detail);
  Out << "\", \"target\": " << Event.Target
      << ", \"severity\": " << Event.SeverityFraction << "}\n";
}

} // namespace

std::string rcs::faults::faultEventTraceToString(const ScenarioOutcome &Outcome,
                                                 uint64_t Seed) {
  std::ostringstream Out;
  Out.precision(12);
  Out << "{\"kind\": \"fault_trace_header\", \"version\": 1, "
         "\"scenario\": \"";
  appendEscaped(Out, Outcome.Name);
  Out << "\", \"seed\": " << Seed
      << ", \"duration_s\": " << Outcome.DurationS
      << ", \"events\": " << Outcome.Events.size() << "}\n";
  for (const FaultEvent &Event : Outcome.Events)
    appendEventLine(Out, Event);
  return Out.str();
}

Status rcs::faults::writeFaultEventTrace(const std::string &Path,
                                         const ScenarioOutcome &Outcome,
                                         uint64_t Seed) {
  std::ofstream Stream(Path, std::ios::trunc);
  if (!Stream)
    return Status::error("cannot open fault trace file '" + Path + "'");
  Stream << faultEventTraceToString(Outcome, Seed);
  Stream.flush();
  if (!Stream)
    return Status::error("failed writing fault trace '" + Path + "'");
  return Status::ok();
}
