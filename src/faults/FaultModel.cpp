//===- faults/FaultModel.cpp - Parameterized fault models -----------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "faults/FaultModel.h"

#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::faults;

const char *rcs::faults::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::PumpDegradation:
    return "pump_degradation";
  case FaultKind::PumpFailure:
    return "pump_failure";
  case FaultKind::HxFouling:
    return "hx_fouling";
  case FaultKind::ValveBlockage:
    return "valve_blockage";
  case FaultKind::CoolantLoss:
    return "coolant_loss";
  case FaultKind::ChillerDerate:
    return "chiller_derate";
  case FaultKind::PsuEfficiencyDroop:
    return "psu_efficiency_droop";
  case FaultKind::SensorDrift:
    return "sensor_drift";
  case FaultKind::SensorStuck:
    return "sensor_stuck";
  case FaultKind::SensorDropout:
    return "sensor_dropout";
  case FaultKind::SensorSpike:
    return "sensor_spike";
  }
  return "unknown";
}

Expected<FaultKind> rcs::faults::faultKindByName(std::string_view Name) {
  static const FaultKind Kinds[] = {
      FaultKind::PumpDegradation, FaultKind::PumpFailure,
      FaultKind::HxFouling,       FaultKind::ValveBlockage,
      FaultKind::CoolantLoss,     FaultKind::ChillerDerate,
      FaultKind::PsuEfficiencyDroop, FaultKind::SensorDrift,
      FaultKind::SensorStuck,     FaultKind::SensorDropout,
      FaultKind::SensorSpike};
  for (FaultKind Kind : Kinds)
    if (Name == faultKindName(Kind))
      return Kind;
  return Expected<FaultKind>::error("unknown fault kind '" +
                                    std::string(Name) + "'");
}

bool rcs::faults::isSensorFault(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::SensorDrift:
  case FaultKind::SensorStuck:
  case FaultKind::SensorDropout:
  case FaultKind::SensorSpike:
    return true;
  default:
    return false;
  }
}

double rcs::faults::severityAt(const FaultSpec &Spec, double TimeS) {
  if (TimeS < Spec.StartTimeS)
    return 0.0;
  if (Spec.DurationS > 0.0 && TimeS >= Spec.StartTimeS + Spec.DurationS)
    return 0.0;
  double Severity = std::clamp(Spec.SeverityFraction, 0.0, 1.0);
  // All-or-nothing kinds behave as severity 1 while active.
  if (Spec.Kind == FaultKind::PumpFailure ||
      Spec.Kind == FaultKind::SensorDropout)
    Severity = 1.0;
  if (Spec.RampS > 0.0) {
    double Ramp = (TimeS - Spec.StartTimeS) / Spec.RampS;
    Severity *= std::clamp(Ramp, 0.0, 1.0);
  }
  return Severity;
}

void rcs::faults::applyPlantFault(const FaultSpec &Spec,
                                  double SeverityFraction,
                                  sim::PlantEffects &Effects) {
  if (SeverityFraction <= 0.0 || isSensorFault(Spec.Kind))
    return;
  switch (Spec.Kind) {
  case FaultKind::PumpDegradation:
  case FaultKind::PumpFailure:
    Effects.PumpSpeedFactor *= 1.0 - SeverityFraction;
    break;
  case FaultKind::HxFouling:
    Effects.HxUaFactor *= std::max(1.0 - SeverityFraction, 0.02);
    break;
  case FaultKind::ValveBlockage:
    Effects.FlowRestrictionFactor *= std::max(1.0 - SeverityFraction, 0.02);
    break;
  case FaultKind::CoolantLoss:
    Effects.CoolantInventoryFactor *= std::max(1.0 - SeverityFraction, 0.05);
    break;
  case FaultKind::ChillerDerate:
    // A single module sees a derated chiller as a warmer, weaker HX
    // boundary; approximate with lost UA.
    Effects.HxUaFactor *= std::max(1.0 - 0.5 * SeverityFraction, 0.05);
    break;
  case FaultKind::PsuEfficiencyDroop:
    Effects.ExtraHeatW += SeverityFraction * Spec.ExtraHeatW;
    break;
  default:
    break;
  }
}

void rcs::faults::applyRackPlantFault(const FaultSpec &Spec,
                                      double SeverityFraction,
                                      sim::RackPlantEffects &Effects) {
  if (SeverityFraction <= 0.0 || isSensorFault(Spec.Kind))
    return;
  if (Spec.Kind == FaultKind::ChillerDerate) {
    Effects.ChillerCapacityFactor *= 1.0 - SeverityFraction;
    return;
  }
  size_t NumModules = Effects.ModulePumpFactor.size();
  assert(NumModules == Effects.ModuleUaFactor.size() &&
         NumModules == Effects.ModuleExtraHeatW.size() &&
         "rack effect vectors must be pre-sized");
  if (NumModules == 0)
    return;
  size_t Module = static_cast<size_t>(
      std::clamp(Spec.Target, 0, static_cast<int>(NumModules) - 1));
  switch (Spec.Kind) {
  case FaultKind::PumpDegradation:
  case FaultKind::PumpFailure:
    Effects.ModulePumpFactor[Module] *= 1.0 - SeverityFraction;
    break;
  case FaultKind::ValveBlockage:
    // Rack flow is pump-speed driven; a blocked branch is lost delivery.
    Effects.ModulePumpFactor[Module] *=
        std::max(1.0 - SeverityFraction, 0.02);
    break;
  case FaultKind::HxFouling:
  case FaultKind::CoolantLoss:
    // The rack model keeps no per-module inventory; coolant loss shows
    // up as the bath no longer covering the exchanger (lost UA).
    Effects.ModuleUaFactor[Module] *= std::max(1.0 - SeverityFraction, 0.02);
    break;
  case FaultKind::PsuEfficiencyDroop:
    Effects.ModuleExtraHeatW[Module] += SeverityFraction * Spec.ExtraHeatW;
    break;
  default:
    break;
  }
}

double rcs::faults::psuDroopExtraHeatW(double LoadW, double EfficiencyFraction,
                                       double DroopFraction) {
  assert(LoadW >= 0.0 && EfficiencyFraction > 0.0 &&
         EfficiencyFraction <= 1.0 && "invalid PSU operating point");
  double Drooped =
      std::max(EfficiencyFraction * (1.0 - DroopFraction), 1e-3);
  double HealthyLoss = LoadW * (1.0 - EfficiencyFraction) / EfficiencyFraction;
  double DroopedLoss = LoadW * (1.0 - Drooped) / Drooped;
  return std::max(DroopedLoss - HealthyLoss, 0.0);
}

std::vector<FaultSpec>
rcs::faults::sampleFaultSchedule(const std::vector<HazardSpec> &Hazards,
                                 double HorizonS, uint64_t Seed,
                                 uint64_t StreamId) {
  std::vector<FaultSpec> Schedule;
  for (size_t H = 0; H != Hazards.size(); ++H) {
    const HazardSpec &Hazard = Hazards[H];
    assert(Hazard.MttfHours > 0.0 && Hazard.WeibullShapeFactor > 0.0 &&
           "invalid hazard");
    RandomEngine Rng(Seed, StreamId * 65536 + H);
    // Weibull mean = scale * Gamma(1 + 1/shape); invert for the scale.
    double Scale =
        Hazard.MttfHours / std::tgamma(1.0 + 1.0 / Hazard.WeibullShapeFactor);
    double ClockHours = 0.0;
    int Occurrence = 0;
    while (true) {
      ClockHours += Rng.weibullSample(Hazard.WeibullShapeFactor, Scale);
      if (ClockHours * 3600.0 >= HorizonS)
        break;
      FaultSpec Spec;
      Spec.Kind = Hazard.Kind;
      Spec.Id = Hazard.Id + "#" + std::to_string(Occurrence++);
      Spec.Target = Hazard.Target;
      Spec.StartTimeS = ClockHours * 3600.0;
      Spec.DurationS = Hazard.RepairHours * 3600.0;
      Spec.SeverityFraction = Hazard.SeverityFraction;
      Spec.RampS = Hazard.RampS;
      Spec.ExtraHeatW = Hazard.ExtraHeatW;
      Schedule.push_back(std::move(Spec));
      if (Hazard.RepairHours <= 0.0)
        break; // Permanent fault: the process does not renew.
      ClockHours += Hazard.RepairHours;
    }
  }
  std::stable_sort(Schedule.begin(), Schedule.end(),
                   [](const FaultSpec &A, const FaultSpec &B) {
                     return A.StartTimeS < B.StartTimeS;
                   });
  return Schedule;
}
