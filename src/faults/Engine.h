//===- faults/Engine.h - Closed-loop reliability engine ---------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one fault scenario closed-loop: the injector degrades the plant
/// and corrupts sensors, the supervisory monitor debounces alarms, and a
/// staged degradation policy responds — shed clock on Critical, migrate
/// load off a failing module, and only shut down after the alarm persists
/// — producing an availability/throughput trace and a merged fault-event
/// timeline (injections, alarms, actions, trips) for the JSONL trace.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_FAULTS_ENGINE_H
#define RCS_FAULTS_ENGINE_H

#include "faults/Injector.h"
#include "faults/Scenario.h"
#include "support/Status.h"
#include "system/Monitoring.h"

#include <cstdint>
#include <string>
#include <vector>

namespace rcs {
namespace faults {

/// What one scenario run produced.
struct ScenarioOutcome {
  std::string Name;
  double DurationS = 0.0;
  /// Fraction of module-time spent up (not shut down or tripped).
  double AvailabilityFraction = 1.0;
  /// Work executed relative to the fault-free schedule (clock x
  /// utilization scaling, zero while down), averaged over the run.
  double ThroughputRetainedFraction = 1.0;
  double MaxJunctionC = 0.0;
  double FinalJunctionC = 0.0;
  /// Time of the first Critical alarm transition; < 0 = never.
  double TimeToFirstCriticalS = -1.0;
  int FaultsInjected = 0;
  int FaultsCleared = 0;
  /// Distinct control-action events (edges, not repeated periods).
  int ActionsTaken = 0;
  int ModulesShutDown = 0;
  /// The run ended in a safe degraded steady state: junction below the
  /// protection trip and no longer climbing over the final tenth of the
  /// run.
  bool SafeDegradedEnd = true;
  rcsystem::AlarmLevel FinalAlarm = rcsystem::AlarmLevel::Normal;
  /// Physics-audit totals of the run (audit::PhysicsAuditor rides along
  /// with every scenario simulation): worst energy-closure fraction over
  /// global and per-node residuals, worst operator-splitting coupling
  /// fraction (rack scenarios only), warn-budget violations summed over
  /// all invariants, and whether every invariant stayed within its
  /// critical budget.
  double AuditMaxEnergyFraction = 0.0;
  double AuditMaxCouplingFraction = 0.0;
  uint64_t AuditViolationCount = 0;
  bool AuditWithinBudget = true;
  /// Merged chronological event timeline.
  std::vector<FaultEvent> Events;
  /// Sampled worst junction temperatures (for sweep histograms).
  std::vector<double> JunctionSampleC;
};

/// Runs \p S once. \p HazardStream selects the RNG stream family for
/// hazard sampling (0 for a single run; a sweep passes the replicate
/// index so replicates draw independent schedules reproducibly).
Expected<ScenarioOutcome> runScenario(const Scenario &S,
                                      uint64_t HazardStream = 0);

} // namespace faults
} // namespace rcs

#endif // RCS_FAULTS_ENGINE_H
