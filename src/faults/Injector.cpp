//===- faults/Injector.cpp - Fault injection layer ------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "faults/Injector.h"

#include <cmath>
#include <limits>

using namespace rcs;
using namespace rcs::faults;

FaultInjector::FaultInjector(std::vector<FaultSpec> Schedule)
    : Schedule(std::move(Schedule)) {
  States.resize(this->Schedule.size());
  for (size_t F = 0; F != this->Schedule.size(); ++F)
    States[F].NextSpikeTimeS = this->Schedule[F].StartTimeS;
}

void FaultInjector::updateLifecycle(double TimeS) {
  for (size_t F = 0; F != Schedule.size(); ++F) {
    const FaultSpec &Spec = Schedule[F];
    FaultState &State = States[F];
    bool Active = severityAt(Spec, TimeS) > 0.0 ||
                  (TimeS >= Spec.StartTimeS && Spec.RampS > 0.0 &&
                   (Spec.DurationS <= 0.0 ||
                    TimeS < Spec.StartTimeS + Spec.DurationS));
    if (Active && !State.Announced) {
      State.Announced = true;
      ++InjectedCount;
      if (EventCallback)
        EventCallback({TimeS, "inject", Spec.Id, faultKindName(Spec.Kind),
                       Spec.Target, Spec.SeverityFraction});
    }
    if (State.Announced && !State.Cleared && Spec.DurationS > 0.0 &&
        TimeS >= Spec.StartTimeS + Spec.DurationS) {
      State.Cleared = true;
      State.HaveStuck = false; // A repaired sensor reads true again.
      ++ClearedCount;
      if (EventCallback)
        EventCallback({TimeS, "clear", Spec.Id, faultKindName(Spec.Kind),
                       Spec.Target, 0.0});
    }
  }
}

void FaultInjector::plantEffectsAt(double TimeS, sim::PlantEffects &Effects) {
  updateLifecycle(TimeS);
  for (const FaultSpec &Spec : Schedule)
    applyPlantFault(Spec, severityAt(Spec, TimeS), Effects);
}

void FaultInjector::rackPlantEffectsAt(double TimeS, size_t NumModules,
                                       sim::RackPlantEffects &Effects) {
  updateLifecycle(TimeS);
  if (Effects.ModulePumpFactor.empty())
    Effects.ModulePumpFactor.assign(NumModules, 1.0);
  if (Effects.ModuleUaFactor.empty())
    Effects.ModuleUaFactor.assign(NumModules, 1.0);
  if (Effects.ModuleExtraHeatW.empty())
    Effects.ModuleExtraHeatW.assign(NumModules, 0.0);
  for (const FaultSpec &Spec : Schedule)
    applyRackPlantFault(Spec, severityAt(Spec, TimeS), Effects);
}

void FaultInjector::transformReadings(double TimeS, double *Values,
                                      size_t NumValues) {
  updateLifecycle(TimeS);
  for (size_t F = 0; F != Schedule.size(); ++F) {
    const FaultSpec &Spec = Schedule[F];
    if (!isSensorFault(Spec.Kind))
      continue;
    double Severity = severityAt(Spec, TimeS);
    if (Severity <= 0.0)
      continue;
    if (Spec.Target < 0 || static_cast<size_t>(Spec.Target) >= NumValues)
      continue;
    double &Reading = Values[Spec.Target];
    FaultState &State = States[F];
    switch (Spec.Kind) {
    case FaultKind::SensorDrift:
      // Multiplicative drift: severity 0.1 reads 10 % high.
      Reading *= 1.0 + Severity;
      break;
    case FaultKind::SensorStuck:
      if (!State.HaveStuck) {
        State.HaveStuck = true;
        State.StuckValue = Reading;
      }
      Reading = State.StuckValue;
      break;
    case FaultKind::SensorDropout:
      Reading = std::numeric_limits<double>::quiet_NaN();
      break;
    case FaultKind::SensorSpike:
      // Deterministic pulse train: one corrupted poll per period.
      if (TimeS >= State.NextSpikeTimeS) {
        Reading *= 1.0 + 2.0 * Severity;
        State.NextSpikeTimeS =
            Spec.PeriodS > 0.0 ? State.NextSpikeTimeS + Spec.PeriodS : TimeS;
      }
      break;
    default:
      break;
    }
  }
}
