//===- support/Interp.cpp - Piecewise-linear lookup tables -----------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Interp.h"

#include <algorithm>

using namespace rcs;

LinearTable::LinearTable(
    std::initializer_list<std::pair<double, double>> Samples) {
  Xs.reserve(Samples.size());
  Ys.reserve(Samples.size());
  for (const auto &[X, Y] : Samples) {
    assert((Xs.empty() || X > Xs.back()) &&
           "LinearTable x values must strictly increase");
    Xs.push_back(X);
    Ys.push_back(Y);
  }
  assert(Xs.size() >= 2 && "LinearTable needs at least two samples");
}

LinearTable::LinearTable(std::vector<double> XsIn, std::vector<double> YsIn)
    : Xs(std::move(XsIn)), Ys(std::move(YsIn)) {
  assert(Xs.size() == Ys.size() && "LinearTable size mismatch");
  assert(Xs.size() >= 2 && "LinearTable needs at least two samples");
  for (size_t I = 1, E = Xs.size(); I != E; ++I)
    assert(Xs[I] > Xs[I - 1] && "LinearTable x values must strictly increase");
}

size_t LinearTable::segmentFor(double X) const {
  assert(Xs.size() >= 2 && "evaluating an empty LinearTable");
  // Index of the segment [Xs[I], Xs[I+1]] containing (or nearest to) X.
  auto It = std::upper_bound(Xs.begin(), Xs.end(), X);
  if (It == Xs.begin())
    return 0;
  size_t Idx = static_cast<size_t>(It - Xs.begin()) - 1;
  return std::min(Idx, Xs.size() - 2);
}

double LinearTable::evaluate(double X) const {
  assert(!Xs.empty() && "evaluating an empty LinearTable");
  if (!Extrapolate) {
    if (X <= Xs.front())
      return Ys.front();
    if (X >= Xs.back())
      return Ys.back();
  }
  size_t I = segmentFor(X);
  double Slope = (Ys[I + 1] - Ys[I]) / (Xs[I + 1] - Xs[I]);
  return Ys[I] + Slope * (X - Xs[I]);
}

double LinearTable::derivative(double X) const {
  assert(!Xs.empty() && "differentiating an empty LinearTable");
  if (!Extrapolate) {
    if (X < Xs.front() || X > Xs.back())
      return 0.0;
  }
  size_t I = segmentFor(X);
  return (Ys[I + 1] - Ys[I]) / (Xs[I + 1] - Xs[I]);
}

UniformTable::UniformTable(const LinearTable &Source, double MinXIn,
                           double MaxXIn, size_t NumCells)
    : MinX(MinXIn), MaxX(MaxXIn) {
  assert(MaxX > MinX && NumCells >= 1 && "invalid uniform grid");
  double Step = (MaxX - MinX) / static_cast<double>(NumCells);
  InvStep = 1.0 / Step;
  Ys.resize(NumCells + 1);
  for (size_t I = 0; I <= NumCells; ++I) {
    // Pin the last sample to MaxX so clamping matches the source table.
    double X = I == NumCells ? MaxX : MinX + static_cast<double>(I) * Step;
    Ys[I] = Source.evaluate(X);
  }
}

double LinearTable::inverse(double Y) const {
  assert(Xs.size() >= 2 && "inverting an empty LinearTable");
  bool Increasing = Ys.back() > Ys.front();
#ifndef NDEBUG
  for (size_t I = 1, E = Ys.size(); I != E; ++I)
    assert((Increasing ? Ys[I] > Ys[I - 1] : Ys[I] < Ys[I - 1]) &&
           "LinearTable::inverse requires strictly monotonic y values");
#endif
  // Clamp to range.
  double YLow = Increasing ? Ys.front() : Ys.back();
  double YHigh = Increasing ? Ys.back() : Ys.front();
  if (Y <= YLow)
    return Increasing ? Xs.front() : Xs.back();
  if (Y >= YHigh)
    return Increasing ? Xs.back() : Xs.front();
  for (size_t I = 1, E = Ys.size(); I != E; ++I) {
    bool InSegment = Increasing ? (Y <= Ys[I]) : (Y >= Ys[I]);
    if (!InSegment)
      continue;
    double Slope = (Xs[I] - Xs[I - 1]) / (Ys[I] - Ys[I - 1]);
    return Xs[I - 1] + Slope * (Y - Ys[I - 1]);
  }
  return Xs.back();
}
