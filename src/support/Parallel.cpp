//===- support/Parallel.cpp - Deterministic parallel loops ----------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Parallel.h"

#include <atomic>
#include <thread>
#include <vector>

using namespace rcs;

void rcs::parallelFor(int NumThreads, size_t NumItems,
                      const std::function<void(size_t Item)> &Fn) {
  if (NumItems == 0)
    return;
  int Workers = clampThreadCount(NumThreads);
  if (static_cast<size_t>(Workers) > NumItems)
    Workers = static_cast<int>(NumItems);
  if (Workers <= 1) {
    for (size_t Item = 0; Item != NumItems; ++Item)
      Fn(Item);
    return;
  }

  std::atomic<size_t> NextItem{0};
  auto Body = [&] {
    while (true) {
      size_t Item = NextItem.fetch_add(1, std::memory_order_relaxed);
      if (Item >= NumItems)
        return;
      Fn(Item);
    }
  };

  std::vector<std::thread> Pool;
  Pool.reserve(static_cast<size_t>(Workers) - 1);
  for (int I = 1; I < Workers; ++I)
    Pool.emplace_back(Body);
  Body();
  for (std::thread &Worker : Pool)
    Worker.join();
}

int rcs::clampThreadCount(int Requested) {
  unsigned Hardware = std::thread::hardware_concurrency();
  if (Hardware == 0)
    Hardware = 1;
  if (Requested <= 0)
    return static_cast<int>(Hardware);
  if (static_cast<unsigned>(Requested) > Hardware)
    return static_cast<int>(Hardware);
  return Requested;
}
