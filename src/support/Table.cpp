//===- support/Table.cpp - Plain-text report tables ------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cassert>

using namespace rcs;

Table::Table(std::vector<std::string> HeadersIn)
    : Headers(std::move(HeadersIn)) {
  assert(!Headers.empty() && "a table needs at least one column");
}

void Table::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Headers.size() &&
         "row width must match the header count");
  Rows.push_back(std::move(Cells));
}

void Table::addSeparator() { Rows.push_back({}); }

std::string Table::render() const {
  std::vector<size_t> Widths(Headers.size(), 0);
  for (size_t Col = 0, E = Headers.size(); Col != E; ++Col)
    Widths[Col] = Headers[Col].size();
  for (const auto &Row : Rows) {
    if (Row.empty())
      continue;
    for (size_t Col = 0, E = Row.size(); Col != E; ++Col)
      Widths[Col] = std::max(Widths[Col], Row[Col].size());
  }

  auto renderLine = [&](const std::vector<std::string> &Cells) {
    std::string Line = "|";
    for (size_t Col = 0, E = Headers.size(); Col != E; ++Col) {
      const std::string &Cell = Col < Cells.size() ? Cells[Col] : "";
      Line += " " + Cell + std::string(Widths[Col] - Cell.size(), ' ') + " |";
    }
    return Line + "\n";
  };
  auto renderSeparator = [&]() {
    std::string Line = "|";
    for (size_t Col = 0, E = Headers.size(); Col != E; ++Col)
      Line += std::string(Widths[Col] + 2, '-') + "|";
    return Line + "\n";
  };

  std::string Out = renderLine(Headers);
  Out += renderSeparator();
  for (const auto &Row : Rows)
    Out += Row.empty() ? renderSeparator() : renderLine(Row);
  return Out;
}
