//===- support/Interp.h - Piecewise-linear lookup tables -------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Piecewise-linear interpolation tables used for fluid properties, pump
/// curves and fan curves. Values outside the table range are clamped to the
/// end segments (linear extrapolation is optional).
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SUPPORT_INTERP_H
#define RCS_SUPPORT_INTERP_H

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <utility>
#include <vector>

namespace rcs {

/// A piecewise-linear function y(x) defined by sorted sample points.
class LinearTable {
public:
  LinearTable() = default;

  /// Builds a table from (x, y) samples; x values must strictly increase.
  LinearTable(std::initializer_list<std::pair<double, double>> Samples);

  /// Builds a table from parallel vectors; x values must strictly increase.
  LinearTable(std::vector<double> Xs, std::vector<double> Ys);

  /// Evaluates the table at \p X.
  ///
  /// Outside the sample range the value is clamped to the first or last
  /// sample unless extrapolation was enabled with setExtrapolate.
  double evaluate(double X) const;

  /// Enables linear extrapolation beyond the end points.
  void setExtrapolate(bool Enable) { Extrapolate = Enable; }

  /// Returns the derivative dy/dx at \p X (piecewise constant).
  double derivative(double X) const;

  /// Returns the inverse x(y) assuming y values strictly increase or
  /// strictly decrease. Asserts on non-monotonic tables.
  double inverse(double Y) const;

  size_t size() const { return Xs.size(); }
  bool empty() const { return Xs.empty(); }
  double minX() const {
    assert(!Xs.empty());
    return Xs.front();
  }
  double maxX() const {
    assert(!Xs.empty());
    return Xs.back();
  }

private:
  size_t segmentFor(double X) const;

  std::vector<double> Xs;
  std::vector<double> Ys;
  bool Extrapolate = false;
};

/// A uniform-grid resampling of a LinearTable: evaluation is O(1) index
/// arithmetic instead of a binary search, which matters for property
/// lookups inside solver inner loops.
///
/// The resampling is monotone by construction — linear interpolation
/// between samples of a piecewise-linear function cannot overshoot its
/// range — and exact (up to rounding) wherever the source knots land on
/// the grid. Evaluation clamps to [minX, maxX] exactly like a
/// non-extrapolating LinearTable.
class UniformTable {
public:
  UniformTable() = default;

  /// Resamples \p Source on NumCells+1 evenly spaced points spanning
  /// [MinX, MaxX].
  UniformTable(const LinearTable &Source, double MinX, double MaxX,
               size_t NumCells);

  /// Evaluates the table at \p X, clamped to the grid range.
  double evaluate(double X) const {
    assert(!Ys.empty() && "evaluating an empty UniformTable");
    if (X <= MinX)
      return Ys.front();
    if (X >= MaxX)
      return Ys.back();
    double GridIndex = (X - MinX) * InvStep;
    size_t Cell = static_cast<size_t>(GridIndex);
    // Rounding in GridIndex can land exactly on the last sample.
    if (Cell >= Ys.size() - 1)
      Cell = Ys.size() - 2;
    double CellFraction = GridIndex - static_cast<double>(Cell);
    return Ys[Cell] + CellFraction * (Ys[Cell + 1] - Ys[Cell]);
  }

  bool empty() const { return Ys.empty(); }
  size_t size() const { return Ys.size(); }
  double minX() const { return MinX; }
  double maxX() const { return MaxX; }

private:
  double MinX = 0.0;
  double MaxX = 0.0;
  // skatlint:ignore(unit-suffix) -- reciprocal grid step, 1/x-units
  double InvStep = 0.0;
  std::vector<double> Ys;
};

} // namespace rcs

#endif // RCS_SUPPORT_INTERP_H
