//===- support/Interp.h - Piecewise-linear lookup tables -------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Piecewise-linear interpolation tables used for fluid properties, pump
/// curves and fan curves. Values outside the table range are clamped to the
/// end segments (linear extrapolation is optional).
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SUPPORT_INTERP_H
#define RCS_SUPPORT_INTERP_H

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <utility>
#include <vector>

namespace rcs {

/// A piecewise-linear function y(x) defined by sorted sample points.
class LinearTable {
public:
  LinearTable() = default;

  /// Builds a table from (x, y) samples; x values must strictly increase.
  LinearTable(std::initializer_list<std::pair<double, double>> Samples);

  /// Builds a table from parallel vectors; x values must strictly increase.
  LinearTable(std::vector<double> Xs, std::vector<double> Ys);

  /// Evaluates the table at \p X.
  ///
  /// Outside the sample range the value is clamped to the first or last
  /// sample unless extrapolation was enabled with setExtrapolate.
  double evaluate(double X) const;

  /// Enables linear extrapolation beyond the end points.
  void setExtrapolate(bool Enable) { Extrapolate = Enable; }

  /// Returns the derivative dy/dx at \p X (piecewise constant).
  double derivative(double X) const;

  /// Returns the inverse x(y) assuming y values strictly increase or
  /// strictly decrease. Asserts on non-monotonic tables.
  double inverse(double Y) const;

  size_t size() const { return Xs.size(); }
  bool empty() const { return Xs.empty(); }
  double minX() const {
    assert(!Xs.empty());
    return Xs.front();
  }
  double maxX() const {
    assert(!Xs.empty());
    return Xs.back();
  }

private:
  size_t segmentFor(double X) const;

  std::vector<double> Xs;
  std::vector<double> Ys;
  bool Extrapolate = false;
};

} // namespace rcs

#endif // RCS_SUPPORT_INTERP_H
