//===- support/Numerics.cpp - Small numeric kernels ------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Numerics.h"

#include <algorithm>
#include <cmath>

using namespace rcs;

Matrix Matrix::identity(size_t N) {
  Matrix M(N, N);
  for (size_t I = 0; I != N; ++I)
    M.at(I, I) = 1.0;
  return M;
}

std::vector<double> Matrix::apply(const std::vector<double> &X) const {
  assert(X.size() == NumCols && "dimension mismatch in Matrix::apply");
  std::vector<double> Y(NumRows, 0.0);
  for (size_t Row = 0; Row != NumRows; ++Row) {
    double Sum = 0.0;
    for (size_t Col = 0; Col != NumCols; ++Col)
      Sum += at(Row, Col) * X[Col];
    Y[Row] = Sum;
  }
  return Y;
}

Expected<std::vector<double>> rcs::solveDense(Matrix A,
                                              std::vector<double> B) {
  assert(A.rows() == A.cols() && "solveDense needs a square matrix");
  assert(A.rows() == B.size() && "dimension mismatch in solveDense");
  const size_t N = A.rows();
  std::vector<size_t> Perm(N);
  for (size_t I = 0; I != N; ++I)
    Perm[I] = I;

  for (size_t Col = 0; Col != N; ++Col) {
    // Partial pivoting: pick the largest magnitude entry in this column.
    size_t Pivot = Col;
    double Best = std::fabs(A.at(Col, Col));
    for (size_t Row = Col + 1; Row != N; ++Row) {
      double Candidate = std::fabs(A.at(Row, Col));
      if (Candidate > Best) {
        Best = Candidate;
        Pivot = Row;
      }
    }
    if (Best < 1e-300)
      return Expected<std::vector<double>>::error(
          "singular matrix in solveDense");
    if (Pivot != Col) {
      for (size_t K = 0; K != N; ++K)
        std::swap(A.at(Col, K), A.at(Pivot, K));
      std::swap(B[Col], B[Pivot]);
    }
    double Diag = A.at(Col, Col);
    for (size_t Row = Col + 1; Row != N; ++Row) {
      double Factor = A.at(Row, Col) / Diag;
      // skatlint:ignore(float-equality) -- exact zero skips work only; any
      // nonzero factor, however small, must still eliminate.
      if (Factor == 0.0)
        continue;
      A.at(Row, Col) = 0.0;
      for (size_t K = Col + 1; K != N; ++K)
        A.at(Row, K) -= Factor * A.at(Col, K);
      B[Row] -= Factor * B[Col];
    }
  }

  std::vector<double> X(N, 0.0);
  for (size_t RowPlus1 = N; RowPlus1 != 0; --RowPlus1) {
    size_t Row = RowPlus1 - 1;
    double Sum = B[Row];
    for (size_t K = Row + 1; K != N; ++K)
      Sum -= A.at(Row, K) * X[K];
    X[Row] = Sum / A.at(Row, Row);
  }
  return X;
}

Status LuFactorization::factor(Matrix A) {
  assert(A.rows() == A.cols() && "LuFactorization needs a square matrix");
  const size_t N = A.rows();
  Valid = false;
  PivotRow.assign(N, 0);

  // Identical elimination sequence to solveDense, with two bookkeeping
  // differences: the pivot row per column is recorded, and the multiplier
  // is stored below the diagonal instead of being zeroed.
  for (size_t Col = 0; Col != N; ++Col) {
    size_t Pivot = Col;
    double Best = std::fabs(A.at(Col, Col));
    for (size_t Row = Col + 1; Row != N; ++Row) {
      double Candidate = std::fabs(A.at(Row, Col));
      if (Candidate > Best) {
        Best = Candidate;
        Pivot = Row;
      }
    }
    if (Best < 1e-300)
      return Status::error("singular matrix in solveDense");
    PivotRow[Col] = Pivot;
    if (Pivot != Col)
      for (size_t K = 0; K != N; ++K)
        std::swap(A.at(Col, K), A.at(Pivot, K));
    double Diag = A.at(Col, Col);
    for (size_t Row = Col + 1; Row != N; ++Row) {
      double Factor = A.at(Row, Col) / Diag;
      A.at(Row, Col) = Factor;
      // skatlint:ignore(float-equality) -- exact zero skips work only,
      // mirroring solveDense; any nonzero factor must still eliminate.
      if (Factor == 0.0)
        continue;
      for (size_t K = Col + 1; K != N; ++K)
        A.at(Row, K) -= Factor * A.at(Col, K);
    }
  }
  // Pack the multipliers column-major so solve()'s forward pass reads
  // them with unit stride instead of striding down the row-major matrix.
  LowerPacked.clear();
  LowerPacked.reserve(N * (N - 1) / 2);
  for (size_t Col = 0; Col != N; ++Col)
    for (size_t Row = Col + 1; Row != N; ++Row)
      LowerPacked.push_back(A.at(Row, Col));
  Lu = std::move(A);
  Valid = true;
  return Status::ok();
}

std::vector<double> LuFactorization::solve(std::vector<double> B) const {
  assert(Valid && "solve() on an invalid LuFactorization");
  const size_t N = Lu.rows();
  assert(B.size() == N && "dimension mismatch in LuFactorization::solve");

  // Forward pass: replay the row swaps and eliminations in the exact
  // order solveDense applied them to its right-hand side, so each B entry
  // sees the same sequence of operations (bit-identical results).
  const double *Packed = LowerPacked.data();
  for (size_t Col = 0; Col != N; ++Col) {
    if (PivotRow[Col] != Col)
      std::swap(B[Col], B[PivotRow[Col]]);
    double Bc = B[Col];
    for (size_t Row = Col + 1; Row != N; ++Row) {
      double Factor = *Packed++;
      // skatlint:ignore(float-equality) -- replays solveDense's exact-zero
      // skip so the operation sequence matches bit for bit.
      if (Factor == 0.0)
        continue;
      B[Row] -= Factor * Bc;
    }
  }

  std::vector<double> X(N, 0.0);
  for (size_t RowPlus1 = N; RowPlus1 != 0; --RowPlus1) {
    size_t Row = RowPlus1 - 1;
    double Sum = B[Row];
    for (size_t K = Row + 1; K != N; ++K)
      Sum -= Lu.at(Row, K) * X[K];
    X[Row] = Sum / Lu.at(Row, Row);
  }
  return X;
}

Expected<std::vector<double>>
rcs::solveTridiagonal(std::vector<double> Lower, std::vector<double> Diag,
                      std::vector<double> Upper, std::vector<double> Rhs) {
  const size_t N = Diag.size();
  assert(Rhs.size() == N && "tridiagonal rhs size mismatch");
  assert(Lower.size() + 1 == N && Upper.size() + 1 == N &&
         "tridiagonal band size mismatch");
  for (size_t I = 1; I != N; ++I) {
    if (std::fabs(Diag[I - 1]) < 1e-300)
      return Expected<std::vector<double>>::error(
          "zero pivot in solveTridiagonal");
    double W = Lower[I - 1] / Diag[I - 1];
    Diag[I] -= W * Upper[I - 1];
    Rhs[I] -= W * Rhs[I - 1];
  }
  if (std::fabs(Diag[N - 1]) < 1e-300)
    return Expected<std::vector<double>>::error(
        "zero pivot in solveTridiagonal");
  std::vector<double> X(N, 0.0);
  X[N - 1] = Rhs[N - 1] / Diag[N - 1];
  for (size_t IPlus1 = N - 1; IPlus1 != 0; --IPlus1) {
    size_t I = IPlus1 - 1;
    X[I] = (Rhs[I] - Upper[I] * X[I + 1]) / Diag[I];
  }
  return X;
}

Expected<double> rcs::findRootBrent(const std::function<double(double)> &F,
                                    double Low, double High,
                                    RootFindOptions Options) {
  double A = Low, B = High;
  double Fa = F(A), Fb = F(B);
  // skatlint:ignore(float-equality) -- an exact root at a bracket end is
  // the documented early-out; approximate zeros go through the iteration.
  if (Fa == 0.0)
    return A;
  // skatlint:ignore(float-equality) -- see above
  if (Fb == 0.0)
    return B;
  if (Fa * Fb > 0.0)
    return Expected<double>::error("findRootBrent: root not bracketed");

  double C = A, Fc = Fa;
  double D = B - A, E = D;
  for (int Iter = 0; Iter != Options.MaxIterations; ++Iter) {
    if (std::fabs(Fc) < std::fabs(Fb)) {
      A = B;
      B = C;
      C = A;
      Fa = Fb;
      Fb = Fc;
      Fc = Fa;
    }
    double Tol = 2.0 * 1e-16 * std::fabs(B) + 0.5 * Options.AbsTolerance;
    double Mid = 0.5 * (C - B);
    // skatlint:ignore(float-equality) -- Brent terminates on an exact zero
    // residual; the tolerance test on Mid handles the approximate case.
    if (std::fabs(Mid) <= Tol || Fb == 0.0)
      return B;
    if (std::fabs(E) >= Tol && std::fabs(Fa) > std::fabs(Fb)) {
      // Attempt inverse quadratic interpolation / secant.
      double S = Fb / Fa;
      double P, Q;
      if (A == C) {
        P = 2.0 * Mid * S;
        Q = 1.0 - S;
      } else {
        double QQ = Fa / Fc;
        double R = Fb / Fc;
        P = S * (2.0 * Mid * QQ * (QQ - R) - (B - A) * (R - 1.0));
        Q = (QQ - 1.0) * (R - 1.0) * (S - 1.0);
      }
      if (P > 0.0)
        Q = -Q;
      P = std::fabs(P);
      if (2.0 * P < std::min(3.0 * Mid * Q - std::fabs(Tol * Q),
                             std::fabs(E * Q))) {
        E = D;
        D = P / Q;
      } else {
        D = Mid;
        E = D;
      }
    } else {
      D = Mid;
      E = D;
    }
    A = B;
    Fa = Fb;
    B += (std::fabs(D) > Tol) ? D : (Mid > 0 ? Tol : -Tol);
    Fb = F(B);
    if ((Fb > 0.0) == (Fc > 0.0)) {
      C = A;
      Fc = Fa;
      D = B - A;
      E = D;
    }
  }
  return B;
}

Expected<double> rcs::findRootNewton(const std::function<double(double)> &F,
                                     double Initial, double Low, double High,
                                     RootFindOptions Options) {
  double X = Initial;
  for (int Iter = 0; Iter != Options.MaxIterations; ++Iter) {
    double Fx = F(X);
    if (std::fabs(Fx) < Options.AbsTolerance)
      return X;
    double H = std::max(1e-8, 1e-7 * std::fabs(X));
    double Deriv = (F(X + H) - Fx) / H;
    if (std::fabs(Deriv) < 1e-300)
      break;
    double Next = X - Fx / Deriv;
    if (Next < Low || Next > High)
      break;
    if (std::fabs(Next - X) < Options.AbsTolerance)
      return Next;
    X = Next;
  }
  return findRootBrent(F, Low, High, Options);
}

double rcs::vectorNorm(const std::vector<double> &X) {
  double Sum = 0.0;
  for (double V : X)
    Sum += V * V;
  return std::sqrt(Sum);
}

double rcs::vectorMaxAbs(const std::vector<double> &X) {
  double Best = 0.0;
  for (double V : X)
    Best = std::max(Best, std::fabs(V));
  return Best;
}

NewtonResult rcs::solveNewtonSystem(
    const std::function<std::vector<double>(const std::vector<double> &)> &F,
    std::vector<double> Initial, NewtonOptions Options) {
  NewtonResult Result;
  std::vector<double> X = std::move(Initial);
  const size_t N = X.size();
  std::vector<double> Fx = F(X);
  assert(Fx.size() == N && "residual dimension must match unknowns");
  double Norm = vectorNorm(Fx);
  if (Options.Observer)
    Options.Observer({0, Norm, vectorMaxAbs(Fx), 0.0});

  for (int Iter = 0; Iter != Options.MaxIterations; ++Iter) {
    if (Norm < Options.ResidualTolerance) {
      Result.Converged = true;
      break;
    }
    Matrix Jacobian;
    if (Options.Jacobian) {
      // Analytic Jacobian. The most recent F evaluation was at this X
      // (the initial evaluation, or the accepted line-search candidate),
      // so the callback may reuse state cached during it.
      Jacobian = Options.Jacobian(X, Fx);
      assert(Jacobian.rows() == N && Jacobian.cols() == N &&
             "analytic Jacobian dimension mismatch");
    } else {
      // Finite-difference Jacobian, column by column.
      Jacobian = Matrix(N, N);
      for (size_t Col = 0; Col != N; ++Col) {
        double Save = X[Col];
        double H = Options.JacobianRelative
                       ? Options.JacobianEpsilon * std::max(1.0,
                                                            std::fabs(Save))
                       : Options.JacobianEpsilon;
        X[Col] = Save + H;
        std::vector<double> FPerturbed = F(X);
        X[Col] = Save;
        for (size_t Row = 0; Row != N; ++Row)
          Jacobian.at(Row, Col) = (FPerturbed[Row] - Fx[Row]) / H;
      }
    }
    std::vector<double> NegF(N);
    for (size_t I = 0; I != N; ++I)
      NegF[I] = -Fx[I];
    Expected<std::vector<double>> Step = solveDense(Jacobian, NegF);
    if (!Step)
      break;

    // Damped line search: halve the step until the residual shrinks.
    double Lambda = 1.0;
    bool Accepted = false;
    for (int Back = 0; Back != Options.MaxBacktracks; ++Back) {
      std::vector<double> Candidate(N);
      for (size_t I = 0; I != N; ++I)
        Candidate[I] = X[I] + Lambda * (*Step)[I];
      std::vector<double> FCandidate = F(Candidate);
      double CandidateNorm = vectorNorm(FCandidate);
      if (CandidateNorm < Norm || CandidateNorm < Options.ResidualTolerance) {
        X = std::move(Candidate);
        Fx = std::move(FCandidate);
        Norm = CandidateNorm;
        Accepted = true;
        break;
      }
      Lambda *= 0.5;
    }
    ++Result.Iterations;
    if (!Accepted)
      break;
    if (Options.Observer)
      Options.Observer({Result.Iterations, Norm, vectorMaxAbs(Fx),
                        Lambda});
    if (Lambda * vectorMaxAbs(*Step) < Options.StepTolerance) {
      Result.Converged = Norm < 1e3 * Options.ResidualTolerance;
      break;
    }
  }
  Result.Converged = Result.Converged || Norm < Options.ResidualTolerance;
  Result.Solution = std::move(X);
  Result.ResidualNorm = Norm;
  return Result;
}
