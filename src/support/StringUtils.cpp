//===- support/StringUtils.cpp - String helpers ---------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdio>

using namespace rcs;

std::string rcs::formatStringV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed <= 0)
    return std::string();
  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, Args);
  return Out;
}

std::string rcs::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Out = formatStringV(Fmt, Args);
  va_end(Args);
  return Out;
}

std::vector<std::string> rcs::splitString(const std::string &Text,
                                          char Separator) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Separator, Start);
    if (Pos == std::string::npos) {
      Parts.push_back(Text.substr(Start));
      return Parts;
    }
    Parts.push_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string rcs::trimString(const std::string &Text) {
  size_t Begin = 0;
  size_t End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::string rcs::joinStrings(const std::vector<std::string> &Parts,
                             const std::string &Separator) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Out += Separator;
    Out += Parts[I];
  }
  return Out;
}

bool rcs::startsWith(const std::string &Text, const std::string &Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}

bool rcs::endsWith(const std::string &Text, const std::string &Suffix) {
  return Text.size() >= Suffix.size() &&
         Text.compare(Text.size() - Suffix.size(), Suffix.size(), Suffix) ==
             0;
}

std::string rcs::toLower(std::string Text) {
  for (char &C : Text)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return Text;
}

std::string rcs::formatDouble(double Value, int Digits) {
  std::string Out = formatString("%.*f", Digits, Value);
  // Trim trailing zeros but keep at least one digit after the dot trimmed
  // away entirely ("3.000" -> "3").
  if (Out.find('.') != std::string::npos) {
    size_t Last = Out.find_last_not_of('0');
    if (Out[Last] == '.')
      --Last;
    Out.erase(Last + 1);
  }
  return Out;
}
