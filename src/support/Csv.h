//===- support/Csv.h - CSV emission -----------------------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal CSV writer (RFC 4180 quoting) used to export simulation traces
/// for offline plotting.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SUPPORT_CSV_H
#define RCS_SUPPORT_CSV_H

#include "support/Status.h"

#include <string>
#include <vector>

namespace rcs {

/// Accumulates CSV rows in memory and renders or saves them.
class CsvWriter {
public:
  /// Creates a writer with the given column names.
  explicit CsvWriter(std::vector<std::string> Columns);

  /// Appends a row of string cells (must match the column count).
  void addRow(std::vector<std::string> Cells);

  /// Appends a row of numeric cells (must match the column count).
  void addNumericRow(const std::vector<double> &Values);

  /// Renders the document to a string.
  std::string render() const;

  /// Writes the document to \p Path.
  Status writeFile(const std::string &Path) const;

  size_t numRows() const { return Rows.size(); }

private:
  static std::string escapeCell(const std::string &Cell);

  std::vector<std::string> Columns;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace rcs

#endif // RCS_SUPPORT_CSV_H
