//===- support/Quantity.h - Compile-time dimensional analysis --*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Zero-overhead dimensional analysis for the physical quantities skatsim
/// computes with. A Quantity<Dim> wraps exactly one double and carries its
/// dimension (integer exponents of length, mass, time and temperature) in
/// the type, so adding a pressure to a temperature or passing a flow where
/// a power is expected fails to compile instead of corrupting a plot three
/// models downstream.
///
/// Design rules:
///
///  - `+`/`-`/comparisons require identical dimensions; `*`/`/` combine
///    exponents; `.value()` is the only escape hatch back to double, and
///    construction from double is explicit, so units never appear or
///    vanish silently.
///  - Absolute temperatures are affine points, not vectors: `Celsius` and
///    `Kelvin` are distinct point types that cannot be added to each other
///    or to themselves (20 C + 30 C is meaningless), while differences
///    yield a `TempDelta` that participates in normal quantity algebra
///    (W/K * K = W). Conversions between the two scales go through
///    `toKelvin`/`toCelsius` only.
///  - Everything is constexpr and trivially copyable: a Quantity compiles
///    to the same code as the double it wraps (see the static_assert
///    self-tests at the bottom and tests/quantity_test.cpp).
///
/// The naming convention for raw `double` interfaces (the `TempC` /
/// `FlowM3PerS` suffixes) is enforced separately by tools/skatlint; this
/// header is the stronger, compile-time end of the same policy. See
/// docs/STATIC_ANALYSIS.md.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SUPPORT_QUANTITY_H
#define RCS_SUPPORT_QUANTITY_H

#include <type_traits>

namespace rcs {
namespace units {

/// A dimension as integer exponents over the four base dimensions skatsim
/// uses: length (m), mass (kg), time (s), temperature (K).
template <int LengthExp, int MassExp, int TimeExp, int TempExp>
struct Dimension {
  static constexpr int Length = LengthExp;
  static constexpr int Mass = MassExp;
  static constexpr int Time = TimeExp;
  static constexpr int Temp = TempExp;
};

/// Product and quotient dimensions (exponents add / subtract).
template <typename A, typename B>
using DimProduct = Dimension<A::Length + B::Length, A::Mass + B::Mass,
                             A::Time + B::Time, A::Temp + B::Temp>;
template <typename A, typename B>
using DimQuotient = Dimension<A::Length - B::Length, A::Mass - B::Mass,
                              A::Time - B::Time, A::Temp - B::Temp>;

/// A value of dimension \p Dim in coherent SI units.
///
/// The wrapper is intentionally minimal: explicit construction, explicit
/// value(), dimension-checked arithmetic, and nothing else. No implicit
/// conversions in either direction.
template <typename Dim> class Quantity {
public:
  using Dimensions = Dim;

  constexpr Quantity() = default;
  constexpr explicit Quantity(double V) : Val(V) {}

  /// The underlying SI magnitude. The only way back to a raw double.
  constexpr double value() const { return Val; }

  constexpr Quantity operator-() const { return Quantity(-Val); }

  constexpr Quantity &operator+=(Quantity Other) {
    Val += Other.Val;
    return *this;
  }
  constexpr Quantity &operator-=(Quantity Other) {
    Val -= Other.Val;
    return *this;
  }
  constexpr Quantity &operator*=(double Scale) {
    Val *= Scale;
    return *this;
  }
  constexpr Quantity &operator/=(double Scale) {
    Val /= Scale;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity A, Quantity B) {
    return Quantity(A.Val + B.Val);
  }
  friend constexpr Quantity operator-(Quantity A, Quantity B) {
    return Quantity(A.Val - B.Val);
  }
  friend constexpr Quantity operator*(Quantity A, double Scale) {
    return Quantity(A.Val * Scale);
  }
  friend constexpr Quantity operator*(double Scale, Quantity A) {
    return Quantity(Scale * A.Val);
  }
  friend constexpr Quantity operator/(Quantity A, double Scale) {
    return Quantity(A.Val / Scale);
  }

  friend constexpr bool operator==(Quantity A, Quantity B) {
    return A.Val == B.Val; // skatlint:ignore(float-equality) -- same-type
                           // exact compare is deliberate; tolerance policy
                           // belongs to callers (rcs::approxEqual).
  }
  friend constexpr bool operator!=(Quantity A, Quantity B) {
    return !(A == B);
  }
  friend constexpr bool operator<(Quantity A, Quantity B) {
    return A.Val < B.Val;
  }
  friend constexpr bool operator>(Quantity A, Quantity B) { return B < A; }
  friend constexpr bool operator<=(Quantity A, Quantity B) {
    return !(B < A);
  }
  friend constexpr bool operator>=(Quantity A, Quantity B) {
    return !(A < B);
  }

private:
  double Val = 0.0;
};

/// Dimension-combining multiplication and division.
template <typename DA, typename DB>
constexpr Quantity<DimProduct<DA, DB>> operator*(Quantity<DA> A,
                                                 Quantity<DB> B) {
  return Quantity<DimProduct<DA, DB>>(A.value() * B.value());
}
template <typename DA, typename DB>
constexpr Quantity<DimQuotient<DA, DB>> operator/(Quantity<DA> A,
                                                  Quantity<DB> B) {
  return Quantity<DimQuotient<DA, DB>>(A.value() / B.value());
}
template <typename DB>
constexpr Quantity<DimQuotient<Dimension<0, 0, 0, 0>, DB>>
operator/(double A, Quantity<DB> B) {
  return Quantity<DimQuotient<Dimension<0, 0, 0, 0>, DB>>(A / B.value());
}

// Quantity typedefs for the units that actually appear in skatsim's
// models. Exponent order: <length, mass, time, temperature>.
using Scalar = Quantity<Dimension<0, 0, 0, 0>>;      ///< Dimensionless.
using Meters = Quantity<Dimension<1, 0, 0, 0>>;      ///< Length.
using M2 = Quantity<Dimension<2, 0, 0, 0>>;          ///< Area.
using M3 = Quantity<Dimension<3, 0, 0, 0>>;          ///< Volume.
using Kilograms = Quantity<Dimension<0, 1, 0, 0>>;   ///< Mass.
using Seconds = Quantity<Dimension<0, 0, 1, 0>>;     ///< Time.
using TempDelta = Quantity<Dimension<0, 0, 0, 1>>;   ///< Temperature
                                                     ///< difference, K.
using MPerS = Quantity<Dimension<1, 0, -1, 0>>;      ///< Velocity.
using M2PerS = Quantity<Dimension<2, 0, -1, 0>>;     ///< Kinematic
                                                     ///< viscosity,
                                                     ///< diffusivity.
using M3PerS = Quantity<Dimension<3, 0, -1, 0>>;     ///< Volumetric flow.
using KgPerM3 = Quantity<Dimension<-3, 1, 0, 0>>;    ///< Density.
using KgPerS = Quantity<Dimension<0, 1, -1, 0>>;     ///< Mass flow.
using Newtons = Quantity<Dimension<1, 1, -2, 0>>;    ///< Force.
using Pascal = Quantity<Dimension<-1, 1, -2, 0>>;    ///< Pressure.
using PascalSeconds =
    Quantity<Dimension<-1, 1, -1, 0>>;               ///< Dynamic viscosity.
using Joules = Quantity<Dimension<2, 1, -2, 0>>;     ///< Energy.
using Watts = Quantity<Dimension<2, 1, -3, 0>>;      ///< Power.
using WattsPerKelvin =
    Quantity<Dimension<2, 1, -3, -1>>;               ///< Conductance, UA.
using KelvinPerWatt =
    Quantity<Dimension<-2, -1, 3, 1>>;               ///< Thermal resistance.
using KelvinPerPascal =
    Quantity<Dimension<1, -1, 2, 1>>;                ///< Temperature cost of
                                                     ///< pressure (sweep
                                                     ///< score weights).
using JoulesPerKelvin =
    Quantity<Dimension<2, 1, -2, -1>>;               ///< Heat capacitance.
using JoulesPerKgKelvin =
    Quantity<Dimension<2, 0, -2, -1>>;               ///< Specific heat cp.
using WattsPerMeterKelvin =
    Quantity<Dimension<1, 1, -3, -1>>;               ///< Conductivity k.
using WattsPerM2Kelvin =
    Quantity<Dimension<0, 1, -3, -1>>;               ///< Film coefficient h.
using JoulesPerM3Kelvin =
    Quantity<Dimension<-1, 1, -2, -1>>;              ///< Volumetric rho*cp.

/// An absolute temperature on the Celsius scale. An affine point: points
/// cannot be added, only differenced (yielding a TempDelta) or shifted by
/// a delta. Use toKelvin() to cross scales.
class Celsius {
public:
  constexpr Celsius() = default;
  constexpr explicit Celsius(double DegC) : Val(DegC) {}

  /// Magnitude in degrees Celsius.
  constexpr double value() const { return Val; }

  friend constexpr TempDelta operator-(Celsius A, Celsius B) {
    return TempDelta(A.Val - B.Val);
  }
  friend constexpr Celsius operator+(Celsius A, TempDelta D) {
    return Celsius(A.Val + D.value());
  }
  friend constexpr Celsius operator+(TempDelta D, Celsius A) {
    return A + D;
  }
  friend constexpr Celsius operator-(Celsius A, TempDelta D) {
    return Celsius(A.Val - D.value());
  }
  constexpr Celsius &operator+=(TempDelta D) {
    Val += D.value();
    return *this;
  }
  constexpr Celsius &operator-=(TempDelta D) {
    Val -= D.value();
    return *this;
  }

  friend constexpr bool operator==(Celsius A, Celsius B) {
    return A.Val == B.Val; // skatlint:ignore(float-equality) -- see
                           // Quantity::operator==.
  }
  friend constexpr bool operator!=(Celsius A, Celsius B) { return !(A == B); }
  friend constexpr bool operator<(Celsius A, Celsius B) {
    return A.Val < B.Val;
  }
  friend constexpr bool operator>(Celsius A, Celsius B) { return B < A; }
  friend constexpr bool operator<=(Celsius A, Celsius B) { return !(B < A); }
  friend constexpr bool operator>=(Celsius A, Celsius B) { return !(A < B); }

private:
  double Val = 0.0;
};

/// An absolute thermodynamic temperature in kelvin. Same affine rules as
/// Celsius; additionally multipliable into quantity algebra where absolute
/// temperature is physically meant (Arrhenius, ideal gas), via kelvins().
class Kelvin {
public:
  constexpr Kelvin() = default;
  constexpr explicit Kelvin(double K) : Val(K) {}

  /// Magnitude in kelvin.
  constexpr double value() const { return Val; }

  /// The absolute temperature as a vector quantity measured from 0 K,
  /// for laws that genuinely multiply/divide by absolute temperature.
  constexpr TempDelta kelvins() const { return TempDelta(Val); }

  friend constexpr TempDelta operator-(Kelvin A, Kelvin B) {
    return TempDelta(A.Val - B.Val);
  }
  friend constexpr Kelvin operator+(Kelvin A, TempDelta D) {
    return Kelvin(A.Val + D.value());
  }
  friend constexpr Kelvin operator+(TempDelta D, Kelvin A) { return A + D; }
  friend constexpr Kelvin operator-(Kelvin A, TempDelta D) {
    return Kelvin(A.Val - D.value());
  }
  constexpr Kelvin &operator+=(TempDelta D) {
    Val += D.value();
    return *this;
  }
  constexpr Kelvin &operator-=(TempDelta D) {
    Val -= D.value();
    return *this;
  }

  friend constexpr bool operator==(Kelvin A, Kelvin B) {
    return A.Val == B.Val; // skatlint:ignore(float-equality) -- see
                           // Quantity::operator==.
  }
  friend constexpr bool operator!=(Kelvin A, Kelvin B) { return !(A == B); }
  friend constexpr bool operator<(Kelvin A, Kelvin B) {
    return A.Val < B.Val;
  }
  friend constexpr bool operator>(Kelvin A, Kelvin B) { return B < A; }
  friend constexpr bool operator<=(Kelvin A, Kelvin B) { return !(B < A); }
  friend constexpr bool operator>=(Kelvin A, Kelvin B) { return !(A < B); }

private:
  double Val = 0.0;
};

namespace literals {
constexpr Celsius operator""_degC(long double V) {
  return Celsius(static_cast<double>(V));
}
constexpr Celsius operator""_degC(unsigned long long V) {
  return Celsius(static_cast<double>(V));
}
constexpr Kelvin operator""_K(long double V) {
  return Kelvin(static_cast<double>(V));
}
constexpr Kelvin operator""_K(unsigned long long V) {
  return Kelvin(static_cast<double>(V));
}
constexpr TempDelta operator""_dK(long double V) {
  return TempDelta(static_cast<double>(V));
}
constexpr TempDelta operator""_dK(unsigned long long V) {
  return TempDelta(static_cast<double>(V));
}
constexpr Watts operator""_W(long double V) {
  return Watts(static_cast<double>(V));
}
constexpr Watts operator""_W(unsigned long long V) {
  return Watts(static_cast<double>(V));
}
constexpr Pascal operator""_Pa(long double V) {
  return Pascal(static_cast<double>(V));
}
constexpr Pascal operator""_Pa(unsigned long long V) {
  return Pascal(static_cast<double>(V));
}
} // namespace literals

//===----------------------------------------------------------------------===//
// static_assert self-tests: the dimension algebra itself, checked at every
// compile of every TU that includes this header. Misuse (Celsius + Pascal,
// Celsius + Celsius, Kelvin where Celsius is expected) is demonstrated
// non-compilable in tests/quantity_misuse.cpp via negative-compile CTest
// targets.
//===----------------------------------------------------------------------===//

static_assert(std::is_trivially_copyable_v<Watts> &&
                  sizeof(Watts) == sizeof(double) &&
                  sizeof(Celsius) == sizeof(double),
              "Quantity must stay a zero-overhead double wrapper");
static_assert(std::is_same_v<decltype(Watts(10.0) / TempDelta(5.0)),
                             WattsPerKelvin>,
              "W / K must be a conductance");
static_assert(std::is_same_v<decltype(WattsPerKelvin(2.0) * TempDelta(3.0)),
                             Watts>,
              "G * dT must be a power");
static_assert(std::is_same_v<decltype(Watts(6.0) * Seconds(2.0)), Joules>,
              "P * t must be an energy");
static_assert(std::is_same_v<decltype(KgPerM3(800.0) * M3PerS(0.01)),
                             KgPerS>,
              "rho * Q must be a mass flow");
static_assert(
    std::is_same_v<decltype(KgPerM3(800.0) * JoulesPerKgKelvin(2000.0)),
                   JoulesPerM3Kelvin>,
    "rho * cp must be a volumetric heat capacity");
static_assert(std::is_same_v<decltype(PascalSeconds(1e-3) / KgPerM3(1000.0)),
                             M2PerS>,
              "mu / rho must be a kinematic viscosity");
static_assert(std::is_same_v<decltype(1.0 / WattsPerKelvin(4.0)),
                             KelvinPerWatt>,
              "1 / G must be a resistance");
static_assert(std::is_same_v<decltype(TempDelta(2.0) / Pascal(10000.0)),
                             KelvinPerPascal>,
              "dT / dP must be a pressure weight");
static_assert(std::is_same_v<decltype(KelvinPerPascal(2e-4) * Pascal(500.0)),
                             TempDelta>,
              "weight * dP must be a temperature cost");
static_assert(std::is_same_v<decltype(Pascal(100.0) * M3PerS(0.02)), Watts>,
              "dP * Q must be a hydraulic power");
// skatlint:ignore(float-equality) -- exact constexpr arithmetic on
// representable values; a tolerance would hide a real algebra bug.
static_assert((WattsPerKelvin(2.0) * TempDelta(3.0)).value() == 6.0,
              "quantity arithmetic must act on the wrapped magnitudes");
// skatlint:ignore(float-equality) -- exact constexpr arithmetic
static_assert((Celsius(60.0) - Celsius(40.0)).value() == 20.0,
              "Celsius points must difference into a delta");
// skatlint:ignore(float-equality) -- exact constexpr arithmetic
static_assert((Celsius(40.0) + TempDelta(5.0)).value() == 45.0,
              "Celsius + delta must shift the point");
static_assert(std::is_same_v<decltype(Celsius(60.0) - Celsius(40.0)),
                             TempDelta>,
              "point - point must be a delta, not a point");

} // namespace units
} // namespace rcs

#endif // RCS_SUPPORT_QUANTITY_H
