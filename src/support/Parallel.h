//===- support/Parallel.h - Deterministic parallel loops -------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fork-join helper for embarrassingly parallel loops (Monte Carlo
/// replicates, reliability sweeps). Work items are claimed from a shared
/// atomic counter, so callers must make each item independent and write its
/// result into a pre-sized slot indexed by the item number; any reduction is
/// then performed sequentially by the caller, which keeps results bit-exact
/// regardless of thread count or scheduling.
///
/// Memory-visibility contract (checked by the TSan CI leg and, for
/// lock-based state, Clang's `-Wthread-safety` via support/ThreadSafety.h):
///  - thread creation inside parallelFor happens-after everything the
///    caller did before the call, and the final joins happen-before it
///    returns — so slots written by workers are safe to read afterwards
///    without synchronization, provided no two items share a slot;
///  - each item index is claimed exactly once, so per-item slots are
///    thread-confined while the loop runs;
///  - any state shared *across* items (progress tallies, caches,
///    observer callbacks) must be `RCS_GUARDED_BY` an `rcs::Mutex` or
///    atomic — see faults/Sweep.cpp's ProgressState for the pattern.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SUPPORT_PARALLEL_H
#define RCS_SUPPORT_PARALLEL_H

#include <cstddef>
#include <functional>

namespace rcs {

/// Runs Fn(Item) for every Item in [0, NumItems) on up to \p NumThreads
/// workers (the calling thread participates). NumThreads <= 1 runs the loop
/// inline on the calling thread. Fn must not throw: skatsim is built
/// exception-free, so worker bodies report failures through their output
/// slots instead.
void parallelFor(int NumThreads, size_t NumItems,
                 const std::function<void(size_t Item)> &Fn);

/// Clamps a requested worker count to [1, hardware concurrency]. Zero or
/// negative requests mean "use all hardware threads".
int clampThreadCount(int Requested);

} // namespace rcs

#endif // RCS_SUPPORT_PARALLEL_H
