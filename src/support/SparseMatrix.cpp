//===- support/SparseMatrix.cpp - Sparse linear algebra --------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/SparseMatrix.h"

#include <algorithm>
#include <cassert>
#include <string>

using namespace rcs;

//===----------------------------------------------------------------------===//
// SparseCsr
//===----------------------------------------------------------------------===//

SparseCsr SparseCsr::fromTriplets(size_t N,
                                  const std::vector<Triplet> &Entries) {
  SparseCsr A;
  A.N = N;
  A.RowPtr.assign(N + 1, 0);
  for (const Triplet &T : Entries) {
    assert(T.Row < N && T.Col < N && "triplet index out of range");
    ++A.RowPtr[T.Row + 1];
  }
  for (size_t I = 0; I != N; ++I)
    A.RowPtr[I + 1] += A.RowPtr[I];

  // Bucket by row in input order, then sort each row by column with a
  // stable sort so duplicate coordinates stay in input order and sum
  // deterministically.
  std::vector<size_t> Cursor(A.RowPtr.begin(), A.RowPtr.end() - 1);
  std::vector<std::pair<size_t, double>> Cells(Entries.size());
  for (const Triplet &T : Entries)
    Cells[Cursor[T.Row]++] = {T.Col, T.Value};
  for (size_t I = 0; I != N; ++I)
    std::stable_sort(Cells.begin() + static_cast<ptrdiff_t>(A.RowPtr[I]),
                     Cells.begin() + static_cast<ptrdiff_t>(A.RowPtr[I + 1]),
                     [](const std::pair<size_t, double> &L,
                        const std::pair<size_t, double> &R) {
                       return L.first < R.first;
                     });

  // Compress duplicates left-to-right.
  std::vector<size_t> NewRowPtr(N + 1, 0);
  A.ColIdx.reserve(Cells.size());
  A.Values.reserve(Cells.size());
  for (size_t I = 0; I != N; ++I) {
    size_t Begin = A.RowPtr[I], End = A.RowPtr[I + 1];
    for (size_t P = Begin; P != End;) {
      size_t Col = Cells[P].first;
      double Sum = Cells[P].second;
      for (++P; P != End && Cells[P].first == Col; ++P)
        Sum += Cells[P].second;
      A.ColIdx.push_back(Col);
      A.Values.push_back(Sum);
    }
    NewRowPtr[I + 1] = A.ColIdx.size();
  }
  A.RowPtr = std::move(NewRowPtr);
  return A;
}

double SparseCsr::at(size_t Row, size_t Col) const {
  assert(Row < N && Col < N && "sparse index out of range");
  auto Begin = ColIdx.begin() + static_cast<ptrdiff_t>(RowPtr[Row]);
  auto End = ColIdx.begin() + static_cast<ptrdiff_t>(RowPtr[Row + 1]);
  auto It = std::lower_bound(Begin, End, Col);
  if (It == End || *It != Col)
    return 0.0;
  return Values[static_cast<size_t>(It - ColIdx.begin())];
}

bool SparseCsr::samePattern(const SparseCsr &Other) const {
  return N == Other.N && RowPtr == Other.RowPtr && ColIdx == Other.ColIdx;
}

std::vector<double> SparseCsr::apply(const std::vector<double> &X) const {
  assert(X.size() == N && "vector size mismatch");
  std::vector<double> Y(N, 0.0);
  for (size_t I = 0; I != N; ++I) {
    double Sum = 0.0;
    for (size_t P = RowPtr[I], E = RowPtr[I + 1]; P != E; ++P)
      Sum += Values[P] * X[ColIdx[P]];
    Y[I] = Sum;
  }
  return Y;
}

//===----------------------------------------------------------------------===//
// Reverse Cuthill-McKee ordering
//===----------------------------------------------------------------------===//

std::vector<size_t> rcs::reverseCuthillMcKee(const SparseCsr &A) {
  size_t N = A.rows();
  const std::vector<size_t> &RowPtr = A.rowPtr();
  const std::vector<size_t> &ColIdx = A.colIdx();

  // Off-diagonal degree of each node.
  std::vector<size_t> Degree(N, 0);
  for (size_t I = 0; I != N; ++I)
    for (size_t P = RowPtr[I], E = RowPtr[I + 1]; P != E; ++P)
      if (ColIdx[P] != I)
        ++Degree[I];

  // Component seeds in (degree, index) order: peripheral low-degree
  // starts keep the level sets — and the bandwidth — narrow.
  std::vector<size_t> Seeds(N);
  for (size_t I = 0; I != N; ++I)
    Seeds[I] = I;
  std::sort(Seeds.begin(), Seeds.end(), [&](size_t L, size_t R) {
    return Degree[L] != Degree[R] ? Degree[L] < Degree[R] : L < R;
  });

  std::vector<bool> Visited(N, false);
  std::vector<size_t> Order;
  Order.reserve(N);
  std::vector<size_t> Neighbors;
  for (size_t Seed : Seeds) {
    if (Visited[Seed])
      continue;
    size_t Head = Order.size();
    Order.push_back(Seed);
    Visited[Seed] = true;
    while (Head != Order.size()) {
      size_t U = Order[Head++];
      Neighbors.clear();
      for (size_t P = RowPtr[U], E = RowPtr[U + 1]; P != E; ++P) {
        size_t V = ColIdx[P];
        if (V != U && !Visited[V])
          Neighbors.push_back(V);
      }
      std::sort(Neighbors.begin(), Neighbors.end(),
                [&](size_t L, size_t R) {
                  return Degree[L] != Degree[R] ? Degree[L] < Degree[R]
                                                : L < R;
                });
      for (size_t V : Neighbors) {
        Visited[V] = true;
        Order.push_back(V);
      }
    }
  }
  std::reverse(Order.begin(), Order.end());
  return Order;
}

std::vector<size_t>
rcs::invertPermutation(const std::vector<size_t> &Perm) {
  std::vector<size_t> Inv(Perm.size(), 0);
  for (size_t I = 0, E = Perm.size(); I != E; ++I) {
    assert(Perm[I] < Perm.size() && "permutation entry out of range");
    Inv[Perm[I]] = I;
  }
  return Inv;
}

//===----------------------------------------------------------------------===//
// SparseLdlt
//===----------------------------------------------------------------------===//

Status SparseLdlt::analyze(const SparseCsr &A, bool UseOrdering) {
  reset();
  NumRows = A.rows();
  if (UseOrdering) {
    Perm = reverseCuthillMcKee(A);
  } else {
    Perm.resize(NumRows);
    for (size_t I = 0; I != NumRows; ++I)
      Perm[I] = I;
  }
  PermInv = invertPermutation(Perm);

  // Elimination tree and column counts of L over the permuted pattern
  // (up-looking symbolic phase): for each row K, every nonzero column J
  // below the diagonal contributes L entries along the path from J to K
  // in the partially built tree.
  const std::vector<size_t> &RowPtr = A.rowPtr();
  const std::vector<size_t> &ColIdx = A.colIdx();
  Parent.assign(NumRows, SIZE_MAX);
  Flag.assign(NumRows, SIZE_MAX);
  std::vector<size_t> ColNnz(NumRows, 0);
  for (size_t K = 0; K != NumRows; ++K) {
    Flag[K] = K;
    size_t Old = Perm[K];
    for (size_t P = RowPtr[Old], E = RowPtr[Old + 1]; P != E; ++P) {
      size_t J = PermInv[ColIdx[P]];
      if (J >= K)
        continue;
      while (Flag[J] != K) {
        if (Parent[J] == SIZE_MAX)
          Parent[J] = K;
        ++ColNnz[J];
        Flag[J] = K;
        J = Parent[J];
      }
    }
  }
  LColPtr.assign(NumRows + 1, 0);
  for (size_t I = 0; I != NumRows; ++I)
    LColPtr[I + 1] = LColPtr[I] + ColNnz[I];

  LRowIdx.assign(LColPtr[NumRows], 0);
  LValues.assign(LColPtr[NumRows], 0.0);
  Diag.assign(NumRows, 0.0);
  Pattern.assign(NumRows, 0);
  NextInCol.assign(NumRows, 0);
  Work.assign(NumRows, 0.0);
  Analyzed = true;
  return Status::ok();
}

Status SparseLdlt::factorize(const SparseCsr &A) {
  if (!Analyzed)
    return Status::error("sparse factorize before symbolic analysis");
  if (A.rows() != NumRows)
    return Status::error("sparse factorize pattern mismatch");
  Valid = false;

  const std::vector<size_t> &RowPtr = A.rowPtr();
  const std::vector<size_t> &ColIdx = A.colIdx();
  const std::vector<double> &Values = A.values();

  // Flag carries marks from the symbolic phase (and prior numeric
  // phases) that alias this pass's row indices; reset so the reach walk
  // below sees every path node exactly once.
  Flag.assign(NumRows, SIZE_MAX);
  for (size_t K = 0; K != NumRows; ++K) {
    // Gather the permuted row K into the dense work vector and collect
    // its elimination-tree reach, top of Pattern downwards, so the
    // updates below run in ascending column order.
    size_t Top = NumRows;
    Flag[K] = K;
    NextInCol[K] = LColPtr[K];
    Diag[K] = 0.0;
    size_t Old = Perm[K];
    for (size_t P = RowPtr[Old], E = RowPtr[Old + 1]; P != E; ++P) {
      size_t J = PermInv[ColIdx[P]];
      if (J > K)
        continue;
      Work[J] += Values[P];
      size_t Len = 0;
      while (Flag[J] != K) {
        Pattern[Len++] = J;
        Flag[J] = K;
        J = Parent[J];
      }
      while (Len > 0)
        Pattern[--Top] = Pattern[--Len];
    }
    Diag[K] = Work[K];
    Work[K] = 0.0;
    for (size_t S = Top; S != NumRows; ++S) {
      size_t J = Pattern[S];
      double Yj = Work[J];
      Work[J] = 0.0;
      size_t PEnd = NextInCol[J];
      for (size_t P = LColPtr[J]; P != PEnd; ++P)
        Work[LRowIdx[P]] -= LValues[P] * Yj;
      double Lkj = Yj / Diag[J];
      Diag[K] -= Lkj * Yj;
      LRowIdx[PEnd] = K;
      LValues[PEnd] = Lkj;
      NextInCol[J] = PEnd + 1;
    }
    if (!(Diag[K] > 0.0))
      return Status::error("singular matrix in sparse LDLt factorization "
                           "(nonpositive pivot at unknown " +
                           std::to_string(Perm[K]) + ")");
  }
  Valid = true;
  return Status::ok();
}

std::vector<double> SparseLdlt::solve(std::vector<double> B) const {
  assert(Valid && "solve on an invalid sparse factorization");
  assert(B.size() == NumRows && "rhs size mismatch");
  std::vector<double> X(NumRows);
  for (size_t K = 0; K != NumRows; ++K)
    X[K] = B[Perm[K]];
  // Forward substitution with unit lower triangular L.
  for (size_t J = 0; J != NumRows; ++J) {
    double Xj = X[J];
    for (size_t P = LColPtr[J], E = LColPtr[J + 1]; P != E; ++P)
      X[LRowIdx[P]] -= LValues[P] * Xj;
  }
  for (size_t K = 0; K != NumRows; ++K)
    X[K] /= Diag[K];
  // Backward substitution with L^T.
  for (size_t J = NumRows; J-- != 0;) {
    double Sum = X[J];
    for (size_t P = LColPtr[J], E = LColPtr[J + 1]; P != E; ++P)
      Sum -= LValues[P] * X[LRowIdx[P]];
    X[J] = Sum;
  }
  for (size_t K = 0; K != NumRows; ++K)
    B[Perm[K]] = X[K];
  return B;
}

size_t SparseLdlt::memoryBytes() const {
  return (Perm.capacity() + PermInv.capacity() + Parent.capacity() +
          LColPtr.capacity() + LRowIdx.capacity() + Flag.capacity() +
          Pattern.capacity() + NextInCol.capacity()) *
             sizeof(size_t) +
         (LValues.capacity() + Diag.capacity() + Work.capacity()) *
             sizeof(double);
}

void SparseLdlt::reset() {
  NumRows = 0;
  Analyzed = false;
  Valid = false;
  Perm.clear();
  PermInv.clear();
  Parent.clear();
  LColPtr.clear();
  LRowIdx.clear();
  LValues.clear();
  Diag.clear();
  Flag.clear();
  Pattern.clear();
  NextInCol.clear();
  Work.clear();
}
