//===- support/ThreadSafety.h - Clang thread-safety annotations -*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Clang `-Wthread-safety` annotation macros plus the annotated mutex
/// wrappers every lock in `src/` must go through (enforced by the
/// skatlint `raw-mutex` rule; see docs/STATIC_ANALYSIS.md).
///
/// The macros expand to Clang capability attributes under Clang and to
/// nothing elsewhere, so GCC builds are unaffected while the CI Clang
/// legs (`SKATSIM_WERROR=ON` promotes `-Wthread-safety` to an error)
/// statically prove that every access to a `RCS_GUARDED_BY` member
/// happens with its mutex held. `tests/threadsafety_misuse.cpp` is the
/// negative-compile proof that a violation fails the Clang build.
///
/// Conventions:
///  - protected state is declared `RCS_GUARDED_BY(Mutex)` right where it
///    lives, so the locking contract is visible at the declaration;
///  - private helpers that assume the lock is already held are declared
///    `RCS_REQUIRES(Mutex)` instead of re-locking;
///  - code that must opt out (e.g. a once-only init before threads
///    exist) uses a scoped `rcs::LockGuard` anyway — it is cheap and
///    keeps the analysis airtight — or, as a last resort,
///    `RCS_NO_THREAD_SAFETY_ANALYSIS` with a justification comment.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SUPPORT_THREADSAFETY_H
#define RCS_SUPPORT_THREADSAFETY_H

#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define RCS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RCS_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define RCS_CAPABILITY(x) RCS_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define RCS_SCOPED_CAPABILITY RCS_THREAD_ANNOTATION(scoped_lockable)

/// Data member may only be read or written with \p x held.
#define RCS_GUARDED_BY(x) RCS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* may only be accessed with \p x held.
#define RCS_PT_GUARDED_BY(x) RCS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and
/// does not release them).
#define RCS_REQUIRES(...) \
  RCS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define RCS_ACQUIRE(...) \
  RCS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (or, with no argument on a
/// scoped capability, whatever the object holds).
#define RCS_RELEASE(...) \
  RCS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts the acquisition; the first argument is the return
/// value that means success.
#define RCS_TRY_ACQUIRE(...) \
  RCS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock guard for
/// functions that acquire them internally).
#define RCS_EXCLUDES(...) RCS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch: disables the analysis for one function. Every use needs
/// an adjacent justification comment.
#define RCS_NO_THREAD_SAFETY_ANALYSIS \
  RCS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace rcs {

/// An annotated `std::mutex`: identical cost, but Clang knows it is a
/// capability, so `RCS_GUARDED_BY(SomeMutex)` members are statically
/// checked against it. All of `src/` locks through this wrapper (the
/// skatlint `raw-mutex` rule rejects bare `std::mutex`).
class RCS_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() RCS_ACQUIRE() { Raw.lock(); }
  void unlock() RCS_RELEASE() { Raw.unlock(); }
  bool tryLock() RCS_TRY_ACQUIRE(true) { return Raw.try_lock(); }

private:
  // The single sanctioned raw mutex: every other lock in src/ goes
  // through this wrapper so the annotations see it.
  std::mutex Raw; // skatlint:ignore(raw-mutex) -- wrapper implementation
};

/// RAII scoped lock over rcs::Mutex, annotated so Clang tracks the
/// critical section (including early returns). Mirrors std::lock_guard:
/// no unlock-before-destruction, no try semantics.
class RCS_SCOPED_CAPABILITY LockGuard {
public:
  explicit LockGuard(Mutex &M) RCS_ACQUIRE(M) : M(M) { M.lock(); }
  ~LockGuard() RCS_RELEASE() { M.unlock(); }
  LockGuard(const LockGuard &) = delete;
  LockGuard &operator=(const LockGuard &) = delete;

private:
  Mutex &M;
};

} // namespace rcs

#endif // RCS_SUPPORT_THREADSAFETY_H
