//===- support/Random.h - Deterministic random numbers ---------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seedable PRNG (xoshiro256**) used by workload generators
/// and fault injection so experiments are exactly reproducible across runs
/// and platforms. Not suitable for cryptography.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SUPPORT_RANDOM_H
#define RCS_SUPPORT_RANDOM_H

#include <cstdint>

namespace rcs {

/// xoshiro256** with splitmix64 seeding.
class RandomEngine {
public:
  /// Seeds the engine; equal seeds give identical streams on any platform.
  explicit RandomEngine(uint64_t Seed = 0x5ca75eedULL);

  /// Seeds an independent sub-stream of \p Seed identified by \p StreamId.
  /// Stream 0 is NOT the same sequence as RandomEngine(Seed): the stream
  /// family is deliberately disjoint from the single-seed constructor so
  /// adding streams to existing code never silently reuses old sequences.
  /// Equal (Seed, StreamId) pairs give identical sequences on any platform
  /// and any thread count; distinct stream ids give statistically
  /// independent sequences.
  RandomEngine(uint64_t Seed, uint64_t StreamId);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a double uniformly distributed in [0, 1).
  double uniform();

  /// Returns a double uniformly distributed in [Low, High).
  double uniform(double Low, double High);

  /// Returns an integer uniformly distributed in [0, Bound).
  uint64_t uniformInt(uint64_t Bound);

  /// Returns a sample from a normal distribution (Box-Muller).
  double normal(double Mean, double StdDev);

  /// Returns a sample from an exponential distribution with rate \p Lambda.
  double exponential(double Lambda);

  /// Returns a sample from a Weibull distribution with shape
  /// \p ShapeFactor and scale \p Scale (inverse-CDF method). Shape 1
  /// reduces to an exponential with mean Scale; shape > 1 models wear-out
  /// hazards (pump bearings, impeller erosion), shape < 1 infant
  /// mortality.
  double weibullSample(double ShapeFactor, double Scale);

  /// Returns true with probability \p P.
  bool bernoulli(double P);

private:
  uint64_t State[4];
  bool HasSpareNormal = false;
  double SpareNormalSample = 0.0;
};

} // namespace rcs

#endif // RCS_SUPPORT_RANDOM_H
