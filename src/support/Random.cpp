//===- support/Random.cpp - Deterministic random numbers ------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <cassert>
#include <cmath>

using namespace rcs;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

RandomEngine::RandomEngine(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(S);
}

RandomEngine::RandomEngine(uint64_t Seed, uint64_t StreamId) {
  // Mix the stream id into the splitmix state with an odd multiplier so
  // consecutive stream ids land far apart in splitmix's sequence, then add a
  // constant so (Seed, 0) differs from the single-seed constructor.
  uint64_t S = Seed ^ (StreamId * 0x9e3779b97f4a7c15ULL + 0x6a09e667f3bcc909ULL);
  S = splitMix64(S) ^ Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(S);
}

uint64_t RandomEngine::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

double RandomEngine::uniform() {
  // 53 top bits give a uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double RandomEngine::uniform(double Low, double High) {
  assert(Low <= High && "inverted uniform range");
  return Low + (High - Low) * uniform();
}

uint64_t RandomEngine::uniformInt(uint64_t Bound) {
  assert(Bound > 0 && "uniformInt bound must be positive");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = (0ULL - Bound) % Bound;
  while (true) {
    uint64_t Raw = next();
    if (Raw >= Threshold)
      return Raw % Bound;
  }
}

double RandomEngine::normal(double Mean, double StdDev) {
  if (HasSpareNormal) {
    HasSpareNormal = false;
    return Mean + StdDev * SpareNormalSample;
  }
  double U1 = 0.0;
  do {
    U1 = uniform();
  } while (U1 <= 1e-300);
  double U2 = uniform();
  double Radius = std::sqrt(-2.0 * std::log(U1));
  double Angle = 2.0 * M_PI * U2;
  SpareNormalSample = Radius * std::sin(Angle);
  HasSpareNormal = true;
  return Mean + StdDev * Radius * std::cos(Angle);
}

double RandomEngine::exponential(double Lambda) {
  assert(Lambda > 0 && "exponential rate must be positive");
  double U = 0.0;
  do {
    U = uniform();
  } while (U <= 1e-300);
  return -std::log(U) / Lambda;
}

double RandomEngine::weibullSample(double ShapeFactor, double Scale) {
  assert(ShapeFactor > 0 && "weibull shape must be positive");
  assert(Scale > 0 && "weibull scale must be positive");
  double U = 0.0;
  do {
    U = uniform();
  } while (U <= 1e-300);
  return Scale * std::pow(-std::log(U), 1.0 / ShapeFactor);
}

bool RandomEngine::bernoulli(double P) { return uniform() < P; }
