//===- support/Units.h - Unit conversions and constants --------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit conventions and conversion helpers.
///
/// skatsim uses SI units internally everywhere: temperatures in degrees
/// Celsius for interfaces that mirror the paper (all thermal math is on
/// temperature differences, so Celsius and Kelvin are interchangeable there),
/// kelvin where absolute temperature matters (Arrhenius), pressure in Pa,
/// volumetric flow in m^3/s, power in W, lengths in m.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SUPPORT_UNITS_H
#define RCS_SUPPORT_UNITS_H

#include "support/Quantity.h"

namespace rcs {
namespace units {

/// Absolute zero offset between Celsius and Kelvin.
// skatlint:ignore(unit-suffix) -- offset between two temperature scales
inline constexpr double KelvinOffset = 273.15;

/// Converts degrees Celsius to kelvin.
inline constexpr double celsiusToKelvin(double TempC) {
  return TempC + KelvinOffset;
}

/// Converts kelvin to degrees Celsius.
inline constexpr double kelvinToCelsius(double TempK) {
  return TempK - KelvinOffset;
}

/// Typed scale crossings: the only sanctioned bridge between the Celsius
/// and Kelvin affine point types (see support/Quantity.h).
inline constexpr Kelvin toKelvin(Celsius T) {
  return Kelvin(celsiusToKelvin(T.value()));
}
inline constexpr Celsius toCelsius(Kelvin T) {
  return Celsius(kelvinToCelsius(T.value()));
}

/// Typed flow construction from the liters-per-minute datasheets quote.
inline constexpr M3PerS flowFromLitersPerMinute(double Lpm) {
  return M3PerS(Lpm / 60000.0);
}

/// Converts liters per minute to m^3/s.
inline constexpr double litersPerMinuteToM3PerS(double Lpm) {
  return Lpm / 60000.0;
}

/// Converts m^3/s to liters per minute.
inline constexpr double m3PerSToLitersPerMinute(double M3PerS) {
  return M3PerS * 60000.0;
}

/// Converts m^3/s to m^3 per minute.
inline constexpr double m3PerSToM3PerMinute(double M3PerS) {
  return M3PerS * 60.0;
}

/// Converts millimeters to meters.
inline constexpr double mmToM(double Mm) { return Mm * 1e-3; }

/// Converts bar to pascal.
inline constexpr double barToPa(double Bar) { return Bar * 1e5; }

/// Converts pascal to bar.
inline constexpr double paToBar(double Pa) { return Pa * 1e-5; }

/// Converts kilowatts to watts.
inline constexpr double kwToW(double Kw) { return Kw * 1e3; }

/// Rack unit height in meters (EIA-310).
inline constexpr double RackUnitM = 0.04445;

/// Standard gravitational acceleration, m/s^2.
inline constexpr double GravityMPerS2 = 9.80665;

/// Universal Boltzmann constant in eV/K (used by Arrhenius models).
inline constexpr double BoltzmannEvPerK = 8.617333262e-5;

/// Giga multiplier.
inline constexpr double Giga = 1e9;

/// Tera multiplier.
inline constexpr double Tera = 1e12;

/// Peta multiplier.
inline constexpr double Peta = 1e15;

} // namespace units
} // namespace rcs

#endif // RCS_SUPPORT_UNITS_H
