//===- support/Csv.cpp - CSV emission ---------------------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Csv.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cstdio>

using namespace rcs;

CsvWriter::CsvWriter(std::vector<std::string> ColumnsIn)
    : Columns(std::move(ColumnsIn)) {
  assert(!Columns.empty() && "CSV needs at least one column");
}

void CsvWriter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Columns.size() && "CSV row width mismatch");
  Rows.push_back(std::move(Cells));
}

void CsvWriter::addNumericRow(const std::vector<double> &Values) {
  assert(Values.size() == Columns.size() && "CSV row width mismatch");
  std::vector<std::string> Cells;
  Cells.reserve(Values.size());
  for (double V : Values)
    Cells.push_back(formatString("%.9g", V));
  Rows.push_back(std::move(Cells));
}

std::string CsvWriter::escapeCell(const std::string &Cell) {
  bool NeedsQuoting = Cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!NeedsQuoting)
    return Cell;
  std::string Out = "\"";
  for (char C : Cell) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
  return Out;
}

std::string CsvWriter::render() const {
  std::string Out;
  for (size_t I = 0, E = Columns.size(); I != E; ++I) {
    if (I != 0)
      Out += ',';
    Out += escapeCell(Columns[I]);
  }
  Out += '\n';
  for (const auto &Row : Rows) {
    for (size_t I = 0, E = Row.size(); I != E; ++I) {
      if (I != 0)
        Out += ',';
      Out += escapeCell(Row[I]);
    }
    Out += '\n';
  }
  return Out;
}

Status CsvWriter::writeFile(const std::string &Path) const {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return Status::error("cannot open file for writing: " + Path);
  std::string Body = render();
  size_t Written = std::fwrite(Body.data(), 1, Body.size(), File);
  std::fclose(File);
  if (Written != Body.size())
    return Status::error("short write to file: " + Path);
  return Status::ok();
}
