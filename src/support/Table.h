//===- support/Table.h - Plain-text report tables --------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small column-aligned table renderer used by benches and examples to
/// print paper-vs-measured rows.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SUPPORT_TABLE_H
#define RCS_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace rcs {

/// Column-aligned plain-text table.
class Table {
public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> Headers);

  /// Appends a row; the row must have exactly as many cells as headers.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator row.
  void addSeparator();

  /// Renders the table with single-space-padded pipes.
  std::string render() const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace rcs

#endif // RCS_SUPPORT_TABLE_H
