//===- support/Numerics.h - Small numeric kernels --------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense linear algebra and root finding used by the thermal and hydraulic
/// solvers. Problem sizes in skatsim are small (tens to a few thousand
/// unknowns), so dense LU with partial pivoting is sufficient and robust.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SUPPORT_NUMERICS_H
#define RCS_SUPPORT_NUMERICS_H

#include "support/Status.h"

#include <cstddef>
#include <functional>
#include <vector>

namespace rcs {

/// A dense row-major matrix of doubles.
class Matrix {
public:
  Matrix() = default;

  /// Creates a Rows x Cols matrix initialized to zero.
  Matrix(size_t Rows, size_t Cols)
      : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, 0.0) {}

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }

  double &at(size_t Row, size_t Col) {
    assert(Row < NumRows && Col < NumCols && "matrix index out of range");
    return Data[Row * NumCols + Col];
  }
  double at(size_t Row, size_t Col) const {
    assert(Row < NumRows && Col < NumCols && "matrix index out of range");
    return Data[Row * NumCols + Col];
  }

  /// Creates an identity matrix of size N.
  static Matrix identity(size_t N);

  /// Matrix-vector product; \p X must have cols() entries.
  std::vector<double> apply(const std::vector<double> &X) const;

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  std::vector<double> Data;
};

/// Solves A * X = B in place via LU with partial pivoting.
///
/// \returns an error when the matrix is singular to working precision.
Expected<std::vector<double>> solveDense(Matrix A, std::vector<double> B);

/// A reusable LU factorization with partial pivoting.
///
/// factor() runs the same elimination as solveDense but records the
/// multipliers and pivot rows; solve() replays them against a right-hand
/// side in the identical order (same row swaps, same exact-zero skips,
/// same operand grouping). A factor()+solve() pair therefore produces a
/// solution that is bit-identical to solveDense(A, B) for the same
/// inputs, which is what lets the thermal solver cache factorizations
/// across transient steps without perturbing results.
class LuFactorization {
public:
  LuFactorization() = default;

  /// Factors \p A (consumed). Returns an error when singular to working
  /// precision; the factorization is invalid afterwards.
  Status factor(Matrix A);

  /// True after a successful factor().
  bool valid() const { return Valid; }

  /// Number of rows/columns of the factored matrix (0 when invalid).
  size_t size() const { return Valid ? Lu.rows() : 0; }

  /// Solves A * X = B using the stored factors. Requires valid().
  std::vector<double> solve(std::vector<double> B) const;

  /// Drops the stored factors.
  void reset() {
    Valid = false;
    Lu = Matrix();
    LowerPacked.clear();
    PivotRow.clear();
  }

private:
  /// Packed factors: multipliers below the diagonal, U on and above it.
  Matrix Lu;
  /// The below-diagonal multipliers again, packed column-major in
  /// elimination order: the forward pass streams them sequentially
  /// instead of striding down the row-major Lu (which costs a cache miss
  /// per multiplier at solver sizes).
  std::vector<double> LowerPacked;
  /// Pivot row chosen while eliminating each column.
  std::vector<size_t> PivotRow;
  bool Valid = false;
};

/// Solves a tridiagonal system with the Thomas algorithm.
///
/// \p Lower has N-1 entries (subdiagonal), \p Diag N entries, \p Upper N-1
/// entries. \returns an error on a zero pivot.
Expected<std::vector<double>>
solveTridiagonal(std::vector<double> Lower, std::vector<double> Diag,
                 std::vector<double> Upper, std::vector<double> Rhs);

/// Options controlling scalar root searches.
struct RootFindOptions {
  double AbsTolerance = 1e-10;
  int MaxIterations = 200;
};

/// Finds a root of \p F in [Low, High] with Brent's method.
///
/// Requires F(Low) and F(High) to have opposite signs.
Expected<double> findRootBrent(const std::function<double(double)> &F,
                               double Low, double High,
                               RootFindOptions Options = RootFindOptions());

/// Newton iteration with numeric derivative and bisection fallback bounds.
///
/// Falls back to Brent within [Low, High] when Newton leaves the bracket.
Expected<double> findRootNewton(const std::function<double(double)> &F,
                                double Initial, double Low, double High,
                                RootFindOptions Options = RootFindOptions());

/// Result of a damped multi-dimensional Newton solve.
struct NewtonResult {
  std::vector<double> Solution;
  int Iterations = 0;
  double ResidualNorm = 0.0;
  bool Converged = false;
};

/// One reported iterate of solveNewtonSystem (see NewtonOptions::Observer).
struct NewtonIterate {
  /// 0 for the initial point, then 1.. for each accepted Newton step.
  int Iteration = 0;
  /// Euclidean norm of the residual at this iterate.
  double ResidualNorm = 0.0;
  /// Infinity norm of the residual at this iterate.
  double MaxAbsResidual = 0.0;
  /// Accepted line-search scale (1 = full Newton step; 0 at the initial
  /// point, where no step has been taken).
  double Damping = 0.0;
};

/// Options for solveNewtonSystem.
struct NewtonOptions {
  double ResidualTolerance = 1e-9;
  double StepTolerance = 1e-12;
  int MaxIterations = 100;
  /// Perturbation for finite-difference Jacobians. Relative to each
  /// unknown's magnitude by default; absolute when JacobianRelative is
  /// false (useful when unknowns span orders of magnitude but the
  /// residual's sensitivity does not scale with them).
  double JacobianEpsilon = 1e-7;
  bool JacobianRelative = true;
  /// Maximum damping halvings per step.
  int MaxBacktracks = 30;
  /// When set, called at the initial point and after every accepted
  /// Newton step — the hook convergence diagnostics and telemetry hang
  /// from. Must not mutate solver state.
  std::function<void(const NewtonIterate &)> Observer;
  /// When set, used instead of finite differences. Called with the
  /// current iterate X and the residual F(X) at that iterate; must return
  /// an N x N matrix of dF_i/dX_j. The solver guarantees that the most
  /// recent residual evaluation was at exactly this X, so callers may
  /// reuse state cached during that evaluation.
  std::function<Matrix(const std::vector<double> &X,
                       const std::vector<double> &Fx)>
      Jacobian;
};

/// Solves F(X) = 0 with damped Newton. The Jacobian comes from
/// NewtonOptions::Jacobian when set, otherwise from column-by-column
/// finite differences of \p F.
NewtonResult solveNewtonSystem(
    const std::function<std::vector<double>(const std::vector<double> &)> &F,
    std::vector<double> Initial, NewtonOptions Options = NewtonOptions());

/// Tolerant floating-point equality: |A - B| <= AbsTol + RelTol*max(|A|,|B|).
///
/// This is the sanctioned way to compare physics values; `==` on computed
/// doubles is flagged by tools/skatlint (rule float-equality).
inline bool approxEqual(double A, double B, double RelTol = 1e-9,
                        double AbsTol = 1e-12) {
  double DiffAbs = A > B ? A - B : B - A;
  double LargerAbs = (A < 0 ? -A : A) > (B < 0 ? -B : B) ? (A < 0 ? -A : A)
                                                         : (B < 0 ? -B : B);
  return DiffAbs <= AbsTol + RelTol * LargerAbs;
}

/// True when \p X is within \p AbsTol of zero.
inline bool nearZero(double X, double AbsTol = 1e-12) {
  return (X < 0 ? -X : X) <= AbsTol;
}

/// Euclidean norm of \p X.
double vectorNorm(const std::vector<double> &X);

/// Maximum absolute entry of \p X; zero for empty vectors.
double vectorMaxAbs(const std::vector<double> &X);

} // namespace rcs

#endif // RCS_SUPPORT_NUMERICS_H
