//===- support/Numerics.h - Small numeric kernels --------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense linear algebra and root finding used by the thermal and hydraulic
/// solvers. Problem sizes in skatsim are small (tens to a few thousand
/// unknowns), so dense LU with partial pivoting is sufficient and robust.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SUPPORT_NUMERICS_H
#define RCS_SUPPORT_NUMERICS_H

#include "support/Status.h"

#include <cstddef>
#include <functional>
#include <vector>

namespace rcs {

/// A dense row-major matrix of doubles.
class Matrix {
public:
  Matrix() = default;

  /// Creates a Rows x Cols matrix initialized to zero.
  Matrix(size_t Rows, size_t Cols)
      : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, 0.0) {}

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }

  double &at(size_t Row, size_t Col) {
    assert(Row < NumRows && Col < NumCols && "matrix index out of range");
    return Data[Row * NumCols + Col];
  }
  double at(size_t Row, size_t Col) const {
    assert(Row < NumRows && Col < NumCols && "matrix index out of range");
    return Data[Row * NumCols + Col];
  }

  /// Creates an identity matrix of size N.
  static Matrix identity(size_t N);

  /// Matrix-vector product; \p X must have cols() entries.
  std::vector<double> apply(const std::vector<double> &X) const;

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  std::vector<double> Data;
};

/// Solves A * X = B in place via LU with partial pivoting.
///
/// \returns an error when the matrix is singular to working precision.
Expected<std::vector<double>> solveDense(Matrix A, std::vector<double> B);

/// Solves a tridiagonal system with the Thomas algorithm.
///
/// \p Lower has N-1 entries (subdiagonal), \p Diag N entries, \p Upper N-1
/// entries. \returns an error on a zero pivot.
Expected<std::vector<double>>
solveTridiagonal(std::vector<double> Lower, std::vector<double> Diag,
                 std::vector<double> Upper, std::vector<double> Rhs);

/// Options controlling scalar root searches.
struct RootFindOptions {
  double AbsTolerance = 1e-10;
  int MaxIterations = 200;
};

/// Finds a root of \p F in [Low, High] with Brent's method.
///
/// Requires F(Low) and F(High) to have opposite signs.
Expected<double> findRootBrent(const std::function<double(double)> &F,
                               double Low, double High,
                               RootFindOptions Options = RootFindOptions());

/// Newton iteration with numeric derivative and bisection fallback bounds.
///
/// Falls back to Brent within [Low, High] when Newton leaves the bracket.
Expected<double> findRootNewton(const std::function<double(double)> &F,
                                double Initial, double Low, double High,
                                RootFindOptions Options = RootFindOptions());

/// Result of a damped multi-dimensional Newton solve.
struct NewtonResult {
  std::vector<double> Solution;
  int Iterations = 0;
  double ResidualNorm = 0.0;
  bool Converged = false;
};

/// One reported iterate of solveNewtonSystem (see NewtonOptions::Observer).
struct NewtonIterate {
  /// 0 for the initial point, then 1.. for each accepted Newton step.
  int Iteration = 0;
  /// Euclidean norm of the residual at this iterate.
  double ResidualNorm = 0.0;
  /// Infinity norm of the residual at this iterate.
  double MaxAbsResidual = 0.0;
  /// Accepted line-search scale (1 = full Newton step; 0 at the initial
  /// point, where no step has been taken).
  double Damping = 0.0;
};

/// Options for solveNewtonSystem.
struct NewtonOptions {
  double ResidualTolerance = 1e-9;
  double StepTolerance = 1e-12;
  int MaxIterations = 100;
  /// Perturbation for finite-difference Jacobians. Relative to each
  /// unknown's magnitude by default; absolute when JacobianRelative is
  /// false (useful when unknowns span orders of magnitude but the
  /// residual's sensitivity does not scale with them).
  double JacobianEpsilon = 1e-7;
  bool JacobianRelative = true;
  /// Maximum damping halvings per step.
  int MaxBacktracks = 30;
  /// When set, called at the initial point and after every accepted
  /// Newton step — the hook convergence diagnostics and telemetry hang
  /// from. Must not mutate solver state.
  std::function<void(const NewtonIterate &)> Observer;
};

/// Solves F(X) = 0 with damped Newton and a finite-difference Jacobian.
NewtonResult solveNewtonSystem(
    const std::function<std::vector<double>(const std::vector<double> &)> &F,
    std::vector<double> Initial, NewtonOptions Options = NewtonOptions());

/// Tolerant floating-point equality: |A - B| <= AbsTol + RelTol*max(|A|,|B|).
///
/// This is the sanctioned way to compare physics values; `==` on computed
/// doubles is flagged by tools/skatlint (rule float-equality).
inline bool approxEqual(double A, double B, double RelTol = 1e-9,
                        double AbsTol = 1e-12) {
  double DiffAbs = A > B ? A - B : B - A;
  double LargerAbs = (A < 0 ? -A : A) > (B < 0 ? -B : B) ? (A < 0 ? -A : A)
                                                         : (B < 0 ? -B : B);
  return DiffAbs <= AbsTol + RelTol * LargerAbs;
}

/// True when \p X is within \p AbsTol of zero.
inline bool nearZero(double X, double AbsTol = 1e-12) {
  return (X < 0 ? -X : X) <= AbsTol;
}

/// Euclidean norm of \p X.
double vectorNorm(const std::vector<double> &X);

/// Maximum absolute entry of \p X; zero for empty vectors.
double vectorMaxAbs(const std::vector<double> &X);

} // namespace rcs

#endif // RCS_SUPPORT_NUMERICS_H
