//===- support/StringUtils.h - String helpers ------------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string plus small string helpers used
/// throughout the library for diagnostics and report generation.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SUPPORT_STRINGUTILS_H
#define RCS_SUPPORT_STRINGUTILS_H

#include <cstdarg>
#include <string>
#include <vector>

namespace rcs {

/// Formats \p Fmt printf-style into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// va_list flavor of formatString.
std::string formatStringV(const char *Fmt, va_list Args);

/// Splits \p Text on \p Separator; empty fields are preserved.
std::vector<std::string> splitString(const std::string &Text, char Separator);

/// Removes leading and trailing ASCII whitespace.
std::string trimString(const std::string &Text);

/// Joins \p Parts with \p Separator between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Parts,
                        const std::string &Separator);

/// Returns true if \p Text starts with \p Prefix.
bool startsWith(const std::string &Text, const std::string &Prefix);

/// Returns true if \p Text ends with \p Suffix.
bool endsWith(const std::string &Text, const std::string &Suffix);

/// Lower-cases ASCII letters in \p Text.
std::string toLower(std::string Text);

/// Renders a double with \p Digits significant decimals, trimming a bare
/// trailing dot ("3." becomes "3").
std::string formatDouble(double Value, int Digits = 3);

} // namespace rcs

#endif // RCS_SUPPORT_STRINGUTILS_H
