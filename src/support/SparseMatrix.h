//===- support/SparseMatrix.h - Sparse linear algebra -----------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sparse linear algebra for fleet-scale networks: compressed-sparse-row
/// storage with triplet assembly, a reverse Cuthill-McKee fill-reducing
/// ordering, and an LDL^T factorization with an explicit symbolic/numeric
/// split. The thermal network matrices (graph Laplacians plus positive
/// diagonals) are symmetric positive definite, so LDL^T without pivoting
/// is stable; the symbolic phase (ordering + elimination tree + fill
/// counts) depends only on the sparsity pattern and is reused across
/// numeric refactorizations, which is what makes conductance edits cheap
/// at 10k+ unknowns (docs/PERFORMANCE.md).
///
/// Dense problems stay on support/Numerics.h; this layer takes over above
/// the ThermalNetwork sparse threshold.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SUPPORT_SPARSEMATRIX_H
#define RCS_SUPPORT_SPARSEMATRIX_H

#include "support/Status.h"

#include <cstddef>
#include <vector>

namespace rcs {

/// One (row, column, value) entry of a matrix under assembly.
struct Triplet {
  size_t Row = 0;
  size_t Col = 0;
  double Value = 0.0;
};

/// A square sparse matrix in compressed-sparse-row form. Rows are sorted
/// by column index with no duplicates; assembly from triplets sums
/// duplicate coordinates deterministically.
class SparseCsr {
public:
  SparseCsr() = default;

  /// Builds an N x N matrix from \p Entries. Duplicate (row, col)
  /// coordinates are summed in input order, so repeated assembly of the
  /// same element list is bit-reproducible.
  static SparseCsr fromTriplets(size_t N, const std::vector<Triplet> &Entries);

  size_t rows() const { return N; }
  size_t nnz() const { return ColIdx.size(); }

  /// Row extents: row I spans [RowPtr[I], RowPtr[I+1]) of ColIdx/Values.
  const std::vector<size_t> &rowPtr() const { return RowPtr; }
  const std::vector<size_t> &colIdx() const { return ColIdx; }
  const std::vector<double> &values() const { return Values; }
  std::vector<double> &values() { return Values; }

  /// Entry (Row, Col), zero when not stored. O(log nnz(Row)).
  double at(size_t Row, size_t Col) const;

  /// True when \p Other has the identical sparsity pattern (same N, same
  /// RowPtr, same ColIdx); values are free to differ.
  bool samePattern(const SparseCsr &Other) const;

  /// Matrix-vector product; \p X must have rows() entries.
  std::vector<double> apply(const std::vector<double> &X) const;

  /// Heap bytes held by the index and value arrays.
  size_t memoryBytes() const {
    return RowPtr.capacity() * sizeof(size_t) +
           ColIdx.capacity() * sizeof(size_t) +
           Values.capacity() * sizeof(double);
  }

private:
  size_t N = 0;
  std::vector<size_t> RowPtr; // N + 1 entries.
  std::vector<size_t> ColIdx; // nnz entries, sorted within each row.
  std::vector<double> Values; // nnz entries.
};

/// Reverse Cuthill-McKee fill-reducing ordering of the symmetric pattern
/// of \p A: breadth-first from a minimum-degree seed per component with
/// neighbors visited in (degree, index) order, then reversed. Returns a
/// permutation with Perm[New] = Old. Deterministic for a given pattern;
/// on the banded ladder/fleet graphs this keeps the factor bandwidth —
/// and therefore the fill — near the natural chain width.
std::vector<size_t> reverseCuthillMcKee(const SparseCsr &A);

/// Inverse of a Perm[New] = Old permutation: Inv[Old] = New.
std::vector<size_t> invertPermutation(const std::vector<size_t> &Perm);

/// A sparse LDL^T factorization (A = L D L^T, L unit lower triangular)
/// with the symbolic and numeric phases split:
///
///  - analyze() consumes only the sparsity pattern: it picks the
///    fill-reducing ordering, builds the elimination tree and counts the
///    nonzeros of each column of L. Invalidated only by topology changes.
///  - factorize() consumes the values of a matrix with the analyzed
///    pattern and fills L and D, reusing the elimination tree. This is
///    the only phase a conductance/capacitance/time-step edit repeats.
///  - solve() replays P^T (L D L^T) P against a right-hand side.
///
/// The split is the up-looking algorithm of Davis's LDL: the numeric
/// phase re-walks each row's elimination-tree reach, so no per-row
/// pattern arrays are stored beyond the tree and column counts.
class SparseLdlt {
public:
  SparseLdlt() = default;

  /// Symbolic phase over \p A's pattern. \p UseOrdering selects the
  /// reverse Cuthill-McKee permutation (on by default); off factors in
  /// natural order, which the ordering round-trip tests compare against.
  Status analyze(const SparseCsr &A, bool UseOrdering = true);

  /// True after a successful analyze().
  bool analyzed() const { return Analyzed; }

  /// Numeric phase: factors \p A, which must have the pattern analyze()
  /// saw. Fails when the matrix is not positive definite — for thermal
  /// networks that means an internal node with no path to any boundary.
  Status factorize(const SparseCsr &A);

  /// True after a successful factorize().
  bool valid() const { return Valid; }

  /// Number of unknowns of the analyzed system (0 before analyze()).
  size_t size() const { return Analyzed ? NumRows : 0; }

  /// Nonzeros of the L factor, diagonal excluded (0 before analyze()).
  size_t factorNnz() const { return Analyzed ? LColPtr.back() : 0; }

  /// Solves A * X = B using the stored factors. Requires valid().
  std::vector<double> solve(std::vector<double> B) const;

  /// The fill-reducing permutation, Perm[New] = Old (identity when
  /// ordering is disabled). Valid after analyze().
  const std::vector<size_t> &permutation() const { return Perm; }

  /// Heap bytes held by the symbolic products, workspaces and factors.
  size_t memoryBytes() const;

  /// Drops both phases.
  void reset();

private:
  size_t NumRows = 0;
  bool Analyzed = false;
  bool Valid = false;

  // Symbolic products.
  std::vector<size_t> Perm;    // Perm[New] = Old.
  std::vector<size_t> PermInv; // PermInv[Old] = New.
  std::vector<size_t> Parent;  // Elimination tree (SIZE_MAX = root).
  std::vector<size_t> LColPtr; // Column extents of L (N + 1 entries).

  // Numeric factors: L strictly lower triangular in compressed-sparse-
  // column form (column J spans [LColPtr[J], LColPtr[J+1])), D diagonal.
  std::vector<size_t> LRowIdx;
  std::vector<double> LValues;
  std::vector<double> Diag;

  // Workspaces reused across factorize() calls (sized in analyze()).
  std::vector<size_t> Flag;
  std::vector<size_t> Pattern;
  std::vector<size_t> NextInCol;
  std::vector<double> Work;
};

} // namespace rcs

#endif // RCS_SUPPORT_SPARSEMATRIX_H
