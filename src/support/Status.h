//===- support/Status.h - Error handling without exceptions ----*- C++ -*-===//
//
// Part of skatsim, an open reproduction of "High-Performance Reconfigurable
// Computer Systems with Immersion Cooling". MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight Status / Expected<T> types used for recoverable errors.
/// skatsim is built without exceptions; functions that can fail in ways the
/// caller is expected to handle return Status or Expected<T>. Programming
/// errors are asserted.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_SUPPORT_STATUS_H
#define RCS_SUPPORT_STATUS_H

#include <cassert>
#include <string>
#include <utility>

namespace rcs {

/// Result of an operation that can fail with a human-readable message.
class Status {
public:
  /// Creates a success value.
  Status() = default;

  /// Creates a failure carrying \p Message.
  static Status error(std::string Message) {
    Status S;
    S.Failed = true;
    S.Message = std::move(Message);
    return S;
  }

  /// Creates a success value (explicit spelling for readability).
  static Status ok() { return Status(); }

  bool isOk() const { return !Failed; }
  explicit operator bool() const { return isOk(); }

  /// Returns the error message; empty for success values.
  const std::string &message() const { return Message; }

private:
  bool Failed = false;
  std::string Message;
};

/// Either a value of type T or an error message.
///
/// A minimal analog of llvm::Expected for an exception-free code base.
/// Callers must check hasValue() (or operator bool) before dereferencing.
template <typename T> class Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : Valid(true), Value(std::move(Value)) {}

  /// Constructs a failure from an error status.
  Expected(Status S) : Valid(false), Error(std::move(S)) {
    assert(!Error.isOk() && "Expected constructed from a success Status");
  }

  /// Convenience failure constructor.
  static Expected<T> error(std::string Message) {
    return Expected<T>(Status::error(std::move(Message)));
  }

  bool hasValue() const { return Valid; }
  explicit operator bool() const { return Valid; }

  const T &operator*() const {
    assert(Valid && "dereferencing an error Expected");
    return Value;
  }
  T &operator*() {
    assert(Valid && "dereferencing an error Expected");
    return Value;
  }
  const T *operator->() const { return &operator*(); }
  T *operator->() { return &operator*(); }

  /// Returns the value, or \p Default when this holds an error.
  T valueOr(T Default) const { return Valid ? Value : std::move(Default); }

  /// Returns the error status; success values return an OK status.
  const Status &status() const { return Error; }

  /// Returns the error message (empty for success values).
  const std::string &message() const { return Error.message(); }

private:
  bool Valid;
  T Value{};
  Status Error;
};

} // namespace rcs

#endif // RCS_SUPPORT_STATUS_H
