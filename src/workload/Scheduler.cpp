//===- workload/Scheduler.cpp - Thermal-aware rack scheduling ------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/Scheduler.h"

#include "support/Random.h"
#include "workload/Workload.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::workload;
using namespace rcs::rcsystem;

const char *rcs::workload::placementPolicyName(PlacementPolicy Policy) {
  switch (Policy) {
  case PlacementPolicy::FirstFit:
    return "first fit";
  case PlacementPolicy::CoolestFirst:
    return "coolest first";
  case PlacementPolicy::LoadSpread:
    return "load spread";
  }
  assert(false && "unknown policy");
  return "?";
}

namespace {

/// Running jobs on one module.
struct ModuleState {
  int FreeFpgas = 0;
  /// (job index, fpgas, point, end hour) of resident jobs.
  struct Resident {
    size_t JobIndex;
    int Fpgas;
    fpga::WorkloadPoint Point;
    double EndHour;
  };
  std::vector<Resident> Residents;
  double LastJunctionC = 0.0;

  /// FPGA-weighted operating point of the module, idle fabric included.
  fpga::WorkloadPoint blendedPoint(int TotalFpgas) const {
    fpga::WorkloadPoint Idle{0.02, 0.5};
    double Util = 0.0, Clock = 0.0;
    int Busy = 0;
    for (const Resident &R : Residents) {
      Util += R.Point.Utilization * R.Fpgas;
      Clock += R.Point.ClockFraction * R.Fpgas;
      Busy += R.Fpgas;
    }
    int Free = TotalFpgas - Busy;
    Util += Idle.Utilization * Free;
    Clock += Idle.ClockFraction * Free;
    return {Util / TotalFpgas, Clock / TotalFpgas};
  }
};

} // namespace

Expected<ScheduleResult>
rcs::workload::scheduleOnRack(const RackConfig &Rack,
                              const ExternalConditions &Conditions,
                              std::vector<Job> Jobs,
                              PlacementPolicy Policy, bool Backfill) {
  ComputationalModule Module(Rack.Module);
  const int FpgasPerModule = Module.computeFpgaCount();
  const int NumModules = Rack.NumModules;
  for (const Job &J : Jobs) {
    if (J.NumFpgas > FpgasPerModule)
      return Expected<ScheduleResult>::error(
          "job '" + J.Name + "' needs more FPGAs than one module has");
    if (J.NumFpgas <= 0 || J.DurationHours <= 0.0)
      return Expected<ScheduleResult>::error("job '" + J.Name +
                                             "' has invalid shape");
  }
  // FIFO by submit time (stable for equal submit times).
  std::vector<size_t> Order(Jobs.size());
  for (size_t I = 0; I != Jobs.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Jobs[A].SubmitHour < Jobs[B].SubmitHour;
  });

  std::vector<ModuleState> Modules(NumModules);
  for (ModuleState &State : Modules)
    State.FreeFpgas = FpgasPerModule;

  ScheduleResult Result;
  Result.Entries.resize(Jobs.size());

  // Estimates each module's junction temperature for placement and
  // energy bookkeeping.
  auto solveModule = [&](ModuleState &State) -> Expected<double> {
    Expected<ModuleThermalReport> Report = Module.solveSteadyState(
        Conditions, State.blendedPoint(FpgasPerModule));
    if (!Report)
      return Expected<double>(Report.status());
    State.LastJunctionC = Report->MaxJunctionTempC;
    return Report->TotalHeatW;
  };

  std::vector<bool> PlacedFlags(Jobs.size(), false);
  size_t NextToPlace = 0;
  double Now = 0.0;
  double BusyFpgaHours = 0.0;
  std::vector<double> ModuleHeatW(NumModules, 0.0);
  for (int I = 0; I != NumModules; ++I) {
    Expected<double> Heat = solveModule(Modules[I]);
    if (!Heat)
      return Expected<ScheduleResult>(Heat.status());
    ModuleHeatW[I] = *Heat;
  }

  int Guard = 0;
  while (true) {
    if (++Guard > 100000)
      return Expected<ScheduleResult>::error(
          "scheduler did not terminate (internal error)");
    // Place everything that fits now.
    auto pickModule = [&](const Job &J) {
      int Best = -1;
      for (int I = 0; I != NumModules; ++I) {
        if (Modules[I].FreeFpgas < J.NumFpgas)
          continue;
        if (Best < 0) {
          Best = I;
          if (Policy == PlacementPolicy::FirstFit)
            break;
          continue;
        }
        if (Policy == PlacementPolicy::CoolestFirst &&
            Modules[I].LastJunctionC < Modules[Best].LastJunctionC)
          Best = I;
        if (Policy == PlacementPolicy::LoadSpread &&
            Modules[I].FreeFpgas > Modules[Best].FreeFpgas)
          Best = I;
      }
      return Best;
    };
    auto placeJob = [&](size_t JobIdx, int Best) -> Status {
      const Job &J = Jobs[JobIdx];
      ModuleState &State = Modules[Best];
      State.FreeFpgas -= J.NumFpgas;
      State.Residents.push_back({JobIdx, J.NumFpgas, J.Point,
                                 Now + J.DurationHours});
      Expected<double> Heat = solveModule(State);
      if (!Heat)
        return Heat.status();
      ModuleHeatW[Best] = *Heat;
      ScheduleEntry &Entry = Result.Entries[JobIdx];
      Entry.JobIndex = JobIdx;
      Entry.ModuleIndex = Best;
      Entry.StartHour = Now;
      Entry.EndHour = Now + J.DurationHours;
      PlacedFlags[JobIdx] = true;
      return Status::ok();
    };

    bool Placed = true;
    while (Placed && NextToPlace < Order.size()) {
      while (NextToPlace < Order.size() && PlacedFlags[Order[NextToPlace]])
        ++NextToPlace; // Skip jobs backfilled earlier.
      if (NextToPlace == Order.size())
        break;
      const Job &J = Jobs[Order[NextToPlace]];
      if (J.SubmitHour > Now + 1e-12)
        break;
      int Best = pickModule(J);
      if (Best < 0) {
        Placed = false; // Head of queue must wait (FIFO).
        break;
      }
      Status PlacedStatus = placeJob(Order[NextToPlace], Best);
      if (!PlacedStatus.isOk())
        return Expected<ScheduleResult>(PlacedStatus);
      ++NextToPlace;
    }

    // EASY-style backfill: with the head blocked, shorter already-
    // submitted jobs behind it may start if they fit right now.
    if (Backfill && !Placed && NextToPlace < Order.size()) {
      double HeadDuration = Jobs[Order[NextToPlace]].DurationHours;
      for (size_t K = NextToPlace + 1; K < Order.size(); ++K) {
        size_t JobIdx = Order[K];
        if (PlacedFlags[JobIdx])
          continue;
        const Job &J = Jobs[JobIdx];
        if (J.SubmitHour > Now + 1e-12)
          break; // Later submissions are not eligible yet.
        if (J.DurationHours > HeadDuration)
          continue; // Would risk delaying the head.
        int Best = pickModule(J);
        if (Best < 0)
          continue;
        Status PlacedStatus = placeJob(JobIdx, Best);
        if (!PlacedStatus.isOk())
          return Expected<ScheduleResult>(PlacedStatus);
      }
    }

    // Next event: earliest completion, or the earliest future submission
    // of any still-unplaced job (with backfill, jobs behind the blocked
    // head become eligible as they arrive).
    double NextTime = 1e300;
    bool AnyUnplaced = false;
    for (const ModuleState &State : Modules)
      for (const ModuleState::Resident &R : State.Residents)
        NextTime = std::min(NextTime, R.EndHour);
    for (size_t K = NextToPlace; K < Order.size(); ++K) {
      if (PlacedFlags[Order[K]])
        continue;
      AnyUnplaced = true;
      if (Jobs[Order[K]].SubmitHour > Now + 1e-12) {
        // Order is sorted by submit time: this is the earliest future one.
        NextTime = std::min(NextTime, Jobs[Order[K]].SubmitHour);
        break;
      }
      if (!Backfill)
        break; // FIFO: only the head matters.
    }
    if (NextTime > 1e299) {
      if (AnyUnplaced)
        return Expected<ScheduleResult>::error(
            "job queue blocked with an idle rack (internal error)");
      break; // Nothing running, nothing queued: done.
    }

    // Account the interval [Now, NextTime).
    double IntervalH = NextTime - Now;
    if (IntervalH > 0.0) {
      for (int I = 0; I != NumModules; ++I) {
        Result.EnergyKwh += ModuleHeatW[I] / 1000.0 * IntervalH;
        Result.PeakJunctionC =
            std::max(Result.PeakJunctionC, Modules[I].LastJunctionC);
        if (Modules[I].LastJunctionC > 70.0)
          ++Result.ThermalViolations;
        for (const ModuleState::Resident &R : Modules[I].Residents)
          BusyFpgaHours += R.Fpgas * IntervalH;
      }
    }
    Now = NextTime;

    // Retire completed jobs.
    for (int I = 0; I != NumModules; ++I) {
      ModuleState &State = Modules[I];
      bool Changed = false;
      for (size_t R = 0; R != State.Residents.size();) {
        if (State.Residents[R].EndHour <= Now + 1e-12) {
          State.FreeFpgas += State.Residents[R].Fpgas;
          State.Residents.erase(State.Residents.begin() + R);
          Changed = true;
        } else {
          ++R;
        }
      }
      if (Changed) {
        Expected<double> Heat = solveModule(State);
        if (!Heat)
          return Expected<ScheduleResult>(Heat.status());
        ModuleHeatW[I] = *Heat;
      }
    }
  }

  Result.MakespanHours = Now;
  double AvailableFpgaHours =
      Result.MakespanHours * NumModules * FpgasPerModule;
  Result.MeanUtilization =
      AvailableFpgaHours > 0.0 ? BusyFpgaHours / AvailableFpgaHours : 0.0;
  return Result;
}

std::vector<Job> rcs::workload::makeStandardJobMix(int NumJobs,
                                                   uint64_t Seed) {
  assert(NumJobs > 0 && "need jobs");
  RandomEngine Rng(Seed);
  const ApplicationClass Classes[] = {
      ApplicationClass::SpinGlassMonteCarlo,
      ApplicationClass::MolecularDynamics,
      ApplicationClass::DenseLinearAlgebra,
      ApplicationClass::SignalProcessing};
  std::vector<Job> Jobs;
  Jobs.reserve(NumJobs);
  for (int I = 0; I != NumJobs; ++I) {
    ApplicationClass App = Classes[Rng.uniformInt(4)];
    Job J;
    J.Name = std::string(applicationClassName(App)) + " #" +
             std::to_string(I + 1);
    J.Point = nominalPoint(App);
    J.NumFpgas = static_cast<int>(8 * (1 + Rng.uniformInt(6))); // 8..48.
    J.DurationHours = 0.5 + Rng.uniform(0.0, 5.5);
    J.SubmitHour = Rng.uniform(0.0, 4.0);
    Jobs.push_back(std::move(J));
  }
  return Jobs;
}

MigrationPlan rcs::workload::planMigration(
    const std::vector<double> &ModuleUtilization,
    const std::vector<bool> &Available,
    const std::vector<double> &ModuleTempC, size_t FromModule,
    double UtilizationBound, PlacementPolicy Policy) {
  assert(ModuleUtilization.size() == Available.size() &&
         ModuleUtilization.size() == ModuleTempC.size() &&
         "parallel vectors must agree");
  assert(FromModule < ModuleUtilization.size() && "source out of range");

  MigrationPlan Plan;
  Plan.AddedUtilization.assign(ModuleUtilization.size(), 0.0);
  double Remaining = std::max(ModuleUtilization[FromModule], 0.0);
  if (Remaining <= 0.0)
    return Plan;

  // Candidate targets in policy order; every comparison ties-breaks by
  // index so the plan is deterministic.
  std::vector<size_t> Candidates;
  for (size_t I = 0; I != ModuleUtilization.size(); ++I)
    if (I != FromModule && Available[I])
      Candidates.push_back(I);
  std::stable_sort(Candidates.begin(), Candidates.end(),
                   [&](size_t A, size_t B) {
                     switch (Policy) {
                     case PlacementPolicy::FirstFit:
                       return A < B;
                     case PlacementPolicy::CoolestFirst:
                       return ModuleTempC[A] < ModuleTempC[B];
                     case PlacementPolicy::LoadSpread:
                       return ModuleUtilization[A] < ModuleUtilization[B];
                     }
                     return A < B;
                   });

  for (size_t Target : Candidates) {
    if (Remaining <= 0.0)
      break;
    double Headroom = UtilizationBound - ModuleUtilization[Target];
    if (Headroom <= 0.0)
      continue;
    double Moved = std::min(Remaining, Headroom);
    Plan.AddedUtilization[Target] = Moved;
    Plan.Targets.push_back(static_cast<int>(Target));
    Remaining -= Moved;
  }
  Plan.UnplacedUtilization = std::max(Remaining, 0.0);
  return Plan;
}
