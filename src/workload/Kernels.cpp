//===- workload/Kernels.cpp - Reference computational kernels -----------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/Kernels.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::workload;

//===----------------------------------------------------------------------===//
// IsingKernel
//===----------------------------------------------------------------------===//

IsingKernel::IsingKernel(int LatticeSize, double BetaJIn, uint64_t Seed)
    : L(LatticeSize), BetaJ(BetaJIn) {
  assert(L >= 4 && "lattice too small");
  // splitmix64 seeding of a xoshiro-style state (self-contained so the
  // kernel has no library dependencies beyond the device database).
  uint64_t X = Seed;
  for (uint64_t &Word : RngState) {
    X += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    Word = Z ^ (Z >> 31);
  }
  Spins.assign(static_cast<size_t>(L) * L, 0);
  for (int8_t &S : Spins)
    S = (nextRandom() & 1) ? 1 : -1;
}

uint64_t IsingKernel::nextRandom() {
  auto Rotl = [](uint64_t V, int K) { return (V << K) | (V >> (64 - K)); };
  uint64_t Result = Rotl(RngState[1] * 5, 7) * 9;
  uint64_t T = RngState[1] << 17;
  RngState[2] ^= RngState[0];
  RngState[3] ^= RngState[1];
  RngState[1] ^= RngState[2];
  RngState[0] ^= RngState[3];
  RngState[2] ^= T;
  RngState[3] = Rotl(RngState[3], 45);
  return Result;
}

int IsingKernel::spinAt(int Row, int Col) const {
  int R = (Row + L) % L;
  int C = (Col + L) % L;
  return Spins[static_cast<size_t>(R) * L + C];
}

KernelRunResult IsingKernel::run(int Sweeps) {
  assert(Sweeps >= 0 && "negative sweep count");
  // Precompute the five possible Metropolis acceptance thresholds for
  // dE in {-8J..+8J}; this mirrors the lookup tables FPGA spin engines
  // use.
  double Accept[5];
  for (int I = 0; I != 5; ++I) {
    int DeltaE = 4 * I - 8; // -8, -4, 0, 4, 8 in units of J.
    Accept[I] = DeltaE <= 0 ? 1.0 : std::exp(-BetaJ * DeltaE);
  }

  for (int Sweep = 0; Sweep != Sweeps; ++Sweep) {
    for (int Row = 0; Row != L; ++Row) {
      for (int Col = 0; Col != L; ++Col) {
        int S = spinAt(Row, Col);
        int Neighbors = spinAt(Row - 1, Col) + spinAt(Row + 1, Col) +
                        spinAt(Row, Col - 1) + spinAt(Row, Col + 1);
        // dE = 2*J*S*Neighbors in {-8,-4,0,4,8}; map to index 0..4.
        int DeltaIndex = (S * Neighbors + 4) / 2;
        double U = static_cast<double>(nextRandom() >> 11) * 0x1.0p-53;
        if (U < Accept[DeltaIndex])
          Spins[static_cast<size_t>(Row) * L + Col] =
              static_cast<int8_t>(-S);
      }
    }
  }

  KernelRunResult Result;
  Result.OpCount = static_cast<double>(Sweeps) * L * L;
  Result.Checksum = magnetizationPerSpin() + 3.0 * energyPerSpin();
  return Result;
}

double IsingKernel::magnetizationPerSpin() const {
  long Sum = 0;
  for (int8_t S : Spins)
    Sum += S;
  return static_cast<double>(Sum) / (static_cast<double>(L) * L);
}

double IsingKernel::energyPerSpin() const {
  long Sum = 0;
  for (int Row = 0; Row != L; ++Row)
    for (int Col = 0; Col != L; ++Col)
      Sum -= spinAt(Row, Col) *
             (spinAt(Row + 1, Col) + spinAt(Row, Col + 1));
  return static_cast<double>(Sum) / (static_cast<double>(L) * L);
}

FpgaMapping IsingKernel::mapTo(const fpga::FpgaSpec &Spec) const {
  FpgaMapping Mapping;
  // One spin-update engine: ~350 logic cells, updates one spin per cycle.
  const double CellsPerEngine = 350.0;
  const double UsableFraction = 0.95; // Routing/controller reserve.
  double Budget = Spec.LogicKCells * 1000.0 * UsableFraction;
  int MaxEngines = static_cast<int>(Budget / CellsPerEngine);
  // Each engine needs a slab of >= 16 spins to stay busy.
  Mapping.PipelinesFitted = std::min(MaxEngines, L * L / 16);
  Mapping.Utilization = std::min(
      0.95, Mapping.PipelinesFitted * CellsPerEngine / Budget + 0.04);
  Mapping.ClockFraction = 1.0;
  // Each engine does ~8 integer ops per spin per cycle.
  Mapping.SustainedGflops = Mapping.PipelinesFitted * 8.0 *
                            Spec.NominalClockMHz * 1e6 / 1e9;
  return Mapping;
}

//===----------------------------------------------------------------------===//
// GemmKernel
//===----------------------------------------------------------------------===//

GemmKernel::GemmKernel(int NIn) : N(NIn) {
  assert(N >= 1 && "empty matrix");
  A.assign(static_cast<size_t>(N) * N, 0.0f);
  B.assign(static_cast<size_t>(N) * N, 0.0f);
  C.assign(static_cast<size_t>(N) * N, 0.0f);
  for (int R = 0; R != N; ++R) {
    for (int Col = 0; Col != N; ++Col) {
      A[static_cast<size_t>(R) * N + Col] =
          static_cast<float>((R + 2.0 * Col) / N);
      B[static_cast<size_t>(R) * N + Col] =
          static_cast<float>((R == Col) ? 1.0 : 0.5 / N);
    }
  }
}

KernelRunResult GemmKernel::run() {
  for (int R = 0; R != N; ++R) {
    for (int K = 0; K != N; ++K) {
      float Aval = A[static_cast<size_t>(R) * N + K];
      for (int Col = 0; Col != N; ++Col)
        C[static_cast<size_t>(R) * N + Col] +=
            Aval * B[static_cast<size_t>(K) * N + Col];
    }
  }
  HasRun = true;
  KernelRunResult Result;
  Result.OpCount = 2.0 * N * static_cast<double>(N) * N;
  double Sum = 0.0;
  for (float V : C)
    Sum += V;
  Result.Checksum = Sum;
  return Result;
}

double GemmKernel::elementAt(int Row, int Col) const {
  assert(HasRun && "run() the kernel first");
  assert(Row < N && Col < N && "index out of range");
  return C[static_cast<size_t>(Row) * N + Col];
}

FpgaMapping GemmKernel::mapTo(const fpga::FpgaSpec &Spec) const {
  FpgaMapping Mapping;
  // A single-precision MAC costs ~3 DSP slices; the systolic array is
  // DSP-bound.
  const int DspPerMac = 3;
  int MacUnits = Spec.DspSlices / DspPerMac;
  // The array cannot usefully exceed N x ~N/4 for this problem size.
  int UsefulMacs = std::max(1, N * std::max(N / 4, 1));
  Mapping.PipelinesFitted = std::min(MacUnits, UsefulMacs);
  double DspUtilization =
      static_cast<double>(Mapping.PipelinesFitted * DspPerMac) /
      Spec.DspSlices;
  // Fabric utilization tracks the DSP fill plus buffering logic.
  Mapping.Utilization = std::min(0.92, 0.15 + 0.75 * DspUtilization);
  // Big arrays close timing a little below nominal.
  Mapping.ClockFraction = DspUtilization > 0.8 ? 0.9 : 1.0;
  Mapping.SustainedGflops = Mapping.PipelinesFitted * 2.0 *
                            Spec.NominalClockMHz * Mapping.ClockFraction *
                            1e6 / 1e9;
  return Mapping;
}

//===----------------------------------------------------------------------===//
// FirKernel
//===----------------------------------------------------------------------===//

FirKernel::FirKernel(int NumTapsIn, int NumSamplesIn)
    : NumTaps(NumTapsIn), NumSamples(NumSamplesIn) {
  assert(NumTaps >= 1 && NumSamples >= NumTaps && "bad FIR sizing");
  Taps.resize(NumTaps);
  for (int I = 0; I != NumTaps; ++I) {
    // A simple windowed low-pass prototype.
    double X = I - 0.5 * (NumTaps - 1);
    // skatlint:ignore(float-equality) -- removable singularity of sinc at
    // exactly zero; X is an integer-derived grid point, not a computation.
    double Sinc = X == 0.0 ? 1.0 : std::sin(0.2 * M_PI * X) /
                                       (0.2 * M_PI * X);
    double Window = 0.54 - 0.46 * std::cos(2.0 * M_PI * I / (NumTaps - 1));
    Taps[I] = Sinc * Window;
  }
  // Normalize to unit DC gain so the passband is preserved.
  double Sum = 0.0;
  for (double T : Taps)
    Sum += T;
  for (double &T : Taps)
    T /= Sum;
  Input.resize(NumSamples);
  for (int I = 0; I != NumSamples; ++I)
    Input[I] = std::sin(0.05 * I) + 0.5 * std::sin(0.8 * I + 1.0);
}

KernelRunResult FirKernel::run() {
  Output.assign(NumSamples, 0.0);
  for (int I = NumTaps - 1; I < NumSamples; ++I) {
    double Acc = 0.0;
    for (int T = 0; T != NumTaps; ++T)
      Acc += Taps[T] * Input[I - T];
    Output[I] = Acc;
  }
  HasRun = true;
  KernelRunResult Result;
  Result.OpCount = 2.0 * NumTaps * (NumSamples - NumTaps + 1);
  double Sum = 0.0;
  for (double V : Output)
    Sum += V;
  Result.Checksum = Sum;
  return Result;
}

double FirKernel::outputAt(int Index) const {
  assert(HasRun && "run() the kernel first");
  assert(Index >= 0 && Index < NumSamples && "index out of range");
  return Output[Index];
}

FpgaMapping FirKernel::mapTo(const fpga::FpgaSpec &Spec) const {
  FpgaMapping Mapping;
  // One tap = one DSP slice; channels replicate until ~60% of the DSPs
  // are used (I/O bandwidth limits streaming designs before compute).
  int ChannelCost = NumTaps;
  int MaxChannels =
      std::max(1, static_cast<int>(0.6 * Spec.DspSlices) / ChannelCost);
  Mapping.PipelinesFitted = MaxChannels;
  double DspUtilization =
      static_cast<double>(MaxChannels * ChannelCost) / Spec.DspSlices;
  Mapping.Utilization = std::min(0.75, 0.10 + 0.8 * DspUtilization);
  Mapping.ClockFraction = 0.9; // Streaming clocks run conservative.
  Mapping.SustainedGflops = MaxChannels * 2.0 * NumTaps *
                            Spec.NominalClockMHz * Mapping.ClockFraction *
                            1e6 / 1e9;
  return Mapping;
}
