//===- workload/Workload.cpp - RCS workload generators ------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/Workload.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::workload;

const char *rcs::workload::applicationClassName(ApplicationClass App) {
  switch (App) {
  case ApplicationClass::SpinGlassMonteCarlo:
    return "spin-glass Monte-Carlo";
  case ApplicationClass::MolecularDynamics:
    return "molecular dynamics";
  case ApplicationClass::DenseLinearAlgebra:
    return "dense linear algebra";
  case ApplicationClass::SignalProcessing:
    return "signal processing";
  case ApplicationClass::Idle:
    return "idle";
  }
  assert(false && "unknown application class");
  return "?";
}

fpga::WorkloadPoint rcs::workload::nominalPoint(ApplicationClass App) {
  switch (App) {
  case ApplicationClass::SpinGlassMonteCarlo:
    return {0.95, 1.0}; // The paper's upper bound: 95% of the fabric.
  case ApplicationClass::MolecularDynamics:
    return {0.90, 1.0};
  case ApplicationClass::DenseLinearAlgebra:
    return {0.85, 1.0};
  case ApplicationClass::SignalProcessing:
    return {0.60, 0.9};
  case ApplicationClass::Idle:
    return {0.02, 0.5};
  }
  assert(false && "unknown application class");
  return {0.0, 0.0};
}

std::vector<WorkloadSample>
rcs::workload::generateTrace(const TraceConfig &Config) {
  assert(Config.SampleIntervalS > 0 && Config.DurationS > 0 &&
         "invalid trace timing");
  RandomEngine Rng(Config.Seed);
  fpga::WorkloadPoint Nominal = nominalPoint(Config.App);

  std::vector<WorkloadSample> Trace;
  size_t NumSamples =
      static_cast<size_t>(Config.DurationS / Config.SampleIntervalS) + 1;
  Trace.reserve(NumSamples);

  int DipRemaining = 0;
  for (size_t I = 0; I != NumSamples; ++I) {
    WorkloadSample Sample;
    Sample.TimeS = static_cast<double>(I) * Config.SampleIntervalS;
    if (DipRemaining > 0) {
      // Low-utilization phase: checkpoint / data exchange.
      Sample.Point.Utilization = 0.15;
      Sample.Point.ClockFraction = Nominal.ClockFraction;
      --DipRemaining;
    } else {
      double Jitter = Rng.normal(0.0, Config.UtilizationJitter);
      Sample.Point.Utilization =
          std::clamp(Nominal.Utilization + Jitter, 0.0, 1.0);
      Sample.Point.ClockFraction = Nominal.ClockFraction;
      if (Rng.bernoulli(Config.PhaseDipProbability))
        DipRemaining = 1 + static_cast<int>(Rng.exponential(
                               1.0 / Config.MeanDipLengthSamples));
    }
    Trace.push_back(Sample);
  }
  return Trace;
}

std::vector<WorkloadSample>
rcs::workload::generateDutyCycle(ApplicationClass App, double PeriodS,
                                 double OnFraction,
                                 double SampleIntervalS) {
  assert(PeriodS > 0 && SampleIntervalS > 0 && "invalid duty cycle timing");
  assert(OnFraction >= 0.0 && OnFraction <= 1.0 && "invalid duty fraction");
  fpga::WorkloadPoint On = nominalPoint(App);
  fpga::WorkloadPoint Off = nominalPoint(ApplicationClass::Idle);

  std::vector<WorkloadSample> Trace;
  size_t NumSamples = static_cast<size_t>(PeriodS / SampleIntervalS);
  for (size_t I = 0; I != NumSamples; ++I) {
    WorkloadSample Sample;
    Sample.TimeS = static_cast<double>(I) * SampleIntervalS;
    double Phase = static_cast<double>(I) / NumSamples;
    Sample.Point = Phase < OnFraction ? On : Off;
    Trace.push_back(Sample);
  }
  return Trace;
}

double
rcs::workload::meanUtilization(const std::vector<WorkloadSample> &Trace) {
  if (Trace.empty())
    return 0.0;
  double Sum = 0.0;
  for (const WorkloadSample &Sample : Trace)
    Sum += Sample.Point.Utilization;
  return Sum / static_cast<double>(Trace.size());
}
