//===- workload/Kernels.h - Reference computational kernels -----*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable reference kernels for the application classes the paper's
/// introduction motivates RCS with: spin-glass / Ising Monte-Carlo (the
/// JANUS line of FPGA machines), dense linear algebra, and streaming
/// signal processing. Each kernel really runs (on the host CPU, for
/// validation and op counting) and carries a resource-mapping model that
/// estimates how the task occupies an FPGA: how many hardware pipelines
/// fit the device's DSP/logic budget and what fabric utilization results.
/// The mapping feeds the power model, closing the loop from "task" to
/// "watts" to "temperature".
///
//===----------------------------------------------------------------------===//

#ifndef RCS_WORKLOAD_KERNELS_H
#define RCS_WORKLOAD_KERNELS_H

#include "fpga/Device.h"
#include "fpga/PowerModel.h"

#include <cstdint>
#include <vector>

namespace rcs {
namespace workload {

/// Result of running a reference kernel on the host.
struct KernelRunResult {
  double OpCount = 0.0;  ///< Useful operations performed.
  double Checksum = 0.0; ///< Deterministic output digest (validation).
};

/// How a kernel occupies one FPGA.
struct FpgaMapping {
  int PipelinesFitted = 0;      ///< Parallel hardware pipelines placed.
  double Utilization = 0.0;     ///< Fabric fraction in use (0..1).
  double ClockFraction = 1.0;   ///< Achievable clock vs nominal.
  double SustainedGflops = 0.0; ///< Estimated sustained throughput.

  /// Converts to the power model's operating point.
  fpga::WorkloadPoint toWorkloadPoint() const {
    return {Utilization, ClockFraction};
  }
};

//===----------------------------------------------------------------------===//
// Ising / spin-glass Monte-Carlo (JANUS class)
//===----------------------------------------------------------------------===//

/// 2-D Ising model with Metropolis dynamics on an L x L periodic lattice.
class IsingKernel {
public:
  /// \p LatticeSize L, \p BetaJ inverse temperature times coupling,
  /// \p Seed for the deterministic RNG.
  IsingKernel(int LatticeSize, double BetaJ, uint64_t Seed = 1);

  /// Runs \p Sweeps full-lattice Metropolis sweeps.
  KernelRunResult run(int Sweeps);

  /// Mean magnetization per spin in [-1, 1] of the current state.
  double magnetizationPerSpin() const;

  /// Energy per spin in [-2, 2] (units of J) of the current state.
  double energyPerSpin() const;

  /// Resource mapping: one spin-update pipeline costs a few hundred LUTs
  /// and no DSPs; the fabric fills with update engines until the logic
  /// budget is spent (this is why spin-glass machines reach ~95%
  /// utilization, the paper's upper workload bound).
  FpgaMapping mapTo(const fpga::FpgaSpec &Spec) const;

private:
  int L;
  double BetaJ;
  std::vector<int8_t> Spins;
  uint64_t RngState[4];

  uint64_t nextRandom();
  int spinAt(int Row, int Col) const;
};

//===----------------------------------------------------------------------===//
// Dense linear algebra (GEMM)
//===----------------------------------------------------------------------===//

/// Single-precision dense matrix multiply C = A * B.
class GemmKernel {
public:
  /// \p N matrix dimension; matrices are filled deterministically.
  explicit GemmKernel(int N);

  /// Runs the multiply; OpCount = 2 N^3.
  KernelRunResult run();

  /// Reference element C[r][c] for validation.
  double elementAt(int Row, int Col) const;

  /// Resource mapping: a systolic MAC array sized by the DSP budget;
  /// utilization is DSP-bound, clock derates slightly with array size.
  FpgaMapping mapTo(const fpga::FpgaSpec &Spec) const;

private:
  int N;
  std::vector<float> A, B, C;
  bool HasRun = false;
};

//===----------------------------------------------------------------------===//
// Streaming FIR filter (signal processing)
//===----------------------------------------------------------------------===//

/// Direct-form FIR filter over a deterministic input signal.
class FirKernel {
public:
  /// \p NumTaps filter length, \p NumSamples signal length.
  FirKernel(int NumTaps, int NumSamples);

  /// Runs the filter; OpCount = 2 * taps * samples.
  KernelRunResult run();

  /// Output sample for validation.
  double outputAt(int Index) const;

  /// Resource mapping: taps map 1:1 onto DSP slices; parallel channels
  /// fill the remaining budget. Utilization is usually moderate - the
  /// paper's streaming workloads are the gentle end of the range.
  FpgaMapping mapTo(const fpga::FpgaSpec &Spec) const;

private:
  int NumTaps;
  int NumSamples;
  std::vector<double> Taps;
  std::vector<double> Input;
  std::vector<double> Output;
  bool HasRun = false;
};

} // namespace workload
} // namespace rcs

#endif // RCS_WORKLOAD_KERNELS_H
