//===- workload/Scheduler.h - Thermal-aware rack scheduling -----*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A job scheduler for a rack of reconfigurable modules: the paper's
/// introduction frames RCS as special-purpose devices with
/// "general-purpose use for solving tasks from various problem areas",
/// which operationally means multiplexing a job mix over the FPGA field.
/// The scheduler places jobs on modules under capacity constraints and,
/// optionally, thermal awareness (prefer the coolest module), then
/// replays the schedule against the electro-thermal solver to report
/// makespan, energy and worst junction temperatures.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_WORKLOAD_SCHEDULER_H
#define RCS_WORKLOAD_SCHEDULER_H

#include "fpga/PowerModel.h"
#include "support/Status.h"
#include "system/Rack.h"

#include <string>
#include <vector>

namespace rcs {
namespace workload {

/// One job in the queue.
struct Job {
  std::string Name;
  /// Per-FPGA operating point while the job runs.
  fpga::WorkloadPoint Point{0.9, 1.0};
  /// FPGAs the job occupies (must fit in one module).
  int NumFpgas = 8;
  double DurationHours = 1.0;
  double SubmitHour = 0.0;
};

/// Placement policies.
enum class PlacementPolicy {
  FirstFit,     ///< Lowest-index module with room.
  CoolestFirst, ///< Module with the lowest estimated junction temp.
  LoadSpread    ///< Module with the most free FPGAs.
};

/// Name of \p Policy for reports.
const char *placementPolicyName(PlacementPolicy Policy);

/// One placed job in the resulting schedule.
struct ScheduleEntry {
  size_t JobIndex = 0;
  int ModuleIndex = 0;
  double StartHour = 0.0;
  double EndHour = 0.0;
};

/// Replayed schedule metrics.
struct ScheduleResult {
  std::vector<ScheduleEntry> Entries;
  double MakespanHours = 0.0;
  double EnergyKwh = 0.0;       ///< Total module heat over the schedule.
  double PeakJunctionC = 0.0;
  double MeanUtilization = 0.0; ///< FPGA-hours used / FPGA-hours available
                                ///< within the makespan.
  /// Intervals during which some module exceeded the long-life band.
  int ThermalViolations = 0;
};

/// Schedules \p Jobs on the rack's modules and replays the placement
/// against the steady-state thermal solver interval by interval.
///
/// Jobs are queued FIFO; a job waits until some module has enough free
/// FPGAs. With \p Backfill, jobs behind a blocked queue head may start
/// early when they fit right now (classic EASY-style backfill without
/// reservations; the head can be delayed by at most the backfilled job's
/// runtime, bounded here by allowing only shorter-than-head jobs
/// through). Jobs larger than one module are rejected with an error.
Expected<ScheduleResult>
scheduleOnRack(const rcsystem::RackConfig &Rack,
               const rcsystem::ExternalConditions &Conditions,
               std::vector<Job> Jobs, PlacementPolicy Policy,
               bool Backfill = false);

/// A deterministic synthetic job mix drawn from the paper's application
/// classes (spin-glass, MD, linear algebra, DSP).
std::vector<Job> makeStandardJobMix(int NumJobs, uint64_t Seed);

/// Where a failed or overheating module's running work should go.
struct MigrationPlan {
  /// Utilization added to each module, parallel to the input vectors
  /// (zero for the source module and unavailable modules).
  std::vector<double> AddedUtilization;
  /// Utilization that found no headroom and is lost until repair.
  double UnplacedUtilization = 0.0;
  /// Modules that received work, in fill order (for event logs).
  std::vector<int> Targets;
};

/// Plans migrating the running utilization of module \p FromModule onto
/// the remaining available modules, used by the faults engine when the
/// monitor latches a module off (graceful degradation: migrate, don't
/// drop). Targets are filled greedily to \p UtilizationBound in an order
/// set by \p Policy: FirstFit by index, CoolestFirst by ascending
/// \p ModuleTempC, LoadSpread by ascending current utilization; all ties
/// break by index, so the plan is deterministic.
MigrationPlan planMigration(const std::vector<double> &ModuleUtilization,
                            const std::vector<bool> &Available,
                            const std::vector<double> &ModuleTempC,
                            size_t FromModule, double UtilizationBound,
                            PlacementPolicy Policy);

} // namespace workload
} // namespace rcs

#endif // RCS_WORKLOAD_SCHEDULER_H
