//===- workload/Workload.h - RCS workload generators ------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Workload models for reconfigurable computer systems. The paper's
/// introduction motivates RCS with computationally laborious tasks whose
/// information graph is hardwired onto the FPGA field; classic examples
/// from the references are spin-glass Monte-Carlo (JANUS), molecular
/// dynamics (Anton) and dense linear algebra. Each application class maps
/// to a utilization / clock-fraction profile over time.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_WORKLOAD_WORKLOAD_H
#define RCS_WORKLOAD_WORKLOAD_H

#include "fpga/PowerModel.h"
#include "support/Random.h"

#include <string>
#include <vector>

namespace rcs {
namespace workload {

/// Application classes the paper's RCS machines run.
enum class ApplicationClass {
  SpinGlassMonteCarlo, ///< JANUS-style: near-full utilization, steady.
  MolecularDynamics,   ///< Anton-style: high utilization, phase dips.
  DenseLinearAlgebra,  ///< Solver bursts separated by I/O phases.
  SignalProcessing,    ///< Streaming: moderate utilization, constant.
  Idle                 ///< Configured but quiescent fabric.
};

/// Name of \p App for reports.
const char *applicationClassName(ApplicationClass App);

/// Representative steady operating point of \p App (the paper quotes
/// production workloads using 85..95% of available hardware resource).
fpga::WorkloadPoint nominalPoint(ApplicationClass App);

/// One step of a time-varying workload trace.
struct WorkloadSample {
  double TimeS = 0.0;
  fpga::WorkloadPoint Point;
};

/// Parameters of the trace generator.
struct TraceConfig {
  ApplicationClass App = ApplicationClass::SpinGlassMonteCarlo;
  double DurationS = 3600.0;
  double SampleIntervalS = 10.0;
  /// Standard deviation of the per-sample utilization jitter.
  double UtilizationJitter = 0.02;
  /// Probability per sample of entering a low-utilization phase (I/O,
  /// checkpoint) and its mean length in samples.
  double PhaseDipProbability = 0.02;
  double MeanDipLengthSamples = 6.0;
  uint64_t Seed = 42;
};

/// Generates a deterministic utilization trace for the configuration.
std::vector<WorkloadSample> generateTrace(const TraceConfig &Config);

/// A repeating duty cycle: \p OnFraction of each period at the nominal
/// point, the rest near idle. Returns one full period of samples.
std::vector<WorkloadSample>
generateDutyCycle(ApplicationClass App, double PeriodS, double OnFraction,
                  double SampleIntervalS);

/// Mean utilization of \p Trace (time-weighted, assuming uniform
/// sampling).
double meanUtilization(const std::vector<WorkloadSample> &Trace);

} // namespace workload
} // namespace rcs

#endif // RCS_WORKLOAD_WORKLOAD_H
