//===- hydraulics/Components.cpp - Flow elements ----------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "hydraulics/Components.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::hydraulics;

FlowElement::~FlowElement() = default;

double FlowElement::pressureDropSlopePaPerM3S(double FlowM3PerS,
                                              const fluids::Fluid &F,
                                              double TempC) const {
  // Central-difference fallback so out-of-tree elements keep working with
  // the analytic-Jacobian solver; bundled elements override this with
  // exact derivatives.
  double H = 1e-7 * std::max(1e-6, std::fabs(FlowM3PerS));
  return (pressureDropPa(FlowM3PerS + H, F, TempC) -
          pressureDropPa(FlowM3PerS - H, F, TempC)) /
         (2.0 * H);
}

/// Churchill's friction-factor correlation: a single expression covering
/// laminar, transitional and turbulent flow.
static double churchillFrictionFactor(double Re, double RelativeRoughness) {
  Re = std::max(Re, 1e-6);
  double A = std::pow(
      2.457 * std::log(1.0 / (std::pow(7.0 / Re, 0.9) +
                              0.27 * RelativeRoughness)),
      16.0);
  double B = std::pow(37530.0 / Re, 16.0);
  return 8.0 * std::pow(std::pow(8.0 / Re, 12.0) +
                            1.0 / std::pow(A + B, 1.5),
                        1.0 / 12.0);
}

/// Churchill friction factor together with its Reynolds-number derivative,
/// obtained by chain-ruling every term of the correlation (the analytic
/// pipe Jacobian needs both).
static void churchillFrictionFactorSlope(double Re, double RelativeRoughness,
                                         double &Friction, double &DfDRe) {
  Re = std::max(Re, 1e-6);
  double G = std::pow(7.0 / Re, 0.9) + 0.27 * RelativeRoughness;
  double L = std::log(1.0 / G);
  double A = std::pow(2.457 * L, 16.0);
  double B = std::pow(37530.0 / Re, 16.0);
  double T1 = std::pow(8.0 / Re, 12.0);
  double T2 = 1.0 / std::pow(A + B, 1.5);
  double S = T1 + T2;
  Friction = 8.0 * std::pow(S, 1.0 / 12.0);

  // g' = -0.9 (7/Re)^0.9 / Re; L = -ln g so L' = -g'/g.
  double DgDRe = -0.9 * std::pow(7.0 / Re, 0.9) / Re;
  double DlDRe = -DgDRe / G;
  // A = (2.457 L)^16 so A' = 16 A L'/L. L > 0 whenever g < 1, which holds
  // for every physical relative roughness; guard anyway so a pathological
  // table cannot divide by zero.
  double DaDRe = std::fabs(L) > 1e-300 ? 16.0 * A / L * DlDRe : 0.0;
  double DbDRe = -16.0 * B / Re;
  double Dt1DRe = -12.0 * T1 / Re;
  double Dt2DRe = -1.5 * T2 / (A + B) * (DaDRe + DbDRe);
  DfDRe = Friction / (12.0 * S) * (Dt1DRe + Dt2DRe);
}

//===----------------------------------------------------------------------===//
// PipeSegment
//===----------------------------------------------------------------------===//

PipeSegment::PipeSegment(double LengthMIn, double DiameterMIn,
                         double RoughnessMIn)
    : LengthM(LengthMIn), DiameterM(DiameterMIn), RoughnessM(RoughnessMIn),
      AreaM2(M_PI * DiameterMIn * DiameterMIn / 4.0) {
  assert(LengthM > 0 && DiameterM > 0 && RoughnessM >= 0 &&
         "invalid pipe geometry");
}

double PipeSegment::velocityMPerS(double FlowM3PerS) const {
  return FlowM3PerS / AreaM2;
}

double PipeSegment::pressureDropPa(double FlowM3PerS, const fluids::Fluid &F,
                                   double TempC) const {
  double V = std::fabs(velocityMPerS(FlowM3PerS));
  if (V < 1e-12)
    return 0.0;
  double Rho = F.densityKgPerM3(TempC);
  double Re = V * DiameterM / F.kinematicViscosityM2PerS(TempC);
  double Friction = churchillFrictionFactor(Re, RoughnessM / DiameterM);
  double Drop = Friction * (LengthM / DiameterM) * 0.5 * Rho * V * V;
  return FlowM3PerS >= 0 ? Drop : -Drop;
}

double PipeSegment::pressureDropSlopePaPerM3S(double FlowM3PerS,
                                              const fluids::Fluid &F,
                                              double TempC) const {
  double Q = std::fabs(FlowM3PerS);
  double V = Q / AreaM2;
  double Rho = F.densityKgPerM3(TempC);
  double Nu = F.kinematicViscosityM2PerS(TempC);
  if (V < 1e-12) {
    // pressureDropPa clips to zero below this velocity; report the
    // laminar (Hagen-Poiseuille) slope 128 mu L / (pi D^4) so Newton
    // still sees the physical resistance scale at rest.
    double Mu = Rho * Nu;
    return 128.0 * Mu * LengthM /
           (M_PI * DiameterM * DiameterM * DiameterM * DiameterM);
  }
  double Re = V * DiameterM / Nu;
  double Friction = 0.0, DfDRe = 0.0;
  churchillFrictionFactorSlope(Re, RoughnessM / DiameterM, Friction, DfDRe);
  // dP = C f(Re) Q^2 with C = (L/D) rho / (2 A^2) and Re proportional to
  // Q, so d(dP)/dQ = C Q (2 f + Re f'). dP is odd in Q, so the slope is
  // even and |Q| suffices.
  double C = (LengthM / DiameterM) * 0.5 * Rho / (AreaM2 * AreaM2);
  return C * Q * (2.0 * Friction + Re * DfDRe);
}

std::string PipeSegment::describe() const {
  return formatString("pipe L=%.2fm D=%.0fmm", LengthM, DiameterM * 1e3);
}

//===----------------------------------------------------------------------===//
// Fitting
//===----------------------------------------------------------------------===//

Fitting::Fitting(double LossCoefficientIn, double DiameterMIn)
    : LossCoefficient(LossCoefficientIn), DiameterM(DiameterMIn),
      AreaM2(M_PI * DiameterMIn * DiameterMIn / 4.0) {
  assert(LossCoefficient >= 0 && DiameterM > 0 && "invalid fitting");
}

double Fitting::pressureDropPa(double FlowM3PerS, const fluids::Fluid &F,
                               double TempC) const {
  double V = FlowM3PerS / AreaM2;
  double Rho = F.densityKgPerM3(TempC);
  return LossCoefficient * 0.5 * Rho * V * std::fabs(V);
}

double Fitting::pressureDropSlopePaPerM3S(double FlowM3PerS,
                                          const fluids::Fluid &F,
                                          double TempC) const {
  // dP = K rho Q |Q| / (2 A^2), so d(dP)/dQ = K rho |Q| / A^2.
  double Rho = F.densityKgPerM3(TempC);
  return LossCoefficient * Rho * std::fabs(FlowM3PerS) / (AreaM2 * AreaM2);
}

std::string Fitting::describe() const {
  return formatString("fitting K=%.2f D=%.0fmm", LossCoefficient,
                      DiameterM * 1e3);
}

//===----------------------------------------------------------------------===//
// BalancingValve
//===----------------------------------------------------------------------===//

BalancingValve::BalancingValve(double OpenLossCoefficientIn,
                               double DiameterMIn)
    : OpenLossCoefficient(OpenLossCoefficientIn), DiameterM(DiameterMIn),
      AreaM2(M_PI * DiameterMIn * DiameterMIn / 4.0) {
  assert(OpenLossCoefficient > 0 && DiameterM > 0 && "invalid valve");
}

void BalancingValve::setOpening(double Fraction) {
  assert(Fraction >= 0.0 && Fraction <= 1.0 && "opening out of range");
  OpeningFraction = Fraction;
}

double BalancingValve::pressureDropPa(double FlowM3PerS,
                                      const fluids::Fluid &F,
                                      double TempC) const {
  // Quadratic loss scaled by 1/opening^2; a shut valve keeps a finite but
  // enormous resistance so the network matrix stays regular.
  const double MinOpeningFraction = 1e-3;
  double Effective = std::max(OpeningFraction, MinOpeningFraction);
  double K = OpenLossCoefficient / (Effective * Effective);
  double V = FlowM3PerS / AreaM2;
  double Rho = F.densityKgPerM3(TempC);
  return K * 0.5 * Rho * V * std::fabs(V);
}

double BalancingValve::pressureDropSlopePaPerM3S(double FlowM3PerS,
                                                 const fluids::Fluid &F,
                                                 double TempC) const {
  const double MinOpeningFraction = 1e-3;
  double Effective = std::max(OpeningFraction, MinOpeningFraction);
  double K = OpenLossCoefficient / (Effective * Effective);
  double Rho = F.densityKgPerM3(TempC);
  return K * Rho * std::fabs(FlowM3PerS) / (AreaM2 * AreaM2);
}

std::string BalancingValve::describe() const {
  return formatString("valve K=%.2f open=%.0f%%", OpenLossCoefficient,
                      OpeningFraction * 100.0);
}

//===----------------------------------------------------------------------===//
// HeatExchangerPressureSide
//===----------------------------------------------------------------------===//

HeatExchangerPressureSide::HeatExchangerPressureSide(double RatedFlowM3PerS,
                                                     double RatedDropPa) {
  assert(RatedFlowM3PerS > 0 && RatedDropPa > 0 && "invalid HX rating");
  // Split the rated drop 90% quadratic / 10% linear so dP stays strictly
  // monotone through zero flow.
  QuadraticCoefficient =
      0.9 * RatedDropPa / (RatedFlowM3PerS * RatedFlowM3PerS);
  LinearCoefficient = 0.1 * RatedDropPa / RatedFlowM3PerS;
}

double HeatExchangerPressureSide::pressureDropPa(double FlowM3PerS,
                                                 const fluids::Fluid &F,
                                                 double TempC) const {
  // Viscosity correction on the linear part (channels are narrow); the
  // rating is taken at 40 C oil.
  double ViscosityRatio =
      F.dynamicViscosityPaS(TempC) / F.dynamicViscosityPaS(40.0);
  return QuadraticCoefficient * FlowM3PerS * std::fabs(FlowM3PerS) +
         LinearCoefficient * ViscosityRatio * FlowM3PerS;
}

double HeatExchangerPressureSide::pressureDropSlopePaPerM3S(
    double FlowM3PerS, const fluids::Fluid &F, double TempC) const {
  double ViscosityRatio =
      F.dynamicViscosityPaS(TempC) / F.dynamicViscosityPaS(40.0);
  return 2.0 * QuadraticCoefficient * std::fabs(FlowM3PerS) +
         LinearCoefficient * ViscosityRatio;
}

std::string HeatExchangerPressureSide::describe() const {
  return "plate heat exchanger (pressure side)";
}

//===----------------------------------------------------------------------===//
// Pump
//===----------------------------------------------------------------------===//

Pump::Pump(std::string NameIn, LinearTable HeadCurveIn, double EfficiencyIn)
    : Name(std::move(NameIn)), HeadCurve(std::move(HeadCurveIn)),
      Efficiency(EfficiencyIn) {
  assert(Efficiency > 0.05 && Efficiency <= 0.95 &&
         "implausible pump efficiency");
  assert(HeadCurve.size() >= 2 && "pump needs a head curve");
#ifndef NDEBUG
  // The network solver requires head strictly decreasing in flow. Sample
  // cell midpoints so accumulated rounding can never step outside the
  // table, where derivative() clamps to zero.
  for (int I = 0; I != 16; ++I) {
    double Q = HeadCurve.minX() + (I + 0.5) / 16.0 *
                                      (HeadCurve.maxX() - HeadCurve.minX());
    assert(HeadCurve.derivative(Q) < 0 &&
           "pump head curve must strictly decrease");
  }
#endif
}

void Pump::setSpeedFraction(double Fraction) {
  assert(Fraction >= 0.0 && Fraction <= 1.2 && "speed fraction out of range");
  SpeedFraction = Fraction;
}

double Pump::headPa(double FlowM3PerS) const {
  if (isStopped())
    return 0.0;
  // Affinity laws: Q ~ N, H ~ N^2.
  double ScaledFlow = FlowM3PerS / SpeedFraction;
  double Head = HeadCurve.evaluate(std::max(ScaledFlow, HeadCurve.minX()));
  // Beyond runout, extrapolate the last slope so head keeps falling.
  if (ScaledFlow > HeadCurve.maxX()) {
    double Slope = HeadCurve.derivative(HeadCurve.maxX() - 1e-12);
    Head = HeadCurve.evaluate(HeadCurve.maxX()) +
           Slope * (ScaledFlow - HeadCurve.maxX());
  }
  return Head * SpeedFraction * SpeedFraction;
}

double Pump::electricalPowerW(double FlowM3PerS) const {
  if (isStopped())
    return 0.0;
  double Hydraulic = std::max(FlowM3PerS, 0.0) * std::max(headPa(FlowM3PerS),
                                                          0.0);
  return Hydraulic / Efficiency;
}

double Pump::pressureDropPa(double FlowM3PerS, const fluids::Fluid &F,
                            double TempC) const {
  (void)F;
  (void)TempC;
  if (isStopped()) {
    // A stopped pump resists flow like a tight orifice.
    const double StoppedResistance = 5e10; // Pa/(m^3/s)^2
    return StoppedResistance * FlowM3PerS * std::fabs(FlowM3PerS) +
           1e6 * FlowM3PerS;
  }
  if (FlowM3PerS < 0) {
    // Reverse flow through a running pump: steep resistive penalty around
    // the shutoff head, kept strictly increasing in flow.
    return -headPa(0.0) + 1e9 * FlowM3PerS * std::fabs(FlowM3PerS) +
           1e6 * FlowM3PerS;
  }
  return -headPa(FlowM3PerS);
}

double Pump::pressureDropSlopePaPerM3S(double FlowM3PerS,
                                       const fluids::Fluid &F,
                                       double TempC) const {
  (void)F;
  (void)TempC;
  if (isStopped()) {
    const double StoppedResistance = 5e10; // Pa/(m^3/s)^2, as above.
    return 2.0 * StoppedResistance * std::fabs(FlowM3PerS) + 1e6;
  }
  if (FlowM3PerS < 0)
    return 2.0 * 1e9 * std::fabs(FlowM3PerS) + 1e6;
  // Forward: drop = -head, and by the affinity laws head(Q) =
  // H(Q/s) * s^2, so d(head)/dQ = H'(Q/s) * s (table slope beyond runout
  // extrapolates the last segment, matching headPa).
  double ScaledFlow = FlowM3PerS / SpeedFraction;
  double CurveSlope =
      ScaledFlow > HeadCurve.maxX()
          ? HeadCurve.derivative(HeadCurve.maxX() - 1e-12)
          : HeadCurve.derivative(std::max(ScaledFlow, HeadCurve.minX()));
  return -CurveSlope * SpeedFraction;
}

std::string Pump::describe() const { return "pump " + Name; }

Pump Pump::makeOilCirculationPump(std::string Name, double RatedFlowM3PerS,
                                  double RatedHeadPa) {
  assert(RatedFlowM3PerS > 0 && RatedHeadPa > 0 && "invalid pump rating");
  // Generic centrifugal shape: shutoff = 1.25x rated head, runout =
  // 1.6x rated flow at 40% rated head, strictly decreasing in between.
  LinearTable Curve{{0.0, 1.25 * RatedHeadPa},
                    {0.5 * RatedFlowM3PerS, 1.18 * RatedHeadPa},
                    {RatedFlowM3PerS, RatedHeadPa},
                    {1.3 * RatedFlowM3PerS, 0.72 * RatedHeadPa},
                    {1.6 * RatedFlowM3PerS, 0.40 * RatedHeadPa}};
  return Pump(std::move(Name), std::move(Curve), /*Efficiency=*/0.55);
}
