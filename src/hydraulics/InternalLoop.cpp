//===- hydraulics/InternalLoop.cpp - CM internal oil network -----------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "hydraulics/InternalLoop.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace rcs;
using namespace rcs::hydraulics;

InternalLoop
rcs::hydraulics::buildInternalLoop(const InternalLoopConfig &Config) {
  assert(Config.NumBoards >= 1 && "module needs boards");
  InternalLoop Loop;
  FlowNetwork &Net = Loop.Network;
  const int N = Config.NumBoards;
  const bool Reverse = Config.Design == PlenumDesign::TaperedReverse;
  const double PlenumDiameter = Reverse ? Config.LargePlenumDiameterM
                                        : Config.SmallPlenumDiameterM;

  JunctionId PumpSuction = Net.addJunction("pump-suction");
  std::vector<JunctionId> Supply, Return;
  for (int I = 0; I != N; ++I) {
    Supply.push_back(Net.addJunction(formatString("supply-%d", I + 1)));
    Return.push_back(Net.addJunction(formatString("return-%d", I + 1)));
  }
  Net.setReferenceJunction(PumpSuction);

  // Pump + heat exchanger edge into the supply plenum head.
  {
    std::vector<std::unique_ptr<FlowElement>> Elements;
    // Parallel identical pumps combine into one equivalent curve with the
    // flow axis scaled by the count.
    Elements.push_back(std::make_unique<Pump>(Pump::makeOilCirculationPump(
        "CM-oil", Config.PumpRatedFlowM3PerS * Config.NumPumps,
        Config.PumpRatedHeadPa)));
    Elements.push_back(std::make_unique<HeatExchangerPressureSide>(
        Config.HxRatedFlowM3PerS, Config.HxRatedDropPa));
    Loop.PumpEdge =
        Net.addEdge("pump+hx", PumpSuction, Supply[0], std::move(Elements));
  }

  // Supply plenum segments; each tap adds a tee loss.
  for (int I = 0; I + 1 != N; ++I) {
    std::vector<std::unique_ptr<FlowElement>> Elements;
    Elements.push_back(std::make_unique<PipeSegment>(Config.SegmentLengthM,
                                                     PlenumDiameter));
    Elements.push_back(std::make_unique<Fitting>(0.2, PlenumDiameter));
    Net.addEdge(formatString("supply-seg-%d", I + 1), Supply[I],
                Supply[I + 1], std::move(Elements));
  }

  // Board channels.
  for (int I = 0; I != N; ++I) {
    std::vector<std::unique_ptr<FlowElement>> Elements;
    Elements.push_back(std::make_unique<Fitting>(
        Config.BoardChannelLossK, Config.BoardChannelDiameterM));
    Elements.push_back(std::make_unique<PipeSegment>(
        0.30, Config.BoardChannelDiameterM));
    Loop.BoardEdges.push_back(Net.addEdge(formatString("board-%d", I + 1),
                                          Supply[I], Return[I],
                                          std::move(Elements)));
  }

  // Return plenum segments; the reverse design collects at the far end.
  for (int I = 0; I + 1 != N; ++I) {
    std::vector<std::unique_ptr<FlowElement>> Elements;
    Elements.push_back(std::make_unique<PipeSegment>(Config.SegmentLengthM,
                                                     PlenumDiameter));
    Elements.push_back(std::make_unique<Fitting>(0.2, PlenumDiameter));
    if (Reverse)
      Net.addEdge(formatString("return-seg-%d", I + 1), Return[I],
                  Return[I + 1], std::move(Elements));
    else
      Net.addEdge(formatString("return-seg-%d", I + 1), Return[I + 1],
                  Return[I], std::move(Elements));
  }

  // Back to the pump suction.
  {
    std::vector<std::unique_ptr<FlowElement>> Elements;
    Elements.push_back(
        std::make_unique<PipeSegment>(0.25, PlenumDiameter));
    Net.addEdge("return-run", Reverse ? Return.back() : Return.front(),
                PumpSuction, std::move(Elements));
  }
  return Loop;
}

Expected<InternalFlowReport>
rcs::hydraulics::solveInternalLoop(InternalLoop &Loop,
                                   const fluids::Fluid &Oil, double TempC) {
  FlowSolveOptions SolveOptions;
  SolveOptions.WarmStartPressuresPa = Loop.LastJunctionPressuresPa;
  Expected<FlowSolution> Solution =
      Loop.Network.solve(Oil, TempC, 2e-4, SolveOptions);
  if (!Solution)
    return Expected<InternalFlowReport>::error(
        "internal loop solve failed: " + Solution.message());
  Loop.LastJunctionPressuresPa = Solution->JunctionPressuresPa;
  InternalFlowReport Report;
  for (EdgeId E : Loop.BoardEdges)
    Report.BoardFlowsM3PerS.push_back(Solution->EdgeFlowsM3PerS[E]);
  Report.TotalFlowM3PerS = Solution->EdgeFlowsM3PerS[Loop.PumpEdge];
  Report.Balance = computeFlowBalance(Report.BoardFlowsM3PerS);
  return Report;
}
