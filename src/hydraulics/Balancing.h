//===- hydraulics/Balancing.h - Valve trim balancing ------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative balancing-valve trimming: the manual commissioning procedure
/// a direct-return manifold needs to equalize loop flows. Each iteration
/// solves the network, then throttles every loop that draws more than the
/// minimum toward it (proportional balancing). The paper's reverse-return
/// layout makes this whole procedure unnecessary ("No additional hydraulic
/// balancing system is needed here"); this module quantifies what is being
/// saved: trim iterations, the extra pump head burned across half-closed
/// valves, and the re-trim needed after any maintenance change.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_HYDRAULICS_BALANCING_H
#define RCS_HYDRAULICS_BALANCING_H

#include "hydraulics/Manifold.h"

namespace rcs {
namespace hydraulics {

/// Options of the trim procedure.
struct TrimOptions {
  /// Stop when (max-min)/mean falls below this.
  double TargetImbalanceFraction = 0.02;
  int MaxIterations = 30;
  /// Fraction of the computed correction applied per iteration
  /// (under-relaxation keeps the procedure stable).
  double Relaxation = 0.7;
  /// Valves may not close beyond this opening (authority limit).
  double MinOpeningFraction = 0.15;
};

/// Outcome of a trim run.
struct TrimResult {
  bool Converged = false;
  int Iterations = 0;
  double FinalImbalanceFraction = 0.0;
  /// Final opening of each loop's balancing valve.
  std::vector<double> ValveOpenings;
  /// Mean loop flow before and after (throttling costs total flow).
  double MeanFlowBeforeM3PerS = 0.0;
  double MeanFlowAfterM3PerS = 0.0;
};

/// Trims the balancing valves of \p Rack until loop flows equalize.
///
/// Proportional method: after each solve, loop i's valve opening is scaled
/// by (Q_min / Q_i)^Relaxation, clamped at the authority limit. Returns an
/// error when the hydraulic solve itself fails.
Expected<TrimResult> trimBalancingValves(RackHydraulics &Rack,
                                         const fluids::Fluid &F,
                                         double TempC,
                                         TrimOptions Options = TrimOptions());

/// Dimension-checked mirror of trimBalancingValves.
inline Expected<TrimResult> trimBalancingValves(RackHydraulics &Rack,
                                                const fluids::Fluid &F,
                                                units::Celsius T,
                                                TrimOptions Options =
                                                    TrimOptions()) {
  return trimBalancingValves(Rack, F, T.value(), Options);
}

} // namespace hydraulics
} // namespace rcs

#endif // RCS_HYDRAULICS_BALANCING_H
