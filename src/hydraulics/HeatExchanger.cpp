//===- hydraulics/HeatExchanger.cpp - Plate heat exchanger ------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "hydraulics/HeatExchanger.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::hydraulics;

PlateHeatExchanger::PlateHeatExchanger(std::string NameIn, double UaWPerKIn)
    : Name(std::move(NameIn)), UaWPerK(UaWPerKIn) {
  assert(UaWPerK > 0 && "heat exchanger UA must be positive");
}

void PlateHeatExchanger::setUaWPerK(double Value) {
  assert(Value > 0 && "heat exchanger UA must be positive");
  UaWPerK = Value;
}

double PlateHeatExchanger::capacityRateWPerK(const fluids::Fluid &F,
                                             double FlowM3PerS,
                                             double TempC) {
  return std::max(FlowM3PerS, 0.0) * F.densityKgPerM3(TempC) *
         F.specificHeatJPerKgK(TempC);
}

ExchangeResult PlateHeatExchanger::transfer(double HotInletTempC,
                                            double HotCapacityWPerK,
                                            double ColdInletTempC,
                                            double ColdCapacityWPerK) const {
  ExchangeResult Out;
  Out.HotOutletTempC = HotInletTempC;
  Out.ColdOutletTempC = ColdInletTempC;
  if (HotCapacityWPerK <= 0.0 || ColdCapacityWPerK <= 0.0)
    return Out;

  double CMin = std::min(HotCapacityWPerK, ColdCapacityWPerK);
  double CMax = std::max(HotCapacityWPerK, ColdCapacityWPerK);
  double Cr = CMin / CMax;
  double Ntu = UaWPerK / CMin;

  double Effectiveness = 0.0;
  if (std::fabs(1.0 - Cr) < 1e-9) {
    // Balanced counterflow limit.
    Effectiveness = Ntu / (1.0 + Ntu);
  } else {
    double E = std::exp(-Ntu * (1.0 - Cr));
    Effectiveness = (1.0 - E) / (1.0 - Cr * E);
  }

  double Duty = Effectiveness * CMin * (HotInletTempC - ColdInletTempC);
  Out.DutyW = Duty;
  Out.Effectiveness = Effectiveness;
  Out.Ntu = Ntu;
  Out.HotOutletTempC = HotInletTempC - Duty / HotCapacityWPerK;
  Out.ColdOutletTempC = ColdInletTempC + Duty / ColdCapacityWPerK;
  return Out;
}

double PlateHeatExchanger::sizeUaForDutyWPerK(double DutyW, double HotInletTempC,
                                         double HotCapacityWPerK,
                                         double ColdInletTempC,
                                         double ColdCapacityWPerK) {
  assert(HotCapacityWPerK > 0 && ColdCapacityWPerK > 0 &&
         "capacity rates must be positive");
  assert(HotInletTempC > ColdInletTempC &&
         "duty requires a positive approach");
  double CMin = std::min(HotCapacityWPerK, ColdCapacityWPerK);
  double CMax = std::max(HotCapacityWPerK, ColdCapacityWPerK);
  double Cr = CMin / CMax;
  double MaxDuty = CMin * (HotInletTempC - ColdInletTempC);
  double Effectiveness = DutyW / MaxDuty;
  const double Ceiling = 0.98;
  if (Effectiveness >= Ceiling)
    Effectiveness = Ceiling; // Asymptotic sizing cap.
  double Ntu = 0.0;
  if (std::fabs(1.0 - Cr) < 1e-9)
    Ntu = Effectiveness / (1.0 - Effectiveness);
  else
    Ntu = std::log((1.0 - Effectiveness * Cr) / (1.0 - Effectiveness)) /
          (1.0 - Cr);
  return Ntu * CMin;
}
