//===- hydraulics/HeatExchanger.h - Plate heat exchanger --------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thermal model of the plate heat exchanger the paper selects for the CM
/// heat-exchange section ("the most suitable design of the heat exchanger
/// is a plate-type one designed for cooling mineral oil in hydraulic
/// systems of industrial equipment"). Uses the counterflow
/// effectiveness-NTU method.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_HYDRAULICS_HEATEXCHANGER_H
#define RCS_HYDRAULICS_HEATEXCHANGER_H

#include "fluids/Fluid.h"

#include <string>

namespace rcs {
namespace hydraulics {

/// Result of a heat-exchanger transfer computation.
struct ExchangeResult {
  double HotOutletTempC = 0.0;
  double ColdOutletTempC = 0.0;
  double DutyW = 0.0;          ///< Heat moved hot -> cold.
  double Effectiveness = 0.0;  ///< Achieved epsilon in [0, 1).
  double Ntu = 0.0;
};

/// A counterflow plate heat exchanger characterized by its UA product.
class PlateHeatExchanger {
public:
  /// \p UaWPerK is the overall conductance (overall U times total plate
  /// area). Typical CM-scale oil/water plate packs: 1..5 kW/K.
  PlateHeatExchanger(std::string Name, double UaWPerK);

  const std::string &name() const { return Name; }
  double uaWPerK() const { return UaWPerK; }

  /// Scales UA (fouling, plate-count changes in design studies).
  void setUaWPerK(double Value);

  /// Computes outlet temperatures for given inlets and capacity rates.
  ///
  /// Capacity rates are m_dot * cp in W/K. Zero capacity on either side
  /// short-circuits to zero duty (a stopped loop exchanges nothing).
  ExchangeResult transfer(double HotInletTempC, double HotCapacityWPerK,
                          double ColdInletTempC,
                          double ColdCapacityWPerK) const;

  /// Convenience: capacity rate of \p F at volume flow \p FlowM3PerS and
  /// bulk temperature \p TempC.
  static double capacityRateWPerK(const fluids::Fluid &F, double FlowM3PerS,
                                  double TempC);

  /// Sizes the UA needed to move \p DutyW between the given inlet
  /// temperatures at the given capacity rates (design helper). Returns a
  /// very large UA when the duty approaches the thermodynamic limit.
  static double sizeUaForDutyWPerK(double DutyW, double HotInletTempC,
                              double HotCapacityWPerK, double ColdInletTempC,
                              double ColdCapacityWPerK);

private:
  std::string Name;
  double UaWPerK;
};

} // namespace hydraulics
} // namespace rcs

#endif // RCS_HYDRAULICS_HEATEXCHANGER_H
