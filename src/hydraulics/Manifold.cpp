//===- hydraulics/Manifold.cpp - Rack manifold topologies -------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "hydraulics/Manifold.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::hydraulics;

RackHydraulics
rcs::hydraulics::buildRackPrimaryLoop(const RackHydraulicsConfig &Config) {
  assert(Config.NumLoops >= 1 && "need at least one loop");
  RackHydraulics Rack;
  FlowNetwork &Net = Rack.Network;
  const int N = Config.NumLoops;

  // Junctions: supply tap points S[0..N-1], return tap points R[0..N-1],
  // plus the pump suction node. The pump discharge connects to S[0].
  JunctionId PumpSuction = Net.addJunction("pump-suction");
  std::vector<JunctionId> Supply, Return;
  Supply.reserve(N);
  Return.reserve(N);
  for (int I = 0; I != N; ++I) {
    Supply.push_back(Net.addJunction(formatString("supply-%d", I + 1)));
    Return.push_back(Net.addJunction(formatString("return-%d", I + 1)));
  }
  Net.setReferenceJunction(PumpSuction);

  auto makePipe = [](double LengthM, double DiameterM) {
    return std::make_unique<PipeSegment>(LengthM, DiameterM);
  };

  // Pump + chiller edge: suction -> S[0].
  {
    std::vector<std::unique_ptr<FlowElement>> Elements;
    Elements.push_back(std::make_unique<Pump>(Pump::makeOilCirculationPump(
        "rack-primary", Config.PumpRatedFlowM3PerS, Config.PumpRatedHeadPa)));
    Rack.PumpElementIndex = 0;
    Elements.push_back(std::make_unique<HeatExchangerPressureSide>(
        Config.PumpRatedFlowM3PerS, Config.ChillerRatedDropPa));
    Elements.push_back(makePipe(Config.ReturnPipeLengthM,
                                Config.ManifoldDiameterM));
    Rack.PumpEdge = Net.addEdge("pump+chiller", PumpSuction, Supply[0],
                                std::move(Elements));
  }

  // Supply manifold segments S[i] -> S[i+1].
  for (int I = 0; I + 1 != N; ++I) {
    std::vector<std::unique_ptr<FlowElement>> Elements;
    Elements.push_back(
        makePipe(Config.ManifoldSegmentLengthM, Config.ManifoldDiameterM));
    Net.addEdge(formatString("supply-seg-%d", I + 1), Supply[I],
                Supply[I + 1], std::move(Elements));
  }

  // Circulation loops S[i] -> R[i]: branch pipe + HX side + valve + tees.
  for (int I = 0; I != N; ++I) {
    std::vector<std::unique_ptr<FlowElement>> Elements;
    Elements.push_back(
        makePipe(Config.LoopPipeLengthM, Config.LoopPipeDiameterM));
    Elements.push_back(std::make_unique<HeatExchangerPressureSide>(
        Config.HxRatedFlowM3PerS, Config.HxRatedDropPa));
    Rack.LoopValveElementIndex = Elements.size();
    Elements.push_back(std::make_unique<BalancingValve>(
        Config.ValveOpenLossCoefficient, Config.LoopPipeDiameterM));
    // Branch tee in and out of the manifolds.
    Elements.push_back(
        std::make_unique<Fitting>(1.8, Config.LoopPipeDiameterM));
    Rack.LoopEdges.push_back(Net.addEdge(formatString("loop-%d", I + 1),
                                         Supply[I], Return[I],
                                         std::move(Elements)));
  }

  // Return manifold segments. Direction depends on the layout:
  //  - DirectReturn: water flows back toward loop 1's end, R[i+1] -> R[i],
  //    and the return pipe leaves from R[0] (same end as the supply).
  //  - ReverseReturn (Fig. 5): water continues toward the far end,
  //    R[i] -> R[i+1], and the return pipe leaves from R[N-1].
  for (int I = 0; I + 1 != N; ++I) {
    std::vector<std::unique_ptr<FlowElement>> Elements;
    Elements.push_back(
        makePipe(Config.ManifoldSegmentLengthM, Config.ManifoldDiameterM));
    if (Config.Layout == ManifoldLayout::DirectReturn)
      Net.addEdge(formatString("return-seg-%d", I + 1), Return[I + 1],
                  Return[I], std::move(Elements));
    else
      Net.addEdge(formatString("return-seg-%d", I + 1), Return[I],
                  Return[I + 1], std::move(Elements));
  }

  // Return pipe back to the pump suction.
  {
    std::vector<std::unique_ptr<FlowElement>> Elements;
    Elements.push_back(
        makePipe(Config.ReturnPipeLengthM, Config.ManifoldDiameterM));
    JunctionId Outlet = Config.Layout == ManifoldLayout::DirectReturn
                            ? Return.front()
                            : Return.back();
    Net.addEdge("return-pipe", Outlet, PumpSuction, std::move(Elements));
  }
  return Rack;
}

FlowBalanceStats
rcs::hydraulics::computeFlowBalance(const std::vector<double> &LoopFlows) {
  FlowBalanceStats Stats;
  if (LoopFlows.empty())
    return Stats;
  double Sum = 0.0;
  for (double Q : LoopFlows)
    Sum += Q;
  double RoughMean = Sum / static_cast<double>(LoopFlows.size());

  // Ignore isolated loops (valved off for maintenance).
  double ActiveSum = 0.0;
  int ActiveCount = 0;
  double MinFlow = 0.0, MaxFlow = 0.0;
  bool First = true;
  for (double Q : LoopFlows) {
    if (Q < 0.01 * RoughMean)
      continue;
    ActiveSum += Q;
    ++ActiveCount;
    if (First) {
      MinFlow = MaxFlow = Q;
      First = false;
    } else {
      MinFlow = std::fmin(MinFlow, Q);
      MaxFlow = std::fmax(MaxFlow, Q);
    }
  }
  if (ActiveCount == 0)
    return Stats;
  Stats.MinFlowM3PerS = MinFlow;
  Stats.MaxFlowM3PerS = MaxFlow;
  Stats.MeanFlowM3PerS = ActiveSum / ActiveCount;
  Stats.ImbalanceFraction =
      (MaxFlow - MinFlow) / std::max(Stats.MeanFlowM3PerS, 1e-300);
  return Stats;
}
