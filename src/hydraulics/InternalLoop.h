//===- hydraulics/InternalLoop.h - CM internal oil network ------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An explicit hydraulic model of the oil circulation *inside* one
/// computational module: pump(s) -> supply plenum -> N parallel board
/// channels -> return plenum -> heat exchanger -> pump. The module solver
/// lumps this into a single bath loss coefficient; this model resolves
/// per-board flows and shows how plenum design controls board-to-board
/// flow uniformity - the intra-module analog of the Fig. 5 rack problem,
/// and the mechanism behind the "considerable thermal gradients" of
/// first-generation immersion designs (Section 2).
///
//===----------------------------------------------------------------------===//

#ifndef RCS_HYDRAULICS_INTERNALLOOP_H
#define RCS_HYDRAULICS_INTERNALLOOP_H

#include "hydraulics/FlowNetwork.h"
#include "hydraulics/Manifold.h"

#include <vector>

namespace rcs {
namespace hydraulics {

/// Plenum design alternatives for the CM computational section.
enum class PlenumDesign {
  /// Narrow constant-section plena: boards near the pump feed take more
  /// flow (the adapted single-chip designs of Section 2).
  UniformNarrow,
  /// Generously-sized plena with the return collected at the far end -
  /// the reverse-return idea applied inside the module (SKAT).
  TaperedReverse
};

/// Parameters of the internal loop model.
struct InternalLoopConfig {
  int NumBoards = 12;
  PlenumDesign Design = PlenumDesign::TaperedReverse;

  /// Plenum segment between consecutive board taps, as an equivalent
  /// pipe. The narrow design uses SmallDiameterM, the tapered design
  /// LargeDiameterM.
  double SegmentLengthM = 0.035;
  double SmallPlenumDiameterM = 0.025;
  double LargePlenumDiameterM = 0.045;

  /// One board channel: the gap between adjacent boards packed with the
  /// sink banks, modeled as loss coefficient + narrow rectangular duct.
  double BoardChannelLossK = 30.0;
  double BoardChannelDiameterM = 0.016; ///< Hydraulic-equivalent bore.

  /// Oil pump of the heat-exchange section.
  double PumpRatedFlowM3PerS = 2.2e-3;
  double PumpRatedHeadPa = 6.0e4;
  int NumPumps = 1;

  /// Oil side of the plate heat exchanger.
  double HxRatedFlowM3PerS = 2.2e-3;
  double HxRatedDropPa = 3.0e4;

  /// \name Dimension-checked setters
  /// Typed mirrors for builder-style configuration (see support/Quantity.h);
  /// the raw fields remain for aggregate initialization.
  /// @{
  InternalLoopConfig &setPlenumGeometry(units::Meters SegmentLength,
                                        units::Meters SmallDiameter,
                                        units::Meters LargeDiameter) {
    SegmentLengthM = SegmentLength.value();
    SmallPlenumDiameterM = SmallDiameter.value();
    LargePlenumDiameterM = LargeDiameter.value();
    return *this;
  }
  InternalLoopConfig &setBoardChannel(units::Scalar LossCoefficient,
                                      units::Meters Diameter) {
    BoardChannelLossK = LossCoefficient.value();
    BoardChannelDiameterM = Diameter.value();
    return *this;
  }
  InternalLoopConfig &setPumpRating(units::M3PerS RatedFlow,
                                    units::Pascal RatedHead) {
    PumpRatedFlowM3PerS = RatedFlow.value();
    PumpRatedHeadPa = RatedHead.value();
    return *this;
  }
  InternalLoopConfig &setHxRating(units::M3PerS RatedFlow,
                                  units::Pascal RatedDrop) {
    HxRatedFlowM3PerS = RatedFlow.value();
    HxRatedDropPa = RatedDrop.value();
    return *this;
  }
  /// @}
};

/// The built internal network with handles.
struct InternalLoop {
  FlowNetwork Network;
  EdgeId PumpEdge = 0;
  std::vector<EdgeId> BoardEdges;
  /// Junction pressures of the most recent successful solve; used to
  /// warm-start the next one (callers re-solve the same loop as the oil
  /// temperature drifts). Empty until solveInternalLoop succeeds once.
  std::vector<double> LastJunctionPressuresPa;
};

/// Builds the internal circulation network.
InternalLoop buildInternalLoop(const InternalLoopConfig &Config);

/// Per-board flow summary for a solved internal loop.
struct InternalFlowReport {
  std::vector<double> BoardFlowsM3PerS;
  double TotalFlowM3PerS = 0.0;
  FlowBalanceStats Balance;

  /// Dimension-checked accessor.
  units::M3PerS totalFlow() const { return units::M3PerS(TotalFlowM3PerS); }
};

/// Solves the internal loop with the given oil at \p TempC.
Expected<InternalFlowReport> solveInternalLoop(InternalLoop &Loop,
                                               const fluids::Fluid &Oil,
                                               double TempC);

/// Dimension-checked mirror of solveInternalLoop.
inline Expected<InternalFlowReport> solveInternalLoop(InternalLoop &Loop,
                                                      const fluids::Fluid &Oil,
                                                      units::Celsius T) {
  return solveInternalLoop(Loop, Oil, T.value());
}

} // namespace hydraulics
} // namespace rcs

#endif // RCS_HYDRAULICS_INTERNALLOOP_H
