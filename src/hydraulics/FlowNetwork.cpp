//===- hydraulics/FlowNetwork.cpp - Nonlinear flow-network solver -----------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "hydraulics/FlowNetwork.h"

#include "support/Numerics.h"
#include "telemetry/Span.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace rcs;
using namespace rcs::hydraulics;

namespace rcs {
namespace hydraulics {

struct FlowNetwork::Impl {
  struct EdgeRecord {
    std::string Name;
    JunctionId From;
    JunctionId To;
    std::vector<std::unique_ptr<FlowElement>> Elements;
  };

  std::vector<std::string> Junctions;
  std::vector<EdgeRecord> Edges;
  JunctionId Reference = 0;

  double edgeDrop(EdgeId E, double Flow, const fluids::Fluid &F,
                  double TempC) const {
    double Total = 0.0;
    for (const auto &Element : Edges[E].Elements)
      Total += Element->pressureDropPa(Flow, F, TempC);
    return Total;
  }

  /// Inverts the edge's monotone dP(Q) relation: finds Q with
  /// dP(Q) == TargetDrop.
  double invertEdge(EdgeId E, double TargetDrop, const fluids::Fluid &F,
                    double TempC, double FlowScale) const {
    auto Fn = [&](double Q) { return edgeDrop(E, Q, F, TempC) - TargetDrop; };
    // Expand the bracket until the root is enclosed; dP is strictly
    // increasing so expansion terminates.
    double Bracket = FlowScale;
    for (int Attempt = 0; Attempt != 60; ++Attempt) {
      if (Fn(-Bracket) <= 0.0 && Fn(Bracket) >= 0.0)
        break;
      Bracket *= 4.0;
    }
    RootFindOptions Options;
    Options.AbsTolerance = 1e-14 * std::max(1.0, Bracket / FlowScale);
    Expected<double> Root = findRootBrent(Fn, -Bracket, Bracket, Options);
    // A monotone function bracketed above always yields a root; fall back
    // to zero flow only on pathological element behavior.
    return Root ? *Root : 0.0;
  }
};

} // namespace hydraulics
} // namespace rcs

FlowNetwork::FlowNetwork() : PImpl(std::make_unique<Impl>()) {}
FlowNetwork::~FlowNetwork() = default;
FlowNetwork::FlowNetwork(FlowNetwork &&) = default;
FlowNetwork &FlowNetwork::operator=(FlowNetwork &&) = default;

JunctionId FlowNetwork::addJunction(std::string Name) {
  PImpl->Junctions.push_back(std::move(Name));
  return PImpl->Junctions.size() - 1;
}

void FlowNetwork::setReferenceJunction(JunctionId Junction) {
  assert(Junction < PImpl->Junctions.size() && "junction out of range");
  PImpl->Reference = Junction;
}

EdgeId FlowNetwork::addEdge(std::string Name, JunctionId From, JunctionId To,
                            std::vector<std::unique_ptr<FlowElement>>
                                Elements) {
  assert(From < PImpl->Junctions.size() && To < PImpl->Junctions.size() &&
         "junction out of range");
  assert(From != To && "self-loop edges are not allowed");
  assert(!Elements.empty() && "an edge needs at least one element");
  Impl::EdgeRecord Record;
  Record.Name = std::move(Name);
  Record.From = From;
  Record.To = To;
  Record.Elements = std::move(Elements);
  PImpl->Edges.push_back(std::move(Record));
  return PImpl->Edges.size() - 1;
}

void FlowNetwork::appendElement(EdgeId Edge,
                                std::unique_ptr<FlowElement> Element) {
  assert(Edge < PImpl->Edges.size() && "edge out of range");
  PImpl->Edges[Edge].Elements.push_back(std::move(Element));
}

FlowElement *FlowNetwork::elementAt(EdgeId Edge, size_t Index) {
  assert(Edge < PImpl->Edges.size() && "edge out of range");
  assert(Index < PImpl->Edges[Edge].Elements.size() &&
         "element index out of range");
  return PImpl->Edges[Edge].Elements[Index].get();
}

size_t FlowNetwork::numJunctions() const { return PImpl->Junctions.size(); }
size_t FlowNetwork::numEdges() const { return PImpl->Edges.size(); }

const std::string &FlowNetwork::junctionName(JunctionId J) const {
  assert(J < PImpl->Junctions.size() && "junction out of range");
  return PImpl->Junctions[J];
}

const std::string &FlowNetwork::edgeName(EdgeId E) const {
  assert(E < PImpl->Edges.size() && "edge out of range");
  return PImpl->Edges[E].Name;
}

JunctionId FlowNetwork::edgeFrom(EdgeId E) const {
  assert(E < PImpl->Edges.size() && "edge out of range");
  return PImpl->Edges[E].From;
}

JunctionId FlowNetwork::edgeTo(EdgeId E) const {
  assert(E < PImpl->Edges.size() && "edge out of range");
  return PImpl->Edges[E].To;
}

double FlowNetwork::edgePressureDropPa(EdgeId E, double FlowM3PerS,
                                       const fluids::Fluid &F,
                                       double TempC) const {
  assert(E < PImpl->Edges.size() && "edge out of range");
  return PImpl->edgeDrop(E, FlowM3PerS, F, TempC);
}

Expected<FlowSolution> FlowNetwork::solve(const fluids::Fluid &F,
                                          double TempC,
                                          double FlowScaleM3PerS) const {
  return solve(F, TempC, FlowScaleM3PerS, FlowSolveOptions());
}

Expected<FlowSolution>
FlowNetwork::solve(const fluids::Fluid &F, double TempC,
                   double FlowScaleM3PerS,
                   const FlowSolveOptions &SolveOptions) const {
  assert(FlowScaleM3PerS > 0 && "flow scale must be positive");
  telemetry::Registry &Telemetry = telemetry::Registry::global();
  static telemetry::Counter &SolveCount =
      Telemetry.counter("hydraulics.flow.solves");
  static telemetry::Counter &FailureCount =
      Telemetry.counter("hydraulics.flow.failures");
  static telemetry::Counter &IterationCount =
      Telemetry.counter("hydraulics.newton.iterations");
  static telemetry::Counter &InversionCount =
      Telemetry.counter("hydraulics.edge_inversion.searches");
  static telemetry::Counter &RetryCount =
      Telemetry.counter("hydraulics.newton.jacobian_retries");
  static telemetry::Counter &WarmStartCount =
      Telemetry.counter("hydraulics.newton.warm_starts");
  static telemetry::Counter &AnalyticCount =
      Telemetry.counter("hydraulics.newton.analytic_solves");
  static telemetry::Counter &AnalyticFallbackCount =
      Telemetry.counter("hydraulics.newton.analytic_fallbacks");
  static telemetry::Histogram &IterationHistogram =
      Telemetry.histogram("hydraulics.newton.iterations_per_solve");
  telemetry::Span SolveSpan(Telemetry, "hydraulics.flow.solve");
  SolveCount.add();

  const size_t NumJ = PImpl->Junctions.size();
  const size_t NumE = PImpl->Edges.size();
  if (NumJ == 0 || NumE == 0) {
    FailureCount.add();
    return Expected<FlowSolution>::error("empty hydraulic network");
  }
  SolveSpan.attr("unknowns", static_cast<long long>(NumJ - 1));

  // Unknowns: pressures at all junctions except the reference.
  std::vector<size_t> UnknownIndex(NumJ, SIZE_MAX);
  size_t NumUnknowns = 0;
  for (size_t J = 0; J != NumJ; ++J)
    if (J != PImpl->Reference)
      UnknownIndex[J] = NumUnknowns++;

  auto pressuresFrom = [&](const std::vector<double> &X) {
    std::vector<double> P(NumJ, 0.0);
    for (size_t J = 0; J != NumJ; ++J)
      if (J != PImpl->Reference)
        P[J] = X[UnknownIndex[J]];
    return P;
  };

  // Bracketing root searches performed, accumulated locally and folded
  // into the counter once — the per-search cost must stay untouched.
  uint64_t InversionSearches = 0;
  auto edgeFlows = [&](const std::vector<double> &P) {
    std::vector<double> Q(NumE, 0.0);
    for (size_t E = 0; E != NumE; ++E) {
      double Drop = P[PImpl->Edges[E].From] - P[PImpl->Edges[E].To];
      Q[E] = PImpl->invertEdge(E, Drop, F, TempC, FlowScaleM3PerS);
    }
    InversionSearches += NumE;
    return Q;
  };

  // Edge flows of the most recent residual evaluation; solveNewtonSystem
  // guarantees it invokes the Jacobian callback at that same iterate, so
  // the analytic assembly below can linearize around these flows without
  // re-running the edge inversions.
  std::vector<double> LastFlows(NumE, 0.0);

  auto residual = [&](const std::vector<double> &X) {
    telemetry::Span ResidualSpan(Telemetry, "hydraulics.newton.residual");
    std::vector<double> P = pressuresFrom(X);
    std::vector<double> Q = edgeFlows(P);
    std::vector<double> NetIn(NumJ, 0.0);
    for (size_t E = 0; E != NumE; ++E) {
      NetIn[PImpl->Edges[E].From] -= Q[E];
      NetIn[PImpl->Edges[E].To] += Q[E];
    }
    LastFlows = std::move(Q);
    std::vector<double> R(NumUnknowns, 0.0);
    for (size_t J = 0; J != NumJ; ++J)
      if (J != PImpl->Reference)
        R[UnknownIndex[J]] = NetIn[J];
    return R;
  };

  // Analytic continuity Jacobian. Each edge contributes the weighted
  // Laplacian stencil of dQ/d(dP) = 1 / (sum of element slopes at the
  // current flow): flow leaves From and enters To, and the drop is
  // P_From - P_To.
  auto analyticJacobian = [&](const std::vector<double> &X,
                              const std::vector<double> &Fx) {
    (void)X;
    (void)Fx;
    telemetry::Span JacobianSpan(Telemetry, "hydraulics.jacobian.assembly");
    Matrix J(NumUnknowns, NumUnknowns);
    for (size_t E = 0; E != NumE; ++E) {
      const auto &Edge = PImpl->Edges[E];
      double Slope = 0.0;
      for (const auto &Element : Edge.Elements)
        Slope += Element->pressureDropSlopePaPerM3S(LastFlows[E], F, TempC);
      // Positive by the monotonicity contract; floored so a flat spot
      // (all-quadratic edge at exactly zero flow) cannot divide by zero.
      double W = 1.0 / std::max(Slope, 1e-30);
      size_t IFrom = UnknownIndex[Edge.From];
      size_t ITo = UnknownIndex[Edge.To];
      if (IFrom != SIZE_MAX) {
        J.at(IFrom, IFrom) -= W;
        if (ITo != SIZE_MAX)
          J.at(IFrom, ITo) += W;
      }
      if (ITo != SIZE_MAX) {
        J.at(ITo, ITo) -= W;
        if (IFrom != SIZE_MAX)
          J.at(ITo, IFrom) += W;
      }
    }
    return J;
  };

  NewtonOptions Options;
  Options.ResidualTolerance = std::max(1e-10, 1e-6 * FlowScaleM3PerS);
  Options.MaxIterations = 200;
  // Per-iterate diagnostics: the residual history rides on the solution
  // for offline convergence analysis, and each iterate becomes a trace
  // event when a sink is attached.
  std::vector<double> History;
  Options.Observer = [&](const NewtonIterate &It) {
    History.push_back(It.MaxAbsResidual);
    if (Telemetry.tracingEnabled())
      Telemetry.emitEvent(
          "hydraulics.newton.iteration",
          {{"iteration", It.Iteration},
           {"max_continuity_m3s", It.MaxAbsResidual},
           {"residual_norm_m3s", It.ResidualNorm},
           {"damping", It.Damping}});
  };
  // Initial iterate: caller-provided junction pressures when present
  // (re-zeroed to the reference gauge), zeros otherwise.
  std::vector<double> Initial(NumUnknowns, 0.0);
  if (SolveOptions.WarmStartPressuresPa.size() == NumJ) {
    double Gauge = SolveOptions.WarmStartPressuresPa[PImpl->Reference];
    for (size_t J = 0; J != NumJ; ++J)
      if (J != PImpl->Reference)
        Initial[UnknownIndex[J]] =
            SolveOptions.WarmStartPressuresPa[J] - Gauge;
    WarmStartCount.add();
  }
  SolveSpan.attr("warm_start",
                 SolveOptions.WarmStartPressuresPa.size() == NumJ);
  SolveSpan.attr("analytic", SolveOptions.Jacobian ==
                                 FlowSolveOptions::JacobianKind::Analytic);

  NewtonResult Newton;
  Newton.Converged = false;
  // Best iterate seen across attempts: Newton's line search only accepts
  // residual-descending steps, so a failed attempt's final point is still
  // its best one and seeds the next attempt instead of restarting cold.
  std::vector<double> BestIterate = Initial;
  double BestNorm = std::numeric_limits<double>::infinity();

  if (SolveOptions.Jacobian == FlowSolveOptions::JacobianKind::Analytic) {
    AnalyticCount.add();
    History.clear();
    Options.Jacobian = analyticJacobian;
    Newton = solveNewtonSystem(residual, Initial, Options);
    IterationCount.add(static_cast<uint64_t>(Newton.Iterations));
    if (!Newton.Converged && Newton.ResidualNorm < BestNorm) {
      BestNorm = Newton.ResidualNorm;
      BestIterate = Newton.Solution;
    }
  }

  SolveSpan.attr("fallback_fd", !Newton.Converged);
  if (!Newton.Converged) {
    if (SolveOptions.Jacobian == FlowSolveOptions::JacobianKind::Analytic)
      AnalyticFallbackCount.add();
    // Fixed absolute pressure perturbations: large enough to clear the
    // edge-inversion noise floor, small enough that the secant matches
    // the local derivative even at high junction pressures. The right
    // scale depends on the stiffness of the network (viscous oil vs
    // water), so a failed solve retries across a perturbation ladder.
    Options.Jacobian = nullptr;
    Options.JacobianRelative = false;
    bool FirstAttempt = true;
    for (double Epsilon : {0.5, 5.0, 0.05, 50.0, 500.0}) {
      if (!FirstAttempt)
        RetryCount.add();
      FirstAttempt = false;
      History.clear();
      Options.JacobianEpsilon = Epsilon;
      Newton = solveNewtonSystem(residual, BestIterate, Options);
      IterationCount.add(static_cast<uint64_t>(Newton.Iterations));
      if (Newton.Converged)
        break;
      if (Newton.ResidualNorm < BestNorm) {
        BestNorm = Newton.ResidualNorm;
        BestIterate = Newton.Solution;
      }
    }
  }
  IterationHistogram.record(Newton.Iterations);
  SolveSpan.attr("iterations", Newton.Iterations);
  SolveSpan.attr("converged", Newton.Converged);
  if (!Newton.Converged) {
    InversionCount.add(InversionSearches);
    FailureCount.add();
    return Expected<FlowSolution>::error(
        "hydraulic solve did not converge (residual " +
        std::to_string(Newton.ResidualNorm) + " m^3/s)");
  }

  FlowSolution Solution;
  Solution.JunctionPressuresPa = pressuresFrom(Newton.Solution);
  Solution.EdgeFlowsM3PerS = edgeFlows(Solution.JunctionPressuresPa);
  Solution.NewtonIterations = Newton.Iterations;
  Solution.ResidualHistory = std::move(History);
  InversionCount.add(InversionSearches);

  std::vector<double> NetIn(NumJ, 0.0);
  for (size_t E = 0; E != NumE; ++E) {
    NetIn[PImpl->Edges[E].From] -= Solution.EdgeFlowsM3PerS[E];
    NetIn[PImpl->Edges[E].To] += Solution.EdgeFlowsM3PerS[E];
  }
  for (size_t J = 0; J != NumJ; ++J)
    if (J != PImpl->Reference)
      Solution.MaxContinuityErrorM3PerS = std::max(
          Solution.MaxContinuityErrorM3PerS, std::fabs(NetIn[J]));
  return Solution;
}
