//===- hydraulics/Components.h - Flow elements ------------------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pressure-drop elements for the hydraulic network: pipes (Darcy-Weisbach
/// with the Churchill friction factor), fittings, balancing valves, pump
/// curves with affinity-law speed scaling, and the oil side of plate heat
/// exchangers. Every element maps a signed volume flow to a signed pressure
/// drop and is strictly monotonic in flow, which the network solver relies
/// on for invertibility.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_HYDRAULICS_COMPONENTS_H
#define RCS_HYDRAULICS_COMPONENTS_H

#include "fluids/Fluid.h"
#include "support/Interp.h"
#include "support/Quantity.h"

#include <memory>
#include <string>

namespace rcs {
namespace hydraulics {

/// An element of a hydraulic edge mapping flow to pressure drop.
///
/// Sign convention: positive flow is in the edge's from->to direction and
/// positive pressure drop opposes it. Pumps return negative drops (they add
/// head). Implementations must be strictly increasing in flow.
class FlowElement {
public:
  virtual ~FlowElement();

  /// Signed pressure drop in Pa at \p FlowM3PerS of \p F at \p TempC.
  virtual double pressureDropPa(double FlowM3PerS, const fluids::Fluid &F,
                                double TempC) const = 0;

  /// Dimension-checked mirror of pressureDropPa (see support/Quantity.h).
  /// New code should prefer this form; the double overload remains the
  /// escape hatch for solver-internal code.
  units::Pascal pressureDrop(units::M3PerS Flow, const fluids::Fluid &F,
                             units::Celsius T) const {
    return units::Pascal(pressureDropPa(Flow.value(), F, T.value()));
  }

  /// d(pressureDropPa)/d(flow) at \p FlowM3PerS, in Pa/(m^3/s).
  ///
  /// Nonnegative by the monotonicity contract (strictly positive away
  /// from flat spots). The network solver sums these per edge to build
  /// its analytic Newton Jacobian. The base implementation falls back to
  /// a central difference of pressureDropPa for out-of-tree elements;
  /// every bundled element overrides it with the exact derivative.
  virtual double pressureDropSlopePaPerM3S(double FlowM3PerS,
                                           const fluids::Fluid &F,
                                           double TempC) const;

  /// Human-readable element description.
  virtual std::string describe() const = 0;
};

/// A straight pipe: Darcy-Weisbach with the Churchill friction factor,
/// valid across laminar, transitional and turbulent regimes.
class PipeSegment : public FlowElement {
public:
  /// \p RoughnessM defaults to drawn tubing (1.5 um).
  PipeSegment(double LengthM, double DiameterM, double RoughnessM = 1.5e-6);

  /// Dimension-checked constructor.
  PipeSegment(units::Meters Length, units::Meters Diameter,
              units::Meters Roughness = units::Meters(1.5e-6))
      : PipeSegment(Length.value(), Diameter.value(), Roughness.value()) {}

  double pressureDropPa(double FlowM3PerS, const fluids::Fluid &F,
                        double TempC) const override;
  double pressureDropSlopePaPerM3S(double FlowM3PerS, const fluids::Fluid &F,
                                   double TempC) const override;
  std::string describe() const override;

  double lengthM() const { return LengthM; }
  double diameterM() const { return DiameterM; }
  units::Meters length() const { return units::Meters(LengthM); }
  units::Meters diameter() const { return units::Meters(DiameterM); }

  /// Mean velocity at \p FlowM3PerS.
  double velocityMPerS(double FlowM3PerS) const;

  /// Dimension-checked mirror of velocityMPerS.
  units::MPerS velocity(units::M3PerS Flow) const {
    return units::MPerS(velocityMPerS(Flow.value()));
  }

private:
  double LengthM;
  double DiameterM;
  double RoughnessM;
  double AreaM2;
};

/// A minor-loss fitting (elbow, tee, entry/exit): dP = K * rho * v^2 / 2
/// referenced to the given bore diameter.
class Fitting : public FlowElement {
public:
  Fitting(double LossCoefficient, double DiameterM);

  /// Dimension-checked constructor (K is dimensionless).
  Fitting(double LossCoefficient, units::Meters Diameter)
      : Fitting(LossCoefficient, Diameter.value()) {}

  double pressureDropPa(double FlowM3PerS, const fluids::Fluid &F,
                        double TempC) const override;
  double pressureDropSlopePaPerM3S(double FlowM3PerS, const fluids::Fluid &F,
                                   double TempC) const override;
  std::string describe() const override;

private:
  double LossCoefficient;
  double DiameterM;
  double AreaM2;
};

/// A balancing valve with adjustable opening.
///
/// Fully open it behaves as a fitting with \p OpenLossCoefficient; closing
/// scales the loss as 1/opening^2. Opening zero models a shut valve with a
/// very large but finite resistance (keeps the solver regular).
class BalancingValve : public FlowElement {
public:
  BalancingValve(double OpenLossCoefficient, double DiameterM);

  /// Dimension-checked constructor (K is dimensionless).
  BalancingValve(double OpenLossCoefficient, units::Meters Diameter)
      : BalancingValve(OpenLossCoefficient, Diameter.value()) {}

  /// Sets the opening fraction in [0, 1].
  void setOpening(double Fraction);
  double opening() const { return OpeningFraction; }

  double pressureDropPa(double FlowM3PerS, const fluids::Fluid &F,
                        double TempC) const override;
  double pressureDropSlopePaPerM3S(double FlowM3PerS, const fluids::Fluid &F,
                                   double TempC) const override;
  std::string describe() const override;

private:
  double OpenLossCoefficient;
  double DiameterM;
  double AreaM2;
  double OpeningFraction = 1.0;
};

/// The hydraulic (pressure-drop) side of a plate heat exchanger channel
/// pack, modeled as an equivalent quadratic resistance calibrated by the
/// rated operating point.
class HeatExchangerPressureSide : public FlowElement {
public:
  /// Rated \p RatedDropPa at \p RatedFlowM3PerS (from a datasheet).
  HeatExchangerPressureSide(double RatedFlowM3PerS, double RatedDropPa);

  /// Dimension-checked constructor.
  HeatExchangerPressureSide(units::M3PerS RatedFlow, units::Pascal RatedDrop)
      : HeatExchangerPressureSide(RatedFlow.value(), RatedDrop.value()) {}

  double pressureDropPa(double FlowM3PerS, const fluids::Fluid &F,
                        double TempC) const override;
  double pressureDropSlopePaPerM3S(double FlowM3PerS, const fluids::Fluid &F,
                                   double TempC) const override;
  std::string describe() const override;

private:
  double QuadraticCoefficient; // Pa / (m^3/s)^2
  double LinearCoefficient;    // Pa / (m^3/s), keeps dP monotone near zero.
};

/// A centrifugal pump: head curve plus affinity-law speed scaling.
///
/// As a FlowElement its pressure "drop" is the negative of the head it
/// adds. Reverse flow through a running pump is resisted steeply.
class Pump : public FlowElement {
public:
  /// \p HeadCurve maps flow (m^3/s) to added head (Pa) at full speed; the
  /// head must strictly decrease with flow. \p Efficiency is the combined
  /// hydraulic+motor efficiency at the best point.
  Pump(std::string Name, LinearTable HeadCurve, double Efficiency = 0.55);

  /// Sets the relative speed in [0, 1.2]; affinity laws scale head by
  /// speed^2 and the flow axis by speed.
  void setSpeedFraction(double Fraction);
  double speedFraction() const { return SpeedFraction; }

  /// True when the pump is stopped (speed == 0); a stopped pump acts as a
  /// high-resistance element (check-valve-free design).
  bool isStopped() const { return SpeedFraction <= 0.0; }

  /// Head added at \p FlowM3PerS, Pa (>= 0 for forward flow below runout).
  double headPa(double FlowM3PerS) const;

  /// Electrical power drawn while pumping \p FlowM3PerS, W.
  double electricalPowerW(double FlowM3PerS) const;

  /// Dimension-checked mirrors of headPa / electricalPowerW.
  units::Pascal head(units::M3PerS Flow) const {
    return units::Pascal(headPa(Flow.value()));
  }
  units::Watts electricalPower(units::M3PerS Flow) const {
    return units::Watts(electricalPowerW(Flow.value()));
  }

  double pressureDropPa(double FlowM3PerS, const fluids::Fluid &F,
                        double TempC) const override;
  double pressureDropSlopePaPerM3S(double FlowM3PerS, const fluids::Fluid &F,
                                   double TempC) const override;
  std::string describe() const override;

  const std::string &name() const { return Name; }

  /// An industrial oil-duty pump sized for one SKAT CM loop (paper
  /// Section 2's pump criteria: oil-compatible, IP-55, low vibration).
  static Pump makeOilCirculationPump(std::string Name,
                                     double RatedFlowM3PerS,
                                     double RatedHeadPa);

  /// Dimension-checked factory.
  static Pump makeOilCirculationPump(std::string Name, units::M3PerS RatedFlow,
                                     units::Pascal RatedHead) {
    return makeOilCirculationPump(std::move(Name), RatedFlow.value(),
                                  RatedHead.value());
  }

private:
  std::string Name;
  LinearTable HeadCurve;
  double Efficiency;
  double SpeedFraction = 1.0;
};

} // namespace hydraulics
} // namespace rcs

#endif // RCS_HYDRAULICS_COMPONENTS_H
