//===- hydraulics/Manifold.h - Rack manifold topologies ---------*- C++ -*-===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for the rack-level primary (water) circulation network of
/// paper Fig. 5: a pump and chiller feed a supply manifold, N circulation
/// loops (one per computational module's heat exchanger) tap off to a
/// return manifold.
///
/// Two layouts are modeled:
///  - DirectReturn: supply and return connect at the same end. Loops near
///    the pump see a shorter path and steal flow - the imbalance that
///    normally forces per-loop balancing valves.
///  - ReverseReturn: the paper's engineering solution. The return manifold
///    outlet is at the far end, so every loop's closed path has the same
///    pipe length, self-balancing the flows with no extra hardware.
///
//===----------------------------------------------------------------------===//

#ifndef RCS_HYDRAULICS_MANIFOLD_H
#define RCS_HYDRAULICS_MANIFOLD_H

#include "hydraulics/FlowNetwork.h"

#include <vector>

namespace rcs {
namespace hydraulics {

/// Manifold return-path topology.
enum class ManifoldLayout { DirectReturn, ReverseReturn };

/// Parameters of the rack primary loop.
struct RackHydraulicsConfig {
  ManifoldLayout Layout = ManifoldLayout::ReverseReturn;
  int NumLoops = 6; ///< Circulation loops (Fig. 5 shows six).

  /// Manifold pipe between consecutive loop taps.
  double ManifoldSegmentLengthM = 0.40;
  double ManifoldDiameterM = 0.050;

  /// Per-loop branch piping (to/from a CM heat exchanger).
  double LoopPipeLengthM = 1.2;
  double LoopPipeDiameterM = 0.025;

  /// Rated pressure drop of a CM heat exchanger's primary side.
  double HxRatedFlowM3PerS = 8.0e-4; ///< ~48 l/min of water.
  double HxRatedDropPa = 2.5e4;

  /// Balancing valve on each loop (fully open by default).
  double ValveOpenLossCoefficient = 2.0;

  /// Rack circulation pump rating.
  double PumpRatedFlowM3PerS = 5.0e-3; ///< ~300 l/min.
  double PumpRatedHeadPa = 1.2e5;

  /// Chiller water-side rated pressure drop at pump rated flow.
  double ChillerRatedDropPa = 3.0e4;

  /// Return pipe from the return-manifold outlet back to the chiller.
  double ReturnPipeLengthM = 3.0;

  /// \name Dimension-checked setters
  /// Typed mirrors for builder-style configuration (see support/Quantity.h);
  /// the raw fields remain for aggregate initialization.
  /// @{
  RackHydraulicsConfig &setManifoldGeometry(units::Meters SegmentLength,
                                            units::Meters Diameter) {
    ManifoldSegmentLengthM = SegmentLength.value();
    ManifoldDiameterM = Diameter.value();
    return *this;
  }
  RackHydraulicsConfig &setLoopPiping(units::Meters Length,
                                      units::Meters Diameter) {
    LoopPipeLengthM = Length.value();
    LoopPipeDiameterM = Diameter.value();
    return *this;
  }
  RackHydraulicsConfig &setHxRating(units::M3PerS RatedFlow,
                                    units::Pascal RatedDrop) {
    HxRatedFlowM3PerS = RatedFlow.value();
    HxRatedDropPa = RatedDrop.value();
    return *this;
  }
  RackHydraulicsConfig &setPumpRating(units::M3PerS RatedFlow,
                                      units::Pascal RatedHead) {
    PumpRatedFlowM3PerS = RatedFlow.value();
    PumpRatedHeadPa = RatedHead.value();
    return *this;
  }
  RackHydraulicsConfig &setChillerRating(units::Pascal RatedDrop) {
    ChillerRatedDropPa = RatedDrop.value();
    return *this;
  }
  RackHydraulicsConfig &setReturnPiping(units::Meters Length) {
    ReturnPipeLengthM = Length.value();
    return *this;
  }
  RackHydraulicsConfig &setValveOpenLoss(units::Scalar LossCoefficient) {
    ValveOpenLossCoefficient = LossCoefficient.value();
    return *this;
  }
  /// @}
};

/// A built rack primary network with handles to the interesting edges.
struct RackHydraulics {
  FlowNetwork Network;
  EdgeId PumpEdge = 0;
  std::vector<EdgeId> LoopEdges;
  /// Index of the BalancingValve element within each loop edge, usable
  /// with FlowNetwork::elementAt to adjust openings / isolate a loop.
  size_t LoopValveElementIndex = 0;
  /// Index of the Pump element within the pump edge.
  size_t PumpElementIndex = 0;
};

/// Builds the Fig. 5 rack primary loop with the requested layout.
RackHydraulics buildRackPrimaryLoop(const RackHydraulicsConfig &Config);

/// Summary statistics of a per-loop flow distribution.
struct FlowBalanceStats {
  double MinFlowM3PerS = 0.0;
  double MaxFlowM3PerS = 0.0;
  double MeanFlowM3PerS = 0.0;
  /// (max-min)/mean; the paper's layout drives this toward zero.
  double ImbalanceFraction = 0.0;

  /// Dimension-checked accessors.
  units::M3PerS minFlow() const { return units::M3PerS(MinFlowM3PerS); }
  units::M3PerS maxFlow() const { return units::M3PerS(MaxFlowM3PerS); }
  units::M3PerS meanFlow() const { return units::M3PerS(MeanFlowM3PerS); }
};

/// Computes balance statistics over \p LoopFlows, ignoring loops whose
/// flow is below 1% of the mean (isolated for maintenance).
FlowBalanceStats computeFlowBalance(const std::vector<double> &LoopFlows);

} // namespace hydraulics
} // namespace rcs

#endif // RCS_HYDRAULICS_MANIFOLD_H
