//===- hydraulics/Balancing.cpp - Valve trim balancing ------------------------===//
//
// Part of skatsim. MIT license.
//
//===----------------------------------------------------------------------===//

#include "hydraulics/Balancing.h"

#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace rcs;
using namespace rcs::hydraulics;

Expected<TrimResult>
rcs::hydraulics::trimBalancingValves(RackHydraulics &Rack,
                                     const fluids::Fluid &F, double TempC,
                                     TrimOptions Options) {
  assert(!Rack.LoopEdges.empty() && "rack has no loops to balance");
  telemetry::Registry &Telemetry = telemetry::Registry::global();
  static telemetry::Counter &RunCount =
      Telemetry.counter("hydraulics.balancing.runs");
  static telemetry::Counter &TrimIterations =
      Telemetry.counter("hydraulics.balancing.iterations");
  telemetry::ScopedTimer Timer(Telemetry, "hydraulics.balancing.trim");
  RunCount.add();

  TrimResult Result;
  const size_t NumLoops = Rack.LoopEdges.size();
  Result.ValveOpenings.assign(NumLoops, 1.0);

  // Each trim iteration re-solves a slightly throttled network, so the
  // previous junction pressures are an excellent Newton starting point.
  FlowSolveOptions SolveOptions;
  auto solveLoops = [&]() -> Expected<std::vector<double>> {
    Expected<FlowSolution> Solution =
        Rack.Network.solve(F, TempC, 1e-3, SolveOptions);
    if (!Solution)
      return Expected<std::vector<double>>(Solution.status());
    SolveOptions.WarmStartPressuresPa = Solution->JunctionPressuresPa;
    std::vector<double> Flows;
    Flows.reserve(NumLoops);
    for (EdgeId E : Rack.LoopEdges)
      Flows.push_back(Solution->EdgeFlowsM3PerS[E]);
    return Flows;
  };

  Expected<std::vector<double>> Flows = solveLoops();
  if (!Flows)
    return Expected<TrimResult>(Flows.status());
  Result.MeanFlowBeforeM3PerS = computeFlowBalance(*Flows).MeanFlowM3PerS;

  for (int Iter = 0; Iter != Options.MaxIterations; ++Iter) {
    FlowBalanceStats Stats = computeFlowBalance(*Flows);
    Result.FinalImbalanceFraction = Stats.ImbalanceFraction;
    Result.Iterations = Iter;
    if (Telemetry.tracingEnabled())
      Telemetry.emitEvent("hydraulics.balancing.iteration",
                          {{"iteration", Iter},
                           {"imbalance_fraction", Stats.ImbalanceFraction},
                           {"min_flow_m3s", Stats.MinFlowM3PerS},
                           {"mean_flow_m3s", Stats.MeanFlowM3PerS}});
    if (Stats.ImbalanceFraction <= Options.TargetImbalanceFraction) {
      Result.Converged = true;
      break;
    }
    TrimIterations.add();

    // Proportional trim: throttle every loop toward the minimum flow.
    double MinFlow = Stats.MinFlowM3PerS;
    for (size_t I = 0; I != NumLoops; ++I) {
      double Q = (*Flows)[I];
      if (Q <= 0.0)
        continue;
      double Scale = std::pow(MinFlow / Q, Options.Relaxation);
      Result.ValveOpenings[I] = std::clamp(
          Result.ValveOpenings[I] * Scale, Options.MinOpeningFraction, 1.0);
      auto *Valve = static_cast<BalancingValve *>(Rack.Network.elementAt(
          Rack.LoopEdges[I], Rack.LoopValveElementIndex));
      Valve->setOpening(Result.ValveOpenings[I]);
    }

    Flows = solveLoops();
    if (!Flows)
      return Expected<TrimResult>(Flows.status());
  }

  FlowBalanceStats Final = computeFlowBalance(*Flows);
  Result.FinalImbalanceFraction = Final.ImbalanceFraction;
  Result.MeanFlowAfterM3PerS = Final.MeanFlowM3PerS;
  Result.Converged =
      Result.Converged || Final.ImbalanceFraction <= Options.TargetImbalanceFraction;
  return Result;
}
